//===- PassManager.cpp ----------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/PassManager.h"

#include <cassert>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

void PassManager::registerLabels(const std::vector<LabelDef> &Labels) {
  for (const LabelDef &Def : Labels) {
    // Shared label library: re-registration of an identical name is
    // expected when several passes carry the same definitions.
    if (!Registry.findPredicate(Def.Name))
      Registry.define(Def);
  }
}

void PassManager::addAnalysis(PureAnalysis A) {
  assert(!validateAnalysis(A) && "malformed analysis");
  registerLabels(A.Labels);
  if (!Registry.findPredicate(A.LabelName) &&
      !Registry.isAnalysisLabel(A.LabelName))
    Registry.declareAnalysisLabel(A.LabelName);
  Analyses.push_back(std::move(A));
  Pipeline.push_back({/*IsAnalysis=*/true, Analyses.size() - 1});
}

void PassManager::addOptimization(Optimization O) {
  assert(!validateOptimization(O) && "malformed optimization");
  registerLabels(O.Labels);
  Optimizations.push_back(std::move(O));
  Pipeline.push_back({/*IsAnalysis=*/false, Optimizations.size() - 1});
}

void PassManager::defineLabel(const LabelDef &Def) {
  if (!Registry.findPredicate(Def.Name))
    Registry.define(Def);
}

const Labeling *PassManager::labelingFor(const std::string &ProcName) const {
  auto It = LastLabelings.find(ProcName);
  return It == LastLabelings.end() ? nullptr : &It->second;
}

std::vector<PassReport> PassManager::runPasses(const std::vector<Pass> &ToRun,
                                               Program &Prog) {
  std::vector<PassReport> Reports;
  LastLabelings.clear();

  for (Procedure &P : Prog.Procs) {
    Labeling &Labels = LastLabelings[P.Name];
    Labels.assign(P.size(), {});
    bool LabelsValid = true;

    for (const Pass &Ps : ToRun) {
      PassReport Report;
      Report.ProcName = P.Name;

      if (Ps.IsAnalysis) {
        const PureAnalysis &A = Analyses[Ps.Index];
        Report.PassName = A.Name;
        if (!LabelsValid) {
          // A backward optimization ran since the labels were computed;
          // §4.1 forbids reusing them. Recompute from scratch by
          // replaying all earlier analyses.
          Labels.assign(P.size(), {});
          for (const Pass &Prev : ToRun) {
            if (&Prev == &Ps)
              break;
            if (Prev.IsAnalysis)
              runPureAnalysis(Analyses[Prev.Index], P, Registry, Labels);
          }
          LabelsValid = true;
        }
        RunStats Stats;
        runPureAnalysis(A, P, Registry, Labels, &Stats);
        Report.DeltaSize = Stats.DeltaSize;
        Report.FixpointIters = Stats.FixpointIters;
      } else {
        const Optimization &O = Optimizations[Ps.Index];
        Report.PassName = O.Name;
        if (!LabelsValid) {
          Labels.assign(P.size(), {});
          for (const Pass &Prev : ToRun) {
            if (&Prev == &Ps)
              break;
            if (Prev.IsAnalysis)
              runPureAnalysis(Analyses[Prev.Index], P, Registry, Labels);
          }
          LabelsValid = true;
        }
        // Forward analyses may feed forward optimizations (§4.1); a
        // backward optimization must not consume them, so it runs with
        // no labeling and invalidates it afterwards if it rewrote
        // anything.
        bool IsBackward = O.Pat.Dir == Direction::D_Backward;
        RunStats Stats = runOptimization(
            O, P, Registry, IsBackward ? nullptr : &Labels);
        Report.DeltaSize = Stats.DeltaSize;
        Report.AppliedCount = Stats.AppliedCount;
        Report.FixpointIters = Stats.FixpointIters;
        if (Stats.AppliedCount > 0)
          LabelsValid = false; // statements changed: labels are stale
      }
      Reports.push_back(std::move(Report));
    }
  }
  return Reports;
}

std::vector<PassReport> PassManager::run(Program &Prog) {
  return runPasses(Pipeline, Prog);
}

unsigned PassManager::runToFixpoint(Program &Prog, unsigned MaxRounds) {
  unsigned ActiveRounds = 0;
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    unsigned Applied = 0;
    for (const PassReport &R : run(Prog))
      Applied += R.AppliedCount;
    if (Applied == 0)
      break;
    ++ActiveRounds;
  }
  return ActiveRounds;
}

std::vector<PassReport> PassManager::runOne(const std::string &Name,
                                            Program &Prog) {
  std::vector<Pass> ToRun;
  for (const Pass &Ps : Pipeline) {
    const std::string &PName =
        Ps.IsAnalysis ? Analyses[Ps.Index].Name : Optimizations[Ps.Index].Name;
    if (PName == Name)
      ToRun.push_back(Ps);
  }
  return runPasses(ToRun, Prog);
}
