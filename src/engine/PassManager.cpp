//===- PassManager.cpp ----------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/PassManager.h"

#include "ir/Interp.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;
using support::ErrorKind;

void PassManager::registerLabels(const std::vector<LabelDef> &Labels) {
  for (const LabelDef &Def : Labels) {
    // Shared label library: re-registration of an identical name is
    // expected when several passes carry the same definitions.
    if (!Registry.findPredicate(Def.Name))
      Registry.define(Def);
  }
}

void PassManager::addAnalysis(PureAnalysis A) {
  assert(!validateAnalysis(A) && "malformed analysis");
  registerLabels(A.Labels);
  if (!Registry.findPredicate(A.LabelName) &&
      !Registry.isAnalysisLabel(A.LabelName))
    Registry.declareAnalysisLabel(A.LabelName);
  Analyses.push_back(std::move(A));
  Pipeline.push_back({/*IsAnalysis=*/true, Analyses.size() - 1});
}

void PassManager::addOptimization(Optimization O) {
  assert(!validateOptimization(O) && "malformed optimization");
  registerLabels(O.Labels);
  Optimizations.push_back(std::move(O));
  Pipeline.push_back({/*IsAnalysis=*/false, Optimizations.size() - 1});
}

void PassManager::defineLabel(const LabelDef &Def) {
  if (!Registry.findPredicate(Def.Name))
    Registry.define(Def);
}

const Labeling *PassManager::labelingFor(const std::string &ProcName) const {
  auto It = LastLabelings.find(ProcName);
  return It == LastLabelings.end() ? nullptr : &It->second;
}

//===----------------------------------------------------------------------===//
// Quarantine bookkeeping.
//===----------------------------------------------------------------------===//

void PassManager::recordFailure(const std::string &PassName) {
  ++ConsecutiveFailures[PassName];
}

void PassManager::recordSuccess(const std::string &PassName) {
  ConsecutiveFailures.erase(PassName);
}

bool PassManager::isQuarantined(const std::string &PassName) const {
  if (Tx.QuarantineAfter == 0)
    return false;
  auto It = ConsecutiveFailures.find(PassName);
  return It != ConsecutiveFailures.end() &&
         It->second >= Tx.QuarantineAfter;
}

unsigned PassManager::failureCount(const std::string &PassName) const {
  auto It = ConsecutiveFailures.find(PassName);
  return It == ConsecutiveFailures.end() ? 0 : It->second;
}

std::vector<std::string> PassManager::quarantined() const {
  std::vector<std::string> Names;
  for (const auto &[Name, Count] : ConsecutiveFailures)
    if (Tx.QuarantineAfter != 0 && Count >= Tx.QuarantineAfter)
      Names.push_back(Name);
  return Names; // map iteration order: already sorted
}

void PassManager::resetQuarantine() { ConsecutiveFailures.clear(); }

//===----------------------------------------------------------------------===//
// Post-pass sanity checking.
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic inputs for the interpreter spot-check: a fixed set of
/// interesting points extended by a seeded xorshift stream, so every run
/// (and every CI machine) exercises the same inputs.
std::vector<int64_t> spotCheckInputs(unsigned Count) {
  static const int64_t Fixed[] = {0, 1, -1, 7, 42, -13, 100, 3};
  constexpr unsigned NumFixed = sizeof(Fixed) / sizeof(Fixed[0]);
  std::vector<int64_t> Inputs;
  uint64_t X = 0x9e3779b97f4a7c15ull;
  for (unsigned I = 0; I < Count; ++I) {
    if (I < NumFixed) {
      Inputs.push_back(Fixed[I]);
    } else {
      X ^= X << 13;
      X ^= X >> 7;
      X ^= X << 17;
      Inputs.push_back(static_cast<int64_t>(X % 201) - 100);
    }
  }
  return Inputs;
}

/// The cheap post-pass sanity check run after a pass rewrote \p P:
/// (1) CFG well-formedness of the rewritten procedure, and (2) an
/// interpreter spot-check of the paper's soundness direction — on every
/// generated input where the pre-pass program returned, the post-pass
/// program must return the same value. \p Snapshot holds the pre-pass
/// body; it is swapped into \p Prog temporarily to run the original and
/// restored before returning, so \p P holds the rewritten body either
/// way. Returns a description of the violation, or nullopt when clean.
std::optional<std::string> postPassSanityCheck(Program &Prog, Procedure &P,
                                               Procedure &Snapshot,
                                               const TxPolicy &Tx) {
  if (auto Err = validateProcedure(P))
    return "ill-formed procedure after rewrite: " + *Err;
  if (Tx.SpotCheckInputs == 0 || !Prog.findProc("main"))
    return std::nullopt;

  std::vector<int64_t> Inputs = spotCheckInputs(Tx.SpotCheckInputs);

  // Rewritten program first (P currently holds the new body) ...
  std::vector<RunResult> NewRuns;
  {
    Interpreter Interp(Prog);
    for (int64_t In : Inputs)
      NewRuns.push_back(Interp.run(In, Tx.SpotCheckFuel));
  }

  // ... then the snapshot, swapped in place so no program copy is made.
  std::swap(P, Snapshot);
  std::optional<std::string> Failure;
  {
    Interpreter Interp(Prog);
    for (size_t I = 0; I < Inputs.size() && !Failure; ++I) {
      RunResult Orig = Interp.run(Inputs[I], Tx.SpotCheckFuel);
      if (!Orig.returned())
        continue; // soundness only constrains returning runs
      const RunResult &New = NewRuns[I];
      std::string In = std::to_string(Inputs[I]);
      if (!New.returned())
        Failure = "spot-check: main(" + In + ") returned " +
                  Orig.Result.str() + " before the pass but " +
                  (New.stuck() ? "got stuck (" + New.StuckReason + ")"
                               : "ran out of fuel") +
                  " after";
      else if (!(New.Result == Orig.Result))
        Failure = "spot-check: main(" + In + ") returned " +
                  Orig.Result.str() + " before the pass but " +
                  New.Result.str() + " after";
    }
  }
  std::swap(P, Snapshot); // restore the rewritten body
  return Failure;
}

/// FNV-1a of the procedure name: the stable per-procedure job
/// fingerprint keying fault-injection decisions (see ScopedFaultKey).
uint64_t hashProcName(const std::string &Name) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Name) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

} // namespace

//===----------------------------------------------------------------------===//
// Pipeline execution.
//===----------------------------------------------------------------------===//

std::vector<PassReport> PassManager::runPasses(const std::vector<Pass> &ToRun,
                                               Program &Prog) {
  LastLabelings.clear();
  LastRunDegraded = false;

  // Run-start quarantine snapshot: every (procedure, pass) job reads the
  // same state regardless of scheduling. Failures recorded during this
  // run take effect on the *next* run — mid-run quarantine coupling
  // across procedures was inherently schedule-dependent, so it is gone
  // in both the sequential and the parallel mode.
  const std::map<std::string, unsigned> StartFailures = ConsecutiveFailures;
  auto StartFailureCount = [&](const std::string &Name) -> unsigned {
    auto It = StartFailures.find(Name);
    return It == StartFailures.end() ? 0 : It->second;
  };
  auto StartQuarantined = [&](const std::string &Name) {
    return Tx.QuarantineAfter != 0 &&
           StartFailureCount(Name) >= Tx.QuarantineAfter;
  };

  /// One procedure's pipeline run, isolated on a private copy of the
  /// run-start program (so the interpreter spot-check never observes
  /// another job's half-applied rewrites) and merged back in procedure
  /// order below.
  struct ProcJob {
    Program Snapshot;
    Labeling Labels;
    std::vector<PassReport> Reports;
    /// (pass name, failed) in pipeline order; replayed into the shared
    /// failure counters during the deterministic merge.
    std::vector<std::pair<std::string, bool>> Events;
    bool Degraded = false;
  };
  std::vector<ProcJob> Jobs(Prog.Procs.size());

  auto RunProc = [&](size_t PI) {
    ProcJob &Job = Jobs[PI];
    Job.Snapshot = Prog;
    Procedure &P = Job.Snapshot.Procs[PI];
    support::TraceSpan ProcSpan("engine", "proc");
    if (ProcSpan.enabled())
      ProcSpan.arg("proc", P.Name);
    support::metricAdd("engine.procs");
    // Fault decisions inside this job are keyed on the procedure name,
    // so `--jobs 8` fires exactly the faults `--jobs 1` does.
    support::ScopedFaultKey JobKey(hashProcName(P.Name));
    std::vector<PassReport> &Reports = Job.Reports;
    Labeling &Labels = Job.Labels;
    Labels.assign(P.size(), {});
    bool LabelsValid = true;

    // Recomputes the labeling by replaying every analysis before \p Upto
    // (§4.1 forbids reusing labels across a backward rewrite).
    // Quarantined analyses are skipped and a throwing analysis
    // contributes no labels — both degrade precision (fewer labels mean
    // fewer matches), never soundness.
    auto ReplayLabels = [&](const Pass &Upto) {
      Labels.assign(P.size(), {});
      for (const Pass &Prev : ToRun) {
        if (&Prev == &Upto)
          break;
        if (!Prev.IsAnalysis)
          continue;
        const PureAnalysis &PA = Analyses[Prev.Index];
        if (StartQuarantined(PA.Name))
          continue;
        try {
          runPureAnalysis(PA, P, Registry, Labels);
        } catch (...) {
          // Labels of the failing analysis are simply absent.
        }
      }
      LabelsValid = true;
    };

    for (const Pass &Ps : ToRun) {
      PassReport Report;
      Report.ProcName = P.Name;
      support::TraceSpan PassSpan("engine", "pass");
      support::metricAdd("engine.passes");

      if (Ps.IsAnalysis) {
        const PureAnalysis &A = Analyses[Ps.Index];
        Report.PassName = A.Name;
        if (PassSpan.enabled()) {
          PassSpan.arg("pass", A.Name);
          PassSpan.arg("proc", P.Name);
        }
        if (StartQuarantined(A.Name)) {
          Report.Quarantined = true;
          Report.Err = support::Error(
              ErrorKind::EK_Quarantined,
              "skipped: quarantined after " +
                  std::to_string(StartFailureCount(A.Name)) +
                  " consecutive failures");
          Report.Remarks.push_back({support::Remark::Kind::RK_Missed,
                                    A.Name, P.Name, -1, "quarantined"});
          support::metricAdd("engine.quarantine_skips");
          Job.Degraded = true;
          Reports.push_back(std::move(Report));
          continue;
        }
        if (!LabelsValid)
          ReplayLabels(Ps);

        Labeling LabelsSnapshot;
        if (Tx.Transactional)
          LabelsSnapshot = Labels;
        auto HandleFailure = [&](ErrorKind Kind,
                                 const std::string &Detail) {
          if (Tx.Transactional) {
            Labels = std::move(LabelsSnapshot);
            Report.RolledBack = true;
            support::metricAdd("engine.rollbacks");
          }
          Report.Err = support::Error(Kind, Detail);
          Report.Remarks.push_back({support::Remark::Kind::RK_RolledBack,
                                    A.Name, P.Name, -1, Detail});
          support::metricAdd("engine.pass_failures");
          Job.Events.emplace_back(A.Name, /*Failed=*/true);
          Job.Degraded = true;
        };
        try {
          RunStats Stats;
          runPureAnalysis(A, P, Registry, Labels, &Stats);
          Report.DeltaSize = Stats.DeltaSize;
          Report.FixpointIters = Stats.FixpointIters;
          Job.Events.emplace_back(A.Name, /*Failed=*/false);
        } catch (const support::PassError &E) {
          HandleFailure(E.kind(), E.what());
        } catch (const std::exception &E) {
          HandleFailure(ErrorKind::EK_PassPanic, E.what());
        } catch (...) {
          HandleFailure(ErrorKind::EK_PassPanic,
                        "unknown exception escaped the analysis");
        }
      } else {
        const Optimization &O = Optimizations[Ps.Index];
        Report.PassName = O.Name;
        if (PassSpan.enabled()) {
          PassSpan.arg("pass", O.Name);
          PassSpan.arg("proc", P.Name);
        }
        if (StartQuarantined(O.Name)) {
          Report.Quarantined = true;
          Report.Err = support::Error(
              ErrorKind::EK_Quarantined,
              "skipped: quarantined after " +
                  std::to_string(StartFailureCount(O.Name)) +
                  " consecutive failures");
          Report.Remarks.push_back({support::Remark::Kind::RK_Missed,
                                    O.Name, P.Name, -1, "quarantined"});
          support::metricAdd("engine.quarantine_skips");
          Job.Degraded = true;
          Reports.push_back(std::move(Report));
          continue;
        }
        if (!LabelsValid)
          ReplayLabels(Ps);

        // Forward analyses may feed forward optimizations (§4.1); a
        // backward optimization must not consume them, so it runs with
        // no labeling and invalidates it afterwards if it rewrote
        // anything.
        bool IsBackward = O.Pat.Dir == Direction::D_Backward;

        // Transactional application: snapshot, run, sanity-check, and
        // roll back on any failure. The snapshot/rollback is what turns
        // "a pass misbehaved" from a corrupted pipeline into a recorded,
        // skippable failure.
        Procedure Snapshot;
        if (Tx.Transactional)
          Snapshot = P;
        auto HandleFailure = [&](ErrorKind Kind,
                                 const std::string &Detail) {
          if (Tx.Transactional) {
            P = std::move(Snapshot);
            Report.RolledBack = true;
            support::metricAdd("engine.rollbacks");
          }
          Report.AppliedCount = 0;
          // Any per-site remark recorded before the failure describes a
          // rewrite that no longer exists after the rollback.
          Report.Remarks.clear();
          Report.Remarks.push_back({support::Remark::Kind::RK_RolledBack,
                                    O.Name, P.Name, -1, Detail});
          support::metricAdd("engine.pass_failures");
          Report.Err = support::Error(Kind, Detail);
          Job.Events.emplace_back(O.Name, /*Failed=*/true);
          Job.Degraded = true;
        };
        try {
          RunStats Stats = runOptimization(
              O, P, Registry, IsBackward ? nullptr : &Labels);
          Report.DeltaSize = Stats.DeltaSize;
          Report.FixpointIters = Stats.FixpointIters;
          if (Tx.Transactional && Stats.AppliedCount > 0)
            if (auto Violation =
                    postPassSanityCheck(Job.Snapshot, P, Snapshot, Tx))
              throw support::PassError(ErrorKind::EK_RewriteConflict,
                                       *Violation);
          Report.AppliedCount = Stats.AppliedCount;
          for (int Site : Stats.AppliedSites)
            Report.Remarks.push_back({support::Remark::Kind::RK_Passed,
                                      O.Name, P.Name, Site,
                                      "chosen and applied"});
          for (int Site : Stats.MissedSites)
            Report.Remarks.push_back(
                {support::Remark::Kind::RK_Missed, O.Name, P.Name, Site,
                 "legal site not rewritten (choose declined or lost "
                 "the per-index tie)"});
          if (Stats.AppliedCount > 0)
            support::metricAdd("engine.rewrites", Stats.AppliedCount);
          if (PassSpan.enabled()) {
            PassSpan.arg("delta", static_cast<uint64_t>(Stats.DeltaSize));
            PassSpan.arg("applied",
                         static_cast<uint64_t>(Stats.AppliedCount));
          }
          if (Stats.AppliedCount > 0)
            LabelsValid = false; // statements changed: labels are stale
          Job.Events.emplace_back(O.Name, /*Failed=*/false);
        } catch (const support::PassError &E) {
          HandleFailure(E.kind(), E.what());
        } catch (const std::exception &E) {
          HandleFailure(ErrorKind::EK_PassPanic, E.what());
        } catch (...) {
          HandleFailure(ErrorKind::EK_PassPanic,
                        "unknown exception escaped the pass");
        }
      }
      Reports.push_back(std::move(Report));
    }
  };

  // Inline-mode pools and the no-pool case both run procedures in index
  // order on this thread; worker pools fan them out. Either way the
  // merge below is the only writer of shared state.
  if (Pool && !Pool->inlineMode())
    Pool->parallelFor(Jobs.size(), RunProc);
  else
    for (size_t PI = 0; PI < Jobs.size(); ++PI)
      RunProc(PI);

  // Deterministic merge in procedure order: bodies, labelings, failure
  // counters, and reports never depend on which job finished first.
  std::vector<PassReport> Reports;
  for (size_t PI = 0; PI < Prog.Procs.size(); ++PI) {
    ProcJob &Job = Jobs[PI];
    Prog.Procs[PI] = std::move(Job.Snapshot.Procs[PI]);
    LastLabelings[Prog.Procs[PI].Name] = std::move(Job.Labels);
    for (const auto &[PassName, Failed] : Job.Events) {
      if (Failed)
        recordFailure(PassName);
      else
        recordSuccess(PassName);
    }
    LastRunDegraded = LastRunDegraded || Job.Degraded;
    for (PassReport &R : Job.Reports)
      Reports.push_back(std::move(R));
  }
  return Reports;
}

std::vector<PassReport> PassManager::run(Program &Prog) {
  return runPasses(Pipeline, Prog);
}

unsigned PassManager::runToFixpoint(Program &Prog, unsigned MaxRounds) {
  unsigned ActiveRounds = 0;
  bool Degraded = false;
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    unsigned Applied = 0;
    for (const PassReport &R : run(Prog))
      Applied += R.AppliedCount;
    Degraded = Degraded || LastRunDegraded;
    if (Applied == 0)
      break;
    ++ActiveRounds;
  }
  // A rolled-back pass reports zero applications, so a persistently
  // failing pass cannot keep the fixpoint loop spinning; still, surface
  // that any round degraded.
  LastRunDegraded = Degraded;
  return ActiveRounds;
}

std::vector<PassReport> PassManager::runOne(const std::string &Name,
                                            Program &Prog) {
  return runSelected({Name}, Prog);
}

std::vector<PassReport>
PassManager::runSelected(const std::vector<std::string> &Names,
                         Program &Prog) {
  std::vector<Pass> ToRun;
  for (const Pass &Ps : Pipeline) {
    const std::string &PName =
        Ps.IsAnalysis ? Analyses[Ps.Index].Name : Optimizations[Ps.Index].Name;
    if (std::find(Names.begin(), Names.end(), PName) != Names.end())
      ToRun.push_back(Ps);
  }
  return runPasses(ToRun, Prog);
}
