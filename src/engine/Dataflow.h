//===- Dataflow.h - Substitution-set dataflow for guards --------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's dataflow analysis (paper §5.2): facts are sets of
/// substitutions, each representing a potential witnessing region. The
/// flow function at a statement
///
/// * adds the substitutions that make ψ1 true at the statement
///   (generative satisfaction), and
/// * propagates an incoming substitution θ iff θ(ψ2) holds at the
///   statement, dropping it otherwise;
///
/// merge nodes intersect (the guard quantifies over *all* paths,
/// Definition 1). Backward guards run the same analysis over the reversed
/// CFG. The framework is a distributive gen/kill analysis, so the fixed
/// point equals the meet-over-paths solution that Definition 1 specifies;
/// tests/engine/guard_semantics_test.cpp checks this against a direct
/// path-enumeration oracle on acyclic CFGs.
///
/// This solver computes, for every node ι, the set of substitutions θ
/// with (ι, θ) ∈ [[ψ1 followed by ψ2]](p) — evaluating all "instances" of
/// the guard simultaneously, exactly as §5.2 describes.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_ENGINE_DATAFLOW_H
#define COBALT_ENGINE_DATAFLOW_H

#include "core/Formula.h"
#include "core/Optimization.h"
#include "ir/Cfg.h"

#include <set>
#include <vector>

namespace cobalt {
namespace engine {

/// The per-node result of guard solving: the substitutions valid at the
/// *matching point* of each node (the IN fact in guard direction).
/// Unreachable nodes (forward: from the entry; backward: to any exit)
/// have empty sets — the engine conservatively never transforms them.
struct GuardSolution {
  std::vector<std::set<Substitution>> AtNode;

  /// Iteration count until the fixed point, for the benchmarks.
  unsigned Iterations = 0;
};

/// Solves [[ψ1 followed by ψ2]] (Dir == D_Forward) or
/// [[ψ1 preceded by ψ2]] (Dir == D_Backward) over \p G's procedure.
/// \p Registry and \p AnalysisLabeling supply label semantics (the
/// labeling may be null when no pure analyses ran).
GuardSolution solveGuard(Direction Dir, const Guard &Gd, const ir::Cfg &G,
                         const LabelRegistry &Registry,
                         const Labeling *AnalysisLabeling);

} // namespace engine
} // namespace cobalt

#endif // COBALT_ENGINE_DATAFLOW_H
