//===- Dataflow.cpp -------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Dataflow.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <deque>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

namespace {

/// Direction-abstracted view of the CFG: "pred"/"succ" follow the guard's
/// flow direction, and "roots" are the nodes whose IN fact is empty by
/// definition (the entry for forward guards — no path has a ψ1 node
/// before the entry; the exits for backward guards).
struct DirectedView {
  const Cfg &G;
  Direction Dir;

  const std::vector<int> &flowPreds(int I) const {
    return Dir == Direction::D_Forward ? G.preds(I) : G.succs(I);
  }
  const std::vector<int> &flowSuccs(int I) const {
    return Dir == Direction::D_Forward ? G.succs(I) : G.preds(I);
  }
  bool isRoot(int I) const {
    return Dir == Direction::D_Forward ? I == G.entry() : G.isExit(I);
  }

  /// Nodes that participate: reachable along the flow direction from a
  /// root (others have no constraining paths; the engine skips them).
  std::vector<bool> liveNodes() const {
    std::vector<bool> Live(G.size(), false);
    std::vector<int> Work;
    for (int I = 0; I < G.size(); ++I)
      if (isRoot(I)) {
        Live[I] = true;
        Work.push_back(I);
      }
    while (!Work.empty()) {
      int I = Work.back();
      Work.pop_back();
      for (int T : flowSuccs(I))
        if (!Live[T]) {
          Live[T] = true;
          Work.push_back(T);
        }
    }
    return Live;
  }
};

} // namespace

GuardSolution engine::solveGuard(Direction Dir, const Guard &Gd,
                                 const Cfg &G,
                                 const LabelRegistry &Registry,
                                 const Labeling *AnalysisLabeling) {
  const Procedure &P = G.proc();
  int N = G.size();
  DirectedView View{G, Dir};
  std::vector<bool> Live = View.liveNodes();

  Universe Univ = buildUniverse(P);
  auto makeCtx = [&](int I) {
    return NodeContext{&P, I, &Registry, AnalysisLabeling, &Univ};
  };

  // GEN(n): substitutions making ψ1 true at n. U = ∪ GEN is the finite
  // universe of facts; OUT is initialized to U (optimistic greatest fixed
  // point for the ∩ meet).
  std::vector<std::set<Substitution>> Gen(N);
  std::set<Substitution> U;
  for (int I = 0; I < N; ++I) {
    if (!Live[I])
      continue;
    for (Substitution &S : satisfyFormula(*Gd.Psi1, makeCtx(I), {})) {
      U.insert(S);
      Gen[I].insert(std::move(S));
    }
  }

  // ψ2 filter, memoized per (node, θ restricted to ψ2's free variables):
  // facts differing only in variables ψ2 does not mention share one
  // evaluation, which collapses the per-iteration cost from
  // O(nodes × facts) formula walks to O(nodes × distinct projections).
  std::vector<std::pair<std::string, MetaKind>> Psi2Frees;
  collectFreeMetas(*Gd.Psi2, Psi2Frees);
  std::vector<std::map<std::string, bool>> Psi2Cache(N);
  auto survivesPsi2 = [&](int I, const Substitution &Theta) {
    std::string Key;
    for (const auto &[Name, Kind] : Psi2Frees) {
      (void)Kind;
      const Binding *B = Theta.lookup(Name);
      Key += B ? B->str() : "?";
      Key += '\x1f';
    }
    auto It = Psi2Cache[I].find(Key);
    if (It != Psi2Cache[I].end())
      return It->second;
    auto R = evalFormula(*Gd.Psi2, makeCtx(I), Theta);
    bool Ok = R.has_value() && *R; // undeterminable => conservatively drop
    Psi2Cache[I].emplace(std::move(Key), Ok);
    return Ok;
  };

  GuardSolution Sol;
  Sol.AtNode.assign(N, {});
  std::vector<std::set<Substitution>> Out(N);
  for (int I = 0; I < N; ++I)
    if (Live[I])
      Out[I] = U;

  // Evaluation order: reverse post-order over the flow direction.
  // Round-robin sweeps in RPO converge in O(loop-nesting-depth) passes
  // for reducible CFGs (a FIFO worklist revisits nodes an order of
  // magnitude more often on loop-heavy code).
  std::vector<int> Rpo;
  {
    std::vector<int> State(N, 0); // 0 = unvisited, 1 = open, 2 = done
    std::vector<std::pair<int, size_t>> Stack;
    for (int R = 0; R < N; ++R) {
      if (!Live[R] || !View.isRoot(R) || State[R])
        continue;
      Stack.emplace_back(R, 0);
      State[R] = 1;
      while (!Stack.empty()) {
        auto &[I, Next] = Stack.back();
        const std::vector<int> &Succs = View.flowSuccs(I);
        bool Descended = false;
        while (Next < Succs.size()) {
          int S = Succs[Next++];
          if (Live[S] && State[S] == 0) {
            State[S] = 1;
            Stack.emplace_back(S, 0);
            Descended = true;
            break;
          }
        }
        if (Descended)
          continue;
        State[I] = 2;
        Rpo.push_back(I);
        Stack.pop_back();
      }
    }
    std::reverse(Rpo.begin(), Rpo.end());
  }

  // Deterministic solve-shape counters (identical across --jobs widths):
  // facts dropped by the ∩ meet vs the first predecessor's OUT, and
  // facts dropped because ψ2 failed to hold.
  uint64_t MeetDropped = 0;
  uint64_t Psi2Dropped = 0;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int I : Rpo) {
      ++Sol.Iterations;

      // IN = ∩ over flow-predecessors' OUT; roots have IN = ∅.
      std::set<Substitution> In;
      if (!View.isRoot(I)) {
        bool First = true;
        size_t InitialIn = 0;
        for (int Pd : View.flowPreds(I)) {
          if (!Live[Pd])
            continue; // no constraining path through a dead node
          if (First) {
            In = Out[Pd];
            InitialIn = In.size();
            First = false;
          } else {
            std::set<Substitution> Tmp;
            std::set_intersection(In.begin(), In.end(), Out[Pd].begin(),
                                  Out[Pd].end(),
                                  std::inserter(Tmp, Tmp.begin()));
            In = std::move(Tmp);
          }
          if (In.empty())
            break;
        }
        // A live non-root node always has at least one live flow-pred
        // (it was reached from a root), so First is false here.
        MeetDropped += InitialIn - In.size();
      }
      Sol.AtNode[I] = In;

      // OUT = {θ ∈ IN : ψ2 holds} ∪ GEN.
      std::set<Substitution> NewOut = Gen[I];
      for (const Substitution &Theta : In)
        if (survivesPsi2(I, Theta))
          NewOut.insert(Theta);
        else
          ++Psi2Dropped;

      if (NewOut != Out[I]) {
        Out[I] = std::move(NewOut);
        Changed = true;
      }
    }
  }

  if (support::Telemetry *T = support::Telemetry::active()) {
    T->Metrics.add("dataflow.solves");
    T->Metrics.add("dataflow.fixpoint_iters", Sol.Iterations);
    T->Metrics.add("dataflow.meet_dropped", MeetDropped);
    T->Metrics.add("dataflow.psi2_dropped", Psi2Dropped);
    for (int I = 0; I < N; ++I)
      if (Live[I])
        T->Metrics.observe("dataflow.subst_set_size",
                           static_cast<double>(Sol.AtNode[I].size()));
  }

  return Sol;
}
