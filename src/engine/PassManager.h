//===- PassManager.h - Pipelines of analyses and optimizations -*- C++ -*--===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives Cobalt passes over whole programs: registers the label
/// definitions each pass relies on, runs pure analyses to build node
/// labelings, and applies optimizations procedure by procedure. Enforces
/// the paper's composition restriction (§2.4/§4.1): results of forward
/// pure analyses may feed forward optimizations and other forward
/// analyses, but a backward optimization in the pipeline invalidates the
/// current labeling (labels are recomputed afterwards) — combining a
/// forward analysis with a backward transformation may interfere.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_ENGINE_PASSMANAGER_H
#define COBALT_ENGINE_PASSMANAGER_H

#include "core/Optimization.h"
#include "engine/Engine.h"
#include "ir/Ast.h"
#include "support/Errors.h"
#include "support/Expected.h"
#include "support/Telemetry.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cobalt {

namespace support {
class ThreadPool;
}

namespace engine {

/// Per-pass, per-procedure record of what happened. When Err carries a
/// failure the pass failed; a failed optimization pass was rolled back
/// (the procedure is byte-identical to its pre-pass snapshot) and
/// reports AppliedCount == 0, since its net effect is zero.
struct PassReport {
  std::string PassName;
  std::string ProcName;
  unsigned DeltaSize = 0;
  unsigned AppliedCount = 0;
  unsigned FixpointIters = 0;
  /// What failed and why (the unified support::Error carrier — the
  /// checker's ObligationResult and the parsers use the same shape).
  support::Error Err;
  bool RolledBack = false;  ///< Snapshot restored after a failure.
  bool Quarantined = false; ///< Pass skipped: quarantined by earlier
                            ///< failures.
  /// Optimization remarks for this (pass, procedure): one per applied
  /// site, one per legal-but-missed site, and one rolled-back/missed
  /// remark on failure or quarantine. Plain data, independent of the
  /// COBALT_TELEMETRY switch; ordering is deterministic (sites in
  /// application / index order) and survives the procedure-order merge.
  std::vector<support::Remark> Remarks;

  bool failed() const { return Err.failed(); }
};

/// Fault-tolerance policy of the pass manager. With Transactional set
/// (the default), each optimization pass runs against a snapshot of the
/// procedure: any exception, ill-formed result, or interpreter-observed
/// semantic divergence rolls the procedure back and records the failure
/// instead of corrupting the pipeline. A pass that fails
/// QuarantineAfter consecutive times is quarantined (skipped, with a
/// report entry) while the rest of the pipeline continues.
///
/// ## Concurrency model (see DESIGN.md)
/// Each run() executes one job per procedure, each against a private
/// copy of the run-start program, and merges bodies, labelings, reports,
/// and failure/success events back in procedure order. The same model is
/// used with and without a thread pool, so `--jobs N` is bit-identical
/// to `--jobs 1`: quarantine decisions read the run-start state (a
/// failure recorded during a run takes effect the next run), and the
/// interpreter spot-check sees the run-start bodies of *other*
/// procedures (snapshot isolation) rather than whatever the schedule
/// happened to finish first.
struct TxPolicy {
  bool Transactional = true;
  unsigned QuarantineAfter = 3;
  /// Post-pass interpreter spot-check: after a pass rewrites a
  /// procedure, main() is run on this many generated inputs before and
  /// after; an input on which the original returned must return the
  /// same value in the rewritten program (the paper's soundness
  /// direction). 0 disables the semantic check (the CFG well-formedness
  /// check still runs).
  unsigned SpotCheckInputs = 4;
  uint64_t SpotCheckFuel = 1u << 16;
};

class PassManager {
public:
  /// Registers a pass. Label definitions carried by the pass are added to
  /// the shared registry (duplicate definitions of the same label are
  /// tolerated if they were registered before — passes share mayDef etc.).
  void addAnalysis(PureAnalysis A);
  void addOptimization(Optimization O);

  /// Registers a label definition directly (shared label library).
  void defineLabel(const LabelDef &Def);

  const LabelRegistry &registry() const { return Registry; }

  /// Runs all registered passes, in registration order, over every
  /// procedure of \p Prog (analyses label; optimizations rewrite).
  /// Returns one report per (pass, procedure).
  std::vector<PassReport> run(ir::Program &Prog);

  /// Repeats run() until a whole round applies no rewrite (or \p
  /// MaxRounds is hit). Soundness is per-round (each round is a
  /// composition of proven passes); returns the number of rounds that
  /// performed at least one rewrite.
  unsigned runToFixpoint(ir::Program &Prog, unsigned MaxRounds = 8);

  /// Runs a single registered optimization by name over the program.
  std::vector<PassReport> runOne(const std::string &Name,
                                 ir::Program &Prog);

  /// Runs the subset of registered passes whose names appear in \p Names,
  /// preserving registration order (the CobaltContext pipeline API).
  std::vector<PassReport> runSelected(const std::vector<std::string> &Names,
                                      ir::Program &Prog);

  /// Per-procedure jobs run on \p Pool (nullptr = sequential on the
  /// calling thread, same merge model). Non-owning; the pool must
  /// outlive the manager's runs.
  void setThreadPool(support::ThreadPool *Pool) { this->Pool = Pool; }

  /// The labeling computed for a procedure during the last run (empty if
  /// none). Useful for inspecting analysis results.
  const Labeling *labelingFor(const std::string &ProcName) const;

  /// Fault-tolerance policy (see TxPolicy).
  void setTxPolicy(const TxPolicy &Policy) { Tx = Policy; }
  const TxPolicy &txPolicy() const { return Tx; }

  /// Passes currently quarantined (skipped until resetQuarantine).
  /// Sorted by name.
  std::vector<std::string> quarantined() const;

  /// Consecutive-failure count of a pass (0 if it never failed or
  /// succeeded since).
  unsigned failureCount(const std::string &PassName) const;

  /// Clears quarantine state and failure counters (e.g. after the fault
  /// source is fixed).
  void resetQuarantine();

  /// True when the most recent run()/runOne()/runToFixpoint() recorded
  /// at least one pass failure or quarantine-skip — the pipeline
  /// completed, but degraded.
  bool lastRunDegraded() const { return LastRunDegraded; }

private:
  struct Pass {
    bool IsAnalysis;
    size_t Index; ///< Into Analyses or Optimizations.
  };

  void registerLabels(const std::vector<LabelDef> &Labels);
  std::vector<PassReport> runPasses(const std::vector<Pass> &ToRun,
                                    ir::Program &Prog);
  void recordFailure(const std::string &PassName);
  void recordSuccess(const std::string &PassName);
  bool isQuarantined(const std::string &PassName) const;

  LabelRegistry Registry;
  std::vector<PureAnalysis> Analyses;
  std::vector<Optimization> Optimizations;
  std::vector<Pass> Pipeline;
  std::map<std::string, Labeling> LastLabelings;
  TxPolicy Tx;
  std::map<std::string, unsigned> ConsecutiveFailures;
  bool LastRunDegraded = false;
  support::ThreadPool *Pool = nullptr;
};

} // namespace engine
} // namespace cobalt

#endif // COBALT_ENGINE_PASSMANAGER_H
