//===- PassManager.h - Pipelines of analyses and optimizations -*- C++ -*--===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives Cobalt passes over whole programs: registers the label
/// definitions each pass relies on, runs pure analyses to build node
/// labelings, and applies optimizations procedure by procedure. Enforces
/// the paper's composition restriction (§2.4/§4.1): results of forward
/// pure analyses may feed forward optimizations and other forward
/// analyses, but a backward optimization in the pipeline invalidates the
/// current labeling (labels are recomputed afterwards) — combining a
/// forward analysis with a backward transformation may interfere.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_ENGINE_PASSMANAGER_H
#define COBALT_ENGINE_PASSMANAGER_H

#include "core/Optimization.h"
#include "engine/Engine.h"
#include "ir/Ast.h"

#include <map>
#include <string>
#include <vector>

namespace cobalt {
namespace engine {

/// Per-pass, per-procedure record of what happened.
struct PassReport {
  std::string PassName;
  std::string ProcName;
  unsigned DeltaSize = 0;
  unsigned AppliedCount = 0;
  unsigned FixpointIters = 0;
};

class PassManager {
public:
  /// Registers a pass. Label definitions carried by the pass are added to
  /// the shared registry (duplicate definitions of the same label are
  /// tolerated if they were registered before — passes share mayDef etc.).
  void addAnalysis(PureAnalysis A);
  void addOptimization(Optimization O);

  /// Registers a label definition directly (shared label library).
  void defineLabel(const LabelDef &Def);

  const LabelRegistry &registry() const { return Registry; }

  /// Runs all registered passes, in registration order, over every
  /// procedure of \p Prog (analyses label; optimizations rewrite).
  /// Returns one report per (pass, procedure).
  std::vector<PassReport> run(ir::Program &Prog);

  /// Repeats run() until a whole round applies no rewrite (or \p
  /// MaxRounds is hit). Soundness is per-round (each round is a
  /// composition of proven passes); returns the number of rounds that
  /// performed at least one rewrite.
  unsigned runToFixpoint(ir::Program &Prog, unsigned MaxRounds = 8);

  /// Runs a single registered optimization by name over the program.
  std::vector<PassReport> runOne(const std::string &Name,
                                 ir::Program &Prog);

  /// The labeling computed for a procedure during the last run (empty if
  /// none). Useful for inspecting analysis results.
  const Labeling *labelingFor(const std::string &ProcName) const;

private:
  struct Pass {
    bool IsAnalysis;
    size_t Index; ///< Into Analyses or Optimizations.
  };

  void registerLabels(const std::vector<LabelDef> &Labels);
  std::vector<PassReport> runPasses(const std::vector<Pass> &ToRun,
                                    ir::Program &Prog);

  LabelRegistry Registry;
  std::vector<PureAnalysis> Analyses;
  std::vector<Optimization> Optimizations;
  std::vector<Pass> Pipeline;
  std::map<std::string, Labeling> LastLabelings;
};

} // namespace engine
} // namespace cobalt

#endif // COBALT_ENGINE_PASSMANAGER_H
