//===- Engine.cpp ---------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "core/Match.h"
#include "ir/Cfg.h"
#include "support/Errors.h"
#include "support/FaultInjection.h"

#include <cassert>
#include <set>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

std::vector<MatchSite> engine::computeDelta(const TransformationPattern &Pat,
                                            const Procedure &P,
                                            const LabelRegistry &Registry,
                                            const Labeling *AnalysisLabeling,
                                            RunStats *Stats) {
  Cfg G(P);
  GuardSolution Sol =
      solveGuard(Pat.Dir, Pat.G, G, Registry, AnalysisLabeling);

  std::vector<MatchSite> Delta;
  for (int I = 0; I < P.size(); ++I) {
    std::set<Substitution> Seen;
    for (const Substitution &Theta : Sol.AtNode[I]) {
      Substitution Extended = Theta;
      if (!matchStmt(Pat.From, P.stmtAt(I), Extended))
        continue;
      if (Seen.insert(Extended).second)
        Delta.push_back({I, Extended});
    }
  }
  if (Stats) {
    Stats->DeltaSize = static_cast<unsigned>(Delta.size());
    Stats->FixpointIters = Sol.Iterations;
  }
  return Delta;
}

unsigned engine::applySites(const Stmt &To, Procedure &P,
                            const std::vector<MatchSite> &Sites,
                            std::vector<int> *AppliedIndexOut) {
  std::set<int> Rewritten;
  unsigned Count = 0;
  for (const MatchSite &Site : Sites) {
    assert(P.isValidIndex(Site.Index) && "transformation site out of range");
    if (!Rewritten.insert(Site.Index).second)
      continue; // footnote 4: one winner per index
    auto NewStmt = applySubst(To, Site.Theta);
    if (!NewStmt)
      continue; // uninstantiable site (malformed choose output)
    if (*NewStmt == P.Stmts[Site.Index])
      continue; // already in the target form; not a change
    P.Stmts[Site.Index] = std::move(*NewStmt);
    ++Count;
    if (AppliedIndexOut)
      AppliedIndexOut->push_back(Site.Index);
    // Fault-injection point: die with the rewrite half-applied. This is
    // the worst-case engine failure (a partially transformed procedure)
    // and is what the transactional pass manager's snapshot/rollback is
    // proven against.
    if (support::faultFires(support::faults::EngineThrowMidRewrite))
      throw support::PassError(
          support::ErrorKind::EK_PassPanic,
          "injected engine fault: exception after rewriting statement " +
              std::to_string(Site.Index) + " of '" + P.Name + "'");
  }
  return Count;
}

RunStats engine::runOptimization(const Optimization &O, Procedure &P,
                                 const LabelRegistry &Registry,
                                 const Labeling *AnalysisLabeling) {
  RunStats Stats;
  std::vector<MatchSite> Delta =
      computeDelta(O.Pat, P, Registry, AnalysisLabeling, &Stats);

  // choose(Δ, p) ∩ Δ — the intersection guards against a profitability
  // heuristic inventing sites, which would break the soundness argument
  // (Definition 2 takes the intersection for exactly this reason).
  std::vector<MatchSite> Chosen = O.Choose(Delta, P);
  std::set<MatchSite> Legal(Delta.begin(), Delta.end());
  std::vector<MatchSite> ToApply;
  for (MatchSite &Site : Chosen)
    if (Legal.count(Site))
      ToApply.push_back(std::move(Site));

  Stats.AppliedCount = applySites(O.Pat.To, P, ToApply,
                                  &Stats.AppliedSites);

  // Legal sites that did not result in a rewrite — the remarks stream's
  // "missed" set. Δ is index-sorted, so this comes out sorted and
  // deduplicated without further work.
  std::set<int> Applied(Stats.AppliedSites.begin(),
                        Stats.AppliedSites.end());
  for (const MatchSite &Site : Delta)
    if (!Applied.count(Site.Index) &&
        (Stats.MissedSites.empty() ||
         Stats.MissedSites.back() != Site.Index))
      Stats.MissedSites.push_back(Site.Index);
  return Stats;
}

void engine::runPureAnalysis(const PureAnalysis &A, const Procedure &P,
                             const LabelRegistry &Registry, Labeling &InOut,
                             RunStats *Stats) {
  if (InOut.empty())
    InOut.resize(P.size());
  assert(InOut.size() == static_cast<size_t>(P.size()) &&
         "labeling sized for a different procedure");

  Cfg G(P);
  // The analysis may consult labels produced by earlier analyses: pass
  // the current labeling while solving (forward analyses compose with
  // forward analyses; see §4.1).
  GuardSolution Sol =
      solveGuard(Direction::D_Forward, A.G, G, Registry, &InOut);

  unsigned Added = 0;
  Universe Univ = buildUniverse(P);
  for (int I = 0; I < P.size(); ++I) {
    NodeContext Ctx{&P, I, &Registry, &InOut, &Univ};
    for (const Substitution &Theta : Sol.AtNode[I]) {
      GroundLabel L;
      L.Name = A.LabelName;
      bool Ok = true;
      for (const Term &T : A.LabelArgs) {
        auto B = termToBinding(T, Ctx, Theta);
        if (!B) {
          Ok = false;
          break;
        }
        L.Args.push_back(std::move(*B));
      }
      if (Ok && InOut[I].insert(std::move(L)).second)
        ++Added;
    }
  }
  if (Stats) {
    Stats->DeltaSize = Added;
    Stats->FixpointIters = Sol.Iterations;
  }
}
