//===- Engine.h - Executing Cobalt optimizations and analyses ---*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine (paper §5.2): computes the legal-transformation
/// set Δ = [[O_pat]](p) of a transformation pattern, applies the subset
/// selected by the profitability heuristic (Definition 2), and runs pure
/// analyses to produce node labelings (§3.2.3). In the paper this is a
/// single generic dataflow pass inside the Whirlwind compiler; here it is
/// a library over our own IR (see DESIGN.md for the substitution note).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_ENGINE_ENGINE_H
#define COBALT_ENGINE_ENGINE_H

#include "core/Optimization.h"
#include "engine/Dataflow.h"
#include "ir/Ast.h"

#include <vector>

namespace cobalt {
namespace engine {

/// Statistics of one optimization run, consumed by tests and benches.
struct RunStats {
  unsigned DeltaSize = 0;     ///< |Δ| (legal transformations).
  unsigned AppliedCount = 0;  ///< |choose(Δ, p) ∩ Δ|.
  unsigned FixpointIters = 0; ///< Worklist iterations of the guard solve.
  /// Statement indices actually rewritten, in application order
  /// (deduplicated — one winner per index), and legal Δ indices that
  /// were *not* rewritten (choose declined, lost the per-index race, or
  /// the instantiation failed). Feed the optimization-remarks stream.
  std::vector<int> AppliedSites;
  std::vector<int> MissedSites;
};

/// Computes Δ = [[O_pat]](p): all (ι, θ) where the guard holds at ι and
/// θ extends to a match of s against stmtAt(p, ι). Results are sorted
/// (index, then substitution) for determinism.
std::vector<MatchSite> computeDelta(const TransformationPattern &Pat,
                                    const ir::Procedure &P,
                                    const LabelRegistry &Registry,
                                    const Labeling *AnalysisLabeling,
                                    RunStats *Stats = nullptr);

/// app(s', p, Δ') of Definition 2: replaces stmtAt(ι) with θ(s') for each
/// (ι, θ) ∈ Δ'. When several sites share an index, the first kept (the
/// paper chooses nondeterministically; we pick the least substitution for
/// reproducibility). Sites whose instantiation fails are skipped.
/// Returns the number of statements rewritten; when \p AppliedIndexOut
/// is non-null the rewritten statement indices are appended to it in
/// application order.
unsigned applySites(const ir::Stmt &To, ir::Procedure &P,
                    const std::vector<MatchSite> &Sites,
                    std::vector<int> *AppliedIndexOut = nullptr);

/// Runs a complete optimization on one procedure (Definition 2):
/// Δ := [[O_pat]](p); app(s', p, choose(Δ, p) ∩ Δ).
RunStats runOptimization(const Optimization &O, ir::Procedure &P,
                         const LabelRegistry &Registry,
                         const Labeling *AnalysisLabeling);

/// Runs a pure analysis, returning the new labels it adds per node: for
/// each (ι, θ) in the guard's meaning, the node ι gains θ(label(args)).
/// The result is merged into \p InOut (which must be empty or sized to
/// the procedure).
void runPureAnalysis(const PureAnalysis &A, const ir::Procedure &P,
                     const LabelRegistry &Registry, Labeling &InOut,
                     RunStats *Stats = nullptr);

} // namespace engine
} // namespace cobalt

#endif // COBALT_ENGINE_ENGINE_H
