//===- ReportJson.cpp -----------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "api/ReportJson.h"

#include <cstdio>

using namespace cobalt;
using namespace cobalt::api;

std::string api::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

const char *api::verdictName(const checker::CheckReport &R) {
  switch (R.V) {
  case checker::CheckReport::Verdict::V_Sound:
    return "sound";
  case checker::CheckReport::Verdict::V_Unsound:
    return "unsound";
  case checker::CheckReport::Verdict::V_Unproven:
    return "unproven";
  }
  return "unproven";
}

const char *api::obligationStatusName(const checker::ObligationResult &Ob) {
  switch (Ob.St) {
  case checker::ObligationResult::Status::OS_Proven:
    return "proven";
  case checker::ObligationResult::Status::OS_Failed:
    return "failed";
  case checker::ObligationResult::Status::OS_Unknown:
    return "unknown";
  }
  return "unknown";
}

void api::emitDefinitionsJson(
    std::string &Out, const std::vector<checker::CheckReport> &Reports) {
  Out += "  \"definitions\": [";
  for (size_t I = 0; I < Reports.size(); ++I) {
    const checker::CheckReport &R = Reports[I];
    Out += I ? ",\n    {" : "\n    {";
    Out += "\"name\": \"" + jsonEscape(R.Name) + "\"";
    Out += ", \"verdict\": \"" + std::string(verdictName(R)) + "\"";
    Out += ", \"cached\": ";
    Out += R.CacheHit ? "true" : "false";
    Out += ", \"degradation\": \"" +
           std::string(support::errorKindName(R.Degradation)) + "\"";
    Out += ", \"assumed_analyses\": [";
    for (size_t J = 0; J < R.AssumedAnalyses.size(); ++J) {
      if (J)
        Out += ", ";
      Out += "\"" + jsonEscape(R.AssumedAnalyses[J]) + "\"";
    }
    Out += "], \"obligations\": [";
    for (size_t J = 0; J < R.Obligations.size(); ++J) {
      const checker::ObligationResult &Ob = R.Obligations[J];
      if (J)
        Out += ", ";
      Out += "{\"name\": \"" + jsonEscape(Ob.Name) + "\"";
      Out += ", \"status\": \"" + std::string(obligationStatusName(Ob)) +
             "\"";
      Out += ", \"error\": \"" + std::string(Ob.Err.kindName()) + "\"";
      if (!Ob.Err.Message.empty())
        Out += ", \"reason\": \"" + jsonEscape(Ob.Err.Message) + "\"";
      if (!Ob.Counterexample.empty())
        Out += ", \"counterexample\": \"" + jsonEscape(Ob.Counterexample) +
               "\"";
      Out += "}";
    }
    Out += "]}";
  }
  Out += "\n  ]";
}

void api::emitPipelineJson(std::string &Out,
                           const std::vector<engine::PassReport> &Reports) {
  Out += "  \"pipeline\": [";
  for (size_t I = 0; I < Reports.size(); ++I) {
    const engine::PassReport &R = Reports[I];
    Out += I ? ",\n    {" : "\n    {";
    Out += "\"pass\": \"" + jsonEscape(R.PassName) + "\"";
    Out += ", \"proc\": \"" + jsonEscape(R.ProcName) + "\"";
    Out += ", \"applied\": " + std::to_string(R.AppliedCount);
    Out += ", \"error\": \"" + std::string(R.Err.kindName()) + "\"";
    if (!R.Err.Message.empty())
      Out += ", \"detail\": \"" + jsonEscape(R.Err.Message) + "\"";
    Out += ", \"rolled_back\": ";
    Out += R.RolledBack ? "true" : "false";
    Out += ", \"quarantined\": ";
    Out += R.Quarantined ? "true" : "false";
    Out += "}";
  }
  Out += "\n  ]";
}

void api::emitValidationJson(std::string &Out,
                             const validate::ValidationReport &Report) {
  Out += "  \"validation\": {";
  Out += "\"verdict\": \"" +
         std::string(validate::verdictName(Report.V)) + "\"";
  Out += ", \"method\": \"" + jsonEscape(Report.Method) + "\"";
  if (!Report.Witness.empty())
    Out += ", \"witness\": \"" + jsonEscape(Report.Witness) + "\"";
  if (!Report.Detail.empty())
    Out += ", \"detail\": \"" + jsonEscape(Report.Detail) + "\"";
  Out += ", \"degraded\": ";
  Out += Report.Degraded ? "true" : "false";
  Out += ", \"procs\": [";
  for (size_t I = 0; I < Report.Procs.size(); ++I) {
    const validate::ProcOutcome &P = Report.Procs[I];
    Out += I ? ",\n    {" : "\n    {";
    Out += "\"name\": \"" + jsonEscape(P.Name) + "\"";
    Out += ", \"verdict\": \"" + std::string(validate::verdictName(P.V)) +
           "\"";
    Out += ", \"method\": \"" + jsonEscape(P.Method) + "\"";
    if (!P.Detail.empty())
      Out += ", \"detail\": \"" + jsonEscape(P.Detail) + "\"";
    Out += ", \"obligations\": " + std::to_string(P.Obligations);
    Out += ", \"proven\": " + std::to_string(P.Proven);
    Out += ", \"failed\": " + std::to_string(P.Failed);
    Out += ", \"unproven\": " + std::to_string(P.Unproven);
    Out += ", \"cached\": ";
    Out += P.CacheHit ? "true" : "false";
    Out += "}";
  }
  Out += Report.Procs.empty() ? "]" : "\n  ]";
  Out += "}";
}
