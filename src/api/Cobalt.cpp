//===- Cobalt.cpp ---------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"

#include "ir/Parser.h"
#include "opts/StdlibCobalt.h"
#include "support/ThreadPool.h"

#include <fstream>
#include <sstream>

using namespace cobalt;
using namespace cobalt::api;
using support::ErrorKind;

CobaltContext::CobaltContext(CobaltConfig Config)
    : Config(std::move(Config)),
      Pool(std::make_unique<support::ThreadPool>(this->Config.Jobs)) {
  if (this->Config.Telemetry && support::telemetryCompiledIn()) {
    Telem = std::make_unique<support::Telemetry>();
    preregisterHeadlineCounters(*Telem);
  }
  PM.setTxPolicy(this->Config.Tx);
  PM.setThreadPool(Pool.get());
}

CobaltContext::~CobaltContext() = default;

//===----------------------------------------------------------------------===//
// Front end.
//===----------------------------------------------------------------------===//

support::Expected<std::string>
CobaltContext::readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return support::Error(ErrorKind::EK_IoError,
                          "cannot read '" + Path + "'");
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

support::Expected<CobaltModule>
CobaltContext::parseModule(std::string_view Text) {
  DiagnosticEngine Diags;
  if (std::optional<CobaltModule> M = parseCobalt(Text, Diags))
    return std::move(*M);
  return support::Error(ErrorKind::EK_ParseError, Diags.str());
}

support::Expected<CobaltModule>
CobaltContext::loadModuleFile(const std::string &Path) {
  if (Path == "stdlib")
    return parseModule(opts::StdlibCobaltSource);
  support::Expected<std::string> Text = readFile(Path);
  if (!Text)
    return Text.error();
  return parseModule(*Text);
}

support::Expected<ir::Program>
CobaltContext::parseProgram(std::string_view Text) {
  DiagnosticEngine Diags;
  if (std::optional<ir::Program> P = ir::parseProgram(Text, Diags))
    return std::move(*P);
  return support::Error(ErrorKind::EK_ParseError, Diags.str());
}

support::Expected<ir::Program>
CobaltContext::loadProgramFile(const std::string &Path) {
  support::Expected<std::string> Text = readFile(Path);
  if (!Text)
    return Text.error();
  return parseProgram(*Text);
}

//===----------------------------------------------------------------------===//
// Registration.
//===----------------------------------------------------------------------===//

void CobaltContext::defineLabel(const LabelDef &Def) {
  PM.defineLabel(Def);
  Labels.push_back(Def);
  ServiceDirty = true;
}

void CobaltContext::addAnalysis(PureAnalysis A) {
  Analyses.push_back(A);
  PM.addAnalysis(std::move(A));
  ServiceDirty = true;
}

void CobaltContext::addOptimization(Optimization O) {
  Optimizations.push_back(O);
  PM.addOptimization(std::move(O));
  ServiceDirty = true;
}

void CobaltContext::addModule(CobaltModule Module) {
  for (const LabelDef &Def : Module.Labels)
    defineLabel(Def);
  for (PureAnalysis &A : Module.Analyses)
    addAnalysis(std::move(A));
  for (Optimization &O : Module.Optimizations)
    addOptimization(std::move(O));
}

//===----------------------------------------------------------------------===//
// Checking.
//===----------------------------------------------------------------------===//

void CobaltContext::ensureService() {
  if (Svc && !ServiceDirty)
    return;
  if (Svc)
    PriorCacheHits += Svc->cacheHits() + Svc->prover().cacheHits();
  CobaltService::Builder B;
  B.config(Config).telemetry(Telem.get());
  for (const LabelDef &Def : Labels)
    B.defineLabel(Def);
  for (const PureAnalysis &A : Analyses)
    B.addAnalysis(A);
  for (const Optimization &O : Optimizations)
    B.addOptimization(O);
  Svc = B.build();
  ServiceDirty = false;
}

std::shared_ptr<CobaltService> CobaltContext::service() {
  ensureService();
  return Svc;
}

checker::SoundnessChecker &CobaltContext::prover() {
  ensureService();
  return Svc->prover();
}

unsigned CobaltContext::cacheHits() const {
  if (!Svc)
    return PriorCacheHits;
  return PriorCacheHits + Svc->cacheHits() + Svc->prover().cacheHits();
}

checker::CheckReport CobaltContext::check(const Optimization &O) {
  ensureService();
  support::TelemetryScope Scope(Telem.get());
  return Svc->prover().checkOptimization(O);
}

checker::CheckReport CobaltContext::check(const PureAnalysis &A) {
  ensureService();
  support::TelemetryScope Scope(Telem.get());
  return Svc->prover().checkAnalysis(A);
}

SuiteResult CobaltContext::checkRegistered() {
  ensureService();
  CheckResponse Resp = Svc->check(CheckRequest{});
  if (RemarkFn)
    for (const support::Remark &Rem : Resp.Remarks)
      RemarkFn(Rem);
  return std::move(Resp.Suite);
}

//===----------------------------------------------------------------------===//
// Pipeline.
//===----------------------------------------------------------------------===//

namespace {

PipelineResult summarize(std::vector<engine::PassReport> Reports,
                         bool Degraded) {
  PipelineResult R;
  R.Reports = std::move(Reports);
  for (const engine::PassReport &Report : R.Reports)
    R.Applied += Report.AppliedCount;
  R.Degraded = Degraded;
  return R;
}

} // namespace

void CobaltContext::deliverRemarks(
    const std::vector<engine::PassReport> &Reports) {
  if (!RemarkFn)
    return;
  // Reports are already merged in deterministic (procedure, pass) order,
  // and this runs on the driving thread after the parallel section — so
  // the callback sees the same remark sequence at every --jobs width.
  for (const engine::PassReport &R : Reports)
    for (const support::Remark &Rem : R.Remarks)
      RemarkFn(Rem);
}

PipelineResult CobaltContext::runPipeline(ir::Program &Prog) {
  support::TelemetryScope Scope(Telem.get());
  // The run must happen before lastRunDegraded() is read; argument
  // evaluation order would not guarantee that inline.
  std::vector<engine::PassReport> Reports = PM.run(Prog);
  PipelineResult Result = summarize(std::move(Reports), PM.lastRunDegraded());
  deliverRemarks(Result.Reports);
  return Result;
}

PipelineResult
CobaltContext::runPipeline(ir::Program &Prog,
                           const std::vector<std::string> &PassNames) {
  support::TelemetryScope Scope(Telem.get());
  std::vector<engine::PassReport> Reports = PM.runSelected(PassNames, Prog);
  PipelineResult Result = summarize(std::move(Reports), PM.lastRunDegraded());
  deliverRemarks(Result.Reports);
  return Result;
}

fuzz::FuzzSummary
CobaltContext::runFuzz(const std::vector<fuzz::FuzzTarget> &Targets,
                       const fuzz::FuzzOptions &Options) {
  support::TelemetryScope Scope(Telem.get());
  return fuzz::runFuzz(Targets, Options, *Pool);
}
