//===- Cobalt.cpp ---------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"

#include "ir/Parser.h"
#include "opts/StdlibCobalt.h"
#include "support/ThreadPool.h"

#include <fstream>
#include <sstream>

using namespace cobalt;
using namespace cobalt::api;
using support::ErrorKind;

CobaltContext::CobaltContext(CobaltConfig Config)
    : Config(std::move(Config)),
      Pool(std::make_unique<support::ThreadPool>(this->Config.Jobs)) {
  if (this->Config.Telemetry && support::telemetryCompiledIn()) {
    Telem = std::make_unique<support::Telemetry>();
    // Pre-register the headline counters at zero so every metrics dump
    // carries the full schema — a check-only run still shows
    // engine.rollbacks: 0 rather than omitting the key.
    static const char *const Headline[] = {
        "checker.obligations",     "checker.obligations.proven",
        "checker.obligations.failed", "checker.obligations.unknown",
        "checker.retries",         "checker.rlimit_spent",
        "checker.cache.hits",      "checker.cache.misses",
        "cache.disk.hits",         "cache.disk.misses",
        "cache.disk.stores",       "cache.disk.corrupt",
        "worker.spawns",           "worker.restarts",
        "worker.crashes",          "worker.kills_wall",
        "worker.kills_rss",        "worker.quarantined",
        "engine.procs",
        "engine.passes",           "engine.rewrites",
        "engine.rollbacks",        "engine.pass_failures",
        "engine.quarantine_skips", "dataflow.solves",
        "dataflow.fixpoint_iters", "dataflow.meet_dropped",
        "dataflow.psi2_dropped",   "fuzz.runs",
        "fuzz.programs",           "fuzz.divergences",
        "fuzz.findings",           "fuzz.oracle.execs",
        "fuzz.reduce.runs",        "fuzz.reduce.candidates",
        "fuzz.reduce.stmts_removed"};
    for (const char *Name : Headline)
      Telem->Metrics.add(Name, 0);
  }
  PM.setTxPolicy(this->Config.Tx);
  PM.setThreadPool(Pool.get());
}

CobaltContext::~CobaltContext() = default;

//===----------------------------------------------------------------------===//
// Front end.
//===----------------------------------------------------------------------===//

support::Expected<std::string>
CobaltContext::readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return support::Error(ErrorKind::EK_IoError,
                          "cannot read '" + Path + "'");
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

support::Expected<CobaltModule>
CobaltContext::parseModule(std::string_view Text) {
  DiagnosticEngine Diags;
  if (std::optional<CobaltModule> M = parseCobalt(Text, Diags))
    return std::move(*M);
  return support::Error(ErrorKind::EK_ParseError, Diags.str());
}

support::Expected<CobaltModule>
CobaltContext::loadModuleFile(const std::string &Path) {
  if (Path == "stdlib")
    return parseModule(opts::StdlibCobaltSource);
  support::Expected<std::string> Text = readFile(Path);
  if (!Text)
    return Text.error();
  return parseModule(*Text);
}

support::Expected<ir::Program>
CobaltContext::parseProgram(std::string_view Text) {
  DiagnosticEngine Diags;
  if (std::optional<ir::Program> P = ir::parseProgram(Text, Diags))
    return std::move(*P);
  return support::Error(ErrorKind::EK_ParseError, Diags.str());
}

support::Expected<ir::Program>
CobaltContext::loadProgramFile(const std::string &Path) {
  support::Expected<std::string> Text = readFile(Path);
  if (!Text)
    return Text.error();
  return parseProgram(*Text);
}

//===----------------------------------------------------------------------===//
// Registration.
//===----------------------------------------------------------------------===//

void CobaltContext::defineLabel(const LabelDef &Def) {
  PM.defineLabel(Def);
  CheckerDirty = true;
}

void CobaltContext::addAnalysis(PureAnalysis A) {
  Analyses.push_back(A);
  PM.addAnalysis(std::move(A));
  CheckerDirty = true;
}

void CobaltContext::addOptimization(Optimization O) {
  Optimizations.push_back(O);
  PM.addOptimization(std::move(O));
  CheckerDirty = true;
}

void CobaltContext::addModule(CobaltModule Module) {
  for (const LabelDef &Def : Module.Labels)
    defineLabel(Def);
  for (PureAnalysis &A : Module.Analyses)
    addAnalysis(std::move(A));
  for (Optimization &O : Module.Optimizations)
    addOptimization(std::move(O));
}

//===----------------------------------------------------------------------===//
// Checking.
//===----------------------------------------------------------------------===//

void CobaltContext::ensureChecker() {
  if (Checker && !CheckerDirty)
    return;
  if (Checker)
    PriorCacheHits += Checker->cacheHits();
  Checker = std::make_unique<checker::SoundnessChecker>(PM.registry(),
                                                        Analyses);
  Checker->setPolicy(Config.Prover);
  Checker->setThreadPool(Pool.get());
  if (!Config.CacheDir.empty())
    Checker->setCacheDir(Config.CacheDir);
  CheckerDirty = false;
}

checker::SoundnessChecker &CobaltContext::prover() {
  ensureChecker();
  return *Checker;
}

unsigned CobaltContext::cacheHits() const {
  return PriorCacheHits + (Checker ? Checker->cacheHits() : 0);
}

checker::CheckReport CobaltContext::check(const Optimization &O) {
  ensureChecker();
  support::TelemetryScope Scope(Telem.get());
  return Checker->checkOptimization(O);
}

checker::CheckReport CobaltContext::check(const PureAnalysis &A) {
  ensureChecker();
  support::TelemetryScope Scope(Telem.get());
  return Checker->checkAnalysis(A);
}

SuiteResult CobaltContext::checkRegistered() {
  ensureChecker();
  support::TelemetryScope Scope(Telem.get());
  SuiteResult S;
  S.Reports = Checker->checkSuite(Analyses, Optimizations);
  for (size_t I = 0; I < S.Reports.size(); ++I) {
    const checker::CheckReport &R = S.Reports[I];
    if (R.V == checker::CheckReport::Verdict::V_Unsound)
      ++S.Unsound;
    else if (R.V == checker::CheckReport::Verdict::V_Unproven)
      ++S.Unproven;
    // Containment degradation is reported per definition and surfaced
    // as a remark on the same channel the engine's quarantine skips use,
    // so drivers see *why* a verdict is missing, not just that it is.
    unsigned QuarantinedObs = 0;
    for (const checker::ObligationResult &Ob : R.Obligations)
      if (Ob.Err.Kind == ErrorKind::EK_WorkerCrash)
        ++QuarantinedObs;
    if (QuarantinedObs != 0) {
      ++S.Quarantined;
      if (RemarkFn) {
        support::Remark Rem;
        Rem.K = support::Remark::Kind::RK_Missed;
        Rem.Pass = R.Name;
        Rem.Note = std::to_string(QuarantinedObs) +
                   " obligation(s) quarantined after repeated prover-"
                   "worker failures; verdict degraded to unproven";
        RemarkFn(Rem);
      }
    }
    if (I < Analyses.size()) {
      if (R.Sound)
        S.ProvenAnalyses.insert(Analyses[I].Name);
      continue;
    }
    // The optimization's guarantee is conditional on its assumed
    // analyses being proven themselves (§6).
    bool AnalysesOk = true;
    for (const std::string &Dep : R.AssumedAnalyses)
      AnalysesOk = AnalysesOk && S.ProvenAnalyses.count(Dep) != 0;
    const std::string &Name = Optimizations[I - Analyses.size()].Name;
    if (R.Sound && AnalysesOk)
      S.ProvenOptimizations.insert(Name);
    else if (R.Sound)
      S.Conditional.push_back(Name);
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Pipeline.
//===----------------------------------------------------------------------===//

namespace {

PipelineResult summarize(std::vector<engine::PassReport> Reports,
                         bool Degraded) {
  PipelineResult R;
  R.Reports = std::move(Reports);
  for (const engine::PassReport &Report : R.Reports)
    R.Applied += Report.AppliedCount;
  R.Degraded = Degraded;
  return R;
}

} // namespace

void CobaltContext::deliverRemarks(
    const std::vector<engine::PassReport> &Reports) {
  if (!RemarkFn)
    return;
  // Reports are already merged in deterministic (procedure, pass) order,
  // and this runs on the driving thread after the parallel section — so
  // the callback sees the same remark sequence at every --jobs width.
  for (const engine::PassReport &R : Reports)
    for (const support::Remark &Rem : R.Remarks)
      RemarkFn(Rem);
}

PipelineResult CobaltContext::runPipeline(ir::Program &Prog) {
  support::TelemetryScope Scope(Telem.get());
  // The run must happen before lastRunDegraded() is read; argument
  // evaluation order would not guarantee that inline.
  std::vector<engine::PassReport> Reports = PM.run(Prog);
  PipelineResult Result = summarize(std::move(Reports), PM.lastRunDegraded());
  deliverRemarks(Result.Reports);
  return Result;
}

PipelineResult
CobaltContext::runPipeline(ir::Program &Prog,
                           const std::vector<std::string> &PassNames) {
  support::TelemetryScope Scope(Telem.get());
  std::vector<engine::PassReport> Reports = PM.runSelected(PassNames, Prog);
  PipelineResult Result = summarize(std::move(Reports), PM.lastRunDegraded());
  deliverRemarks(Result.Reports);
  return Result;
}

fuzz::FuzzSummary
CobaltContext::runFuzz(const std::vector<fuzz::FuzzTarget> &Targets,
                       const fuzz::FuzzOptions &Options) {
  support::TelemetryScope Scope(Telem.get());
  return fuzz::runFuzz(Targets, Options, *Pool);
}
