//===- Service.h - The shared CobaltService + request types ----*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request-oriented core of verification-as-a-service (DESIGN.md
/// §13). The old `CobaltContext` was a one-shot, single-client object:
/// `check`/`runPipeline` mutated shared checker and pass-manager state in
/// place, so two concurrent callers would race. This header splits that
/// facade along the immutable/mutable line:
///
///  * **CobaltService** — everything that is expensive and shareable,
///    frozen at build() time: the registered definitions and label
///    registry, the thread pool, the two-tier verdict cache, the
///    telemetry session, and the obligation-dedup memo. One service, many
///    concurrent callers; after build() nothing about it mutates except
///    caches and counters (all internally synchronized).
///
///  * **CheckRequest / PipelineRequest** — cheap per-call value types.
///    Each carries its *own* jobs / budget / fault-key overrides, so two
///    callers of one service can run with different resource policies
///    without trampling each other.
///
/// Responses are values too (`CheckResponse` / `PipelineResponse`), with
/// a three-way status: Ok, Retry (admission control turned the request
/// away — back off and resend), or Error.
///
/// ## Obligation dedup
///
/// Concurrent requests proving the same definition would otherwise each
/// discharge its obligations. The service keys every definition by the
/// checker's structural fingerprint and keeps a memo
/// `fingerprint → shared_future<report>`: the first requester (the
/// *leader*) proves, every concurrent or later requester awaits the
/// shared future and receives the leader's report object verbatim —
/// which is also what makes N clients' responses byte-identical.
/// Definitive verdicts stay memoized for the service's lifetime;
/// Unproven reports are handed to current waiters but evicted, so a
/// later request re-proves them (mirroring the verdict cache's
/// never-cache-Unproven rule).
///
/// ## Admission control
///
/// `CobaltConfig::MaxInFlightObligations` bounds the obligations being
/// proven at once. A request whose leader set would push past the bound
/// gets `RS_Retry` (never queued invisibly) — unless the service is
/// idle, in which case it is always admitted so one oversized suite can
/// still make progress.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_API_SERVICE_H
#define COBALT_API_SERVICE_H

#include "checker/Soundness.h"
#include "core/CobaltParser.h"
#include "engine/PassManager.h"
#include "ir/Ast.h"
#include "support/Expected.h"
#include "support/Telemetry.h"
#include "validate/Validate.h"

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace cobalt {

namespace support {
class PersistentCache;
class ThreadPool;
} // namespace support

namespace api {

/// Everything a service owns, fixed at build time.
struct CobaltConfig {
  checker::ProverPolicy Prover; ///< Obligation resource policy.
  engine::TxPolicy Tx;          ///< Transactional pass policy.
  /// Thread-pool width shared by the checker (obligations) and the pass
  /// manager (procedures). 1 = sequential (no worker threads at all);
  /// 0 = one worker per hardware thread. Results are bit-identical for
  /// every value.
  unsigned Jobs = 1;
  /// When nonempty, proved verdicts persist here across processes
  /// (see support::PersistentCache). Unusable directories degrade to the
  /// in-memory cache, they are never an error.
  std::string CacheDir;
  /// Collect metrics and trace spans for this service's operations (the
  /// substrate behind cobaltc --trace-out/--metrics-out). Off by
  /// default: with it off, instrumentation sites cost one relaxed atomic
  /// load each. Ignored (always off) when the telemetry layer was
  /// compiled out with -DCOBALT_TELEMETRY=OFF.
  bool Telemetry = false;
  /// Admission bound: maximum obligations in flight across all requests
  /// (0 = unlimited). A check request that would exceed it receives
  /// RS_Retry instead of queueing, except when the service is idle.
  unsigned MaxInFlightObligations = 0;
};

/// Outcome of proving a set of registered definitions.
struct SuiteResult {
  std::vector<checker::CheckReport> Reports; ///< Analyses, then opts.
  unsigned Unsound = 0;  ///< Genuine counterexamples.
  unsigned Unproven = 0; ///< Prover gave up (infra degradation).
  /// Definitions with at least one obligation quarantined by worker
  /// containment (EK_WorkerCrash): the prover subprocess kept dying and
  /// the verdict degraded to unproven. A subset of Unproven; drives
  /// cobaltc's distinct containment-degraded exit code.
  unsigned Quarantined = 0;
  std::set<std::string> ProvenAnalyses;
  std::set<std::string> ProvenOptimizations;
  /// Optimizations whose own obligations were proven but which assume an
  /// analysis that was not — sound conditionally, treated as unproven.
  std::vector<std::string> Conditional;

  bool allSound() const { return Unsound == 0 && Unproven == 0; }
  /// Worker containment (not mere prover limits) degraded some verdict.
  bool containmentDegraded() const { return Quarantined != 0; }

  /// The proven pass names in one list (for runPipeline's subset form).
  std::vector<std::string> provenPassNames() const {
    std::vector<std::string> Names(ProvenAnalyses.begin(),
                                   ProvenAnalyses.end());
    Names.insert(Names.end(), ProvenOptimizations.begin(),
                 ProvenOptimizations.end());
    return Names;
  }
};

/// Outcome of one pipeline run over a program.
struct PipelineResult {
  std::vector<engine::PassReport> Reports; ///< (pass, procedure) order.
  unsigned Applied = 0; ///< Total rewrites across all reports.
  bool Degraded = false; ///< Any failure / rollback / quarantine skip.
};

/// Three-way request outcome. Retry is admission control speaking: the
/// request was *not* processed (no partial effects) and should be
/// resent after a backoff.
enum class ResponseStatus {
  RS_Ok,
  RS_Retry,
  RS_Error,
};

const char *responseStatusName(ResponseStatus S);

/// One soundness-checking request. Cheap to construct per call; every
/// field is an override of the service's defaults.
struct CheckRequest {
  /// Definition names to check; empty = every registered definition.
  /// A name the service does not know yields RS_Error(EK_Unavailable).
  std::vector<std::string> Only;
  /// 0 = the service's pool width; 1 = sequential on the calling thread.
  /// (The pool is sized at build time, so values > 1 select the pool,
  /// not a new width.)
  unsigned Jobs = 0;
  /// Per-definition wall budget override in ms; -1 = service policy.
  int64_t BudgetMs = -1;
  /// Salt XOR'd into this request's obligation fault keys (see
  /// SoundnessChecker::setFaultKeySalt). 0 = unsalted, reproducible.
  uint64_t FaultKeySalt = 0;
  /// Request trace ID (nonzero = caller-supplied, e.g. forwarded by the
  /// daemon from the protocol frame); 0 = the service mints one. Every
  /// span and flight event this request produces — including prover-
  /// worker spans across the fork — carries it.
  uint64_t TraceId = 0;
};

struct CheckResponse {
  ResponseStatus Status = ResponseStatus::RS_Ok;
  SuiteResult Suite;
  /// Remarks synthesized during suite assembly (quarantined-obligation
  /// notices), in deterministic report order.
  std::vector<support::Remark> Remarks;
  support::Error Err; ///< Populated when Status == RS_Error.

  bool ok() const { return Status == ResponseStatus::RS_Ok; }
  bool retry() const { return Status == ResponseStatus::RS_Retry; }
};

/// One pipeline request. Owns its program: the service transforms a copy
/// the caller moved in and moves it back out in the response, so two
/// concurrent pipeline requests share nothing.
struct PipelineRequest {
  ir::Program Prog;
  /// With SelectedOnly, run exactly the registered passes named here (in
  /// registration order — pair with SuiteResult::provenPassNames());
  /// otherwise run every registered pass and PassNames is ignored.
  std::vector<std::string> PassNames;
  bool SelectedOnly = false;
  /// 0 = the service's pool width; 1 = sequential on the calling thread.
  unsigned Jobs = 0;
  /// Request trace ID; 0 = the service mints one (see CheckRequest).
  uint64_t TraceId = 0;
};

struct PipelineResponse {
  ResponseStatus Status = ResponseStatus::RS_Ok;
  PipelineResult Result;
  ir::Program Prog; ///< The transformed program (moved from the request).
  support::Error Err;

  bool ok() const { return Status == ResponseStatus::RS_Ok; }
};

/// One translation-validation request: prove an (original, candidate)
/// program pair equivalent, or produce a concrete counterexample. Owns
/// its programs, like PipelineRequest.
struct ValidateRequest {
  ir::Program Original;
  ir::Program Candidate;
  validate::ValidationOptions Options;
  /// 0 = the service's pool width; 1 = sequential on the calling thread.
  unsigned Jobs = 0;
  /// Per-procedure wall budget override in ms; -1 = service policy.
  int64_t BudgetMs = -1;
  uint64_t FaultKeySalt = 0;
  /// Request trace ID; 0 = the service mints one (see CheckRequest).
  uint64_t TraceId = 0;
};

struct ValidateResponse {
  ResponseStatus Status = ResponseStatus::RS_Ok;
  validate::ValidationReport Report;
  support::Error Err;

  bool ok() const { return Status == ResponseStatus::RS_Ok; }
};

/// The immutable, shareable half of the old facade. Build once (via
/// Builder), then issue requests from any number of threads; per-request
/// state (checkers, pass managers) is constructed fresh inside each call
/// and the shared state (verdict cache, dedup memo, counters) is
/// internally synchronized. `cobaltd` serves exactly this object over a
/// socket; in-process embedders call it directly.
class CobaltService {
public:
  class Builder;

  ~CobaltService();
  CobaltService(const CobaltService &) = delete;
  CobaltService &operator=(const CobaltService &) = delete;

  const CobaltConfig &config() const { return Config; }

  /// \name Requests (thread-safe).
  /// @{

  /// Proves the requested definitions (analyses first, then
  /// optimizations, in registration order), deduplicating in-flight
  /// obligations against concurrent requests via the fingerprint memo.
  CheckResponse check(const CheckRequest &Req);

  /// Runs the registered pipeline over the request's program on a fresh
  /// per-request PassManager (quarantine state is per-request: one
  /// caller's failing pass never poisons another's pipeline).
  PipelineResponse run(PipelineRequest Req);

  /// Translation-validates the request's candidate program against its
  /// original on a fresh per-request checker. Identical concurrent pairs
  /// are deduplicated through a fingerprint memo (one prover run, every
  /// caller receives the leader's report); Unknown verdicts are handed
  /// to current waiters but never memoized, mirroring the verdict
  /// cache's never-cache-Unproven rule.
  ValidateResponse validate(ValidateRequest Req);
  /// @}

  /// \name Parsing helpers (stateless; thread-safe).
  /// @{
  support::Expected<CobaltModule> parseModule(std::string_view Text) const;
  support::Expected<ir::Program> parseProgram(std::string_view Text) const;
  /// @}

  /// \name Introspection.
  /// @{
  const LabelRegistry &registry() const { return ProtoPM.registry(); }
  const std::vector<PureAnalysis> &analyses() const { return Analyses; }
  const std::vector<Optimization> &optimizations() const {
    return Optimizations;
  }
  size_t definitionCount() const {
    return Analyses.size() + Optimizations.size();
  }
  support::ThreadPool &pool() { return *Pool; }
  /// The service's two-tier verdict store (hot tier always on; disk tier
  /// behind it when Config.CacheDir is set).
  const std::shared_ptr<support::PersistentCache> &verdictCache() const {
    return Cache;
  }
  /// Definitions served from any cache tier or from the dedup memo,
  /// across the service's lifetime.
  unsigned cacheHits() const;
  /// The telemetry session (owned or adopted), or nullptr when off.
  support::Telemetry *telemetry() { return Telem; }
  /// The prototype checker (service defaults, shared cache attached).
  /// Single-threaded compat access only — requests never touch it.
  checker::SoundnessChecker &prover() { return *Proto; }
  /// @}

  /// Suite → CLI exit code, shared by cobaltc and cobaltd so the two
  /// binaries cannot drift: 0 all sound, 1 rejected, 3 infrastructure
  /// degraded, 4 containment degraded (rejection takes precedence over
  /// containment over plain degradation).
  static int exitCodeFor(const SuiteResult &Suite, bool PipelineDegraded);

  /// Validation verdict → CLI exit code, shared by cobaltc and cobaltd:
  /// 0 Equivalent, 1 Inequivalent, 3 Unknown.
  static int exitCodeFor(const validate::ValidationReport &Report);

private:
  friend class Builder;
  CobaltService(CobaltConfig C, std::vector<LabelDef> Labels,
                std::vector<PureAnalysis> As, std::vector<Optimization> Os,
                support::Telemetry *ExternalTelemetry);

  /// One definition to prove, resolved against the registered vectors.
  struct Target {
    bool IsAnalysis;
    size_t Index; ///< Into Analyses or Optimizations.
    uint64_t Fingerprint;
  };
  using ReportPtr = std::shared_ptr<const checker::CheckReport>;
  using ReportFuture = std::shared_future<ReportPtr>;

  bool resolveTargets(const CheckRequest &Req, std::vector<Target> &Out,
                      support::Error &Err) const;
  void configureChecker(checker::SoundnessChecker &C,
                        const CheckRequest &Req) const;

  CobaltConfig Config;
  /// Registry + definition holder. The per-request pass managers and
  /// checkers are built from these vectors; ProtoPM's registry is the
  /// master the checkers reference (it outlives every request).
  engine::PassManager ProtoPM;
  std::vector<LabelDef> Labels;
  std::vector<PureAnalysis> Analyses;
  std::vector<Optimization> Optimizations;
  std::unique_ptr<support::ThreadPool> Pool;
  std::shared_ptr<support::PersistentCache> Cache;
  std::unique_ptr<support::Telemetry> OwnedTelem;
  support::Telemetry *Telem = nullptr; ///< Owned or adopted.
  std::unique_ptr<checker::SoundnessChecker> Proto;

  /// Guards the dedup memo, the admission ledger, and the obligation
  /// count estimates — one lock because admission decisions must see a
  /// consistent leader set.
  using ValidationReportPtr =
      std::shared_ptr<const validate::ValidationReport>;
  using ValidationFuture = std::shared_future<ValidationReportPtr>;

  mutable std::mutex ServiceMutex;
  std::unordered_map<uint64_t, ReportFuture> Memo;
  /// Dedup memo for validate() requests, keyed by fingerprintPair.
  std::unordered_map<uint64_t, ValidationFuture> ValidateMemo;
  /// While a leader is proving a fingerprint, the trace IDs of every
  /// request that attached to its future. Snapshot into the leader's
  /// prove-span `linked` list when the proving finishes, then dropped —
  /// post-completion memo hits are ordinary cache traffic, not joins.
  std::unordered_map<uint64_t, std::vector<uint64_t>> MemoFollowers;
  uint64_t InFlightObligations = 0;
  /// Actual obligation counts from past provings (admission estimates).
  std::unordered_map<uint64_t, unsigned> KnownObligations;

  /// Fork-safety (DESIGN.md §12): a subprocess-isolation leader forks
  /// prover workers, which must not happen while another thread is
  /// inside Z3 in-process. In-process leaders hold this shared,
  /// subprocess leaders exclusive.
  std::shared_mutex IsolationMutex;

  mutable std::mutex StatsMutex;
  unsigned TotalCacheHits = 0;
};

/// Accumulates definitions + config, then freezes them into a service.
/// The builder is single-threaded; the built service is not.
class CobaltService::Builder {
public:
  Builder &config(CobaltConfig C) {
    Cfg = std::move(C);
    return *this;
  }
  Builder &defineLabel(const LabelDef &Def) {
    Labels.push_back(Def);
    return *this;
  }
  Builder &addAnalysis(PureAnalysis A) {
    Analyses.push_back(std::move(A));
    return *this;
  }
  Builder &addOptimization(Optimization O) {
    Optimizations.push_back(std::move(O));
    return *this;
  }
  /// Registers everything a parsed module defines (labels, analyses,
  /// optimizations, in that order).
  Builder &addModule(CobaltModule Module);
  /// Adopt an external telemetry session (non-owning; must outlive the
  /// service) instead of having the service create its own. Used by the
  /// compat CobaltContext so metrics survive service rebuilds.
  Builder &telemetry(support::Telemetry *T) {
    ExternalTelem = T;
    return *this;
  }

  /// Freezes everything into an immutable shared service.
  std::shared_ptr<CobaltService> build();

private:
  CobaltConfig Cfg;
  std::vector<LabelDef> Labels;
  std::vector<PureAnalysis> Analyses;
  std::vector<Optimization> Optimizations;
  support::Telemetry *ExternalTelem = nullptr;
};

/// Pre-registers the headline counters at zero on \p T so every metrics
/// dump carries the full schema — a check-only run still shows
/// engine.rollbacks: 0 rather than omitting the key.
void preregisterHeadlineCounters(support::Telemetry &T);

} // namespace api
} // namespace cobalt

#endif // COBALT_API_SERVICE_H
