//===- ReportJson.h - Shared machine-readable report emission ---*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON fragments of cobaltc's --report=json output, factored out so
/// the daemon (cobaltd) and the CLI emit byte-identical documents — the
/// concurrent-client determinism guarantee is "N clients, same suite,
/// same bytes", which only holds if there is exactly one serializer.
/// Emission is append-to-string (no DOM): deterministic field order,
/// deterministic escaping, no floating-point timing fields in the
/// definition reports (seconds vary run to run and are deliberately
/// excluded here; they live in telemetry).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_API_REPORTJSON_H
#define COBALT_API_REPORTJSON_H

#include "checker/Soundness.h"
#include "engine/PassManager.h"
#include "validate/Validate.h"

#include <string>
#include <vector>

namespace cobalt {
namespace api {

/// Escapes \p S for embedding inside a JSON string literal.
std::string jsonEscape(const std::string &S);

/// "sound" / "unsound" / "unproven".
const char *verdictName(const checker::CheckReport &R);

/// "proven" / "failed" / "unknown".
const char *obligationStatusName(const checker::ObligationResult &Ob);

/// Appends `"definitions": [...]` (two-space indented, no trailing
/// comma) for a suite of check reports.
void emitDefinitionsJson(std::string &Out,
                         const std::vector<checker::CheckReport> &Reports);

/// Appends `"pipeline": [...]` for a pipeline run's pass reports.
void emitPipelineJson(std::string &Out,
                      const std::vector<engine::PassReport> &Reports);

/// Appends `"validation": {...}` for a translation-validation report.
/// Timing fields are deliberately excluded: the document is
/// byte-identical for a fixed pair at every --jobs width.
void emitValidationJson(std::string &Out,
                        const validate::ValidationReport &Report);

} // namespace api
} // namespace cobalt

#endif // COBALT_API_REPORTJSON_H
