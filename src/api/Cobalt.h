//===- Cobalt.h - The CobaltContext compatibility facade --------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-client convenience facade, now a thin wrapper over the
/// request-oriented `api::CobaltService` (see Service.h and DESIGN.md
/// §13). A context still reads like the one-object API it always was:
///
/// \code
///   api::CobaltConfig Config;
///   Config.Jobs = 4;                    // obligations + procedures fan out
///   Config.CacheDir = ".cobalt-cache";  // verdicts persist across runs
///   api::CobaltContext Ctx(Config);
///
///   auto Module = Ctx.loadModuleFile("opts.cob");   // Expected<CobaltModule>
///   if (!Module)
///     die(Module.error().str());
///   Ctx.addModule(std::move(*Module));
///
///   api::SuiteResult Gate = Ctx.checkRegistered(); // prove everything
///   auto Prog = Ctx.loadProgramFile("prog.il");
///   api::PipelineResult Run = Ctx.runPipeline(
///       *Prog, Gate.provenPassNames());            // apply the proven subset
/// \endcode
///
/// Internally, registrations accumulate and a `CobaltService` is
/// (re)built lazily whenever a check runs after a registration change;
/// `checkRegistered()` is exactly `service->check({})`. The disk verdict
/// cache carries across rebuilds; the in-memory tiers do not.
///
/// ## Migrating to CobaltService
///
/// New code — and any code with more than one driving thread — should
/// build the service directly:
///
/// \code
///   auto Svc = api::CobaltService::Builder()
///                  .config(Config)
///                  .addModule(std::move(*Module))
///                  .build();                        // shared_ptr, immutable
///   api::CheckResponse R = Svc->check({});          // from any thread
/// \endcode
///
/// The context remains for one-shot drivers: it is *not* thread-safe
/// (one context per driving thread) — the parallelism lives inside
/// check/runPipeline calls and inside the shared service.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_API_COBALT_H
#define COBALT_API_COBALT_H

#include "api/Service.h"
#include "fuzz/Fuzzer.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cobalt {
namespace api {

/// Single-client facade over a lazily rebuilt CobaltService. Owns the
/// pass manager driven by runPipeline and the thread pool it fans out
/// on; checking delegates to the embedded service (which brings the
/// two-tier verdict cache and the dedup memo along for free).
class CobaltContext {
public:
  explicit CobaltContext(CobaltConfig Config = {});
  ~CobaltContext();
  CobaltContext(const CobaltContext &) = delete;
  CobaltContext &operator=(const CobaltContext &) = delete;

  const CobaltConfig &config() const { return Config; }

  /// \name Front end — unified Expected carriers.
  /// @{

  /// Parses a .cob module buffer (EK_ParseError with the diagnostics on
  /// failure).
  support::Expected<CobaltModule> parseModule(std::string_view Text);
  /// Reads and parses a module file; the special path "stdlib" loads the
  /// bundled standard module (EK_IoError / EK_ParseError on failure).
  support::Expected<CobaltModule> loadModuleFile(const std::string &Path);
  /// Parses an IL program buffer.
  support::Expected<ir::Program> parseProgram(std::string_view Text);
  /// Reads and parses an IL program file.
  support::Expected<ir::Program> loadProgramFile(const std::string &Path);
  /// @}

  /// \name Registration.
  /// @{
  void defineLabel(const LabelDef &Def);
  void addAnalysis(PureAnalysis A);
  void addOptimization(Optimization O);
  /// Registers everything a parsed module defines (labels, analyses,
  /// optimizations, in that order).
  void addModule(CobaltModule Module);
  /// @}

  /// \name Checking. Obligations fan out over the context's thread pool;
  /// verdicts hit the (persistent) cache when the definition, its
  /// labels, and the visible analyses are unchanged.
  /// @{
  checker::CheckReport check(const Optimization &O);
  checker::CheckReport check(const PureAnalysis &A);
  /// Proves every registered definition (analyses first), fanning *all*
  /// obligations out at once. Optimizations whose AssumedAnalyses are
  /// not proven are excluded from ProvenOptimizations (and listed in
  /// Conditional) — the §6 extensible-compiler gate. Equivalent to
  /// `service()->check({}).Suite`.
  SuiteResult checkRegistered();
  /// @}

  /// \name Pipeline.
  /// @{
  /// Runs every registered pass over \p Prog (procedures fan out over
  /// the pool; reports and bodies merge deterministically).
  PipelineResult runPipeline(ir::Program &Prog);
  /// Runs only the passes named in \p PassNames, in registration order —
  /// pair with SuiteResult::provenPassNames() to apply the proven subset.
  PipelineResult runPipeline(ir::Program &Prog,
                             const std::vector<std::string> &PassNames);
  /// @}

  /// \name Fuzzing (DESIGN.md §11).
  /// @{
  /// Runs the differential fuzzer over \p Targets on this context's
  /// thread pool, with the context's telemetry session installed (fuzz
  /// counters and spans land next to checker/engine ones). Summaries
  /// are bit-identical for every Config.Jobs, like everything else.
  fuzz::FuzzSummary runFuzz(const std::vector<fuzz::FuzzTarget> &Targets,
                            const fuzz::FuzzOptions &Options);
  /// @}

  /// \name Component access (for tests, benches, and incremental
  /// migration from the pre-facade API).
  /// @{
  const LabelRegistry &registry() const { return PM.registry(); }
  engine::PassManager &passes() { return PM; }
  checker::SoundnessChecker &prover();
  support::ThreadPool &pool() { return *Pool; }
  /// Verdict-cache hits across the context's lifetime (memory + disk +
  /// dedup-memo serves), surviving service rebuilds.
  unsigned cacheHits() const;
  /// The embedded service behind check/checkRegistered (built on first
  /// use; rebuilt after registrations change). Useful to issue
  /// CheckRequest/PipelineRequest directly while migrating.
  std::shared_ptr<CobaltService> service();
  /// @}

  /// \name Observability (DESIGN.md §9).
  /// @{

  /// The context's telemetry session (metrics + trace), or nullptr when
  /// Config.Telemetry is off. Accumulates across all operations of this
  /// context; dump with telemetry()->Metrics.json() /
  /// telemetry()->Trace.json().
  support::Telemetry *telemetry() { return Telem.get(); }

  /// Remark delivery: after every check/runPipeline-family call, each
  /// support::Remark produced by the run is passed to \p Fn on the
  /// driving thread, in deterministic report order (independent of
  /// Config.Jobs). Remarks flow regardless of Config.Telemetry — they
  /// are pipeline data, not instrumentation. Pass nullptr to detach.
  void setRemarkCallback(std::function<void(const support::Remark &)> Fn) {
    RemarkFn = std::move(Fn);
  }
  /// @}

private:
  void ensureService();
  support::Expected<std::string> readFile(const std::string &Path);
  void deliverRemarks(const std::vector<engine::PassReport> &Reports);

  CobaltConfig Config;
  std::unique_ptr<support::Telemetry> Telem;
  std::function<void(const support::Remark &)> RemarkFn;
  std::unique_ptr<support::ThreadPool> Pool;
  /// The pipeline engine stays context-local (quarantine state persists
  /// across runPipeline calls, as it always did).
  engine::PassManager PM;
  /// Registered definitions, replayed into each rebuilt service.
  std::vector<LabelDef> Labels;
  std::vector<PureAnalysis> Analyses;
  std::vector<Optimization> Optimizations;
  /// Rebuilt (lazily) whenever registrations change; the disk cache
  /// carries verdicts across rebuilds, the in-memory tiers do not.
  std::shared_ptr<CobaltService> Svc;
  bool ServiceDirty = true;
  unsigned PriorCacheHits = 0;
};

} // namespace api
} // namespace cobalt

#endif // COBALT_API_COBALT_H
