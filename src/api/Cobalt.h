//===- Cobalt.h - The unified CobaltContext facade --------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one entry point tying the whole system together. Before this
/// header, every embedder hand-wired the same five objects (registry,
/// checker, pass manager, prover policy, fault plan) in slightly
/// different ways; `CobaltContext` owns them all, plus the resources the
/// parallel pipeline introduced (the thread pool, the persistent verdict
/// cache), behind a small surface:
///
/// \code
///   api::CobaltConfig Config;
///   Config.Jobs = 4;                    // obligations + procedures fan out
///   Config.CacheDir = ".cobalt-cache";  // verdicts persist across runs
///   api::CobaltContext Ctx(Config);
///
///   auto Module = Ctx.loadModuleFile("opts.cob");   // Expected<CobaltModule>
///   if (!Module)
///     die(Module.error().str());
///   Ctx.addModule(std::move(*Module));
///
///   api::SuiteResult Gate = Ctx.checkRegistered(); // prove everything
///   auto Prog = Ctx.loadProgramFile("prog.il");
///   api::PipelineResult Run = Ctx.runPipeline(
///       *Prog, Gate.provenPassNames());            // apply the proven subset
/// \endcode
///
/// Every fallible operation returns the unified `support::Expected` /
/// `support::Error` carriers; results are bit-identical whatever
/// `Config.Jobs` is (see DESIGN.md's concurrency model).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_API_COBALT_H
#define COBALT_API_COBALT_H

#include "checker/Soundness.h"
#include "core/CobaltParser.h"
#include "engine/PassManager.h"
#include "fuzz/Fuzzer.h"
#include "ir/Ast.h"
#include "support/Expected.h"
#include "support/Telemetry.h"

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace cobalt {

namespace support {
class ThreadPool;
}

namespace api {

/// Everything a context owns, fixed at construction.
struct CobaltConfig {
  checker::ProverPolicy Prover; ///< Obligation resource policy.
  engine::TxPolicy Tx;          ///< Transactional pass policy.
  /// Thread-pool width shared by the checker (obligations) and the pass
  /// manager (procedures). 1 = sequential (no worker threads at all);
  /// 0 = one worker per hardware thread. Results are bit-identical for
  /// every value.
  unsigned Jobs = 1;
  /// When nonempty, proved verdicts persist here across processes
  /// (see support::PersistentCache). Unusable directories degrade to the
  /// in-memory cache, they are never an error.
  std::string CacheDir;
  /// Collect metrics and trace spans for this context's operations (the
  /// substrate behind cobaltc --trace-out/--metrics-out). Off by
  /// default: with it off, instrumentation sites cost one relaxed atomic
  /// load each. Ignored (always off) when the telemetry layer was
  /// compiled out with -DCOBALT_TELEMETRY=OFF.
  bool Telemetry = false;
};

/// Outcome of proving every registered definition.
struct SuiteResult {
  std::vector<checker::CheckReport> Reports; ///< Analyses, then opts.
  unsigned Unsound = 0;  ///< Genuine counterexamples.
  unsigned Unproven = 0; ///< Prover gave up (infra degradation).
  /// Definitions with at least one obligation quarantined by worker
  /// containment (EK_WorkerCrash): the prover subprocess kept dying and
  /// the verdict degraded to unproven. A subset of Unproven; drives
  /// cobaltc's distinct containment-degraded exit code.
  unsigned Quarantined = 0;
  std::set<std::string> ProvenAnalyses;
  std::set<std::string> ProvenOptimizations;
  /// Optimizations whose own obligations were proven but which assume an
  /// analysis that was not — sound conditionally, treated as unproven.
  std::vector<std::string> Conditional;

  bool allSound() const { return Unsound == 0 && Unproven == 0; }
  /// Worker containment (not mere prover limits) degraded some verdict.
  bool containmentDegraded() const { return Quarantined != 0; }

  /// The proven pass names in one list (for runPipeline's subset form).
  std::vector<std::string> provenPassNames() const {
    std::vector<std::string> Names(ProvenAnalyses.begin(),
                                   ProvenAnalyses.end());
    Names.insert(Names.end(), ProvenOptimizations.begin(),
                 ProvenOptimizations.end());
    return Names;
  }
};

/// Outcome of one pipeline run over a program.
struct PipelineResult {
  std::vector<engine::PassReport> Reports; ///< (pass, procedure) order.
  unsigned Applied = 0; ///< Total rewrites across all reports.
  bool Degraded = false; ///< Any failure / rollback / quarantine skip.
};

/// Owns the registry, prover, pass manager, thread pool, and verdict
/// cache; the single facade the CLI, the examples, and embedders drive.
/// Not thread-safe itself (one context per driving thread) — the
/// parallelism lives *inside* check/runPipeline calls.
class CobaltContext {
public:
  explicit CobaltContext(CobaltConfig Config = {});
  ~CobaltContext();
  CobaltContext(const CobaltContext &) = delete;
  CobaltContext &operator=(const CobaltContext &) = delete;

  const CobaltConfig &config() const { return Config; }

  /// \name Front end — unified Expected carriers.
  /// @{

  /// Parses a .cob module buffer (EK_ParseError with the diagnostics on
  /// failure).
  support::Expected<CobaltModule> parseModule(std::string_view Text);
  /// Reads and parses a module file; the special path "stdlib" loads the
  /// bundled standard module (EK_IoError / EK_ParseError on failure).
  support::Expected<CobaltModule> loadModuleFile(const std::string &Path);
  /// Parses an IL program buffer.
  support::Expected<ir::Program> parseProgram(std::string_view Text);
  /// Reads and parses an IL program file.
  support::Expected<ir::Program> loadProgramFile(const std::string &Path);
  /// @}

  /// \name Registration.
  /// @{
  void defineLabel(const LabelDef &Def);
  void addAnalysis(PureAnalysis A);
  void addOptimization(Optimization O);
  /// Registers everything a parsed module defines (labels, analyses,
  /// optimizations, in that order).
  void addModule(CobaltModule Module);
  /// @}

  /// \name Checking. Obligations fan out over the context's thread pool;
  /// verdicts hit the (persistent) cache when the definition, its
  /// labels, and the visible analyses are unchanged.
  /// @{
  checker::CheckReport check(const Optimization &O);
  checker::CheckReport check(const PureAnalysis &A);
  /// Proves every registered definition (analyses first), fanning *all*
  /// obligations out at once. Optimizations whose AssumedAnalyses are
  /// not proven are excluded from ProvenOptimizations (and listed in
  /// Conditional) — the §6 extensible-compiler gate.
  SuiteResult checkRegistered();
  /// @}

  /// \name Pipeline.
  /// @{
  /// Runs every registered pass over \p Prog (procedures fan out over
  /// the pool; reports and bodies merge deterministically).
  PipelineResult runPipeline(ir::Program &Prog);
  /// Runs only the passes named in \p PassNames, in registration order —
  /// pair with SuiteResult::provenPassNames() to apply the proven subset.
  PipelineResult runPipeline(ir::Program &Prog,
                             const std::vector<std::string> &PassNames);
  /// @}

  /// \name Fuzzing (DESIGN.md §11).
  /// @{
  /// Runs the differential fuzzer over \p Targets on this context's
  /// thread pool, with the context's telemetry session installed (fuzz
  /// counters and spans land next to checker/engine ones). Summaries
  /// are bit-identical for every Config.Jobs, like everything else.
  fuzz::FuzzSummary runFuzz(const std::vector<fuzz::FuzzTarget> &Targets,
                            const fuzz::FuzzOptions &Options);
  /// @}

  /// \name Component access (for tests, benches, and incremental
  /// migration from the pre-facade API).
  /// @{
  const LabelRegistry &registry() const { return PM.registry(); }
  engine::PassManager &passes() { return PM; }
  checker::SoundnessChecker &prover();
  support::ThreadPool &pool() { return *Pool; }
  /// Verdict-cache hits across the context's lifetime (memory + disk).
  unsigned cacheHits() const;
  /// @}

  /// \name Observability (DESIGN.md §9).
  /// @{

  /// The context's telemetry session (metrics + trace), or nullptr when
  /// Config.Telemetry is off. Accumulates across all operations of this
  /// context; dump with telemetry()->Metrics.json() /
  /// telemetry()->Trace.json().
  support::Telemetry *telemetry() { return Telem.get(); }

  /// Remark delivery: after every check/runPipeline-family call, each
  /// support::Remark produced by the run is passed to \p Fn on the
  /// driving thread, in deterministic report order (independent of
  /// Config.Jobs). Remarks flow regardless of Config.Telemetry — they
  /// are pipeline data, not instrumentation. Pass nullptr to detach.
  void setRemarkCallback(std::function<void(const support::Remark &)> Fn) {
    RemarkFn = std::move(Fn);
  }
  /// @}

private:
  void ensureChecker();
  support::Expected<std::string> readFile(const std::string &Path);
  void deliverRemarks(const std::vector<engine::PassReport> &Reports);

  CobaltConfig Config;
  std::unique_ptr<support::Telemetry> Telem;
  std::function<void(const support::Remark &)> RemarkFn;
  std::unique_ptr<support::ThreadPool> Pool;
  engine::PassManager PM;
  /// Registered definitions, kept here because the checker fingerprints
  /// every definition against the full analysis context.
  std::vector<PureAnalysis> Analyses;
  std::vector<Optimization> Optimizations;
  /// Rebuilt (lazily) whenever registrations change; the disk cache
  /// carries verdicts across rebuilds, the in-memory one does not.
  std::unique_ptr<checker::SoundnessChecker> Checker;
  bool CheckerDirty = true;
  unsigned PriorCacheHits = 0;
};

} // namespace api
} // namespace cobalt

#endif // COBALT_API_COBALT_H
