//===- Service.cpp --------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "api/Service.h"

#include "ir/Parser.h"
#include "support/PersistentCache.h"
#include "support/ThreadPool.h"

#include <cassert>

using namespace cobalt;
using namespace cobalt::api;
using support::ErrorKind;

const char *api::responseStatusName(ResponseStatus S) {
  switch (S) {
  case ResponseStatus::RS_Ok:
    return "ok";
  case ResponseStatus::RS_Retry:
    return "retry";
  case ResponseStatus::RS_Error:
    return "error";
  }
  return "error";
}

void api::preregisterHeadlineCounters(support::Telemetry &T) {
  static const char *const Headline[] = {
      "checker.obligations",     "checker.obligations.proven",
      "checker.obligations.failed", "checker.obligations.unknown",
      "checker.retries",         "checker.rlimit_spent",
      "checker.cache.hits",      "checker.cache.misses",
      "cache.mem.hits",          "cache.mem.misses",
      "cache.disk.hits",         "cache.disk.misses",
      "cache.disk.stores",       "cache.disk.corrupt",
      "service.requests",        "service.requests.check",
      "service.requests.run",    "service.requests.retry",
      "service.requests.error",  "service.dedup.leader",
      "service.dedup.await",     "service.dedup.served",
      "service.admission.rejected",
      "flight.events",
      "worker.spawns",           "worker.restarts",
      "worker.crashes",          "worker.kills_wall",
      "worker.kills_rss",        "worker.quarantined",
      "engine.procs",
      "engine.passes",           "engine.rewrites",
      "engine.rollbacks",        "engine.pass_failures",
      "engine.quarantine_skips", "dataflow.solves",
      "dataflow.fixpoint_iters", "dataflow.meet_dropped",
      "dataflow.psi2_dropped",   "fuzz.runs",
      "fuzz.programs",           "fuzz.divergences",
      "fuzz.findings",           "fuzz.oracle.execs",
      "fuzz.reduce.runs",        "fuzz.reduce.candidates",
      "fuzz.reduce.stmts_removed",
      "service.requests.validate",
      "validate.pairs",          "validate.probe.divergence",
      "validate.procs.alpha",    "validate.procs.simulation",
      "validate.verdict.Equivalent",
      "validate.verdict.Inequivalent",
      "validate.verdict.Unknown",
      "validate.adversary.blessed"};
  for (const char *Name : Headline)
    T.Metrics.add(Name, 0);
}

//===----------------------------------------------------------------------===//
// Builder.
//===----------------------------------------------------------------------===//

CobaltService::Builder &
CobaltService::Builder::addModule(CobaltModule Module) {
  for (const LabelDef &Def : Module.Labels)
    Labels.push_back(Def);
  for (PureAnalysis &A : Module.Analyses)
    Analyses.push_back(std::move(A));
  for (Optimization &O : Module.Optimizations)
    Optimizations.push_back(std::move(O));
  return *this;
}

std::shared_ptr<CobaltService> CobaltService::Builder::build() {
  // make_shared cannot reach the private ctor; the explicit new is fine
  // for a build-once object.
  return std::shared_ptr<CobaltService>(new CobaltService(
      std::move(Cfg), std::move(Labels), std::move(Analyses),
      std::move(Optimizations), ExternalTelem));
}

//===----------------------------------------------------------------------===//
// Construction.
//===----------------------------------------------------------------------===//

CobaltService::CobaltService(CobaltConfig C, std::vector<LabelDef> Ls,
                             std::vector<PureAnalysis> As,
                             std::vector<Optimization> Os,
                             support::Telemetry *ExternalTelemetry)
    : Config(std::move(C)), Labels(std::move(Ls)), Analyses(std::move(As)),
      Optimizations(std::move(Os)),
      Pool(std::make_unique<support::ThreadPool>(Config.Jobs)),
      Cache(std::make_shared<support::PersistentCache>()) {
  // The master registry: every per-request checker references it, so it
  // must carry all labels + declared analysis labels before requests run.
  for (const LabelDef &Def : Labels)
    ProtoPM.defineLabel(Def);
  for (const PureAnalysis &A : Analyses)
    ProtoPM.addAnalysis(A);
  for (const Optimization &O : Optimizations)
    ProtoPM.addOptimization(O);

  // Two-tier verdict store: the hot tier is what makes a warm daemon
  // fast; the disk tier is what makes a restarted one warm.
  if (!Config.CacheDir.empty())
    Cache->openTiered(Config.CacheDir, "verdict", /*Version=*/3);
  else
    Cache->openMemory();

  if (ExternalTelemetry) {
    Telem = ExternalTelemetry;
  } else if (Config.Telemetry && support::telemetryCompiledIn()) {
    OwnedTelem = std::make_unique<support::Telemetry>();
    Telem = OwnedTelem.get();
    preregisterHeadlineCounters(*Telem);
  }

  Proto = std::make_unique<checker::SoundnessChecker>(ProtoPM.registry(),
                                                      Analyses);
  Proto->setPolicy(Config.Prover);
  Proto->setThreadPool(Pool.get());
  Proto->setSharedCache(Cache);
}

CobaltService::~CobaltService() = default;

//===----------------------------------------------------------------------===//
// Parsing helpers.
//===----------------------------------------------------------------------===//

support::Expected<CobaltModule>
CobaltService::parseModule(std::string_view Text) const {
  DiagnosticEngine Diags;
  if (std::optional<CobaltModule> M = parseCobalt(Text, Diags))
    return std::move(*M);
  return support::Error(ErrorKind::EK_ParseError, Diags.str());
}

support::Expected<ir::Program>
CobaltService::parseProgram(std::string_view Text) const {
  DiagnosticEngine Diags;
  if (std::optional<ir::Program> P = ir::parseProgram(Text, Diags))
    return std::move(*P);
  return support::Error(ErrorKind::EK_ParseError, Diags.str());
}

//===----------------------------------------------------------------------===//
// Checking.
//===----------------------------------------------------------------------===//

bool CobaltService::resolveTargets(const CheckRequest &Req,
                                   std::vector<Target> &Out,
                                   support::Error &Err) const {
  auto Wanted = [&Req](const std::string &Name) {
    if (Req.Only.empty())
      return true;
    for (const std::string &N : Req.Only)
      if (N == Name)
        return true;
    return false;
  };
  std::set<std::string> Seen;
  for (size_t I = 0; I < Analyses.size(); ++I)
    if (Wanted(Analyses[I].Name)) {
      Out.push_back({true, I, Proto->fingerprintAnalysis(Analyses[I])});
      Seen.insert(Analyses[I].Name);
    }
  for (size_t I = 0; I < Optimizations.size(); ++I)
    if (Wanted(Optimizations[I].Name)) {
      Out.push_back(
          {false, I, Proto->fingerprintOptimization(Optimizations[I])});
      Seen.insert(Optimizations[I].Name);
    }
  for (const std::string &N : Req.Only)
    if (!Seen.count(N)) {
      Err = support::Error(ErrorKind::EK_Unavailable,
                           "definition '" + N +
                               "' is not registered with this service");
      return false;
    }
  return true;
}

void CobaltService::configureChecker(checker::SoundnessChecker &Checker,
                                     const CheckRequest &Req) const {
  checker::ProverPolicy Policy = Config.Prover;
  if (Req.BudgetMs >= 0)
    Policy.BudgetMs = static_cast<uint64_t>(Req.BudgetMs);
  Checker.setPolicy(Policy);
  // Jobs == 1 means genuinely sequential on the calling thread; anything
  // else shares the service pool (its width is fixed at build time).
  Checker.setThreadPool(Req.Jobs == 1 ? nullptr : Pool.get());
  Checker.setSharedCache(Cache);
  Checker.setFaultKeySalt(Req.FaultKeySalt);
}

CheckResponse CobaltService::check(const CheckRequest &Req) {
  support::TelemetryScope Scope(Telem);
  // Every span below (and every worker span across the fork) carries the
  // request's trace ID via the ambient TLS scope — established before
  // the first span is born.
  const uint64_t TraceId =
      Req.TraceId ? Req.TraceId : support::mintTraceId();
  support::TraceIdScope IdScope(TraceId);
  support::metricAdd("service.requests");
  support::metricAdd("service.requests.check");
  support::TraceSpan Span("service", "check");

  CheckResponse Resp;
  std::vector<Target> Targets;
  if (!resolveTargets(Req, Targets, Resp.Err)) {
    Resp.Status = ResponseStatus::RS_Error;
    support::metricAdd("service.requests.error");
    return Resp;
  }

  // Partition into leaders (we prove) and waiters (someone else proved
  // or is proving) and take the admission decision — atomically, so two
  // racing requests cannot both believe they fit under the bound.
  struct Leader {
    size_t TargetIdx;
    std::promise<ReportPtr> Promise;
    unsigned Reserved = 0;
  };
  std::vector<Leader> Leaders;
  std::vector<ReportFuture> Futures(Targets.size());
  std::vector<bool> IsWaiter(Targets.size(), false);
  {
    std::lock_guard<std::mutex> Lock(ServiceMutex);
    uint64_t Estimate = 0;
    std::vector<size_t> LeaderIdx;
    for (size_t I = 0; I < Targets.size(); ++I) {
      auto It = Memo.find(Targets[I].Fingerprint);
      if (It != Memo.end()) {
        Futures[I] = It->second;
        IsWaiter[I] = true;
        // Still-proving fingerprint: record this request's trace ID so
        // the leader's prove span links back to every joined request.
        auto FIt = MemoFollowers.find(Targets[I].Fingerprint);
        if (FIt != MemoFollowers.end())
          FIt->second.push_back(TraceId);
        continue;
      }
      LeaderIdx.push_back(I);
      auto Known = KnownObligations.find(Targets[I].Fingerprint);
      // 16 ≈ the obligation count of a mid-sized optimization; only the
      // first proving of a fingerprint ever uses the default.
      Estimate += Known != KnownObligations.end() ? Known->second : 16;
    }
    bool Idle = InFlightObligations == 0;
    if (!LeaderIdx.empty() && Config.MaxInFlightObligations != 0 &&
        !Idle &&
        InFlightObligations + Estimate > Config.MaxInFlightObligations) {
      // Turned away with no side effects: nothing was inserted into the
      // memo, nothing reserved. (Idle services always admit, so one
      // oversized suite cannot be starved forever.)
      support::metricAdd("service.admission.rejected");
      support::metricAdd("service.requests.retry");
      support::flightNote("admission.reject",
                          std::to_string(InFlightObligations) +
                              " in flight + estimate " +
                              std::to_string(Estimate) + " > bound " +
                              std::to_string(
                                  Config.MaxInFlightObligations));
      Resp.Status = ResponseStatus::RS_Retry;
      Resp.Err = support::Error(
          ErrorKind::EK_Unavailable,
          "admission control: " + std::to_string(InFlightObligations) +
              " obligation(s) in flight, request estimated at " +
              std::to_string(Estimate) + " would exceed the bound of " +
              std::to_string(Config.MaxInFlightObligations));
      return Resp;
    }
    for (size_t I : LeaderIdx) {
      Leader L;
      L.TargetIdx = I;
      auto Known = KnownObligations.find(Targets[I].Fingerprint);
      L.Reserved = Known != KnownObligations.end() ? Known->second : 16;
      InFlightObligations += L.Reserved;
      Futures[I] = L.Promise.get_future().share();
      Memo.emplace(Targets[I].Fingerprint, Futures[I]);
      MemoFollowers.emplace(Targets[I].Fingerprint,
                            std::vector<uint64_t>());
      Leaders.push_back(std::move(L));
    }
  }
  support::metricAdd("service.dedup.leader", Leaders.size());
  support::metricAdd("service.dedup.await",
                     Targets.size() - Leaders.size());
  if (!Leaders.empty())
    support::flightNote("dedup.leader",
                        std::to_string(Leaders.size()) +
                            " definition(s) to prove");
  if (Targets.size() != Leaders.size())
    support::flightNote("dedup.await",
                        std::to_string(Targets.size() - Leaders.size()) +
                            " definition(s) served from dedup memo");

  // Prove the leader set on a fresh per-request checker. checkSuite fans
  // every leader definition's obligations out at once, so the request
  // keeps the old facade's maximal-overlap schedule.
  if (!Leaders.empty()) {
    std::vector<PureAnalysis> LeadAs;
    std::vector<Optimization> LeadOs;
    for (const Leader &L : Leaders) {
      const Target &T = Targets[L.TargetIdx];
      if (T.IsAnalysis)
        LeadAs.push_back(Analyses[T.Index]);
      else
        LeadOs.push_back(Optimizations[T.Index]);
    }

    checker::SoundnessChecker Checker(ProtoPM.registry(), Analyses);
    configureChecker(Checker, Req);

    // The leader's prove span. Once proving finishes, it is tagged with
    // the trace IDs of every request that joined one of this leader's
    // futures mid-flight — the cross-request join made visible.
    support::TraceSpan Prove("service", "prove");
    if (Prove.enabled())
      Prove.arg("leaders", static_cast<uint64_t>(Leaders.size()));

    std::vector<checker::CheckReport> Reports;
    try {
      // Fork safety: a subprocess-isolation leader is about to fork
      // prover workers; no other request may be inside Z3 in-process
      // while that happens (and vice versa).
      if (Config.Prover.Isolation ==
          checker::WorkerIsolation::WI_Subprocess) {
        std::unique_lock<std::shared_mutex> Iso(IsolationMutex);
        Reports = Checker.checkSuite(LeadAs, LeadOs);
      } else {
        std::shared_lock<std::shared_mutex> Iso(IsolationMutex);
        Reports = Checker.checkSuite(LeadAs, LeadOs);
      }
    } catch (...) {
      // Fulfill every waiter with the exception, then unwind our own
      // bookkeeping; later requests will re-prove (memo entries gone).
      std::exception_ptr E = std::current_exception();
      {
        std::lock_guard<std::mutex> Lock(ServiceMutex);
        for (Leader &L : Leaders) {
          Memo.erase(Targets[L.TargetIdx].Fingerprint);
          MemoFollowers.erase(Targets[L.TargetIdx].Fingerprint);
          InFlightObligations -= L.Reserved;
        }
      }
      for (Leader &L : Leaders)
        L.Promise.set_exception(E);
      std::rethrow_exception(E);
    }

    // checkSuite returns analyses first, then optimizations — the same
    // order we built LeadAs/LeadOs in, which is Leaders order (Targets
    // lists analyses before optimizations).
    assert(Reports.size() == Leaders.size());
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      TotalCacheHits += Checker.cacheHits();
    }
    std::vector<uint64_t> FollowerIds;
    {
      std::lock_guard<std::mutex> Lock(ServiceMutex);
      for (size_t R = 0; R < Leaders.size(); ++R) {
        const Target &T = Targets[Leaders[R].TargetIdx];
        InFlightObligations -= Leaders[R].Reserved;
        KnownObligations[T.Fingerprint] =
            static_cast<unsigned>(Reports[R].Obligations.size());
        auto FIt = MemoFollowers.find(T.Fingerprint);
        if (FIt != MemoFollowers.end()) {
          FollowerIds.insert(FollowerIds.end(), FIt->second.begin(),
                             FIt->second.end());
          MemoFollowers.erase(FIt);
        }
        // Unproven verdicts are transient (prover limits): current
        // waiters still receive them, but the memo forgets, mirroring
        // the verdict cache's never-cache-Unproven rule.
        if (Reports[R].V == checker::CheckReport::Verdict::V_Unproven)
          Memo.erase(T.Fingerprint);
      }
    }
    if (Prove.enabled() && !FollowerIds.empty())
      Prove.linked(std::move(FollowerIds));
    for (size_t R = 0; R < Leaders.size(); ++R)
      Leaders[R].Promise.set_value(
          std::make_shared<const checker::CheckReport>(
              std::move(Reports[R])));
  }

  // Collect every report in input order (leaders resolve instantly from
  // their own futures; waiters block on their leader's).
  Resp.Suite.Reports.reserve(Targets.size());
  unsigned Served = 0;
  for (size_t I = 0; I < Targets.size(); ++I) {
    Resp.Suite.Reports.push_back(*Futures[I].get());
    if (IsWaiter[I])
      ++Served;
  }
  if (Served != 0) {
    support::metricAdd("service.dedup.served", Served);
    std::lock_guard<std::mutex> Lock(StatsMutex);
    TotalCacheHits += Served;
  }

  // Suite assembly: counts, the §6 assumed-analysis gate, and the
  // quarantined-obligation remarks — all pure functions of the reports,
  // so every client of the same reports derives the same summary.
  size_t AnalysisCount = 0;
  for (const Target &T : Targets)
    AnalysisCount += T.IsAnalysis ? 1 : 0;
  for (size_t I = 0; I < Resp.Suite.Reports.size(); ++I) {
    const checker::CheckReport &R = Resp.Suite.Reports[I];
    if (R.V == checker::CheckReport::Verdict::V_Unsound)
      ++Resp.Suite.Unsound;
    else if (R.V == checker::CheckReport::Verdict::V_Unproven)
      ++Resp.Suite.Unproven;
    unsigned QuarantinedObs = 0;
    for (const checker::ObligationResult &Ob : R.Obligations)
      if (Ob.Err.Kind == ErrorKind::EK_WorkerCrash)
        ++QuarantinedObs;
    if (QuarantinedObs != 0) {
      ++Resp.Suite.Quarantined;
      support::Remark Rem;
      Rem.K = support::Remark::Kind::RK_Missed;
      Rem.Pass = R.Name;
      Rem.Note = std::to_string(QuarantinedObs) +
                 " obligation(s) quarantined after repeated prover-"
                 "worker failures; verdict degraded to unproven";
      Resp.Remarks.push_back(std::move(Rem));
    }
    if (I < AnalysisCount) {
      if (R.Sound)
        Resp.Suite.ProvenAnalyses.insert(R.Name);
      continue;
    }
    // The optimization's guarantee is conditional on its assumed
    // analyses being proven themselves (§6).
    bool AnalysesOk = true;
    for (const std::string &Dep : R.AssumedAnalyses)
      AnalysesOk =
          AnalysesOk && Resp.Suite.ProvenAnalyses.count(Dep) != 0;
    if (R.Sound && AnalysesOk)
      Resp.Suite.ProvenOptimizations.insert(R.Name);
    else if (R.Sound)
      Resp.Suite.Conditional.push_back(R.Name);
  }
  return Resp;
}

unsigned CobaltService::cacheHits() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return TotalCacheHits;
}

int CobaltService::exitCodeFor(const SuiteResult &Suite,
                               bool PipelineDegraded) {
  // Precedence: a genuine counterexample always dominates; containment
  // degradation outranks plain infra degradation (it names a *cause* —
  // dying workers — where 3 only names a symptom).
  if (Suite.Unsound > 0)
    return 1;
  bool Quarantined = Suite.containmentDegraded();
  for (const checker::CheckReport &R : Suite.Reports)
    for (const checker::ObligationResult &Ob : R.Obligations)
      Quarantined |= Ob.Err.Kind == ErrorKind::EK_WorkerCrash;
  if (Quarantined)
    return 4;
  if (Suite.Unproven > 0 || PipelineDegraded)
    return 3;
  return 0;
}

int CobaltService::exitCodeFor(const validate::ValidationReport &Report) {
  switch (Report.V) {
  case validate::Verdict::V_Equivalent:
    return 0;
  case validate::Verdict::V_Inequivalent:
    return 1;
  case validate::Verdict::V_Unknown:
    return 3;
  }
  return 3;
}

//===----------------------------------------------------------------------===//
// Translation validation.
//===----------------------------------------------------------------------===//

ValidateResponse CobaltService::validate(ValidateRequest Req) {
  support::TelemetryScope Scope(Telem);
  const uint64_t TraceId =
      Req.TraceId ? Req.TraceId : support::mintTraceId();
  support::TraceIdScope IdScope(TraceId);
  support::metricAdd("service.requests");
  support::metricAdd("service.requests.validate");
  support::TraceSpan Span("service", "validate");

  ValidateResponse Resp;
  if (std::optional<std::string> Err = ir::validateProgram(Req.Original)) {
    Resp.Status = ResponseStatus::RS_Error;
    Resp.Err = support::Error(ErrorKind::EK_ParseError,
                              "original program ill-formed: " + *Err);
    support::metricAdd("service.requests.error");
    return Resp;
  }

  // Leader/waiter dedup on the pair fingerprint: identical concurrent
  // requests collapse into one prover run, and every caller receives
  // the leader's report object (byte-identical serializations).
  const uint64_t Fp =
      validate::fingerprintPair(Req.Original, Req.Candidate, Req.Options);
  bool IsLeader = false;
  std::promise<ValidationReportPtr> Promise;
  ValidationFuture Future;
  {
    std::lock_guard<std::mutex> Lock(ServiceMutex);
    auto It = ValidateMemo.find(Fp);
    if (It != ValidateMemo.end()) {
      Future = It->second;
    } else {
      IsLeader = true;
      Future = Promise.get_future().share();
      ValidateMemo.emplace(Fp, Future);
    }
  }

  if (IsLeader) {
    checker::SoundnessChecker Checker(ProtoPM.registry(), Analyses);
    CheckRequest Cfg;
    Cfg.Jobs = Req.Jobs;
    Cfg.BudgetMs = Req.BudgetMs;
    Cfg.FaultKeySalt = Req.FaultKeySalt;
    configureChecker(Checker, Cfg);

    support::TraceSpan Prove("service", "validate.prove");
    validate::ValidationReport Report;
    try {
      // Fork safety, as in check(): subprocess-isolation leaders fork
      // prover workers and must exclude in-process Z3 users.
      if (Config.Prover.Isolation ==
          checker::WorkerIsolation::WI_Subprocess) {
        std::unique_lock<std::shared_mutex> Iso(IsolationMutex);
        Report = validate::validatePrograms(Req.Original, Req.Candidate,
                                            Checker, Req.Options);
      } else {
        std::shared_lock<std::shared_mutex> Iso(IsolationMutex);
        Report = validate::validatePrograms(Req.Original, Req.Candidate,
                                            Checker, Req.Options);
      }
    } catch (...) {
      std::exception_ptr E = std::current_exception();
      {
        std::lock_guard<std::mutex> Lock(ServiceMutex);
        ValidateMemo.erase(Fp);
      }
      Promise.set_exception(E);
      std::rethrow_exception(E);
    }
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      TotalCacheHits += Checker.cacheHits();
    }
    // Unknown is transient (prover limits, alignment caps): current
    // waiters receive it, later requests re-validate.
    if (Report.V == validate::Verdict::V_Unknown) {
      std::lock_guard<std::mutex> Lock(ServiceMutex);
      ValidateMemo.erase(Fp);
    }
    Promise.set_value(std::make_shared<const validate::ValidationReport>(
        std::move(Report)));
  } else {
    support::metricAdd("service.dedup.await");
  }

  Resp.Report = *Future.get();
  if (!IsLeader) {
    support::metricAdd("service.dedup.served");
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++TotalCacheHits;
  }
  return Resp;
}

//===----------------------------------------------------------------------===//
// Pipeline.
//===----------------------------------------------------------------------===//

PipelineResponse CobaltService::run(PipelineRequest Req) {
  support::TelemetryScope Scope(Telem);
  const uint64_t TraceId =
      Req.TraceId ? Req.TraceId : support::mintTraceId();
  support::TraceIdScope IdScope(TraceId);
  support::metricAdd("service.requests");
  support::metricAdd("service.requests.run");
  support::TraceSpan Span("service", "pipeline");

  // A fresh PassManager per request: quarantine state and failure
  // counters are request-local, so one client's dying pass cannot poison
  // another client's pipeline — and reports stay byte-deterministic
  // because each request starts from the same registration state.
  engine::PassManager PM;
  PM.setTxPolicy(Config.Tx);
  PM.setThreadPool(Req.Jobs == 1 ? nullptr : Pool.get());
  for (const LabelDef &Def : Labels)
    PM.defineLabel(Def);
  for (const PureAnalysis &A : Analyses)
    PM.addAnalysis(A);
  for (const Optimization &O : Optimizations)
    PM.addOptimization(O);

  PipelineResponse Resp;
  std::vector<engine::PassReport> Reports =
      Req.SelectedOnly ? PM.runSelected(Req.PassNames, Req.Prog)
                       : PM.run(Req.Prog);
  Resp.Result.Reports = std::move(Reports);
  for (const engine::PassReport &R : Resp.Result.Reports)
    Resp.Result.Applied += R.AppliedCount;
  Resp.Result.Degraded = PM.lastRunDegraded();
  Resp.Prog = std::move(Req.Prog);
  return Resp;
}
