//===- Substitution.cpp ---------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Substitution.h"

#include "ir/Printer.h"

#include <cassert>

using namespace cobalt;

Binding Binding::var(std::string Name) { return {VarB{std::move(Name)}}; }
Binding Binding::constant(int64_t Value) { return {ConstB{Value}}; }
Binding Binding::proc(std::string Name) { return {ProcB{std::move(Name)}}; }
Binding Binding::index(int Value) { return {IndexB{Value}}; }

Binding Binding::expr(ir::Expr E) {
  assert(ir::isGround(E) && "Exprs bindings must be ground");
  std::string Key = ir::toString(E);
  return {ExprB{std::move(E), std::move(Key)}};
}

std::string Binding::str() const {
  if (isVar())
    return asVar();
  if (isConst())
    return std::to_string(asConst());
  if (isExpr())
    return std::get<ExprB>(V).Key;
  if (isProc())
    return asProc();
  return std::to_string(asIndex());
}

const Binding *Substitution::lookup(const std::string &Name) const {
  auto It = Map.find(Name);
  return It == Map.end() ? nullptr : &It->second;
}

bool Substitution::bind(const std::string &Name, Binding B) {
  assert(!Name.empty() && "binding a wildcard");
  auto It = Map.find(Name);
  if (It != Map.end())
    return It->second == B;
  Map.emplace(Name, std::move(B));
  return true;
}

bool Substitution::merge(const Substitution &Other) {
  for (const auto &[Name, B] : Other.Map)
    if (!bind(Name, B))
      return false;
  return true;
}

std::string Substitution::str() const {
  std::string Out = "[";
  bool First = true;
  for (const auto &[Name, B] : Map) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Name + " -> " + B.str();
  }
  return Out + "]";
}
