//===- Substitution.h - Pattern-variable bindings ---------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A substitution θ maps pattern-variable names to program fragments of the
/// appropriate kind (paper §3.2.1/§3.2.2). Substitutions are the dataflow
/// facts of the execution engine (§5.2) and the instantiation witnesses of
/// guard satisfaction, so they are small value types with a total order
/// (for storage in ordered sets, which keeps fixed points deterministic).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CORE_SUBSTITUTION_H
#define COBALT_CORE_SUBSTITUTION_H

#include "ir/Ast.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

namespace cobalt {

/// What a pattern variable is bound to. The five binding kinds mirror the
/// five pattern-variable kinds of the extended IL: Vars, Consts, Exprs,
/// Proc Names, and Indices.
struct Binding {
  struct VarB {
    std::string Name;
    auto operator<=>(const VarB &) const = default;
  };
  struct ConstB {
    int64_t Value;
    auto operator<=>(const ConstB &) const = default;
  };
  struct ProcB {
    std::string Name;
    auto operator<=>(const ProcB &) const = default;
  };
  struct IndexB {
    int Value;
    auto operator<=>(const IndexB &) const = default;
  };
  // Exprs bindings hold a *ground* expression; ir::Expr has no operator<
  // so ExprB carries a rendered key for ordering plus the expression.
  struct ExprB {
    ir::Expr E;
    std::string Key; ///< Canonical rendering of E, used for ordering.
    friend bool operator==(const ExprB &A, const ExprB &B) {
      return A.E == B.E;
    }
    friend auto operator<=>(const ExprB &A, const ExprB &B) {
      return A.Key <=> B.Key;
    }
  };

  using Storage = std::variant<VarB, ConstB, ExprB, ProcB, IndexB>;
  Storage V;

  static Binding var(std::string Name);
  static Binding constant(int64_t Value);
  static Binding expr(ir::Expr E); ///< E must be ground.
  static Binding proc(std::string Name);
  static Binding index(int Value);

  bool isVar() const { return std::holds_alternative<VarB>(V); }
  bool isConst() const { return std::holds_alternative<ConstB>(V); }
  bool isExpr() const { return std::holds_alternative<ExprB>(V); }
  bool isProc() const { return std::holds_alternative<ProcB>(V); }
  bool isIndex() const { return std::holds_alternative<IndexB>(V); }

  const std::string &asVar() const { return std::get<VarB>(V).Name; }
  int64_t asConst() const { return std::get<ConstB>(V).Value; }
  const ir::Expr &asExpr() const { return std::get<ExprB>(V).E; }
  const std::string &asProc() const { return std::get<ProcB>(V).Name; }
  int asIndex() const { return std::get<IndexB>(V).Value; }

  /// Renders the binding as IL text.
  std::string str() const;

  friend bool operator==(const Binding &, const Binding &) = default;
  friend auto operator<=>(const Binding &A, const Binding &B) {
    return A.V <=> B.V;
  }
};

/// A (partial) substitution θ. Binding the same name twice to different
/// values fails — matching uses this to enforce nonlinear patterns like
/// `X := op(X, X)`.
class Substitution {
public:
  /// Returns the binding for \p Name, or nullptr if unbound.
  const Binding *lookup(const std::string &Name) const;

  bool isBound(const std::string &Name) const { return lookup(Name); }

  /// Binds \p Name to \p B. Returns false (and leaves θ unchanged) if
  /// Name is already bound to a different value.
  bool bind(const std::string &Name, Binding B);

  /// Merges another substitution into this one; fails on conflicts.
  bool merge(const Substitution &Other);

  size_t size() const { return Map.size(); }
  bool empty() const { return Map.empty(); }

  auto begin() const { return Map.begin(); }
  auto end() const { return Map.end(); }

  /// Renders as "[X -> a, C -> 2]" (paper §5.2 notation).
  std::string str() const;

  friend bool operator==(const Substitution &, const Substitution &) = default;
  friend auto operator<=>(const Substitution &A, const Substitution &B) {
    return A.Map <=> B.Map;
  }

private:
  std::map<std::string, Binding> Map;
};

} // namespace cobalt

#endif // COBALT_CORE_SUBSTITUTION_H
