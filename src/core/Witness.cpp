//===- Witness.cpp --------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Witness.h"

#include "core/Match.h"
#include "ir/Printer.h"

#include <cassert>

using namespace cobalt;
using namespace cobalt::ir;

static const char *stateName(StateSel S) {
  switch (S) {
  case StateSel::WS_Cur:
    return "eta";
  case StateSel::WS_Old:
    return "eta_old";
  case StateSel::WS_New:
    return "eta_new";
  }
  return "?";
}

std::string WTerm::str() const {
  return std::string(stateName(State)) + "(" + ir::toString(E) + ")";
}

std::string Witness::str() const {
  switch (K) {
  case Kind::WK_True:
    return "true";
  case Kind::WK_Not:
    return "!(" + Kids[0]->str() + ")";
  case Kind::WK_And:
    return "(" + Kids[0]->str() + " && " + Kids[1]->str() + ")";
  case Kind::WK_Or:
    return "(" + Kids[0]->str() + " || " + Kids[1]->str() + ")";
  case Kind::WK_Eq:
    return LhsT.str() + " = " + RhsT.str();
  case Kind::WK_EqUpTo:
    return "eta_old/" + ir::toString(X) + " = eta_new/" + ir::toString(X);
  case Kind::WK_StateEq:
    return "eta_old = eta_new";
  case Kind::WK_NotPointedTo:
    return "notPointedTo(" + ir::toString(X) + ", " + stateName(State) + ")";
  }
  return "<invalid>";
}

static WitnessPtr make(Witness W) {
  return std::make_shared<const Witness>(std::move(W));
}

WitnessPtr cobalt::wTrue() {
  Witness W;
  W.K = Witness::Kind::WK_True;
  return make(std::move(W));
}

WitnessPtr cobalt::wNot(WitnessPtr Inner) {
  Witness W;
  W.K = Witness::Kind::WK_Not;
  W.Kids.push_back(std::move(Inner));
  return make(std::move(W));
}

WitnessPtr cobalt::wAnd(WitnessPtr A, WitnessPtr B) {
  Witness W;
  W.K = Witness::Kind::WK_And;
  W.Kids.push_back(std::move(A));
  W.Kids.push_back(std::move(B));
  return make(std::move(W));
}

WitnessPtr cobalt::wOr(WitnessPtr A, WitnessPtr B) {
  Witness W;
  W.K = Witness::Kind::WK_Or;
  W.Kids.push_back(std::move(A));
  W.Kids.push_back(std::move(B));
  return make(std::move(W));
}

WitnessPtr cobalt::wEq(WTerm A, WTerm B) {
  Witness W;
  W.K = Witness::Kind::WK_Eq;
  W.LhsT = std::move(A);
  W.RhsT = std::move(B);
  return make(std::move(W));
}

WitnessPtr cobalt::wEqUpTo(Var X) {
  Witness W;
  W.K = Witness::Kind::WK_EqUpTo;
  W.X = std::move(X);
  return make(std::move(W));
}

WitnessPtr cobalt::wStateEq() {
  Witness W;
  W.K = Witness::Kind::WK_StateEq;
  return make(std::move(W));
}

WitnessPtr cobalt::wNotPointedTo(Var X, StateSel State) {
  Witness W;
  W.K = Witness::Kind::WK_NotPointedTo;
  W.X = std::move(X);
  W.State = State;
  return make(std::move(W));
}

//===----------------------------------------------------------------------===//
// Direction classification.
//===----------------------------------------------------------------------===//

static bool statesWithin(const Witness &W, bool AllowCur, bool AllowOldNew) {
  switch (W.K) {
  case Witness::Kind::WK_True:
    return true;
  case Witness::Kind::WK_Not:
  case Witness::Kind::WK_And:
  case Witness::Kind::WK_Or: {
    for (const WitnessPtr &Kid : W.Kids)
      if (!statesWithin(*Kid, AllowCur, AllowOldNew))
        return false;
    return true;
  }
  case Witness::Kind::WK_Eq: {
    auto Ok = [&](StateSel S) {
      return S == StateSel::WS_Cur ? AllowCur : AllowOldNew;
    };
    return Ok(W.LhsT.State) && Ok(W.RhsT.State);
  }
  case Witness::Kind::WK_EqUpTo:
  case Witness::Kind::WK_StateEq:
    return AllowOldNew;
  case Witness::Kind::WK_NotPointedTo:
    return W.State == StateSel::WS_Cur ? AllowCur : AllowOldNew;
  }
  return false;
}

bool cobalt::isForwardWitness(const Witness &W) {
  return statesWithin(W, /*AllowCur=*/true, /*AllowOldNew=*/false);
}

bool cobalt::isBackwardWitness(const Witness &W) {
  return statesWithin(W, /*AllowCur=*/false, /*AllowOldNew=*/true);
}

//===----------------------------------------------------------------------===//
// Concrete evaluation (dynamic witness validation).
//===----------------------------------------------------------------------===//

static const ExecState *selectState(StateSel S, const ExecState *Cur,
                                    const ExecState *Old,
                                    const ExecState *New) {
  switch (S) {
  case StateSel::WS_Cur:
    return Cur;
  case StateSel::WS_Old:
    return Old;
  case StateSel::WS_New:
    return New;
  }
  return nullptr;
}

static std::optional<Value> evalWTerm(const WTerm &T,
                                      const Substitution &Theta,
                                      const ExecState *Cur,
                                      const ExecState *Old,
                                      const ExecState *New) {
  auto Ground = applySubstExpr(T.E, Theta);
  if (!Ground)
    return std::nullopt;
  const ExecState *St = selectState(T.State, Cur, Old, New);
  if (!St)
    return std::nullopt;
  return evalExprIn(*St, *Ground);
}

std::optional<bool> cobalt::evalWitness(const Witness &W,
                                        const Substitution &Theta,
                                        const ExecState *Cur,
                                        const ExecState *Old,
                                        const ExecState *New) {
  switch (W.K) {
  case Witness::Kind::WK_True:
    return true;
  case Witness::Kind::WK_Not: {
    auto R = evalWitness(*W.Kids[0], Theta, Cur, Old, New);
    if (!R)
      return std::nullopt;
    return !*R;
  }
  case Witness::Kind::WK_And: {
    auto A = evalWitness(*W.Kids[0], Theta, Cur, Old, New);
    auto B = evalWitness(*W.Kids[1], Theta, Cur, Old, New);
    if (A && !*A)
      return false;
    if (B && !*B)
      return false;
    if (!A || !B)
      return std::nullopt;
    return true;
  }
  case Witness::Kind::WK_Or: {
    auto A = evalWitness(*W.Kids[0], Theta, Cur, Old, New);
    auto B = evalWitness(*W.Kids[1], Theta, Cur, Old, New);
    if (A && *A)
      return true;
    if (B && *B)
      return true;
    if (!A || !B)
      return std::nullopt;
    return false;
  }
  case Witness::Kind::WK_Eq: {
    auto A = evalWTerm(W.LhsT, Theta, Cur, Old, New);
    auto B = evalWTerm(W.RhsT, Theta, Cur, Old, New);
    if (!A || !B)
      return std::nullopt;
    return *A == *B;
  }
  case Witness::Kind::WK_EqUpTo: {
    if (!Old || !New)
      return std::nullopt;
    // Instantiate X and find its location.
    Var GroundX = W.X;
    if (GroundX.IsMeta) {
      const Binding *B = Theta.lookup(GroundX.Name);
      if (!B || !B->isVar())
        return std::nullopt;
      GroundX = Var::concrete(B->asVar());
    }
    auto OldLoc = Old->Env.find(GroundX.Name);
    auto NewLoc = New->Env.find(GroundX.Name);
    if (OldLoc == Old->Env.end() || NewLoc == New->Env.end())
      return std::nullopt;
    if (Old->Index != New->Index || Old->Env != New->Env ||
        Old->NextLoc != New->NextLoc || OldLoc->second != NewLoc->second)
      return false;
    // Stores equal at every allocated location except X's.
    for (const auto &[L, V] : Old->Store) {
      if (L == OldLoc->second)
        continue;
      auto It = New->Store.find(L);
      if (It == New->Store.end() || !(It->second == V))
        return false;
    }
    for (const auto &[L, V] : New->Store)
      if (L != NewLoc->second && !Old->Store.count(L))
        return false;
    return true;
  }
  case Witness::Kind::WK_StateEq: {
    if (!Old || !New)
      return std::nullopt;
    return Old->Index == New->Index && Old->Env == New->Env &&
           Old->NextLoc == New->NextLoc && Old->Store == New->Store;
  }
  case Witness::Kind::WK_NotPointedTo: {
    const ExecState *St = selectState(W.State, Cur, Old, New);
    if (!St)
      return std::nullopt;
    Var GroundX = W.X;
    if (GroundX.IsMeta) {
      const Binding *B = Theta.lookup(GroundX.Name);
      if (!B || !B->isVar())
        return std::nullopt;
      GroundX = Var::concrete(B->asVar());
    }
    auto It = St->Env.find(GroundX.Name);
    if (It == St->Env.end())
      return std::nullopt;
    for (const auto &[L, V] : St->Store) {
      (void)L;
      if (V.isLoc() && V.asLoc() == It->second)
        return false;
    }
    return true;
  }
  }
  return std::nullopt;
}
