//===- Optimization.cpp ---------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Optimization.h"

#include <algorithm>

using namespace cobalt;
using namespace cobalt::ir;

ChooseFn cobalt::chooseAll() {
  return [](const std::vector<MatchSite> &Delta, const Procedure &) {
    return Delta;
  };
}

namespace {

using MetaSet = std::vector<std::pair<std::string, MetaKind>>;

bool contains(const MetaSet &Set, const std::string &Name) {
  return std::any_of(Set.begin(), Set.end(),
                     [&](const auto &P) { return P.first == Name; });
}

void collectWitnessMetas(const Witness &W, MetaSet &Out) {
  switch (W.K) {
  case Witness::Kind::WK_True:
    return;
  case Witness::Kind::WK_Not:
  case Witness::Kind::WK_And:
  case Witness::Kind::WK_Or:
    for (const WitnessPtr &Kid : W.Kids)
      collectWitnessMetas(*Kid, Out);
    return;
  case Witness::Kind::WK_Eq:
    collectMetaKinds(W.LhsT.E, Out);
    collectMetaKinds(W.RhsT.E, Out);
    return;
  case Witness::Kind::WK_EqUpTo:
  case Witness::Kind::WK_NotPointedTo:
    if (W.X.IsMeta)
      collectMetaKinds(Expr(W.X), Out);
    return;
  case Witness::Kind::WK_StateEq:
    return;
  }
}

/// Shared structural checks over a guard; binds: out-param receiving the
/// variables ψ1 determines.
std::optional<std::string> validateGuard(const std::string &Name,
                                         const Guard &G, MetaSet &Psi1Vars) {
  if (!G.Psi1 || !G.Psi2)
    return Name + ": guard formulas must be non-null";
  collectFreeMetas(*G.Psi1, Psi1Vars);
  MetaSet Psi2Vars;
  collectFreeMetas(*G.Psi2, Psi2Vars);
  for (const auto &[N, K] : Psi2Vars) {
    (void)K;
    if (!contains(Psi1Vars, N))
      return Name + ": pattern variable '" + N +
             "' used in psi2 is not bound by psi1 (psi2 is checked "
             "pointwise under the substitution produced at the enabling "
             "statement)";
  }
  return std::nullopt;
}

bool isReturnShape(const Stmt &S) { return S.is<ReturnStmt>(); }
bool isBranchShape(const Stmt &S) { return S.is<BranchStmt>(); }

bool hasWildcardVar(const Var &X) { return X.isWildcard(); }
bool hasWildcardBase(const BaseExpr &B) {
  if (isVar(B))
    return asVar(B).isWildcard();
  return asConst(B).isWildcard();
}

bool hasWildcard(const Expr &E) {
  if (const auto *X = std::get_if<Var>(&E.V))
    return hasWildcardVar(*X);
  if (const auto *C = std::get_if<ConstVal>(&E.V))
    return C->isWildcard();
  if (const auto *D = std::get_if<DerefExpr>(&E.V))
    return hasWildcardVar(D->Ptr);
  if (const auto *A = std::get_if<AddrOfExpr>(&E.V))
    return hasWildcardVar(A->Target);
  if (const auto *O = std::get_if<OpExpr>(&E.V))
    return O->Op == "_" ||
           std::any_of(O->Args.begin(), O->Args.end(), hasWildcardBase);
  return std::get<MetaExpr>(E.V).isWildcard();
}

bool hasWildcard(const Stmt &S) {
  if (const auto *D = std::get_if<DeclStmt>(&S.V))
    return hasWildcardVar(D->Name);
  if (S.is<SkipStmt>())
    return false;
  if (const auto *A = std::get_if<AssignStmt>(&S.V))
    return hasWildcardVar(lhsVar(A->Target)) || hasWildcard(A->Value);
  if (const auto *N = std::get_if<NewStmt>(&S.V))
    return hasWildcardVar(N->Target);
  if (const auto *C = std::get_if<CallStmt>(&S.V))
    return hasWildcardVar(C->Target) || C->Callee.isWildcard() ||
           hasWildcardBase(C->Arg);
  if (const auto *B = std::get_if<BranchStmt>(&S.V))
    return hasWildcardBase(B->Cond) || B->Then.isWildcard() ||
           B->Else.isWildcard();
  return std::get<ReturnStmt>(S.V).Value.isWildcard();
}

} // namespace

std::optional<std::string>
cobalt::validateOptimization(const Optimization &O) {
  const TransformationPattern &P = O.Pat;

  MetaSet Psi1Vars;
  if (auto Err = validateGuard(O.Name, P.G, Psi1Vars))
    return Err;

  MetaSet FromVars = Psi1Vars;
  collectMetaKinds(P.From, FromVars);

  MetaSet ToVars;
  collectMetaKinds(P.To, ToVars);
  for (const auto &[N, K] : ToVars) {
    (void)K;
    if (!contains(FromVars, N))
      return O.Name + ": pattern variable '" + N +
             "' in the rewrite result is bound by neither psi1 nor s";
  }

  // s' must be instantiable: no wildcards.
  if (hasWildcard(P.To))
    return O.Name + ": the rewrite result contains wildcards";

  // Statement-shape discipline (see header comment).
  if (isReturnShape(P.From) != isReturnShape(P.To))
    return O.Name + ": a rewrite must not change whether the statement "
                    "is a return";
  if (!isBranchShape(P.From) && isBranchShape(P.To))
    return O.Name + ": a rewrite may only produce a branch from a branch";

  if (!P.W)
    return O.Name + ": missing witness";
  bool DirOk = P.Dir == Direction::D_Forward ? isForwardWitness(*P.W)
                                             : isBackwardWitness(*P.W);
  if (!DirOk)
    return O.Name + ": witness state selectors do not match the "
                    "optimization's direction";

  MetaSet WitnessVars;
  collectWitnessMetas(*P.W, WitnessVars);
  for (const auto &[N, K] : WitnessVars) {
    (void)K;
    if (!contains(FromVars, N))
      return O.Name + ": pattern variable '" + N +
             "' in the witness is bound by neither psi1 nor s";
  }

  if (!O.Choose)
    return O.Name + ": missing choose function";
  return std::nullopt;
}

std::optional<std::string> cobalt::validateAnalysis(const PureAnalysis &A) {
  MetaSet Psi1Vars;
  if (auto Err = validateGuard(A.Name, A.G, Psi1Vars))
    return Err;

  if (A.LabelName.empty())
    return A.Name + ": missing defined label name";
  if (LabelRegistry::isBuiltin(A.LabelName))
    return A.Name + ": defined label shadows the builtin '" + A.LabelName +
           "'";

  MetaSet ArgVars;
  for (const Term &T : A.LabelArgs)
    collectMetaKinds(T, ArgVars);
  for (const auto &[N, K] : ArgVars) {
    (void)K;
    if (!contains(Psi1Vars, N))
      return A.Name + ": pattern variable '" + N +
             "' in the defined label is not bound by psi1";
  }

  if (!A.W)
    return A.Name + ": missing witness";
  if (!isForwardWitness(*A.W))
    return A.Name + ": pure analyses are forward; the witness must only "
                    "mention the current state";

  MetaSet WitnessVars;
  collectWitnessMetas(*A.W, WitnessVars);
  for (const auto &[N, K] : WitnessVars) {
    (void)K;
    if (!contains(Psi1Vars, N))
      return A.Name + ": pattern variable '" + N +
             "' in the witness is not bound by psi1";
  }
  return std::nullopt;
}
