//===- Witness.h - The witness predicate language ---------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Witnesses are the optimization writer's "key insight" (paper §2.1.2):
/// first-order predicates over execution states that the checker proves
/// established / preserved / sufficient (obligations F1–F3, B1–B3). A
/// forward witness P(η) speaks about one state; a backward witness
/// P(η_old, η_new) relates corresponding states of the original and
/// transformed programs.
///
/// The language provides the primitives the paper's optimizations use:
///
/// * eval(state, e) — the value of extended-IL expression e in a state
///   (η(Y), η(E), η(*P), and constants C);
/// * equality between two such value terms;
/// * η_old/X = η_new/X — "equal up to X" (backward witnesses, §2.2);
/// * notPointedTo(X, η) — no store cell holds a pointer to X (§2.4);
/// * boolean combinations.
///
/// Witnesses never affect an optimization's dynamic semantics. They are
/// consumed by the checker (lowered to Z3 terms) and by the dynamic
/// witness validator (evaluated concretely over interpreter states in
/// property tests — footnote 1 of the paper observes that a wrong witness
/// can only cause a proof to fail, never unsoundness, and the validator
/// exercises exactly that contract).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CORE_WITNESS_H
#define COBALT_CORE_WITNESS_H

#include "core/Substitution.h"
#include "ir/Ast.h"
#include "ir/Interp.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace cobalt {

/// Which execution state a value term reads. Forward witnesses use
/// WS_Cur; backward witnesses use WS_Old / WS_New.
enum class StateSel { WS_Cur, WS_Old, WS_New };

/// A value term: the denotation of an extended-IL expression in one of
/// the witness's states. Constants are state-independent.
struct WTerm {
  StateSel State = StateSel::WS_Cur;
  ir::Expr E;

  std::string str() const;
};

struct Witness;
using WitnessPtr = std::shared_ptr<const Witness>;

struct Witness {
  enum class Kind {
    WK_True,
    WK_Not,
    WK_And,
    WK_Or,
    WK_Eq,           ///< WTerm = WTerm.
    WK_EqUpTo,       ///< η_old and η_new identical except X's cell (§2.2);
                     ///< includes "X is in scope", without which the
                     ///< exempted cell would be meaningless.
    WK_StateEq,      ///< η_old = η_new (unconditional backward rewrites).
    WK_NotPointedTo, ///< No store cell of the state holds &X (§2.4).
  };
  Kind K;

  std::vector<WitnessPtr> Kids; ///< WK_Not: 1; WK_And/WK_Or: 2.
  WTerm LhsT, RhsT;             ///< WK_Eq.
  ir::Var X;                    ///< WK_EqUpTo / WK_NotPointedTo.
  StateSel State = StateSel::WS_Cur; ///< WK_NotPointedTo.

  std::string str() const;
};

WitnessPtr wTrue();
WitnessPtr wNot(WitnessPtr W);
WitnessPtr wAnd(WitnessPtr A, WitnessPtr B);
WitnessPtr wOr(WitnessPtr A, WitnessPtr B);
WitnessPtr wEq(WTerm A, WTerm B);
WitnessPtr wEqUpTo(ir::Var X);
WitnessPtr wStateEq();
WitnessPtr wNotPointedTo(ir::Var X, StateSel State = StateSel::WS_Cur);

/// True when the witness only mentions WS_Cur (usable as a forward
/// witness) — respectively only WS_Old/WS_New and EqUpTo (backward).
bool isForwardWitness(const Witness &W);
bool isBackwardWitness(const Witness &W);

/// Concrete evaluation for the dynamic witness validator. \p Cur / \p Old
/// / \p New supply the states the witness's terms may select (null when
/// not applicable). Returns nullopt when a term's expression is stuck in
/// its state or a pattern variable is unbound.
std::optional<bool> evalWitness(const Witness &W, const Substitution &Theta,
                                const ir::ExecState *Cur,
                                const ir::ExecState *Old,
                                const ir::ExecState *New);

} // namespace cobalt

#endif // COBALT_CORE_WITNESS_H
