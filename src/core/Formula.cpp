//===- Formula.cpp --------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Formula.h"

#include "core/Match.h"
#include "ir/Interp.h"
#include "ir/Printer.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace cobalt;
using namespace cobalt::ir;

//===----------------------------------------------------------------------===//
// Terms.
//===----------------------------------------------------------------------===//

std::string cobalt::toString(const Term &T) {
  if (std::holds_alternative<CurrStmtTerm>(T))
    return "currStmt";
  if (const auto *E = std::get_if<Expr>(&T))
    return ir::toString(*E);
  return ir::toString(std::get<Stmt>(T));
}

static void addMeta(const std::string &Name, MetaKind K,
                    std::vector<std::pair<std::string, MetaKind>> &Out) {
  if (Name.empty())
    return; // wildcard
  for (const auto &[N, Kind] : Out)
    if (N == Name) {
      assert(Kind == K && "pattern variable used at two different kinds");
      return;
    }
  Out.emplace_back(Name, K);
}

static void collectMetaKindsBase(
    const BaseExpr &B, std::vector<std::pair<std::string, MetaKind>> &Out) {
  if (isVar(B)) {
    if (asVar(B).IsMeta)
      addMeta(asVar(B).Name, MetaKind::MK_Var, Out);
  } else if (asConst(B).IsMeta) {
    addMeta(asConst(B).MetaName, MetaKind::MK_Const, Out);
  }
}

void cobalt::collectMetaKinds(
    const Expr &E, std::vector<std::pair<std::string, MetaKind>> &Out) {
  if (const auto *X = std::get_if<Var>(&E.V)) {
    if (X->IsMeta)
      addMeta(X->Name, MetaKind::MK_Var, Out);
  } else if (const auto *C = std::get_if<ConstVal>(&E.V)) {
    if (C->IsMeta)
      addMeta(C->MetaName, MetaKind::MK_Const, Out);
  } else if (const auto *D = std::get_if<DerefExpr>(&E.V)) {
    if (D->Ptr.IsMeta)
      addMeta(D->Ptr.Name, MetaKind::MK_Var, Out);
  } else if (const auto *A = std::get_if<AddrOfExpr>(&E.V)) {
    if (A->Target.IsMeta)
      addMeta(A->Target.Name, MetaKind::MK_Var, Out);
  } else if (const auto *O = std::get_if<OpExpr>(&E.V)) {
    for (const BaseExpr &B : O->Args)
      collectMetaKindsBase(B, Out);
  } else if (const auto *M = std::get_if<MetaExpr>(&E.V)) {
    if (!M->isWildcard())
      addMeta(M->Name, MetaKind::MK_Expr, Out);
  }
}

void cobalt::collectMetaKinds(
    const Stmt &S, std::vector<std::pair<std::string, MetaKind>> &Out) {
  if (const auto *D = std::get_if<DeclStmt>(&S.V)) {
    if (D->Name.IsMeta)
      addMeta(D->Name.Name, MetaKind::MK_Var, Out);
  } else if (const auto *A = std::get_if<AssignStmt>(&S.V)) {
    const Var &L = lhsVar(A->Target);
    if (L.IsMeta)
      addMeta(L.Name, MetaKind::MK_Var, Out);
    collectMetaKinds(A->Value, Out);
  } else if (const auto *N = std::get_if<NewStmt>(&S.V)) {
    if (N->Target.IsMeta)
      addMeta(N->Target.Name, MetaKind::MK_Var, Out);
  } else if (const auto *C = std::get_if<CallStmt>(&S.V)) {
    if (C->Target.IsMeta)
      addMeta(C->Target.Name, MetaKind::MK_Var, Out);
    if (C->Callee.IsMeta)
      addMeta(C->Callee.Name, MetaKind::MK_Proc, Out);
    collectMetaKindsBase(C->Arg, Out);
  } else if (const auto *B = std::get_if<BranchStmt>(&S.V)) {
    collectMetaKindsBase(B->Cond, Out);
    if (B->Then.IsMeta)
      addMeta(B->Then.MetaName, MetaKind::MK_Index, Out);
    if (B->Else.IsMeta)
      addMeta(B->Else.MetaName, MetaKind::MK_Index, Out);
  } else if (const auto *R = std::get_if<ReturnStmt>(&S.V)) {
    if (R->Value.IsMeta)
      addMeta(R->Value.Name, MetaKind::MK_Var, Out);
  }
}

void cobalt::collectMetaKinds(
    const Term &T, std::vector<std::pair<std::string, MetaKind>> &Out) {
  if (const auto *E = std::get_if<Expr>(&T))
    collectMetaKinds(*E, Out);
  else if (const auto *S = std::get_if<Stmt>(&T))
    collectMetaKinds(*S, Out);
}

//===----------------------------------------------------------------------===//
// Formula construction and printing.
//===----------------------------------------------------------------------===//

static FormulaPtr make(Formula F) {
  return std::make_shared<const Formula>(std::move(F));
}

FormulaPtr cobalt::fTrue() {
  Formula F;
  F.K = Formula::Kind::FK_True;
  return make(std::move(F));
}

FormulaPtr cobalt::fFalse() {
  Formula F;
  F.K = Formula::Kind::FK_False;
  return make(std::move(F));
}

FormulaPtr cobalt::fNot(FormulaPtr Inner) {
  Formula F;
  F.K = Formula::Kind::FK_Not;
  F.Kids.push_back(std::move(Inner));
  return make(std::move(F));
}

FormulaPtr cobalt::fAnd(FormulaPtr A, FormulaPtr B) {
  Formula F;
  F.K = Formula::Kind::FK_And;
  F.Kids.push_back(std::move(A));
  F.Kids.push_back(std::move(B));
  return make(std::move(F));
}

FormulaPtr cobalt::fOr(FormulaPtr A, FormulaPtr B) {
  Formula F;
  F.K = Formula::Kind::FK_Or;
  F.Kids.push_back(std::move(A));
  F.Kids.push_back(std::move(B));
  return make(std::move(F));
}

FormulaPtr cobalt::fLabel(std::string Name, std::vector<Term> Args) {
  Formula F;
  F.K = Formula::Kind::FK_Label;
  F.LabelName = std::move(Name);
  F.Args = std::move(Args);
  return make(std::move(F));
}

FormulaPtr cobalt::fEq(Term A, Term B) {
  Formula F;
  F.K = Formula::Kind::FK_Eq;
  F.LhsT = std::move(A);
  F.RhsT = std::move(B);
  return make(std::move(F));
}

FormulaPtr cobalt::fCase(Term Scrutinee, std::vector<CaseArm> Arms,
                         FormulaPtr ElseBody) {
  Formula F;
  F.K = Formula::Kind::FK_Case;
  F.LhsT = std::move(Scrutinee);
  F.Arms = std::move(Arms);
  F.ElseBody = std::move(ElseBody);
  return make(std::move(F));
}

std::string Formula::str() const {
  switch (K) {
  case Kind::FK_True:
    return "true";
  case Kind::FK_False:
    return "false";
  case Kind::FK_Not:
    return "!(" + Kids[0]->str() + ")";
  case Kind::FK_And:
    return "(" + Kids[0]->str() + " && " + Kids[1]->str() + ")";
  case Kind::FK_Or:
    return "(" + Kids[0]->str() + " || " + Kids[1]->str() + ")";
  case Kind::FK_Label: {
    std::string Out = LabelName + "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += toString(Args[I]);
    }
    return Out + ")";
  }
  case Kind::FK_Eq:
    return toString(LhsT) + " = " + toString(RhsT);
  case Kind::FK_Case: {
    std::string Out = "case " + toString(LhsT) + " of ";
    for (const CaseArm &A : Arms)
      Out += toString(A.Pattern) + " => " + A.Body->str() + " | ";
    return Out + "else => " + ElseBody->str() + " endcase";
  }
  }
  return "<invalid>";
}

std::string GroundLabel::str() const {
  std::string Out = Name + "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Args[I].str();
  }
  return Out + ")";
}

//===----------------------------------------------------------------------===//
// Free pattern variables.
//===----------------------------------------------------------------------===//

static void collectFreeMetasInto(
    const Formula &F, std::vector<std::pair<std::string, MetaKind>> &Out,
    std::vector<std::string> &BoundStack) {
  auto AddUnlessBound = [&](const std::string &Name, MetaKind K) {
    if (std::find(BoundStack.begin(), BoundStack.end(), Name) ==
        BoundStack.end())
      addMeta(Name, K, Out);
  };
  auto CollectTerm = [&](const Term &T) {
    std::vector<std::pair<std::string, MetaKind>> Tmp;
    collectMetaKinds(T, Tmp);
    for (const auto &[N, K] : Tmp)
      AddUnlessBound(N, K);
  };

  switch (F.K) {
  case Formula::Kind::FK_True:
  case Formula::Kind::FK_False:
    return;
  case Formula::Kind::FK_Not:
    collectFreeMetasInto(*F.Kids[0], Out, BoundStack);
    return;
  case Formula::Kind::FK_And:
  case Formula::Kind::FK_Or:
    for (const FormulaPtr &Kid : F.Kids)
      collectFreeMetasInto(*Kid, Out, BoundStack);
    return;
  case Formula::Kind::FK_Label:
    for (const Term &T : F.Args)
      CollectTerm(T);
    return;
  case Formula::Kind::FK_Eq:
    CollectTerm(F.LhsT);
    CollectTerm(F.RhsT);
    return;
  case Formula::Kind::FK_Case: {
    CollectTerm(F.LhsT);
    for (const CaseArm &Arm : F.Arms) {
      // Variables introduced by the arm pattern are bound in the body.
      std::vector<std::pair<std::string, MetaKind>> ArmMetas;
      collectMetaKinds(Arm.Pattern, ArmMetas);
      size_t Mark = BoundStack.size();
      for (const auto &[N, K] : ArmMetas) {
        (void)K;
        BoundStack.push_back(N);
      }
      collectFreeMetasInto(*Arm.Body, Out, BoundStack);
      BoundStack.resize(Mark);
    }
    if (F.ElseBody)
      collectFreeMetasInto(*F.ElseBody, Out, BoundStack);
    return;
  }
  }
}

void cobalt::collectFreeMetas(
    const Formula &F, std::vector<std::pair<std::string, MetaKind>> &Out) {
  std::vector<std::string> BoundStack;
  collectFreeMetasInto(F, Out, BoundStack);
}

//===----------------------------------------------------------------------===//
// Label registry.
//===----------------------------------------------------------------------===//

bool LabelRegistry::isBuiltin(const std::string &Name) {
  return Name == "stmt" || Name == "computes";
}

bool LabelRegistry::define(LabelDef Def) {
  if (isBuiltin(Def.Name) || findPredicate(Def.Name) ||
      isAnalysisLabel(Def.Name))
    return false;
  Defs.push_back(std::move(Def));
  return true;
}

void LabelRegistry::declareAnalysisLabel(const std::string &Name) {
  assert(!isBuiltin(Name) && !findPredicate(Name) &&
         "analysis label shadows an existing label");
  AnalysisLabels.insert(Name);
}

const LabelDef *LabelRegistry::findPredicate(const std::string &Name) const {
  for (const LabelDef &D : Defs)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

bool LabelRegistry::isAnalysisLabel(const std::string &Name) const {
  return AnalysisLabels.count(Name) != 0;
}

//===----------------------------------------------------------------------===//
// Universe.
//===----------------------------------------------------------------------===//

namespace {
struct UniverseBuilder {
  Universe U;
  std::set<std::string> Vars;
  std::set<int64_t> Consts;
  std::set<std::string> ExprKeys;
  std::set<std::string> Procs;

  void addVar(const Var &X) {
    if (!X.IsMeta && Vars.insert(X.Name).second)
      U.Vars.push_back(X.Name);
  }
  void addConst(const ConstVal &C) {
    if (!C.IsMeta && Consts.insert(C.Value).second)
      U.Consts.push_back(C.Value);
  }
  void addBase(const BaseExpr &B) {
    if (isVar(B))
      addVar(asVar(B));
    else
      addConst(asConst(B));
  }
  void addExpr(const Expr &E) {
    if (!isGround(E))
      return;
    if (ExprKeys.insert(ir::toString(E)).second)
      U.Exprs.push_back(E);
    if (const auto *X = std::get_if<Var>(&E.V))
      addVar(*X);
    else if (const auto *C = std::get_if<ConstVal>(&E.V))
      addConst(*C);
    else if (const auto *D = std::get_if<DerefExpr>(&E.V))
      addVar(D->Ptr);
    else if (const auto *A = std::get_if<AddrOfExpr>(&E.V))
      addVar(A->Target);
    else if (const auto *O = std::get_if<OpExpr>(&E.V))
      for (const BaseExpr &B : O->Args)
        addBase(B);
  }
};
} // namespace

Universe cobalt::buildUniverse(const Procedure &P) {
  UniverseBuilder B;
  B.addVar(Var::concrete(P.Param));
  for (int I = 0; I < P.size(); ++I) {
    const Stmt &S = P.stmtAt(I);
    B.U.Indices.push_back(I);
    if (const auto *D = std::get_if<DeclStmt>(&S.V)) {
      B.addVar(D->Name);
    } else if (const auto *A = std::get_if<AssignStmt>(&S.V)) {
      B.addVar(lhsVar(A->Target));
      B.addExpr(A->Value);
    } else if (const auto *N = std::get_if<NewStmt>(&S.V)) {
      B.addVar(N->Target);
    } else if (const auto *C = std::get_if<CallStmt>(&S.V)) {
      B.addVar(C->Target);
      B.addBase(C->Arg);
      if (!C->Callee.IsMeta && B.Procs.insert(C->Callee.Name).second)
        B.U.Procs.push_back(C->Callee.Name);
    } else if (const auto *Br = std::get_if<BranchStmt>(&S.V)) {
      B.addBase(Br->Cond);
    } else if (const auto *R = std::get_if<ReturnStmt>(&S.V)) {
      B.addVar(R->Value);
    }
  }
  return std::move(B.U);
}

//===----------------------------------------------------------------------===//
// Term evaluation.
//===----------------------------------------------------------------------===//

std::optional<Term> cobalt::evalTerm(const Term &T, const NodeContext &Ctx,
                                     const Substitution &Theta) {
  if (std::holds_alternative<CurrStmtTerm>(T))
    return Term(Ctx.stmt());
  if (const auto *E = std::get_if<Expr>(&T)) {
    auto R = applySubstExpr(*E, Theta);
    if (!R)
      return std::nullopt;
    return Term(std::move(*R));
  }
  auto R = applySubst(std::get<Stmt>(T), Theta);
  if (!R)
    return std::nullopt;
  return Term(std::move(*R));
}

std::optional<Binding> cobalt::termToBinding(const Term &T,
                                             const NodeContext &Ctx,
                                             const Substitution &Theta) {
  auto G = evalTerm(T, Ctx, Theta);
  if (!G)
    return std::nullopt;
  const auto *E = std::get_if<Expr>(&*G);
  if (!E)
    return std::nullopt; // statements are not label-argument values
  if (const auto *X = std::get_if<Var>(&E->V))
    return Binding::var(X->Name);
  if (const auto *C = std::get_if<ConstVal>(&E->V))
    return Binding::constant(C->Value);
  return Binding::expr(*E);
}

//===----------------------------------------------------------------------===//
// The computes(E, C) builtin: constant folding of ground expressions.
//===----------------------------------------------------------------------===//

/// If \p E is a ground expression over constant operands, returns its
/// value: a plain constant, or an operator applied to constants. Variables,
/// loads, and address-of have no statically-known value.
static std::optional<int64_t> foldGroundExpr(const Expr &E) {
  if (const auto *C = std::get_if<ConstVal>(&E.V))
    return C->Value;
  const auto *O = std::get_if<OpExpr>(&E.V);
  if (!O)
    return std::nullopt;
  std::vector<int64_t> Args;
  for (const BaseExpr &B : O->Args) {
    if (!isConst(B) || asConst(B).IsMeta)
      return std::nullopt;
    Args.push_back(asConst(B).Value);
  }
  return evalConstOp(O->Op, Args);
}

//===----------------------------------------------------------------------===//
// Complete evaluation (ι ⊨θ ψ).
//===----------------------------------------------------------------------===//

/// Checks that every named pattern variable in \p S is bound by Theta;
/// stmt(S) is only meaningful under a θ covering S (wildcards excepted).
static bool allMetasBound(const Stmt &S, const Substitution &Theta) {
  std::vector<std::string> Names;
  collectMetaNames(S, Names);
  return std::all_of(Names.begin(), Names.end(), [&](const std::string &N) {
    return Theta.isBound(N);
  });
}

static std::optional<bool> evalLabel(const Formula &F, const NodeContext &Ctx,
                                     const Substitution &Theta) {
  const std::string &Name = F.LabelName;

  if (Name == "stmt") {
    assert(F.Args.size() == 1 && "stmt takes one statement argument");
    const auto *Pat = std::get_if<Stmt>(&F.Args[0]);
    assert(Pat && "stmt's argument must be a statement term");
    if (!allMetasBound(*Pat, Theta))
      return std::nullopt;
    Substitution Scratch = Theta;
    return matchStmt(*Pat, Ctx.stmt(), Scratch);
  }

  if (Name == "computes") {
    assert(F.Args.size() == 2 && "computes takes (expr, const)");
    auto ET = evalTerm(F.Args[0], Ctx, Theta);
    auto CT = evalTerm(F.Args[1], Ctx, Theta);
    if (!ET || !CT)
      return std::nullopt;
    const auto *E = std::get_if<Expr>(&*ET);
    const auto *CE = std::get_if<Expr>(&*CT);
    if (!E || !CE)
      return false;
    const auto *C = std::get_if<ConstVal>(&CE->V);
    if (!C)
      return false;
    auto V = foldGroundExpr(*E);
    return V && *V == C->Value;
  }

  if (const LabelDef *Def = Ctx.Registry->findPredicate(Name)) {
    assert(Def->Params.size() == F.Args.size() &&
           "label arity mismatch");
    Substitution Local;
    for (size_t I = 0; I < F.Args.size(); ++I) {
      auto B = termToBinding(F.Args[I], Ctx, Theta);
      if (!B)
        return std::nullopt;
      Local.bind(Def->Params[I].first, std::move(*B));
    }
    return evalFormula(*Def->Body, Ctx, Local);
  }

  // Analysis label: membership of the ground instance in L_p(ι).
  if (!Ctx.AnalysisLabeling)
    return false;
  GroundLabel G;
  G.Name = Name;
  for (const Term &T : F.Args) {
    auto B = termToBinding(T, Ctx, Theta);
    if (!B)
      return std::nullopt;
    G.Args.push_back(std::move(*B));
  }
  return (*Ctx.AnalysisLabeling)[Ctx.Index].count(G) != 0;
}

/// Matches a case-arm pattern against a ground scrutinee, extending Theta
/// with arm-local bindings.
static bool matchArm(const Term &Pattern, const Term &Scrutinee,
                     Substitution &Theta) {
  if (const auto *PS = std::get_if<Stmt>(&Pattern)) {
    const auto *SS = std::get_if<Stmt>(&Scrutinee);
    return SS && matchStmt(*PS, *SS, Theta);
  }
  if (const auto *PE = std::get_if<Expr>(&Pattern)) {
    const auto *SE = std::get_if<Expr>(&Scrutinee);
    return SE && matchExpr(*PE, *SE, Theta);
  }
  return false; // currStmt is not a pattern
}

std::optional<bool> cobalt::evalFormula(const Formula &F,
                                        const NodeContext &Ctx,
                                        const Substitution &Theta) {
  switch (F.K) {
  case Formula::Kind::FK_True:
    return true;
  case Formula::Kind::FK_False:
    return false;
  case Formula::Kind::FK_Not: {
    auto R = evalFormula(*F.Kids[0], Ctx, Theta);
    if (!R)
      return std::nullopt;
    return !*R;
  }
  case Formula::Kind::FK_And: {
    bool SawUnknown = false;
    for (const FormulaPtr &Kid : F.Kids) {
      auto R = evalFormula(*Kid, Ctx, Theta);
      if (!R)
        SawUnknown = true;
      else if (!*R)
        return false;
    }
    if (SawUnknown)
      return std::nullopt;
    return true;
  }
  case Formula::Kind::FK_Or: {
    bool SawUnknown = false;
    for (const FormulaPtr &Kid : F.Kids) {
      auto R = evalFormula(*Kid, Ctx, Theta);
      if (!R)
        SawUnknown = true;
      else if (*R)
        return true;
    }
    if (SawUnknown)
      return std::nullopt;
    return false;
  }
  case Formula::Kind::FK_Label:
    return evalLabel(F, Ctx, Theta);
  case Formula::Kind::FK_Eq: {
    auto A = evalTerm(F.LhsT, Ctx, Theta);
    auto B = evalTerm(F.RhsT, Ctx, Theta);
    if (!A || !B)
      return std::nullopt;
    return *A == *B;
  }
  case Formula::Kind::FK_Case: {
    auto Scrutinee = evalTerm(F.LhsT, Ctx, Theta);
    if (!Scrutinee)
      return std::nullopt;
    for (const CaseArm &Arm : F.Arms) {
      Substitution ArmTheta = Theta;
      if (matchArm(Arm.Pattern, *Scrutinee, ArmTheta))
        return evalFormula(*Arm.Body, Ctx, ArmTheta);
    }
    return evalFormula(*F.ElseBody, Ctx, Theta);
  }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Generative satisfaction.
//===----------------------------------------------------------------------===//

namespace {

/// Enumerates bindings for the given unbound pattern variables over the
/// universe, invoking \p Sink for each complete assignment.
void enumerateUnbound(
    const std::vector<std::pair<std::string, MetaKind>> &Frees, size_t At,
    const Universe &Univ, Substitution Theta,
    const std::function<void(const Substitution &)> &Sink) {
  while (At < Frees.size() && Theta.isBound(Frees[At].first))
    ++At;
  if (At == Frees.size()) {
    Sink(Theta);
    return;
  }
  const auto &[Name, Kind] = Frees[At];
  switch (Kind) {
  case MetaKind::MK_Var:
    for (const std::string &V : Univ.Vars) {
      Substitution Next = Theta;
      Next.bind(Name, Binding::var(V));
      enumerateUnbound(Frees, At + 1, Univ, std::move(Next), Sink);
    }
    return;
  case MetaKind::MK_Const:
    for (int64_t C : Univ.Consts) {
      Substitution Next = Theta;
      Next.bind(Name, Binding::constant(C));
      enumerateUnbound(Frees, At + 1, Univ, std::move(Next), Sink);
    }
    return;
  case MetaKind::MK_Expr:
    for (const Expr &E : Univ.Exprs) {
      Substitution Next = Theta;
      Next.bind(Name, Binding::expr(E));
      enumerateUnbound(Frees, At + 1, Univ, std::move(Next), Sink);
    }
    return;
  case MetaKind::MK_Proc:
    for (const std::string &P : Univ.Procs) {
      Substitution Next = Theta;
      Next.bind(Name, Binding::proc(P));
      enumerateUnbound(Frees, At + 1, Univ, std::move(Next), Sink);
    }
    return;
  case MetaKind::MK_Index:
    for (int I : Univ.Indices) {
      Substitution Next = Theta;
      Next.bind(Name, Binding::index(I));
      enumerateUnbound(Frees, At + 1, Univ, std::move(Next), Sink);
    }
    return;
  }
}

/// Matches a label-argument term pattern against a ground binding,
/// extending Theta (used to read bindings out of analysis labels).
bool matchTermBinding(const Term &Pattern, const Binding &Value,
                      Substitution &Theta) {
  const auto *E = std::get_if<Expr>(&Pattern);
  if (!E)
    return false;
  if (const auto *X = std::get_if<Var>(&E->V)) {
    if (!X->IsMeta)
      return Value.isVar() && Value.asVar() == X->Name;
    if (X->isWildcard())
      return true;
    if (!Value.isVar())
      return false;
    return Theta.bind(X->Name, Value);
  }
  if (const auto *C = std::get_if<ConstVal>(&E->V)) {
    if (!C->IsMeta)
      return Value.isConst() && Value.asConst() == C->Value;
    if (C->isWildcard())
      return true;
    if (!Value.isConst())
      return false;
    return Theta.bind(C->MetaName, Value);
  }
  if (const auto *M = std::get_if<MetaExpr>(&E->V)) {
    if (M->isWildcard())
      return true;
    return Theta.bind(M->Name, Value);
  }
  // Structural expression pattern against an Exprs binding.
  if (!Value.isExpr())
    return false;
  return matchExpr(*E, Value.asExpr(), Theta);
}

} // namespace

std::vector<Substitution> cobalt::satisfyFormula(const Formula &F,
                                                 const NodeContext &Ctx,
                                                 const Substitution &Theta) {
  std::set<Substitution> Out;

  auto EnumerateThenEval = [&]() {
    std::vector<std::pair<std::string, MetaKind>> Frees;
    collectFreeMetas(F, Frees);
    enumerateUnbound(Frees, 0, *Ctx.Univ, Theta,
                     [&](const Substitution &Full) {
                       auto R = evalFormula(F, Ctx, Full);
                       if (R && *R)
                         Out.insert(Full);
                     });
  };

  switch (F.K) {
  case Formula::Kind::FK_True:
    return {Theta};
  case Formula::Kind::FK_False:
    return {};
  case Formula::Kind::FK_And: {
    std::vector<Substitution> Acc = {Theta};
    for (const FormulaPtr &Kid : F.Kids) {
      std::set<Substitution> Next;
      for (const Substitution &T : Acc)
        for (Substitution &R : satisfyFormula(*Kid, Ctx, T))
          Next.insert(std::move(R));
      Acc.assign(Next.begin(), Next.end());
      if (Acc.empty())
        return {};
    }
    return Acc;
  }
  case Formula::Kind::FK_Or: {
    for (const FormulaPtr &Kid : F.Kids)
      for (Substitution &R : satisfyFormula(*Kid, Ctx, Theta))
        Out.insert(std::move(R));
    return {Out.begin(), Out.end()};
  }
  case Formula::Kind::FK_Label: {
    const std::string &Name = F.LabelName;
    if (Name == "stmt") {
      const auto *Pat = std::get_if<Stmt>(&F.Args[0]);
      assert(Pat && "stmt's argument must be a statement term");
      Substitution Extended = Theta;
      if (matchStmt(*Pat, Ctx.stmt(), Extended))
        Out.insert(std::move(Extended));
      return {Out.begin(), Out.end()};
    }
    if (Name == "computes") {
      // Generative: enumerate only the expression side's unbound
      // variables, fold, and *bind* the result side (never enumerate the
      // result — constant folding would otherwise be cubic in the
      // constant universe).
      std::vector<std::pair<std::string, MetaKind>> ExprFrees;
      collectMetaKinds(F.Args[0], ExprFrees);
      enumerateUnbound(
          ExprFrees, 0, *Ctx.Univ, Theta, [&](const Substitution &Th) {
            auto ET = evalTerm(F.Args[0], Ctx, Th);
            if (!ET)
              return;
            const auto *E = std::get_if<Expr>(&*ET);
            if (!E)
              return;
            auto V = foldGroundExpr(*E);
            if (!V)
              return;
            const auto *CE = std::get_if<Expr>(&F.Args[1]);
            if (!CE)
              return;
            Substitution Extended = Th;
            if (matchExpr(*CE, Expr(ConstVal::concrete(*V)), Extended))
              Out.insert(std::move(Extended));
          });
      return {Out.begin(), Out.end()};
    }
    if (Ctx.Registry->isAnalysisLabel(Name)) {
      if (!Ctx.AnalysisLabeling)
        return {};
      for (const GroundLabel &G : (*Ctx.AnalysisLabeling)[Ctx.Index]) {
        if (G.Name != Name || G.Args.size() != F.Args.size())
          continue;
        Substitution Extended = Theta;
        bool Ok = true;
        for (size_t I = 0; Ok && I < F.Args.size(); ++I)
          Ok = matchTermBinding(F.Args[I], G.Args[I], Extended);
        if (Ok)
          Out.insert(std::move(Extended));
      }
      return {Out.begin(), Out.end()};
    }
    // User predicate label (or unknown name, which evaluates over the
    // universe and will simply produce nothing if always false).
    EnumerateThenEval();
    return {Out.begin(), Out.end()};
  }
  case Formula::Kind::FK_Not:
  case Formula::Kind::FK_Eq:
  case Formula::Kind::FK_Case:
    EnumerateThenEval();
    return {Out.begin(), Out.end()};
  }
  return {};
}
