//===- CobaltParser.cpp ---------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CobaltParser.h"

#include "core/Builder.h"
#include "ir/Parser.h"
#include "support/Lexer.h"

#include <cstdio>
#include <cstdlib>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

/// Recursive-descent parser over the shared lexer. Embedded IL patterns
/// (statement/expression fragments) are carved out of the buffer as
/// substrings — token spellings are views into the buffer, so the extent
/// of a pattern is [first token begin, last token end) — and re-parsed by
/// the IL pattern parser.
class CobaltParser {
public:
  CobaltParser(std::string_view Buffer, DiagnosticEngine &Diags)
      : Buffer(Buffer), Lex(Buffer, Diags), Diags(Diags) {}

  std::optional<CobaltModule> parseModule();

private:
  // Formula / witness grammars.
  FormulaPtr parseFormula();   // ||
  FormulaPtr parseConjunct();  // &&
  FormulaPtr parseNegation();  // !
  FormulaPtr parsePrimary();   // literals, labels, case, equality, parens
  WitnessPtr parseWitness();
  WitnessPtr parseWitnessConjunct();
  WitnessPtr parseWitnessNegation();
  WitnessPtr parseWitnessPrimary();

  // Top-level definitions.
  bool parseLabelDef();
  bool parseOptimization();
  bool parseAnalysis();

  /// Extracts the source extent of tokens up to (not including) the next
  /// top-level occurrence of one of the \p Stops (punctuator spellings or
  /// identifier keywords), respecting (), and re-parses it with \p Parse.
  /// Consumes the extent but not the stop token.
  std::optional<std::string_view>
  collectUntil(const std::vector<std::string_view> &Stops);

  std::optional<Stmt> parseStmtPatternUntil(
      const std::vector<std::string_view> &Stops);
  std::optional<Expr> parseExprPatternUntil(
      const std::vector<std::string_view> &Stops);

  bool expectPunct(std::string_view S);
  bool expectKeyword(std::string_view S);
  size_t offsetOf(const Token &Tok) const {
    return static_cast<size_t>(Tok.Spelling.data() - Buffer.data());
  }

  std::string_view Buffer;
  Lexer Lex;
  DiagnosticEngine &Diags;
  CobaltModule Module;
};

bool CobaltParser::expectPunct(std::string_view S) {
  Token Tok = Lex.lex();
  if (Tok.isPunct(S))
    return true;
  Diags.error(Tok.Loc, "expected '" + std::string(S) + "', found '" +
                           std::string(Tok.Spelling) + "'");
  return false;
}

bool CobaltParser::expectKeyword(std::string_view S) {
  Token Tok = Lex.lex();
  if (Tok.isIdent(S))
    return true;
  Diags.error(Tok.Loc, "expected '" + std::string(S) + "', found '" +
                           std::string(Tok.Spelling) + "'");
  return false;
}

std::optional<std::string_view>
CobaltParser::collectUntil(const std::vector<std::string_view> &Stops) {
  int Depth = 0;
  std::optional<size_t> Begin;
  size_t End = 0;
  while (true) {
    const Token &Next = Lex.peek();
    if (Next.is(TokenKind::TK_End)) {
      Diags.error(Lex.currentLoc(), "unexpected end of input in pattern");
      return std::nullopt;
    }
    if (Depth == 0) {
      for (std::string_view S : Stops)
        if (Next.isPunct(S) || Next.isIdent(S)) {
          if (!Begin) {
            Diags.error(Next.Loc, "empty pattern");
            return std::nullopt;
          }
          return Buffer.substr(*Begin, End - *Begin);
        }
    }
    Token Tok = Lex.lex();
    if (Tok.isPunct("("))
      ++Depth;
    if (Tok.isPunct(")")) {
      if (Depth == 0) {
        // A closing paren above our nesting is a caller's delimiter.
        if (!Begin) {
          Diags.error(Tok.Loc, "empty pattern");
          return std::nullopt;
        }
        Lex.unlex(Tok);
        return Buffer.substr(*Begin, End - *Begin);
      }
      --Depth;
    }
    if (!Begin)
      Begin = offsetOf(Tok);
    End = offsetOf(Tok) + Tok.Spelling.size();
  }
}

std::optional<Stmt> CobaltParser::parseStmtPatternUntil(
    const std::vector<std::string_view> &Stops) {
  auto Text = collectUntil(Stops);
  if (!Text)
    return std::nullopt;
  return parseStmtPattern(*Text, Diags);
}

std::optional<Expr> CobaltParser::parseExprPatternUntil(
    const std::vector<std::string_view> &Stops) {
  auto Text = collectUntil(Stops);
  if (!Text)
    return std::nullopt;
  return parseExprPattern(*Text, Diags);
}

//===----------------------------------------------------------------------===//
// Formulas.
//===----------------------------------------------------------------------===//

FormulaPtr CobaltParser::parseFormula() {
  FormulaPtr Lhs = parseConjunct();
  while (Lhs && Lex.peek().isPunct("||")) {
    Lex.lex();
    FormulaPtr Rhs = parseConjunct();
    if (!Rhs)
      return nullptr;
    Lhs = fOr(std::move(Lhs), std::move(Rhs));
  }
  return Lhs;
}

FormulaPtr CobaltParser::parseConjunct() {
  FormulaPtr Lhs = parseNegation();
  while (Lhs && Lex.peek().isPunct("&&")) {
    Lex.lex();
    FormulaPtr Rhs = parseNegation();
    if (!Rhs)
      return nullptr;
    Lhs = fAnd(std::move(Lhs), std::move(Rhs));
  }
  return Lhs;
}

FormulaPtr CobaltParser::parseNegation() {
  if (Lex.peek().isPunct("!")) {
    Lex.lex();
    FormulaPtr Inner = parseNegation();
    return Inner ? fNot(std::move(Inner)) : nullptr;
  }
  return parsePrimary();
}

FormulaPtr CobaltParser::parsePrimary() {
  const Token &Next = Lex.peek();

  if (Next.isIdent("true")) {
    Lex.lex();
    return fTrue();
  }
  if (Next.isIdent("false")) {
    Lex.lex();
    return fFalse();
  }
  if (Next.isPunct("(")) {
    Lex.lex();
    FormulaPtr Inner = parseFormula();
    if (!Inner || !expectPunct(")"))
      return nullptr;
    return Inner;
  }

  if (Next.isIdent("case")) {
    Lex.lex();
    // Scrutinee: currStmt or an expression pattern (until 'of').
    Term Scrutinee = Term(CurrStmtTerm{});
    bool StmtArms = true;
    if (Lex.peek().isIdent("currStmt")) {
      Lex.lex();
    } else {
      auto E = parseExprPatternUntil({"of"});
      if (!E)
        return nullptr;
      Scrutinee = Term(std::move(*E));
      StmtArms = false;
    }
    if (!expectKeyword("of"))
      return nullptr;

    std::vector<CaseArm> Arms;
    while (!Lex.peek().isIdent("else")) {
      Term Pattern = Term(CurrStmtTerm{});
      if (StmtArms) {
        auto S = parseStmtPatternUntil({"=>"});
        if (!S)
          return nullptr;
        Pattern = Term(std::move(*S));
      } else {
        auto E = parseExprPatternUntil({"=>"});
        if (!E)
          return nullptr;
        Pattern = Term(std::move(*E));
      }
      if (!expectPunct("=>"))
        return nullptr;
      FormulaPtr Body = parseFormula();
      if (!Body)
        return nullptr;
      Arms.push_back({std::move(Pattern), std::move(Body)});
      if (Lex.peek().isPunct("|")) {
        Lex.lex();
        continue;
      }
      break;
    }
    if (!expectKeyword("else") || !expectPunct("=>"))
      return nullptr;
    FormulaPtr ElseBody = parseFormula();
    if (!ElseBody)
      return nullptr;
    if (!expectKeyword("endcase"))
      return nullptr;
    return fCase(std::move(Scrutinee), std::move(Arms),
                 std::move(ElseBody));
  }

  // A label literal `name(args...)` or a term equality `t = t`.
  if (Next.is(TokenKind::TK_Ident)) {
    Token Name = Lex.lex();
    if (Lex.peek().isPunct("(")) {
      Lex.lex();
      std::string LabelName(Name.Spelling);
      std::vector<Term> Args;
      if (LabelName == "stmt") {
        auto S = parseStmtPatternUntil({")"});
        if (!S)
          return nullptr;
        Args.push_back(Term(std::move(*S)));
      } else if (!Lex.peek().isPunct(")")) {
        while (true) {
          auto E = parseExprPatternUntil({",", ")"});
          if (!E)
            return nullptr;
          Args.push_back(Term(std::move(*E)));
          if (Lex.peek().isPunct(",")) {
            Lex.lex();
            continue;
          }
          break;
        }
      }
      if (!expectPunct(")"))
        return nullptr;
      return fLabel(std::move(LabelName), std::move(Args));
    }
    // Equality: re-parse the identifier as the start of an expression
    // pattern term.
    Lex.unlex(Name);
  }

  auto LhsE = parseExprPatternUntil({"="});
  if (!LhsE || !expectPunct("="))
    return nullptr;
  // The right side ends where the enclosing context continues; stop at
  // any formula-level delimiter.
  auto RhsE = parseExprPatternUntil(
      {"&&", "||", ")", "|", ";", "else", "endcase", "followed", "preceded",
       "until", "since", "defines", "with"});
  if (!RhsE)
    return nullptr;
  return fEq(Term(std::move(*LhsE)), Term(std::move(*RhsE)));
}

//===----------------------------------------------------------------------===//
// Witnesses.
//===----------------------------------------------------------------------===//

WitnessPtr CobaltParser::parseWitness() {
  WitnessPtr Lhs = parseWitnessConjunct();
  while (Lhs && Lex.peek().isPunct("||")) {
    Lex.lex();
    WitnessPtr Rhs = parseWitnessConjunct();
    if (!Rhs)
      return nullptr;
    Lhs = wOr(std::move(Lhs), std::move(Rhs));
  }
  return Lhs;
}

WitnessPtr CobaltParser::parseWitnessConjunct() {
  WitnessPtr Lhs = parseWitnessNegation();
  while (Lhs && Lex.peek().isPunct("&&")) {
    Lex.lex();
    WitnessPtr Rhs = parseWitnessNegation();
    if (!Rhs)
      return nullptr;
    Lhs = wAnd(std::move(Lhs), std::move(Rhs));
  }
  return Lhs;
}

WitnessPtr CobaltParser::parseWitnessNegation() {
  if (Lex.peek().isPunct("!")) {
    Lex.lex();
    WitnessPtr Inner = parseWitnessNegation();
    return Inner ? wNot(std::move(Inner)) : nullptr;
  }
  return parseWitnessPrimary();
}

WitnessPtr CobaltParser::parseWitnessPrimary() {
  Token Tok = Lex.lex();

  if (Tok.isIdent("true"))
    return wTrue();

  if (Tok.isPunct("(")) {
    Lex.unlex(Tok);
    expectPunct("(");
    WitnessPtr Inner = parseWitness();
    if (!Inner || !expectPunct(")"))
      return nullptr;
    return Inner;
  }

  if (Tok.isIdent("notPointedTo")) {
    if (!expectPunct("("))
      return nullptr;
    auto X = parseExprPatternUntil({")"});
    if (!X || !expectPunct(")"))
      return nullptr;
    const auto *V = std::get_if<Var>(&X->V);
    if (!V) {
      Diags.error(Tok.Loc, "notPointedTo takes a variable");
      return nullptr;
    }
    return wNotPointedTo(*V);
  }

  auto ParseSel = [&](const Token &T) -> std::optional<StateSel> {
    if (T.isIdent("eta"))
      return StateSel::WS_Cur;
    if (T.isIdent("eta_old"))
      return StateSel::WS_Old;
    if (T.isIdent("eta_new"))
      return StateSel::WS_New;
    return std::nullopt;
  };

  auto Sel = ParseSel(Tok);
  if (!Sel) {
    Diags.error(Tok.Loc, "expected a witness predicate, found '" +
                             std::string(Tok.Spelling) + "'");
    return nullptr;
  }

  // eta_old = eta_new (state equality).
  if (Lex.peek().isPunct("=")) {
    Lex.lex();
    Token Rhs = Lex.lex();
    if (ParseSel(Rhs) && *Sel == StateSel::WS_Old &&
        *ParseSel(Rhs) == StateSel::WS_New)
      return wStateEq();
    Diags.error(Rhs.Loc, "expected 'eta_new' after 'eta_old ='");
    return nullptr;
  }

  // eta_old/X = eta_new/X (equality up to X).
  if (Lex.peek().isPunct("/")) {
    Lex.lex();
    auto X1 = parseExprPatternUntil({"="});
    if (!X1 || !expectPunct("="))
      return nullptr;
    Token Rhs = Lex.lex();
    if (!ParseSel(Rhs)) {
      Diags.error(Rhs.Loc, "expected a state name after '='");
      return nullptr;
    }
    if (!expectPunct("/"))
      return nullptr;
    auto X2 = parseExprPatternUntil(
        {"&&", "||", ")", ";", "filtered"});
    if (!X2)
      return nullptr;
    const auto *V1 = std::get_if<Var>(&X1->V);
    const auto *V2 = std::get_if<Var>(&X2->V);
    if (!V1 || !V2 || !(*V1 == *V2)) {
      Diags.error(Tok.Loc,
                  "'up to' witnesses must name the same variable on both "
                  "sides");
      return nullptr;
    }
    return wEqUpTo(*V1);
  }

  // eta(e) = eta(e) (value equality).
  if (!expectPunct("("))
    return nullptr;
  auto E1 = parseExprPatternUntil({")"});
  if (!E1 || !expectPunct(")") || !expectPunct("="))
    return nullptr;
  Token Rhs = Lex.lex();
  auto Sel2 = ParseSel(Rhs);
  if (!Sel2) {
    Diags.error(Rhs.Loc, "expected a state name after '='");
    return nullptr;
  }
  if (!expectPunct("("))
    return nullptr;
  auto E2 = parseExprPatternUntil({")"});
  if (!E2 || !expectPunct(")"))
    return nullptr;
  return wEq(WTerm{*Sel, std::move(*E1)}, WTerm{*Sel2, std::move(*E2)});
}

//===----------------------------------------------------------------------===//
// Definitions.
//===----------------------------------------------------------------------===//

bool CobaltParser::parseLabelDef() {
  Token Name = Lex.lex();
  if (!Name.is(TokenKind::TK_Ident)) {
    Diags.error(Name.Loc, "expected label name");
    return false;
  }
  if (!expectPunct("("))
    return false;
  std::vector<std::string> Params;
  while (!Lex.peek().isPunct(")")) {
    Token P = Lex.lex();
    if (!P.is(TokenKind::TK_Ident)) {
      Diags.error(P.Loc, "expected parameter name");
      return false;
    }
    Params.emplace_back(P.Spelling);
    if (Lex.peek().isPunct(","))
      Lex.lex();
  }
  Lex.lex(); // ')'
  if (!expectPunct(":="))
    return false;
  FormulaPtr Body = parseFormula();
  if (!Body || !expectPunct(";"))
    return false;
  Module.Labels.push_back(
      makeLabelDef(std::string(Name.Spelling), std::move(Params),
                   std::move(Body)));
  return true;
}

bool CobaltParser::parseOptimization() {
  Token Name = Lex.lex();
  if (!Name.is(TokenKind::TK_Ident)) {
    Diags.error(Name.Loc, "expected optimization name");
    return false;
  }
  if (!expectPunct(":="))
    return false;

  Token Dir = Lex.lex();
  bool Forward = Dir.isIdent("forward");
  if (!Forward && !Dir.isIdent("backward")) {
    Diags.error(Dir.Loc, "expected 'forward' or 'backward'");
    return false;
  }

  Optimization O;
  O.Name = std::string(Name.Spelling);
  O.Pat.Dir = Forward ? Direction::D_Forward : Direction::D_Backward;

  O.Pat.G.Psi1 = parseFormula();
  if (!O.Pat.G.Psi1)
    return false;
  if (Forward) {
    if (!expectKeyword("followed") || !expectKeyword("by"))
      return false;
  } else {
    if (!expectKeyword("preceded") || !expectKeyword("by"))
      return false;
  }
  O.Pat.G.Psi2 = parseFormula();
  if (!O.Pat.G.Psi2)
    return false;

  if (!expectKeyword(Forward ? "until" : "since"))
    return false;
  auto From = parseStmtPatternUntil({"=>"});
  if (!From || !expectPunct("=>"))
    return false;
  auto To = parseStmtPatternUntil({"with"});
  if (!To)
    return false;
  O.Pat.From = std::move(*From);
  O.Pat.To = std::move(*To);

  if (!expectKeyword("with") || !expectKeyword("witness"))
    return false;
  O.Pat.W = parseWitness();
  if (!O.Pat.W || !expectPunct(";"))
    return false;

  O.Labels = Module.Labels; // labels defined so far are in scope
  if (auto Err = validateOptimization(O)) {
    Diags.error(Name.Loc, *Err);
    return false;
  }
  Module.Optimizations.push_back(std::move(O));
  return true;
}

bool CobaltParser::parseAnalysis() {
  Token Name = Lex.lex();
  if (!Name.is(TokenKind::TK_Ident)) {
    Diags.error(Name.Loc, "expected analysis name");
    return false;
  }
  if (!expectPunct(":="))
    return false;

  PureAnalysis A;
  A.Name = std::string(Name.Spelling);
  A.G.Psi1 = parseFormula();
  if (!A.G.Psi1)
    return false;
  if (!expectKeyword("followed") || !expectKeyword("by"))
    return false;
  A.G.Psi2 = parseFormula();
  if (!A.G.Psi2)
    return false;

  if (!expectKeyword("defines"))
    return false;
  Token LabelName = Lex.lex();
  if (!LabelName.is(TokenKind::TK_Ident)) {
    Diags.error(LabelName.Loc, "expected label name after 'defines'");
    return false;
  }
  A.LabelName = std::string(LabelName.Spelling);
  if (!expectPunct("("))
    return false;
  while (!Lex.peek().isPunct(")")) {
    auto E = parseExprPatternUntil({",", ")"});
    if (!E)
      return false;
    A.LabelArgs.push_back(Term(std::move(*E)));
    if (Lex.peek().isPunct(","))
      Lex.lex();
  }
  Lex.lex(); // ')'

  if (!expectKeyword("with") || !expectKeyword("witness"))
    return false;
  A.W = parseWitness();
  if (!A.W || !expectPunct(";"))
    return false;

  A.Labels = Module.Labels;
  if (auto Err = validateAnalysis(A)) {
    Diags.error(Name.Loc, *Err);
    return false;
  }
  Module.Analyses.push_back(std::move(A));
  return true;
}

std::optional<CobaltModule> CobaltParser::parseModule() {
  while (!Lex.peek().is(TokenKind::TK_End)) {
    Token Kw = Lex.lex();
    bool Ok = false;
    if (Kw.isIdent("label"))
      Ok = parseLabelDef();
    else if (Kw.isIdent("optimization"))
      Ok = parseOptimization();
    else if (Kw.isIdent("analysis"))
      Ok = parseAnalysis();
    else
      Diags.error(Kw.Loc, "expected 'label', 'optimization', or "
                          "'analysis', found '" +
                              std::string(Kw.Spelling) + "'");
    if (!Ok)
      return std::nullopt;
  }
  return std::move(Module);
}

} // namespace

std::optional<CobaltModule> cobalt::parseCobalt(std::string_view Text,
                                                DiagnosticEngine &Diags) {
  CobaltParser P(Text, Diags);
  return P.parseModule();
}

CobaltModule cobalt::parseCobaltOrDie(std::string_view Text) {
  DiagnosticEngine Diags;
  auto M = parseCobalt(Text, Diags);
  if (!M) {
    std::fprintf(stderr, "fatal: failed to parse Cobalt module:\n%s\n",
                 Diags.str().c_str());
    std::abort();
  }
  return std::move(*M);
}
