//===- Match.cpp ----------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Match.h"

using namespace cobalt;
using namespace cobalt::ir;

//===----------------------------------------------------------------------===//
// Matching. Each helper extends Theta on success; callers that try
// multiple alternatives pass a scratch copy.
//===----------------------------------------------------------------------===//

static bool matchVar(const Var &P, const Var &X, Substitution &Theta) {
  assert(!X.IsMeta && "matching against a non-ground fragment");
  if (!P.IsMeta)
    return P.Name == X.Name;
  if (P.isWildcard())
    return true;
  return Theta.bind(P.Name, Binding::var(X.Name));
}

static bool matchProc(const ProcName &P, const ProcName &Q,
                      Substitution &Theta) {
  assert(!Q.IsMeta && "matching against a non-ground fragment");
  if (!P.IsMeta)
    return P.Name == Q.Name;
  if (P.isWildcard())
    return true;
  return Theta.bind(P.Name, Binding::proc(Q.Name));
}

static bool matchConst(const ConstVal &P, const ConstVal &C,
                       Substitution &Theta) {
  assert(!C.IsMeta && "matching against a non-ground fragment");
  if (!P.IsMeta)
    return P.Value == C.Value;
  if (P.isWildcard())
    return true;
  return Theta.bind(P.MetaName, Binding::constant(C.Value));
}

static bool matchIndex(const Index &P, const Index &I, Substitution &Theta) {
  assert(!I.IsMeta && "matching against a non-ground fragment");
  if (!P.IsMeta)
    return P.Value == I.Value;
  if (P.isWildcard())
    return true;
  return Theta.bind(P.MetaName, Binding::index(I.Value));
}

static bool matchBase(const BaseExpr &P, const BaseExpr &B,
                      Substitution &Theta) {
  if (isVar(P)) {
    // A Vars pattern matches only variables; a concrete var likewise.
    // Exception: a *wildcard* in base position matches constants too.
    if (asVar(P).isWildcard())
      return true;
    return isVar(B) && matchVar(asVar(P), asVar(B), Theta);
  }
  return isConst(B) && matchConst(asConst(P), asConst(B), Theta);
}

bool cobalt::matchExpr(const Expr &P, const Expr &E, Substitution &Theta) {
  Substitution Scratch = Theta;

  // An Exprs pattern variable matches any whole expression.
  if (const auto *M = std::get_if<MetaExpr>(&P.V)) {
    if (M->isWildcard())
      return true;
    if (!Scratch.bind(M->Name, Binding::expr(E)))
      return false;
    Theta = std::move(Scratch);
    return true;
  }

  bool Ok = false;
  if (const auto *PX = std::get_if<Var>(&P.V)) {
    const auto *EX = std::get_if<Var>(&E.V);
    Ok = EX && matchVar(*PX, *EX, Scratch);
  } else if (const auto *PC = std::get_if<ConstVal>(&P.V)) {
    const auto *EC = std::get_if<ConstVal>(&E.V);
    Ok = EC && matchConst(*PC, *EC, Scratch);
  } else if (const auto *PD = std::get_if<DerefExpr>(&P.V)) {
    const auto *ED = std::get_if<DerefExpr>(&E.V);
    Ok = ED && matchVar(PD->Ptr, ED->Ptr, Scratch);
  } else if (const auto *PA = std::get_if<AddrOfExpr>(&P.V)) {
    const auto *EA = std::get_if<AddrOfExpr>(&E.V);
    Ok = EA && matchVar(PA->Target, EA->Target, Scratch);
  } else if (const auto *PO = std::get_if<OpExpr>(&P.V)) {
    // An operator spelling of "_" is the operator wildcard: it matches any
    // operator of the same arity (used by label definitions that case over
    // expression shapes, e.g. unchanged(E)).
    const auto *EO = std::get_if<OpExpr>(&E.V);
    Ok = EO && (PO->Op == "_" || PO->Op == EO->Op) &&
         PO->Args.size() == EO->Args.size();
    for (size_t I = 0; Ok && I < PO->Args.size(); ++I)
      Ok = matchBase(PO->Args[I], EO->Args[I], Scratch);
  }

  if (!Ok)
    return false;
  Theta = std::move(Scratch);
  return true;
}

static bool matchLhs(const Lhs &P, const Lhs &L, Substitution &Theta) {
  if (const auto *PX = std::get_if<Var>(&P)) {
    // A wildcard in lhs position is the paper's "… := e": it matches
    // either lhs alternative (x or *x). A *named* Vars pattern matches
    // only the variable alternative. Getting this wrong is a genuine
    // soundness trap: the taint analysis's ¬stmt(… := &X) must also
    // reject `*p := &x`, which stores x's address through a pointer.
    if (PX->isWildcard())
      return true;
    const auto *LX = std::get_if<Var>(&L);
    return LX && matchVar(*PX, *LX, Theta);
  }
  const auto *LD = std::get_if<DerefExpr>(&L);
  return LD && matchVar(std::get<DerefExpr>(P).Ptr, LD->Ptr, Theta);
}

bool cobalt::matchStmt(const Stmt &P, const Stmt &S, Substitution &Theta) {
  Substitution Scratch = Theta;
  bool Ok = false;

  if (const auto *PD = std::get_if<DeclStmt>(&P.V)) {
    const auto *SD = std::get_if<DeclStmt>(&S.V);
    Ok = SD && matchVar(PD->Name, SD->Name, Scratch);
  } else if (P.is<SkipStmt>()) {
    Ok = S.is<SkipStmt>();
  } else if (const auto *PA = std::get_if<AssignStmt>(&P.V)) {
    const auto *SA = std::get_if<AssignStmt>(&S.V);
    Ok = SA && matchLhs(PA->Target, SA->Target, Scratch) &&
         matchExpr(PA->Value, SA->Value, Scratch);
  } else if (const auto *PN = std::get_if<NewStmt>(&P.V)) {
    const auto *SN = std::get_if<NewStmt>(&S.V);
    Ok = SN && matchVar(PN->Target, SN->Target, Scratch);
  } else if (const auto *PC = std::get_if<CallStmt>(&P.V)) {
    const auto *SC = std::get_if<CallStmt>(&S.V);
    Ok = SC && matchVar(PC->Target, SC->Target, Scratch) &&
         matchProc(PC->Callee, SC->Callee, Scratch) &&
         matchBase(PC->Arg, SC->Arg, Scratch);
  } else if (const auto *PB = std::get_if<BranchStmt>(&P.V)) {
    const auto *SB = std::get_if<BranchStmt>(&S.V);
    Ok = SB && matchBase(PB->Cond, SB->Cond, Scratch) &&
         matchIndex(PB->Then, SB->Then, Scratch) &&
         matchIndex(PB->Else, SB->Else, Scratch);
  } else if (const auto *PR = std::get_if<ReturnStmt>(&P.V)) {
    const auto *SR = std::get_if<ReturnStmt>(&S.V);
    Ok = SR && matchVar(PR->Value, SR->Value, Scratch);
  }

  if (!Ok)
    return false;
  Theta = std::move(Scratch);
  return true;
}

//===----------------------------------------------------------------------===//
// Instantiation.
//===----------------------------------------------------------------------===//

static std::optional<Var> substVar(const Var &P, const Substitution &Theta) {
  if (!P.IsMeta)
    return P;
  if (P.isWildcard())
    return std::nullopt;
  const Binding *B = Theta.lookup(P.Name);
  if (!B || !B->isVar())
    return std::nullopt;
  return Var::concrete(B->asVar());
}

static std::optional<ProcName> substProc(const ProcName &P,
                                         const Substitution &Theta) {
  if (!P.IsMeta)
    return P;
  if (P.isWildcard())
    return std::nullopt;
  const Binding *B = Theta.lookup(P.Name);
  if (!B || !B->isProc())
    return std::nullopt;
  return ProcName::concrete(B->asProc());
}

static std::optional<ConstVal> substConst(const ConstVal &P,
                                          const Substitution &Theta) {
  if (!P.IsMeta)
    return P;
  if (P.isWildcard())
    return std::nullopt;
  const Binding *B = Theta.lookup(P.MetaName);
  if (!B || !B->isConst())
    return std::nullopt;
  return ConstVal::concrete(B->asConst());
}

static std::optional<Index> substIndex(const Index &P,
                                       const Substitution &Theta) {
  if (!P.IsMeta)
    return P;
  if (P.isWildcard())
    return std::nullopt;
  const Binding *B = Theta.lookup(P.MetaName);
  if (!B || !B->isIndex())
    return std::nullopt;
  return Index::concrete(B->asIndex());
}

static std::optional<BaseExpr> substBase(const BaseExpr &P,
                                         const Substitution &Theta) {
  if (isVar(P)) {
    // A Vars pattern in base position may also be bound to a constant
    // (e.g. after constant folding binds the result), so consult the
    // binding kind rather than the pattern kind.
    const Var &X = asVar(P);
    if (!X.IsMeta)
      return BaseExpr(X);
    if (X.isWildcard())
      return std::nullopt;
    const Binding *B = Theta.lookup(X.Name);
    if (!B)
      return std::nullopt;
    if (B->isVar())
      return BaseExpr(Var::concrete(B->asVar()));
    if (B->isConst())
      return BaseExpr(ConstVal::concrete(B->asConst()));
    return std::nullopt;
  }
  auto C = substConst(asConst(P), Theta);
  if (!C)
    return std::nullopt;
  return BaseExpr(*C);
}

std::optional<Expr> cobalt::applySubstExpr(const Expr &P,
                                           const Substitution &Theta) {
  if (const auto *M = std::get_if<MetaExpr>(&P.V)) {
    if (M->isWildcard())
      return std::nullopt;
    const Binding *B = Theta.lookup(M->Name);
    if (!B)
      return std::nullopt;
    if (B->isExpr())
      return B->asExpr();
    if (B->isVar())
      return Expr(Var::concrete(B->asVar()));
    if (B->isConst())
      return Expr(ConstVal::concrete(B->asConst()));
    return std::nullopt;
  }
  if (const auto *X = std::get_if<Var>(&P.V)) {
    auto R = substBase(BaseExpr(*X), Theta);
    if (!R)
      return std::nullopt;
    return Expr(*R);
  }
  if (const auto *C = std::get_if<ConstVal>(&P.V)) {
    auto R = substConst(*C, Theta);
    if (!R)
      return std::nullopt;
    return Expr(*R);
  }
  if (const auto *D = std::get_if<DerefExpr>(&P.V)) {
    auto X = substVar(D->Ptr, Theta);
    if (!X)
      return std::nullopt;
    return Expr(DerefExpr{*X});
  }
  if (const auto *A = std::get_if<AddrOfExpr>(&P.V)) {
    auto X = substVar(A->Target, Theta);
    if (!X)
      return std::nullopt;
    return Expr(AddrOfExpr{*X});
  }
  const auto &O = std::get<OpExpr>(P.V);
  if (O.Op == "_")
    return std::nullopt; // operator wildcards cannot be instantiated
  OpExpr Out{O.Op, {}};
  Out.Args.reserve(O.Args.size());
  for (const BaseExpr &B : O.Args) {
    auto R = substBase(B, Theta);
    if (!R)
      return std::nullopt;
    Out.Args.push_back(*R);
  }
  return Expr(std::move(Out));
}

static std::optional<Lhs> substLhs(const Lhs &P, const Substitution &Theta) {
  if (const auto *X = std::get_if<Var>(&P)) {
    auto R = substVar(*X, Theta);
    if (!R)
      return std::nullopt;
    return Lhs(*R);
  }
  auto R = substVar(std::get<DerefExpr>(P).Ptr, Theta);
  if (!R)
    return std::nullopt;
  return Lhs(DerefExpr{*R});
}

std::optional<Stmt> cobalt::applySubst(const Stmt &P,
                                       const Substitution &Theta) {
  if (const auto *D = std::get_if<DeclStmt>(&P.V)) {
    auto X = substVar(D->Name, Theta);
    if (!X)
      return std::nullopt;
    return Stmt(DeclStmt{*X});
  }
  if (P.is<SkipStmt>())
    return Stmt(SkipStmt{});
  if (const auto *A = std::get_if<AssignStmt>(&P.V)) {
    auto L = substLhs(A->Target, Theta);
    auto E = applySubstExpr(A->Value, Theta);
    if (!L || !E)
      return std::nullopt;
    return Stmt(AssignStmt{*L, *E});
  }
  if (const auto *N = std::get_if<NewStmt>(&P.V)) {
    auto X = substVar(N->Target, Theta);
    if (!X)
      return std::nullopt;
    return Stmt(NewStmt{*X});
  }
  if (const auto *C = std::get_if<CallStmt>(&P.V)) {
    auto X = substVar(C->Target, Theta);
    auto Q = substProc(C->Callee, Theta);
    auto B = substBase(C->Arg, Theta);
    if (!X || !Q || !B)
      return std::nullopt;
    return Stmt(CallStmt{*X, *Q, *B});
  }
  if (const auto *Br = std::get_if<BranchStmt>(&P.V)) {
    auto B = substBase(Br->Cond, Theta);
    auto T = substIndex(Br->Then, Theta);
    auto E = substIndex(Br->Else, Theta);
    if (!B || !T || !E)
      return std::nullopt;
    return Stmt(BranchStmt{*B, *T, *E});
  }
  const auto &R = std::get<ReturnStmt>(P.V);
  auto X = substVar(R.Value, Theta);
  if (!X)
    return std::nullopt;
  return Stmt(ReturnStmt{*X});
}
