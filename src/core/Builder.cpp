//===- Builder.cpp --------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Builder.h"

#include "ir/Parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace cobalt;
using namespace cobalt::ir;

Term cobalt::tCurrStmt() { return Term(CurrStmtTerm{}); }

Term cobalt::tExpr(std::string_view Pattern) {
  return Term(parseExprPatternOrDie(Pattern));
}

Term cobalt::tStmt(std::string_view Pattern) {
  return Term(parseStmtPatternOrDie(Pattern));
}

FormulaPtr cobalt::stmtIs(std::string_view Pattern) {
  return fLabel("stmt", {tStmt(Pattern)});
}

FormulaPtr cobalt::labelF(std::string Name, std::vector<Term> Args) {
  return fLabel(std::move(Name), std::move(Args));
}

CaseBuilder &CaseBuilder::stmtArm(std::string_view Pattern, FormulaPtr Body) {
  Arms.push_back({tStmt(Pattern), std::move(Body)});
  return *this;
}

CaseBuilder &CaseBuilder::exprArm(std::string_view Pattern, FormulaPtr Body) {
  Arms.push_back({tExpr(Pattern), std::move(Body)});
  return *this;
}

CaseBuilder &CaseBuilder::termArm(Term Pattern, FormulaPtr Body) {
  Arms.push_back({std::move(Pattern), std::move(Body)});
  return *this;
}

FormulaPtr CaseBuilder::elseArm(FormulaPtr Body) {
  return fCase(std::move(Scrutinee), std::move(Arms), std::move(Body));
}

/// Infers a parameter's kind from its spelling, mirroring the parser's
/// pattern-mode convention.
static MetaKind kindFromSpelling(const std::string &Name) {
  if (Name.empty() || !std::isupper(static_cast<unsigned char>(Name[0])))
    return MetaKind::MK_Var;
  auto AllDigits = [&](size_t From) {
    for (size_t I = From; I < Name.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(Name[I])))
        return false;
    return true;
  };
  if (Name[0] == 'C' && AllDigits(1))
    return MetaKind::MK_Const;
  if (Name[0] == 'E' && AllDigits(1))
    return MetaKind::MK_Expr;
  return MetaKind::MK_Var;
}

LabelDef cobalt::makeLabelDef(std::string Name,
                              std::vector<std::string> Params,
                              FormulaPtr Body) {
  LabelDef Def;
  Def.Name = std::move(Name);
  for (std::string &P : Params) {
    MetaKind K = kindFromSpelling(P);
    Def.Params.emplace_back(std::move(P), K);
  }
  Def.Body = std::move(Body);
  return Def;
}

WTerm cobalt::curEval(std::string_view Pattern) {
  return {StateSel::WS_Cur, parseExprPatternOrDie(Pattern)};
}

WTerm cobalt::oldEval(std::string_view Pattern) {
  return {StateSel::WS_Old, parseExprPatternOrDie(Pattern)};
}

WTerm cobalt::newEval(std::string_view Pattern) {
  return {StateSel::WS_New, parseExprPatternOrDie(Pattern)};
}

WitnessPtr cobalt::eqUpTo(std::string_view MetaVarName) {
  return wEqUpTo(Var::meta(std::string(MetaVarName)));
}

WitnessPtr cobalt::notPointedToW(std::string_view MetaVarName) {
  return wNotPointedTo(Var::meta(std::string(MetaVarName)));
}

OptBuilder &OptBuilder::rewrite(std::string_view From, std::string_view To) {
  O.Pat.From = parseStmtPatternOrDie(From);
  O.Pat.To = parseStmtPatternOrDie(To);
  return *this;
}

Optimization OptBuilder::build() {
  if (auto Err = validateOptimization(O)) {
    std::fprintf(stderr, "fatal: malformed optimization: %s\n",
                 Err->c_str());
    std::abort();
  }
  return std::move(O);
}

PureAnalysis AnalysisBuilder::build() {
  if (auto Err = validateAnalysis(A)) {
    std::fprintf(stderr, "fatal: malformed analysis: %s\n", Err->c_str());
    std::abort();
  }
  return std::move(A);
}
