//===- Formula.h - The Cobalt guard/label formula language ------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The formula language ψ of paper §3.2.2:
///
/// \code
///   ψ ::= true | false | ¬ψ | ψ ∨ ψ | ψ ∧ ψ
///       | l(t,…,t) | t = t
///       | case t of t ↦ ψ ⋯ t ↦ ψ else ↦ ψ endcase
/// \endcode
///
/// where t ranges over extended-IL fragments and the distinguished term
/// currStmt. Formulas are evaluated at CFG nodes under a substitution θ
/// (the relation ι ⊨θ ψ). Two evaluation modes are provided:
///
/// * evalFormula — complete check: every named pattern variable free in ψ
///   must be bound by θ (case arms may bind fresh arm-local variables).
/// * satisfyFormula — generative: enumerates the extensions of θ that make
///   ψ hold at the node. stmt(S) literals and analysis labels match
///   structurally; residual unbound variables are enumerated over the
///   procedure's fragment universe (pattern variables range over
///   "variables of the procedure being optimized" etc., paper Example 1).
///
/// Labels come in three flavours:
/// * builtin: stmt(S) (statement match) and computes(E, C) (E is a
///   constant-operand operator expression whose value is C — the hook
///   that lets constant folding be written as a rewrite rule);
/// * user predicate labels, defined by a formula over currStmt
///   (paper §2.1.3), e.g. mayDef / mayUse / unchanged;
/// * analysis labels, added to nodes by pure analyses (§2.4); their
///   ground instances live in a Labeling.
///
/// Case arms match in order; the first matching arm's body decides, and
/// arm patterns may bind fresh arm-local pattern variables (the paper's
/// "pattern variables and ellipses get desugared into ordinary quantified
/// variables").
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CORE_FORMULA_H
#define COBALT_CORE_FORMULA_H

#include "core/Substitution.h"
#include "ir/Ast.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

namespace cobalt {

//===----------------------------------------------------------------------===//
// Terms.
//===----------------------------------------------------------------------===//

/// The distinguished term currStmt.
struct CurrStmtTerm {
  friend bool operator==(const CurrStmtTerm &, const CurrStmtTerm &) {
    return true;
  }
};

/// t ::= currStmt | extended-IL expression | extended-IL statement.
using Term = std::variant<CurrStmtTerm, ir::Expr, ir::Stmt>;

/// Renders a term for diagnostics.
std::string toString(const Term &T);

/// The kind of fragment a pattern variable stands for.
enum class MetaKind { MK_Var, MK_Const, MK_Expr, MK_Proc, MK_Index };

/// Collects (name, kind) pairs for named pattern variables, first
/// occurrence order, no duplicates.
void collectMetaKinds(const ir::Expr &E,
                      std::vector<std::pair<std::string, MetaKind>> &Out);
void collectMetaKinds(const ir::Stmt &S,
                      std::vector<std::pair<std::string, MetaKind>> &Out);
void collectMetaKinds(const Term &T,
                      std::vector<std::pair<std::string, MetaKind>> &Out);

//===----------------------------------------------------------------------===//
// Formulas.
//===----------------------------------------------------------------------===//

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// One arm of a case: `pattern ↦ body`.
struct CaseArm {
  Term Pattern;
  FormulaPtr Body;
};

struct Formula {
  enum class Kind {
    FK_True,
    FK_False,
    FK_Not,
    FK_And,
    FK_Or,
    FK_Label,
    FK_Eq,
    FK_Case
  };
  Kind K;

  std::vector<FormulaPtr> Kids; ///< Not: 1 child; And/Or: 2+ children.

  std::string LabelName;  ///< FK_Label.
  std::vector<Term> Args; ///< FK_Label.

  Term LhsT, RhsT; ///< FK_Eq. FK_Case: LhsT is the scrutinee.

  std::vector<CaseArm> Arms; ///< FK_Case.
  FormulaPtr ElseBody;       ///< FK_Case.

  std::string str() const;
};

/// Constructors (value-style; formulas are immutable once built).
FormulaPtr fTrue();
FormulaPtr fFalse();
FormulaPtr fNot(FormulaPtr F);
FormulaPtr fAnd(FormulaPtr A, FormulaPtr B);
FormulaPtr fOr(FormulaPtr A, FormulaPtr B);
FormulaPtr fLabel(std::string Name, std::vector<Term> Args = {});
FormulaPtr fEq(Term A, Term B);
FormulaPtr fCase(Term Scrutinee, std::vector<CaseArm> Arms,
                 FormulaPtr ElseBody);

/// Collects the named pattern variables free in ψ (arm-local variables of
/// case patterns are *not* free).
void collectFreeMetas(const Formula &F,
                      std::vector<std::pair<std::string, MetaKind>> &Out);

//===----------------------------------------------------------------------===//
// Labels.
//===----------------------------------------------------------------------===//

/// A ground (fully instantiated) label instance attached to a CFG node,
/// e.g. notTainted(a). Ordered so label sets are deterministic.
struct GroundLabel {
  std::string Name;
  std::vector<Binding> Args;

  std::string str() const;
  friend bool operator==(const GroundLabel &, const GroundLabel &) = default;
  friend auto operator<=>(const GroundLabel &A, const GroundLabel &B) {
    if (auto C = A.Name <=> B.Name; C != 0)
      return C;
    return A.Args <=> B.Args;
  }
};

/// The labeling L_p: per-node sets of ground labels produced by pure
/// analyses (§2.4, §3.2.3).
using Labeling = std::vector<std::set<GroundLabel>>;

/// A user predicate label definition (§2.1.3): a named formula over
/// currStmt with typed parameters.
struct LabelDef {
  std::string Name;
  std::vector<std::pair<std::string, MetaKind>> Params;
  FormulaPtr Body;
};

/// Resolves label names during evaluation. Builtins (stmt, computes) are
/// always present; user predicate labels are registered by name; any other
/// name is treated as an analysis label and looked up in the Labeling.
class LabelRegistry {
public:
  /// Registers a predicate label. Returns false if the name collides with
  /// a builtin or an existing definition.
  bool define(LabelDef Def);

  /// Declares a name as an analysis label (produced by a pure analysis).
  void declareAnalysisLabel(const std::string &Name);

  const LabelDef *findPredicate(const std::string &Name) const;
  bool isAnalysisLabel(const std::string &Name) const;
  static bool isBuiltin(const std::string &Name);

  /// All registered predicate definitions, in registration order (the
  /// checker translates these to axioms).
  const std::vector<LabelDef> &predicates() const { return Defs; }

private:
  std::vector<LabelDef> Defs;
  std::set<std::string> AnalysisLabels;
};

//===----------------------------------------------------------------------===//
// Evaluation.
//===----------------------------------------------------------------------===//

/// The fragment universe of a procedure: what pattern variables range
/// over when a formula does not determine them structurally.
struct Universe {
  std::vector<std::string> Vars;
  std::vector<int64_t> Consts;
  std::vector<ir::Expr> Exprs;
  std::vector<std::string> Procs;
  std::vector<int> Indices;
};

/// Builds the universe of fragments occurring in \p P.
Universe buildUniverse(const ir::Procedure &P);

/// Everything needed to decide ι ⊨θ ψ at one node.
struct NodeContext {
  const ir::Procedure *Proc = nullptr;
  int Index = 0;
  const LabelRegistry *Registry = nullptr;
  const Labeling *AnalysisLabeling = nullptr; ///< May be null (no analyses).
  const Universe *Univ = nullptr;

  const ir::Stmt &stmt() const { return Proc->stmtAt(Index); }
};

/// Complete check of ι ⊨θ ψ. Returns nullopt if ψ contains a named
/// pattern variable that θ leaves unbound (a mis-specified optimization;
/// callers surface this as an error rather than guessing).
std::optional<bool> evalFormula(const Formula &F, const NodeContext &Ctx,
                                const Substitution &Theta);

/// Generative satisfaction: all extensions of \p Theta binding exactly the
/// free variables of ψ (beyond those already bound) such that ι ⊨θ' ψ.
std::vector<Substitution> satisfyFormula(const Formula &F,
                                         const NodeContext &Ctx,
                                         const Substitution &Theta);

/// Evaluates a term under θ to a ground fragment. CurrStmt yields the
/// node's statement. Returns nullopt on unbound variables or wildcards.
std::optional<Term> evalTerm(const Term &T, const NodeContext &Ctx,
                             const Substitution &Theta);

/// Evaluates a label argument term to a Binding (var names and constants
/// become Var/Const bindings; other expressions become Expr bindings).
/// Statements are not valid label arguments.
std::optional<Binding> termToBinding(const Term &T, const NodeContext &Ctx,
                                     const Substitution &Theta);

} // namespace cobalt

#endif // COBALT_CORE_FORMULA_H
