//===- CobaltParser.h - Textual front-end for the Cobalt DSL ----*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete syntax for Cobalt definitions, so optimizations can live in
/// .cob files instead of C++ builder calls (profitability heuristics stay
/// in C++, as the paper keeps them in "a language of the user's choice").
/// The syntax follows the paper's notation:
///
/// \code
///   label syntacticDef(X) :=
///     case currStmt of
///       decl X => true
///     | X := E9 => true
///     | X := new => true
///     else => false
///     endcase;
///
///   optimization const_prop :=
///     forward
///     stmt(Y := C)
///     followed by !mayDef(Y)
///     until X := Y  =>  X := C
///     with witness eta(Y) = eta(C);
///
///   optimization dead_assign_elim :=
///     backward
///     (stmt(X := ...) || stmt(X := new) || stmt(return ...)) && !mayUse(X)
///     preceded by !mayUse(X) && !stmt(decl X)
///     since X := E  =>  skip
///     with witness eta_old/X = eta_new/X;
///
///   analysis taint_analysis :=
///     stmt(decl X)
///     followed by !stmt(_ := &X)
///     defines notTainted(X)
///     with witness notPointedTo(X);
/// \endcode
///
/// Formula grammar: `true`, `false`, `!ψ`, `ψ && ψ`, `ψ || ψ`, `(ψ)`,
/// `name(arg, ...)` (label; `stmt(...)` takes a statement pattern,
/// everything else expression patterns), `t = t` (term equality),
/// `case <term> of p => ψ | ... else => ψ endcase`. Witness grammar:
/// `true`, `!w`, `w && w`, `w || w`, `eta(e) = eta(e)` (also eta_old/
/// eta_new), `eta_old/X = eta_new/X`, `eta_old = eta_new`,
/// `notPointedTo(X)`.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CORE_COBALTPARSER_H
#define COBALT_CORE_COBALTPARSER_H

#include "core/Optimization.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string_view>
#include <vector>

namespace cobalt {

/// Everything defined by one Cobalt source buffer.
struct CobaltModule {
  std::vector<LabelDef> Labels;
  std::vector<Optimization> Optimizations;
  std::vector<PureAnalysis> Analyses;
};

/// Parses a Cobalt source buffer. Definitions may reference labels
/// defined earlier in the same buffer (they are attached to each
/// optimization/analysis that follows them). Optimizations get the
/// default choose-all profitability heuristic; attach custom heuristics
/// afterwards by name. Returns nullopt and reports via \p Diags on error.
std::optional<CobaltModule> parseCobalt(std::string_view Text,
                                        DiagnosticEngine &Diags);

/// Aborts on parse failure; for trusted literals in tests and examples.
CobaltModule parseCobaltOrDie(std::string_view Text);

} // namespace cobalt

#endif // COBALT_CORE_COBALTPARSER_H
