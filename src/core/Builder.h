//===- Builder.h - Ergonomic construction of Cobalt definitions -*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small embedded-DSL surface for writing Cobalt optimizations in C++.
/// Pattern fragments are written as strings in the paper's concrete
/// syntax and parsed in pattern mode (upper-case-initial identifiers are
/// pattern variables; see ir/Parser.h). Example — the paper's Example 1:
///
/// \code
///   Optimization ConstProp =
///       OptBuilder("const_prop")
///           .forward()
///           .psi1(stmtIs("Y := C"))
///           .psi2(fNot(labelF("mayDef", {tExpr("Y")})))
///           .rewrite("X := Y", "X := C")
///           .witness(wEq(curEval("Y"), curEval("C")))
///           .withLabel(MayDefDef)
///           .build();
/// \endcode
///
/// build() aborts on a malformed definition: optimization definitions are
/// code, so structural errors are programmer errors.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CORE_BUILDER_H
#define COBALT_CORE_BUILDER_H

#include "core/Optimization.h"

#include <string>
#include <string_view>
#include <vector>

namespace cobalt {

//===----------------------------------------------------------------------===//
// Term and formula helpers.
//===----------------------------------------------------------------------===//

/// The distinguished currStmt term.
Term tCurrStmt();

/// Parses an expression-pattern term ("Y", "C", "E", "*P", "X + Y", ...).
Term tExpr(std::string_view Pattern);

/// Parses a statement-pattern term ("Y := C", "decl X", "return ...").
Term tStmt(std::string_view Pattern);

/// stmt(S) for a statement pattern.
FormulaPtr stmtIs(std::string_view Pattern);

/// A label literal l(t, ..., t).
FormulaPtr labelF(std::string Name, std::vector<Term> Args = {});

/// Builds a case formula over a term, arms added in order.
class CaseBuilder {
public:
  explicit CaseBuilder(Term Scrutinee) : Scrutinee(std::move(Scrutinee)) {}

  /// Adds an arm whose pattern is a statement pattern.
  CaseBuilder &stmtArm(std::string_view Pattern, FormulaPtr Body);
  /// Adds an arm whose pattern is an expression pattern.
  CaseBuilder &exprArm(std::string_view Pattern, FormulaPtr Body);
  /// Adds an arm with a programmatically-built pattern (shapes without a
  /// surface syntax, e.g. unary operator applications).
  CaseBuilder &termArm(Term Pattern, FormulaPtr Body);

  /// Finishes with the else arm.
  FormulaPtr elseArm(FormulaPtr Body);

private:
  Term Scrutinee;
  std::vector<CaseArm> Arms;
};

/// Builds a predicate label definition. Parameter kinds follow the
/// pattern-variable spelling convention (C* = Consts, E* = Exprs,
/// otherwise Vars) unless given explicitly.
LabelDef makeLabelDef(std::string Name, std::vector<std::string> Params,
                      FormulaPtr Body);

//===----------------------------------------------------------------------===//
// Witness helpers.
//===----------------------------------------------------------------------===//

/// eval of an expression pattern in the forward witness state η.
WTerm curEval(std::string_view Pattern);
/// eval in η_old / η_new (backward witnesses).
WTerm oldEval(std::string_view Pattern);
WTerm newEval(std::string_view Pattern);

/// η_old/X = η_new/X for a pattern variable name.
WitnessPtr eqUpTo(std::string_view MetaVarName);

/// notPointedTo(X, η).
WitnessPtr notPointedToW(std::string_view MetaVarName);

//===----------------------------------------------------------------------===//
// Optimization and analysis builders.
//===----------------------------------------------------------------------===//

class OptBuilder {
public:
  explicit OptBuilder(std::string Name) { O.Name = std::move(Name); }

  OptBuilder &forward() {
    O.Pat.Dir = Direction::D_Forward;
    return *this;
  }
  OptBuilder &backward() {
    O.Pat.Dir = Direction::D_Backward;
    return *this;
  }
  OptBuilder &psi1(FormulaPtr F) {
    O.Pat.G.Psi1 = std::move(F);
    return *this;
  }
  OptBuilder &psi2(FormulaPtr F) {
    O.Pat.G.Psi2 = std::move(F);
    return *this;
  }
  /// Parses s and s' from pattern strings.
  OptBuilder &rewrite(std::string_view From, std::string_view To);
  OptBuilder &witness(WitnessPtr W) {
    O.Pat.W = std::move(W);
    return *this;
  }
  OptBuilder &choose(ChooseFn Fn) {
    O.Choose = std::move(Fn);
    return *this;
  }
  OptBuilder &withLabel(LabelDef Def) {
    O.Labels.push_back(std::move(Def));
    return *this;
  }

  /// Validates and returns the optimization; aborts with the validation
  /// message on malformed definitions.
  Optimization build();

private:
  Optimization O;
};

class AnalysisBuilder {
public:
  explicit AnalysisBuilder(std::string Name) { A.Name = std::move(Name); }

  AnalysisBuilder &psi1(FormulaPtr F) {
    A.G.Psi1 = std::move(F);
    return *this;
  }
  AnalysisBuilder &psi2(FormulaPtr F) {
    A.G.Psi2 = std::move(F);
    return *this;
  }
  AnalysisBuilder &defines(std::string LabelName, std::vector<Term> Args) {
    A.LabelName = std::move(LabelName);
    A.LabelArgs = std::move(Args);
    return *this;
  }
  AnalysisBuilder &witness(WitnessPtr W) {
    A.W = std::move(W);
    return *this;
  }
  AnalysisBuilder &withLabel(LabelDef Def) {
    A.Labels.push_back(std::move(Def));
    return *this;
  }

  PureAnalysis build();

private:
  PureAnalysis A;
};

} // namespace cobalt

#endif // COBALT_CORE_BUILDER_H
