//===- Match.h - Structural matching and instantiation ----------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two halves of pattern-variable semantics (paper §3.2.1):
///
/// * matchStmt/matchExpr: match an extended-IL fragment against a ground
///   fragment, extending a partial substitution. Already-bound pattern
///   variables act as constants (nonlinear patterns work), wildcards match
///   anything and bind nothing.
/// * applySubst: instantiate an extended-IL fragment under a substitution,
///   yielding a ground fragment. Fails (nullopt) if any named pattern
///   variable is unbound or bound to a fragment of the wrong kind, or if
///   the pattern contains wildcards (a rewrite-rule RHS must be fully
///   determined).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CORE_MATCH_H
#define COBALT_CORE_MATCH_H

#include "core/Substitution.h"
#include "ir/Ast.h"

#include <optional>

namespace cobalt {

/// Matches pattern \p P against ground statement \p S, extending \p Theta.
/// On failure Theta is left unchanged.
bool matchStmt(const ir::Stmt &P, const ir::Stmt &S, Substitution &Theta);

/// Matches pattern \p P against ground expression \p E, extending \p Theta.
bool matchExpr(const ir::Expr &P, const ir::Expr &E, Substitution &Theta);

/// Instantiates a statement pattern. Requires every named pattern variable
/// bound (to the right kind) and no wildcards.
std::optional<ir::Stmt> applySubst(const ir::Stmt &P,
                                   const Substitution &Theta);

/// Instantiates an expression pattern under the same rules.
std::optional<ir::Expr> applySubstExpr(const ir::Expr &P,
                                       const Substitution &Theta);

} // namespace cobalt

#endif // COBALT_CORE_MATCH_H
