//===- Optimization.h - Transformation patterns and optimizations -*- C++ -*-=//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level Cobalt constructs (paper §2, §3.2.3):
///
/// * a forward transformation pattern
///     ψ1 followed by ψ2 until s ⇒ s' with witness P
/// * a backward transformation pattern
///     ψ1 preceded by ψ2 since s ⇒ s' with witness P
/// * an optimization:  O_pat filtered through choose
/// * a pure analysis:  ψ1 followed by ψ2 defines label with witness P
///
/// Profitability heuristics (`choose`) are arbitrary code — here,
/// std::function over the legal-transformation set Δ (the paper lets them
/// be "written in a language of the user's choice"; they never affect
/// soundness, §2.3/§4).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CORE_OPTIMIZATION_H
#define COBALT_CORE_OPTIMIZATION_H

#include "core/Formula.h"
#include "core/Witness.h"
#include "ir/Ast.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace cobalt {

enum class Direction { D_Forward, D_Backward };

/// ψ1 followed by / preceded by ψ2.
struct Guard {
  FormulaPtr Psi1;
  FormulaPtr Psi2;
};

/// One element of Δ: the node to transform and the substitution that
/// matched (paper Definition 1/2).
struct MatchSite {
  int Index;
  Substitution Theta;

  friend bool operator==(const MatchSite &, const MatchSite &) = default;
  friend auto operator<=>(const MatchSite &A, const MatchSite &B) {
    if (auto C = A.Index <=> B.Index; C != 0)
      return C;
    return A.Theta <=> B.Theta;
  }
};

/// The guard + rewrite rule + witness of an optimization — everything
/// that matters for soundness.
struct TransformationPattern {
  Direction Dir = Direction::D_Forward;
  Guard G;
  ir::Stmt From; ///< s.
  ir::Stmt To;   ///< s'.
  WitnessPtr W;
};

/// choose(Δ, p) — selects the subset of legal transformations to perform.
using ChooseFn = std::function<std::vector<MatchSite>(
    const std::vector<MatchSite> &, const ir::Procedure &)>;

/// The default profitability heuristic: perform every legal
/// transformation (choose_all, §2.3).
ChooseFn chooseAll();

/// A complete optimization.
struct Optimization {
  std::string Name;
  TransformationPattern Pat;
  ChooseFn Choose = chooseAll();

  /// Label definitions this optimization relies on (beyond builtins),
  /// in dependency order. Registered into the engine/checker registry.
  std::vector<LabelDef> Labels;
};

/// A pure analysis: ψ1 followed by ψ2 defines label(args) with witness P.
/// Cobalt has only forward pure analyses (§2.4).
struct PureAnalysis {
  std::string Name;
  Guard G;
  std::string LabelName;
  std::vector<Term> LabelArgs; ///< Terms over the guard's pattern vars.
  WitnessPtr W;
  std::vector<LabelDef> Labels; ///< Label defs used by the guard.
};

/// Structural well-formedness of an optimization (checked before both
/// execution and soundness checking):
/// * the witness's state selectors match the direction;
/// * free variables of ψ2 are bound by ψ1 (forward/backward guards
///   evaluate ψ2 pointwise under the θ produced at the enabling
///   statement plus — for rewrites — the match of s);
/// * every pattern variable of s' is bound by ψ1 or s;
/// * s and s' are single non-branch-shape-changing statements as far as
///   the CFG requires (branches may only rewrite to branches with the
///   same shape of targets, returns to returns — the paper's app()
///   replaces one node's statement and must preserve index structure).
/// Returns an error message, or nullopt when well-formed.
std::optional<std::string> validateOptimization(const Optimization &O);
std::optional<std::string> validateAnalysis(const PureAnalysis &A);

} // namespace cobalt

#endif // COBALT_CORE_OPTIMIZATION_H
