//===- Telemetry.cpp ------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <set>
#include <sstream>
#include <unordered_set>

#include <unistd.h>

using namespace cobalt;
using namespace cobalt::support;

//===----------------------------------------------------------------------===//
// Remark (compiled unconditionally).
//===----------------------------------------------------------------------===//

std::string Remark::str() const {
  std::ostringstream Out;
  Out << '[' << kindName() << "] " << Pass << " @ " << Proc;
  if (Node >= 0)
    Out << ':' << Node;
  if (!Note.empty())
    Out << ": " << Note;
  return Out.str();
}

//===----------------------------------------------------------------------===//
// HistogramStats buckets and trace-ID minting (compiled unconditionally:
// protocol frames carry trace IDs even in -DCOBALT_TELEMETRY=OFF builds,
// and the stats type is shared with the null sink).
//===----------------------------------------------------------------------===//

unsigned HistogramStats::bucketFor(double Value) {
  if (!(Value > BucketFloor))
    return 0;
  double L = std::log2(Value / BucketFloor) * 4.0;
  if (!(L < BucketCount - 1))
    return BucketCount - 1;
  return static_cast<unsigned>(L);
}

double HistogramStats::bucketLower(unsigned Index) {
  return BucketFloor * std::exp2(static_cast<double>(Index) / 4.0);
}

double HistogramStats::percentile(double Q) const {
  if (Count == 0)
    return 0.0;
  // 1-based rank of the sample at quantile Q; walk the cumulative
  // counts to its bucket and report the bucket's geometric midpoint,
  // clamped into [Min, Max] so degenerate histograms stay exact.
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Q * static_cast<double>(Count)));
  Rank = std::max<uint64_t>(1, std::min(Rank, Count));
  uint64_t Cum = 0;
  unsigned Bucket = BucketCount - 1;
  for (unsigned I = 0; I < BucketCount; ++I) {
    Cum += Buckets[I];
    if (Cum >= Rank) {
      Bucket = I;
      break;
    }
  }
  double Estimate =
      std::sqrt(bucketLower(Bucket) * bucketLower(Bucket + 1));
  return std::min(std::max(Estimate, Min), Max);
}

uint64_t support::mintTraceId() {
  static std::atomic<uint64_t> Counter{0};
  uint64_t X = Counter.fetch_add(1, std::memory_order_relaxed) + 1;
  X ^= static_cast<uint64_t>(::getpid()) << 32;
  X ^= static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  // splitmix64 finalizer: counter/pid/clock bits end up well mixed, so
  // concurrent daemons and rapid-fire clients cannot collide by pattern.
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X ? X : 1;
}

#if COBALT_TELEMETRY

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void appendEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

/// Fixed-format double: histograms dump with 6 decimal places so the
/// rendering never depends on locale or shortest-round-trip quirks.
std::string fixedDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

} // namespace

//===----------------------------------------------------------------------===//
// MetricsRegistry.
//===----------------------------------------------------------------------===//

MetricsRegistry::Shard &MetricsRegistry::shardFor(std::string_view Name) {
  return Shards[std::hash<std::string_view>{}(Name) % NumShards];
}

void MetricsRegistry::add(std::string_view Name, uint64_t Delta) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Counters.find(Name);
  if (It == S.Counters.end())
    S.Counters.emplace(std::string(Name), Delta);
  else
    It->second += Delta;
}

void MetricsRegistry::gaugeSet(std::string_view Name, int64_t Value) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Gauges.find(Name);
  if (It == S.Gauges.end())
    S.Gauges.emplace(std::string(Name), Value);
  else
    It->second = Value;
}

void MetricsRegistry::gaugeMax(std::string_view Name, int64_t Value) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Gauges.find(Name);
  if (It == S.Gauges.end())
    S.Gauges.emplace(std::string(Name), Value);
  else
    It->second = std::max(It->second, Value);
}

void MetricsRegistry::observe(std::string_view Name, double Value) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Histograms.find(Name);
  if (It == S.Histograms.end()) {
    HistogramStats H;
    H.Count = 1;
    H.Sum = H.Min = H.Max = Value;
    ++H.Buckets[HistogramStats::bucketFor(Value)];
    S.Histograms.emplace(std::string(Name), H);
    return;
  }
  HistogramStats &H = It->second;
  ++H.Count;
  H.Sum += Value;
  H.Min = std::min(H.Min, Value);
  H.Max = std::max(H.Max, Value);
  ++H.Buckets[HistogramStats::bucketFor(Value)];
}

uint64_t MetricsRegistry::counter(std::string_view Name) const {
  const Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Counters.find(Name);
  return It == S.Counters.end() ? 0 : It->second;
}

int64_t MetricsRegistry::gauge(std::string_view Name) const {
  const Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Gauges.find(Name);
  return It == S.Gauges.end() ? 0 : It->second;
}

HistogramStats MetricsRegistry::histogram(std::string_view Name) const {
  const Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Histograms.find(Name);
  return It == S.Histograms.end() ? HistogramStats() : It->second;
}

std::map<std::string, uint64_t> MetricsRegistry::counters() const {
  std::map<std::string, uint64_t> All;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    All.insert(S.Counters.begin(), S.Counters.end());
  }
  return All;
}

std::string MetricsRegistry::json() const {
  // Merge every shard under its lock; std::map keeps each section
  // name-sorted, making the dump byte-stable for a given metric state.
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, int64_t> Gauges;
  std::map<std::string, HistogramStats> Histograms;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Counters.insert(S.Counters.begin(), S.Counters.end());
    Gauges.insert(S.Gauges.begin(), S.Gauges.end());
    Histograms.insert(S.Histograms.begin(), S.Histograms.end());
  }

  std::string Out;
  Out += "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"";
    appendEscaped(Out, Name);
    Out += "\": " + std::to_string(Value);
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, Value] : Gauges) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"";
    appendEscaped(Out, Name);
    Out += "\": " + std::to_string(Value);
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"";
    appendEscaped(Out, Name);
    Out += "\": {\"count\": " + std::to_string(H.Count) +
           ", \"sum\": " + fixedDouble(H.Sum) +
           ", \"min\": " + fixedDouble(H.Min) +
           ", \"max\": " + fixedDouble(H.Max) +
           ", \"p50\": " + fixedDouble(H.p50()) +
           ", \"p90\": " + fixedDouble(H.p90()) +
           ", \"p99\": " + fixedDouble(H.p99()) + "}";
  }
  Out += First ? "}\n" : "\n  }\n";
  Out += "}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// TraceRecorder.
//===----------------------------------------------------------------------===//

namespace {
thread_local unsigned CurrentLaneTLS = 0;
thread_local uint64_t CurrentTraceIdTLS = 0;

/// Interns a deserialized cat/name/arg-key into process-lifetime
/// storage: TraceEvent carries `const char *` for the static-string
/// common case, and imported worker strings must live as long.
const char *internedString(const std::string &S) {
  static std::mutex PoolM;
  static std::unordered_set<std::string> Pool;
  std::lock_guard<std::mutex> Lock(PoolM);
  return Pool.insert(S).first->c_str();
}

/// Escapes tab/newline/backslash so serialized span fields survive the
/// line- and tab-delimited shipping format.
std::string escapeField(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string unescapeField(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 >= S.size()) {
      Out += S[I];
      continue;
    }
    switch (S[++I]) {
    case 't':
      Out += '\t';
      break;
    case 'n':
      Out += '\n';
      break;
    default:
      Out += S[I];
    }
  }
  return Out;
}

std::string hex16(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

void splitFields(std::string_view Line, std::vector<std::string> &Out) {
  Out.clear();
  size_t Start = 0;
  // Escaping guarantees no raw tabs inside a field, so a flat split is
  // exact.
  for (size_t I = 0; I <= Line.size(); ++I) {
    if (I == Line.size() || Line[I] == '\t') {
      Out.push_back(unescapeField(Line.substr(Start, I - Start)));
      Start = I + 1;
    }
  }
}

} // namespace

unsigned TraceRecorder::currentLane() { return CurrentLaneTLS; }
void TraceRecorder::setCurrentLane(unsigned Lane) { CurrentLaneTLS = Lane; }
uint64_t TraceRecorder::currentTraceId() { return CurrentTraceIdTLS; }
void TraceRecorder::setCurrentTraceId(uint64_t Id) {
  CurrentTraceIdTLS = Id;
}

void TraceRecorder::record(TraceEvent E) {
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(std::move(E));
}

void TraceRecorder::setProcessName(int Pid, std::string Name) {
  std::lock_guard<std::mutex> Lock(M);
  ProcessNames[Pid] = std::move(Name);
}

std::string TraceRecorder::serializeEvents() const {
  // Timestamps ship as absolute microseconds on the shared monotonic
  // clock (epoch + relative): the importer re-bases onto its own epoch,
  // which started earlier in the parent, so spans land in the right
  // place on the merged timeline. Linked IDs are a leader-side notion
  // and do not ship.
  std::vector<TraceEvent> Snapshot = snapshot();
  uint64_t Base = epochUs();
  std::string Out;
  for (const TraceEvent &E : Snapshot) {
    Out += escapeField(E.Cat);
    Out += '\t';
    Out += escapeField(E.Name);
    Out += '\t';
    Out += std::to_string(E.Lane);
    Out += '\t';
    Out += std::to_string(Base + E.StartUs);
    Out += '\t';
    Out += std::to_string(E.DurUs);
    Out += '\t';
    Out += hex16(E.TraceId);
    for (const auto &[Key, Value] : E.Args) {
      Out += '\t';
      Out += escapeField(Key);
      Out += '\t';
      Out += escapeField(Value);
    }
    Out += '\n';
  }
  return Out;
}

void TraceRecorder::importSerialized(std::string_view Text, int Pid) {
  uint64_t Base = epochUs();
  std::vector<std::string> Fields;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string_view::npos)
      Eol = Text.size();
    std::string_view Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    if (Line.empty())
      continue;
    splitFields(Line, Fields);
    // cat, name, lane, abs-start, dur, trace-id, then key/value pairs.
    if (Fields.size() < 6 || (Fields.size() - 6) % 2 != 0)
      continue; // worker frames are not trusted: drop, don't throw
    TraceEvent E;
    E.Cat = internedString(Fields[0]);
    E.Name = internedString(Fields[1]);
    E.Lane = static_cast<unsigned>(
        std::strtoul(Fields[2].c_str(), nullptr, 10));
    uint64_t AbsStart = std::strtoull(Fields[3].c_str(), nullptr, 10);
    E.StartUs = AbsStart > Base ? AbsStart - Base : 0;
    E.DurUs = std::strtoull(Fields[4].c_str(), nullptr, 10);
    E.TraceId = std::strtoull(Fields[5].c_str(), nullptr, 16);
    E.Pid = Pid;
    for (size_t I = 6; I + 1 < Fields.size(); I += 2)
      E.Args.emplace_back(internedString(Fields[I]),
                          std::move(Fields[I + 1]));
    record(std::move(E));
  }
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events;
}

size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events.size();
}

std::string TraceRecorder::json() const {
  std::vector<TraceEvent> Snapshot;
  std::map<int, std::string> Names;
  {
    std::lock_guard<std::mutex> Lock(M);
    Snapshot = Events;
    Names = ProcessNames;
  }

  // Local events (Pid 0) render as pid 1; imported events keep their
  // real pid. Collect the lanes of each process for metadata rows.
  unsigned MaxLane = 0;
  std::set<std::pair<int, unsigned>> ForeignLanes;
  for (const TraceEvent &E : Snapshot) {
    if (E.Pid == 0)
      MaxLane = std::max(MaxLane, E.Lane);
    else
      ForeignLanes.emplace(E.Pid, E.Lane);
  }

  auto LocalName = [&]() -> std::string {
    if (auto It = Names.find(1); It != Names.end())
      return It->second;
    if (auto It = Names.find(0); It != Names.end())
      return It->second;
    return "cobalt";
  };

  std::string Out;
  Out += "{\"traceEvents\": [\n";
  bool First = true;
  auto Meta = [&](const char *Row, int Pid, unsigned Tid,
                  const std::string &Name, bool WithTid) {
    Out += First ? "" : ",\n";
    First = false;
    Out += std::string("  {\"name\": \"") + Row +
           "\", \"ph\": \"M\", \"pid\": " + std::to_string(Pid);
    if (WithTid)
      Out += ", \"tid\": " + std::to_string(Tid);
    Out += ", \"args\": {\"name\": \"";
    appendEscaped(Out, Name);
    Out += "\"}}";
  };

  Meta("process_name", 1, 0, LocalName(), /*WithTid=*/false);
  for (unsigned Lane = 0; Lane <= MaxLane; ++Lane)
    Meta("thread_name", 1, Lane,
         Lane == 0 ? std::string("driver")
                   : "worker-" + std::to_string(Lane - 1),
         /*WithTid=*/true);
  int LastPid = 0;
  for (const auto &[Pid, Lane] : ForeignLanes) {
    if (Pid != LastPid) {
      auto It = Names.find(Pid);
      Meta("process_name", Pid, 0,
           It != Names.end() ? It->second : std::string("worker"),
           /*WithTid=*/false);
      LastPid = Pid;
    }
    Meta("thread_name", Pid, Lane, "prover", /*WithTid=*/true);
  }

  for (const TraceEvent &E : Snapshot) {
    Out += First ? "" : ",\n";
    First = false;
    Out += "  {\"name\": \"";
    appendEscaped(Out, E.Name);
    Out += "\", \"cat\": \"";
    appendEscaped(Out, E.Cat);
    Out += "\", \"ph\": \"X\", \"ts\": " + std::to_string(E.StartUs) +
           ", \"dur\": " + std::to_string(E.DurUs) +
           ", \"pid\": " + std::to_string(E.Pid == 0 ? 1 : E.Pid) +
           ", \"tid\": " + std::to_string(E.Lane);
    if (!E.Args.empty() || E.TraceId != 0 || !E.Linked.empty()) {
      Out += ", \"args\": {";
      bool FirstArg = true;
      auto Arg = [&](std::string_view Key, std::string_view Value) {
        if (!FirstArg)
          Out += ", ";
        FirstArg = false;
        Out += "\"";
        appendEscaped(Out, Key);
        Out += "\": \"";
        appendEscaped(Out, Value);
        Out += "\"";
      };
      for (const auto &[Key, Value] : E.Args)
        Arg(Key, Value);
      if (E.TraceId != 0)
        Arg("trace_id", hex16(E.TraceId));
      if (!E.Linked.empty()) {
        std::string Joined;
        for (uint64_t Id : E.Linked) {
          if (!Joined.empty())
            Joined += ",";
          Joined += hex16(Id);
        }
        Arg("linked", Joined);
      }
      Out += "}";
    }
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// FlightRecorder.
//===----------------------------------------------------------------------===//

FlightRecorder::FlightRecorder(size_t Capacity)
    : Epoch(std::chrono::steady_clock::now()) {
  Ring.resize(std::max<size_t>(1, Capacity));
}

void FlightRecorder::setCapacity(size_t Capacity) {
  std::lock_guard<std::mutex> Lock(M);
  Ring.assign(std::max<size_t>(1, Capacity), FlightEvent());
  Next = 0;
}

size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> Lock(M);
  return Ring.size();
}

void FlightRecorder::note(const char *Kind, std::string Detail,
                          uint64_t TraceId) {
  if (TraceId == 0)
    TraceId = TraceRecorder::currentTraceId();
  uint64_t WhenUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
  std::lock_guard<std::mutex> Lock(M);
  FlightEvent &Slot = Ring[Next % Ring.size()];
  Slot.Seq = Next++;
  Slot.WhenUs = WhenUs;
  Slot.TraceId = TraceId;
  Slot.Kind = Kind;
  Slot.Detail = std::move(Detail);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<FlightEvent> Out;
  uint64_t Have = std::min<uint64_t>(Next, Ring.size());
  Out.reserve(Have);
  for (uint64_t Seq = Next - Have; Seq < Next; ++Seq)
    Out.push_back(Ring[Seq % Ring.size()]);
  return Out;
}

std::string FlightRecorder::json(const char *Reason) const {
  std::vector<FlightEvent> Events = snapshot();
  uint64_t Dropped = 0;
  {
    std::lock_guard<std::mutex> Lock(M);
    Dropped = Next > Ring.size() ? Next - Ring.size() : 0;
  }
  std::string Out = "{\n  \"reason\": \"";
  appendEscaped(Out, Reason ? Reason : "dump");
  Out += "\",\n  \"dropped\": " + std::to_string(Dropped) +
         ",\n  \"flightEvents\": [";
  bool First = true;
  for (const FlightEvent &E : Events) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    {\"seq\": " + std::to_string(E.Seq) +
           ", \"us\": " + std::to_string(E.WhenUs) +
           ", \"trace_id\": \"" + hex16(E.TraceId) + "\", \"kind\": \"";
    appendEscaped(Out, E.Kind);
    Out += "\", \"detail\": \"";
    appendEscaped(Out, E.Detail);
    Out += "\"}";
  }
  Out += First ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Telemetry.
//===----------------------------------------------------------------------===//

std::atomic<Telemetry *> Telemetry::Active{nullptr};

#endif // COBALT_TELEMETRY
