//===- Telemetry.cpp ------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>

using namespace cobalt;
using namespace cobalt::support;

//===----------------------------------------------------------------------===//
// Remark (compiled unconditionally).
//===----------------------------------------------------------------------===//

std::string Remark::str() const {
  std::ostringstream Out;
  Out << '[' << kindName() << "] " << Pass << " @ " << Proc;
  if (Node >= 0)
    Out << ':' << Node;
  if (!Note.empty())
    Out << ": " << Note;
  return Out.str();
}

#if COBALT_TELEMETRY

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void appendEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

/// Fixed-format double: histograms dump with 6 decimal places so the
/// rendering never depends on locale or shortest-round-trip quirks.
std::string fixedDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

} // namespace

//===----------------------------------------------------------------------===//
// MetricsRegistry.
//===----------------------------------------------------------------------===//

MetricsRegistry::Shard &MetricsRegistry::shardFor(std::string_view Name) {
  return Shards[std::hash<std::string_view>{}(Name) % NumShards];
}

void MetricsRegistry::add(std::string_view Name, uint64_t Delta) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Counters.find(Name);
  if (It == S.Counters.end())
    S.Counters.emplace(std::string(Name), Delta);
  else
    It->second += Delta;
}

void MetricsRegistry::gaugeSet(std::string_view Name, int64_t Value) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Gauges.find(Name);
  if (It == S.Gauges.end())
    S.Gauges.emplace(std::string(Name), Value);
  else
    It->second = Value;
}

void MetricsRegistry::gaugeMax(std::string_view Name, int64_t Value) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Gauges.find(Name);
  if (It == S.Gauges.end())
    S.Gauges.emplace(std::string(Name), Value);
  else
    It->second = std::max(It->second, Value);
}

void MetricsRegistry::observe(std::string_view Name, double Value) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Histograms.find(Name);
  if (It == S.Histograms.end()) {
    HistogramStats H;
    H.Count = 1;
    H.Sum = H.Min = H.Max = Value;
    S.Histograms.emplace(std::string(Name), H);
    return;
  }
  HistogramStats &H = It->second;
  ++H.Count;
  H.Sum += Value;
  H.Min = std::min(H.Min, Value);
  H.Max = std::max(H.Max, Value);
}

uint64_t MetricsRegistry::counter(std::string_view Name) const {
  const Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Counters.find(Name);
  return It == S.Counters.end() ? 0 : It->second;
}

int64_t MetricsRegistry::gauge(std::string_view Name) const {
  const Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Gauges.find(Name);
  return It == S.Gauges.end() ? 0 : It->second;
}

HistogramStats MetricsRegistry::histogram(std::string_view Name) const {
  const Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Histograms.find(Name);
  return It == S.Histograms.end() ? HistogramStats() : It->second;
}

std::map<std::string, uint64_t> MetricsRegistry::counters() const {
  std::map<std::string, uint64_t> All;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    All.insert(S.Counters.begin(), S.Counters.end());
  }
  return All;
}

std::string MetricsRegistry::json() const {
  // Merge every shard under its lock; std::map keeps each section
  // name-sorted, making the dump byte-stable for a given metric state.
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, int64_t> Gauges;
  std::map<std::string, HistogramStats> Histograms;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Counters.insert(S.Counters.begin(), S.Counters.end());
    Gauges.insert(S.Gauges.begin(), S.Gauges.end());
    Histograms.insert(S.Histograms.begin(), S.Histograms.end());
  }

  std::string Out;
  Out += "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"";
    appendEscaped(Out, Name);
    Out += "\": " + std::to_string(Value);
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, Value] : Gauges) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"";
    appendEscaped(Out, Name);
    Out += "\": " + std::to_string(Value);
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"";
    appendEscaped(Out, Name);
    Out += "\": {\"count\": " + std::to_string(H.Count) +
           ", \"sum\": " + fixedDouble(H.Sum) +
           ", \"min\": " + fixedDouble(H.Min) +
           ", \"max\": " + fixedDouble(H.Max) + "}";
  }
  Out += First ? "}\n" : "\n  }\n";
  Out += "}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// TraceRecorder.
//===----------------------------------------------------------------------===//

namespace {
thread_local unsigned CurrentLaneTLS = 0;
} // namespace

unsigned TraceRecorder::currentLane() { return CurrentLaneTLS; }
void TraceRecorder::setCurrentLane(unsigned Lane) { CurrentLaneTLS = Lane; }

void TraceRecorder::record(TraceEvent E) {
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(std::move(E));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events;
}

size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events.size();
}

std::string TraceRecorder::json() const {
  std::vector<TraceEvent> Snapshot = snapshot();

  // Lanes observed in the trace, for thread_name metadata rows.
  unsigned MaxLane = 0;
  for (const TraceEvent &E : Snapshot)
    MaxLane = std::max(MaxLane, E.Lane);

  std::string Out;
  Out += "{\"traceEvents\": [\n";
  bool First = true;
  for (unsigned Lane = 0; Lane <= MaxLane; ++Lane) {
    Out += First ? "" : ",\n";
    First = false;
    Out += "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": " +
           std::to_string(Lane) + ", \"args\": {\"name\": \"" +
           (Lane == 0 ? std::string("driver")
                      : "worker-" + std::to_string(Lane - 1)) +
           "\"}}";
  }
  for (const TraceEvent &E : Snapshot) {
    Out += First ? "" : ",\n";
    First = false;
    Out += "  {\"name\": \"";
    appendEscaped(Out, E.Name);
    Out += "\", \"cat\": \"";
    appendEscaped(Out, E.Cat);
    Out += "\", \"ph\": \"X\", \"ts\": " + std::to_string(E.StartUs) +
           ", \"dur\": " + std::to_string(E.DurUs) +
           ", \"pid\": 1, \"tid\": " + std::to_string(E.Lane);
    if (!E.Args.empty()) {
      Out += ", \"args\": {";
      bool FirstArg = true;
      for (const auto &[Key, Value] : E.Args) {
        if (!FirstArg)
          Out += ", ";
        FirstArg = false;
        Out += "\"";
        appendEscaped(Out, Key);
        Out += "\": \"";
        appendEscaped(Out, Value);
        Out += "\"";
      }
      Out += "}";
    }
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Telemetry.
//===----------------------------------------------------------------------===//

std::atomic<Telemetry *> Telemetry::Active{nullptr};

#endif // COBALT_TELEMETRY
