//===- Telemetry.h - Metrics, tracing, and optimization remarks -*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability substrate of the pipeline (DESIGN.md §9). Three
/// cooperating pieces:
///
///  * **MetricsRegistry** — named counters / gauges / histograms behind a
///    mutex-sharded table (16 shards keyed by name hash, so concurrent
///    obligation jobs rarely contend). Dumps are byte-stable: the JSON
///    emitter merges all shards into one name-sorted view with fixed
///    formatting, so tests can golden-compare metric files.
///
///  * **TraceRecorder / TraceSpan** — Chrome `trace_event` spans
///    (`"ph":"X"` complete events). Every ThreadPool worker is one trace
///    lane (`tid` = worker index + 1; the driving thread is lane 0), and
///    spans nest via scoped RAII `TraceSpan` objects. Load the output in
///    `chrome://tracing` or https://ui.perfetto.dev.
///
///  * **Remark** — LLVM-style optimization remarks (passed / missed /
///    rolled-back, with rule name, CFG node, and the `choose` decision).
///    Remarks are plain data carried inside `engine::PassReport` — they
///    are *not* gated by the telemetry compile switch, and their ordering
///    is the deterministic report order, not event arrival order.
///
///  * **FlightRecorder** — an always-on ring of recent structured events
///    (admissions, dedup leadership, worker lifecycle, quarantine): the
///    black box the daemon dumps on failure for post-mortems.
///
/// Requests are stitched together by 64-bit **trace IDs** (mintTraceId),
/// carried thread-locally (TraceIdScope), across the prover-worker fork
/// boundary in request frames, and over the wire in protocol frames.
/// Spans record the ambient ID in a dedicated TraceEvent field — never
/// in args, which must stay identical across runs and --jobs widths.
///
/// ## The disabled fast path
///
/// Telemetry is ambient: one process-wide `Telemetry *` installed by a
/// `TelemetryScope` (the CobaltContext installs its own instance around
/// every check / pipeline call). Every instrumentation site performs
/// exactly one relaxed atomic load and one branch when no telemetry is
/// installed — no string building, no allocation, no locking. A
/// `TraceSpan` constructed while disabled holds a null recorder and its
/// destructor is a single null test. Span names are static strings;
/// anything dynamic goes into args, which are only materialized behind
/// the `enabled()` branch.
///
/// Building with `-DCOBALT_TELEMETRY=OFF` compiles the whole layer down
/// to empty inline stubs (`Telemetry::active()` is a constexpr nullptr,
/// so the guarded branches fold away); a static_assert below pins the
/// null-sink `TraceSpan` to an empty class in that configuration.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_TELEMETRY_H
#define COBALT_SUPPORT_TELEMETRY_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#ifndef COBALT_TELEMETRY
#define COBALT_TELEMETRY 1
#endif

namespace cobalt {
namespace support {

/// True when the telemetry layer is compiled in (-DCOBALT_TELEMETRY=ON,
/// the default). CLIs use this to warn when --trace-out is requested
/// from a build whose null-sink path was compiled out.
constexpr bool telemetryCompiledIn() { return COBALT_TELEMETRY != 0; }

//===----------------------------------------------------------------------===//
// Optimization remarks (plain data; never compiled out).
//===----------------------------------------------------------------------===//

/// One optimization remark: what a rule did (or did not do) at a CFG
/// node, in the style of LLVM's -Rpass/-Rpass-missed streams.
struct Remark {
  enum class Kind {
    RK_Passed,     ///< The rule rewrote this node.
    RK_Missed,     ///< Legal site not taken (choose declined, quarantine,
                   ///< unproven definition skipped, ...).
    RK_RolledBack, ///< The pass failed and its rewrites were undone.
  };

  Kind K = Kind::RK_Missed;
  std::string Pass; ///< Rule / pass name.
  std::string Proc; ///< Procedure the remark is about.
  int Node = -1;    ///< CFG node index; -1 = whole procedure.
  std::string Note; ///< The `choose` decision / failure reason.

  const char *kindName() const {
    switch (K) {
    case Kind::RK_Passed:
      return "passed";
    case Kind::RK_Missed:
      return "missed";
    case Kind::RK_RolledBack:
      return "rolledback";
    }
    return "missed";
  }

  /// Renders as "[passed] cse @ main:5: note" (stable; tests rely on it).
  std::string str() const;
};

/// Aggregate statistics of one histogram metric. Beyond count/sum/min/
/// max, samples land in fixed log-spaced buckets (HDR-histogram style:
/// four sub-buckets per power of two, spanning 1 µs .. ~10⁶ s of
/// whatever unit the caller observes), from which percentiles are
/// estimated as the geometric midpoint of the covering bucket — a
/// bounded ~19% relative error at any sample count, with no per-sample
/// allocation.
struct HistogramStats {
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;

  static constexpr unsigned BucketCount = 160; ///< 40 octaves × 4.
  static constexpr double BucketFloor = 1e-6;  ///< Lower bound of bucket 0.
  std::array<uint32_t, BucketCount> Buckets{};

  /// The bucket a sample falls into (clamped at both ends).
  static unsigned bucketFor(double Value);
  /// Geometric bounds of bucket \p Index: [lower(I), lower(I+1)).
  static double bucketLower(unsigned Index);

  /// Estimated value at quantile \p Q in (0, 1], clamped into
  /// [Min, Max] so a single-sample histogram reports that sample.
  double percentile(double Q) const;
  double p50() const { return percentile(0.50); }
  double p90() const { return percentile(0.90); }
  double p99() const { return percentile(0.99); }
};

/// Mints a process-unique 64-bit request trace ID (never 0): a splitmix
/// of a process-global counter, the pid, and the monotonic clock. Not
/// gated by the telemetry compile switch — protocol frames carry trace
/// IDs even when the local build records nothing.
uint64_t mintTraceId();

#if COBALT_TELEMETRY

//===----------------------------------------------------------------------===//
// MetricsRegistry.
//===----------------------------------------------------------------------===//

/// Named counters, gauges, and histograms. Thread-safe; writes shard by
/// name hash so parallel jobs updating different metrics rarely share a
/// lock. Reads (the accessors and json()) take every shard lock in turn
/// and present one merged, name-sorted view.
class MetricsRegistry {
public:
  /// Counter: monotonically increasing u64. Created on first touch.
  void add(std::string_view Name, uint64_t Delta = 1);

  /// Gauge: last-write-wins level (queue depth, bytes resident).
  void gaugeSet(std::string_view Name, int64_t Value);
  /// Gauge variant keeping the maximum ever observed (high-water marks).
  void gaugeMax(std::string_view Name, int64_t Value);

  /// Histogram: count/sum/min/max plus log-bucket percentiles.
  void observe(std::string_view Name, double Value);

  /// Point reads (0 / empty stats when the metric was never touched).
  uint64_t counter(std::string_view Name) const;
  int64_t gauge(std::string_view Name) const;
  HistogramStats histogram(std::string_view Name) const;

  /// All counters, merged and name-sorted (for curated golden compares).
  std::map<std::string, uint64_t> counters() const;

  /// Byte-stable JSON dump:
  /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
  /// every section sorted by name and numbers in fixed formatting;
  /// histogram objects carry count/sum/min/max and p50/p90/p99.
  /// Counter values are deterministic across `--jobs` widths (atomic
  /// adds commute); histogram sums and percentiles carry wall-clock
  /// noise and are for humans, not golden files.
  std::string json() const;

private:
  static constexpr size_t NumShards = 16;
  struct Shard {
    mutable std::mutex M;
    std::map<std::string, uint64_t, std::less<>> Counters;
    std::map<std::string, int64_t, std::less<>> Gauges;
    std::map<std::string, HistogramStats, std::less<>> Histograms;
  };

  Shard &shardFor(std::string_view Name);
  const Shard &shardFor(std::string_view Name) const {
    return const_cast<MetricsRegistry *>(this)->shardFor(Name);
  }

  std::array<Shard, NumShards> Shards;
};

//===----------------------------------------------------------------------===//
// TraceRecorder.
//===----------------------------------------------------------------------===//

/// One completed span. Args are (key, value) string pairs recorded in
/// insertion order; values must be deterministic (verdicts, counts) —
/// wall time belongs in StartUs/DurUs, which span-set tests ignore.
/// Request identity lives in the dedicated TraceId/Pid/Linked fields,
/// NOT in Args: trace IDs are minted per request and pids per fork, so
/// putting them in Args would break the --jobs span-set equivalence
/// contract. The JSON emitter renders them as args for the viewer.
struct TraceEvent {
  const char *Cat = "";    ///< Subsystem ("checker", "engine", ...).
  const char *Name = "";   ///< Span name (static; data goes in Args).
  unsigned Lane = 0;       ///< tid: 0 = driver, 1..N = pool workers.
  uint64_t StartUs = 0;    ///< Microseconds since recorder epoch.
  uint64_t DurUs = 0;
  uint64_t TraceId = 0;    ///< Request trace ID (0 = unattributed).
  int Pid = 0;             ///< Originating process; 0 = this process.
  std::vector<uint64_t> Linked; ///< Follower trace IDs (dedup leaders).
  std::vector<std::pair<const char *, std::string>> Args;
};

/// Collects spans and serializes them as Chrome trace JSON. Appends are
/// mutex-serialized (a span ends at most once per prover call or pass —
/// far too coarse to contend); the disabled fast path never reaches the
/// recorder at all.
class TraceRecorder {
public:
  TraceRecorder() : Epoch(std::chrono::steady_clock::now()) {}

  void record(TraceEvent E);

  /// Microseconds since this recorder was created (span timestamps).
  uint64_t nowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  std::vector<TraceEvent> snapshot() const;
  size_t eventCount() const;

  /// Chrome trace_event JSON: `{"traceEvents": [...]}` with one
  /// complete ("ph":"X") event per span plus thread_name metadata rows
  /// naming each lane and process_name rows naming each process.
  /// Events whose Pid is 0 belong to this process and render as pid 1;
  /// imported events keep their real pid, so a merged multi-process
  /// trace shows one named track group per prover worker.
  std::string json() const;

  /// This recorder's epoch in microseconds on the shared monotonic
  /// clock. Serialized events carry absolute timestamps so a forked
  /// child's spans re-base correctly into the parent's timeline.
  uint64_t epochUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Epoch.time_since_epoch())
            .count());
  }

  /// Line-oriented dump of every event with absolute (epoch-free)
  /// timestamps — the cross-process shipping format for worker span
  /// buffers. Inverse of importSerialized.
  std::string serializeEvents() const;

  /// Merges events serialized by another process's recorder, stamping
  /// them with \p Pid and re-basing timestamps onto this epoch.
  /// Malformed lines are dropped (worker frames are not trusted).
  void importSerialized(std::string_view Text, int Pid);

  /// Names a process for the merged trace's process_name metadata row
  /// (pid 0/1 = this process, defaults to "cobalt").
  void setProcessName(int Pid, std::string Name);

  /// The calling thread's lane id (thread-local; 0 unless a ThreadPool
  /// worker tagged the thread via setCurrentLane).
  static unsigned currentLane();
  static void setCurrentLane(unsigned Lane);

  /// The calling thread's ambient request trace ID (thread-local; 0 =
  /// no request in scope). Spans capture it at construction. Install
  /// via TraceIdScope rather than calling setCurrentTraceId directly.
  static uint64_t currentTraceId();
  static void setCurrentTraceId(uint64_t Id);

private:
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex M;
  std::vector<TraceEvent> Events;
  std::map<int, std::string> ProcessNames;
};

/// RAII installer of the calling thread's ambient trace ID. The scope
/// restores the previous ID, so nested requests (a pipeline that checks)
/// attribute inner spans to the innermost request.
class TraceIdScope {
public:
  explicit TraceIdScope(uint64_t Id)
      : Prev(TraceRecorder::currentTraceId()) {
    TraceRecorder::setCurrentTraceId(Id);
  }
  ~TraceIdScope() { TraceRecorder::setCurrentTraceId(Prev); }
  TraceIdScope(const TraceIdScope &) = delete;
  TraceIdScope &operator=(const TraceIdScope &) = delete;

private:
  uint64_t Prev;
};

//===----------------------------------------------------------------------===//
// FlightRecorder: the always-on black box.
//===----------------------------------------------------------------------===//

/// One structured flight-recorder event (admission decision, dedup
/// leadership, worker lifecycle, cache corruption, quarantine).
struct FlightEvent {
  uint64_t Seq = 0;     ///< Monotonic; survives ring wrap for ordering.
  uint64_t WhenUs = 0;  ///< Microseconds since recorder construction.
  uint64_t TraceId = 0; ///< Attributed request, when known.
  const char *Kind = ""; ///< Static event kind ("worker.quarantine"...).
  std::string Detail;    ///< Small human payload (obligation name, why).
};

/// A fixed-capacity ring of recent FlightEvents. Always on: recording
/// is one short mutex hold over a preallocated slot (no allocation
/// beyond the detail string the caller already built), cheap enough to
/// leave enabled in production. The daemon dumps the ring to JSON on
/// quarantine, degraded exit, SIGTERM, or an explicit `dump` frame —
/// the post-mortem record of what led up to the failure.
class FlightRecorder {
public:
  explicit FlightRecorder(size_t Capacity = 1024);

  /// Re-sizes the ring, dropping recorded events (call at startup).
  void setCapacity(size_t Capacity);
  size_t capacity() const;

  /// Records one event. A zero \p TraceId is filled from the calling
  /// thread's ambient trace ID.
  void note(const char *Kind, std::string Detail, uint64_t TraceId = 0);

  /// Surviving events, oldest first.
  std::vector<FlightEvent> snapshot() const;

  /// `{"reason": ..., "dropped": N, "flightEvents": [...]}` — oldest
  /// first; `dropped` counts events the ring has already overwritten.
  std::string json(const char *Reason = nullptr) const;

private:
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex M;
  std::vector<FlightEvent> Ring; ///< Slot = Seq % Ring.size().
  uint64_t Next = 0;             ///< Events ever recorded.
};

//===----------------------------------------------------------------------===//
// Telemetry: the ambient sink.
//===----------------------------------------------------------------------===//

/// One telemetry session: a metrics registry plus a trace recorder.
/// Install with TelemetryScope; instrumentation sites reach it through
/// Telemetry::active(). Remarks do NOT flow through here — they ride in
/// PassReports and are delivered in deterministic report order by the
/// CobaltContext.
class Telemetry {
public:
  MetricsRegistry Metrics;
  TraceRecorder Trace;
  FlightRecorder Flight;
  /// Span recording can be switched off independently (metrics-only
  /// sessions skip the span bookkeeping entirely).
  bool TraceEnabled = true;

  /// The installed instance, or nullptr (the common, zero-cost case).
  static Telemetry *active() {
    return Active.load(std::memory_order_relaxed);
  }

private:
  static std::atomic<Telemetry *> Active;
  friend class TelemetryScope;
};

/// RAII installer for the ambient Telemetry. Passing nullptr is a no-op
/// (an enclosing scope, e.g. an embedder's own session, stays active).
/// Scopes are process-global: one driving thread installs, pool workers
/// observe — matching the CobaltContext's one-driver threading model.
class TelemetryScope {
public:
  explicit TelemetryScope(Telemetry *T) : Installed(T != nullptr) {
    if (Installed) {
      Prev = Telemetry::Active.load(std::memory_order_relaxed);
      Telemetry::Active.store(T, std::memory_order_relaxed);
    }
  }
  ~TelemetryScope() {
    if (Installed)
      Telemetry::Active.store(Prev, std::memory_order_relaxed);
  }
  TelemetryScope(const TelemetryScope &) = delete;
  TelemetryScope &operator=(const TelemetryScope &) = delete;

private:
  Telemetry *Prev = nullptr;
  bool Installed;
};

//===----------------------------------------------------------------------===//
// TraceSpan.
//===----------------------------------------------------------------------===//

/// Scoped span: starts timing at construction, records a complete event
/// at destruction on the calling thread's lane. Constructed with static
/// strings only; all dynamic data goes through arg(), whose cost is
/// behind the enabled() branch at the call site.
class TraceSpan {
public:
  TraceSpan(const char *Cat, const char *Name) {
    Telemetry *T = Telemetry::active();
    if (T && T->TraceEnabled) {
      Rec = &T->Trace;
      E.Cat = Cat;
      E.Name = Name;
      E.Lane = TraceRecorder::currentLane();
      E.TraceId = TraceRecorder::currentTraceId();
      E.StartUs = Rec->nowUs();
    }
  }
  ~TraceSpan() {
    if (Rec) {
      E.DurUs = Rec->nowUs() - E.StartUs;
      Rec->record(std::move(E));
    }
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  bool enabled() const { return Rec != nullptr; }

  /// Attaches a (key, value) arg; no-op (and no string is copied) when
  /// the span is disabled. Guard expensive value construction with
  /// enabled() at the call site.
  void arg(const char *Key, std::string Value) {
    if (Rec)
      E.Args.emplace_back(Key, std::move(Value));
  }
  void arg(const char *Key, uint64_t Value) {
    if (Rec)
      E.Args.emplace_back(Key, std::to_string(Value));
  }

  /// Tags this span with follower trace IDs (the dedup leader records
  /// everyone it proved for). A dedicated field, not an arg: follower
  /// sets vary run to run, and args must stay jobs-invariant.
  void linked(std::vector<uint64_t> Ids) {
    if (Rec)
      E.Linked = std::move(Ids);
  }

private:
  TraceRecorder *Rec = nullptr;
  TraceEvent E;
};

//===----------------------------------------------------------------------===//
// One-line instrumentation helpers (the metric fast path).
//===----------------------------------------------------------------------===//

inline void metricAdd(std::string_view Name, uint64_t Delta = 1) {
  if (Telemetry *T = Telemetry::active())
    T->Metrics.add(Name, Delta);
}
inline void metricObserve(std::string_view Name, double Value) {
  if (Telemetry *T = Telemetry::active())
    T->Metrics.observe(Name, Value);
}
inline void metricGaugeSet(std::string_view Name, int64_t Value) {
  if (Telemetry *T = Telemetry::active())
    T->Metrics.gaugeSet(Name, Value);
}
inline void metricGaugeMax(std::string_view Name, int64_t Value) {
  if (Telemetry *T = Telemetry::active())
    T->Metrics.gaugeMax(Name, Value);
}
/// Flight-recorder note against the ambient session; a zero trace ID
/// is filled from the calling thread's ambient request ID.
inline void flightNote(const char *Kind, std::string Detail,
                       uint64_t TraceId = 0) {
  if (Telemetry *T = Telemetry::active()) {
    T->Flight.note(Kind, std::move(Detail), TraceId);
    T->Metrics.add("flight.events");
  }
}

#else // !COBALT_TELEMETRY — the layer compiles down to nothing.

/// Null-sink MetricsRegistry: every write is dropped, every read is
/// empty. Kept API-compatible so embedders and the CLI build unchanged.
class MetricsRegistry {
public:
  void add(std::string_view, uint64_t = 1) {}
  void gaugeSet(std::string_view, int64_t) {}
  void gaugeMax(std::string_view, int64_t) {}
  void observe(std::string_view, double) {}
  uint64_t counter(std::string_view) const { return 0; }
  int64_t gauge(std::string_view) const { return 0; }
  HistogramStats histogram(std::string_view) const { return {}; }
  std::map<std::string, uint64_t> counters() const { return {}; }
  std::string json() const {
    return "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}\n";
  }
};

struct TraceEvent {
  const char *Cat = "";
  const char *Name = "";
  unsigned Lane = 0;
  uint64_t StartUs = 0;
  uint64_t DurUs = 0;
  uint64_t TraceId = 0;
  int Pid = 0;
  std::vector<uint64_t> Linked;
  std::vector<std::pair<const char *, std::string>> Args;
};

class TraceRecorder {
public:
  void record(TraceEvent) {}
  uint64_t nowUs() const { return 0; }
  std::vector<TraceEvent> snapshot() const { return {}; }
  size_t eventCount() const { return 0; }
  std::string json() const { return "{\"traceEvents\": []}\n"; }
  uint64_t epochUs() const { return 0; }
  std::string serializeEvents() const { return {}; }
  void importSerialized(std::string_view, int) {}
  void setProcessName(int, std::string) {}
  static unsigned currentLane() { return 0; }
  static void setCurrentLane(unsigned) {}
  static uint64_t currentTraceId() { return 0; }
  static void setCurrentTraceId(uint64_t) {}
};

class TraceIdScope {
public:
  explicit TraceIdScope(uint64_t) {}
  TraceIdScope(const TraceIdScope &) = delete;
  TraceIdScope &operator=(const TraceIdScope &) = delete;
};

struct FlightEvent {
  uint64_t Seq = 0;
  uint64_t WhenUs = 0;
  uint64_t TraceId = 0;
  const char *Kind = "";
  std::string Detail;
};

class FlightRecorder {
public:
  explicit FlightRecorder(size_t = 1024) {}
  void setCapacity(size_t) {}
  size_t capacity() const { return 0; }
  void note(const char *, std::string, uint64_t = 0) {}
  std::vector<FlightEvent> snapshot() const { return {}; }
  std::string json(const char * = nullptr) const {
    return "{\"flightEvents\": []}\n";
  }
};

class Telemetry {
public:
  MetricsRegistry Metrics;
  TraceRecorder Trace;
  FlightRecorder Flight;
  bool TraceEnabled = false;
  static constexpr Telemetry *active() { return nullptr; }
};

class TelemetryScope {
public:
  explicit TelemetryScope(Telemetry *) {}
  TelemetryScope(const TelemetryScope &) = delete;
  TelemetryScope &operator=(const TelemetryScope &) = delete;
};

class TraceSpan {
public:
  TraceSpan(const char *, const char *) {}
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  bool enabled() const { return false; }
  void arg(const char *, std::string) {}
  void arg(const char *, uint64_t) {}
  void linked(std::vector<uint64_t>) {}
};

// The contract -DCOBALT_TELEMETRY=OFF promises: the null sink has no
// state at all — instrumentation sites cost nothing but an empty object.
static_assert(std::is_empty_v<TraceSpan>,
              "null-sink TraceSpan must compile out to an empty class");
static_assert(std::is_empty_v<TelemetryScope>,
              "null-sink TelemetryScope must compile out");
static_assert(std::is_empty_v<TraceIdScope>,
              "null-sink TraceIdScope must compile out");

inline void metricAdd(std::string_view, uint64_t = 1) {}
inline void metricObserve(std::string_view, double) {}
inline void metricGaugeSet(std::string_view, int64_t) {}
inline void metricGaugeMax(std::string_view, int64_t) {}
inline void flightNote(const char *, std::string, uint64_t = 0) {}

#endif // COBALT_TELEMETRY

} // namespace support
} // namespace cobalt

#endif // COBALT_SUPPORT_TELEMETRY_H
