//===- SourceLoc.h - Source positions for diagnostics ----------*- C++ -*-===//
//
// Part of the Cobalt reproduction of Lerner, Millstein & Chambers,
// "Automatically Proving the Correctness of Compiler Optimizations",
// PLDI 2003. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 1-based (line, column) position in a source buffer, shared by the
/// intermediate-language and Cobalt parsers.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_SOURCELOC_H
#define COBALT_SUPPORT_SOURCELOC_H

#include <string>

namespace cobalt {

/// A position in a source buffer. Line and column are 1-based; a
/// default-constructed location is "unknown" and prints as "<unknown>".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }

  /// Renders as "line:column", or "<unknown>" for invalid locations.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

} // namespace cobalt

#endif // COBALT_SUPPORT_SOURCELOC_H
