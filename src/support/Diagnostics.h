//===- Diagnostics.h - Error collection for parsers and checkers -*- C++ -*-=//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic sink. Library code never aborts on user input;
/// parsers and the soundness checker report through a DiagnosticEngine and
/// callers decide how to surface failures.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_DIAGNOSTICS_H
#define COBALT_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace cobalt {

/// Severity of a diagnostic. Errors make the owning operation fail;
/// warnings and notes are informational.
enum class DiagKind { DK_Error, DK_Warning, DK_Note };

/// One reported diagnostic: severity, optional location, message text.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "error at 3:7: ..." in the style required for tools.
  std::string str() const;
};

/// Accumulates diagnostics for one operation (a parse, a soundness check).
///
/// Ordering guarantee: diagnostics render — in diagnostics() and str() —
/// in exactly the order they were reported, regardless of severity.
/// Errors, warnings, and notes interleave as emitted, so a note stays
/// attached to the diagnostic it elaborates and tools can parse str()
/// line by line with each line carrying its severity prefix ("error",
/// "warning", "note"). No reordering, grouping, or deduplication happens.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::DK_Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void error(std::string Message) { error(SourceLoc(), std::move(Message)); }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::DK_Warning, Loc, std::move(Message)});
    ++NumWarnings;
  }
  void warning(std::string Message) {
    warning(SourceLoc(), std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::DK_Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics joined with newlines, in insertion order, each line
  /// prefixed with its severity — for test assertions and CLIs.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace cobalt

#endif // COBALT_SUPPORT_DIAGNOSTICS_H
