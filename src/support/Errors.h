//===- Errors.h - Structured failure taxonomy for the pipeline --*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The failure taxonomy threaded through checker and engine results. The
/// system's core guarantee is that an *unsound* optimization can never be
/// applied; this header is about the orthogonal axis — the infrastructure
/// itself failing (a prover timeout, an exception escaping a pass, a
/// partially applied rewrite). Every such failure is classified so that
/// callers can dispatch on it: "degraded but safe" (skip the pass, keep
/// the pipeline alive) is fundamentally different from "proved unsound"
/// (reject the definition) and from "proven" (apply it).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_ERRORS_H
#define COBALT_SUPPORT_ERRORS_H

#include <stdexcept>
#include <string>

namespace cobalt {
namespace support {

/// What went wrong, at the granularity callers dispatch on.
enum class ErrorKind {
  EK_None, ///< No failure.

  // Prover-side degradation: the obligation was neither proven nor
  // refuted. The optimization must not be applied, but it is *unproven*,
  // not unsound — retrying with a larger budget may succeed.
  EK_ProverTimeout,     ///< Z3 hit its wall-clock timeout (or the check's
                        ///< total budget was exhausted).
  EK_ProverUnknown,     ///< Z3 gave up for a non-resource reason
                        ///< (incomplete quantifier instantiation, ...).
  EK_ProverResourceOut, ///< Z3 hit its rlimit or memory cap.
  EK_WorkerCrash,       ///< An out-of-process prover worker crashed, hung
                        ///< past its wall budget, or blew its rss budget
                        ///< repeatedly on this obligation; the obligation
                        ///< was quarantined to Unproven (the containment
                        ///< layer of DESIGN.md §12).

  // Engine-side failures: a pass misbehaved at run time. The transactional
  // pass manager rolls the procedure back, so these never corrupt the
  // program being compiled.
  EK_PassPanic,       ///< An exception escaped the pass.
  EK_RewriteConflict, ///< The post-pass sanity check failed (ill-formed
                      ///< CFG or an interpreter spot-check divergence);
                      ///< the rewrite was rolled back.
  EK_Quarantined,     ///< The pass was skipped: it failed too many
                      ///< consecutive times and is quarantined.

  // Front-end / environment failures surfaced through the CobaltContext
  // facade (Expected<T> carriers). These map to the CLI's usage exit
  // code, not to the degraded exit code.
  EK_ParseError, ///< A .cob module or .il program failed to parse.
  EK_IoError,    ///< A file could not be read or written.

  // Service-side failures (the cobaltd request path). A client maps
  // EK_Unavailable from connect/request to its distinct "server
  // unreachable" exit code (5), never to a verdict.
  EK_Unavailable, ///< cobaltd unreachable, connection lost mid-request,
                  ///< or a requested definition is not registered with
                  ///< the service.
};

/// Stable short name, for reports and JSON.
inline const char *errorKindName(ErrorKind K) {
  switch (K) {
  case ErrorKind::EK_None:
    return "none";
  case ErrorKind::EK_ProverTimeout:
    return "prover_timeout";
  case ErrorKind::EK_ProverUnknown:
    return "prover_unknown";
  case ErrorKind::EK_ProverResourceOut:
    return "prover_resource_out";
  case ErrorKind::EK_WorkerCrash:
    return "worker_crash";
  case ErrorKind::EK_PassPanic:
    return "pass_panic";
  case ErrorKind::EK_RewriteConflict:
    return "rewrite_conflict";
  case ErrorKind::EK_Quarantined:
    return "quarantined";
  case ErrorKind::EK_ParseError:
    return "parse_error";
  case ErrorKind::EK_IoError:
    return "io_error";
  case ErrorKind::EK_Unavailable:
    return "unavailable";
  }
  return "unknown";
}

/// Inverse of errorKindName (for deserializing cached verdicts).
/// Unrecognized names map to EK_None.
inline ErrorKind errorKindFromName(const std::string &Name) {
  for (ErrorKind K :
       {ErrorKind::EK_ProverTimeout, ErrorKind::EK_ProverUnknown,
        ErrorKind::EK_ProverResourceOut, ErrorKind::EK_WorkerCrash,
        ErrorKind::EK_PassPanic,
        ErrorKind::EK_RewriteConflict, ErrorKind::EK_Quarantined,
        ErrorKind::EK_ParseError, ErrorKind::EK_IoError,
        ErrorKind::EK_Unavailable})
    if (Name == errorKindName(K))
      return K;
  return ErrorKind::EK_None;
}

/// True for failures of the *infrastructure* (prover gave up, pass
/// crashed) as opposed to a genuine soundness refutation. Infra failures
/// degrade the pipeline (exit code "infra degraded") without implying any
/// definition is wrong.
inline bool isInfraError(ErrorKind K) { return K != ErrorKind::EK_None; }

/// The exception type thrown across pass boundaries. The transactional
/// PassManager catches it (and any other std::exception) and rolls back;
/// it never escapes a pipeline run.
class PassError : public std::runtime_error {
public:
  PassError(ErrorKind Kind, const std::string &Message)
      : std::runtime_error(Message), Kind(Kind) {}

  ErrorKind kind() const { return Kind; }

private:
  ErrorKind Kind;
};

} // namespace support
} // namespace cobalt

#endif // COBALT_SUPPORT_ERRORS_H
