//===- PersistentCache.cpp ------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/PersistentCache.h"

#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

using namespace cobalt;
using namespace cobalt::support;
namespace fs = std::filesystem;

namespace {

/// FNV-1a over the payload — cheap, and collisions only matter against
/// *accidental* corruption (truncation, bit rot, torn concurrent writes),
/// not an adversary.
uint64_t fnv64(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Entry layout: one header line `cc1 <fnv64-hex> <payload-bytes>\n`
/// followed by the raw payload. The header is what makes entries
/// self-validating — see PersistentCache::load.
std::string encodeEntry(const std::string &Value) {
  return "cc1 " + hex16(fnv64(Value)) + " " + std::to_string(Value.size()) +
         "\n" + Value;
}

/// Returns the verified payload, or nullopt when the blob is not a
/// complete, checksum-correct entry.
std::optional<std::string> decodeEntry(const std::string &Blob) {
  size_t Nl = Blob.find('\n');
  if (Nl == std::string::npos || Blob.compare(0, 4, "cc1 ") != 0)
    return std::nullopt;
  std::istringstream Header(Blob.substr(4, Nl - 4));
  std::string SumHex;
  size_t Size = 0;
  if (!(Header >> SumHex >> Size) || SumHex.size() != 16)
    return std::nullopt;
  if (Blob.size() - (Nl + 1) != Size)
    return std::nullopt; // truncated (or padded) payload
  std::string Value = Blob.substr(Nl + 1);
  if (hex16(fnv64(Value)) != SumHex)
    return std::nullopt;
  return Value;
}

/// POSIX write of \p Data to \p Path with O_EXCL (the name is unique by
/// construction; a collision means something is deeply wrong, so fail)
/// and an fsync before close — after rename, a crash cannot leave the
/// final name pointing at unwritten blocks.
bool writeFileDurable(const std::string &Path, const std::string &Data) {
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (Fd < 0)
    return false;
  const char *P = Data.data();
  size_t N = Data.size();
  bool Ok = true;
  while (N > 0) {
    ssize_t W = ::write(Fd, P, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      Ok = false;
      break;
    }
    P += W;
    N -= static_cast<size_t>(W);
  }
  if (Ok)
    Ok = ::fsync(Fd) == 0;
  Ok = (::close(Fd) == 0) && Ok;
  if (!Ok)
    ::unlink(Path.c_str());
  return Ok;
}

/// Per-process sequence for temp-file uniqueness. Combined with the pid,
/// two writers can never share a temp name: different processes differ
/// in pid, different threads (or successive stores) in sequence number.
std::atomic<uint64_t> TempSeq{0};

} // namespace

bool PersistentCache::open(const std::string &Directory,
                           const std::string &Ns, unsigned Ver) {
  std::error_code EC;
  fs::create_directories(Directory, EC);
  if (EC || !fs::is_directory(Directory, EC))
    return false;
  Dir = Directory;
  Namespace = Ns;
  Version = Ver;
  MemEnabled = false;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.clear();
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  MemHits = MemMisses = DiskHits = DiskMisses = Stores = Corrupt = 0;
  return true;
}

bool PersistentCache::openTiered(const std::string &Directory,
                                 const std::string &Ns, unsigned Ver) {
  if (!open(Directory, Ns, Ver))
    return false;
  MemEnabled = true;
  return true;
}

void PersistentCache::openMemory() {
  Dir.clear();
  MemEnabled = true;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.clear();
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  MemHits = MemMisses = DiskHits = DiskMisses = Stores = Corrupt = 0;
}

std::string PersistentCache::entryPath(uint64_t Key) const {
  return Dir + "/" + Namespace + "-" + hex16(Key) + ".v" +
         std::to_string(Version);
}

void PersistentCache::quarantine(const std::string &Path,
                                 const char *Why) const {
  // Rename aside rather than delete: the corpse is evidence for humans
  // debugging a flaky disk, and the unique suffix keeps two processes
  // quarantining the same entry from racing. If the rename fails (e.g.
  // the other process won), fall back to removal; either way the entry
  // is never read again.
  std::string Aside = Path + ".quarantined." +
                      std::to_string(static_cast<long>(::getpid()));
  std::error_code EC;
  fs::rename(Path, Aside, EC);
  if (EC)
    fs::remove(Path, EC);
  (void)Why;
  metricAdd("cache.disk.corrupt");
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Corrupt;
}

std::optional<std::string> PersistentCache::load(uint64_t Key) const {
  if (!enabled())
    return std::nullopt;

  // Hot tier: one shard lock, no I/O, no checksum work. Its counters are
  // deliberately distinct from the disk tier's — "the daemon is warm"
  // and "the disk carried verdicts across runs" are different stories.
  if (MemEnabled) {
    Shard &S = shardFor(Key);
    std::unique_lock<std::mutex> ShardLock(S.M);
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      std::string Value = It->second;
      ShardLock.unlock();
      metricAdd("cache.mem.hits");
      std::lock_guard<std::mutex> Lock(Mutex);
      ++MemHits;
      return Value;
    }
    ShardLock.unlock();
    metricAdd("cache.mem.misses");
    std::lock_guard<std::mutex> Lock(Mutex);
    ++MemMisses;
  }

  if (!diskEnabled())
    return std::nullopt;

  std::string Path = entryPath(Key);
  std::string Blob;
  {
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      metricAdd("cache.disk.misses");
      std::lock_guard<std::mutex> Lock(Mutex);
      ++DiskMisses;
      return std::nullopt;
    }
    std::ostringstream Out;
    Out << In.rdbuf();
    Blob = Out.str();
  }
  std::optional<std::string> Value = decodeEntry(Blob);
  if (!Value) {
    // Never trust a failed checksum: quarantine the entry and miss, so
    // the caller re-verifies instead of consuming corruption.
    quarantine(Path, "load");
    metricAdd("cache.disk.misses");
    std::lock_guard<std::mutex> Lock(Mutex);
    ++DiskMisses;
    return std::nullopt;
  }
  // Promote to the hot tier: the next request for this key is a memory
  // hit, whatever thread it arrives on.
  if (MemEnabled) {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> ShardLock(S.M);
    S.Map[Key] = *Value;
  }
  metricAdd("cache.disk.hits");
  std::lock_guard<std::mutex> Lock(Mutex);
  ++DiskHits;
  return Value;
}

void PersistentCache::store(uint64_t Key, const std::string &Value) const {
  if (!enabled())
    return;

  if (MemEnabled) {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> ShardLock(S.M);
    S.Map[Key] = Value;
  }

  if (!diskEnabled()) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stores;
    return;
  }

  // Write-then-rename: the entry appears atomically under its final
  // name. The temp name is unique per (pid, sequence) — concurrent
  // writers of the same key, in this process or another, each write
  // their own temp and the renames settle on one complete value.
  std::string Final = entryPath(Key);
  std::string Temp = Final + ".tmp." +
                     std::to_string(static_cast<long>(::getpid())) + "." +
                     std::to_string(
                         TempSeq.fetch_add(1, std::memory_order_relaxed));

  std::string Entry = encodeEntry(Value);
  // Fault-injection: model a torn write that somehow reached the final
  // name (crashed writer + non-atomic filesystem) by installing an entry
  // whose payload is cut in half. load() must quarantine it.
  if (faultFires(faults::CacheTruncateWrite))
    Entry.resize(Entry.size() - Value.size() / 2);

  if (!writeFileDurable(Temp, Entry))
    return; // cache is best-effort; never an error
  std::error_code EC;
  fs::rename(Temp, Final, EC);
  if (EC) {
    fs::remove(Temp, EC);
    return;
  }
  metricAdd("cache.disk.stores");
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stores;
}

unsigned PersistentCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return MemHits + DiskHits;
}
unsigned PersistentCache::misses() const {
  // A combined miss is a lookup no tier could serve: disk misses when a
  // disk tier exists (every disk probe was preceded by a mem miss),
  // otherwise the hot tier's misses.
  std::lock_guard<std::mutex> Lock(Mutex);
  return diskEnabled() ? DiskMisses : MemMisses;
}
unsigned PersistentCache::memHits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return MemHits;
}
unsigned PersistentCache::memMisses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return MemMisses;
}
unsigned PersistentCache::diskHits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return DiskHits;
}
unsigned PersistentCache::diskMisses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return DiskMisses;
}
unsigned PersistentCache::stores() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stores;
}
unsigned PersistentCache::corrupt() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Corrupt;
}
