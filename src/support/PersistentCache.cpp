//===- PersistentCache.cpp ------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/PersistentCache.h"

#include "support/Telemetry.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace cobalt;
using namespace cobalt::support;
namespace fs = std::filesystem;

bool PersistentCache::open(const std::string &Directory,
                           const std::string &Ns, unsigned Ver) {
  std::error_code EC;
  fs::create_directories(Directory, EC);
  if (EC || !fs::is_directory(Directory, EC))
    return false;
  Dir = Directory;
  Namespace = Ns;
  Version = Ver;
  Hits = Misses = Stores = 0;
  return true;
}

std::string PersistentCache::entryPath(uint64_t Key) const {
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(Key));
  return Dir + "/" + Namespace + "-" + Hex + ".v" +
         std::to_string(Version);
}

std::optional<std::string> PersistentCache::load(uint64_t Key) const {
  if (!enabled())
    return std::nullopt;
  std::ifstream In(entryPath(Key), std::ios::binary);
  if (!In) {
    metricAdd("cache.disk.misses");
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Misses;
    return std::nullopt;
  }
  std::ostringstream Out;
  Out << In.rdbuf();
  metricAdd("cache.disk.hits");
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Hits;
  return Out.str();
}

void PersistentCache::store(uint64_t Key, const std::string &Value) const {
  if (!enabled())
    return;
  // Write-then-rename: the entry appears atomically under its final
  // name. A per-thread temp suffix keeps concurrent writers of the same
  // key from clobbering each other's half-written temp.
  std::string Final = entryPath(Key);
  std::ostringstream Suffix;
  Suffix << ".tmp." << std::this_thread::get_id();
  std::string Temp = Final + Suffix.str();
  {
    std::ofstream Out(Temp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return; // cache is best-effort; never an error
    Out << Value;
    if (!Out.good())
      return;
  }
  std::error_code EC;
  fs::rename(Temp, Final, EC);
  if (EC) {
    fs::remove(Temp, EC);
    return;
  }
  metricAdd("cache.disk.stores");
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stores;
}

unsigned PersistentCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}
unsigned PersistentCache::misses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}
unsigned PersistentCache::stores() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stores;
}
