//===- Subprocess.h - Forked worker processes with framed IPC ---*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-isolation primitive under checker::ProverWorkerPool
/// (DESIGN.md §12). A `Subprocess` is a forked child of the current
/// process connected to the parent by one AF_UNIX stream socketpair, over
/// which both sides speak a length-prefixed frame protocol:
///
///   frame := uint32 payload-length (native endian) ++ payload bytes
///
/// Design points:
///
///  * **Fork, not exec.** The child inherits the parent's address space,
///    so complex C++ state (prepared proof obligations, the label
///    registry, Z3 axiomatizations) crosses the boundary for free; only
///    the small *results* are serialized back. The child must treat the
///    inherited world as read-only scaffolding: it runs the supplied
///    entry function on its single thread and leaves via _exit (never
///    exit — the parent's atexit handlers and stdio buffers are not the
///    child's to run or flush).
///
///  * **Sockets, not pipes.** send() with MSG_NOSIGNAL turns a
///    peer-crashed write into an EPIPE error return instead of a
///    process-killing SIGPIPE, without touching global signal state.
///
///  * **Watchdog reads.** readFrame() takes a wall deadline and an rss
///    budget: it polls the socket in small slices, checking the child's
///    /proc/<pid>/statm between slices, and reports Timeout / RssExceeded
///    distinctly so the supervisor can kill and classify. A crashed child
///    surfaces as Eof (possibly mid-frame — a torn frame is Eof, never
///    partial data).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_SUBPROCESS_H
#define COBALT_SUPPORT_SUBPROCESS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace cobalt {
namespace support {

/// Outcome of one framed read (the supervisor dispatches on this).
enum class IoStatus {
  IO_Ok,          ///< A complete frame arrived.
  IO_Eof,         ///< Peer closed (or died) — includes torn frames.
  IO_Timeout,     ///< The wall deadline expired with the frame incomplete.
  IO_RssExceeded, ///< The child's resident set passed the budget.
  IO_Error,       ///< A local I/O error (bad fd, EPIPE on write, ...).
};

/// Short human-readable tag for messages ("eof", "timeout", ...).
const char *ioStatusName(IoStatus S);

class Subprocess {
public:
  /// Runs in the child with the child end of the socketpair; when it
  /// returns the child _exits with the returned status. Must not touch
  /// parent-owned threads, pools, or files.
  using ChildMain = std::function<int(int SocketFd)>;

  Subprocess() = default;
  ~Subprocess(); ///< kill() + reap if still running.

  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;

  /// Forks a child running \p Main. \p CloseInChild lists parent-side fds
  /// of *other* subprocesses for the child to close first, so siblings do
  /// not hold each other's sockets open past their death. Returns false
  /// (and stays unstarted) when socketpair() or fork() fails.
  bool spawn(const ChildMain &Main,
             const std::vector<int> &CloseInChild = {});

  bool started() const { return Pid > 0; }
  pid_t pid() const { return Pid; }
  int socketFd() const { return Fd; }

  /// Non-blocking liveness probe (waitpid WNOHANG; reaps on exit).
  bool alive();

  /// SIGKILLs and reaps the child. Safe to call repeatedly / unstarted.
  void kill();

  /// Raw waitpid status of the reaped child (-1 while running/unstarted).
  /// kill() and alive() both reap; whoever reaps records the status.
  int exitStatus() const { return Status; }

  /// Resident set size read from /proc/<pid>/statm, or -1 when the child
  /// is gone or /proc is unavailable (non-Linux).
  long rssBytes() const;

  /// Sends one frame; false on any short write or EPIPE (peer dead).
  bool writeFrame(const std::string &Payload) {
    return writeFrame(Fd, Payload);
  }

  /// Receives one frame with supervision: fails IO_Timeout once
  /// \p DeadlineMs elapses (<= 0 = wait forever) and IO_RssExceeded when
  /// the child's rss *grows* by more than \p RssLimitBytes over its level
  /// at the start of this read (<= 0 = no rss watch). Growth, not an
  /// absolute ceiling: a forked child carries the parent's whole
  /// resident set on its books from birth.
  IoStatus readFrame(std::string &Out, int64_t DeadlineMs,
                     long RssLimitBytes = 0);

  /// \name Static framing helpers (used by the child side too).
  /// @{
  static bool writeFrame(int SocketFd, const std::string &Payload);
  /// Blocking read of one frame; IO_Eof on close / torn frame.
  static IoStatus readFrameBlocking(int SocketFd, std::string &Out);
  /// Deadline read of one frame on an arbitrary socket (no child to
  /// watch, so no rss budget): the client side of a cobaltd connection
  /// uses this so a wedged server surfaces as IO_Timeout rather than a
  /// hang. \p DeadlineMs <= 0 waits forever.
  static IoStatus readFrameDeadline(int SocketFd, std::string &Out,
                                    int64_t DeadlineMs);
  /// Deliberately torn frame: a header describing \p Payload followed by
  /// only the first half of its bytes (fault-injection support).
  static void writeTornFrame(int SocketFd, const std::string &Payload);
  /// @}

private:
  pid_t Pid = -1;
  int Fd = -1;
  int Status = -1;
};

} // namespace support
} // namespace cobalt

#endif // COBALT_SUPPORT_SUBPROCESS_H
