//===- PersistentCache.h - Two-tier fingerprint-keyed KV store --*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, thread-safe, crash-tolerant, *self-healing* key→blob store
/// backing the checker's verdict cache across process runs
/// (`cobaltc --cache-dir`) and across concurrent requests inside one
/// `cobaltd` process. The design follows the standard prover-cache
/// recipe (cf. Souper's persistent solver-result cache): the key is a
/// 64-bit structural fingerprint of the query, the value an opaque
/// serialized blob the *caller* versions and validates.
///
/// ## Tiers
///
/// Since the service PR the store is **two-tier**:
///
///  * **Hot tier** — a sharded in-memory map (16 shards keyed by the low
///    bits of the key, one mutex each, so concurrent requests rarely
///    contend). Populated by stores and by disk hits; shared by every
///    request going through one `CobaltService`. Counted as
///    `cache.mem.hits` / `cache.mem.misses`, *distinct* from the disk
///    counters — a warm daemon serves from memory and the telemetry
///    summary must show that.
///  * **Disk tier** — the PR-2/PR-5 on-disk entry-per-file store,
///    consulted only on a hot-tier miss. Counted as `cache.disk.hits` /
///    `cache.disk.misses`. Optional: openMemory() gives a hot-tier-only
///    store for cache-dir-less services.
///
/// Invariants of the disk tier (DESIGN.md §12.4):
///
///  * One entry = one file `<ns>-<16 hex digits>.v<version>` in the cache
///    directory. Writes go to a uniquely named temp file in the same
///    directory (pid + per-process sequence number, so concurrent
///    writers — threads *or* processes — never share a temp), are
///    fsync'd, and renamed into place: readers never observe a torn
///    entry via the normal write path.
///  * Every entry carries a checksum header over its payload. load()
///    verifies it; an entry that fails (truncated, bit-flipped, written
///    by a crashed process through some non-atomic channel) is
///    **quarantined** — renamed aside so it is never read again — and
///    reported as a miss. The caller re-verifies; a corrupt cache can
///    slow the pipeline down but can never feed it a wrong verdict.
///  * The namespace + version are part of the file name: bumping the
///    serialization version orphans old entries instead of misreading
///    them.
///  * Unreadable / missing / corrupt entries are misses, never errors —
///    the cache is an accelerator, the prover remains the source of
///    truth.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_PERSISTENTCACHE_H
#define COBALT_SUPPORT_PERSISTENTCACHE_H

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace cobalt {
namespace support {

class PersistentCache {
public:
  /// A disabled cache: every load misses, every store is dropped.
  PersistentCache() = default;

  /// Binds the cache to \p Dir (created if absent) with entries named
  /// `<Namespace>-<key>.v<Version>`, disk tier only (the PR-2 one-shot
  /// behavior: single-process runs already keep decoded values in the
  /// checker's own map, so a hot tier would only mask disk faults).
  /// Returns false (and stays disabled) when the directory cannot be
  /// created or is not writable.
  bool open(const std::string &Dir, const std::string &Namespace,
            unsigned Version);

  /// Two-tier mode: open() plus the in-memory hot tier. The store every
  /// request of a CobaltService shares.
  bool openTiered(const std::string &Dir, const std::string &Namespace,
                  unsigned Version);

  /// Enables the hot tier only — no disk behind it. For services that
  /// run without a --cache-dir but still want cross-request sharing.
  void openMemory();

  bool enabled() const { return MemEnabled || !Dir.empty(); }
  bool diskEnabled() const { return !Dir.empty(); }
  const std::string &directory() const { return Dir; }

  /// Hot tier first, then the checksum-verified disk tier (corrupt disk
  /// entries are quarantined and reported as misses — see file comment).
  /// A disk hit populates the hot tier.
  std::optional<std::string> load(uint64_t Key) const;
  void store(uint64_t Key, const std::string &Value) const;

  /// Observability. hits()/misses() are the *combined* lookup outcome
  /// (what callers of load() observed); the per-tier counters split them
  /// so "warm daemon" (mem) and "warm disk from a prior run" read
  /// differently in the telemetry summary.
  unsigned hits() const;
  unsigned misses() const;
  unsigned memHits() const;
  unsigned memMisses() const;
  unsigned diskHits() const;
  unsigned diskMisses() const;
  unsigned stores() const;
  unsigned corrupt() const;

private:
  std::string entryPath(uint64_t Key) const;
  /// Moves a failed entry aside (never read again) and counts it.
  void quarantine(const std::string &Path, const char *Why) const;

  std::string Dir; ///< Empty = no disk tier.
  std::string Namespace;
  unsigned Version = 0;
  bool MemEnabled = false; ///< Hot tier on (open()/openMemory() set it).

  /// Hot tier: sharded by key so concurrent requests rarely share a
  /// lock (mirrors the MetricsRegistry sharding).
  static constexpr size_t NumShards = 16;
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<uint64_t, std::string> Map;
  };
  Shard &shardFor(uint64_t Key) const { return Shards[Key % NumShards]; }
  mutable std::array<Shard, NumShards> Shards;

  mutable std::mutex Mutex; ///< Guards counters; file ops are atomic.
  mutable unsigned MemHits = 0, MemMisses = 0, DiskHits = 0,
                   DiskMisses = 0, Stores = 0, Corrupt = 0;
};

} // namespace support
} // namespace cobalt

#endif // COBALT_SUPPORT_PERSISTENTCACHE_H
