//===- PersistentCache.h - On-disk fingerprint-keyed KV store ---*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, thread-safe, crash-tolerant key→blob store backing the
/// checker's verdict cache across process runs (`cobaltc --cache-dir`).
/// The design follows the standard prover-cache recipe (cf. Souper's
/// persistent solver-result cache): the key is a 64-bit structural
/// fingerprint of the query, the value an opaque serialized blob the
/// *caller* versions and validates.
///
/// Invariants:
///
///  * One entry = one file `<ns>-<16 hex digits>.v<version>` in the cache
///    directory. Writes go to a temp file in the same directory and are
///    renamed into place, so readers never observe a torn entry and
///    concurrent writers of the same key settle on one complete value.
///  * The namespace + version are part of the file name: bumping the
///    serialization version orphans old entries instead of misreading
///    them.
///  * Unreadable / missing entries are misses, never errors — the cache
///    is an accelerator, the prover remains the source of truth.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_PERSISTENTCACHE_H
#define COBALT_SUPPORT_PERSISTENTCACHE_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace cobalt {
namespace support {

class PersistentCache {
public:
  /// A disabled cache: every load misses, every store is dropped.
  PersistentCache() = default;

  /// Binds the cache to \p Dir (created if absent) with entries named
  /// `<Namespace>-<key>.v<Version>`. Returns false (and stays disabled)
  /// when the directory cannot be created or is not writable.
  bool open(const std::string &Dir, const std::string &Namespace,
            unsigned Version);

  bool enabled() const { return !Dir.empty(); }
  const std::string &directory() const { return Dir; }

  std::optional<std::string> load(uint64_t Key) const;
  void store(uint64_t Key, const std::string &Value) const;

  /// Observability: entries served / missed / written since open().
  unsigned hits() const;
  unsigned misses() const;
  unsigned stores() const;

private:
  std::string entryPath(uint64_t Key) const;

  std::string Dir; ///< Empty = disabled.
  std::string Namespace;
  unsigned Version = 0;
  mutable std::mutex Mutex; ///< Guards counters; file ops are atomic.
  mutable unsigned Hits = 0, Misses = 0, Stores = 0;
};

} // namespace support
} // namespace cobalt

#endif // COBALT_SUPPORT_PERSISTENTCACHE_H
