//===- PersistentCache.h - On-disk fingerprint-keyed KV store ---*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, thread-safe, crash-tolerant, *self-healing* key→blob store
/// backing the checker's verdict cache across process runs
/// (`cobaltc --cache-dir`). The design follows the standard prover-cache
/// recipe (cf. Souper's persistent solver-result cache): the key is a
/// 64-bit structural fingerprint of the query, the value an opaque
/// serialized blob the *caller* versions and validates.
///
/// Invariants (DESIGN.md §12.4):
///
///  * One entry = one file `<ns>-<16 hex digits>.v<version>` in the cache
///    directory. Writes go to a uniquely named temp file in the same
///    directory (pid + per-process sequence number, so concurrent
///    writers — threads *or* processes — never share a temp), are
///    fsync'd, and renamed into place: readers never observe a torn
///    entry via the normal write path.
///  * Every entry carries a checksum header over its payload. load()
///    verifies it; an entry that fails (truncated, bit-flipped, written
///    by a crashed process through some non-atomic channel) is
///    **quarantined** — renamed aside so it is never read again — and
///    reported as a miss. The caller re-verifies; a corrupt cache can
///    slow the pipeline down but can never feed it a wrong verdict.
///  * The namespace + version are part of the file name: bumping the
///    serialization version orphans old entries instead of misreading
///    them.
///  * Unreadable / missing / corrupt entries are misses, never errors —
///    the cache is an accelerator, the prover remains the source of
///    truth.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_PERSISTENTCACHE_H
#define COBALT_SUPPORT_PERSISTENTCACHE_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace cobalt {
namespace support {

class PersistentCache {
public:
  /// A disabled cache: every load misses, every store is dropped.
  PersistentCache() = default;

  /// Binds the cache to \p Dir (created if absent) with entries named
  /// `<Namespace>-<key>.v<Version>`. Returns false (and stays disabled)
  /// when the directory cannot be created or is not writable.
  bool open(const std::string &Dir, const std::string &Namespace,
            unsigned Version);

  bool enabled() const { return !Dir.empty(); }
  const std::string &directory() const { return Dir; }

  /// Checksum-verified load; corrupt entries are quarantined and
  /// reported as misses (see file comment).
  std::optional<std::string> load(uint64_t Key) const;
  void store(uint64_t Key, const std::string &Value) const;

  /// Observability: entries served / missed / written / quarantined as
  /// corrupt since open().
  unsigned hits() const;
  unsigned misses() const;
  unsigned stores() const;
  unsigned corrupt() const;

private:
  std::string entryPath(uint64_t Key) const;
  /// Moves a failed entry aside (never read again) and counts it.
  void quarantine(const std::string &Path, const char *Why) const;

  std::string Dir; ///< Empty = disabled.
  std::string Namespace;
  unsigned Version = 0;
  mutable std::mutex Mutex; ///< Guards counters; file ops are atomic.
  mutable unsigned Hits = 0, Misses = 0, Stores = 0, Corrupt = 0;
};

} // namespace support
} // namespace cobalt

#endif // COBALT_SUPPORT_PERSISTENTCACHE_H
