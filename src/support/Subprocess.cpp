//===- Subprocess.cpp -----------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace cobalt;
using namespace cobalt::support;

namespace {

int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Writes exactly N bytes, retrying on EINTR and short sends. MSG_NOSIGNAL
/// keeps a dead peer from raising SIGPIPE; the EPIPE error return is the
/// signal the supervisor actually wants.
bool sendAll(int Fd, const void *Buf, size_t N) {
  const char *P = static_cast<const char *>(Buf);
  while (N > 0) {
    ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

/// Blocking receive of exactly N bytes. Returns IO_Ok, IO_Eof (peer
/// closed before N bytes arrived), or IO_Error.
IoStatus recvAll(int Fd, void *Buf, size_t N) {
  char *P = static_cast<char *>(Buf);
  while (N > 0) {
    ssize_t R = ::recv(Fd, P, N, 0);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return IoStatus::IO_Error;
    }
    if (R == 0)
      return IoStatus::IO_Eof;
    P += R;
    N -= static_cast<size_t>(R);
  }
  return IoStatus::IO_Ok;
}

/// Sane upper bound on one frame: obligation results are small; anything
/// bigger is a corrupted length header from a torn peer.
constexpr uint32_t MaxFrameBytes = 64u << 20;

} // namespace

const char *support::ioStatusName(IoStatus S) {
  switch (S) {
  case IoStatus::IO_Ok:
    return "ok";
  case IoStatus::IO_Eof:
    return "eof";
  case IoStatus::IO_Timeout:
    return "timeout";
  case IoStatus::IO_RssExceeded:
    return "rss_exceeded";
  case IoStatus::IO_Error:
    return "io_error";
  }
  return "io_error";
}

Subprocess::~Subprocess() {
  kill();
  if (Fd >= 0)
    ::close(Fd);
}

bool Subprocess::spawn(const ChildMain &Main,
                       const std::vector<int> &CloseInChild) {
  int Pair[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair) != 0)
    return false;

  pid_t Child = ::fork();
  if (Child < 0) {
    ::close(Pair[0]);
    ::close(Pair[1]);
    return false;
  }
  if (Child == 0) {
    // Child: single-threaded from here on. Drop the parent side of our
    // own socket and every sibling fd we inherited, then serve.
    ::close(Pair[0]);
    for (int Sibling : CloseInChild)
      if (Sibling >= 0 && Sibling != Pair[1])
        ::close(Sibling);
    int Exit = 0;
    try {
      Exit = Main(Pair[1]);
    } catch (...) {
      Exit = 111; // an escaped exception is a crash, not a result
    }
    ::_exit(Exit);
  }
  ::close(Pair[1]);
  Pid = Child;
  Fd = Pair[0];
  Status = -1;
  return true;
}

bool Subprocess::alive() {
  if (Pid <= 0)
    return false;
  int S = 0;
  pid_t R = ::waitpid(Pid, &S, WNOHANG);
  if (R == Pid) {
    Status = S;
    Pid = -1;
    return false;
  }
  return R == 0;
}

void Subprocess::kill() {
  if (Pid <= 0)
    return;
  ::kill(Pid, SIGKILL);
  int S = 0;
  if (::waitpid(Pid, &S, 0) == Pid)
    Status = S;
  Pid = -1;
}

long Subprocess::rssBytes() const {
  if (Pid <= 0)
    return -1;
  char Path[64];
  std::snprintf(Path, sizeof(Path), "/proc/%d/statm",
                static_cast<int>(Pid));
  std::FILE *F = std::fopen(Path, "r");
  if (!F)
    return -1;
  long SizePages = 0, RssPages = 0;
  int Got = std::fscanf(F, "%ld %ld", &SizePages, &RssPages);
  std::fclose(F);
  if (Got != 2)
    return -1;
  return RssPages * static_cast<long>(::sysconf(_SC_PAGESIZE));
}

bool Subprocess::writeFrame(int SocketFd, const std::string &Payload) {
  if (SocketFd < 0 || Payload.size() > MaxFrameBytes)
    return false;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  return sendAll(SocketFd, &Len, sizeof(Len)) &&
         sendAll(SocketFd, Payload.data(), Payload.size());
}

void Subprocess::writeTornFrame(int SocketFd, const std::string &Payload) {
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  sendAll(SocketFd, &Len, sizeof(Len));
  sendAll(SocketFd, Payload.data(), Payload.size() / 2);
}

IoStatus Subprocess::readFrameBlocking(int SocketFd, std::string &Out) {
  uint32_t Len = 0;
  IoStatus S = recvAll(SocketFd, &Len, sizeof(Len));
  if (S != IoStatus::IO_Ok)
    return S;
  if (Len > MaxFrameBytes)
    return IoStatus::IO_Error;
  Out.resize(Len);
  if (Len == 0)
    return IoStatus::IO_Ok;
  S = recvAll(SocketFd, Out.data(), Len);
  if (S != IoStatus::IO_Ok)
    Out.clear(); // a torn frame is EOF, never partial data
  return S;
}

IoStatus Subprocess::readFrameDeadline(int SocketFd, std::string &Out,
                                       int64_t DeadlineMs) {
  if (SocketFd < 0)
    return IoStatus::IO_Error;
  const int64_t Start = nowMs();
  const int SliceMs = 20;
  for (;;) {
    if (DeadlineMs > 0 && nowMs() - Start >= DeadlineMs)
      return IoStatus::IO_Timeout;
    struct pollfd P = {SocketFd, POLLIN, 0};
    int R = ::poll(&P, 1, SliceMs);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return IoStatus::IO_Error;
    }
    if (R == 0)
      continue;
    if (P.revents & POLLIN)
      return readFrameBlocking(SocketFd, Out);
    return IoStatus::IO_Eof;
  }
}

IoStatus Subprocess::readFrame(std::string &Out, int64_t DeadlineMs,
                               long RssLimitBytes) {
  if (Fd < 0)
    return IoStatus::IO_Error;

  // Supervised read: poll in short slices so the watchdog checks (wall
  // clock, child rss) interleave with the wait. Once bytes start
  // arriving, each recv below is blocking — fine, because a peer that
  // began a frame either finishes it promptly or dies (EOF).
  const int64_t Start = nowMs();
  const int SliceMs = 20;
  // The rss budget bounds *growth during this request*: a forked child
  // starts with the parent's whole resident set on its books (COW pages
  // count), so an absolute ceiling would trip on big parents that never
  // misbehaved. Baseline from the first successful /proc read.
  long RssBase = -1;
  for (;;) {
    if (DeadlineMs > 0 && nowMs() - Start >= DeadlineMs)
      return IoStatus::IO_Timeout;
    if (RssLimitBytes > 0) {
      long Rss = rssBytes();
      if (Rss >= 0 && RssBase < 0)
        RssBase = Rss;
      if (Rss >= 0 && Rss - RssBase > RssLimitBytes)
        return IoStatus::IO_RssExceeded;
    }
    struct pollfd P = {Fd, POLLIN, 0};
    int R = ::poll(&P, 1, SliceMs);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return IoStatus::IO_Error;
    }
    if (R == 0)
      continue;
    if (P.revents & POLLIN)
      return readFrameBlocking(Fd, Out);
    // POLLHUP/POLLERR without readable data: the peer is gone.
    return IoStatus::IO_Eof;
  }
}
