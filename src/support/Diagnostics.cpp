//===- Diagnostics.cpp ----------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace cobalt;

std::string Diagnostic::str() const {
  std::string Out;
  switch (Kind) {
  case DiagKind::DK_Error:
    Out = "error";
    break;
  case DiagKind::DK_Warning:
    Out = "warning";
    break;
  case DiagKind::DK_Note:
    Out = "note";
    break;
  }
  if (Loc.isValid())
    Out += " at " + Loc.str();
  Out += ": " + Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    if (!Out.empty())
      Out += '\n';
    Out += D.str();
  }
  return Out;
}
