//===- ThreadPool.cpp -----------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Telemetry.h"

#include <atomic>
#include <chrono>

using namespace cobalt;
using namespace cobalt::support;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
  if (Threads <= 1)
    return; // inline mode
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    ShuttingDown = true;
  }
  QueueReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop(unsigned Index) {
  // Worker I owns trace lane I + 1 for its whole lifetime (lane 0 is the
  // submitting thread); spans recorded from jobs land on this lane.
  TraceRecorder::setCurrentLane(Index + 1);
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueReady.wait(Lock,
                      [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutting down and drained
      Job = std::move(Queue.front());
      Queue.pop();
    }
    Job(); // jobs handle their own exceptions (see parallelFor)
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;

  if (inlineMode()) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }

  // Per-batch completion tracking, so parallelFor calls are independent
  // (no pool-global wait that a concurrent batch could confuse).
  struct Batch {
    std::mutex M;
    std::condition_variable Done;
    size_t Remaining;
    std::vector<std::exception_ptr> Errors;
  };
  auto B = std::make_shared<Batch>();
  B->Remaining = N;
  B->Errors.assign(N, nullptr);

  // Telemetry is sampled once per batch: the pointer stays valid for the
  // whole call (parallelFor blocks until the batch drains), and jobs can
  // read it without touching the ambient atomic again. Wait/exec
  // histograms carry wall noise and are for humans; the jobs counter and
  // queue high-water gauge are deterministic per batch shape.
  Telemetry *Telem = Telemetry::active();
  if (Telem)
    Telem->Metrics.add("threadpool.jobs", N);
  auto Enqueued = std::chrono::steady_clock::now();

  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    for (size_t I = 0; I < N; ++I) {
      Queue.push([B, I, &Body, Telem, Enqueued] {
        auto Start = std::chrono::steady_clock::now();
        if (Telem)
          Telem->Metrics.observe(
              "threadpool.job_wait_seconds",
              std::chrono::duration<double>(Start - Enqueued).count());
        try {
          Body(I);
        } catch (...) {
          B->Errors[I] = std::current_exception(); // slot owned by this job
        }
        if (Telem)
          Telem->Metrics.observe(
              "threadpool.job_seconds",
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count());
        std::lock_guard<std::mutex> BatchLock(B->M);
        if (--B->Remaining == 0)
          B->Done.notify_all();
      });
    }
    if (Telem)
      Telem->Metrics.gaugeMax("threadpool.queue_depth_max",
                              static_cast<int64_t>(Queue.size()));
  }
  QueueReady.notify_all();

  // The submitting thread helps drain the queue instead of idling: with
  // more batches than workers this avoids deadlock-free but wasteful
  // blocking, and on a loaded machine it shortens the critical path.
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      if (!Queue.empty()) {
        Job = std::move(Queue.front());
        Queue.pop();
      }
    }
    if (!Job)
      break;
    Job();
  }

  {
    std::unique_lock<std::mutex> Lock(B->M);
    B->Done.wait(Lock, [&B] { return B->Remaining == 0; });
  }

  // Deterministic rethrow: the lowest failing index, exactly what a
  // sequential for-loop would have surfaced first.
  for (size_t I = 0; I < N; ++I)
    if (B->Errors[I])
      std::rethrow_exception(B->Errors[I]);
}
