//===- FaultInjection.h - Deterministic fault injection ---------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness. Production code declares named
/// *injection points* (prover about to run, rewrite in flight, interpreter
/// about to step); a process-wide plan decides which hits of which points
/// actually fire. Tests and benches use it to exercise every degradation
/// path of the fault-tolerant pipeline — forced prover timeouts, exceptions
/// thrown mid-rewrite, interpreters going stuck — without depending on
/// real resource exhaustion.
///
/// The plan is configured programmatically (tests) or from the
/// environment (CLI runs, CI):
///
/// \code
///   COBALT_FAULTS="checker.force_timeout,engine.throw_mid_rewrite@2"
///   COBALT_FAULT_SEED=7
/// \endcode
///
/// Each comma-separated clause names a site with an optional trigger:
///
///   site        every hit fires
///   site@N      only the Nth hit fires (1-based)
///   site%P      each hit fires with probability P percent, decided by a
///               counter-keyed hash of (site, hit index, seed) — fully
///               deterministic for a fixed seed, no global RNG state.
///   site=V      a *payload* rule: the site never "fires" as a fault, but
///               faultPayload() returns V there (e.g. a simulated prover
///               latency in milliseconds for scheduler benches).
///
/// ## Concurrency and determinism
///
/// Injection points are zero-cost when the plan is empty (one relaxed
/// atomic load); the harness itself is thread-safe. But raw hit counters
/// are *arrival-ordered*, which is meaningless once jobs run on a thread
/// pool. Parallel drivers therefore wrap each independent job in a
/// ScopedFaultKey carrying a stable 64-bit job fingerprint (a procedure
/// name hash, an obligation fingerprint). Within a scope, trigger
/// decisions are keyed on (site, job key, per-scope ordinal, seed)
/// instead of the global arrival counter:
///
///   site        fires every hit (unchanged)
///   site@N      fires on the Nth hit *within each job* (e.g. the Nth
///               solver attempt of every obligation)
///   site%P      fires per hit with probability P, hashed from the job
///               key + ordinal — the same hits fire at --jobs 1 and
///               --jobs 8, regardless of scheduling.
///
/// Global hit/fired counters are still maintained for observability.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_FAULTINJECTION_H
#define COBALT_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace cobalt {
namespace support {

/// The canonical injection-point names (single source of truth shared by
/// production code, tests, and benches).
namespace faults {
/// SoundnessChecker: the next solver attempt reports unknown(timeout)
/// without invoking Z3.
inline constexpr const char *CheckerForceTimeout = "checker.force_timeout";
/// SoundnessChecker: the next solver attempt reports a non-resource
/// unknown without invoking Z3.
inline constexpr const char *CheckerForceUnknown = "checker.force_unknown";
/// SoundnessChecker: payload site — each solver attempt sleeps this many
/// milliseconds first, modeling a slow / remote prover (the paper's
/// minutes-per-pass Simplify latencies). Used by bench_parallel to
/// measure dispatch overlap independently of single-core Z3 throughput.
inline constexpr const char *CheckerProverStallMs =
    "checker.prover_stall_ms";
/// Engine: applySites throws PassError(EK_PassPanic) right after a
/// rewrite landed, leaving the procedure half-transformed.
inline constexpr const char *EngineThrowMidRewrite =
    "engine.throw_mid_rewrite";
/// Interpreter: step() reports SR_Stuck regardless of the statement.
inline constexpr const char *InterpForceStuck = "interp.force_stuck";
/// Prover worker subprocess: _exit(42) instead of answering the request
/// (models a solver segfault / abort). Checked in the worker child under
/// the obligation's fault key, so the same obligations crash at every
/// --jobs width.
inline constexpr const char *WorkerCrash = "worker.crash";
/// Prover worker subprocess: sleep forever instead of answering; the
/// watchdog's wall budget must kill it.
inline constexpr const char *WorkerHang = "worker.hang";
/// Prover worker subprocess: allocate and touch memory until well past
/// any sane rss budget, then sleep; the watchdog's rss poll must kill it.
inline constexpr const char *WorkerOom = "worker.oom";
/// Prover worker subprocess: write a frame header followed by only half
/// the payload, then _exit — a torn response the parent must treat as a
/// crash, never as data.
inline constexpr const char *WorkerPartialWrite = "worker.partial_write";
/// PersistentCache: store() installs an entry whose payload was truncated
/// to half its length (with the checksum header describing the *full*
/// value) — the self-healing load path must quarantine it as corrupt.
inline constexpr const char *CacheTruncateWrite = "cache.truncate_write";
} // namespace faults

/// Process-wide fault plan. All state is per-site hit counters plus the
/// configured rules; reset() restores the no-faults state. Thread-safe;
/// see the file comment for how parallel drivers get determinism.
class FaultInjector {
public:
  /// The singleton. The first call loads COBALT_FAULTS / COBALT_FAULT_SEED
  /// from the environment so CLI binaries need no extra wiring.
  static FaultInjector &instance();

  /// Replaces the plan with \p Spec (see file comment for the grammar).
  /// Unknown site names are accepted (they simply never fire). Clears all
  /// hit counters. Not safe to call while jobs are in flight.
  void configure(const std::string &Spec, uint64_t Seed = 0);

  /// Loads the plan from COBALT_FAULTS / COBALT_FAULT_SEED (no-op when
  /// unset).
  void configureFromEnv();

  /// Removes every rule and counter.
  void reset();

  /// True when no rules are configured (the fast path).
  bool empty() const {
    return !HasRules.load(std::memory_order_relaxed);
  }

  /// Called by an injection point: records the hit and decides whether
  /// this hit fires. Under an active ScopedFaultKey the decision is
  /// keyed (stable across job schedules); otherwise it is the legacy
  /// arrival-ordered one.
  bool shouldFire(const char *Site);

  /// Payload rules (`site=V`): the configured value, or 0 when the site
  /// has no payload rule. Records a hit when a payload is configured.
  long payload(const char *Site);

  /// Observability for tests: how often a site was hit / actually fired.
  unsigned hits(const std::string &Site) const;
  unsigned fired(const std::string &Site) const;

private:
  struct Rule {
    bool Always = false;
    unsigned Nth = 0;       ///< 1-based; 0 = not an @N rule.
    int Percent = -1;       ///< 0-100; -1 = not a %P rule.
    long Payload = 0;       ///< Meaningful iff HasPayload.
    bool HasPayload = false;
  };
  struct Counters {
    unsigned Hits = 0;
    unsigned Fired = 0;
  };

  std::map<std::string, Rule> Rules;
  mutable std::mutex Mutex; ///< Guards Rules + Stats.
  std::atomic<bool> HasRules{false};
  std::map<std::string, Counters> Stats;
  uint64_t Seed = 0;
  bool EnvLoaded = false;

  friend class ScopedFaultKey;
};

/// The one-line form used at injection points.
inline bool faultFires(const char *Site) {
  FaultInjector &FI = FaultInjector::instance();
  return !FI.empty() && FI.shouldFire(Site);
}

/// The one-line payload form (0 = no payload configured).
inline long faultPayload(const char *Site) {
  FaultInjector &FI = FaultInjector::instance();
  return FI.empty() ? 0 : FI.payload(Site);
}

/// Marks the current thread as executing the job identified by \p Key
/// (a stable fingerprint: procedure-name hash, obligation fingerprint).
/// While active, fault decisions on this thread are keyed on
/// (site, Key, per-scope hit ordinal, seed) — independent of how jobs
/// interleave across threads, so `--jobs 8` fires exactly the faults
/// `--jobs 1` does. Scopes nest; the innermost wins.
class ScopedFaultKey {
public:
  explicit ScopedFaultKey(uint64_t Key);
  ~ScopedFaultKey();
  ScopedFaultKey(const ScopedFaultKey &) = delete;
  ScopedFaultKey &operator=(const ScopedFaultKey &) = delete;

  struct State; ///< Definition local to FaultInjection.cpp.

private:
  State *Prev; ///< Restored on destruction.
};

/// RAII plan for tests: installs a plan on construction, restores the
/// empty plan on destruction so no faults leak across test cases.
class ScopedFaultPlan {
public:
  explicit ScopedFaultPlan(const std::string &Spec, uint64_t Seed = 0) {
    FaultInjector::instance().configure(Spec, Seed);
  }
  ~ScopedFaultPlan() { FaultInjector::instance().reset(); }
  ScopedFaultPlan(const ScopedFaultPlan &) = delete;
  ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

} // namespace support
} // namespace cobalt

#endif // COBALT_SUPPORT_FAULTINJECTION_H
