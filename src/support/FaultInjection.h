//===- FaultInjection.h - Deterministic fault injection ---------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness. Production code declares named
/// *injection points* (prover about to run, rewrite in flight, interpreter
/// about to step); a process-wide plan decides which hits of which points
/// actually fire. Tests and benches use it to exercise every degradation
/// path of the fault-tolerant pipeline — forced prover timeouts, exceptions
/// thrown mid-rewrite, interpreters going stuck — without depending on
/// real resource exhaustion.
///
/// The plan is configured programmatically (tests) or from the
/// environment (CLI runs, CI):
///
/// \code
///   COBALT_FAULTS="checker.force_timeout,engine.throw_mid_rewrite@2"
///   COBALT_FAULT_SEED=7
/// \endcode
///
/// Each comma-separated clause names a site with an optional trigger:
///
///   site        every hit fires
///   site@N      only the Nth hit fires (1-based)
///   site%P      each hit fires with probability P percent, decided by a
///               counter-keyed hash of (site, hit index, seed) — fully
///               deterministic for a fixed seed, no global RNG state.
///
/// Injection points are zero-cost when the plan is empty (one branch on a
/// flag); the harness is not thread-safe (the pipeline is single-threaded).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_FAULTINJECTION_H
#define COBALT_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <map>
#include <string>

namespace cobalt {
namespace support {

/// The canonical injection-point names (single source of truth shared by
/// production code, tests, and benches).
namespace faults {
/// SoundnessChecker: the next solver attempt reports unknown(timeout)
/// without invoking Z3.
inline constexpr const char *CheckerForceTimeout = "checker.force_timeout";
/// SoundnessChecker: the next solver attempt reports a non-resource
/// unknown without invoking Z3.
inline constexpr const char *CheckerForceUnknown = "checker.force_unknown";
/// Engine: applySites throws PassError(EK_PassPanic) right after a
/// rewrite landed, leaving the procedure half-transformed.
inline constexpr const char *EngineThrowMidRewrite =
    "engine.throw_mid_rewrite";
/// Interpreter: step() reports SR_Stuck regardless of the statement.
inline constexpr const char *InterpForceStuck = "interp.force_stuck";
} // namespace faults

/// Process-wide fault plan. All state is per-site hit counters plus the
/// configured rules; reset() restores the no-faults state.
class FaultInjector {
public:
  /// The singleton. The first call loads COBALT_FAULTS / COBALT_FAULT_SEED
  /// from the environment so CLI binaries need no extra wiring.
  static FaultInjector &instance();

  /// Replaces the plan with \p Spec (see file comment for the grammar).
  /// Unknown site names are accepted (they simply never fire). Clears all
  /// hit counters.
  void configure(const std::string &Spec, uint64_t Seed = 0);

  /// Loads the plan from COBALT_FAULTS / COBALT_FAULT_SEED (no-op when
  /// unset).
  void configureFromEnv();

  /// Removes every rule and counter.
  void reset();

  /// True when no rules are configured (the fast path).
  bool empty() const { return Rules.empty(); }

  /// Called by an injection point: records the hit and decides whether
  /// this hit fires.
  bool shouldFire(const char *Site);

  /// Observability for tests: how often a site was hit / actually fired.
  unsigned hits(const std::string &Site) const;
  unsigned fired(const std::string &Site) const;

private:
  struct Rule {
    bool Always = false;
    unsigned Nth = 0;     ///< 1-based; 0 = not an @N rule.
    int Percent = -1;     ///< 0-100; -1 = not a %P rule.
  };
  struct Counters {
    unsigned Hits = 0;
    unsigned Fired = 0;
  };

  std::map<std::string, Rule> Rules;
  std::map<std::string, Counters> Stats;
  uint64_t Seed = 0;
  bool EnvLoaded = false;
};

/// The one-line form used at injection points.
inline bool faultFires(const char *Site) {
  FaultInjector &FI = FaultInjector::instance();
  return !FI.empty() && FI.shouldFire(Site);
}

/// RAII plan for tests: installs a plan on construction, restores the
/// empty plan on destruction so no faults leak across test cases.
class ScopedFaultPlan {
public:
  explicit ScopedFaultPlan(const std::string &Spec, uint64_t Seed = 0) {
    FaultInjector::instance().configure(Spec, Seed);
  }
  ~ScopedFaultPlan() { FaultInjector::instance().reset(); }
  ScopedFaultPlan(const ScopedFaultPlan &) = delete;
  ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

} // namespace support
} // namespace cobalt

#endif // COBALT_SUPPORT_FAULTINJECTION_H
