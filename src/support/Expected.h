//===- Expected.h - Unified error carrier for the pipeline ------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one result shape threaded through checker, engine, parsers, and
/// the `CobaltContext` facade. Before this header, every layer invented
/// its own `(bool, ErrorKind, string)` triple — ObligationResult carried
/// `Err` + `UnknownReason`, PassReport carried `Error` + `ErrorDetail`,
/// parsers returned `optional<T>` with the message hidden in a
/// DiagnosticEngine. Callers had to learn each dialect. Now:
///
///  * `support::Error` is the carrier of *what went wrong*: an ErrorKind
///    plus a human-readable message. Embedded by value in report structs
///    (an EK_None kind means "no failure").
///  * `support::Expected<T>` is the carrier of *either a T or an Error*,
///    for operations that produce a value or fail as a whole (parsing a
///    module, reading a file, building a context).
///
/// Both are deliberately minimal — no exceptions, no virtual anything —
/// so they can cross thread-pool job boundaries by value.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_EXPECTED_H
#define COBALT_SUPPORT_EXPECTED_H

#include "support/Errors.h"

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace cobalt {
namespace support {

/// What went wrong and why, in one dispatchable value. The default state
/// (EK_None, empty message) means "no failure", so report structs embed
/// an Error by value instead of a separate flag + kind + string.
struct Error {
  ErrorKind Kind = ErrorKind::EK_None;
  std::string Message;

  Error() = default;
  Error(ErrorKind Kind, std::string Message)
      : Kind(Kind), Message(std::move(Message)) {}

  /// True when this actually carries a failure.
  bool failed() const { return Kind != ErrorKind::EK_None; }
  explicit operator bool() const { return failed(); }

  /// Stable short name of the kind, for reports and JSON.
  const char *kindName() const { return errorKindName(Kind); }

  /// "kind: message" (or "none") — the uniform rendering used by the
  /// CLI and the examples.
  std::string str() const {
    if (!failed())
      return "none";
    return Message.empty() ? std::string(kindName())
                           : std::string(kindName()) + ": " + Message;
  }

  friend bool operator==(const Error &A, const Error &B) {
    return A.Kind == B.Kind && A.Message == B.Message;
  }
};

/// A value of type T, or the Error explaining why there is none.
/// `if (auto M = Ctx.parseModule(Text)) use(*M); else report(M.error());`
template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Value) : Storage(std::move(Value)) {}
  /*implicit*/ Expected(Error E) : Storage(std::move(E)) {
    assert(std::get<Error>(Storage).failed() &&
           "Expected constructed from a non-failure Error");
  }
  Expected(ErrorKind Kind, std::string Message)
      : Storage(Error(Kind, std::move(Message))) {}

  bool ok() const { return std::holds_alternative<T>(Storage); }
  explicit operator bool() const { return ok(); }

  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  T &value() {
    assert(ok() && "value() on failed Expected");
    return std::get<T>(Storage);
  }
  const T &value() const {
    assert(ok() && "value() on failed Expected");
    return std::get<T>(Storage);
  }

  const Error &error() const {
    assert(!ok() && "error() on successful Expected");
    return std::get<Error>(Storage);
  }

  /// Moves the value out (the Expected is left in a valid empty-error
  /// state; do not reuse).
  T take() {
    assert(ok() && "take() on failed Expected");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace support
} // namespace cobalt

#endif // COBALT_SUPPORT_EXPECTED_H
