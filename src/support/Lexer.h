//===- Lexer.h - Shared token stream for IL and Cobalt texts ----*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer shared by the intermediate-language parser and the
/// Cobalt DSL parser. Produces identifiers, integer literals, and
/// punctuation; keywords are recognized by the parsers from identifier
/// spellings so the two front-ends can have different keyword sets.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_LEXER_H
#define COBALT_SUPPORT_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cobalt {

/// Lexical category of a Token.
enum class TokenKind {
  TK_Ident,    ///< [A-Za-z_][A-Za-z0-9_']*
  TK_Int,      ///< decimal integer literal
  TK_Punct,    ///< one of the multi/single-char punctuators
  TK_Ellipsis, ///< "..." (used by Cobalt patterns)
  TK_End,      ///< end of input
  TK_Error     ///< unrecognized character (diagnosed)
};

/// One lexed token. \c Spelling views into the lexer's buffer and is valid
/// for the lifetime of the Lexer.
struct Token {
  TokenKind Kind = TokenKind::TK_End;
  std::string_view Spelling;
  int64_t IntValue = 0; ///< Valid when Kind == TK_Int.
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
  /// True for a punctuator with exactly this spelling.
  bool isPunct(std::string_view S) const {
    return Kind == TokenKind::TK_Punct && Spelling == S;
  }
  /// True for an identifier with exactly this spelling (keyword check).
  bool isIdent(std::string_view S) const {
    return Kind == TokenKind::TK_Ident && Spelling == S;
  }
};

/// Tokenizes a source buffer on demand. Comments run from "//" or "#" to
/// end of line. Multi-character punctuators are matched longest-first.
class Lexer {
public:
  Lexer(std::string_view Buffer, DiagnosticEngine &Diags)
      : Buffer(Buffer), Diags(Diags) {}

  /// Lexes and returns the next token, advancing the stream.
  Token lex();

  /// Returns the next token without consuming it.
  const Token &peek();

  /// Pushes a previously-lexed token back onto the stream; it will be the
  /// next token returned. Supports the two-token lookahead needed to
  /// distinguish `label:` from `var := ...`.
  void unlex(Token Tok);

  /// Current location (of the next token to be lexed).
  SourceLoc currentLoc();

private:
  Token lexImpl();
  void skipWhitespaceAndComments();
  char peekChar(unsigned Ahead = 0) const;
  char bumpChar();

  std::string_view Buffer;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
  std::vector<Token> Pushback;
};

} // namespace cobalt

#endif // COBALT_SUPPORT_LEXER_H
