//===- Lexer.cpp ----------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Lexer.h"

#include <cassert>
#include <cctype>

using namespace cobalt;

/// Punctuators, longest first so prefix-sharing spellings lex greedily.
static constexpr std::string_view Punctuators[] = {
    ":=", "=>", "->", "==", "!=", "<=", ">=", "&&", "||", "(", ")", "{",
    "}",  "[",  "]",  ";",  ",",  ":",  "*",  "&",  "=",  "<", ">", "+",
    "-",  "/",  "%",  "!",  "|",  ".",  "@",  "_",  "?",  "~"};

char Lexer::peekChar(unsigned Ahead) const {
  return Pos + Ahead < Buffer.size() ? Buffer[Pos + Ahead] : '\0';
}

char Lexer::bumpChar() {
  assert(Pos < Buffer.size() && "bump past end of buffer");
  char C = Buffer[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Buffer.size()) {
    char C = peekChar();
    if (std::isspace(static_cast<unsigned char>(C))) {
      bumpChar();
      continue;
    }
    if (C == '#' || (C == '/' && peekChar(1) == '/')) {
      while (Pos < Buffer.size() && peekChar() != '\n')
        bumpChar();
      continue;
    }
    break;
  }
}

const Token &Lexer::peek() {
  if (Pushback.empty())
    Pushback.push_back(lexImpl());
  return Pushback.back();
}

Token Lexer::lex() {
  if (!Pushback.empty()) {
    Token Tok = Pushback.back();
    Pushback.pop_back();
    return Tok;
  }
  return lexImpl();
}

void Lexer::unlex(Token Tok) { Pushback.push_back(std::move(Tok)); }

SourceLoc Lexer::currentLoc() { return peek().Loc; }

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

static bool isIdentBody(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '\'';
}

Token Lexer::lexImpl() {
  skipWhitespaceAndComments();

  Token Tok;
  Tok.Loc = {Line, Column};
  if (Pos >= Buffer.size()) {
    Tok.Kind = TokenKind::TK_End;
    return Tok;
  }

  size_t Start = Pos;
  char C = peekChar();

  if (isIdentStart(C)) {
    while (Pos < Buffer.size() && isIdentBody(peekChar()))
      bumpChar();
    Tok.Kind = TokenKind::TK_Ident;
    Tok.Spelling = Buffer.substr(Start, Pos - Start);
    // A lone "_" is the wildcard punctuator, not an identifier.
    if (Tok.Spelling == "_")
      Tok.Kind = TokenKind::TK_Punct;
    return Tok;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = 0;
    while (Pos < Buffer.size() &&
           std::isdigit(static_cast<unsigned char>(peekChar())))
      Value = Value * 10 + (bumpChar() - '0');
    Tok.Kind = TokenKind::TK_Int;
    Tok.Spelling = Buffer.substr(Start, Pos - Start);
    Tok.IntValue = Value;
    return Tok;
  }

  if (C == '.' && peekChar(1) == '.' && peekChar(2) == '.') {
    bumpChar();
    bumpChar();
    bumpChar();
    Tok.Kind = TokenKind::TK_Ellipsis;
    Tok.Spelling = Buffer.substr(Start, 3);
    return Tok;
  }

  for (std::string_view P : Punctuators) {
    if (Buffer.substr(Pos, P.size()) == P) {
      for (size_t I = 0; I < P.size(); ++I)
        bumpChar();
      Tok.Kind = TokenKind::TK_Punct;
      Tok.Spelling = Buffer.substr(Start, P.size());
      return Tok;
    }
  }

  bumpChar();
  Tok.Kind = TokenKind::TK_Error;
  Tok.Spelling = Buffer.substr(Start, 1);
  Diags.error(Tok.Loc, "unrecognized character '" +
                           std::string(Tok.Spelling) + "'");
  return Tok;
}
