//===- ThreadPool.h - Fixed-size worker pool for pipeline jobs --*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one thread pool the whole pipeline shares: the soundness checker
/// fans proof obligations into it (each job owns a fresh Z3 context), and
/// the pass manager fans per-procedure pipeline runs into it. A
/// CobaltContext owns exactly one pool sized by its `Jobs` config.
///
/// Design points:
///
///  * **Inline mode.** A pool with fewer than two workers executes jobs
///    inline on the submitting thread — `--jobs 1` is genuinely the
///    sequential pipeline, with zero thread machinery in the way. This is
///    what makes "parallel results are bit-identical to sequential"
///    testable: both paths run the same job bodies in the same order or
///    in a deterministic merge of it.
///
///  * **Deterministic fan-out.** `parallelFor(N, Body)` runs Body(0..N-1)
///    with results keyed by index, not by completion order; callers write
///    into index `I` of a pre-sized output vector, so collection order
///    never depends on scheduling.
///
///  * **Exception discipline.** A job that throws does not kill a worker:
///    parallelFor captures per-index exceptions and rethrows the
///    lowest-index one after the batch completes (again: deterministic,
///    matching what a sequential loop would have thrown first).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SUPPORT_THREADPOOL_H
#define COBALT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cobalt {
namespace support {

class ThreadPool {
public:
  /// \p Threads worker threads; 0 means "one per hardware thread"
  /// (std::thread::hardware_concurrency). With Threads <= 1 no workers
  /// are spawned and every job runs inline on the submitting thread.
  explicit ThreadPool(unsigned Threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Degree of parallelism: number of workers, or 1 in inline mode.
  unsigned jobs() const {
    return Workers.empty() ? 1u : static_cast<unsigned>(Workers.size());
  }
  bool inlineMode() const { return Workers.empty(); }

  /// Runs Body(I) for every I in [0, N), blocking until all complete.
  /// Inline mode runs them in index order on this thread. If any body
  /// throws, the exception of the lowest failing index is rethrown after
  /// the whole batch has finished (no job is abandoned half-run).
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

private:
  /// \p Index identifies the worker: it becomes trace lane Index + 1
  /// (lane 0 is the submitting/driver thread) via
  /// TraceRecorder::setCurrentLane.
  void workerLoop(unsigned Index);

  std::vector<std::thread> Workers;
  std::mutex QueueMutex;
  std::condition_variable QueueReady;
  std::queue<std::function<void()>> Queue;
  bool ShuttingDown = false;
};

} // namespace support
} // namespace cobalt

#endif // COBALT_SUPPORT_THREADPOOL_H
