//===- FaultInjection.cpp -------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <cstdlib>

using namespace cobalt;
using namespace cobalt::support;

namespace {

/// splitmix64: a small, well-mixed hash used to make %P rules
/// deterministic per (site, hit index, seed) without global RNG state.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t hashSite(const std::string &Site) {
  // FNV-1a; stable across runs and platforms.
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Site) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

} // namespace

FaultInjector &FaultInjector::instance() {
  static FaultInjector FI;
  if (!FI.EnvLoaded) {
    FI.EnvLoaded = true;
    FI.configureFromEnv();
  }
  return FI;
}

void FaultInjector::configure(const std::string &Spec, uint64_t NewSeed) {
  Rules.clear();
  Stats.clear();
  Seed = NewSeed;

  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Clause = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    // Trim surrounding spaces.
    while (!Clause.empty() && Clause.front() == ' ')
      Clause.erase(Clause.begin());
    while (!Clause.empty() && Clause.back() == ' ')
      Clause.pop_back();
    if (Clause.empty())
      continue;

    Rule R;
    std::string Site = Clause;
    if (size_t At = Clause.find('@'); At != std::string::npos) {
      Site = Clause.substr(0, At);
      R.Nth = static_cast<unsigned>(
          std::strtoul(Clause.c_str() + At + 1, nullptr, 10));
      if (R.Nth == 0)
        R.Nth = 1;
    } else if (size_t Pct = Clause.find('%'); Pct != std::string::npos) {
      Site = Clause.substr(0, Pct);
      long P = std::strtol(Clause.c_str() + Pct + 1, nullptr, 10);
      R.Percent = static_cast<int>(P < 0 ? 0 : (P > 100 ? 100 : P));
    } else {
      R.Always = true;
    }
    if (!Site.empty())
      Rules[Site] = R;
  }
}

void FaultInjector::configureFromEnv() {
  const char *Spec = std::getenv("COBALT_FAULTS");
  if (!Spec || !*Spec)
    return;
  const char *SeedText = std::getenv("COBALT_FAULT_SEED");
  uint64_t EnvSeed = SeedText ? std::strtoull(SeedText, nullptr, 10) : 0;
  configure(Spec, EnvSeed);
}

void FaultInjector::reset() {
  Rules.clear();
  Stats.clear();
  Seed = 0;
}

bool FaultInjector::shouldFire(const char *Site) {
  auto It = Rules.find(Site);
  if (It == Rules.end())
    return false;
  Counters &C = Stats[Site];
  unsigned Hit = ++C.Hits; // 1-based hit index
  const Rule &R = It->second;

  bool Fire = false;
  if (R.Always)
    Fire = true;
  else if (R.Nth != 0)
    Fire = Hit == R.Nth;
  else if (R.Percent >= 0)
    Fire = static_cast<int>(mix64(hashSite(Site) ^ (Seed * 0x9e3779b9ull) ^
                                  Hit) %
                            100) < R.Percent;
  if (Fire)
    ++C.Fired;
  return Fire;
}

unsigned FaultInjector::hits(const std::string &Site) const {
  auto It = Stats.find(Site);
  return It == Stats.end() ? 0 : It->second.Hits;
}

unsigned FaultInjector::fired(const std::string &Site) const {
  auto It = Stats.find(Site);
  return It == Stats.end() ? 0 : It->second.Fired;
}
