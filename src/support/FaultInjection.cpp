//===- FaultInjection.cpp -------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <cstdlib>

using namespace cobalt;
using namespace cobalt::support;

namespace {

/// splitmix64: a small, well-mixed hash used to make %P rules
/// deterministic per (site, hit index, seed) without global RNG state.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t hashSite(const std::string &Site) {
  // FNV-1a; stable across runs and platforms.
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Site) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

} // namespace

//===----------------------------------------------------------------------===//
// Keyed scopes (thread-local job identity).
//===----------------------------------------------------------------------===//

struct ScopedFaultKey::State {
  uint64_t Key;
  /// Per-scope, per-site hit ordinals — deterministic because each job's
  /// internal control flow is sequential even when jobs run in parallel.
  std::map<std::string, unsigned> SiteHits;
};

namespace {
thread_local ScopedFaultKey::State *ActiveFaultKey = nullptr;
} // namespace

ScopedFaultKey::ScopedFaultKey(uint64_t Key) : Prev(ActiveFaultKey) {
  ActiveFaultKey = new State{Key, {}};
}

ScopedFaultKey::~ScopedFaultKey() {
  delete ActiveFaultKey;
  ActiveFaultKey = Prev;
}

//===----------------------------------------------------------------------===//
// FaultInjector.
//===----------------------------------------------------------------------===//

FaultInjector &FaultInjector::instance() {
  static FaultInjector FI;
  if (!FI.EnvLoaded) {
    FI.EnvLoaded = true;
    FI.configureFromEnv();
  }
  return FI;
}

void FaultInjector::configure(const std::string &Spec, uint64_t NewSeed) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Rules.clear();
  Stats.clear();
  Seed = NewSeed;

  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Clause = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    // Trim surrounding spaces.
    while (!Clause.empty() && Clause.front() == ' ')
      Clause.erase(Clause.begin());
    while (!Clause.empty() && Clause.back() == ' ')
      Clause.pop_back();
    if (Clause.empty())
      continue;

    Rule R;
    std::string Site = Clause;
    if (size_t At = Clause.find('@'); At != std::string::npos) {
      Site = Clause.substr(0, At);
      R.Nth = static_cast<unsigned>(
          std::strtoul(Clause.c_str() + At + 1, nullptr, 10));
      if (R.Nth == 0)
        R.Nth = 1;
    } else if (size_t Pct = Clause.find('%'); Pct != std::string::npos) {
      Site = Clause.substr(0, Pct);
      long P = std::strtol(Clause.c_str() + Pct + 1, nullptr, 10);
      R.Percent = static_cast<int>(P < 0 ? 0 : (P > 100 ? 100 : P));
    } else if (size_t Eq = Clause.find('='); Eq != std::string::npos) {
      Site = Clause.substr(0, Eq);
      R.Payload = std::strtol(Clause.c_str() + Eq + 1, nullptr, 10);
      R.HasPayload = true;
    } else {
      R.Always = true;
    }
    if (!Site.empty())
      Rules[Site] = R;
  }
  HasRules.store(!Rules.empty(), std::memory_order_relaxed);
}

void FaultInjector::configureFromEnv() {
  const char *Spec = std::getenv("COBALT_FAULTS");
  if (!Spec || !*Spec)
    return;
  const char *SeedText = std::getenv("COBALT_FAULT_SEED");
  uint64_t EnvSeed = SeedText ? std::strtoull(SeedText, nullptr, 10) : 0;
  configure(Spec, EnvSeed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Rules.clear();
  Stats.clear();
  Seed = 0;
  HasRules.store(false, std::memory_order_relaxed);
}

bool FaultInjector::shouldFire(const char *Site) {
  std::unique_lock<std::mutex> Lock(Mutex);
  auto It = Rules.find(Site);
  if (It == Rules.end())
    return false;
  const Rule R = It->second;
  if (R.HasPayload)
    return false; // payload rules never fire as faults
  Counters &C = Stats[Site];
  unsigned GlobalHit = ++C.Hits; // 1-based arrival index
  uint64_t LocalSeed = Seed;

  // The trigger index: keyed (per-job ordinal) when a scope is active,
  // arrival-ordered otherwise.
  unsigned Hit = GlobalHit;
  uint64_t KeyMix = 0;
  if (ScopedFaultKey::State *S = ActiveFaultKey) {
    Lock.unlock(); // per-thread state: no lock needed for the ordinal
    Hit = ++S->SiteHits[Site];
    KeyMix = mix64(S->Key);
  }

  bool Fire = false;
  if (R.Always)
    Fire = true;
  else if (R.Nth != 0)
    Fire = Hit == R.Nth;
  else if (R.Percent >= 0)
    Fire = static_cast<int>(mix64(hashSite(Site) ^ KeyMix ^
                                  (LocalSeed * 0x9e3779b9ull) ^ Hit) %
                            100) < R.Percent;
  if (Fire) {
    if (!Lock.owns_lock())
      Lock.lock();
    ++Stats[Site].Fired;
  }
  return Fire;
}

long FaultInjector::payload(const char *Site) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Rules.find(Site);
  if (It == Rules.end() || !It->second.HasPayload)
    return 0;
  ++Stats[Site].Hits;
  return It->second.Payload;
}

unsigned FaultInjector::hits(const std::string &Site) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Stats.find(Site);
  return It == Stats.end() ? 0 : It->second.Hits;
}

unsigned FaultInjector::fired(const std::string &Site) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Stats.find(Site);
  return It == Stats.end() ? 0 : It->second.Fired;
}
