//===- Relation.cpp - Cut points, correspondence, path enumeration -*- C++-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "validate/Relation.h"

#include "ir/Printer.h"

#include <algorithm>
#include <functional>
#include <set>

using namespace cobalt;
using namespace cobalt::validate;

std::vector<int> validate::chooseCuts(const ir::Cfg &G) {
  // Iterative DFS coloring: back edges are edges into a node currently
  // on the DFS stack. Their targets are the loop headers.
  enum { White, Grey, Black };
  std::vector<int> Color(G.size(), White);
  std::set<int> Cuts = {0};
  std::function<void(int)> Dfs = [&](int N) {
    Color[N] = Grey;
    for (int S : G.succs(N)) {
      if (Color[S] == Grey)
        Cuts.insert(S);
      else if (Color[S] == White)
        Dfs(S);
    }
    Color[N] = Black;
  };
  if (G.size() > 0)
    Dfs(0);
  return {Cuts.begin(), Cuts.end()};
}

bool validate::cutsBreakAllCycles(const ir::Cfg &G,
                                  const std::vector<int> &Cuts) {
  // The subgraph induced on non-cut, non-return nodes must be acyclic
  // (paths also stop at returns, which have no successors anyway).
  std::set<int> CutSet(Cuts.begin(), Cuts.end());
  enum { White, Grey, Black };
  std::vector<int> Color(G.size(), White);
  bool Cyclic = false;
  std::function<void(int)> Dfs = [&](int N) {
    Color[N] = Grey;
    for (int S : G.succs(N)) {
      if (CutSet.count(S) || G.isExit(S))
        continue;
      if (Color[S] == Grey)
        Cyclic = true;
      else if (Color[S] == White)
        Dfs(S);
    }
    Color[N] = Black;
  };
  for (int N = 0; N < G.size() && !Cyclic; ++N)
    if (Color[N] == White && !CutSet.count(N) && !G.isExit(N))
      Dfs(N);
  return !Cyclic;
}

bool validate::synthesizeCorrespondence(const ir::Cfg &A, const ir::Cfg &B,
                                        Correspondence &Out,
                                        std::string *Why) {
  Out = Correspondence();
  Out.CutsA = chooseCuts(A);
  if (!cutsBreakAllCycles(A, Out.CutsA)) {
    if (Why)
      *Why = "original cuts do not break every cycle";
    return false;
  }

  std::set<std::pair<int, int>> Pairs = {{0, 0}};
  const bool SameLength = A.proc().size() == B.proc().size();
  for (int I : Out.CutsA) {
    if (I == 0)
      continue;
    // Positional alignment: the common case of an in-place rewrite that
    // kept the CFG shape.
    if (SameLength)
      Pairs.insert({I, I});
    // Textual alignment: every candidate node spelled exactly like the
    // cut statement. This is what aligns a rotated loop, whose header
    // test reappears verbatim at the bottom of the candidate loop.
    const std::string TextI = ir::toString(A.proc().stmtAt(I));
    for (int J = 0; J < B.size(); ++J)
      if (ir::toString(B.proc().stmtAt(J)) == TextI)
        Pairs.insert({I, J});
  }

  std::set<int> Stops = {0};
  for (const auto &[I, J] : Pairs)
    Stops.insert(J);
  Out.Pairs.assign(Pairs.begin(), Pairs.end());
  Out.StopsB.assign(Stops.begin(), Stops.end());

  if (!cutsBreakAllCycles(B, Out.StopsB)) {
    if (Why)
      *Why = "no candidate stop set aligned with the original cuts "
             "breaks every candidate cycle";
    return false;
  }
  return true;
}

bool validate::enumeratePaths(const ir::Cfg &G, const std::vector<int> &Stops,
                              int From, unsigned MaxPaths, unsigned MaxLen,
                              std::vector<CutPath> &Out) {
  Out.clear();
  if (G.isExit(From)) {
    Out.push_back(CutPath{{}, From, true});
    return true;
  }
  std::set<int> StopSet(Stops.begin(), Stops.end());
  bool Ok = true;
  std::vector<int> Cur;
  // DFS over execution prefixes. A node ends the path when it is a stop
  // or a return *and* at least one statement has been executed (the
  // start node itself is executed first, so self-loops terminate).
  std::function<void(int)> Dfs = [&](int N) {
    if (!Ok)
      return;
    if (!Cur.empty() && (StopSet.count(N) || G.isExit(N))) {
      if (Out.size() >= MaxPaths) {
        Ok = false;
        return;
      }
      Out.push_back(CutPath{Cur, N, G.isExit(N)});
      return;
    }
    if (Cur.size() >= MaxLen) {
      Ok = false;
      return;
    }
    Cur.push_back(N);
    for (int S : G.succs(N))
      Dfs(S);
    // A node with no successors that is not a return (impossible in a
    // validated procedure) simply contributes no paths.
    Cur.pop_back();
  };
  Dfs(From);
  // Deterministic order: DFS over succs() is already deterministic, but
  // sort by (end, nodes) so the obligation list never depends on
  // traversal details.
  std::sort(Out.begin(), Out.end(), [](const CutPath &A, const CutPath &B) {
    if (A.End != B.End)
      return A.End < B.End;
    return A.Nodes < B.Nodes;
  });
  // A branch whose two targets coincide yields the same path twice.
  Out.erase(std::unique(Out.begin(), Out.end(),
                        [](const CutPath &A, const CutPath &B) {
                          return A.End == B.End && A.Nodes == B.Nodes;
                        }),
            Out.end());
  return Ok;
}
