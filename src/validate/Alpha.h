//===- Alpha.h - Alpha-equivalence of IL procedures -------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The validator's structural fast path: two ground procedures are
/// alpha-equivalent when a *bijective* renaming of local variables maps
/// one onto the other, with procedure names, constants, operators, and
/// branch targets identical. Because locations are handed out by a bump
/// allocator in declaration order — names never reach the store — an
/// alpha-equivalent pair has *identical* ↪π effect (same return value,
/// same store, same allocator), not merely equal observable behavior.
/// That strength is what lets simulation proofs of callers treat calls
/// to alpha-equivalent callees as one semantic function.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_VALIDATE_ALPHA_H
#define COBALT_VALIDATE_ALPHA_H

#include "ir/Ast.h"

#include <string>

namespace cobalt {
namespace validate {

/// True when \p A and \p B are alpha-equivalent ground procedures. On
/// failure, \p Why (if non-null) receives the first mismatch found.
bool alphaEquivalent(const ir::Procedure &A, const ir::Procedure &B,
                     std::string *Why = nullptr);

} // namespace validate
} // namespace cobalt

#endif // COBALT_VALIDATE_ALPHA_H
