//===- Validate.cpp - Translation validation of IL program pairs -*- C++ -*-=//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Orchestration of the validator pipeline (see Validate.h):
// well-formedness, the concrete differential probe (the only source of
// Inequivalent), alpha-equivalence, and per-procedure cut-point
// simulation proofs discharged through SoundnessChecker.
//
// The compositional policy for calls: the Z3 call contract models the
// post-state of `x := p(b)` as one *function* of the pre-state and the
// call statement (Encoder::CallStoF/CallAllocF). Using a single function
// for both programs silently assumes the two `p`s have identical ↪π
// effect, so simulation proofs are attempted only when every callee pair
// is *effect-identical*: alpha-equivalent (identical effect by
// construction) or itself simulation-proven with full-state return
// equality, closed under the callee relation (greatest fixpoint;
// self-recursion is admitted assume-guarantee style, inducting on the
// call-tree height). `main` alone may be proven with return-value-only
// equality at returns — unless something calls it.
//
//===----------------------------------------------------------------------===//

#include "validate/Validate.h"

#include "checker/Obligations.h"
#include "ir/Printer.h"
#include "support/Telemetry.h"
#include "validate/Alpha.h"
#include "validate/Facts.h"
#include "validate/Relation.h"

#include "fuzz/Oracle.h"
#include "opts/Labels.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <sstream>

using namespace cobalt;
using namespace cobalt::validate;

const char *validate::verdictName(Verdict V) {
  switch (V) {
  case Verdict::V_Equivalent:
    return "Equivalent";
  case Verdict::V_Inequivalent:
    return "Inequivalent";
  case Verdict::V_Unknown:
    return "Unknown";
  }
  return "Unknown";
}

//===----------------------------------------------------------------------===//
// Fingerprints and probe inputs.
//===----------------------------------------------------------------------===//

namespace {

void hashStr(uint64_t &H, const std::string &S) {
  for (char Ch : S) {
    H ^= static_cast<unsigned char>(Ch);
    H *= 1099511628211ull; // FNV-1a.
  }
  H ^= 0xff;
  H *= 1099511628211ull;
}

void hashInt(uint64_t &H, int64_t V) {
  for (int I = 0; I < 8; ++I) {
    H ^= static_cast<unsigned char>(V >> (8 * I));
    H *= 1099511628211ull;
  }
}

void collectConsts(const ir::Program &Prog, std::set<int64_t> &Out) {
  auto AddBase = [&Out](const ir::BaseExpr &B) {
    if (ir::isConst(B) && !ir::asConst(B).IsMeta)
      Out.insert(ir::asConst(B).Value);
  };
  for (const ir::Procedure &P : Prog.Procs)
    for (const ir::Stmt &S : P.Stmts) {
      if (S.is<ir::AssignStmt>()) {
        const ir::Expr &E = S.as<ir::AssignStmt>().Value;
        if (E.is<ir::ConstVal>() && !E.as<ir::ConstVal>().IsMeta)
          Out.insert(E.as<ir::ConstVal>().Value);
        if (E.is<ir::OpExpr>())
          for (const ir::BaseExpr &B : E.as<ir::OpExpr>().Args)
            AddBase(B);
      } else if (S.is<ir::BranchStmt>()) {
        AddBase(S.as<ir::BranchStmt>().Cond);
      }
    }
}

/// The probe input set: the configured inputs plus c-1, c, c+1 for every
/// program literal c — miscompiles tend to hide at the boundaries the
/// program itself mentions. Sorted, deduplicated, capped.
std::vector<int64_t> probeInputs(const ir::Program &A, const ir::Program &B,
                                 const ValidationOptions &Options) {
  std::set<int64_t> Mined;
  collectConsts(A, Mined);
  collectConsts(B, Mined);
  std::set<int64_t> All(Options.Inputs.begin(), Options.Inputs.end());
  for (int64_t C : Mined) {
    All.insert(C);
    if (C > INT64_MIN)
      All.insert(C - 1);
    if (C < INT64_MAX)
      All.insert(C + 1);
  }
  std::vector<int64_t> Out(All.begin(), All.end());
  if (Out.size() > 64)
    Out.resize(64);
  return Out;
}

} // namespace

uint64_t validate::fingerprintPair(const ir::Program &Original,
                                   const ir::Program &Candidate,
                                   const ValidationOptions &Options) {
  uint64_t H = 1469598103934665603ull;
  hashStr(H, "validate 1");
  hashStr(H, ir::toString(Original));
  hashStr(H, ir::toString(Candidate));
  for (int64_t I : Options.Inputs)
    hashInt(H, I);
  hashInt(H, static_cast<int64_t>(Options.Fuel));
  hashInt(H, static_cast<int64_t>(Options.FuelCandidate));
  hashInt(H, Options.MaxPathsPerCut);
  hashInt(H, Options.MaxPathLen);
  hashInt(H, Options.MaxFactsPerCut);
  hashInt(H, Options.UseFacts ? 1 : 0);
  return H;
}

//===----------------------------------------------------------------------===//
// Simulation obligations for one procedure pair.
//===----------------------------------------------------------------------===//

namespace {

/// Everything a pair's obligation closures read. Owned by shared_ptr so
/// the closures stay valid however long the checker queues them; the
/// procedures are *copies*, deliberately decoupled from the caller.
struct SimContext {
  ir::Procedure A;
  ir::Procedure B;
  Correspondence Corr;
  /// A-paths per original cut, B-paths per candidate stop.
  std::map<int, std::vector<CutPath>> PathsA;
  std::map<int, std::vector<CutPath>> PathsB;
  std::vector<std::vector<ValueFact>> Facts;
  bool NeedFullState = false;
};

z3::expr componentsEq(const checker::ZState &X, const checker::ZState &Y) {
  return X.Env == Y.Env && X.Scope == Y.Scope && X.Sto == Y.Sto &&
         X.Alloc == Y.Alloc;
}

/// Builds the obligation for one (cut pair, original path): from a
/// well-formed fact-constrained symbolic state shared by both sides, the
/// original executing \p PathA forces *some* compatible candidate path
/// to execute to a related stop with an equal state (or an equal return).
z3::expr buildSimObligation(checker::ObligationBuilder &Bld,
                            const SimContext &Ctx, int CutA, int StopB,
                            const CutPath &PathA) {
  checker::Encoder &Enc = Bld.Enc;
  z3::context &C = Enc.ctx();
  checker::MetaEnv Ground; // ground fragments bind nothing

  checker::ZState Eta = Enc.freshState("cut");
  Bld.wfHyp(Eta);
  Bld.hyp(Eta.Ix == C.int_val(CutA));

  // Engine-mined facts of the original at this cut (sound for the shared
  // state: the relation makes the candidate state equal to the
  // original's, and the facts hold of every original state reaching the
  // cut by the proven rules' meta-theorem).
  if (CutA >= 0 && CutA < static_cast<int>(Ctx.Facts.size()))
    for (const ValueFact &F : Ctx.Facts[CutA]) {
      checker::MetaEnv FEnv;
      for (const auto &[Name, B] : F.Theta) {
        if (B.isVar())
          FEnv.emplace(Name, Enc.concreteVar(B.asVar()));
        else if (B.isConst())
          FEnv.emplace(Name,
                       C.int_val(static_cast<int64_t>(B.asConst())));
        else if (B.isExpr())
          FEnv.emplace(Name, Enc.buildExpr(B.asExpr(), Ground));
      }
      Bld.hyp(Bld.PE.witness(*F.W, &Eta, nullptr, nullptr, FEnv));
    }

  // Original side: hypotheses. The original actually executed this path,
  // so each step's definedness, the branch outcomes pinning the next
  // index, and well-formedness of the intermediate states are all givens.
  checker::ZState Cur = Eta;
  for (size_t K = 0; K < PathA.Nodes.size(); ++K) {
    int N = PathA.Nodes[K];
    int Next = K + 1 < PathA.Nodes.size() ? PathA.Nodes[K + 1] : PathA.End;
    z3::expr St = Enc.buildStmt(Ctx.A.stmtAt(N), Ground);
    Cur = Bld.stepHyp(Cur, St, "a" + std::to_string(K) + "_");
    Bld.hyp(Cur.Ix == C.int_val(Next));
    Bld.wfHyp(Cur);
  }
  std::optional<checker::ZEval> RetA;
  if (PathA.EndsAtReturn) {
    const ir::ReturnStmt &R = Ctx.A.stmtAt(PathA.End).as<ir::ReturnStmt>();
    RetA = Enc.evalExpr(Cur, Enc.buildExpr(ir::Expr(R.Value), Ground));
    Bld.hyp(RetA->Defined); // the original returned a value
  }

  // Candidate side: goal. One disjunct per compatible candidate path; no
  // hypotheses about candidate states are assumed (its steps' call
  // contract constraints are universally valid instances and may be
  // hoisted, but definedness and branch outcomes must be *proven*).
  z3::expr Goal = C.bool_val(false);
  auto It = Ctx.PathsB.find(StopB);
  const std::vector<CutPath> Empty;
  const std::vector<CutPath> &Cands =
      It != Ctx.PathsB.end() ? It->second : Empty;
  std::set<std::pair<int, int>> Related(Ctx.Corr.Pairs.begin(),
                                        Ctx.Corr.Pairs.end());
  unsigned Q = 0;
  for (const CutPath &PathB : Cands) {
    if (PathB.EndsAtReturn != PathA.EndsAtReturn)
      continue;
    if (!PathA.EndsAtReturn && !Related.count({PathA.End, PathB.End}))
      continue;
    checker::ZState BCur{C.int_val(StopB), Eta.Env, Eta.Scope, Eta.Sto,
                         Eta.Alloc};
    z3::expr Conj = C.bool_val(true);
    for (size_t K = 0; K < PathB.Nodes.size(); ++K) {
      int N = PathB.Nodes[K];
      int Next =
          K + 1 < PathB.Nodes.size() ? PathB.Nodes[K + 1] : PathB.End;
      z3::expr St = Enc.buildStmt(Ctx.B.stmtAt(N), Ground);
      checker::ZStep Step = Enc.encodeStep(
          BCur, St, "b" + std::to_string(Q) + "_" + std::to_string(K) + "_");
      Bld.hypAll(Step.Constraints);
      Conj = Conj && Step.Defined && Step.Post.Ix == C.int_val(Next);
      BCur = Step.Post;
    }
    if (PathA.EndsAtReturn) {
      const ir::ReturnStmt &R =
          Ctx.B.stmtAt(PathB.End).as<ir::ReturnStmt>();
      checker::ZEval RetB =
          Enc.evalExpr(BCur, Enc.buildExpr(ir::Expr(R.Value), Ground));
      Conj = Conj && RetB.Defined && RetB.Val == RetA->Val;
      if (Ctx.NeedFullState)
        Conj = Conj && componentsEq(Cur, BCur);
    } else {
      Conj = Conj && componentsEq(Cur, BCur);
    }
    Goal = Goal || Conj;
    ++Q;
  }
  return Goal;
}

/// Assembles the obligation set for one pair, or explains why it cannot
/// be attempted. \p EffectIdentical names the procedures whose pairs are
/// already known effect-identical (callees must come from this set, or
/// be the procedure itself — assume-guarantee for self-recursion).
bool prepareSimulation(const ir::Procedure &PA, const ir::Procedure &PB,
                       const std::set<std::string> &EffectIdentical,
                       bool NeedFullState, const ValidationOptions &Options,
                       uint64_t PairFp, checker::ObligationSet &Set,
                       std::string *Why) {
  if (PA.Param != PB.Param) {
    *Why = "parameter name differs (and bodies are not alpha-equivalent)";
    return false;
  }
  auto CalleesOk = [&](const ir::Procedure &P) {
    for (const ir::Stmt &S : P.Stmts)
      if (S.is<ir::CallStmt>()) {
        const std::string &Callee = S.as<ir::CallStmt>().Callee.Name;
        if (Callee != P.Name && !EffectIdentical.count(Callee)) {
          *Why = "callee '" + Callee + "' is not known effect-identical";
          return false;
        }
      }
    return true;
  };
  if (!CalleesOk(PA) || !CalleesOk(PB))
    return false;

  auto Ctx = std::make_shared<SimContext>();
  Ctx->A = PA;
  Ctx->B = PB;
  Ctx->NeedFullState = NeedFullState;
  ir::Cfg CfgA(Ctx->A), CfgB(Ctx->B);
  if (!synthesizeCorrespondence(CfgA, CfgB, Ctx->Corr, Why))
    return false;
  for (int I : Ctx->Corr.CutsA) {
    std::vector<CutPath> Paths;
    if (!enumeratePaths(CfgA, Ctx->Corr.CutsA, I, Options.MaxPathsPerCut,
                        Options.MaxPathLen, Paths)) {
      *Why = "original path enumeration exceeded caps at cut " +
             std::to_string(I);
      return false;
    }
    Ctx->PathsA.emplace(I, std::move(Paths));
  }
  for (int J : Ctx->Corr.StopsB) {
    std::vector<CutPath> Paths;
    if (!enumeratePaths(CfgB, Ctx->Corr.StopsB, J, Options.MaxPathsPerCut,
                        Options.MaxPathLen, Paths)) {
      *Why = "candidate path enumeration exceeded caps at stop " +
             std::to_string(J);
      return false;
    }
    Ctx->PathsB.emplace(J, std::move(Paths));
  }
  Ctx->Facts.assign(static_cast<size_t>(CfgA.size()), {});
  if (Options.UseFacts)
    Ctx->Facts = mineFacts(CfgA, Options.MaxFactsPerCut);

  Set = checker::ObligationSet();
  Set.Name = "validate " + PA.Name;
  // The fingerprint covers everything the obligations read: both
  // procedure bodies and every option knob (via PairFp), the pair name,
  // the proof strength, and the algorithm version — safe to cache.
  Set.Fingerprint = PairFp;
  hashStr(Set.Fingerprint, "sim 1");
  hashStr(Set.Fingerprint, PA.Name);
  hashStr(Set.Fingerprint, ir::toString(PA));
  hashStr(Set.Fingerprint, ir::toString(PB));
  hashInt(Set.Fingerprint, NeedFullState ? 1 : 0);
  Set.Cacheable = true;

  for (const auto &[CutA, StopB] : Ctx->Corr.Pairs) {
    const std::vector<CutPath> &Paths = Ctx->PathsA.at(CutA);
    for (size_t P = 0; P < Paths.size(); ++P) {
      const CutPath &PathA = Paths[P];
      checker::ObligationSpec Spec;
      std::ostringstream Name;
      Name << "sim(" << CutA << "," << StopB << ")#" << P << "->"
           << (PathA.EndsAtReturn ? "ret" : "cut") << PathA.End;
      Spec.Name = Name.str();
      int CA = CutA, SB = StopB;
      Spec.Build = [Ctx, CA, SB, PathA](checker::ObligationBuilder &B) {
        return buildSimObligation(B, *Ctx, CA, SB, PathA);
      };
      Set.Obligations.push_back(std::move(Spec));
    }
  }
  return true;
}

ProcOutcome outcomeFromReport(const std::string &Proc,
                              const checker::CheckReport &R) {
  ProcOutcome Out;
  Out.Name = Proc;
  Out.Method = "simulation";
  Out.CacheHit = R.CacheHit;
  Out.Degraded = R.degraded();
  Out.Seconds = R.TotalSeconds;
  Out.Obligations = static_cast<unsigned>(R.Obligations.size());
  for (const checker::ObligationResult &O : R.Obligations) {
    if (O.proven())
      ++Out.Proven;
    else if (O.St == checker::ObligationResult::Status::OS_Failed)
      ++Out.Failed;
    else
      ++Out.Unproven;
  }
  if (R.V == checker::CheckReport::Verdict::V_Sound) {
    Out.V = Verdict::V_Equivalent;
  } else {
    // A failed obligation is NOT a counterexample to equivalence — the
    // synthesized relation may simply be too weak — so both failure and
    // prover exhaustion degrade to Unknown.
    Out.V = Verdict::V_Unknown;
    for (const checker::ObligationResult &O : R.Obligations)
      if (!O.proven()) {
        Out.Detail = "obligation " + O.Name +
                     (O.St == checker::ObligationResult::Status::OS_Failed
                          ? " failed"
                          : " unproven");
        if (!O.Counterexample.empty())
          Out.Detail += " [" + O.Counterexample + "]";
        else if (O.unknown())
          Out.Detail += " (" + O.Err.Message + ")";
        break;
      }
    if (R.CacheHit && Out.Detail.empty())
      Out.Detail = "cached non-sound verdict";
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// The pipeline.
//===----------------------------------------------------------------------===//

ValidationReport validate::validatePrograms(const ir::Program &Original,
                                            const ir::Program &Candidate,
                                            checker::SoundnessChecker &Checker,
                                            const ValidationOptions &Options) {
  support::TraceSpan Span("validate", "validatePrograms");
  support::metricAdd("validate.pairs");
  auto Start = std::chrono::steady_clock::now();
  ValidationReport Report;
  auto Finish = [&](ValidationReport R) {
    R.TotalSeconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
    support::metricAdd(std::string("validate.verdict.") +
                       verdictName(R.V));
    if (Span.enabled())
      Span.arg("verdict", std::string(verdictName(R.V)));
    return R;
  };

  // Well-formedness. An ill-formed *original* is an input error, not an
  // inequivalence; an ill-formed candidate where the original is fine is
  // a miscompile (the fuzz oracle's DK_IllFormed class).
  if (std::optional<std::string> Err = ir::validateProgram(Original)) {
    Report.V = Verdict::V_Unknown;
    Report.Detail = "original program ill-formed: " + *Err;
    return Finish(Report);
  }
  if (std::optional<std::string> Err = ir::validateProgram(Candidate)) {
    Report.V = Verdict::V_Inequivalent;
    Report.Method = "probe";
    Report.Witness = "candidate program ill-formed: " + *Err;
    return Finish(Report);
  }

  // Concrete differential probe — the only source of Inequivalent.
  fuzz::OracleOptions Oracle;
  Oracle.Inputs = probeInputs(Original, Candidate, Options);
  Oracle.Fuel = Options.Fuel;
  Oracle.FuelOptimized = Options.FuelCandidate;
  if (std::optional<fuzz::Divergence> D =
          fuzz::diffPrograms(Original, Candidate, Oracle)) {
    support::metricAdd("validate.probe.divergence");
    Report.V = Verdict::V_Inequivalent;
    Report.Method = "probe";
    Report.Witness = D->str();
    return Finish(Report);
  }

  // Pair procedures by name. Extra or missing procedures make the
  // alignment moot; behavior may still agree, so this degrades to
  // Unknown rather than Inequivalent.
  std::map<std::string, const ir::Procedure *> ByNameB;
  for (const ir::Procedure &P : Candidate.Procs)
    ByNameB[P.Name] = &P;
  if (Original.Procs.size() != Candidate.Procs.size() ||
      !std::all_of(Original.Procs.begin(), Original.Procs.end(),
                   [&](const ir::Procedure &P) {
                     return ByNameB.count(P.Name) != 0;
                   })) {
    Report.V = Verdict::V_Unknown;
    Report.Detail = "procedure sets differ between the programs";
    return Finish(Report);
  }

  // Anything (in either program) that is called must be proven at full
  // strength; main alone may settle for return-value equality.
  std::set<std::string> Called;
  for (const ir::Program *Prog : {&Original, &Candidate})
    for (const ir::Procedure &P : Prog->Procs)
      for (const ir::Stmt &S : P.Stmts)
        if (S.is<ir::CallStmt>())
          Called.insert(S.as<ir::CallStmt>().Callee.Name);

  // Alpha fast path, then the effect-identical greatest fixpoint: an
  // alpha-equivalent pair is only effect-identical if everything it
  // calls is (a renamed body still calls the *other* program's callees).
  std::map<std::string, ProcOutcome> Outcomes;
  std::set<std::string> Alpha;
  std::map<std::string, std::string> AlphaWhy;
  for (const ir::Procedure &PA : Original.Procs) {
    std::string Why;
    if (alphaEquivalent(PA, *ByNameB.at(PA.Name), &Why)) {
      Alpha.insert(PA.Name);
      support::metricAdd("validate.procs.alpha");
    } else {
      AlphaWhy[PA.Name] = Why;
    }
  }
  std::set<std::string> EffectIdentical = Alpha;
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (auto It = EffectIdentical.begin(); It != EffectIdentical.end();) {
      const ir::Procedure *PA = Original.findProc(*It);
      const ir::Procedure *PB = ByNameB.at(*It);
      bool Ok = true;
      for (const ir::Procedure *P : {PA, PB})
        for (const ir::Stmt &S : P->Stmts)
          if (S.is<ir::CallStmt>() &&
              !EffectIdentical.count(S.as<ir::CallStmt>().Callee.Name))
            Ok = false;
      if (!Ok) {
        It = EffectIdentical.erase(It);
        Changed = true;
      } else {
        ++It;
      }
    }
  }

  for (const std::string &Name : Alpha)
    if (EffectIdentical.count(Name)) {
      ProcOutcome Out;
      Out.Name = Name;
      Out.V = Verdict::V_Equivalent;
      Out.Method = "alpha";
      Outcomes[Name] = Out;
    }

  // Simulation attempts, iterated: a helper proven with full-state
  // strength joins the effect-identical set and may unblock its callers.
  const uint64_t PairFp = fingerprintPair(Original, Candidate, Options);
  for (bool Progress = true; Progress;) {
    Progress = false;
    std::vector<checker::ObligationSet> Sets;
    std::vector<std::pair<std::string, bool>> Pending; // name, needFull
    for (const ir::Procedure &PA : Original.Procs) {
      if (Outcomes.count(PA.Name))
        continue;
      bool NeedFull = PA.Name != "main" || Called.count("main") != 0;
      checker::ObligationSet Set;
      std::string Why;
      if (prepareSimulation(PA, *ByNameB.at(PA.Name), EffectIdentical,
                            NeedFull, Options, PairFp, Set, &Why)) {
        Sets.push_back(std::move(Set));
        Pending.emplace_back(PA.Name, NeedFull);
      } else {
        // Remember the reason; a later fixpoint round may still clear it.
        ProcOutcome Out;
        Out.Name = PA.Name;
        Out.V = Verdict::V_Unknown;
        Out.Detail = AlphaWhy.count(PA.Name)
                         ? Why + " (alpha: " + AlphaWhy[PA.Name] + ")"
                         : Why;
        Outcomes[PA.Name] = Out; // provisional; erased on progress
      }
    }
    if (Sets.empty())
      break;
    support::metricAdd("validate.procs.simulation", Sets.size());
    std::vector<checker::CheckReport> Reports =
        Checker.checkObligationSets(Sets);
    for (size_t I = 0; I < Reports.size(); ++I) {
      ProcOutcome Out = outcomeFromReport(Pending[I].first, Reports[I]);
      Outcomes[Out.Name] = Out;
      if (Out.V == Verdict::V_Equivalent && Pending[I].second &&
          !EffectIdentical.count(Out.Name)) {
        EffectIdentical.insert(Out.Name);
        Progress = true;
      }
    }
    if (Progress) {
      // Clear provisional Unknowns blocked on callees; they get retried.
      for (auto It = Outcomes.begin(); It != Outcomes.end();) {
        if (It->second.V == Verdict::V_Unknown && It->second.Method.empty())
          It = Outcomes.erase(It);
        else
          ++It;
      }
    }
  }

  // Assemble, in original procedure order.
  bool AllEquivalent = true;
  for (const ir::Procedure &PA : Original.Procs) {
    auto It = Outcomes.find(PA.Name);
    ProcOutcome Out;
    if (It != Outcomes.end()) {
      Out = It->second;
    } else {
      Out.Name = PA.Name;
      Out.V = Verdict::V_Unknown;
      Out.Detail = "not attempted";
    }
    // An alpha-equivalent pair whose callees never settled is Unknown.
    if (Out.Method == "alpha" && !EffectIdentical.count(Out.Name)) {
      Out.V = Verdict::V_Unknown;
      Out.Detail = "alpha-equivalent, but a callee pair is unresolved";
    }
    if (Out.V != Verdict::V_Equivalent) {
      AllEquivalent = false;
      if (Report.Detail.empty())
        Report.Detail =
            "procedure '" + Out.Name + "': " +
            (Out.Detail.empty() ? "unproven" : Out.Detail);
    }
    Report.Degraded = Report.Degraded || Out.Degraded;
    Report.Procs.push_back(std::move(Out));
  }
  if (AllEquivalent) {
    Report.V = Verdict::V_Equivalent;
    Report.Method = "proof";
    Report.Detail.clear();
  } else {
    Report.V = Verdict::V_Unknown;
  }
  return Finish(Report);
}

//===----------------------------------------------------------------------===//
// Rendering.
//===----------------------------------------------------------------------===//

std::string ValidationReport::str() const {
  std::ostringstream Out;
  Out << "verdict: " << verdictName(V);
  if (!Method.empty())
    Out << " (" << Method << ")";
  Out << "\n";
  if (!Witness.empty())
    Out << "witness: " << Witness << "\n";
  if (!Detail.empty())
    Out << "detail: " << Detail << "\n";
  for (const ProcOutcome &P : Procs) {
    Out << "  proc " << P.Name << ": " << verdictName(P.V);
    if (!P.Method.empty())
      Out << " via " << P.Method;
    if (P.Obligations)
      Out << " (" << P.Proven << "/" << P.Obligations << " proven";
    if (P.Failed)
      Out << ", " << P.Failed << " failed";
    if (P.Unproven)
      Out << ", " << P.Unproven << " unproven";
    if (P.Obligations)
      Out << ")";
    if (P.CacheHit)
      Out << " [cached]";
    if (P.Degraded)
      Out << " [degraded]";
    if (!P.Detail.empty())
      Out << " — " << P.Detail;
    Out << "\n";
  }
  return Out.str();
}
