//===- Validate.h - Translation validation of IL program pairs --*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation validation (DESIGN.md §14): given an (original, candidate)
/// IL program pair from an *untrusted* optimizer, decide
///
///   Equivalent    — a machine-checked simulation proof (or structural
///                   alpha-equivalence) shows the candidate preserves the
///                   paper's soundness notion: whenever main(v) returns in
///                   the original, it returns the same value in the
///                   candidate;
///   Inequivalent  — a concrete witness input was found on which the two
///                   programs observably diverge (the differential
///                   interpreter confirms it — a proof failure alone never
///                   produces this verdict);
///   Unknown       — neither: the pair is outside the prover's fragment,
///                   an obligation failed or timed out, or the candidate
///                   is structurally too different to align.
///
/// The asymmetric verdict policy is what makes the validator safe to put
/// in front of a compiler: Equivalent requires a proof, Inequivalent
/// requires an executed counterexample, and everything else degrades to
/// Unknown. An incomplete prover can therefore cause spurious rejections
/// (Unknown), but never a validator-blessed miscompile.
///
/// The proof method is cut-point simulation seeded by the engine's
/// substitution-set facts:
///
///  1. concrete differential probe over a deterministic input set
///     (defaults plus constants mined from the programs) — divergence is
///     the only source of Inequivalent;
///  2. alpha-equivalence fast path (bijective local-variable renaming);
///  3. per-procedure cut-point simulation: cuts at the entry and at loop
///     headers, candidate cuts matched by position and statement text,
///     relation = component-wise state equality strengthened with value
///     facts mined by running the dataflow engine over the *original*
///     with the proven constProp/copyProp guards (the facts hold of every
///     reachable state by the rules' meta-theorem, so assuming them at a
///     cut is sound); each cut-to-cut original path yields one Z3
///     obligation discharged through SoundnessChecker::checkObligationSet
///     (inheriting retries, budgets, crash containment, verdict caching,
///     and trace spans).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_VALIDATE_VALIDATE_H
#define COBALT_VALIDATE_VALIDATE_H

#include "checker/Soundness.h"
#include "ir/Ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cobalt {
namespace validate {

/// The three-valued outcome. See the file comment for the asymmetric
/// evidence each value requires.
enum class Verdict { V_Equivalent, V_Inequivalent, V_Unknown };

const char *verdictName(Verdict V);

/// Knobs for one validation run. Everything here participates in the
/// obligation-set fingerprint: changing a knob re-proves rather than
/// serving a stale cached verdict.
struct ValidationOptions {
  /// Probe inputs for the differential interpreter, merged with
  /// constants mined from the two programs (c-1, c, c+1 per literal).
  std::vector<int64_t> Inputs = {-9, -1, 0, 1, 2, 7, 50};
  uint64_t Fuel = 1u << 18;          ///< Step budget, original runs.
  uint64_t FuelCandidate = 1u << 19; ///< Step budget, candidate runs.
  /// Caps on the cut-to-cut path enumeration; exceeding either cap
  /// degrades the procedure to Unknown (never to a wrong verdict).
  unsigned MaxPathsPerCut = 64;
  unsigned MaxPathLen = 48;
  /// Cap on engine-mined value facts assumed per cut.
  unsigned MaxFactsPerCut = 16;
  /// Disables the fact-mining stage (for ablation and tests).
  bool UseFacts = true;
};

/// Per-procedure outcome. Procedures never produce Inequivalent — that
/// verdict is program-level and probe-confirmed only.
struct ProcOutcome {
  std::string Name;
  Verdict V = Verdict::V_Unknown;
  /// How the verdict was reached: "alpha", "simulation", or "" when the
  /// procedure could not be attempted (Detail says why).
  std::string Method;
  std::string Detail; ///< Unknown reason / first failed obligation.
  /// Obligation tallies from the prover (zero for the alpha path).
  unsigned Obligations = 0;
  unsigned Proven = 0;
  unsigned Failed = 0;
  unsigned Unproven = 0;
  bool CacheHit = false;
  bool Degraded = false; ///< A prover infrastructure failure occurred.
  double Seconds = 0.0;  ///< Prover wall time (excluded from reports).
};

/// The whole-pair outcome.
struct ValidationReport {
  Verdict V = Verdict::V_Unknown;
  /// "probe" (Inequivalent), "proof" (Equivalent), "" (Unknown).
  std::string Method;
  /// Inequivalent only: the witness input and both observed outcomes.
  std::string Witness;
  /// Unknown only: the first blocking reason.
  std::string Detail;
  std::vector<ProcOutcome> Procs;
  bool Degraded = false;
  double TotalSeconds = 0.0;

  /// Human-readable rendering (stable except for timings).
  std::string str() const;
};

/// Validates \p Candidate against \p Original. \p Checker supplies the
/// prover policy, thread pool, worker isolation, and verdict cache; the
/// validator only adds obligations. Deterministic for a fixed
/// (programs, options) input at every --jobs width.
ValidationReport validatePrograms(const ir::Program &Original,
                                  const ir::Program &Candidate,
                                  checker::SoundnessChecker &Checker,
                                  const ValidationOptions &Options = {});

/// Structural fingerprint of a validation request (programs + options),
/// used by the service dedup memo. Stable across runs.
uint64_t fingerprintPair(const ir::Program &Original,
                         const ir::Program &Candidate,
                         const ValidationOptions &Options);

} // namespace validate
} // namespace cobalt

#endif // COBALT_VALIDATE_VALIDATE_H
