//===- Adversary.h - The fuzzer as adversary of the validator ---*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adversarial harness behind `cobalt-fuzz --validate`: generate
/// programs, miscompile them with the deliberately buggy rule suite, and
/// cross-check the validator's verdict against the differential
/// interpreter's ground truth. The safety property under test is the
/// validator's headline guarantee:
///
///   a pair on which the interpreter observes divergence must NEVER be
///   verdicted Equivalent ("validator-blessed miscompile").
///
/// Divergent pairs verdicted Inequivalent are *caught*; divergent pairs
/// verdicted Unknown are acceptable (spurious rejection, not unsound).
/// The harness also credits the validator when its mined probe inputs
/// expose a divergence the stock oracle inputs miss (*extended catch* —
/// Inequivalent is probe-confirmed by construction, so these are real).
///
/// Deterministic for fixed (Seed, Runs, Targets): the loop is
/// sequential, run I derives its generator config and seed from I, and
/// wall-clock never enters the summary.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_VALIDATE_ADVERSARY_H
#define COBALT_VALIDATE_ADVERSARY_H

#include "fuzz/Fuzzer.h"
#include "validate/Validate.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cobalt {
namespace validate {

/// Classification of one (original, miscompiled) pair.
enum class AdversaryClass {
  AC_Agree,         ///< No divergence observed; verdict Equivalent.
  AC_Unproven,      ///< No divergence observed; verdict Unknown.
  AC_Caught,        ///< Diverged; verdict Inequivalent. The validator won.
  AC_MissedUnknown, ///< Diverged; verdict Unknown. Safe but imprecise.
  AC_ExtendedCatch, ///< Stock oracle saw no divergence, validator's mined
                    ///< inputs did (verdict Inequivalent).
  AC_Blessed,       ///< Diverged; verdict Equivalent. HEADLINE FAILURE.
};

const char *adversaryClassName(AdversaryClass C);

struct AdversaryOptions {
  uint64_t Seed = 0;   ///< Base seed; run I uses Seed + I.
  unsigned Runs = 25;  ///< Generated programs.
  bool Minimize = false; ///< Delta-debug retained divergent pairs.
  /// Pairs retained (and minimized) per rule; further divergences of the
  /// same rule are counted only.
  unsigned MaxPairsPerRule = 2;
  ValidationOptions Validation;
};

/// One retained program pair (divergent, or blessed — the failure case).
struct AdversaryPair {
  std::string Rule;
  uint64_t Seed = 0;
  ir::Program Original;
  ir::Program Candidate;
  Verdict V = Verdict::V_Unknown;
  AdversaryClass Class = AdversaryClass::AC_MissedUnknown;
  std::string Witness; ///< Divergence rendering (ground truth).
  unsigned StatementsBefore = 0; ///< Reduction tallies (0 = not reduced).
  unsigned StatementsAfter = 0;
  unsigned ReduceRounds = 0;
};

struct AdversaryRuleStats {
  unsigned Applications = 0;
  unsigned Diverged = 0;
  unsigned Caught = 0;
  unsigned MissedUnknown = 0;
  unsigned ExtendedCatch = 0;
  unsigned Blessed = 0;
};

struct AdversarySummary {
  uint64_t Seed = 0;
  unsigned RunsRequested = 0;
  unsigned RunsExecuted = 0;
  uint64_t PairsValidated = 0; ///< (program, rule) pairs with >=1 rewrite.
  unsigned Diverged = 0;       ///< Ground-truth divergences observed.
  unsigned Caught = 0;
  unsigned MissedUnknown = 0;
  unsigned ExtendedCatch = 0;
  unsigned Agree = 0;
  unsigned Unproven = 0;
  unsigned Blessed = 0;        ///< MUST be zero. The headline number.
  std::vector<AdversaryPair> Pairs; ///< Retained pairs, deterministic.
  std::map<std::string, AdversaryRuleStats> PerRule;
};

/// Runs the adversarial loop over \p Targets (typically
/// fuzz::buggySuiteTargets()). \p Checker discharges the validator's
/// simulation obligations.
AdversarySummary runAdversary(const std::vector<fuzz::FuzzTarget> &Targets,
                              const AdversaryOptions &Options,
                              checker::SoundnessChecker &Checker);

/// One validation-corpus manifest record (pairs of .il files).
struct ValidationCorpusEntry {
  std::string Original;  ///< Path relative to the corpus directory.
  std::string Candidate; ///< Path relative to the corpus directory.
  std::string Rule;
  uint64_t Seed = 0;
  std::string Verdict; ///< verdictName() at save time.
  std::string Class;   ///< adversaryClassName() at save time.
};

/// Writes each pair as `<rule>_s<seed>_<k>.orig.il` / `.cand.il` plus a
/// `manifest.txt` into \p Dir (created if missing). Returns an error
/// message on I/O failure.
std::optional<std::string>
saveValidationCorpus(const std::string &Dir,
                     const std::vector<AdversaryPair> &Pairs);

/// Parses `Dir/manifest.txt`. Returns nullopt and sets \p Err on
/// failure; unknown keys are ignored (forward compatibility).
std::optional<std::vector<ValidationCorpusEntry>>
loadValidationCorpusManifest(const std::string &Dir, std::string &Err);

} // namespace validate
} // namespace cobalt

#endif // COBALT_VALIDATE_ADVERSARY_H
