//===- Adversary.cpp - The fuzzer as adversary of the validator -----------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "validate/Adversary.h"

#include "fuzz/Reducer.h"
#include "ir/Generator.h"
#include "ir/Printer.h"
#include "support/Telemetry.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace cobalt;
using namespace cobalt::validate;

const char *validate::adversaryClassName(AdversaryClass C) {
  switch (C) {
  case AdversaryClass::AC_Agree:
    return "agree";
  case AdversaryClass::AC_Unproven:
    return "unproven";
  case AdversaryClass::AC_Caught:
    return "caught";
  case AdversaryClass::AC_MissedUnknown:
    return "missed-unknown";
  case AdversaryClass::AC_ExtendedCatch:
    return "extended-catch";
  case AdversaryClass::AC_Blessed:
    return "BLESSED-MISCOMPILE";
  }
  return "unproven";
}

namespace {

AdversaryClass classify(bool Diverged, Verdict V) {
  if (Diverged) {
    switch (V) {
    case Verdict::V_Equivalent:
      return AdversaryClass::AC_Blessed;
    case Verdict::V_Inequivalent:
      return AdversaryClass::AC_Caught;
    case Verdict::V_Unknown:
      return AdversaryClass::AC_MissedUnknown;
    }
  }
  switch (V) {
  case Verdict::V_Equivalent:
    return AdversaryClass::AC_Agree;
  case Verdict::V_Inequivalent:
    return AdversaryClass::AC_ExtendedCatch;
  case Verdict::V_Unknown:
    return AdversaryClass::AC_Unproven;
  }
  return AdversaryClass::AC_Unproven;
}

} // namespace

AdversarySummary
validate::runAdversary(const std::vector<fuzz::FuzzTarget> &Targets,
                       const AdversaryOptions &Options,
                       checker::SoundnessChecker &Checker) {
  support::TraceSpan Span("validate", "runAdversary");
  AdversarySummary Sum;
  Sum.Seed = Options.Seed;
  Sum.RunsRequested = Options.Runs;

  // Ground-truth oracle: the validator's *base* inputs only, so a
  // divergence found solely through the validator's mined inputs is
  // visible as an extended catch rather than silently agreeing.
  fuzz::OracleOptions Oracle;
  Oracle.Inputs = Options.Validation.Inputs;
  Oracle.Fuel = Options.Validation.Fuel;
  Oracle.FuelOptimized = Options.Validation.FuelCandidate;

  std::map<std::string, unsigned> RetainedPerRule;
  for (unsigned I = 0; I < Options.Runs; ++I) {
    uint64_t RunSeed = Options.Seed + I;
    ir::Program Prog =
        ir::generateProgram(fuzz::deriveGenOptions(I), RunSeed);
    ++Sum.RunsExecuted;

    for (const fuzz::FuzzTarget &T : Targets) {
      fuzz::ApplyOutcome A = fuzz::applyRule(T.Opt, T.Analyses, Prog);
      if (A.Applied == 0)
        continue;
      ++Sum.PairsValidated;
      AdversaryRuleStats &RS = Sum.PerRule[T.Opt.Name];
      ++RS.Applications;

      std::optional<fuzz::Divergence> D =
          fuzz::diffPrograms(Prog, A.Prog, Oracle);
      ValidationReport R =
          validatePrograms(Prog, A.Prog, Checker, Options.Validation);

      AdversaryClass C = classify(D.has_value(), R.V);
      switch (C) {
      case AdversaryClass::AC_Agree:
        ++Sum.Agree;
        break;
      case AdversaryClass::AC_Unproven:
        ++Sum.Unproven;
        break;
      case AdversaryClass::AC_Caught:
        ++Sum.Caught;
        ++RS.Caught;
        break;
      case AdversaryClass::AC_MissedUnknown:
        ++Sum.MissedUnknown;
        ++RS.MissedUnknown;
        break;
      case AdversaryClass::AC_ExtendedCatch:
        ++Sum.ExtendedCatch;
        ++RS.ExtendedCatch;
        break;
      case AdversaryClass::AC_Blessed:
        ++Sum.Blessed;
        ++RS.Blessed;
        support::metricAdd("validate.adversary.blessed");
        break;
      }
      if (D) {
        ++Sum.Diverged;
        ++RS.Diverged;
      }

      // Retain (and optionally minimize) divergent pairs for the replay
      // corpus — and every blessed pair unconditionally, since each one
      // is a bug report against the validator itself.
      bool Retain = C == AdversaryClass::AC_Blessed ||
                    ((C == AdversaryClass::AC_Caught ||
                      C == AdversaryClass::AC_MissedUnknown) &&
                     RetainedPerRule[T.Opt.Name] < Options.MaxPairsPerRule);
      if (!Retain)
        continue;
      ++RetainedPerRule[T.Opt.Name];

      AdversaryPair P;
      P.Rule = T.Opt.Name;
      P.Seed = RunSeed;
      P.Original = Prog;
      P.Candidate = A.Prog;
      P.V = R.V;
      P.Class = C;
      if (D)
        P.Witness = D->str();

      if (Options.Minimize && D) {
        // Shrink the *original*; the candidate is recomputed by
        // re-applying the rule, so the reduced pair is still an honest
        // (input, miscompiled input) specimen.
        fuzz::FailurePredicate StillFails =
            [&T, &Oracle](const ir::Program &Q) {
              fuzz::ApplyOutcome QA = fuzz::applyRule(T.Opt, T.Analyses, Q);
              return QA.Applied > 0 &&
                     fuzz::diffPrograms(Q, QA.Prog, Oracle).has_value();
            };
        fuzz::ReduceResult Red = fuzz::reduceProgram(Prog, StillFails);
        P.StatementsBefore = Red.StatementsBefore;
        P.StatementsAfter = Red.StatementsAfter;
        P.ReduceRounds = Red.Rounds;
        P.Original = Red.Prog;
        P.Candidate = fuzz::applyRule(T.Opt, T.Analyses, Red.Prog).Prog;
        P.Witness = fuzz::diffPrograms(P.Original, P.Candidate, Oracle)->str();
        // Re-validate the reduced pair: its verdict is what the replay
        // corpus asserts, and a reduction that flips the verdict to
        // Equivalent is itself a blessed miscompile.
        ValidationReport RR = validatePrograms(P.Original, P.Candidate,
                                               Checker, Options.Validation);
        P.V = RR.V;
        P.Class = classify(true, RR.V);
        if (P.Class == AdversaryClass::AC_Blessed && C != P.Class) {
          ++Sum.Blessed;
          ++RS.Blessed;
          support::metricAdd("validate.adversary.blessed");
        }
      }
      Sum.Pairs.push_back(std::move(P));
    }
  }
  if (Span.enabled()) {
    Span.arg("pairs", Sum.PairsValidated);
    Span.arg("blessed", static_cast<uint64_t>(Sum.Blessed));
  }
  return Sum;
}

//===----------------------------------------------------------------------===//
// Corpus persistence.
//===----------------------------------------------------------------------===//

std::optional<std::string>
validate::saveValidationCorpus(const std::string &Dir,
                               const std::vector<AdversaryPair> &Pairs) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return "cannot create corpus dir " + Dir + ": " + EC.message();

  std::ofstream Manifest(Dir + "/manifest.txt");
  if (!Manifest)
    return "cannot write " + Dir + "/manifest.txt";
  Manifest << "# cobalt validation corpus manifest v1\n";

  unsigned Ordinal = 0;
  for (const AdversaryPair &P : Pairs) {
    std::string Stem = P.Rule + "_s" + std::to_string(P.Seed);
    for (char &C : Stem)
      if (C == '+' || C == '.')
        C = '_';
    Stem += "_" + std::to_string(Ordinal++);
    for (const auto &[Suffix, Prog] :
         {std::pair<const char *, const ir::Program *>{".orig.il",
                                                       &P.Original},
          {".cand.il", &P.Candidate}}) {
      std::ofstream Out(Dir + "/" + Stem + Suffix);
      if (!Out)
        return "cannot write " + Dir + "/" + Stem + Suffix;
      Out << ir::toString(*Prog);
    }
    Manifest << "orig=" << Stem << ".orig.il cand=" << Stem
             << ".cand.il rule=" << P.Rule << " seed=" << P.Seed
             << " verdict=" << verdictName(P.V)
             << " class=" << adversaryClassName(P.Class) << "\n";
  }
  return std::nullopt;
}

std::optional<std::vector<ValidationCorpusEntry>>
validate::loadValidationCorpusManifest(const std::string &Dir,
                                       std::string &Err) {
  std::ifstream In(Dir + "/manifest.txt");
  if (!In) {
    Err = "cannot read " + Dir + "/manifest.txt";
    return std::nullopt;
  }
  std::vector<ValidationCorpusEntry> Entries;
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    ValidationCorpusEntry E;
    std::istringstream Fields(Line);
    std::string Field;
    while (Fields >> Field) {
      size_t Eq = Field.find('=');
      if (Eq == std::string::npos) {
        Err = Dir + "/manifest.txt:" + std::to_string(LineNo) +
              ": malformed field '" + Field + "'";
        return std::nullopt;
      }
      std::string Key = Field.substr(0, Eq), Val = Field.substr(Eq + 1);
      if (Key == "orig")
        E.Original = Val;
      else if (Key == "cand")
        E.Candidate = Val;
      else if (Key == "rule")
        E.Rule = Val;
      else if (Key == "seed")
        E.Seed = std::stoull(Val);
      else if (Key == "verdict")
        E.Verdict = Val;
      else if (Key == "class")
        E.Class = Val;
      // Unknown keys: ignored for forward compatibility.
    }
    if (E.Original.empty() || E.Candidate.empty() || E.Rule.empty()) {
      Err = Dir + "/manifest.txt:" + std::to_string(LineNo) +
            ": record missing orig=/cand=/rule=";
      return std::nullopt;
    }
    Entries.push_back(std::move(E));
  }
  return Entries;
}
