//===- Relation.h - Cut points, correspondence, and path enumeration -*-C++-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control-flow half of relation synthesis: choose cut points in the
/// original (entry + loop headers), propose corresponding candidate
/// locations (same index when the bodies have equal length, plus every
/// candidate node with identical statement text — the latter is what
/// aligns rotated loops), and enumerate the cut-to-cut statement paths
/// each side can take. A wrong correspondence can only make obligations
/// unprovable (verdict Unknown), never prove a false equivalence: the
/// proof rule itself — every related pair simulates along every original
/// path — is sound for *any* relation that contains the entry pair and
/// whose cut sets break every cycle.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_VALIDATE_RELATION_H
#define COBALT_VALIDATE_RELATION_H

#include "ir/Cfg.h"

#include <string>
#include <utility>
#include <vector>

namespace cobalt {
namespace validate {

/// One cut-to-cut path: the statement indices *executed* (in order),
/// then the node the path stops at — a cut/stop node or a return
/// statement, which is not executed.
struct CutPath {
  std::vector<int> Nodes;
  int End = 0;
  bool EndsAtReturn = false;
};

/// The synthesized control correspondence for one procedure pair.
struct Correspondence {
  std::vector<int> CutsA;  ///< Original cuts (sorted; always holds 0).
  std::vector<int> StopsB; ///< Candidate stop nodes (sorted; holds 0).
  /// Related pairs (i, j): original cut i corresponds to candidate stop
  /// j. Always contains (0, 0). One original cut may relate to several
  /// candidate stops (rotated loops test at two program points).
  std::vector<std::pair<int, int>> Pairs;
};

/// Entry + back-edge targets of a depth-first traversal from the entry:
/// cutting these breaks every reachable cycle. Sorted, deduplicated.
std::vector<int> chooseCuts(const ir::Cfg &G);

/// True when every reachable cycle of \p G passes through a node in
/// \p Cuts — the condition under which cut-to-cut paths are finite and
/// enumeration below is exhaustive.
bool cutsBreakAllCycles(const ir::Cfg &G, const std::vector<int> &Cuts);

/// Synthesizes the correspondence, or returns false with \p Why set when
/// no candidate stop set both aligns with the original cuts and breaks
/// every candidate cycle.
bool synthesizeCorrespondence(const ir::Cfg &A, const ir::Cfg &B,
                              Correspondence &Out, std::string *Why);

/// All execution paths from \p From (executing From first) up to but not
/// including the next stop/return node. Returns false when \p MaxPaths
/// or \p MaxLen is exceeded (enumeration would be incomplete, so the
/// caller must degrade to Unknown). When \p From itself is a return
/// node, yields the single empty path ending there.
bool enumeratePaths(const ir::Cfg &G, const std::vector<int> &Stops,
                    int From, unsigned MaxPaths, unsigned MaxLen,
                    std::vector<CutPath> &Out);

} // namespace validate
} // namespace cobalt

#endif // COBALT_VALIDATE_RELATION_H
