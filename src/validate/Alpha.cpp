//===- Alpha.cpp - Alpha-equivalence of IL procedures -----------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "validate/Alpha.h"

#include <map>
#include <sstream>
#include <variant>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

/// The bijection under construction plus the failure slot. All match*
/// helpers return false after recording the first mismatch.
struct AlphaCtx {
  std::map<std::string, std::string> AtoB;
  std::map<std::string, std::string> BtoA;
  std::string Why;

  bool fail(const std::string &Msg) {
    if (Why.empty())
      Why = Msg;
    return false;
  }

  bool matchVar(const Var &A, const Var &B) {
    if (A.IsMeta || B.IsMeta)
      return fail("pattern variable in a ground procedure");
    auto ItA = AtoB.find(A.Name);
    auto ItB = BtoA.find(B.Name);
    if (ItA == AtoB.end() && ItB == BtoA.end()) {
      AtoB[A.Name] = B.Name;
      BtoA[B.Name] = A.Name;
      return true;
    }
    if (ItA != AtoB.end() && ItA->second == B.Name)
      return true;
    return fail("variable '" + A.Name + "' does not correspond to '" +
                B.Name + "'");
  }

  bool matchBase(const BaseExpr &A, const BaseExpr &B) {
    if (isVar(A) != isVar(B))
      return fail("base expression kind mismatch");
    if (isVar(A))
      return matchVar(asVar(A), asVar(B));
    const ConstVal &CA = asConst(A), &CB = asConst(B);
    if (CA.IsMeta || CB.IsMeta)
      return fail("pattern constant in a ground procedure");
    if (CA.Value != CB.Value)
      return fail("constant mismatch");
    return true;
  }

  bool matchExpr(const Expr &A, const Expr &B) {
    if (A.V.index() != B.V.index())
      return fail("expression kind mismatch");
    if (A.is<Var>())
      return matchVar(A.as<Var>(), B.as<Var>());
    if (A.is<ConstVal>())
      return matchBase(BaseExpr(A.as<ConstVal>()),
                       BaseExpr(B.as<ConstVal>()));
    if (A.is<DerefExpr>())
      return matchVar(A.as<DerefExpr>().Ptr, B.as<DerefExpr>().Ptr);
    if (A.is<AddrOfExpr>())
      return matchVar(A.as<AddrOfExpr>().Target, B.as<AddrOfExpr>().Target);
    if (A.is<OpExpr>()) {
      const OpExpr &OA = A.as<OpExpr>(), &OB = B.as<OpExpr>();
      if (OA.Op != OB.Op || OA.Args.size() != OB.Args.size())
        return fail("operator mismatch");
      for (size_t I = 0; I < OA.Args.size(); ++I)
        if (!matchBase(OA.Args[I], OB.Args[I]))
          return false;
      return true;
    }
    return fail("pattern expression in a ground procedure");
  }

  bool matchLhs(const Lhs &A, const Lhs &B) {
    if (isVarLhs(A) != isVarLhs(B))
      return fail("lhs kind mismatch");
    return matchVar(lhsVar(A), lhsVar(B));
  }

  bool matchStmt(const Stmt &A, const Stmt &B, int Index) {
    std::ostringstream At;
    At << "statement " << Index << ": ";
    if (A.V.index() != B.V.index())
      return fail(At.str() + "statement kind mismatch");
    if (A.is<DeclStmt>())
      return matchVar(A.as<DeclStmt>().Name, B.as<DeclStmt>().Name);
    if (A.is<SkipStmt>())
      return true;
    if (A.is<AssignStmt>())
      return matchLhs(A.as<AssignStmt>().Target, B.as<AssignStmt>().Target) &&
             matchExpr(A.as<AssignStmt>().Value, B.as<AssignStmt>().Value);
    if (A.is<NewStmt>())
      return matchVar(A.as<NewStmt>().Target, B.as<NewStmt>().Target);
    if (A.is<CallStmt>()) {
      const CallStmt &CA = A.as<CallStmt>(), &CB = B.as<CallStmt>();
      // Procedure names are global — they must match exactly, never via
      // the local-variable bijection.
      if (CA.Callee.IsMeta || CB.Callee.IsMeta)
        return fail(At.str() + "pattern callee in a ground procedure");
      if (CA.Callee.Name != CB.Callee.Name)
        return fail(At.str() + "callee mismatch");
      return matchVar(CA.Target, CB.Target) && matchBase(CA.Arg, CB.Arg);
    }
    if (A.is<BranchStmt>()) {
      const BranchStmt &BA = A.as<BranchStmt>(), &BB = B.as<BranchStmt>();
      if (BA.Then.IsMeta || BB.Then.IsMeta || BA.Else.IsMeta ||
          BB.Else.IsMeta)
        return fail(At.str() + "pattern index in a ground procedure");
      if (BA.Then.Value != BB.Then.Value || BA.Else.Value != BB.Else.Value)
        return fail(At.str() + "branch target mismatch");
      return matchBase(BA.Cond, BB.Cond);
    }
    if (A.is<ReturnStmt>())
      return matchVar(A.as<ReturnStmt>().Value, B.as<ReturnStmt>().Value);
    return fail(At.str() + "unhandled statement kind");
  }
};

} // namespace

bool validate::alphaEquivalent(const Procedure &A, const Procedure &B,
                               std::string *Why) {
  AlphaCtx Ctx;
  auto Report = [&](bool Ok) {
    if (!Ok && Why)
      *Why = Ctx.Why.empty() ? "procedures differ" : Ctx.Why;
    return Ok;
  };
  if (A.Name != B.Name)
    return Report(Ctx.fail("procedure name mismatch"));
  if (A.size() != B.size())
    return Report(Ctx.fail("statement count mismatch"));
  // The parameter is the one pre-seeded correspondence: both procedures
  // receive their argument through it.
  if (!Ctx.matchVar(Var::concrete(A.Param), Var::concrete(B.Param)))
    return Report(false);
  for (int I = 0; I < A.size(); ++I)
    if (!Ctx.matchStmt(A.stmtAt(I), B.stmtAt(I), I))
      return Report(false);
  return Report(true);
}
