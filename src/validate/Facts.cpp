//===- Facts.cpp - Engine-mined value facts ---------------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "validate/Facts.h"

#include "core/Formula.h"
#include "engine/Dataflow.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <algorithm>
#include <set>

using namespace cobalt;
using namespace cobalt::validate;

namespace {

/// Meta names a witness reads (from its eval terms and variable slots).
void collectWitnessMetas(const Witness &W, std::vector<std::string> &Out) {
  auto AddTerm = [&Out](const WTerm &T) {
    ir::collectMetaNames(T.E, Out);
  };
  switch (W.K) {
  case Witness::Kind::WK_Eq:
    AddTerm(W.LhsT);
    AddTerm(W.RhsT);
    break;
  case Witness::Kind::WK_EqUpTo:
  case Witness::Kind::WK_NotPointedTo:
    if (W.X.IsMeta && !W.X.Name.empty() &&
        std::find(Out.begin(), Out.end(), W.X.Name) == Out.end())
      Out.push_back(W.X.Name);
    break;
  default:
    break;
  }
  for (const WitnessPtr &Kid : W.Kids)
    if (Kid)
      collectWitnessMetas(*Kid, Out);
}

/// The fact-mining rules: proven forward rules whose witnesses are point
/// facts about one state. Their guards carry the label definitions they
/// need; the rules themselves are part of the proven suite, which is
/// what justifies assuming their witnesses (see Facts.h).
const std::vector<Optimization> &minerRules() {
  static const std::vector<Optimization> Rules = {opts::constProp(),
                                                  opts::copyProp()};
  return Rules;
}

/// One shared registry covering every miner rule's labels.
const LabelRegistry &minerRegistry() {
  static const LabelRegistry Registry = [] {
    LabelRegistry R;
    for (const LabelDef &Def : opts::standardLabels())
      if (!R.findPredicate(Def.Name))
        R.define(Def);
    for (const Optimization &O : minerRules())
      for (const LabelDef &Def : O.Labels)
        if (!R.findPredicate(Def.Name))
          R.define(Def);
    return R;
  }();
  return Registry;
}

} // namespace

std::vector<std::vector<ValueFact>>
validate::mineFacts(const ir::Cfg &G, unsigned MaxPerNode) {
  std::vector<std::vector<ValueFact>> Out(
      static_cast<size_t>(G.size()));
  const LabelRegistry &Registry = minerRegistry();

  for (const Optimization &O : minerRules()) {
    if (!O.Pat.W || O.Pat.Dir != Direction::D_Forward)
      continue;
    std::vector<std::string> Metas;
    collectWitnessMetas(*O.Pat.W, Metas);

    engine::GuardSolution Sol = engine::solveGuard(
        Direction::D_Forward, O.Pat.G, G, Registry, nullptr);
    for (int I = 0; I < G.size(); ++I) {
      for (const Substitution &Theta : Sol.AtNode[I]) {
        // Only substitutions grounding *every* meta the witness reads
        // become facts: a fact with an unresolved meta would assert a
        // property of an unconstrained fresh constant, which is not a
        // theorem about the program.
        bool Grounded = true;
        for (const std::string &M : Metas) {
          const Binding *B = Theta.lookup(M);
          if (!B || !(B->isVar() || B->isConst() || B->isExpr()))
            Grounded = false;
        }
        if (!Grounded)
          continue;
        ValueFact F;
        F.W = O.Pat.W;
        F.Theta = Theta;
        F.Text = O.Name + "{";
        for (const std::string &M : Metas)
          F.Text += M + "=" + Theta.lookup(M)->str() + ";";
        F.Text += "}";
        Out[I].push_back(std::move(F));
      }
    }
  }

  // Deterministic order + dedup by rendering, then cap.
  for (std::vector<ValueFact> &Facts : Out) {
    std::sort(Facts.begin(), Facts.end(),
              [](const ValueFact &A, const ValueFact &B) {
                return A.Text < B.Text;
              });
    Facts.erase(std::unique(Facts.begin(), Facts.end(),
                            [](const ValueFact &A, const ValueFact &B) {
                              return A.Text == B.Text;
                            }),
                Facts.end());
    if (Facts.size() > MaxPerNode)
      Facts.resize(MaxPerNode);
  }
  return Out;
}
