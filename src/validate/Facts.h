//===- Facts.h - Engine-mined value facts for simulation relations -*- C++-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "seeded from the engine's facts" half of relation synthesis: the
/// validator runs the substitution-set dataflow engine over the
/// *original* procedure with the guards of proven forward rules
/// (constProp, copyProp) and turns every solution (ι, θ) into a value
/// fact — the rule's witness instantiated at θ, e.g. η(y) = 3 or
/// η(y) = η(z) — that holds of every execution state reaching ι.
///
/// Soundness: the rules are proven by the checker once and for all, and
/// the paper's meta-theorem (Theorem 1's witnessing-region invariant,
/// obligations F1/F2) says exactly that θ(W) holds at ι whenever
/// (ι, θ) ∈ [[ψ1 followed by ψ2]](p). The engine computes that set, so
/// assuming the instantiated witness of the *original*'s state at a cut
/// is sound — no per-program re-proof needed. Facts about the candidate
/// are never assumed: at a cut the simulation relation makes the states
/// component-equal, so original-side facts already constrain both.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_VALIDATE_FACTS_H
#define COBALT_VALIDATE_FACTS_H

#include "core/Substitution.h"
#include "core/Witness.h"
#include "ir/Cfg.h"

#include <string>
#include <vector>

namespace cobalt {
namespace validate {

/// One instantiated value fact holding at a node's pre-state.
struct ValueFact {
  WitnessPtr W;       ///< The proven rule's (forward) witness.
  Substitution Theta; ///< Ground bindings for every meta W mentions.
  std::string Text;   ///< Canonical rendering (dedup + fingerprints).
};

/// Facts per node of \p G (indexed like the procedure's statements),
/// capped at \p MaxPerNode per node. Deterministic: facts are ordered by
/// their canonical rendering.
std::vector<std::vector<ValueFact>> mineFacts(const ir::Cfg &G,
                                              unsigned MaxPerNode);

} // namespace validate
} // namespace cobalt

#endif // COBALT_VALIDATE_FACTS_H
