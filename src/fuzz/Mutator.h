//===- Mutator.h - Mutations of IL programs and Cobalt rules ----*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured mutations for the fuzzing harness, on both sides of the
/// soundness contract:
///
/// * **IL program mutations** widen the generator's distribution: single
///   edits (constant tweaks, operator swaps, branch-leg swaps, statement
///   erasure, forward branch redirects) applied to a generated program.
///   Every mutant is well-formed (`validateProgram`) and keeps the
///   generator's termination discipline — branch redirects only move
///   targets *forward*, so no mutation can introduce an unbounded loop
///   that the original did not have.
///
/// * **Cobalt rule mutations** produce near-miss variants of a rule the
///   way a rule author would get them wrong: dropping a guard conjunct,
///   replacing the innocuous-statement condition ψ2 by `true`, and
///   tweaking constants in the rewrite result. Mutants feed the
///   CheckerOracle: whatever the mutation, a mutant the checker calls
///   Sound must never miscompile. Mutation is *systematic* (an
///   enumeration, not a random walk) so a mutant list is reproducible
///   from the rule alone.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_FUZZ_MUTATOR_H
#define COBALT_FUZZ_MUTATOR_H

#include "core/Optimization.h"
#include "ir/Ast.h"

#include <cstdint>
#include <vector>

namespace cobalt {
namespace fuzz {

/// Produces up to \p Count distinct single-edit mutants of \p Prog.
/// Deterministic in (Prog, Seed): the same pair always yields the same
/// mutants, independent of process or thread schedule. Mutants failing
/// validation are discarded (the result may be shorter than Count).
std::vector<ir::Program> mutateProgram(const ir::Program &Prog,
                                       uint64_t Seed, unsigned Count);

/// Systematically enumerates guard/rewrite mutants of \p Rule, capped at
/// \p MaxMutants. Mutant names are `<rule>.mut<K>` with a stable K per
/// mutation site. Mutants failing validateOptimization are skipped.
std::vector<Optimization> mutateRule(const Optimization &Rule,
                                     unsigned MaxMutants = 8);

} // namespace fuzz
} // namespace cobalt

#endif // COBALT_FUZZ_MUTATOR_H
