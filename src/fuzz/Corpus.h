//===- Corpus.h - On-disk corpus of minimized divergences -------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The corpus is a directory of `.il` reproducers plus one `manifest.txt`
/// describing what each reproducer demonstrates:
///
/// \code
///   # cobalt-fuzz corpus manifest v1
///   file=const_prop_no_guard_s3_0.il rule=const_prop_no_guard seed=3
///       input=7 kind=wrong-value verdict=Unsound check=caught-by-checker
///   (one record per line; wrapped here for width)
/// \endcode
///
/// One `key=value` record per line (values never contain spaces; the
/// rule's free-text explanation stays in Buggy.cpp). The checked-in seed
/// corpus under tests/fuzz/corpus is replayed entry-by-entry by ctest,
/// so every historical divergence is a named regression test.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_FUZZ_CORPUS_H
#define COBALT_FUZZ_CORPUS_H

#include "checker/Soundness.h"
#include "fuzz/Fuzzer.h"

#include <optional>
#include <string>
#include <vector>

namespace cobalt {
namespace fuzz {

/// One manifest record.
struct CorpusEntry {
  std::string File; ///< .il path relative to the corpus directory.
  std::string Rule; ///< Target rule name (resolved via stock suites).
  uint64_t Seed = 0;
  int64_t Input = 0;    ///< The input that exposed the divergence.
  std::string Kind;     ///< Divergence kindName().
  std::string Verdict;  ///< "Sound" / "Unsound" / "Unproven".
  std::string Check;    ///< "caught-by-checker" / "checker-missed".
};

const char *verdictName(checker::CheckReport::Verdict V);
std::optional<checker::CheckReport::Verdict>
verdictFromName(const std::string &Name);
const char *crossCheckName(CrossCheck C);

/// Writes every finding as `<rule>_s<seed>.il` plus the manifest into
/// \p Dir (created if missing). Returns an error message on I/O failure.
std::optional<std::string> saveCorpus(const std::string &Dir,
                                      const std::vector<FuzzFinding> &Fs);

/// Parses `Dir/manifest.txt`. Returns nullopt and sets \p Err on
/// failure; unknown keys are ignored (forward compatibility).
std::optional<std::vector<CorpusEntry>>
loadCorpusManifest(const std::string &Dir, std::string &Err);

} // namespace fuzz
} // namespace cobalt

#endif // COBALT_FUZZ_CORPUS_H
