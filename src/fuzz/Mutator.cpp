//===- Mutator.cpp --------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include "core/Formula.h"

#include <random>

using namespace cobalt;
using namespace cobalt::fuzz;
using namespace cobalt::ir;

//===----------------------------------------------------------------------===//
// IL program mutations.
//===----------------------------------------------------------------------===//

namespace {

/// Editable references into one procedure, collected up front so a
/// mutation can pick a site uniformly.
struct MutationSites {
  std::vector<ConstVal *> Consts;   ///< Concrete constants.
  std::vector<OpExpr *> Ops;        ///< Operator applications.
  std::vector<BranchStmt *> Branches;
  std::vector<int> ErasableStmts;   ///< Assign/new/call indices.
};

void collectSites(Procedure &P, MutationSites &Out) {
  auto FromBase = [&](BaseExpr &B) {
    if (auto *C = std::get_if<ConstVal>(&B); C && !C->IsMeta)
      Out.Consts.push_back(C);
  };
  for (int I = 0; I < P.size(); ++I) {
    Stmt &S = P.Stmts[I];
    if (auto *A = std::get_if<AssignStmt>(&S.V)) {
      Out.ErasableStmts.push_back(I);
      if (auto *C = std::get_if<ConstVal>(&A->Value.V); C && !C->IsMeta)
        Out.Consts.push_back(C);
      if (auto *Op = std::get_if<OpExpr>(&A->Value.V)) {
        Out.Ops.push_back(Op);
        for (BaseExpr &B : Op->Args)
          FromBase(B);
      }
    } else if (S.is<NewStmt>() || S.is<CallStmt>()) {
      Out.ErasableStmts.push_back(I);
      if (auto *C = std::get_if<CallStmt>(&S.V))
        FromBase(C->Arg);
    } else if (auto *B = std::get_if<BranchStmt>(&S.V)) {
      Out.Branches.push_back(B);
      FromBase(B->Cond);
    }
  }
}

/// Applies one random edit in place; returns false when the chosen site
/// class is empty.
bool applyOneEdit(Procedure &P, std::mt19937_64 &Rng) {
  MutationSites Sites;
  collectSites(P, Sites);
  auto Pick = [&](size_t Bound) {
    return static_cast<size_t>(Rng() % Bound);
  };
  switch (Pick(5)) {
  case 0: { // constant tweak
    if (Sites.Consts.empty())
      return false;
    ConstVal *C = Sites.Consts[Pick(Sites.Consts.size())];
    static const int64_t Deltas[] = {1, -1, 0, 2};
    int64_t D = Deltas[Pick(4)];
    C->Value = D == 0 ? -C->Value : C->Value + D;
    return true;
  }
  case 1: { // operator swap (same arity)
    if (Sites.Ops.empty())
      return false;
    OpExpr *Op = Sites.Ops[Pick(Sites.Ops.size())];
    static const char *Pool[] = {"+", "-",  "*",  "==", "!=",
                                 "<", "<=", ">",  ">="};
    Op->Op = Pool[Pick(sizeof(Pool) / sizeof(Pool[0]))];
    return true;
  }
  case 2: { // branch leg swap
    if (Sites.Branches.empty())
      return false;
    BranchStmt *B = Sites.Branches[Pick(Sites.Branches.size())];
    std::swap(B->Then, B->Else);
    return true;
  }
  case 3: { // statement erasure
    if (Sites.ErasableStmts.empty())
      return false;
    P.Stmts[Sites.ErasableStmts[Pick(Sites.ErasableStmts.size())]] =
        Stmt(SkipStmt{});
    return true;
  }
  default: { // forward branch redirect (termination-preserving)
    if (Sites.Branches.empty())
      return false;
    BranchStmt *B = Sites.Branches[Pick(Sites.Branches.size())];
    Index *Leg = Pick(2) ? &B->Then : &B->Else;
    int Lo = Leg->Value;
    if (Lo >= P.size())
      return false;
    Leg->Value = Lo + static_cast<int>(Pick(
                          static_cast<size_t>(P.size() - Lo)));
    return true;
  }
  }
}

} // namespace

std::vector<Program> fuzz::mutateProgram(const Program &Prog, uint64_t Seed,
                                         unsigned Count) {
  std::mt19937_64 Rng(Seed ^ 0x6d757461746f72ull); // "mutator"
  std::vector<Program> Mutants;
  unsigned Attempts = 0;
  while (Mutants.size() < Count && Attempts < Count * 4 + 8) {
    ++Attempts;
    Program M = Prog;
    // Mutate main with 1-2 edits; helpers stay pristine so call-heavy
    // programs keep their cross-procedure shapes intact.
    Procedure *Main = M.findProc("main");
    if (!Main)
      break;
    unsigned Edits = 1 + static_cast<unsigned>(Rng() % 2);
    bool Any = false;
    for (unsigned E = 0; E < Edits; ++E)
      Any = applyOneEdit(*Main, Rng) || Any;
    if (!Any || validateProgram(M))
      continue;
    if (M == Prog)
      continue;
    Mutants.push_back(std::move(M));
  }
  return Mutants;
}

//===----------------------------------------------------------------------===//
// Cobalt rule mutations.
//===----------------------------------------------------------------------===//

namespace {

/// Flattens nested binary conjunctions into a list.
void conjuncts(const FormulaPtr &F, std::vector<FormulaPtr> &Out) {
  if (F && F->K == Formula::Kind::FK_And) {
    for (const FormulaPtr &Kid : F->Kids)
      conjuncts(Kid, Out);
    return;
  }
  Out.push_back(F);
}

FormulaPtr conjoin(const std::vector<FormulaPtr> &Fs) {
  if (Fs.empty())
    return fTrue();
  FormulaPtr Acc = Fs.front();
  for (size_t I = 1; I < Fs.size(); ++I)
    Acc = fAnd(Acc, Fs[I]);
  return Acc;
}

/// Collects concrete constants inside a statement (rewrite sides).
void collectStmtConsts(Stmt &S, std::vector<ConstVal *> &Out) {
  auto FromBase = [&](BaseExpr &B) {
    if (auto *C = std::get_if<ConstVal>(&B); C && !C->IsMeta)
      Out.push_back(C);
  };
  if (auto *A = std::get_if<AssignStmt>(&S.V)) {
    if (auto *C = std::get_if<ConstVal>(&A->Value.V); C && !C->IsMeta)
      Out.push_back(C);
    if (auto *Op = std::get_if<OpExpr>(&A->Value.V))
      for (BaseExpr &B : Op->Args)
        FromBase(B);
  } else if (auto *B = std::get_if<BranchStmt>(&S.V)) {
    FromBase(B->Cond);
  }
}

void pushMutant(std::vector<Optimization> &Out, const Optimization &Base,
                unsigned K, Optimization Mutant) {
  Mutant.Name = Base.Name + ".mut" + std::to_string(K);
  if (!validateOptimization(Mutant))
    Out.push_back(std::move(Mutant));
}

} // namespace

std::vector<Optimization> fuzz::mutateRule(const Optimization &Rule,
                                           unsigned MaxMutants) {
  std::vector<Optimization> Out;
  unsigned K = 0;

  // 1. Forget the region side condition entirely: ψ2 := true. The
  // classic missing-side-condition bug (cf. constPropNoGuard).
  {
    Optimization M = Rule;
    M.Pat.G.Psi2 = fTrue();
    pushMutant(Out, Rule, K, std::move(M));
  }
  ++K;

  // 2. Drop each top-level conjunct of ψ2 in turn.
  {
    std::vector<FormulaPtr> Cs;
    conjuncts(Rule.Pat.G.Psi2, Cs);
    if (Cs.size() > 1) {
      for (size_t Drop = 0; Drop < Cs.size() && Out.size() < MaxMutants;
           ++Drop, ++K) {
        std::vector<FormulaPtr> Kept;
        for (size_t I = 0; I < Cs.size(); ++I)
          if (I != Drop)
            Kept.push_back(Cs[I]);
        Optimization M = Rule;
        M.Pat.G.Psi2 = conjoin(Kept);
        pushMutant(Out, Rule, K, std::move(M));
      }
    } else {
      K += static_cast<unsigned>(Cs.size() > 1 ? Cs.size() : 0);
    }
  }

  // 3. Drop each top-level conjunct of ψ1 beyond the first (the first
  // is usually the enabling stmt() match; dropping it rarely validates).
  {
    std::vector<FormulaPtr> Cs;
    conjuncts(Rule.Pat.G.Psi1, Cs);
    for (size_t Drop = 1; Drop < Cs.size() && Out.size() < MaxMutants;
         ++Drop, ++K) {
      std::vector<FormulaPtr> Kept;
      for (size_t I = 0; I < Cs.size(); ++I)
        if (I != Drop)
          Kept.push_back(Cs[I]);
      Optimization M = Rule;
      M.Pat.G.Psi1 = conjoin(Kept);
      pushMutant(Out, Rule, K, std::move(M));
    }
  }

  // 4. Tweak each concrete constant in the rewrite result s'.
  {
    Optimization Probe = Rule;
    std::vector<ConstVal *> Cs;
    collectStmtConsts(Probe.Pat.To, Cs);
    for (size_t I = 0; I < Cs.size() && Out.size() < MaxMutants;
         ++I, ++K) {
      Optimization M = Rule;
      std::vector<ConstVal *> MCs;
      collectStmtConsts(M.Pat.To, MCs);
      MCs[I]->Value += 1;
      pushMutant(Out, Rule, K, std::move(M));
    }
  }

  if (Out.size() > MaxMutants)
    Out.resize(MaxMutants);
  return Out;
}
