//===- Fuzzer.cpp ---------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Mutator.h"
#include "ir/Generator.h"
#include "opts/Buggy.h"
#include "opts/Optimizations.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>

using namespace cobalt;
using namespace cobalt::fuzz;
using namespace cobalt::ir;

//===----------------------------------------------------------------------===//
// Generator configuration cycling.
//===----------------------------------------------------------------------===//

GenOptions fuzz::deriveGenOptions(uint64_t RunIndex) {
  GenOptions G;
  G.NumVars = 5;
  G.NumStmts = 18;
  switch (RunIndex % 8) {
  case 0: // plain straight-line + structured control flow
    G.BaitPressure = 20; // scalar CSE bait only
    break;
  case 1: // pointer-light
    G.WithPointers = true;
    G.BaitPressure = 35;
    break;
  case 2: // pointer-heavy with aliasing pressure
    G.WithPointers = true;
    G.AliasPressure = 55;
    G.BaitPressure = 25;
    break;
  case 3: // unstructured control flow
    G.WithGotos = true;
    G.WithReturnInLoop = true;
    break;
  case 4: // interprocedural
    G.WithCalls = true;
    G.NumHelperProcs = 2;
    G.BaitPressure = 20;
    break;
  case 5: // escape-friendly: pointers escape through helper returns.
          // Alias pressure stays low here: stuck originals impose no
          // obligation, so a habitat meant to observe escaped-local
          // reads must keep most executions alive to the return.
    G.WithPointers = true;
    G.WithCalls = true;
    G.NumHelperProcs = 2;
    G.AliasPressure = 15;
    G.BaitPressure = 45;
    break;
  case 6: // stuck-state habitat: division (possibly by zero)
    G.WithDivision = true;
    break;
  default: // everything at once
    G.WithPointers = true;
    G.WithCalls = true;
    G.NumHelperProcs = 1;
    G.WithGotos = true;
    G.WithReturnInLoop = true;
    G.AliasPressure = 30;
    G.WithDivision = true;
    G.BaitPressure = 20;
    break;
  }
  return G;
}

//===----------------------------------------------------------------------===//
// The loop.
//===----------------------------------------------------------------------===//

namespace {

/// What one (run, target) pair observed; slots are index-keyed so the
/// parallel fan-out never races on shared counters.
struct RunHit {
  unsigned Target = 0;
  bool Applied = false;
  bool FromMutant = false;
  ir::Program Prog;  ///< The diverging input program (empty if none).
  bool Diverged = false;
};

struct RunSlot {
  std::vector<RunHit> Hits; ///< One per (program, target) with >=1 rewrite.
};

uint64_t mixSeed(uint64_t Seed) {
  // splitmix64 finalizer: decorrelates consecutive run seeds for the
  // fault-injection key without touching generation determinism.
  Seed += 0x9e3779b97f4a7c15ull;
  Seed = (Seed ^ (Seed >> 30)) * 0xbf58476d1ce4e5b9ull;
  Seed = (Seed ^ (Seed >> 27)) * 0x94d049bb133111ebull;
  return Seed ^ (Seed >> 31);
}

void runOne(uint64_t BaseSeed, size_t RunIndex,
            const std::vector<FuzzTarget> &Targets,
            const FuzzOptions &Options, RunSlot &Slot) {
  uint64_t RunSeed = BaseSeed + RunIndex;
  support::ScopedFaultKey FK(mixSeed(RunSeed));
  support::TraceSpan Span("fuzz", "run");

  GenOptions GO = deriveGenOptions(RunIndex);
  Program Generated = generateProgram(GO, RunSeed);
  std::vector<Program> Programs;
  Programs.push_back(std::move(Generated));
  if (Options.MutantsPerProgram > 0)
    for (Program &M :
         mutateProgram(Programs.front(), RunSeed, Options.MutantsPerProgram))
      Programs.push_back(std::move(M));
  support::metricAdd("fuzz.programs", Programs.size());

  for (size_t PI = 0; PI < Programs.size(); ++PI) {
    for (unsigned TI = 0; TI < Targets.size(); ++TI) {
      const FuzzTarget &T = Targets[TI];
      ApplyOutcome AO = applyRule(T.Opt, T.Analyses, Programs[PI]);
      if (AO.Applied == 0)
        continue;
      RunHit Hit;
      Hit.Target = TI;
      Hit.Applied = true;
      Hit.FromMutant = PI > 0;
      auto Div = diffPrograms(Programs[PI], AO.Prog, Options.Oracle);
      if (Div) {
        Hit.Diverged = true;
        Hit.Prog = Programs[PI];
        support::metricAdd("fuzz.divergences");
      }
      Slot.Hits.push_back(std::move(Hit));
    }
  }
  if (Span.enabled())
    Span.arg("seed", RunSeed);
}

/// Reduces one diverging program against its target and builds the full
/// finding (sequential post-pass; determinism does not depend on it).
FuzzFinding buildFinding(const FuzzTarget &T, const RunHit &Hit,
                         uint64_t RunSeed, const FuzzOptions &Options) {
  FuzzFinding F;
  F.Rule = T.Opt.Name;
  F.Seed = RunSeed;
  F.FromMutant = Hit.FromMutant;
  F.Verdict = T.Verdict;
  F.StatementsBefore = totalStmts(Hit.Prog);

  FailurePredicate StillFails = [&](const Program &Cand) {
    ApplyOutcome AO = applyRule(T.Opt, T.Analyses, Cand);
    if (AO.Applied == 0)
      return false;
    return diffPrograms(Cand, AO.Prog, Options.Oracle).has_value();
  };

  Program Reduced = Hit.Prog;
  if (Options.Minimize) {
    ReduceResult R = reduceProgram(Hit.Prog, StillFails, Options.Reduce);
    Reduced = std::move(R.Prog);
    F.ReduceRounds = R.Rounds;
    F.ReduceFixpoint = R.Fixpoint;
  }
  F.StatementsAfter = totalStmts(Reduced);

  ApplyOutcome AO = applyRule(T.Opt, T.Analyses, Reduced);
  F.Div = diffPrograms(Reduced, AO.Prog, Options.Oracle)
              .value_or(Divergence{});
  F.Check = crossCheck(T.Verdict, /*Diverged=*/true);
  F.Original = std::move(Reduced);
  F.Optimized = std::move(AO.Prog);

  // Pin the divergence to a single rewrite site when one suffices.
  for (unsigned K = 0; K < AO.Applied && K < 8; ++K) {
    Optimization Narrowed = restrictToSite(T.Opt, K);
    ApplyOutcome NAO = applyRule(Narrowed, T.Analyses, F.Original);
    if (NAO.Applied > 0 &&
        diffPrograms(F.Original, NAO.Prog, Options.Oracle)) {
      F.NarrowedSite = static_cast<int>(K);
      break;
    }
  }
  return F;
}

} // namespace

FuzzSummary fuzz::runFuzz(const std::vector<FuzzTarget> &Targets,
                          const FuzzOptions &Options,
                          support::ThreadPool &Pool) {
  support::TraceSpan Span("fuzz", "campaign");
  FuzzSummary Sum;
  Sum.Seed = Options.Seed;
  Sum.RunsRequested = Options.Runs;
  for (const FuzzTarget &T : Targets)
    Sum.PerRule[T.Opt.Name]; // every target appears, even when clean

  std::vector<RunSlot> Slots(Options.Runs);
  const size_t Batch = std::max<size_t>(Pool.jobs() * 4, 16);
  const auto Start = std::chrono::steady_clock::now();

  size_t Lo = 0;
  while (Lo < Options.Runs) {
    size_t N = std::min<size_t>(Batch, Options.Runs - Lo);
    Pool.parallelFor(N, [&, Lo](size_t J) {
      runOne(Options.Seed, Lo + J, Targets, Options, Slots[Lo + J]);
    });
    Lo += N;
    Sum.RunsExecuted += static_cast<unsigned>(N);
    if (Options.TimeBudgetSec > 0) {
      double Elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count();
      if (Elapsed >= Options.TimeBudgetSec && Lo < Options.Runs) {
        Sum.TimedOut = true;
        break;
      }
    }
  }
  support::metricAdd("fuzz.runs", Sum.RunsExecuted);

  // Sequential post-pass in run-index order: counting, classification,
  // and reduction all happen here, so the summary is independent of how
  // the batches above were scheduled.
  for (size_t I = 0; I < Sum.RunsExecuted; ++I) {
    for (const RunHit &Hit : Slots[I].Hits) {
      const FuzzTarget &T = Targets[Hit.Target];
      RuleStats &RS = Sum.PerRule[T.Opt.Name];
      ++RS.Applications;
      ++Sum.PairsDiffed;
      if (!Hit.Diverged)
        continue;
      ++RS.Divergences;
      ++Sum.Divergences;
      if (crossCheck(T.Verdict, true) == CrossCheck::CC_CheckerMissed)
        ++Sum.CheckerMissed;
      else
        ++Sum.CaughtByChecker;
      unsigned Reported = 0;
      for (const FuzzFinding &F : Sum.Findings)
        if (F.Rule == T.Opt.Name)
          ++Reported;
      if (Reported < Options.MaxFindingsPerRule)
        Sum.Findings.push_back(
            buildFinding(T, Hit, Options.Seed + I, Options));
    }
  }
  support::metricAdd("fuzz.findings", Sum.Findings.size());
  if (Span.enabled()) {
    Span.arg("runs", static_cast<uint64_t>(Sum.RunsExecuted));
    Span.arg("divergences", static_cast<uint64_t>(Sum.Divergences));
  }
  return Sum;
}

//===----------------------------------------------------------------------===//
// Stock suites.
//===----------------------------------------------------------------------===//

std::vector<FuzzTarget> fuzz::soundSuiteTargets() {
  std::vector<FuzzTarget> Out;
  std::vector<PureAnalysis> Analyses = opts::allAnalyses();
  for (Optimization &O : opts::allOptimizations()) {
    FuzzTarget T;
    T.Opt = std::move(O);
    T.Analyses = Analyses;
    T.Verdict = checker::CheckReport::Verdict::V_Sound;
    Out.push_back(std::move(T));
  }
  return Out;
}

std::vector<FuzzTarget> fuzz::buggySuiteTargets() {
  std::vector<FuzzTarget> Out;
  std::vector<PureAnalysis> Analyses = opts::allAnalyses();
  for (opts::BuggyCase &Case : opts::allBuggyOptimizations()) {
    FuzzTarget T;
    T.Opt = std::move(Case.Opt);
    T.Analyses = Analyses;
    T.Verdict = checker::CheckReport::Verdict::V_Unsound;
    T.ExpectDivergence = Case.Observable;
    Out.push_back(std::move(T));
  }
  // The buggy *analysis* is observed through a consumer: loadCse trusts
  // notTainted, so pairing it with the unsound producer lets a deref
  // store slip past the taint check.
  {
    FuzzTarget T;
    T.Opt = opts::loadCse();
    T.Opt.Name = "loadCse+taint_analysis_misses_deref";
    T.Analyses = {opts::buggyTaintAnalysis().Analysis};
    T.Verdict = checker::CheckReport::Verdict::V_Unsound;
    T.ExpectDivergence = false; // calibrated: divergence needs a rare
                                // *p := &x / reload chain; counted, not
                                // asserted, in the smoke suite.
    Out.push_back(std::move(T));
  }
  return Out;
}

std::vector<FuzzTarget> fuzz::ruleMutantTargets(unsigned MaxPerRule) {
  std::vector<FuzzTarget> Out;
  std::vector<PureAnalysis> Analyses = opts::allAnalyses();
  for (Optimization &O : opts::allOptimizations())
    for (Optimization &M : mutateRule(O, MaxPerRule)) {
      FuzzTarget T;
      T.Opt = std::move(M);
      T.Analyses = Analyses;
      T.Verdict = checker::CheckReport::Verdict::V_Unproven;
      Out.push_back(std::move(T));
    }
  return Out;
}
