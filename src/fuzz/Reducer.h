//===- Reducer.h - Delta-debugging reduction of divergences -----*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Test-case reduction for the fuzzing harness. Given a program that
/// exposes a divergence (as judged by a caller-supplied predicate that
/// re-applies the rule and re-runs the differential oracle), the reducer
/// shrinks it with a fixed pass order, iterated to a fixpoint:
///
///   1. suffix/chunk statement removal with branch-target remapping,
///   2. single-statement removal,
///   3. statement -> `skip` demotion (for branches/returns whose removal
///      would reshuffle too many indices at once),
///   4. constant shrinking toward 0 (which also reduces loop trip
///      counts — generated loop bounds are `<`-constants),
///   5. helper-procedure dropping.
///
/// Every candidate is validated (`validateProgram`) before the predicate
/// runs, so the reducer can only move within the space of well-formed
/// programs; the predicate then guarantees the divergence is preserved.
/// Termination: each accepted step strictly shrinks a well-founded
/// measure (statement count, then sum of |constant|), so a fixpoint is
/// reached; `MaxRounds` is a belt-and-suspenders bound on top.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_FUZZ_REDUCER_H
#define COBALT_FUZZ_REDUCER_H

#include "core/Optimization.h"
#include "ir/Ast.h"

#include <functional>

namespace cobalt {
namespace fuzz {

/// True when a candidate program still exposes the divergence being
/// minimized. The reducer only keeps edits for which this holds.
using FailurePredicate = std::function<bool(const ir::Program &)>;

struct ReduceOptions {
  /// Upper bound on full pass-pipeline rounds. The measure argument above
  /// guarantees termination anyway; this bounds worst-case work.
  unsigned MaxRounds = 8;
};

struct ReduceResult {
  ir::Program Prog;             ///< The reduced program (still failing).
  unsigned Rounds = 0;          ///< Rounds actually run.
  unsigned StatementsBefore = 0;///< Total statements across procedures.
  unsigned StatementsAfter = 0;
  bool Fixpoint = false;        ///< Last round changed nothing.
};

/// Shrinks \p Prog while \p StillFails holds. \p Prog must satisfy the
/// predicate on entry (asserted); the result always satisfies it.
ReduceResult reduceProgram(const ir::Program &Prog,
                           const FailurePredicate &StillFails,
                           const ReduceOptions &Options = {});

/// Total statement count across all procedures (the reduction measure).
unsigned totalStmts(const ir::Program &Prog);

/// Narrows the rule instance: returns a copy of \p Opt whose choose
/// function keeps only the K-th site of the base rule's choice. Used to
/// pin a divergence to a single rewrite site in the reproducer.
Optimization restrictToSite(const Optimization &Opt, unsigned K);

} // namespace fuzz
} // namespace cobalt

#endif // COBALT_FUZZ_REDUCER_H
