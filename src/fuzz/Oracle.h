//===- Oracle.h - Differential and checker-cross-check oracles --*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two oracles of the fuzzing harness (DESIGN.md §11):
///
/// * **DifferentialOracle** — runs the original and the optimized program
///   under the reference interpreter on a fixed input set and compares
///   outcomes against the paper's soundness notion (§4): whenever
///   `main(v)` *returns* in the original, it must return the same value
///   in the optimized program. A stuck or diverging original imposes no
///   obligation; an optimized program that goes stuck, diverges, returns
///   a different value, or is structurally ill-formed where the original
///   returned is a *divergence*.
///
/// * **CheckerOracle** — cross-checks the soundness checker's verdict for
///   a rule against observed behavior. The contract:
///     - a rule the checker calls Sound must NEVER produce a divergence
///       (a divergence here is a checker soundness bug — the headline
///       property the fuzzer hunts);
///     - a rule known (or observed) to miscompile must be flagged
///       Unsound or Unproven — never Sound. Unproven is acceptable:
///       the gate refuses unproven rules, so nothing silently ships.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_FUZZ_ORACLE_H
#define COBALT_FUZZ_ORACLE_H

#include "checker/Soundness.h"
#include "core/Optimization.h"
#include "ir/Ast.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cobalt {
namespace fuzz {

/// How the differential oracle probes a program pair.
struct OracleOptions {
  /// Inputs main() is run on. The defaults mix signs, zero, and a value
  /// larger than any generated loop trip count.
  std::vector<int64_t> Inputs = {-9, -1, 0, 1, 2, 7, 50};
  /// Step budget for the original program.
  uint64_t Fuel = 1u << 18;
  /// The optimized program gets a larger budget so a genuinely slower
  /// (but terminating) rewrite is not misreported as divergence.
  uint64_t FuelOptimized = 1u << 19;
};

/// One behavioral divergence between a program and its optimized form.
struct Divergence {
  enum class Kind {
    DK_WrongValue,     ///< Both returned, different values.
    DK_OptimizedStuck, ///< Original returned, optimized got stuck.
    DK_OptimizedHangs, ///< Original returned, optimized ran out of fuel.
    DK_IllFormed,      ///< Optimized program fails validateProgram.
  };
  Kind K = Kind::DK_WrongValue;
  int64_t Input = 0;       ///< The input that exposed it.
  std::string Original;    ///< RunResult::str() of the original run.
  std::string Optimized;   ///< RunResult::str() / validation error.

  const char *kindName() const;
  std::string str() const;
};

/// Runs the pair on every input and returns the first divergence found
/// (inputs are probed in order, so the report is deterministic), or
/// nullopt when the pair is observationally equivalent on the input set.
std::optional<Divergence> diffPrograms(const ir::Program &Original,
                                       const ir::Program &Optimized,
                                       const OracleOptions &Options = {});

/// Applies \p Opt (preceded by \p Analyses, which produce the labelings
/// its guard may consume) to a copy of \p Prog with the transactional
/// machinery OFF — the fuzzer wants to observe raw miscompiles, not the
/// pass manager's rollback of them. Returns the rewritten program and
/// how many sites were rewritten.
struct ApplyOutcome {
  ir::Program Prog;
  unsigned Applied = 0;
};
ApplyOutcome applyRule(const Optimization &Opt,
                       const std::vector<PureAnalysis> &Analyses,
                       const ir::Program &Prog);

/// The checker-cross-check verdict classification for one (rule,
/// divergence) observation.
enum class CrossCheck {
  CC_Consistent,     ///< No divergence, any verdict — nothing to report.
  CC_CaughtByChecker,///< Divergence on a rule the checker rejected: the
                     ///< checker caught a real bug before it could ship.
  CC_CheckerMissed,  ///< Divergence on a rule the checker calls Sound —
                     ///< a soundness bug in the checker itself.
};
CrossCheck crossCheck(checker::CheckReport::Verdict V, bool Diverged);

} // namespace fuzz
} // namespace cobalt

#endif // COBALT_FUZZ_ORACLE_H
