//===- Corpus.cpp ---------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include "ir/Printer.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace cobalt;
using namespace cobalt::fuzz;

const char *fuzz::verdictName(checker::CheckReport::Verdict V) {
  switch (V) {
  case checker::CheckReport::Verdict::V_Sound:
    return "Sound";
  case checker::CheckReport::Verdict::V_Unsound:
    return "Unsound";
  case checker::CheckReport::Verdict::V_Unproven:
    return "Unproven";
  }
  return "Unproven";
}

std::optional<checker::CheckReport::Verdict>
fuzz::verdictFromName(const std::string &Name) {
  if (Name == "Sound")
    return checker::CheckReport::Verdict::V_Sound;
  if (Name == "Unsound")
    return checker::CheckReport::Verdict::V_Unsound;
  if (Name == "Unproven")
    return checker::CheckReport::Verdict::V_Unproven;
  return std::nullopt;
}

const char *fuzz::crossCheckName(CrossCheck C) {
  switch (C) {
  case CrossCheck::CC_Consistent:
    return "consistent";
  case CrossCheck::CC_CaughtByChecker:
    return "caught-by-checker";
  case CrossCheck::CC_CheckerMissed:
    return "checker-missed";
  }
  return "consistent";
}

std::optional<std::string>
fuzz::saveCorpus(const std::string &Dir, const std::vector<FuzzFinding> &Fs) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return "cannot create corpus dir " + Dir + ": " + EC.message();

  std::ofstream Manifest(Dir + "/manifest.txt");
  if (!Manifest)
    return "cannot write " + Dir + "/manifest.txt";
  Manifest << "# cobalt-fuzz corpus manifest v1\n";

  unsigned Ordinal = 0;
  for (const FuzzFinding &F : Fs) {
    std::string Stem = F.Rule + "_s" + std::to_string(F.Seed);
    // Rule names may carry '+' (analysis pairings) or '.' (mutants);
    // keep filenames portable. The ordinal disambiguates two findings
    // from the same (rule, seed) — e.g. a program and its mutant.
    for (char &C : Stem)
      if (C == '+' || C == '.')
        C = '_';
    std::string Name = Stem + "_" + std::to_string(Ordinal++) + ".il";
    std::ofstream Out(Dir + "/" + Name);
    if (!Out)
      return "cannot write " + Dir + "/" + Name;
    Out << ir::toString(F.Original);
    Manifest << "file=" << Name << " rule=" << F.Rule
             << " seed=" << F.Seed << " input=" << F.Div.Input
             << " kind=" << F.Div.kindName()
             << " verdict=" << verdictName(F.Verdict)
             << " check=" << crossCheckName(F.Check) << "\n";
  }
  return std::nullopt;
}

std::optional<std::vector<CorpusEntry>>
fuzz::loadCorpusManifest(const std::string &Dir, std::string &Err) {
  std::ifstream In(Dir + "/manifest.txt");
  if (!In) {
    Err = "cannot read " + Dir + "/manifest.txt";
    return std::nullopt;
  }
  std::vector<CorpusEntry> Entries;
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    CorpusEntry E;
    std::istringstream Fields(Line);
    std::string Field;
    while (Fields >> Field) {
      size_t Eq = Field.find('=');
      if (Eq == std::string::npos) {
        Err = Dir + "/manifest.txt:" + std::to_string(LineNo) +
              ": malformed field '" + Field + "'";
        return std::nullopt;
      }
      std::string Key = Field.substr(0, Eq), Val = Field.substr(Eq + 1);
      if (Key == "file")
        E.File = Val;
      else if (Key == "rule")
        E.Rule = Val;
      else if (Key == "seed")
        E.Seed = std::stoull(Val);
      else if (Key == "input")
        E.Input = std::stoll(Val);
      else if (Key == "kind")
        E.Kind = Val;
      else if (Key == "verdict")
        E.Verdict = Val;
      else if (Key == "check")
        E.Check = Val;
      // Unknown keys: ignored for forward compatibility.
    }
    if (E.File.empty() || E.Rule.empty()) {
      Err = Dir + "/manifest.txt:" + std::to_string(LineNo) +
            ": entry missing file= or rule=";
      return std::nullopt;
    }
    Entries.push_back(std::move(E));
  }
  return Entries;
}
