//===- Fuzzer.h - The differential fuzzing loop -----------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzing loop tying generator, mutator, oracles, and reducer
/// together (DESIGN.md §11). One *run* = one generated program (plus a
/// few single-edit mutants) pushed through every *target* (a rule, the
/// analyses it may consume, and the checker's verdict for it); every
/// behavioral divergence is classified against the verdict and — when
/// minimization is on — delta-debugged down to a minimal reproducer.
///
/// ## Determinism contract
///
/// For a fixed (Seed, Runs, Targets), the summary is bit-identical at
/// every `--jobs` width: run I is fully determined by `Seed + I` (config
/// derivation, generation, mutation), runs write into index-keyed slots
/// via ThreadPool::parallelFor, and the sequential post-pass (counting,
/// classification, reduction) walks those slots in index order. Fault
/// injection is keyed per run via ScopedFaultKey, so a configured plan
/// fires the same faults regardless of scheduling. Wall-clock never
/// enters the summary — the time budget only decides how many whole
/// batches execute, and a summary that hit the budget says so.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_FUZZ_FUZZER_H
#define COBALT_FUZZ_FUZZER_H

#include "checker/Soundness.h"
#include "core/Optimization.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"
#include "ir/Ast.h"
#include "ir/Generator.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cobalt {
namespace fuzz {

/// One rule under fuzz: the optimization, the analyses producing the
/// labelings its guard may consume, and the checker's verdict for it.
struct FuzzTarget {
  Optimization Opt;
  std::vector<PureAnalysis> Analyses;
  checker::CheckReport::Verdict Verdict =
      checker::CheckReport::Verdict::V_Unproven;
  /// Seeded-bug metadata: the target is a deliberately unsound rule
  /// whose miscompilation is *behaviorally observable* — the smoke suite
  /// asserts the fuzzer finds a divergence for each of these.
  bool ExpectDivergence = false;
};

struct FuzzOptions {
  uint64_t Seed = 0;       ///< Base seed; run I uses Seed + I.
  unsigned Runs = 1000;    ///< Generated programs (each with mutants).
  double TimeBudgetSec = 0;///< 0 = none. Batch-granular, see file docs.
  bool Minimize = true;    ///< Delta-debug each reported finding.
  unsigned MutantsPerProgram = 2; ///< Single-edit mutants per program.
  /// Findings fully reported (minimized, program retained) per rule;
  /// further divergences of the same rule are counted only.
  unsigned MaxFindingsPerRule = 3;
  OracleOptions Oracle;
  ReduceOptions Reduce;
};

/// One reported (minimized) divergence.
struct FuzzFinding {
  std::string Rule;
  uint64_t Seed = 0;     ///< Generator seed of the originating run.
  bool FromMutant = false;
  Divergence Div;        ///< On the *reduced* program when minimized.
  CrossCheck Check = CrossCheck::CC_Consistent;
  checker::CheckReport::Verdict Verdict =
      checker::CheckReport::Verdict::V_Unproven;
  ir::Program Original;  ///< Reduced reproducer (raw when !Minimize).
  ir::Program Optimized; ///< The rule applied to Original.
  unsigned StatementsBefore = 0;
  unsigned StatementsAfter = 0;
  unsigned ReduceRounds = 0;
  bool ReduceFixpoint = false;
  /// First single rewrite site that alone reproduces the divergence
  /// (via restrictToSite), or -1 when only the full site set does.
  int NarrowedSite = -1;
};

struct RuleStats {
  unsigned Applications = 0; ///< Programs the rule rewrote (>= 1 site).
  unsigned Divergences = 0;  ///< All divergences, reported or not.
};

struct FuzzSummary {
  uint64_t Seed = 0;
  unsigned RunsRequested = 0;
  unsigned RunsExecuted = 0;
  uint64_t PairsDiffed = 0;  ///< (program, target) pairs with >=1 rewrite.
  unsigned Divergences = 0;
  unsigned CheckerMissed = 0;   ///< Divergences on checker-Sound rules.
  unsigned CaughtByChecker = 0; ///< Divergences on rejected rules.
  bool TimedOut = false;
  std::vector<FuzzFinding> Findings;       ///< Deterministic order.
  std::map<std::string, RuleStats> PerRule;///< Every target, even clean.
};

/// The generator configuration for run I: cycles a fixed table of
/// feature mixes (plain, pointer-heavy, alias pressure, gotos, calls,
/// division, everything) so every rule meets programs in its preferred
/// habitat within a handful of runs. Exposed for tests.
ir::GenOptions deriveGenOptions(uint64_t RunIndex);

/// The fuzzing loop. \p Pool provides the parallelism (inline mode = a
/// plain sequential loop). See the determinism contract above.
FuzzSummary runFuzz(const std::vector<FuzzTarget> &Targets,
                    const FuzzOptions &Options, support::ThreadPool &Pool);

/// \name Stock target suites.
/// Verdicts are the *documented* ones (the sound suite is shipped
/// proven, the buggy suite is shipped rejected); drivers wanting the
/// live checker's opinion recompute them (cobalt-fuzz --check).
/// @{

/// Every shipped optimization, paired with every shipped analysis,
/// documented V_Sound.
std::vector<FuzzTarget> soundSuiteTargets();

/// Every deliberately buggy variant (documented V_Unsound), with
/// ExpectDivergence from BuggyCase::Observable; plus the buggy taint
/// analysis paired with its consumer loadCse.
std::vector<FuzzTarget> buggySuiteTargets();

/// Systematic near-miss mutants of the sound suite (documented
/// V_Unproven — the gate would refuse them without a proof).
std::vector<FuzzTarget> ruleMutantTargets(unsigned MaxPerRule = 4);
/// @}

} // namespace fuzz
} // namespace cobalt

#endif // COBALT_FUZZ_FUZZER_H
