//===- Reducer.cpp --------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include "support/Telemetry.h"

#include <cassert>
#include <cstdlib>

using namespace cobalt;
using namespace cobalt::fuzz;
using namespace cobalt::ir;

unsigned fuzz::totalStmts(const Program &Prog) {
  unsigned N = 0;
  for (const Procedure &P : Prog.Procs)
    N += static_cast<unsigned>(P.Stmts.size());
  return N;
}

namespace {

/// Removes the statement range [Lo, Lo+Len) from \p P, remapping every
/// branch target: targets past the removed range shift down, targets
/// inside it land on the first surviving statement after the hole.
void eraseRange(Procedure &P, int Lo, int Len) {
  P.Stmts.erase(P.Stmts.begin() + Lo, P.Stmts.begin() + Lo + Len);
  for (Stmt &S : P.Stmts)
    if (auto *B = std::get_if<BranchStmt>(&S.V)) {
      auto Remap = [&](Index &T) {
        if (T.IsMeta)
          return;
        if (T.Value >= Lo + Len)
          T.Value -= Len;
        else if (T.Value >= Lo)
          T.Value = Lo;
      };
      Remap(B->Then);
      Remap(B->Else);
    }
}

/// Accepts \p Candidate if it is well-formed and still failing.
bool accept(const Program &Candidate, const FailurePredicate &StillFails) {
  if (validateProgram(Candidate))
    return false;
  if (auto *T = support::Telemetry::active())
    T->Metrics.add("fuzz.reduce.candidates", 1);
  return StillFails(Candidate);
}

/// Pass 1+2: statement removal, largest chunks first (ddmin spirit:
/// halves, then quarters, ..., then single statements). Returns true if
/// anything was removed.
bool passRemoveStmts(Program &Prog, const FailurePredicate &StillFails) {
  bool Changed = false;
  for (size_t PI = 0; PI < Prog.Procs.size(); ++PI) {
    int Size = Prog.Procs[PI].size();
    for (int Len = Size / 2; Len >= 1; Len /= 2) {
      for (int Lo = Prog.Procs[PI].size() - Len; Lo >= 0; --Lo) {
        if (Len > Prog.Procs[PI].size())
          break;
        if (Lo + Len > Prog.Procs[PI].size())
          continue;
        Program Candidate = Prog;
        eraseRange(Candidate.Procs[PI], Lo, Len);
        if (accept(Candidate, StillFails)) {
          Prog = std::move(Candidate);
          Changed = true;
        }
      }
    }
  }
  return Changed;
}

/// Pass 3: demote statements to `skip` where removal failed (keeps all
/// indices stable, so branch-heavy programs still shrink semantically).
bool passSkipStmts(Program &Prog, const FailurePredicate &StillFails) {
  bool Changed = false;
  for (size_t PI = 0; PI < Prog.Procs.size(); ++PI)
    for (int I = Prog.Procs[PI].size() - 1; I >= 0; --I) {
      if (Prog.Procs[PI].Stmts[I].is<SkipStmt>())
        continue;
      Program Candidate = Prog;
      Candidate.Procs[PI].Stmts[I] = Stmt(SkipStmt{});
      if (accept(Candidate, StillFails)) {
        Prog = std::move(Candidate);
        Changed = true;
      }
    }
  return Changed;
}

/// Pass 4: shrink constants toward 0 — try 0 first, then halving. Also
/// the loop-trip reducer: generated loop bounds are `<`-constants.
bool passShrinkConsts(Program &Prog, const FailurePredicate &StillFails) {
  bool Changed = false;
  // Collect (proc, stmt) positions; re-collect pointers per candidate.
  struct ConstRef {
    size_t Proc;
    int StmtIdx;
    int Slot; ///< N-th constant within the statement.
  };
  auto ForEachConst = [](Stmt &S, auto &&Fn) {
    int Slot = 0;
    auto FromBase = [&](BaseExpr &B) {
      if (auto *C = std::get_if<ConstVal>(&B); C && !C->IsMeta)
        Fn(Slot++, *C);
    };
    if (auto *A = std::get_if<AssignStmt>(&S.V)) {
      if (auto *C = std::get_if<ConstVal>(&A->Value.V); C && !C->IsMeta)
        Fn(Slot++, *C);
      if (auto *Op = std::get_if<OpExpr>(&A->Value.V))
        for (BaseExpr &B : Op->Args)
          FromBase(B);
    } else if (auto *B = std::get_if<BranchStmt>(&S.V)) {
      FromBase(B->Cond);
    } else if (auto *C = std::get_if<CallStmt>(&S.V)) {
      FromBase(C->Arg);
    }
  };

  std::vector<ConstRef> Refs;
  for (size_t PI = 0; PI < Prog.Procs.size(); ++PI)
    for (int I = 0; I < Prog.Procs[PI].size(); ++I)
      ForEachConst(Prog.Procs[PI].Stmts[I], [&](int Slot, ConstVal &C) {
        if (C.Value != 0)
          Refs.push_back({PI, I, Slot});
      });

  for (const ConstRef &R : Refs) {
    auto TryValue = [&](int64_t NewV) {
      Program Candidate = Prog;
      ForEachConst(Candidate.Procs[R.Proc].Stmts[R.StmtIdx],
                   [&](int Slot, ConstVal &C) {
                     if (Slot == R.Slot)
                       C.Value = NewV;
                   });
      if (accept(Candidate, StillFails)) {
        Prog = std::move(Candidate);
        return true;
      }
      return false;
    };
    // Current value may already have changed via an earlier ref; re-read.
    int64_t Cur = 0;
    ForEachConst(Prog.Procs[R.Proc].Stmts[R.StmtIdx],
                 [&](int Slot, ConstVal &C) {
                   if (Slot == R.Slot)
                     Cur = C.Value;
                 });
    while (Cur != 0) {
      if (TryValue(0)) {
        Changed = true;
        break;
      }
      int64_t Half = Cur / 2;
      if (Half == Cur || !TryValue(Half))
        break;
      Changed = true;
      Cur = Half;
    }
  }
  return Changed;
}

/// Pass 5: drop helper procedures no longer called.
bool passDropProcs(Program &Prog, const FailurePredicate &StillFails) {
  bool Changed = false;
  for (int PI = static_cast<int>(Prog.Procs.size()) - 1; PI >= 0; --PI) {
    if (Prog.Procs[PI].Name == "main")
      continue;
    Program Candidate = Prog;
    Candidate.Procs.erase(Candidate.Procs.begin() + PI);
    if (accept(Candidate, StillFails)) {
      Prog = std::move(Candidate);
      Changed = true;
    }
  }
  return Changed;
}

} // namespace

ReduceResult fuzz::reduceProgram(const Program &Prog,
                                 const FailurePredicate &StillFails,
                                 const ReduceOptions &Options) {
  assert(StillFails(Prog) && "input must expose the divergence");
  ReduceResult Res;
  Res.Prog = Prog;
  Res.StatementsBefore = totalStmts(Prog);

  support::TraceSpan Span("fuzz", "reduce");
  for (unsigned Round = 0; Round < Options.MaxRounds; ++Round) {
    ++Res.Rounds;
    bool Changed = false;
    Changed |= passRemoveStmts(Res.Prog, StillFails);
    Changed |= passSkipStmts(Res.Prog, StillFails);
    Changed |= passShrinkConsts(Res.Prog, StillFails);
    Changed |= passDropProcs(Res.Prog, StillFails);
    if (!Changed) {
      Res.Fixpoint = true;
      break;
    }
  }
  Res.StatementsAfter = totalStmts(Res.Prog);
  if (auto *T = support::Telemetry::active()) {
    T->Metrics.add("fuzz.reduce.runs", 1);
    T->Metrics.add("fuzz.reduce.stmts_removed",
                   Res.StatementsBefore - Res.StatementsAfter);
  }
  return Res;
}

Optimization fuzz::restrictToSite(const Optimization &Opt, unsigned K) {
  Optimization Narrowed = Opt;
  ChooseFn Base = Opt.Choose;
  Narrowed.Choose = [Base, K](const std::vector<MatchSite> &Delta,
                              const Procedure &P) {
    std::vector<MatchSite> Picked = Base ? Base(Delta, P) : Delta;
    if (K >= Picked.size())
      return std::vector<MatchSite>{};
    return std::vector<MatchSite>{Picked[K]};
  };
  return Narrowed;
}
