//===- Oracle.cpp ---------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "engine/PassManager.h"
#include "ir/Interp.h"
#include "support/Telemetry.h"

using namespace cobalt;
using namespace cobalt::fuzz;
using namespace cobalt::ir;

const char *Divergence::kindName() const {
  switch (K) {
  case Kind::DK_WrongValue:
    return "wrong-value";
  case Kind::DK_OptimizedStuck:
    return "optimized-stuck";
  case Kind::DK_OptimizedHangs:
    return "optimized-hangs";
  case Kind::DK_IllFormed:
    return "ill-formed";
  }
  return "wrong-value";
}

std::string Divergence::str() const {
  return std::string(kindName()) + " on input " + std::to_string(Input) +
         ": original " + Original + ", optimized " + Optimized;
}

std::optional<Divergence>
fuzz::diffPrograms(const Program &Original, const Program &Optimized,
                   const OracleOptions &Options) {
  if (auto Err = validateProgram(Optimized)) {
    Divergence D;
    D.K = Divergence::Kind::DK_IllFormed;
    D.Input = Options.Inputs.empty() ? 0 : Options.Inputs.front();
    D.Original = "well-formed";
    D.Optimized = *Err;
    return D;
  }
  for (int64_t Input : Options.Inputs) {
    Interpreter IO(Original), IT(Optimized);
    RunResult RO = IO.run(Input, Options.Fuel);
    if (auto *T = support::Telemetry::active())
      T->Metrics.add("fuzz.oracle.execs", 2);
    if (!RO.returned())
      continue; // stuck/diverging originals impose no obligation (§4)
    RunResult RT = IT.run(Input, Options.FuelOptimized);
    Divergence D;
    D.Input = Input;
    D.Original = RO.str();
    D.Optimized = RT.str();
    if (RT.returned()) {
      if (RT.Result == RO.Result)
        continue;
      D.K = Divergence::Kind::DK_WrongValue;
      return D;
    }
    D.K = RT.stuck() ? Divergence::Kind::DK_OptimizedStuck
                     : Divergence::Kind::DK_OptimizedHangs;
    return D;
  }
  return std::nullopt;
}

ApplyOutcome fuzz::applyRule(const Optimization &Opt,
                             const std::vector<PureAnalysis> &Analyses,
                             const Program &Prog) {
  engine::PassManager PM;
  engine::TxPolicy Tx;
  // Raw mode: no snapshots, no interpreter spot-check, no quarantine.
  // The transactional machinery would roll a miscompile back before the
  // oracle could see it — the fuzzer is the scaled-up version of that
  // spot-check and must observe the unprotected behavior.
  Tx.Transactional = false;
  Tx.SpotCheckInputs = 0;
  Tx.QuarantineAfter = 0;
  PM.setTxPolicy(Tx);
  for (const PureAnalysis &A : Analyses)
    PM.addAnalysis(A);
  PM.addOptimization(Opt);

  ApplyOutcome Out;
  Out.Prog = Prog;
  for (const engine::PassReport &R : PM.run(Out.Prog))
    Out.Applied += R.AppliedCount;
  return Out;
}

CrossCheck fuzz::crossCheck(checker::CheckReport::Verdict V, bool Diverged) {
  if (!Diverged)
    return CrossCheck::CC_Consistent;
  return V == checker::CheckReport::Verdict::V_Sound
             ? CrossCheck::CC_CheckerMissed
             : CrossCheck::CC_CaughtByChecker;
}
