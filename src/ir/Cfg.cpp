//===- Cfg.cpp ------------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Cfg.h"

#include <algorithm>
#include <cassert>

using namespace cobalt;
using namespace cobalt::ir;

Cfg::Cfg(const Procedure &Proc) : P(&Proc) {
  int N = Proc.size();
  assert(N > 0 && "CFG of an empty procedure");
  Succs.resize(N);
  Preds.resize(N);
  Reachable.assign(N, false);

  for (int I = 0; I < N; ++I) {
    const Stmt &S = Proc.stmtAt(I);
    if (const auto *B = std::get_if<BranchStmt>(&S.V)) {
      assert(!B->Then.IsMeta && !B->Else.IsMeta &&
             "CFG over a pattern fragment");
      Succs[I].push_back(B->Then.Value);
      if (B->Else.Value != B->Then.Value)
        Succs[I].push_back(B->Else.Value);
    } else if (S.is<ReturnStmt>()) {
      Exits.push_back(I);
    } else {
      assert(I + 1 < N && "fallthrough off the end of the procedure");
      Succs[I].push_back(I + 1);
    }
    for (int T : Succs[I]) {
      assert(Proc.isValidIndex(T) && "branch target out of range");
      Preds[T].push_back(I);
    }
  }

  // Depth-first reachability from the entry node.
  std::vector<int> Work = {0};
  Reachable[0] = true;
  while (!Work.empty()) {
    int I = Work.back();
    Work.pop_back();
    for (int T : Succs[I])
      if (!Reachable[T]) {
        Reachable[T] = true;
        Work.push_back(T);
      }
  }
}
