//===- Parser.h - Textual front-end for the IL ------------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the intermediate language. Two modes:
///
/// * Program mode (default): every identifier is a concrete variable /
///   procedure name; branch targets may be numeric indices or statement
///   labels (`loop:` before a statement, `goto loop`).
/// * Pattern mode: used by the Cobalt front-end for rewrite rules and
///   label definitions. Following the paper's convention, identifiers
///   beginning with an upper-case letter are pattern variables. The
///   syntactic position determines the pattern-variable kind where
///   possible (lhs/deref/addr-of -> Vars, callee -> ProcNames, goto
///   targets -> Indices); in expression positions, names beginning with
///   'E' denote Exprs patterns, names beginning with 'C' denote Consts
///   patterns, and anything else denotes a Vars pattern. `_` and `...`
///   are wildcards. `?name` forces a pattern variable in either mode.
///
/// Example program:
/// \code
///   proc main(n) {
///     decl i;
///     i := 0;
///   loop:
///     if i < n goto body else done;
///   body:
///     i := i + 1;
///     if 1 goto loop else loop;
///   done:
///     return i;
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_IR_PARSER_H
#define COBALT_IR_PARSER_H

#include "ir/Ast.h"
#include "support/Diagnostics.h"
#include "support/Lexer.h"

#include <map>
#include <optional>
#include <string_view>

namespace cobalt {
namespace ir {

class Parser {
public:
  Parser(std::string_view Buffer, DiagnosticEngine &Diags,
         bool PatternMode = false)
      : Lex(Buffer, Diags), Diags(Diags), PatternMode(PatternMode) {}

  /// Parses `proc name(param) { stmts }` repeatedly to end of input.
  /// Returns std::nullopt (with diagnostics) on any error.
  std::optional<Program> parseProgram();

  /// Parses one procedure.
  std::optional<Procedure> parseProcedure();

  /// Parses a single statement (no label, no trailing ';'); used for
  /// rewrite-rule sides and case patterns. Branch targets must be numeric
  /// or pattern variables in this form.
  std::optional<Stmt> parseSingleStmt();

  /// Parses a single expression; used by witness syntax.
  std::optional<Expr> parseExpr();

  /// True when the whole input has been consumed.
  bool atEnd() { return Lex.peek().is(TokenKind::TK_End); }

private:
  std::optional<Stmt> parseStmt();
  std::optional<Expr> parseExprImpl();
  std::optional<BaseExpr> parseBaseExpr();
  std::optional<Var> parseVarOccurrence();
  std::optional<Index> parseBranchTarget();

  /// Classifies an identifier at a variable-only position.
  Var classifyVar(const Token &Tok);
  /// Classifies an identifier at a base-expression position (may yield a
  /// Consts pattern in pattern mode).
  BaseExpr classifyBase(const Token &Tok);

  bool expectPunct(std::string_view Spelling);
  Token expectIdent(const char *What);

  Lexer Lex;
  DiagnosticEngine &Diags;
  bool PatternMode;

  /// Per-procedure label resolution state.
  std::map<std::string, int, std::less<>> Labels;
  struct Fixup {
    int StmtIndex;
    bool IsThen;
    std::string Label;
    SourceLoc Loc;
  };
  std::vector<Fixup> Fixups;
};

/// Convenience wrappers. On failure they report via \p Diags and return
/// std::nullopt.
std::optional<Program> parseProgram(std::string_view Text,
                                    DiagnosticEngine &Diags);
std::optional<Procedure> parseProcedureText(std::string_view Text,
                                            DiagnosticEngine &Diags);
std::optional<Stmt> parseStmtPattern(std::string_view Text,
                                     DiagnosticEngine &Diags);
std::optional<Expr> parseExprPattern(std::string_view Text,
                                     DiagnosticEngine &Diags);

/// Parses a program and aborts the process on failure; for tests, benches
/// and examples where the text is a trusted literal.
Program parseProgramOrDie(std::string_view Text);
Stmt parseStmtPatternOrDie(std::string_view Text);
Expr parseExprPatternOrDie(std::string_view Text);

} // namespace ir
} // namespace cobalt

#endif // COBALT_IR_PARSER_H
