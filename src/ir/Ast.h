//===- Ast.h - The C-like intermediate language of PLDI'03 §3.1 -*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *extended* intermediate language of the paper: the untyped C-like IL
/// of §3.1 (unstructured control flow, pointers to locals, dynamic
/// allocation, recursive procedures) where every grammar production also
/// admits a *pattern variable* case (§3.2.1). A Procedure whose statements
/// contain no pattern variables is an ordinary IL procedure; statements with
/// pattern variables appear in Cobalt rewrite rules and label definitions.
///
/// Grammar (paper §3.1, extended per §3.2.1):
/// \code
///   π   ::= pr ... pr
///   pr  ::= p(x) { s; ...; s; }
///   s   ::= decl x | skip | lhs := e | x := new | x := p(b)
///         | if b goto ι else ι | return x
///   e   ::= b | *x | &x | op b ... b
///   lhs ::= x | *x
///   b   ::= x | c
/// \endcode
///
/// The AST is a small value-semantic tree (std::variant based): Cobalt
/// substitutions copy statement fragments freely, and structural equality is
/// the primitive operation of both the execution engine and the checker.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_IR_AST_H
#define COBALT_IR_AST_H

#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace cobalt {
namespace ir {

//===----------------------------------------------------------------------===//
// Leaves: variables, constants, procedure names, statement indices.
//===----------------------------------------------------------------------===//

/// A variable occurrence: either a concrete program variable ("x") or a
/// pattern variable over Vars ("X" in the paper). A pattern variable with an
/// empty name is the wildcard "_": it matches any variable and binds nothing.
struct Var {
  std::string Name;
  bool IsMeta = false;

  static Var concrete(std::string Name) { return {std::move(Name), false}; }
  static Var meta(std::string Name) { return {std::move(Name), true}; }
  static Var wildcard() { return {"", true}; }

  bool isWildcard() const { return IsMeta && Name.empty(); }
  friend bool operator==(const Var &A, const Var &B) = default;
};

/// A procedure-name occurrence; pattern case used by e.g. "X := P(Z)".
struct ProcName {
  std::string Name;
  bool IsMeta = false;

  static ProcName concrete(std::string N) { return {std::move(N), false}; }
  static ProcName meta(std::string N) { return {std::move(N), true}; }

  bool isWildcard() const { return IsMeta && Name.empty(); }
  friend bool operator==(const ProcName &A, const ProcName &B) = default;
};

/// A constant occurrence: a concrete integer literal or a pattern variable
/// over Consts ("C" in the paper).
struct ConstVal {
  int64_t Value = 0;
  std::string MetaName;
  bool IsMeta = false;

  static ConstVal concrete(int64_t V) { return {V, "", false}; }
  static ConstVal meta(std::string N) { return {0, std::move(N), true}; }

  bool isWildcard() const { return IsMeta && MetaName.empty(); }
  friend bool operator==(const ConstVal &A, const ConstVal &B) = default;
};

/// A statement index (branch target): a concrete index or a pattern
/// variable over Indices ("I1"/"I2" in branch-folding rules).
struct Index {
  int Value = 0;
  std::string MetaName;
  bool IsMeta = false;

  static Index concrete(int V) { return {V, "", false}; }
  static Index meta(std::string N) { return {0, std::move(N), true}; }

  bool isWildcard() const { return IsMeta && MetaName.empty(); }
  friend bool operator==(const Index &A, const Index &B) = default;
};

//===----------------------------------------------------------------------===//
// Expressions.
//===----------------------------------------------------------------------===//

/// Base expression b ::= x | c.
using BaseExpr = std::variant<Var, ConstVal>;

bool isVar(const BaseExpr &B);
bool isConst(const BaseExpr &B);
const Var &asVar(const BaseExpr &B);
const ConstVal &asConst(const BaseExpr &B);

/// *x — load through a pointer-valued variable.
struct DerefExpr {
  Var Ptr;
  friend bool operator==(const DerefExpr &, const DerefExpr &) = default;
};

/// &x — address of a local variable.
struct AddrOfExpr {
  Var Target;
  friend bool operator==(const AddrOfExpr &, const AddrOfExpr &) = default;
};

/// op b ... b — an n-ary operator (arity >= 1) over base expressions.
/// Operators are identified by spelling ("+", "<", "neg", ...). In pattern
/// position, the spelling "_" is the operator wildcard: it matches any
/// operator of the same arity and binds nothing.
struct OpExpr {
  std::string Op;
  std::vector<BaseExpr> Args;
  friend bool operator==(const OpExpr &, const OpExpr &) = default;
};

/// A pattern variable over whole expressions ("E" in the paper). Wildcard
/// when the name is empty (the paper's "..." in statement patterns).
struct MetaExpr {
  std::string Name;
  bool isWildcard() const { return Name.empty(); }
  friend bool operator==(const MetaExpr &, const MetaExpr &) = default;
};

/// e ::= b | *x | &x | op b ... b | E.
/// The first two alternatives inline BaseExpr's members so a BaseExpr
/// converts to an Expr without an extra wrapper level.
using ExprVariant =
    std::variant<Var, ConstVal, DerefExpr, AddrOfExpr, OpExpr, MetaExpr>;

struct Expr {
  ExprVariant V;

  Expr() : V(ConstVal::concrete(0)) {}
  Expr(ExprVariant V) : V(std::move(V)) {}
  Expr(Var X) : V(std::move(X)) {}
  Expr(ConstVal C) : V(std::move(C)) {}
  Expr(DerefExpr D) : V(std::move(D)) {}
  Expr(AddrOfExpr A) : V(std::move(A)) {}
  Expr(OpExpr O) : V(std::move(O)) {}
  Expr(MetaExpr M) : V(std::move(M)) {}
  Expr(BaseExpr B);

  template <typename T> bool is() const {
    return std::holds_alternative<T>(V);
  }
  template <typename T> const T &as() const { return std::get<T>(V); }

  /// Returns this expression as a BaseExpr if it is one.
  std::optional<BaseExpr> asBase() const;

  friend bool operator==(const Expr &, const Expr &) = default;
};

//===----------------------------------------------------------------------===//
// Statements.
//===----------------------------------------------------------------------===//

/// lhs ::= x | *x.
using Lhs = std::variant<Var, DerefExpr>;

bool isVarLhs(const Lhs &L);
const Var &lhsVar(const Lhs &L); ///< The variable in either alternative.

/// decl x.
struct DeclStmt {
  Var Name;
  friend bool operator==(const DeclStmt &, const DeclStmt &) = default;
};

/// skip.
struct SkipStmt {
  friend bool operator==(const SkipStmt &, const SkipStmt &) = default;
};

/// lhs := e.
struct AssignStmt {
  Lhs Target;
  Expr Value;
  friend bool operator==(const AssignStmt &, const AssignStmt &) = default;
};

/// x := new.
struct NewStmt {
  Var Target;
  friend bool operator==(const NewStmt &, const NewStmt &) = default;
};

/// x := p(b).
struct CallStmt {
  Var Target;
  ProcName Callee;
  BaseExpr Arg;
  friend bool operator==(const CallStmt &, const CallStmt &) = default;
};

/// if b goto ι else ι.
struct BranchStmt {
  BaseExpr Cond;
  Index Then;
  Index Else;
  friend bool operator==(const BranchStmt &, const BranchStmt &) = default;
};

/// return x.
struct ReturnStmt {
  Var Value;
  friend bool operator==(const ReturnStmt &, const ReturnStmt &) = default;
};

using StmtVariant = std::variant<DeclStmt, SkipStmt, AssignStmt, NewStmt,
                                 CallStmt, BranchStmt, ReturnStmt>;

/// One statement. Carries its source location for diagnostics; location is
/// ignored by structural equality.
struct Stmt {
  StmtVariant V;
  SourceLoc Loc;

  Stmt() : V(SkipStmt{}) {}
  Stmt(StmtVariant V, SourceLoc Loc = SourceLoc()) : V(std::move(V)), Loc(Loc) {}

  template <typename T> bool is() const {
    return std::holds_alternative<T>(V);
  }
  template <typename T> const T &as() const { return std::get<T>(V); }

  friend bool operator==(const Stmt &A, const Stmt &B) { return A.V == B.V; }
};

//===----------------------------------------------------------------------===//
// Procedures and programs.
//===----------------------------------------------------------------------===//

/// pr ::= p(x) { s; ...; s; }. Statements are indexed consecutively from 0
/// within the procedure; stmtAt(ι) returns the statement with index ι.
struct Procedure {
  std::string Name;
  std::string Param;
  std::vector<Stmt> Stmts;

  int size() const { return static_cast<int>(Stmts.size()); }
  bool isValidIndex(int I) const { return I >= 0 && I < size(); }
  const Stmt &stmtAt(int I) const {
    assert(isValidIndex(I) && "statement index out of range");
    return Stmts[I];
  }

  friend bool operator==(const Procedure &A, const Procedure &B) {
    return A.Name == B.Name && A.Param == B.Param && A.Stmts == B.Stmts;
  }
};

/// π ::= pr ... pr, with a distinguished procedure named "main".
struct Program {
  std::vector<Procedure> Procs;

  /// Returns the procedure with the given name, or nullptr.
  const Procedure *findProc(const std::string &Name) const;
  Procedure *findProc(const std::string &Name);

  friend bool operator==(const Program &A, const Program &B) {
    return A.Procs == B.Procs;
  }
};

//===----------------------------------------------------------------------===//
// AST walks shared by the engine, checker, and well-formedness checks.
//===----------------------------------------------------------------------===//

/// True if the fragment contains no pattern variables (it is a plain
/// intermediate-language fragment, executable by the interpreter).
bool isGround(const Expr &E);
bool isGround(const Stmt &S);
bool isGround(const Procedure &P);

/// Collects the names of all named pattern variables in the fragment (of
/// every kind: Var, Const, Expr, ProcName, Index patterns). Wildcards are
/// not collected. Names are appended in first-occurrence order without
/// duplicates.
void collectMetaNames(const Expr &E, std::vector<std::string> &Out);
void collectMetaNames(const Stmt &S, std::vector<std::string> &Out);

/// Collects the concrete variables syntactically read by an expression /
/// statement (not including variables whose address is taken, which are
/// named but not read). Used by label definitions and the generator.
void collectUsedVars(const Expr &E, std::vector<Var> &Out);

/// Validates an executable procedure: no pattern variables, branch targets
/// in range, no duplicate decls, final statement is a return (paper §3.1
/// assumes each procedure ends with a return). Returns an error message or
/// std::nullopt when well-formed.
std::optional<std::string> validateProcedure(const Procedure &P);

/// Validates a whole program: each procedure well-formed, names unique,
/// "main" present, all callees resolve.
std::optional<std::string> validateProgram(const Program &Prog);

} // namespace ir
} // namespace cobalt

#endif // COBALT_IR_AST_H
