//===- Printer.cpp --------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

using namespace cobalt;
using namespace cobalt::ir;

std::string ir::toString(const Var &X) {
  if (!X.IsMeta)
    return X.Name;
  return X.Name.empty() ? "_" : "?" + X.Name;
}

static std::string toStringProcName(const ProcName &P) {
  if (!P.IsMeta)
    return P.Name;
  return P.Name.empty() ? "_" : "?" + P.Name;
}

std::string ir::toString(const ConstVal &C) {
  if (!C.IsMeta)
    return std::to_string(C.Value);
  return C.MetaName.empty() ? "_" : "?" + C.MetaName;
}

static std::string toStringIndex(const Index &I) {
  if (!I.IsMeta)
    return std::to_string(I.Value);
  return I.MetaName.empty() ? "_" : "?" + I.MetaName;
}

std::string ir::toString(const BaseExpr &B) {
  if (isVar(B))
    return toString(asVar(B));
  return toString(asConst(B));
}

/// True for operator spellings the parser accepts in infix position
/// (including the operator wildcard "_", pattern mode only).
static bool isInfixOp(const std::string &Op) {
  return Op == "+" || Op == "-" || Op == "*" || Op == "/" || Op == "%" ||
         Op == "==" || Op == "!=" || Op == "<" || Op == "<=" || Op == ">" ||
         Op == ">=" || Op == "_";
}

std::string ir::toString(const Expr &E) {
  if (const auto *X = std::get_if<Var>(&E.V))
    return toString(*X);
  if (const auto *C = std::get_if<ConstVal>(&E.V))
    return toString(*C);
  if (const auto *D = std::get_if<DerefExpr>(&E.V))
    return "*" + toString(D->Ptr);
  if (const auto *A = std::get_if<AddrOfExpr>(&E.V))
    return "&" + toString(A->Target);
  if (const auto *O = std::get_if<OpExpr>(&E.V)) {
    if (O->Args.size() == 2 && isInfixOp(O->Op))
      return toString(O->Args[0]) + " " + O->Op + " " + toString(O->Args[1]);
    std::string Out = O->Op + "(";
    for (size_t I = 0; I < O->Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += toString(O->Args[I]);
    }
    return Out + ")";
  }
  const auto &M = std::get<MetaExpr>(E.V);
  return M.Name.empty() ? "_" : "?" + M.Name;
}

std::string ir::toString(const Lhs &L) {
  if (const auto *X = std::get_if<Var>(&L))
    return toString(*X);
  return "*" + toString(std::get<DerefExpr>(L).Ptr);
}

std::string ir::toString(const Stmt &S) {
  if (const auto *D = std::get_if<DeclStmt>(&S.V))
    return "decl " + toString(D->Name);
  if (S.is<SkipStmt>())
    return "skip";
  if (const auto *A = std::get_if<AssignStmt>(&S.V))
    return toString(A->Target) + " := " + toString(A->Value);
  if (const auto *N = std::get_if<NewStmt>(&S.V))
    return toString(N->Target) + " := new";
  if (const auto *C = std::get_if<CallStmt>(&S.V))
    return toString(C->Target) + " := " + toStringProcName(C->Callee) + "(" +
           toString(C->Arg) + ")";
  if (const auto *B = std::get_if<BranchStmt>(&S.V))
    return "if " + toString(B->Cond) + " goto " + toStringIndex(B->Then) +
           " else " + toStringIndex(B->Else);
  const auto &R = std::get<ReturnStmt>(S.V);
  return "return " + toString(R.Value);
}

std::string ir::toString(const Procedure &P) {
  std::string Out = "proc " + P.Name + "(" + P.Param + ") {\n";
  for (int I = 0; I < P.size(); ++I)
    Out += "  " + std::to_string(I) + ": " + toString(P.stmtAt(I)) + ";\n";
  return Out + "}\n";
}

std::string ir::toString(const Program &Prog) {
  std::string Out;
  for (const Procedure &P : Prog.Procs)
    Out += toString(P);
  return Out;
}
