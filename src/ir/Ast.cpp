//===- Ast.cpp ------------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Ast.h"

#include <algorithm>
#include <set>

using namespace cobalt;
using namespace cobalt::ir;

bool ir::isVar(const BaseExpr &B) { return std::holds_alternative<Var>(B); }
bool ir::isConst(const BaseExpr &B) {
  return std::holds_alternative<ConstVal>(B);
}
const Var &ir::asVar(const BaseExpr &B) { return std::get<Var>(B); }
const ConstVal &ir::asConst(const BaseExpr &B) {
  return std::get<ConstVal>(B);
}

Expr::Expr(BaseExpr B) {
  if (isVar(B))
    V = std::get<Var>(std::move(B));
  else
    V = std::get<ConstVal>(std::move(B));
}

std::optional<BaseExpr> Expr::asBase() const {
  if (const auto *X = std::get_if<Var>(&V))
    return BaseExpr(*X);
  if (const auto *C = std::get_if<ConstVal>(&V))
    return BaseExpr(*C);
  return std::nullopt;
}

bool ir::isVarLhs(const Lhs &L) { return std::holds_alternative<Var>(L); }

const Var &ir::lhsVar(const Lhs &L) {
  if (const auto *X = std::get_if<Var>(&L))
    return *X;
  return std::get<DerefExpr>(L).Ptr;
}

//===----------------------------------------------------------------------===//
// Groundness.
//===----------------------------------------------------------------------===//

static bool isGroundBase(const BaseExpr &B) {
  if (isVar(B))
    return !asVar(B).IsMeta;
  return !asConst(B).IsMeta;
}

bool ir::isGround(const Expr &E) {
  if (const auto *X = std::get_if<Var>(&E.V))
    return !X->IsMeta;
  if (const auto *C = std::get_if<ConstVal>(&E.V))
    return !C->IsMeta;
  if (const auto *D = std::get_if<DerefExpr>(&E.V))
    return !D->Ptr.IsMeta;
  if (const auto *A = std::get_if<AddrOfExpr>(&E.V))
    return !A->Target.IsMeta;
  if (const auto *O = std::get_if<OpExpr>(&E.V))
    return O->Op != "_" &&
           std::all_of(O->Args.begin(), O->Args.end(), isGroundBase);
  return false; // MetaExpr
}

bool ir::isGround(const Stmt &S) {
  if (const auto *D = std::get_if<DeclStmt>(&S.V))
    return !D->Name.IsMeta;
  if (S.is<SkipStmt>())
    return true;
  if (const auto *A = std::get_if<AssignStmt>(&S.V)) {
    bool LhsOk = isVarLhs(A->Target) ? !std::get<Var>(A->Target).IsMeta
                                     : !std::get<DerefExpr>(A->Target).Ptr.IsMeta;
    return LhsOk && isGround(A->Value);
  }
  if (const auto *N = std::get_if<NewStmt>(&S.V))
    return !N->Target.IsMeta;
  if (const auto *C = std::get_if<CallStmt>(&S.V))
    return !C->Target.IsMeta && !C->Callee.IsMeta && isGroundBase(C->Arg);
  if (const auto *B = std::get_if<BranchStmt>(&S.V))
    return isGroundBase(B->Cond) && !B->Then.IsMeta && !B->Else.IsMeta;
  if (const auto *R = std::get_if<ReturnStmt>(&S.V))
    return !R->Value.IsMeta;
  return true;
}

bool ir::isGround(const Procedure &P) {
  return std::all_of(P.Stmts.begin(), P.Stmts.end(),
                     [](const Stmt &S) { return isGround(S); });
}

//===----------------------------------------------------------------------===//
// Pattern-variable collection.
//===----------------------------------------------------------------------===//

static void addName(const std::string &Name, std::vector<std::string> &Out) {
  if (Name.empty())
    return; // wildcard
  if (std::find(Out.begin(), Out.end(), Name) == Out.end())
    Out.push_back(Name);
}

static void collectMetaBase(const BaseExpr &B, std::vector<std::string> &Out) {
  if (isVar(B)) {
    if (asVar(B).IsMeta)
      addName(asVar(B).Name, Out);
  } else if (asConst(B).IsMeta) {
    addName(asConst(B).MetaName, Out);
  }
}

void ir::collectMetaNames(const Expr &E, std::vector<std::string> &Out) {
  if (const auto *X = std::get_if<Var>(&E.V)) {
    if (X->IsMeta)
      addName(X->Name, Out);
  } else if (const auto *C = std::get_if<ConstVal>(&E.V)) {
    if (C->IsMeta)
      addName(C->MetaName, Out);
  } else if (const auto *D = std::get_if<DerefExpr>(&E.V)) {
    if (D->Ptr.IsMeta)
      addName(D->Ptr.Name, Out);
  } else if (const auto *A = std::get_if<AddrOfExpr>(&E.V)) {
    if (A->Target.IsMeta)
      addName(A->Target.Name, Out);
  } else if (const auto *O = std::get_if<OpExpr>(&E.V)) {
    for (const BaseExpr &B : O->Args)
      collectMetaBase(B, Out);
  } else if (const auto *M = std::get_if<MetaExpr>(&E.V)) {
    addName(M->Name, Out);
  }
}

void ir::collectMetaNames(const Stmt &S, std::vector<std::string> &Out) {
  if (const auto *D = std::get_if<DeclStmt>(&S.V)) {
    if (D->Name.IsMeta)
      addName(D->Name.Name, Out);
  } else if (const auto *A = std::get_if<AssignStmt>(&S.V)) {
    const Var &L = lhsVar(A->Target);
    if (L.IsMeta)
      addName(L.Name, Out);
    collectMetaNames(A->Value, Out);
  } else if (const auto *N = std::get_if<NewStmt>(&S.V)) {
    if (N->Target.IsMeta)
      addName(N->Target.Name, Out);
  } else if (const auto *C = std::get_if<CallStmt>(&S.V)) {
    if (C->Target.IsMeta)
      addName(C->Target.Name, Out);
    if (C->Callee.IsMeta)
      addName(C->Callee.Name, Out);
    collectMetaBase(C->Arg, Out);
  } else if (const auto *B = std::get_if<BranchStmt>(&S.V)) {
    collectMetaBase(B->Cond, Out);
    if (B->Then.IsMeta)
      addName(B->Then.MetaName, Out);
    if (B->Else.IsMeta)
      addName(B->Else.MetaName, Out);
  } else if (const auto *R = std::get_if<ReturnStmt>(&S.V)) {
    if (R->Value.IsMeta)
      addName(R->Value.Name, Out);
  }
}

//===----------------------------------------------------------------------===//
// Used-variable collection.
//===----------------------------------------------------------------------===//

static void collectUsedBase(const BaseExpr &B, std::vector<Var> &Out) {
  if (isVar(B))
    Out.push_back(asVar(B));
}

void ir::collectUsedVars(const Expr &E, std::vector<Var> &Out) {
  if (const auto *X = std::get_if<Var>(&E.V)) {
    Out.push_back(*X);
  } else if (const auto *D = std::get_if<DerefExpr>(&E.V)) {
    Out.push_back(D->Ptr);
  } else if (const auto *O = std::get_if<OpExpr>(&E.V)) {
    for (const BaseExpr &B : O->Args)
      collectUsedBase(B, Out);
  }
  // &x names x but does not read it; constants and MetaExpr read nothing
  // syntactically.
}

//===----------------------------------------------------------------------===//
// Well-formedness.
//===----------------------------------------------------------------------===//

std::optional<std::string> ir::validateProcedure(const Procedure &P) {
  if (P.Stmts.empty())
    return "procedure '" + P.Name + "' has no statements";
  if (!isGround(P))
    return "procedure '" + P.Name + "' contains pattern variables";
  if (!P.Stmts.back().is<ReturnStmt>())
    return "procedure '" + P.Name + "' does not end with a return";

  std::set<std::string> Declared;
  for (int I = 0; I < P.size(); ++I) {
    const Stmt &S = P.stmtAt(I);
    if (const auto *D = std::get_if<DeclStmt>(&S.V)) {
      if (D->Name.Name == P.Param)
        return "procedure '" + P.Name + "' re-declares its parameter '" +
               D->Name.Name + "'";
      if (!Declared.insert(D->Name.Name).second)
        return "procedure '" + P.Name + "' declares '" + D->Name.Name +
               "' more than once";
    }
    if (const auto *B = std::get_if<BranchStmt>(&S.V)) {
      if (!P.isValidIndex(B->Then.Value) || !P.isValidIndex(B->Else.Value))
        return "procedure '" + P.Name + "': branch at index " +
               std::to_string(I) + " targets an out-of-range index";
    }
  }
  return std::nullopt;
}

std::optional<std::string> ir::validateProgram(const Program &Prog) {
  std::set<std::string> Names;
  for (const Procedure &P : Prog.Procs) {
    if (!Names.insert(P.Name).second)
      return "duplicate procedure '" + P.Name + "'";
    if (auto Err = validateProcedure(P))
      return Err;
  }
  if (!Prog.findProc("main"))
    return std::string("program has no 'main' procedure");
  for (const Procedure &P : Prog.Procs)
    for (const Stmt &S : P.Stmts)
      if (const auto *C = std::get_if<CallStmt>(&S.V))
        if (!Prog.findProc(C->Callee.Name))
          return "procedure '" + P.Name + "' calls undefined procedure '" +
                 C->Callee.Name + "'";
  return std::nullopt;
}

const Procedure *Program::findProc(const std::string &Name) const {
  for (const Procedure &P : Procs)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

Procedure *Program::findProc(const std::string &Name) {
  for (Procedure &P : Procs)
    if (P.Name == Name)
      return &P;
  return nullptr;
}
