//===- Parser.cpp ---------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Printer.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace cobalt;
using namespace cobalt::ir;

bool Parser::expectPunct(std::string_view Spelling) {
  Token Tok = Lex.lex();
  if (Tok.isPunct(Spelling))
    return true;
  Diags.error(Tok.Loc, "expected '" + std::string(Spelling) + "', found '" +
                           std::string(Tok.Spelling) + "'");
  return false;
}

Token Parser::expectIdent(const char *What) {
  Token Tok = Lex.lex();
  if (!Tok.is(TokenKind::TK_Ident)) {
    Diags.error(Tok.Loc, std::string("expected ") + What + ", found '" +
                             std::string(Tok.Spelling) + "'");
    Tok.Kind = TokenKind::TK_Error;
  }
  return Tok;
}

/// In pattern mode, upper-case-initial identifiers are pattern variables
/// (paper convention, §3.2.1).
static bool isPatternSpelling(std::string_view S) {
  return !S.empty() && std::isupper(static_cast<unsigned char>(S[0]));
}

/// True for the spellings that denote Consts pattern variables in
/// expression positions: "C", "C0", "C1", ...
static bool isConstPatternSpelling(std::string_view S) {
  if (S.empty() || S[0] != 'C')
    return false;
  for (char Ch : S.substr(1))
    if (!std::isdigit(static_cast<unsigned char>(Ch)))
      return false;
  return true;
}

/// True for the spellings that denote Exprs pattern variables: "E", "E0"...
static bool isExprPatternSpelling(std::string_view S) {
  if (S.empty() || S[0] != 'E')
    return false;
  for (char Ch : S.substr(1))
    if (!std::isdigit(static_cast<unsigned char>(Ch)))
      return false;
  return true;
}

Var Parser::classifyVar(const Token &Tok) {
  std::string Name(Tok.Spelling);
  if (PatternMode && isPatternSpelling(Tok.Spelling))
    return Var::meta(std::move(Name));
  return Var::concrete(std::move(Name));
}

BaseExpr Parser::classifyBase(const Token &Tok) {
  std::string Name(Tok.Spelling);
  if (PatternMode && isPatternSpelling(Tok.Spelling)) {
    if (isConstPatternSpelling(Tok.Spelling))
      return ConstVal::meta(std::move(Name));
    return Var::meta(std::move(Name));
  }
  return Var::concrete(std::move(Name));
}

std::optional<Var> Parser::parseVarOccurrence() {
  Token Tok = Lex.lex();
  if (Tok.is(TokenKind::TK_Ident))
    return classifyVar(Tok);
  if (Tok.isPunct("_") || Tok.is(TokenKind::TK_Ellipsis))
    return Var::wildcard();
  if (Tok.isPunct("?")) {
    Token Name = expectIdent("pattern-variable name");
    if (Name.is(TokenKind::TK_Error))
      return std::nullopt;
    return Var::meta(std::string(Name.Spelling));
  }
  Diags.error(Tok.Loc, "expected a variable, found '" +
                           std::string(Tok.Spelling) + "'");
  return std::nullopt;
}

std::optional<BaseExpr> Parser::parseBaseExpr() {
  Token Tok = Lex.lex();
  if (Tok.is(TokenKind::TK_Int))
    return BaseExpr(ConstVal::concrete(Tok.IntValue));
  if (Tok.isPunct("-") && Lex.peek().is(TokenKind::TK_Int)) {
    Token Num = Lex.lex();
    return BaseExpr(ConstVal::concrete(-Num.IntValue));
  }
  if (Tok.is(TokenKind::TK_Ident))
    return classifyBase(Tok);
  if (Tok.isPunct("_") || Tok.is(TokenKind::TK_Ellipsis))
    return BaseExpr(Var::wildcard());
  if (Tok.isPunct("?")) {
    Token Name = expectIdent("pattern-variable name");
    if (Name.is(TokenKind::TK_Error))
      return std::nullopt;
    if (isConstPatternSpelling(Name.Spelling))
      return BaseExpr(ConstVal::meta(std::string(Name.Spelling)));
    return BaseExpr(Var::meta(std::string(Name.Spelling)));
  }
  Diags.error(Tok.Loc, "expected a variable or constant, found '" +
                           std::string(Tok.Spelling) + "'");
  return std::nullopt;
}

static bool isInfixOpSpelling(std::string_view S) {
  return S == "+" || S == "-" || S == "*" || S == "/" || S == "%" ||
         S == "==" || S == "!=" || S == "<" || S == "<=" || S == ">" ||
         S == ">=";
}

std::optional<Expr> Parser::parseExprImpl() {
  const Token &Next = Lex.peek();

  // *x and &x.
  if (Next.isPunct("*")) {
    Lex.lex();
    auto X = parseVarOccurrence();
    if (!X)
      return std::nullopt;
    return Expr(DerefExpr{*X});
  }
  if (Next.isPunct("&")) {
    Lex.lex();
    auto X = parseVarOccurrence();
    if (!X)
      return std::nullopt;
    return Expr(AddrOfExpr{*X});
  }

  // Unary operators over a base expression: "! b" and "neg" via "- b"
  // (disambiguated from negative literals inside parseBaseExpr).
  if (Next.isPunct("!")) {
    Lex.lex();
    auto B = parseBaseExpr();
    if (!B)
      return std::nullopt;
    return Expr(OpExpr{"!", {*B}});
  }

  // "~b": the unary operator wildcard — any unary operator applied to b
  // (pattern mode only; the checker and matcher treat the "_" operator
  // spelling as matching every operator of that arity).
  if (PatternMode && Next.isPunct("~")) {
    Lex.lex();
    auto B = parseBaseExpr();
    if (!B)
      return std::nullopt;
    return Expr(OpExpr{"_", {*B}});
  }

  // Exprs pattern variables and wildcards.
  if (PatternMode && Next.is(TokenKind::TK_Ident) &&
      isExprPatternSpelling(Next.Spelling)) {
    Token Tok = Lex.lex();
    return Expr(MetaExpr{std::string(Tok.Spelling)});
  }
  if (Next.is(TokenKind::TK_Ellipsis)) {
    Lex.lex();
    return Expr(MetaExpr{""});
  }

  // Base expression, possibly followed by an infix operator. In pattern
  // mode a lone "_" in operator position is the operator wildcard.
  auto B1 = parseBaseExpr();
  if (!B1)
    return std::nullopt;
  const Token &After = Lex.peek();
  bool IsInfix = After.is(TokenKind::TK_Punct) &&
                 (isInfixOpSpelling(After.Spelling) ||
                  (PatternMode && After.Spelling == "_"));
  if (IsInfix) {
    std::string Op(Lex.lex().Spelling);
    auto B2 = parseBaseExpr();
    if (!B2)
      return std::nullopt;
    return Expr(OpExpr{std::move(Op), {*B1, *B2}});
  }
  return Expr(BaseExpr(*B1));
}

std::optional<Expr> Parser::parseExpr() { return parseExprImpl(); }

std::optional<Index> Parser::parseBranchTarget() {
  Token Tok = Lex.lex();
  if (Tok.is(TokenKind::TK_Int))
    return Index::concrete(static_cast<int>(Tok.IntValue));
  if (Tok.isPunct("_"))
    return Index::meta("");
  if (Tok.isPunct("?")) {
    Token Name = expectIdent("pattern-variable name");
    if (Name.is(TokenKind::TK_Error))
      return std::nullopt;
    return Index::meta(std::string(Name.Spelling));
  }
  if (Tok.is(TokenKind::TK_Ident)) {
    if (PatternMode && isPatternSpelling(Tok.Spelling))
      return Index::meta(std::string(Tok.Spelling));
    // A label use; record a fixup resolved at end of procedure.
    Index Placeholder = Index::concrete(-1);
    Fixups.push_back({/*StmtIndex=*/-1, /*IsThen=*/false,
                      std::string(Tok.Spelling), Tok.Loc});
    return Placeholder;
  }
  Diags.error(Tok.Loc, "expected branch target, found '" +
                           std::string(Tok.Spelling) + "'");
  return std::nullopt;
}

std::optional<Stmt> Parser::parseStmt() {
  SourceLoc Loc = Lex.currentLoc();
  const Token &Next = Lex.peek();

  if (Next.isIdent("decl")) {
    Lex.lex();
    auto X = parseVarOccurrence();
    if (!X)
      return std::nullopt;
    return Stmt(DeclStmt{*X}, Loc);
  }

  if (Next.isIdent("skip")) {
    Lex.lex();
    return Stmt(SkipStmt{}, Loc);
  }

  if (Next.isIdent("return")) {
    Lex.lex();
    auto X = parseVarOccurrence();
    if (!X)
      return std::nullopt;
    return Stmt(ReturnStmt{*X}, Loc);
  }

  if (Next.isIdent("if")) {
    Lex.lex();
    auto Cond = parseBaseExpr();
    if (!Cond)
      return std::nullopt;
    Token GotoTok = Lex.lex();
    if (!GotoTok.isIdent("goto")) {
      if (GotoTok.is(TokenKind::TK_Punct) &&
          isInfixOpSpelling(GotoTok.Spelling))
        Diags.error(GotoTok.Loc,
                    "branch conditions must be a variable or constant "
                    "(grammar: 'if b goto ι else ι'); compute the "
                    "comparison into a variable first");
      else
        Diags.error(GotoTok.Loc, "expected 'goto' in branch");
      return std::nullopt;
    }
    size_t FixupsBefore = Fixups.size();
    auto Then = parseBranchTarget();
    size_t FixupsAfterThen = Fixups.size();
    Token ElseTok = Lex.lex();
    if (!ElseTok.isIdent("else")) {
      Diags.error(ElseTok.Loc, "expected 'else' in branch");
      return std::nullopt;
    }
    auto Else = parseBranchTarget();
    if (!Then || !Else)
      return std::nullopt;
    // Mark which fixups belong to the then/else slots of this statement;
    // the statement index is patched in by parseProcedure.
    for (size_t I = FixupsBefore; I < FixupsAfterThen; ++I)
      Fixups[I].IsThen = true;
    return Stmt(BranchStmt{*Cond, *Then, *Else}, Loc);
  }

  // Assignments: "x := ..." or "*x := ...".
  Lhs Target = Var::concrete("");
  if (Next.isPunct("*")) {
    Lex.lex();
    auto X = parseVarOccurrence();
    if (!X)
      return std::nullopt;
    Target = DerefExpr{*X};
  } else {
    auto X = parseVarOccurrence();
    if (!X)
      return std::nullopt;
    Target = *X;
  }
  if (!expectPunct(":="))
    return std::nullopt;

  // RHS alternatives: new | callee(b) | expression.
  if (Lex.peek().isIdent("new")) {
    Lex.lex();
    if (!isVarLhs(Target)) {
      Diags.error(Loc, "'new' may only be assigned to a variable");
      return std::nullopt;
    }
    return Stmt(NewStmt{std::get<Var>(Target)}, Loc);
  }

  // A call looks like `ident ( b )`; in pattern mode the callee may be a
  // pattern variable (e.g. "X := P(Z)").
  if (Lex.peek().is(TokenKind::TK_Ident)) {
    Token Callee = Lex.lex();
    if (Lex.peek().isPunct("(")) {
      Lex.lex();
      auto Arg = parseBaseExpr();
      if (!Arg)
        return std::nullopt;
      if (!expectPunct(")"))
        return std::nullopt;
      if (!isVarLhs(Target)) {
        Diags.error(Loc, "a call result may only be assigned to a variable");
        return std::nullopt;
      }
      ProcName PN = (PatternMode && isPatternSpelling(Callee.Spelling))
                        ? ProcName::meta(std::string(Callee.Spelling))
                        : ProcName::concrete(std::string(Callee.Spelling));
      return Stmt(CallStmt{std::get<Var>(Target), PN, *Arg}, Loc);
    }
    // Not a call: re-interpret the identifier as the start of an
    // expression (base expr, possibly infix).
    BaseExpr B1 = classifyBase(Callee);
    if (PatternMode && isExprPatternSpelling(Callee.Spelling))
      return Stmt(AssignStmt{Target, Expr(MetaExpr{std::string(
                                         Callee.Spelling)})},
                  Loc);
    const Token &After = Lex.peek();
    bool IsInfix = After.is(TokenKind::TK_Punct) &&
                   (isInfixOpSpelling(After.Spelling) ||
                    (PatternMode && After.Spelling == "_"));
    if (IsInfix) {
      std::string Op(Lex.lex().Spelling);
      auto B2 = parseBaseExpr();
      if (!B2)
        return std::nullopt;
      return Stmt(AssignStmt{Target, Expr(OpExpr{std::move(Op), {B1, *B2}})},
                  Loc);
    }
    return Stmt(AssignStmt{Target, Expr(B1)}, Loc);
  }

  auto Value = parseExprImpl();
  if (!Value)
    return std::nullopt;
  return Stmt(AssignStmt{Target, *Value}, Loc);
}

std::optional<Stmt> Parser::parseSingleStmt() {
  auto S = parseStmt();
  if (!S)
    return std::nullopt;
  if (!Fixups.empty()) {
    Diags.error(Fixups.front().Loc,
                "label branch targets are not allowed in a single-statement "
                "pattern; use a numeric or pattern-variable target");
    return std::nullopt;
  }
  return S;
}

std::optional<Procedure> Parser::parseProcedure() {
  Labels.clear();
  Fixups.clear();

  Token ProcTok = Lex.lex();
  if (!ProcTok.isIdent("proc")) {
    Diags.error(ProcTok.Loc, "expected 'proc'");
    return std::nullopt;
  }
  Token Name = expectIdent("procedure name");
  if (Name.is(TokenKind::TK_Error) || !expectPunct("("))
    return std::nullopt;
  Token Param = expectIdent("parameter name");
  if (Param.is(TokenKind::TK_Error) || !expectPunct(")") ||
      !expectPunct("{"))
    return std::nullopt;

  Procedure P;
  P.Name = std::string(Name.Spelling);
  P.Param = std::string(Param.Spelling);

  while (!Lex.peek().isPunct("}")) {
    if (Lex.peek().is(TokenKind::TK_End)) {
      Diags.error(Lex.currentLoc(), "unexpected end of input in procedure '" +
                                        P.Name + "'");
      return std::nullopt;
    }

    // Optional label or explicit-index prefixes: `name:` / `3:`.
    if (Lex.peek().is(TokenKind::TK_Int)) {
      // Explicit index as printed by the Printer; verify it.
      Token Num = Lex.lex();
      if (!expectPunct(":"))
        return std::nullopt;
      if (Num.IntValue != P.size()) {
        Diags.error(Num.Loc, "explicit statement index " +
                                 std::to_string(Num.IntValue) +
                                 " does not match " + std::to_string(P.size()));
        return std::nullopt;
      }
      continue;
    }
    if (Lex.peek().is(TokenKind::TK_Ident)) {
      // Identifier followed by ':' (but not ':=') is a label definition;
      // anything else starts an ordinary statement.
      Token Ident = Lex.lex();
      if (Lex.peek().isPunct(":")) {
        Lex.lex();
        std::string Label(Ident.Spelling);
        if (!Labels.emplace(Label, P.size()).second) {
          Diags.error(Ident.Loc, "duplicate label '" + Label + "'");
          return std::nullopt;
        }
        continue;
      }
      Lex.unlex(Ident);
    }

    size_t FixupStart = Fixups.size();
    auto S = parseStmt();
    if (!S)
      return std::nullopt;
    for (size_t I = FixupStart; I < Fixups.size(); ++I)
      Fixups[I].StmtIndex = P.size();
    if (!expectPunct(";"))
      return std::nullopt;
    P.Stmts.push_back(std::move(*S));
  }
  Lex.lex(); // consume '}'

  // Resolve label fixups.
  for (const Fixup &F : Fixups) {
    auto It = Labels.find(F.Label);
    if (It == Labels.end()) {
      Diags.error(F.Loc, "undefined label '" + F.Label + "'");
      return std::nullopt;
    }
    auto &B = std::get<BranchStmt>(P.Stmts[F.StmtIndex].V);
    (F.IsThen ? B.Then : B.Else) = Index::concrete(It->second);
  }
  return P;
}

std::optional<Program> Parser::parseProgram() {
  Program Prog;
  while (!atEnd()) {
    auto P = parseProcedure();
    if (!P)
      return std::nullopt;
    Prog.Procs.push_back(std::move(*P));
  }
  if (auto Err = validateProgram(Prog)) {
    Diags.error(*Err);
    return std::nullopt;
  }
  return Prog;
}

//===----------------------------------------------------------------------===//
// Convenience wrappers.
//===----------------------------------------------------------------------===//

std::optional<Program> ir::parseProgram(std::string_view Text,
                                        DiagnosticEngine &Diags) {
  Parser P(Text, Diags);
  return P.parseProgram();
}

std::optional<Procedure> ir::parseProcedureText(std::string_view Text,
                                                DiagnosticEngine &Diags) {
  Parser P(Text, Diags);
  auto Proc = P.parseProcedure();
  if (Proc && !P.atEnd()) {
    Diags.error("trailing input after procedure");
    return std::nullopt;
  }
  return Proc;
}

std::optional<Stmt> ir::parseStmtPattern(std::string_view Text,
                                         DiagnosticEngine &Diags) {
  Parser P(Text, Diags, /*PatternMode=*/true);
  auto S = P.parseSingleStmt();
  if (S && !P.atEnd()) {
    Diags.error("trailing input after statement pattern");
    return std::nullopt;
  }
  return S;
}

std::optional<Expr> ir::parseExprPattern(std::string_view Text,
                                         DiagnosticEngine &Diags) {
  Parser P(Text, Diags, /*PatternMode=*/true);
  auto E = P.parseExpr();
  if (E && !P.atEnd()) {
    Diags.error("trailing input after expression pattern");
    return std::nullopt;
  }
  return E;
}

static void dieOnDiags(const DiagnosticEngine &Diags, std::string_view Text) {
  if (!Diags.hasErrors())
    return;
  std::fprintf(stderr, "fatal: failed to parse:\n%.*s\n%s\n",
               static_cast<int>(Text.size()), Text.data(),
               Diags.str().c_str());
  std::abort();
}

Program ir::parseProgramOrDie(std::string_view Text) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram(Text, Diags);
  dieOnDiags(Diags, Text);
  return std::move(*Prog);
}

Stmt ir::parseStmtPatternOrDie(std::string_view Text) {
  DiagnosticEngine Diags;
  auto S = parseStmtPattern(Text, Diags);
  dieOnDiags(Diags, Text);
  return std::move(*S);
}

Expr ir::parseExprPatternOrDie(std::string_view Text) {
  DiagnosticEngine Diags;
  auto E = parseExprPattern(Text, Diags);
  dieOnDiags(Diags, Text);
  return std::move(*E);
}
