//===- Cfg.h - Control-flow graph over statement indices --------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control-flow graph of a procedure. Nodes are statement indices
/// (paper §2.1.3 labels CFG nodes, which are exactly the indexed
/// statements). Edges: a branch flows to both targets, a return has no
/// successors, and every other statement falls through to index+1.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_IR_CFG_H
#define COBALT_IR_CFG_H

#include "ir/Ast.h"

#include <vector>

namespace cobalt {
namespace ir {

/// Immutable successor/predecessor structure for one procedure. The
/// procedure must stay alive and unmodified for the lifetime of the Cfg;
/// after a transformation rewrites statements in place (one statement
/// replaced by one statement, never changing control flow *shape* is NOT
/// guaranteed — branch folding rewrites targets), rebuild the Cfg.
class Cfg {
public:
  explicit Cfg(const Procedure &P);

  const Procedure &proc() const { return *P; }
  int size() const { return static_cast<int>(Succs.size()); }
  int entry() const { return 0; }

  const std::vector<int> &succs(int I) const { return Succs[I]; }
  const std::vector<int> &preds(int I) const { return Preds[I]; }

  /// True if \p I is reachable from the entry node.
  bool isReachable(int I) const { return Reachable[I]; }

  /// True if the node is an exit (return statement).
  bool isExit(int I) const { return P->stmtAt(I).is<ReturnStmt>(); }

  /// All exit-node indices.
  const std::vector<int> &exits() const { return Exits; }

private:
  const Procedure *P;
  std::vector<std::vector<int>> Succs;
  std::vector<std::vector<int>> Preds;
  std::vector<bool> Reachable;
  std::vector<int> Exits;
};

} // namespace ir
} // namespace cobalt

#endif // COBALT_IR_CFG_H
