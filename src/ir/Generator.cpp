//===- Generator.cpp ------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Generator.h"

#include <cassert>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

/// Emits one procedure body into a statement vector, fixing branch targets
/// as it goes (all emitted control flow is structured, so targets are
/// known once the enclosing construct is complete).
class ProcBuilder {
public:
  ProcBuilder(const GenOptions &Options, std::mt19937_64 &Rng,
              unsigned NumCallees)
      : Options(Options), Rng(Rng), NumCallees(NumCallees) {}

  Procedure build(const std::string &Name, bool IsMain);

private:
  unsigned pick(unsigned Bound) {
    assert(Bound > 0 && "pick from empty range");
    return static_cast<unsigned>(Rng() % Bound);
  }
  bool chance(unsigned Percent) { return pick(100) < Percent; }

  std::string scalarVar(unsigned I) const { return "v" + std::to_string(I); }
  Var randomScalar() { return Var::concrete(scalarVar(pick(Options.NumVars))); }

  BaseExpr randomBase() {
    if (chance(35))
      return ConstVal::concrete(static_cast<int64_t>(pick(21)) - 10);
    return randomScalar();
  }

  Expr randomPureExpr() {
    unsigned Kind = pick(Options.WithDivision ? 4 : 3);
    switch (Kind) {
    case 0:
      return Expr(randomBase());
    case 1: {
      static const char *Arith[] = {"+", "-", "*"};
      return Expr(OpExpr{Arith[pick(3)], {randomBase(), randomBase()}});
    }
    case 2: {
      static const char *Cmp[] = {"==", "!=", "<", "<=", ">", ">="};
      return Expr(OpExpr{Cmp[pick(6)], {randomBase(), randomBase()}});
    }
    default:
      return Expr(OpExpr{pick(2) ? "/" : "%", {randomBase(), randomBase()}});
    }
  }

  void emitSimpleStmt(std::vector<Stmt> &Out);
  void emitDiamond(std::vector<Stmt> &Out, unsigned Depth);
  void emitCountedLoop(std::vector<Stmt> &Out, unsigned Depth);
  void emitBlock(std::vector<Stmt> &Out, unsigned Budget, unsigned Depth);

  const GenOptions &Options;
  std::mt19937_64 &Rng;
  unsigned NumCallees;
  unsigned NumPtrVars = 0;
  unsigned NumCounters = 0;
};

} // namespace

void ProcBuilder::emitSimpleStmt(std::vector<Stmt> &Out) {
  // Pointer statements are rarer than scalar assignments.
  if (Options.WithPointers && chance(25)) {
    std::string P = "p" + std::to_string(pick(std::max(1u, NumPtrVars)));
    switch (pick(4)) {
    case 0:
      Out.push_back(Stmt(AssignStmt{Var::concrete(P),
                                    Expr(AddrOfExpr{randomScalar()})}));
      return;
    case 1:
      Out.push_back(Stmt(NewStmt{Var::concrete(P)}));
      return;
    case 2:
      Out.push_back(Stmt(AssignStmt{DerefExpr{Var::concrete(P)},
                                    Expr(randomBase())}));
      return;
    default:
      Out.push_back(Stmt(AssignStmt{randomScalar(),
                                    Expr(DerefExpr{Var::concrete(P)})}));
      return;
    }
  }
  if (Options.WithCalls && NumCallees > 0 && chance(10)) {
    std::string Callee = "helper" + std::to_string(pick(NumCallees));
    Out.push_back(Stmt(CallStmt{randomScalar(), ProcName::concrete(Callee),
                                randomBase()}));
    return;
  }
  if (chance(8)) {
    Out.push_back(Stmt(SkipStmt{}));
    return;
  }
  Out.push_back(Stmt(AssignStmt{randomScalar(), randomPureExpr()}));
}

void ProcBuilder::emitDiamond(std::vector<Stmt> &Out, unsigned Depth) {
  // if b goto then else else; <then>; goto join; <else>; join:
  size_t BranchAt = Out.size();
  Out.push_back(Stmt(BranchStmt{randomBase(), Index::concrete(0),
                                Index::concrete(0)}));
  size_t ThenStart = Out.size();
  emitBlock(Out, 1 + pick(3), Depth + 1);
  size_t GotoAt = Out.size();
  // Unconditional jump simulated as `if 1 goto J else J`.
  Out.push_back(Stmt(BranchStmt{ConstVal::concrete(1), Index::concrete(0),
                                Index::concrete(0)}));
  size_t ElseStart = Out.size();
  emitBlock(Out, 1 + pick(3), Depth + 1);
  int Join = static_cast<int>(Out.size());

  auto &Br = std::get<BranchStmt>(Out[BranchAt].V);
  Br.Then = Index::concrete(static_cast<int>(ThenStart));
  Br.Else = Index::concrete(static_cast<int>(ElseStart));
  auto &Jmp = std::get<BranchStmt>(Out[GotoAt].V);
  Jmp.Then = Index::concrete(Join);
  Jmp.Else = Index::concrete(Join);
}

void ProcBuilder::emitCountedLoop(std::vector<Stmt> &Out, unsigned Depth) {
  // i := 0;
  // G: g := i < Trip;
  //    if g goto body else exit;
  //    <body>; i := i + 1; if 1 goto G else G;
  // exit:
  // The guard comparison lives in its own variable because branch
  // conditions are base expressions in the IL grammar.
  std::string Counter = "c" + std::to_string(NumCounters++);
  Var I = Var::concrete(Counter);
  Var Guard = Var::concrete(Counter + "g");
  int64_t Trip = 1 + pick(Options.MaxLoopTrip);

  Out.push_back(Stmt(AssignStmt{I, Expr(ConstVal::concrete(0))}));
  int Head = static_cast<int>(Out.size());
  Out.push_back(Stmt(AssignStmt{
      Guard,
      Expr(OpExpr{"<", {BaseExpr(I), BaseExpr(ConstVal::concrete(Trip))}})}));
  size_t TestAt = Out.size();
  Out.push_back(Stmt(BranchStmt{Guard, Index::concrete(0),
                                Index::concrete(0)}));
  int BodyStart = static_cast<int>(Out.size());
  emitBlock(Out, 1 + pick(3), Depth + 1);
  Out.push_back(Stmt(AssignStmt{
      I, Expr(OpExpr{"+", {BaseExpr(I), BaseExpr(ConstVal::concrete(1))}})}));
  Out.push_back(Stmt(BranchStmt{ConstVal::concrete(1), Index::concrete(Head),
                                Index::concrete(Head)}));
  int Exit = static_cast<int>(Out.size());

  auto &Test = std::get<BranchStmt>(Out[TestAt].V);
  Test.Then = Index::concrete(BodyStart);
  Test.Else = Index::concrete(Exit);
}

void ProcBuilder::emitBlock(std::vector<Stmt> &Out, unsigned Budget,
                            unsigned Depth) {
  for (unsigned I = 0; I < Budget; ++I) {
    if (Depth < 2 && Options.WithLoops && chance(12)) {
      emitCountedLoop(Out, Depth);
      continue;
    }
    if (Depth < 3 && Options.WithBranches && chance(18)) {
      emitDiamond(Out, Depth);
      continue;
    }
    emitSimpleStmt(Out);
  }
}

Procedure ProcBuilder::build(const std::string &Name, bool IsMain) {
  Procedure P;
  P.Name = Name;
  P.Param = "arg";

  NumPtrVars = Options.WithPointers ? 2 : 0;

  // Declarations first: scalars, pointer temps, then seed a few scalars
  // from the parameter so data flows from the input.
  for (unsigned I = 0; I < Options.NumVars; ++I)
    P.Stmts.push_back(Stmt(DeclStmt{Var::concrete(scalarVar(I))}));
  for (unsigned I = 0; I < NumPtrVars; ++I)
    P.Stmts.push_back(Stmt(DeclStmt{Var::concrete("p" + std::to_string(I))}));
  // Pointer vars must hold locations before any deref; point them at v0/v1.
  for (unsigned I = 0; I < NumPtrVars; ++I)
    P.Stmts.push_back(
        Stmt(AssignStmt{Var::concrete("p" + std::to_string(I)),
                        Expr(AddrOfExpr{Var::concrete(scalarVar(I))})}));
  P.Stmts.push_back(Stmt(AssignStmt{Var::concrete(scalarVar(0)),
                                    Expr(Var::concrete("arg"))}));

  std::vector<Stmt> Body;
  emitBlock(Body, Options.NumStmts, 0);

  // Loop counters and guards were invented during emission; declare them
  // up front (shifting all branch targets by the number of new decls).
  std::vector<std::string> Extra;
  for (unsigned I = 0; I < NumCounters; ++I) {
    Extra.push_back("c" + std::to_string(I));
    Extra.push_back("c" + std::to_string(I) + "g");
  }
  int Shift = static_cast<int>(P.Stmts.size() + Extra.size());
  for (const std::string &Name2 : Extra)
    P.Stmts.push_back(Stmt(DeclStmt{Var::concrete(Name2)}));
  for (Stmt &S : Body) {
    if (auto *B = std::get_if<BranchStmt>(&S.V)) {
      B->Then = Index::concrete(B->Then.Value + Shift);
      B->Else = Index::concrete(B->Else.Value + Shift);
    }
    P.Stmts.push_back(std::move(S));
  }

  // Return scalar v0. With pointers enabled v0 may hold a location at run
  // time; the differential-testing harness compares whole return values,
  // and the interpreter's bump allocator is deterministic, so this is
  // still a meaningful comparison for semantics-preserving rewrites that
  // do not add or remove allocations. Rewrites that change allocation
  // counts are exercised by pointer-free configurations.
  (void)IsMain;
  P.Stmts.push_back(Stmt(ReturnStmt{Var::concrete(scalarVar(0))}));
  return P;
}

Program ir::generateProgram(const GenOptions &Options, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  Program Prog;

  GenOptions HelperOptions = Options;
  HelperOptions.WithCalls = false; // helpers do not call further
  HelperOptions.NumStmts = std::max(4u, Options.NumStmts / 4);
  for (unsigned I = 0; I < Options.NumHelperProcs; ++I) {
    ProcBuilder B(HelperOptions, Rng, 0);
    Prog.Procs.push_back(
        B.build("helper" + std::to_string(I), /*IsMain=*/false));
  }

  ProcBuilder B(Options, Rng, Options.NumHelperProcs);
  Prog.Procs.push_back(B.build("main", /*IsMain=*/true));

  assert(!validateProgram(Prog) && "generator produced ill-formed program");
  return Prog;
}
