//===- Generator.cpp ------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Generator.h"

#include <cassert>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

/// Emits one procedure body into a statement vector, fixing branch targets
/// as it goes (all emitted control flow is structured, so targets are
/// known once the enclosing construct is complete).
class ProcBuilder {
public:
  ProcBuilder(const GenOptions &Options, std::mt19937_64 &Rng,
              unsigned NumCallees)
      : Options(Options), Rng(Rng), NumCallees(NumCallees) {}

  Procedure build(const std::string &Name, bool IsMain);

private:
  unsigned pick(unsigned Bound) {
    assert(Bound > 0 && "pick from empty range");
    return static_cast<unsigned>(Rng() % Bound);
  }
  bool chance(unsigned Percent) { return pick(100) < Percent; }

  std::string scalarVar(unsigned I) const { return "v" + std::to_string(I); }
  Var randomScalar() { return Var::concrete(scalarVar(pick(Options.NumVars))); }

  BaseExpr randomBase() {
    if (chance(35))
      return ConstVal::concrete(static_cast<int64_t>(pick(21)) - 10);
    return randomScalar();
  }

  Expr randomPureExpr() {
    unsigned Kind = pick(Options.WithDivision ? 4 : 3);
    switch (Kind) {
    case 0:
      return Expr(randomBase());
    case 1: {
      static const char *Arith[] = {"+", "-", "*"};
      return Expr(OpExpr{Arith[pick(3)], {randomBase(), randomBase()}});
    }
    case 2: {
      static const char *Cmp[] = {"==", "!=", "<", "<=", ">", ">="};
      return Expr(OpExpr{Cmp[pick(6)], {randomBase(), randomBase()}});
    }
    default: {
      // A provably-zero divisor (a literal 0) one time in five: the
      // stuck-state path must be *reachable on every trace through the
      // statement*, not just on unlucky variable values, so constant
      // folding / propagation around guaranteed-stuck statements gets
      // differential coverage.
      BaseExpr Divisor =
          chance(20) ? BaseExpr(ConstVal::concrete(0)) : randomBase();
      return Expr(
          OpExpr{pick(2) ? "/" : "%", {randomBase(), std::move(Divisor)}});
    }
    }
  }

  void emitSimpleStmt(std::vector<Stmt> &Out);
  void emitBaitIdiom(std::vector<Stmt> &Out);
  void emitDiamond(std::vector<Stmt> &Out, unsigned Depth);
  void emitCountedLoop(std::vector<Stmt> &Out, unsigned Depth);
  void emitGotoSkip(std::vector<Stmt> &Out, unsigned Depth);
  void emitBlock(std::vector<Stmt> &Out, unsigned Budget, unsigned Depth);

  const GenOptions &Options;
  std::mt19937_64 &Rng;
  unsigned NumCallees;
  unsigned NumPtrVars = 0;
  unsigned NumCounters = 0;
};

} // namespace

void ProcBuilder::emitSimpleStmt(std::vector<Stmt> &Out) {
  // Aliasing pressure: shapes that make several names reach one cell —
  // self-pointing pointers, pointer copies, and pointer values escaping
  // into scalars (which helper procedures then return to their caller).
  // Dereferencing a pointer variable that was overwritten with an
  // integer is a legal stuck state, exactly like division by zero.
  if (Options.WithPointers && NumPtrVars > 0 && Options.AliasPressure &&
      chance(Options.AliasPressure)) {
    auto Ptr = [&] {
      return Var::concrete("p" + std::to_string(pick(NumPtrVars)));
    };
    switch (pick(5)) {
    case 0: // self-pointing: p := &p
      Out.push_back(Stmt(AssignStmt{Ptr(), Expr(AddrOfExpr{Ptr()})}));
      return;
    case 1: // pointer copy: p0 := p1
      Out.push_back(Stmt(AssignStmt{Ptr(), Expr(Ptr())}));
      return;
    case 2: // a pointer escapes into a scalar: v := p
      Out.push_back(Stmt(AssignStmt{randomScalar(), Expr(Ptr())}));
      return;
    case 3: // a scalar (possibly an escaped location) re-enters: p := v
      Out.push_back(Stmt(AssignStmt{Ptr(), Expr(randomScalar())}));
      return;
    default: // store a pointer through a pointer: *p0 := p1
      Out.push_back(
          Stmt(AssignStmt{DerefExpr{Ptr()}, Expr(BaseExpr(Ptr()))}));
      return;
    }
  }
  // Pointer statements are rarer than scalar assignments.
  if (Options.WithPointers && chance(25)) {
    std::string P = "p" + std::to_string(pick(std::max(1u, NumPtrVars)));
    switch (pick(4)) {
    case 0:
      Out.push_back(Stmt(AssignStmt{Var::concrete(P),
                                    Expr(AddrOfExpr{randomScalar()})}));
      return;
    case 1:
      Out.push_back(Stmt(NewStmt{Var::concrete(P)}));
      return;
    case 2:
      Out.push_back(Stmt(AssignStmt{DerefExpr{Var::concrete(P)},
                                    Expr(randomBase())}));
      return;
    default:
      Out.push_back(Stmt(AssignStmt{randomScalar(),
                                    Expr(DerefExpr{Var::concrete(P)})}));
      return;
    }
  }
  if (Options.WithCalls && NumCallees > 0 && chance(10)) {
    std::string Callee = "helper" + std::to_string(pick(NumCallees));
    Out.push_back(Stmt(CallStmt{randomScalar(), ProcName::concrete(Callee),
                                randomBase()}));
    return;
  }
  if (chance(8)) {
    Out.push_back(Stmt(SkipStmt{}));
    return;
  }
  Out.push_back(Stmt(AssignStmt{randomScalar(), randomPureExpr()}));
}

void ProcBuilder::emitBaitIdiom(std::vector<Stmt> &Out) {
  Var V0 = Var::concrete(scalarVar(0));
  // Loads land in v0 (the returned variable) half the time so a wrong
  // forwarded value actually reaches the observable return.
  auto Sink = [&] { return chance(50) ? V0 : randomScalar(); };
  unsigned NumKinds =
      Options.WithPointers ? (Options.WithCalls && NumCallees > 0 ? 4 : 3) : 1;
  switch (pick(NumKinds)) {
  case 0: {
    // CSE bait: v := v op c; w := v op c. The repeated expression is
    // self-referential, so rewriting the second occurrence to `w := v`
    // is wrong (the first assignment moved v past the shared value).
    Var V = randomScalar();
    Expr E(OpExpr{pick(2) ? "+" : "*",
                  {BaseExpr(V),
                   BaseExpr(ConstVal::concrete(1 + pick(5)))}});
    Out.push_back(Stmt(AssignStmt{V, E}));
    Out.push_back(Stmt(AssignStmt{Sink(), E}));
    return;
  }
  case 1: {
    // Load-CSE taint bait: p points at y, and a *direct* assignment to
    // y changes *p between the two loads.
    Var P = Var::concrete("p" + std::to_string(pick(NumPtrVars)));
    Var Y = randomScalar();
    Out.push_back(Stmt(AssignStmt{P, Expr(AddrOfExpr{Y})}));
    Out.push_back(Stmt(AssignStmt{randomScalar(), Expr(DerefExpr{P})}));
    Out.push_back(Stmt(AssignStmt{Y, randomPureExpr()}));
    Out.push_back(Stmt(AssignStmt{Sink(), Expr(DerefExpr{P})}));
    return;
  }
  case 2: {
    // Self-pointing store-forward bait: after p := &p, the store
    // `*p := q` lands in p's own cell, so the reload reads q's pointee
    // (an int) while a forwarded `x := q` would yield the pointer.
    Var P = Var::concrete("p0");
    Var Q = Var::concrete("p" + std::to_string(NumPtrVars > 1 ? 1 : 0));
    Out.push_back(Stmt(AssignStmt{Q, Expr(AddrOfExpr{randomScalar()})}));
    Out.push_back(Stmt(AssignStmt{P, Expr(AddrOfExpr{P})}));
    Out.push_back(Stmt(AssignStmt{DerefExpr{P}, Expr(BaseExpr(Q))}));
    Out.push_back(Stmt(AssignStmt{Sink(), Expr(DerefExpr{P})}));
    return;
  }
  default: {
    // Escaped-local read-back: a helper may return a pointer to one of
    // its (heap-lifetime) cells; reading it back observes stores the
    // callee made right before returning — including ones a naive
    // dead-assignment analysis considers dead.
    Var T = randomScalar();
    Var P = Var::concrete("p" + std::to_string(pick(NumPtrVars)));
    std::string Callee = "helper" + std::to_string(pick(NumCallees));
    Out.push_back(
        Stmt(CallStmt{T, ProcName::concrete(Callee), randomBase()}));
    Out.push_back(Stmt(AssignStmt{P, Expr(BaseExpr(T))}));
    Out.push_back(Stmt(AssignStmt{Sink(), Expr(DerefExpr{P})}));
    return;
  }
  }
}

void ProcBuilder::emitDiamond(std::vector<Stmt> &Out, unsigned Depth) {
  // if b goto then else else; <then>; goto join; <else>; join:
  size_t BranchAt = Out.size();
  Out.push_back(Stmt(BranchStmt{randomBase(), Index::concrete(0),
                                Index::concrete(0)}));
  size_t ThenStart = Out.size();
  emitBlock(Out, 1 + pick(3), Depth + 1);
  size_t GotoAt = Out.size();
  // Unconditional jump simulated as `if 1 goto J else J`.
  Out.push_back(Stmt(BranchStmt{ConstVal::concrete(1), Index::concrete(0),
                                Index::concrete(0)}));
  size_t ElseStart = Out.size();
  emitBlock(Out, 1 + pick(3), Depth + 1);
  int Join = static_cast<int>(Out.size());

  auto &Br = std::get<BranchStmt>(Out[BranchAt].V);
  Br.Then = Index::concrete(static_cast<int>(ThenStart));
  Br.Else = Index::concrete(static_cast<int>(ElseStart));
  auto &Jmp = std::get<BranchStmt>(Out[GotoAt].V);
  Jmp.Then = Index::concrete(Join);
  Jmp.Else = Index::concrete(Join);
}

void ProcBuilder::emitCountedLoop(std::vector<Stmt> &Out, unsigned Depth) {
  // i := 0;
  // G: g := i < Trip;
  //    if g goto body else exit;
  //    <body>; i := i + 1; if 1 goto G else G;
  // exit:
  // The guard comparison lives in its own variable because branch
  // conditions are base expressions in the IL grammar.
  std::string Counter = "c" + std::to_string(NumCounters++);
  Var I = Var::concrete(Counter);
  Var Guard = Var::concrete(Counter + "g");
  int64_t Trip = 1 + pick(Options.MaxLoopTrip);

  Out.push_back(Stmt(AssignStmt{I, Expr(ConstVal::concrete(0))}));
  int Head = static_cast<int>(Out.size());
  Out.push_back(Stmt(AssignStmt{
      Guard,
      Expr(OpExpr{"<", {BaseExpr(I), BaseExpr(ConstVal::concrete(Trip))}})}));
  size_t TestAt = Out.size();
  Out.push_back(Stmt(BranchStmt{Guard, Index::concrete(0),
                                Index::concrete(0)}));
  int BodyStart = static_cast<int>(Out.size());
  emitBlock(Out, 1 + pick(3), Depth + 1);
  Out.push_back(Stmt(AssignStmt{
      I, Expr(OpExpr{"+", {BaseExpr(I), BaseExpr(ConstVal::concrete(1))}})}));
  Out.push_back(Stmt(BranchStmt{ConstVal::concrete(1), Index::concrete(Head),
                                Index::concrete(Head)}));
  int Exit = static_cast<int>(Out.size());

  auto &Test = std::get<BranchStmt>(Out[TestAt].V);
  Test.Then = Index::concrete(BodyStart);
  Test.Else = Index::concrete(Exit);
}

void ProcBuilder::emitGotoSkip(std::vector<Stmt> &Out, unsigned Depth) {
  // if b goto end else mid — an unstructured *forward* jump whose taken
  // target skips a statement run while the fall-through target may land
  // in the run's middle (not at a structured join). Declared cells start
  // at 0, so entering a run mid-way is well-defined; forward-only
  // targets preserve termination.
  size_t BranchAt = Out.size();
  Out.push_back(Stmt(BranchStmt{randomBase(), Index::concrete(0),
                                Index::concrete(0)}));
  size_t RunStart = Out.size();
  emitBlock(Out, 1 + pick(3), Depth + 1);
  int End = static_cast<int>(Out.size());
  // Any statement of the run is a legal landing point; picking one at
  // random (instead of RunStart) is what makes the jump unstructured.
  int Mid = static_cast<int>(RunStart) +
            static_cast<int>(pick(static_cast<unsigned>(End - RunStart)));
  auto &Br = std::get<BranchStmt>(Out[BranchAt].V);
  Br.Then = Index::concrete(End);
  Br.Else = Index::concrete(Mid);
}

void ProcBuilder::emitBlock(std::vector<Stmt> &Out, unsigned Budget,
                            unsigned Depth) {
  for (unsigned I = 0; I < Budget; ++I) {
    if (Depth < 2 && Options.WithLoops && chance(12)) {
      emitCountedLoop(Out, Depth);
      continue;
    }
    if (Depth < 3 && Options.WithBranches && chance(18)) {
      emitDiamond(Out, Depth);
      continue;
    }
    if (Depth < 3 && Options.WithGotos && chance(14)) {
      emitGotoSkip(Out, Depth);
      continue;
    }
    if (Depth > 0 && Options.WithReturnInLoop && chance(7)) {
      Out.push_back(Stmt(ReturnStmt{randomScalar()}));
      continue;
    }
    if (Options.BaitPressure && chance(Options.BaitPressure)) {
      emitBaitIdiom(Out);
      continue;
    }
    emitSimpleStmt(Out);
  }
}

Procedure ProcBuilder::build(const std::string &Name, bool IsMain) {
  Procedure P;
  P.Name = Name;
  P.Param = "arg";

  NumPtrVars = Options.WithPointers ? 2 : 0;

  // Declarations first: scalars, pointer temps, then seed a few scalars
  // from the parameter so data flows from the input.
  for (unsigned I = 0; I < Options.NumVars; ++I)
    P.Stmts.push_back(Stmt(DeclStmt{Var::concrete(scalarVar(I))}));
  for (unsigned I = 0; I < NumPtrVars; ++I)
    P.Stmts.push_back(Stmt(DeclStmt{Var::concrete("p" + std::to_string(I))}));
  // Pointer vars must hold locations before any deref; point them at v0/v1.
  for (unsigned I = 0; I < NumPtrVars; ++I)
    P.Stmts.push_back(
        Stmt(AssignStmt{Var::concrete("p" + std::to_string(I)),
                        Expr(AddrOfExpr{Var::concrete(scalarVar(I))})}));
  P.Stmts.push_back(Stmt(AssignStmt{Var::concrete(scalarVar(0)),
                                    Expr(Var::concrete("arg"))}));

  std::vector<Stmt> Body;
  emitBlock(Body, Options.NumStmts, 0);

  // Loop counters and guards were invented during emission; declare them
  // up front (shifting all branch targets by the number of new decls).
  std::vector<std::string> Extra;
  for (unsigned I = 0; I < NumCounters; ++I) {
    Extra.push_back("c" + std::to_string(I));
    Extra.push_back("c" + std::to_string(I) + "g");
  }
  int Shift = static_cast<int>(P.Stmts.size() + Extra.size());
  for (const std::string &Name2 : Extra)
    P.Stmts.push_back(Stmt(DeclStmt{Var::concrete(Name2)}));
  for (Stmt &S : Body) {
    if (auto *B = std::get_if<BranchStmt>(&S.V)) {
      B->Then = Index::concrete(B->Then.Value + Shift);
      B->Else = Index::concrete(B->Else.Value + Shift);
    }
    P.Stmts.push_back(std::move(S));
  }

  // Escape epilogue (helpers only): return a pointer to a local cell
  // whose final store happens after every further syntactic use of the
  // stored-to variable. A naive backward liveness analysis calls that
  // store dead; the caller reading through the escaped pointer proves
  // it is not. Cells have heap lifetime in the interpreter, so the
  // read-back is well-defined.
  // helper0 always escapes (so a caller epilogue can rely on receiving a
  // pointer); other helpers escape with BaitPressure probability.
  if (!IsMain && Options.BaitPressure && Options.WithPointers &&
      NumPtrVars > 0 && Options.NumVars > 1 &&
      (Name == "helper0" || chance(Options.BaitPressure))) {
    Var Escapee = Var::concrete(scalarVar(1 + pick(Options.NumVars - 1)));
    Var EscPtr = Var::concrete("p0");
    P.Stmts.push_back(Stmt(AssignStmt{EscPtr, Expr(AddrOfExpr{Escapee})}));
    P.Stmts.push_back(
        Stmt(AssignStmt{Var::concrete(scalarVar(0)), Expr(BaseExpr(EscPtr))}));
    P.Stmts.push_back(Stmt(
        AssignStmt{Escapee, Expr(ConstVal::concrete(17 + pick(40)))}));
  }
  // Main's counterpart: read an escaped callee cell immediately before
  // the return, so the store the callee made right before returning is
  // observable no matter what the body did to v0 earlier. The two
  // epilogues combined are what expose return-blind dead-store
  // elimination (a B5-family bug) behaviorally.
  if (IsMain && Options.BaitPressure && Options.WithPointers &&
      Options.WithCalls && NumCallees > 0 && NumPtrVars > 0 &&
      Options.NumVars > 1 && chance(Options.BaitPressure)) {
    Var T = Var::concrete(scalarVar(1));
    Var P0 = Var::concrete("p0");
    P.Stmts.push_back(
        Stmt(CallStmt{T, ProcName::concrete("helper0"), randomBase()}));
    P.Stmts.push_back(Stmt(AssignStmt{P0, Expr(BaseExpr(T))}));
    P.Stmts.push_back(Stmt(
        AssignStmt{Var::concrete(scalarVar(0)), Expr(DerefExpr{P0})}));
  }
  // Return scalar v0. With pointers enabled v0 may hold a location at run
  // time; the differential-testing harness compares whole return values,
  // and the interpreter's bump allocator is deterministic, so this is
  // still a meaningful comparison for semantics-preserving rewrites that
  // do not add or remove allocations. Rewrites that change allocation
  // counts are exercised by pointer-free configurations.
  P.Stmts.push_back(Stmt(ReturnStmt{Var::concrete(scalarVar(0))}));
  return P;
}

Program ir::generateProgram(const GenOptions &Options, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  Program Prog;

  GenOptions HelperOptions = Options;
  HelperOptions.WithCalls = false; // helpers do not call further
  HelperOptions.NumStmts = std::max(4u, Options.NumStmts / 4);
  for (unsigned I = 0; I < Options.NumHelperProcs; ++I) {
    ProcBuilder B(HelperOptions, Rng, 0);
    Prog.Procs.push_back(
        B.build("helper" + std::to_string(I), /*IsMain=*/false));
  }

  ProcBuilder B(Options, Rng, Options.NumHelperProcs);
  Prog.Procs.push_back(B.build("main", /*IsMain=*/true));

  assert(!validateProgram(Prog) && "generator produced ill-formed program");
  return Prog;
}
