//===- Interp.h - Concrete small-step semantics of the IL -------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete operational semantics of the intermediate language
/// (paper §3.1). A state of execution is a tuple η = (ι, ρ, σ, ξ, M):
/// statement index, environment (variables -> locations), store
/// (locations -> values), dynamic call chain, and memory allocator. The
/// allocator is a bump counter over an unbounded location space.
///
/// Run-time errors are modelled through the *absence* of transitions: if
/// execution would fail (use of an undeclared variable, dereference of a
/// non-pointer, arithmetic on pointers, division by zero, ...), the state
/// is *stuck* and step() reports SR_Stuck with a reason. This is exactly
/// the paper's error model and is what the soundness notion quantifies
/// over ("whenever main(v1) returns v2 in π, it also does in π'").
///
/// Two step relations are exposed, mirroring the paper: step() is →π, and
/// stepOver() is the intraprocedural ↪π that steps "over" calls, running
/// the callee to completion.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_IR_INTERP_H
#define COBALT_IR_INTERP_H

#include "ir/Ast.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace cobalt {
namespace ir {

/// A memory location. Locations are opaque to programs (there is no
/// pointer arithmetic in the IL); the interpreter implements them as
/// integers handed out by a bump allocator.
using LocT = int64_t;

/// A run-time value: an integer constant or a location (paper: "values
/// (constants and locations)").
struct Value {
  enum class Kind { VK_Int, VK_Loc };
  Kind K = Kind::VK_Int;
  int64_t Raw = 0;

  static Value intV(int64_t V) { return {Kind::VK_Int, V}; }
  static Value locV(LocT L) { return {Kind::VK_Loc, L}; }

  bool isInt() const { return K == Kind::VK_Int; }
  bool isLoc() const { return K == Kind::VK_Loc; }
  int64_t asInt() const {
    assert(isInt() && "not an integer value");
    return Raw;
  }
  LocT asLoc() const {
    assert(isLoc() && "not a location value");
    return Raw;
  }

  std::string str() const;
  friend bool operator==(const Value &, const Value &) = default;
};

/// One suspended caller on the dynamic call chain ξ.
struct Frame {
  const Procedure *Proc;
  std::unordered_map<std::string, LocT> Env;
  int CallIndex;  ///< Index of the call statement in Proc.
  Var CallTarget; ///< Variable receiving the callee's return value.
};

/// The execution state η = (ι, ρ, σ, ξ, M).
struct ExecState {
  const Procedure *Proc = nullptr;
  int Index = 0;
  std::unordered_map<std::string, LocT> Env;
  std::unordered_map<LocT, Value> Store;
  std::vector<Frame> Stack;
  LocT NextLoc = 1; ///< The allocator M: next fresh location.

  /// Reads the value of variable \p Name, or nullopt if unbound /
  /// unallocated (a stuck condition for the caller to report).
  std::optional<Value> readVar(const std::string &Name) const;
};

/// Outcome of one step.
enum class StepResult {
  SR_Ok,       ///< Transitioned to a new state.
  SR_Returned, ///< main executed return: program terminated.
  SR_Stuck     ///< No transition exists (run-time error).
};

/// Outcome of a bounded run.
struct RunResult {
  enum class Kind { RK_Returned, RK_Stuck, RK_OutOfFuel };
  Kind K;
  Value Result;            ///< Valid when RK_Returned.
  std::string StuckReason; ///< Valid when RK_Stuck.
  std::string StuckProc;   ///< Procedure where execution got stuck.
  int StuckIndex = -1;     ///< Statement index where execution got stuck.
  uint64_t Steps = 0;      ///< →π steps taken.

  bool returned() const { return K == Kind::RK_Returned; }
  bool stuck() const { return K == Kind::RK_Stuck; }
  bool outOfFuel() const { return K == Kind::RK_OutOfFuel; }
  std::string str() const;
};

/// Evaluates a base expression / expression / lhs location in a state.
/// These are the denotations η(·) used throughout the paper; the
/// interpreter, the witness evaluator, and tests all share them. On
/// failure (a stuck condition) returns nullopt and, if \p Why is
/// non-null, stores a human-readable reason.
std::optional<Value> evalBaseIn(const ExecState &St, const BaseExpr &B,
                                std::string *Why = nullptr);
std::optional<Value> evalExprIn(const ExecState &St, const Expr &E,
                                std::string *Why = nullptr);
std::optional<LocT> evalLhsLocIn(const ExecState &St, const Lhs &L,
                                 std::string *Why = nullptr);

/// Evaluates operator \p Op over integer arguments; the single source of
/// truth for operator semantics, shared by the interpreter, the engine's
/// `computes` builtin label, and the checker's operator axioms. Returns
/// nullopt for unknown operators, unsupported arities, and division by
/// zero (all of which are stuck conditions at run time).
std::optional<int64_t> evalConstOp(const std::string &Op,
                                   const std::vector<int64_t> &Args);

/// Executes programs. Construct once per program; states reference the
/// program's procedures.
class Interpreter {
public:
  explicit Interpreter(const Program &Prog) : Prog(Prog) {}

  /// Builds the initial state of `main(Input)`.
  ExecState initialState(int64_t Input) const;

  /// The →π relation: performs one step in place. On SR_Stuck the state is
  /// unchanged and stuckReason() describes the error. On SR_Returned,
  /// returnValue() holds main's result.
  StepResult step(ExecState &St);

  /// The ↪π relation: like step(), but a call statement runs the callee
  /// (and its callees) to completion, bounded by \p Fuel →π steps.
  /// Returns SR_Stuck with reason "out of fuel" when the bound is hit
  /// (matching the paper: a non-returning call yields no ↪π transition).
  StepResult stepOver(ExecState &St, uint64_t Fuel = 1u << 20);

  /// Runs `main(Input)` for at most \p Fuel steps.
  RunResult run(int64_t Input, uint64_t Fuel = 1u << 20);

  /// Runs and records the (procedure, index) sequence of every →π step
  /// into \p Trace (initial state included).
  RunResult runWithTrace(int64_t Input,
                         std::vector<std::pair<std::string, int>> &Trace,
                         uint64_t Fuel = 1u << 20);

  const std::string &stuckReason() const { return StuckReason; }
  Value returnValue() const { return ReturnVal; }

private:
  std::optional<Value> evalBase(const ExecState &St, const BaseExpr &B);
  std::optional<Value> evalExpr(const ExecState &St, const Expr &E);
  std::optional<LocT> evalLhsLoc(const ExecState &St, const Lhs &L);
  bool stuck(const std::string &Reason);

  const Program &Prog;
  std::string StuckReason;
  Value ReturnVal;
};

} // namespace ir
} // namespace cobalt

#endif // COBALT_IR_INTERP_H
