//===- Interp.cpp ---------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"

#include "ir/Printer.h"
#include "support/FaultInjection.h"

using namespace cobalt;
using namespace cobalt::ir;

std::string Value::str() const {
  if (isInt())
    return std::to_string(Raw);
  return "loc(" + std::to_string(Raw) + ")";
}

std::string RunResult::str() const {
  switch (K) {
  case Kind::RK_Returned:
    return "returned " + Result.str();
  case Kind::RK_Stuck:
    return "stuck in '" + StuckProc + "' at " + std::to_string(StuckIndex) +
           ": " + StuckReason;
  case Kind::RK_OutOfFuel:
    return "out of fuel";
  }
  return "<invalid>";
}

std::optional<Value> ExecState::readVar(const std::string &Name) const {
  auto EIt = Env.find(Name);
  if (EIt == Env.end())
    return std::nullopt;
  auto SIt = Store.find(EIt->second);
  if (SIt == Store.end())
    return std::nullopt;
  return SIt->second;
}

bool Interpreter::stuck(const std::string &Reason) {
  StuckReason = Reason;
  return false;
}

static void setWhy(std::string *Why, const std::string &Reason) {
  if (Why)
    *Why = Reason;
}

std::optional<Value> ir::evalBaseIn(const ExecState &St, const BaseExpr &B,
                                    std::string *Why) {
  if (isConst(B)) {
    assert(!asConst(B).IsMeta && "evaluating a pattern fragment");
    return Value::intV(asConst(B).Value);
  }
  const Var &X = asVar(B);
  assert(!X.IsMeta && "evaluating a pattern fragment");
  auto V = St.readVar(X.Name);
  if (!V) {
    setWhy(Why, "use of undeclared variable '" + X.Name + "'");
    return std::nullopt;
  }
  return V;
}

std::optional<Value> Interpreter::evalBase(const ExecState &St,
                                           const BaseExpr &B) {
  std::string Why;
  auto V = evalBaseIn(St, B, &Why);
  if (!V)
    stuck(Why);
  return V;
}

std::optional<int64_t> ir::evalConstOp(const std::string &Op,
                                       const std::vector<int64_t> &Args) {
  if (Args.size() == 1) {
    int64_t A = Args[0];
    if (Op == "!")
      return A == 0 ? 1 : 0;
    if (Op == "-" || Op == "neg")
      return -A;
    return std::nullopt;
  }
  if (Args.size() == 2) {
    int64_t A = Args[0], B = Args[1];
    if (Op == "+")
      return A + B;
    if (Op == "-")
      return A - B;
    if (Op == "*")
      return A * B;
    if (Op == "/" || Op == "%") {
      if (B == 0)
        return std::nullopt; // division by zero: stuck
      return Op == "/" ? A / B : A % B;
    }
    if (Op == "==")
      return A == B ? 1 : 0;
    if (Op == "!=")
      return A != B ? 1 : 0;
    if (Op == "<")
      return A < B ? 1 : 0;
    if (Op == "<=")
      return A <= B ? 1 : 0;
    if (Op == ">")
      return A > B ? 1 : 0;
    if (Op == ">=")
      return A >= B ? 1 : 0;
    return std::nullopt;
  }
  return std::nullopt;
}

std::optional<Value> ir::evalExprIn(const ExecState &St, const Expr &E,
                                    std::string *Why) {
  if (const auto *X = std::get_if<Var>(&E.V))
    return evalBaseIn(St, BaseExpr(*X), Why);
  if (const auto *C = std::get_if<ConstVal>(&E.V))
    return evalBaseIn(St, BaseExpr(*C), Why);
  if (const auto *D = std::get_if<DerefExpr>(&E.V)) {
    auto P = evalBaseIn(St, BaseExpr(D->Ptr), Why);
    if (!P)
      return std::nullopt;
    if (!P->isLoc()) {
      setWhy(Why, "dereference of a non-pointer in *" + D->Ptr.Name);
      return std::nullopt;
    }
    auto It = St.Store.find(P->asLoc());
    if (It == St.Store.end()) {
      setWhy(Why, "dereference of an unallocated location");
      return std::nullopt;
    }
    return It->second;
  }
  if (const auto *A = std::get_if<AddrOfExpr>(&E.V)) {
    auto It = St.Env.find(A->Target.Name);
    if (It == St.Env.end()) {
      setWhy(Why, "address of undeclared variable '" + A->Target.Name + "'");
      return std::nullopt;
    }
    return Value::locV(It->second);
  }
  if (const auto *O = std::get_if<OpExpr>(&E.V)) {
    std::vector<int64_t> Args;
    Args.reserve(O->Args.size());
    for (const BaseExpr &B : O->Args) {
      auto V = evalBaseIn(St, B, Why);
      if (!V)
        return std::nullopt;
      if (!V->isInt()) {
        setWhy(Why, "operator '" + O->Op + "' applied to a pointer");
        return std::nullopt;
      }
      Args.push_back(V->asInt());
    }
    auto R = evalConstOp(O->Op, Args);
    if (!R) {
      setWhy(Why, "operator '" + O->Op + "'/" +
                      std::to_string(Args.size()) +
                      " has no result (unknown operator or division by "
                      "zero)");
      return std::nullopt;
    }
    return Value::intV(*R);
  }
  setWhy(Why, "evaluation of a pattern variable");
  return std::nullopt;
}

std::optional<Value> Interpreter::evalExpr(const ExecState &St,
                                           const Expr &E) {
  std::string Why;
  auto V = evalExprIn(St, E, &Why);
  if (!V)
    stuck(Why);
  return V;
}

std::optional<LocT> ir::evalLhsLocIn(const ExecState &St, const Lhs &L,
                                     std::string *Why) {
  if (const auto *X = std::get_if<Var>(&L)) {
    auto It = St.Env.find(X->Name);
    if (It == St.Env.end()) {
      setWhy(Why, "assignment to undeclared variable '" + X->Name + "'");
      return std::nullopt;
    }
    return It->second;
  }
  const Var &P = std::get<DerefExpr>(L).Ptr;
  auto V = St.readVar(P.Name);
  if (!V) {
    setWhy(Why, "store through undeclared variable '" + P.Name + "'");
    return std::nullopt;
  }
  if (!V->isLoc()) {
    setWhy(Why, "store through non-pointer in *" + P.Name);
    return std::nullopt;
  }
  if (!St.Store.count(V->asLoc())) {
    setWhy(Why, "store to an unallocated location");
    return std::nullopt;
  }
  return V->asLoc();
}

std::optional<LocT> Interpreter::evalLhsLoc(const ExecState &St,
                                            const Lhs &L) {
  std::string Why;
  auto V = evalLhsLocIn(St, L, &Why);
  if (!V)
    stuck(Why);
  return V;
}

ExecState Interpreter::initialState(int64_t Input) const {
  ExecState St;
  St.Proc = Prog.findProc("main");
  assert(St.Proc && "program has no main procedure");
  St.Index = 0;
  LocT ParamLoc = St.NextLoc++;
  St.Env[St.Proc->Param] = ParamLoc;
  St.Store[ParamLoc] = Value::intV(Input);
  return St;
}

StepResult Interpreter::step(ExecState &St) {
  // Fault-injection point: a forced stuck state, independent of the
  // statement. Lets tests exercise the "optimized program diverged"
  // branch of the pass manager's spot-check deterministically.
  if (support::faultFires(support::faults::InterpForceStuck)) {
    stuck("injected interpreter fault: forced stuck");
    return StepResult::SR_Stuck;
  }
  if (!St.Proc->isValidIndex(St.Index)) {
    stuck("control fell off the end of procedure '" + St.Proc->Name + "'");
    return StepResult::SR_Stuck;
  }
  const Stmt &S = St.Proc->stmtAt(St.Index);

  if (const auto *D = std::get_if<DeclStmt>(&S.V)) {
    // decl x: bind x to a fresh location. The fresh cell starts as the
    // integer 0 so execution is deterministic; the checker's axioms make
    // the same choice (see checker/SemanticsAxioms.cpp).
    LocT L = St.NextLoc++;
    St.Env[D->Name.Name] = L;
    St.Store[L] = Value::intV(0);
    ++St.Index;
    return StepResult::SR_Ok;
  }

  if (S.is<SkipStmt>()) {
    ++St.Index;
    return StepResult::SR_Ok;
  }

  if (const auto *A = std::get_if<AssignStmt>(&S.V)) {
    auto V = evalExpr(St, A->Value);
    if (!V)
      return StepResult::SR_Stuck;
    auto L = evalLhsLoc(St, A->Target);
    if (!L)
      return StepResult::SR_Stuck;
    St.Store[*L] = *V;
    ++St.Index;
    return StepResult::SR_Ok;
  }

  if (const auto *N = std::get_if<NewStmt>(&S.V)) {
    auto It = St.Env.find(N->Target.Name);
    if (It == St.Env.end()) {
      stuck("assignment to undeclared variable '" + N->Target.Name + "'");
      return StepResult::SR_Stuck;
    }
    LocT Fresh = St.NextLoc++;
    St.Store[Fresh] = Value::intV(0);
    St.Store[It->second] = Value::locV(Fresh);
    ++St.Index;
    return StepResult::SR_Ok;
  }

  if (const auto *C = std::get_if<CallStmt>(&S.V)) {
    const Procedure *Callee = Prog.findProc(C->Callee.Name);
    if (!Callee) {
      stuck("call to undefined procedure '" + C->Callee.Name + "'");
      return StepResult::SR_Stuck;
    }
    if (!St.Env.count(C->Target.Name)) {
      stuck("call result assigned to undeclared variable '" +
            C->Target.Name + "'");
      return StepResult::SR_Stuck;
    }
    auto Arg = evalBase(St, C->Arg);
    if (!Arg)
      return StepResult::SR_Stuck;
    St.Stack.push_back({St.Proc, std::move(St.Env), St.Index, C->Target});
    St.Proc = Callee;
    St.Index = 0;
    St.Env.clear();
    LocT ParamLoc = St.NextLoc++;
    St.Env[Callee->Param] = ParamLoc;
    St.Store[ParamLoc] = *Arg;
    return StepResult::SR_Ok;
  }

  if (const auto *B = std::get_if<BranchStmt>(&S.V)) {
    auto V = evalBase(St, B->Cond);
    if (!V)
      return StepResult::SR_Stuck;
    if (!V->isInt()) {
      stuck("branch on a pointer value");
      return StepResult::SR_Stuck;
    }
    St.Index = V->asInt() != 0 ? B->Then.Value : B->Else.Value;
    return StepResult::SR_Ok;
  }

  const auto &R = std::get<ReturnStmt>(S.V);
  auto V = St.readVar(R.Value.Name);
  if (!V) {
    stuck("return of undeclared variable '" + R.Value.Name + "'");
    return StepResult::SR_Stuck;
  }
  if (St.Stack.empty()) {
    ReturnVal = *V;
    return StepResult::SR_Returned;
  }
  Frame F = std::move(St.Stack.back());
  St.Stack.pop_back();
  St.Proc = F.Proc;
  St.Env = std::move(F.Env);
  auto TIt = St.Env.find(F.CallTarget.Name);
  if (TIt == St.Env.end()) {
    stuck("call result assigned to undeclared variable '" +
          F.CallTarget.Name + "'");
    return StepResult::SR_Stuck;
  }
  St.Store[TIt->second] = *V;
  St.Index = F.CallIndex + 1;
  return StepResult::SR_Ok;
}

StepResult Interpreter::stepOver(ExecState &St, uint64_t Fuel) {
  size_t Depth = St.Stack.size();
  StepResult R = step(St);
  if (R != StepResult::SR_Ok)
    return R;
  while (St.Stack.size() > Depth) {
    if (Fuel-- == 0) {
      stuck("out of fuel while stepping over a call");
      return StepResult::SR_Stuck;
    }
    R = step(St);
    if (R != StepResult::SR_Ok)
      return R;
  }
  return StepResult::SR_Ok;
}

RunResult Interpreter::run(int64_t Input, uint64_t Fuel) {
  std::vector<std::pair<std::string, int>> Ignored;
  (void)Ignored;
  ExecState St = initialState(Input);
  RunResult Out;
  Out.Steps = 0;
  while (true) {
    if (Out.Steps >= Fuel) {
      Out.K = RunResult::Kind::RK_OutOfFuel;
      return Out;
    }
    StepResult R = step(St);
    ++Out.Steps;
    if (R == StepResult::SR_Returned) {
      Out.K = RunResult::Kind::RK_Returned;
      Out.Result = ReturnVal;
      return Out;
    }
    if (R == StepResult::SR_Stuck) {
      Out.K = RunResult::Kind::RK_Stuck;
      Out.StuckReason = StuckReason;
      Out.StuckProc = St.Proc->Name;
      Out.StuckIndex = St.Index;
      return Out;
    }
  }
}

RunResult
Interpreter::runWithTrace(int64_t Input,
                          std::vector<std::pair<std::string, int>> &Trace,
                          uint64_t Fuel) {
  ExecState St = initialState(Input);
  RunResult Out;
  Out.Steps = 0;
  Trace.clear();
  Trace.emplace_back(St.Proc->Name, St.Index);
  while (true) {
    if (Out.Steps >= Fuel) {
      Out.K = RunResult::Kind::RK_OutOfFuel;
      return Out;
    }
    StepResult R = step(St);
    ++Out.Steps;
    if (R == StepResult::SR_Ok)
      Trace.emplace_back(St.Proc->Name, St.Index);
    if (R == StepResult::SR_Returned) {
      Out.K = RunResult::Kind::RK_Returned;
      Out.Result = ReturnVal;
      return Out;
    }
    if (R == StepResult::SR_Stuck) {
      Out.K = RunResult::Kind::RK_Stuck;
      Out.StuckReason = StuckReason;
      Out.StuckProc = St.Proc->Name;
      Out.StuckIndex = St.Index;
      return Out;
    }
  }
}
