//===- Printer.h - Textual rendering of IL fragments ------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders IL fragments (including pattern-variable fragments) back to the
/// textual syntax accepted by the parser. Round-tripping is exercised by
/// the unit tests. Pattern variables print as `?Name` (or `_` for
/// wildcards) so ground and non-ground fragments are visually distinct.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_IR_PRINTER_H
#define COBALT_IR_PRINTER_H

#include "ir/Ast.h"

#include <string>

namespace cobalt {
namespace ir {

std::string toString(const Var &X);
std::string toString(const ConstVal &C);
std::string toString(const BaseExpr &B);
std::string toString(const Expr &E);
std::string toString(const Lhs &L);
std::string toString(const Stmt &S);

/// Prints a procedure with one `ι: stmt;` line per statement, so branch
/// targets can be read off directly.
std::string toString(const Procedure &P);
std::string toString(const Program &Prog);

} // namespace ir
} // namespace cobalt

#endif // COBALT_IR_PRINTER_H
