//===- Generator.h - Random well-formed IL programs -------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seedable generator of well-formed IL programs, used by the
/// property-based tests (differential semantic testing of optimizations,
/// noninterference sweeps) and by the engine benchmarks (program-size
/// scaling). Programs always terminate when loops are enabled: the only
/// loops emitted are counted loops over fresh counter variables.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_IR_GENERATOR_H
#define COBALT_IR_GENERATOR_H

#include "ir/Ast.h"

#include <cstdint>
#include <random>

namespace cobalt {
namespace ir {

/// Knobs for program generation.
struct GenOptions {
  unsigned NumVars = 5;        ///< Scalar variables per procedure.
  unsigned NumStmts = 20;      ///< Approximate body length (pre-control-flow).
  unsigned NumHelperProcs = 0; ///< Callable helper procedures.
  bool WithPointers = false;   ///< Emit &x, *p loads/stores, new.
  bool WithLoops = true;       ///< Emit counted loops.
  bool WithBranches = true;    ///< Emit if/else diamonds.
  bool WithCalls = false;      ///< Emit calls to helper procedures.
  bool WithDivision = false;   ///< Emit '/'/'%' (may make runs stuck).
  unsigned MaxLoopTrip = 6;    ///< Upper bound on loop trip counts.
  /// Emit unstructured forward gotos: conditional jumps whose target
  /// lands in the *middle* of a following statement run rather than at a
  /// structured join point. Forward-only, so termination is preserved.
  bool WithGotos = false;
  /// 0-100: weight of aliasing-pressure statements (re-pointing a
  /// pointer at a fresh scalar, self-pointing `p := &p`, copying a
  /// pointer into another pointer or into a *scalar* — which a helper
  /// may then return, escaping the local). These shapes are what expose
  /// pointer bugs (escaped locals, tainted loads, self-pointing stores)
  /// to the differential fuzzer. Requires WithPointers.
  unsigned AliasPressure = 0;
  /// Emit early `return x` statements inside loop bodies and branch
  /// legs (exercises B5-style return-exit obligations mid-CFG).
  bool WithReturnInLoop = false;
  /// 0-100: weight of multi-statement "bait" idioms that set up exactly
  /// the preconditions an optimization pattern matches on — a repeated
  /// self-referential expression (CSE bait), a store-then-reload through
  /// one pointer with an intervening direct write to the pointee
  /// (load-CSE taint bait), a self-pointing store forward, and an
  /// escaped-local read-back after a helper call. Random statement soup
  /// almost never lines these shapes up, so without bait the rules that
  /// need them never *apply*, and their bugs can never be observed.
  /// Pointer baits additionally require WithPointers; the helper-return
  /// escape bait additionally requires WithCalls.
  unsigned BaitPressure = 0;
};

/// Generates one random program. The same (Options, Seed) pair always
/// yields the same program.
Program generateProgram(const GenOptions &Options, uint64_t Seed);

} // namespace ir
} // namespace cobalt

#endif // COBALT_IR_GENERATOR_H
