//===- Generator.h - Random well-formed IL programs -------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seedable generator of well-formed IL programs, used by the
/// property-based tests (differential semantic testing of optimizations,
/// noninterference sweeps) and by the engine benchmarks (program-size
/// scaling). Programs always terminate when loops are enabled: the only
/// loops emitted are counted loops over fresh counter variables.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_IR_GENERATOR_H
#define COBALT_IR_GENERATOR_H

#include "ir/Ast.h"

#include <cstdint>
#include <random>

namespace cobalt {
namespace ir {

/// Knobs for program generation.
struct GenOptions {
  unsigned NumVars = 5;        ///< Scalar variables per procedure.
  unsigned NumStmts = 20;      ///< Approximate body length (pre-control-flow).
  unsigned NumHelperProcs = 0; ///< Callable helper procedures.
  bool WithPointers = false;   ///< Emit &x, *p loads/stores, new.
  bool WithLoops = true;       ///< Emit counted loops.
  bool WithBranches = true;    ///< Emit if/else diamonds.
  bool WithCalls = false;      ///< Emit calls to helper procedures.
  bool WithDivision = false;   ///< Emit '/'/'%' (may make runs stuck).
  unsigned MaxLoopTrip = 6;    ///< Upper bound on loop trip counts.
};

/// Generates one random program. The same (Options, Seed) pair always
/// yields the same program.
Program generateProgram(const GenOptions &Options, uint64_t Seed);

} // namespace ir
} // namespace cobalt

#endif // COBALT_IR_GENERATOR_H
