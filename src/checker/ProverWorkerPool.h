//===- ProverWorkerPool.h - Crash-contained prover workers ------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-process obligation discharge (DESIGN.md §12). A pool of forked
/// worker subprocesses (support::Subprocess) each runs Z3 queries on
/// behalf of the checker's threads: a prover segfault, runaway memory
/// grab, or hang takes down one expendable child, never the pipeline.
///
/// The division of labor:
///
///  * The **parent** keeps every thread Z3-free while the pool is live —
///    checker threads only lease workers, write request frames, and sit
///    in supervised reads. That is what makes mid-run respawn forks safe:
///    no parent thread can hold a Z3 (or other library) lock at fork
///    time.
///  * A **worker child** loops: read a request frame
///    (`<job-index> <fault-key> <remaining-ms> <trace-id> <trace?>`),
///    open a fresh ScopedFaultKey for the job (so injected faults are
///    per-obligation deterministic at every --jobs width and identical
///    on retries), run the job closure under a fresh child telemetry
///    session carrying the request's trace ID, and write the serialized
///    ObligationResult back — followed, when tracing is on, by the
///    child's span buffer, which the parent merges into the ambient
///    recorder so one Chrome trace shows both sides of the fork.
///
/// Supervision (the watchdog) lives in run(): every request carries a
/// wall deadline and an rss budget enforced by Subprocess::readFrame.
/// A worker that crashes (EOF / torn frame), hangs (deadline), or
/// balloons (rss) is SIGKILLed and replaced — with exponential backoff
/// plus a deterministic stagger so a crash storm cannot busy-loop forks.
/// The same obligation is retried on the fresh worker up to MaxRestarts
/// times; past that it is **quarantined**: reported
/// unknown(EK_WorkerCrash), which the checker maps to an Unproven
/// verdict. The run always completes; containment degrades answers,
/// never availability.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CHECKER_PROVERWORKERPOOL_H
#define COBALT_CHECKER_PROVERWORKERPOOL_H

#include "checker/Soundness.h"
#include "support/Subprocess.h"

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace cobalt {
namespace checker {

class ProverWorkerPool {
public:
  struct Config {
    unsigned Workers = 1; ///< Concurrent worker subprocesses.
    /// Watchdog wall budget per request (ms). A worker that has not
    /// answered by then is killed and counted as hung.
    unsigned WallMs = 60000;
    /// Watchdog rss budget per request (MB of *growth* while the request
    /// runs — the fork-inherited baseline is free); 0 = unwatched.
    unsigned RssMb = 0;
    /// Fresh workers tried per obligation before quarantining it.
    unsigned MaxRestarts = 2;
  };

  /// Executed in the worker child: discharge job \p Index with
  /// \p RemainingMs of the definition's wall budget left (< 0 =
  /// unlimited). Runs under the job's ScopedFaultKey (the pool opens it).
  using JobRunner =
      std::function<ObligationResult(size_t Index, int64_t RemainingMs)>;

  /// Observability; all counters monotonically increase over the pool's
  /// lifetime and mirror the worker.* telemetry metrics.
  struct Stats {
    unsigned Spawns = 0;      ///< Forks, initial + replacement.
    unsigned Restarts = 0;    ///< Replacement forks only.
    unsigned Crashes = 0;     ///< Exits/torn frames mid-request.
    unsigned KillsWall = 0;   ///< Watchdog kills: wall budget.
    unsigned KillsRss = 0;    ///< Watchdog kills: rss budget.
    unsigned Quarantined = 0; ///< Obligations degraded to Unproven.
  };

  ProverWorkerPool(const Config &C, JobRunner Run);
  ~ProverWorkerPool(); ///< stop()s.

  ProverWorkerPool(const ProverWorkerPool &) = delete;
  ProverWorkerPool &operator=(const ProverWorkerPool &) = delete;

  /// Forks the initial workers. Call before fanning jobs onto threads —
  /// this is the one fork done from a quiescent parent. False when no
  /// worker could be forked (caller should fall back to in-process).
  bool start();

  /// Kills every idle worker. Leased workers are reaped as their
  /// requests finish (run() discards instead of releasing once stopped).
  void stop();

  /// Discharges job \p Index on a leased worker (thread-safe; blocks for
  /// a free worker). \p Name and \p FaultKey identify the obligation in
  /// the request frame and in quarantine messages; \p TraceId is the
  /// request's trace ID, carried into the child so worker spans join the
  /// request's trace. Never throws and always returns a result: on
  /// repeated worker death the result is unknown(EK_WorkerCrash).
  ObligationResult run(size_t Index, const std::string &Name,
                       uint64_t FaultKey, int64_t RemainingMs,
                       uint64_t TraceId = 0);

  Stats stats() const;

private:
  using WorkerPtr = std::unique_ptr<support::Subprocess>;

  /// The child-side serve loop (runs after fork, single-threaded).
  int childLoop(int SocketFd);
  /// Forks one worker; registers its fd for sibling closing.
  WorkerPtr spawnOne();
  /// Leases a live worker, forking a replacement when the pool is below
  /// strength. Returns null only when forking fails or the pool stopped.
  WorkerPtr acquire();
  void release(WorkerPtr W);
  /// Removes a dead/poisoned worker from the books.
  void discard(WorkerPtr W);

  Config C;
  JobRunner Run;

  mutable std::mutex M; ///< Guards Free/AllFds/Live/Stopped/S.
  std::condition_variable Cv;
  std::vector<WorkerPtr> Free;
  std::vector<int> AllFds; ///< Parent-side fds of live workers.
  unsigned Live = 0;       ///< Free + leased.
  bool Stopped = false;
  Stats S;
};

} // namespace checker
} // namespace cobalt

#endif // COBALT_CHECKER_PROVERWORKERPOOL_H
