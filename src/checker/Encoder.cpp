//===- Encoder.cpp --------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Encoder.h"

#include "ir/Printer.h"

#include <cassert>

using namespace cobalt;
using namespace cobalt::checker;
using namespace cobalt::ir;

//===----------------------------------------------------------------------===//
// Datatype construction (C API; the 4.8 C++ wrapper lacks datatypes).
//===----------------------------------------------------------------------===//

namespace {

/// One constructor description for makeDatatype.
struct CtorSpec {
  const char *Name;
  const char *Recognizer;
  std::vector<std::pair<const char *, z3::sort>> Fields;
};

/// The queried declarations of a built datatype.
struct BuiltCtor {
  z3::func_decl Ctor;
  z3::func_decl Tester;
  std::vector<z3::func_decl> Accessors;
};

z3::sort makeDatatype(z3::context &C, const char *Name,
                      const std::vector<CtorSpec> &Specs,
                      std::vector<BuiltCtor> &Out) {
  std::vector<Z3_constructor> Ctors;
  for (const CtorSpec &Spec : Specs) {
    std::vector<Z3_symbol> FieldNames;
    std::vector<Z3_sort> FieldSorts;
    std::vector<unsigned> SortRefs;
    for (const auto &[FName, FSort] : Spec.Fields) {
      FieldNames.push_back(Z3_mk_string_symbol(C, FName));
      FieldSorts.push_back(FSort);
      SortRefs.push_back(0);
    }
    Ctors.push_back(Z3_mk_constructor(
        C, Z3_mk_string_symbol(C, Spec.Name),
        Z3_mk_string_symbol(C, Spec.Recognizer),
        static_cast<unsigned>(Spec.Fields.size()),
        FieldNames.empty() ? nullptr : FieldNames.data(),
        FieldSorts.empty() ? nullptr : FieldSorts.data(),
        SortRefs.empty() ? nullptr : SortRefs.data()));
  }

  Z3_sort Sort = Z3_mk_datatype(C, Z3_mk_string_symbol(C, Name),
                                static_cast<unsigned>(Ctors.size()),
                                Ctors.data());
  z3::sort Result(C, Sort);

  for (size_t I = 0; I < Ctors.size(); ++I) {
    Z3_func_decl Ctor, Tester;
    std::vector<Z3_func_decl> Accessors(Specs[I].Fields.size());
    Z3_query_constructor(C, Ctors[I],
                         static_cast<unsigned>(Specs[I].Fields.size()),
                         &Ctor, &Tester,
                         Accessors.empty() ? nullptr : Accessors.data());
    BuiltCtor B{z3::func_decl(C, Ctor), z3::func_decl(C, Tester), {}};
    for (Z3_func_decl A : Accessors)
      B.Accessors.push_back(z3::func_decl(C, A));
    Out.push_back(std::move(B));
    Z3_del_constructor(C, Ctors[I]);
  }
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// Construction.
//===----------------------------------------------------------------------===//

Encoder::Encoder(z3::context &Ctx)
    : VarS(Ctx), ProcS(Ctx), OpS(Ctx), ValueS(Ctx), BaseS(Ctx), ExprS(Ctx),
      LhsS(Ctx), StmtS(Ctx), IntV(Ctx), LocV(Ctx), IsIntV(Ctx), IsLocV(Ctx),
      IVal(Ctx), LVal(Ctx), BVar(Ctx), BConst(Ctx), IsBVar(Ctx),
      IsBConst(Ctx), BVarName(Ctx), BConstVal(Ctx), EBase(Ctx), EDeref(Ctx),
      EAddr(Ctx), EOp1(Ctx), EOp2(Ctx), IsEBase(Ctx), IsEDeref(Ctx),
      IsEAddr(Ctx), IsEOp1(Ctx), IsEOp2(Ctx), EBaseB(Ctx), EDerefVar(Ctx),
      EAddrVar(Ctx), EOp1Op(Ctx), EOp1Arg(Ctx), EOp2Op(Ctx), EOp2A(Ctx),
      EOp2B(Ctx), LVarC(Ctx), LDerefC(Ctx), IsLVar(Ctx), IsLDeref(Ctx),
      LVarName(Ctx), LDerefVar(Ctx), SDecl(Ctx), SSkip(Ctx), SAssign(Ctx),
      SNew(Ctx), SCall(Ctx), SBranch(Ctx), SReturn(Ctx), IsSDecl(Ctx),
      IsSSkip(Ctx), IsSAssign(Ctx), IsSNew(Ctx), IsSCall(Ctx),
      IsSBranch(Ctx), IsSReturn(Ctx), SDeclVar(Ctx), SAssignLhs(Ctx),
      SAssignRhs(Ctx), SNewVar(Ctx), SCallTgt(Ctx), SCallProc(Ctx),
      SCallArg(Ctx), SBranchCond(Ctx), SBranchThen(Ctx), SBranchElse(Ctx),
      SReturnVar(Ctx), ApplyOp1(Ctx), ApplyOp2(Ctx), DefinedOp1(Ctx),
      DefinedOp2(Ctx), CallStoF(Ctx), CallAllocF(Ctx), C(Ctx) {
  buildSorts();
}

void Encoder::buildSorts() {
  VarS = C.uninterpreted_sort("VarName");
  ProcS = C.uninterpreted_sort("ProcName");
  OpS = C.uninterpreted_sort("OpName");
  z3::sort IntS = C.int_sort();

  {
    std::vector<BuiltCtor> B;
    ValueS = makeDatatype(C, "Value",
                          {{"IntV", "isIntV", {{"iVal", IntS}}},
                           {"LocV", "isLocV", {{"lVal", IntS}}}},
                          B);
    IntV = B[0].Ctor;
    IsIntV = B[0].Tester;
    IVal = B[0].Accessors[0];
    LocV = B[1].Ctor;
    IsLocV = B[1].Tester;
    LVal = B[1].Accessors[0];
  }
  {
    std::vector<BuiltCtor> B;
    BaseS = makeDatatype(C, "BaseExpr",
                         {{"BVar", "isBVar", {{"bVarName", VarS}}},
                          {"BConst", "isBConst", {{"bConstVal", IntS}}}},
                         B);
    BVar = B[0].Ctor;
    IsBVar = B[0].Tester;
    BVarName = B[0].Accessors[0];
    BConst = B[1].Ctor;
    IsBConst = B[1].Tester;
    BConstVal = B[1].Accessors[0];
  }
  {
    std::vector<BuiltCtor> B;
    ExprS = makeDatatype(
        C, "Expr",
        {{"EBase", "isEBase", {{"eBaseB", BaseS}}},
         {"EDeref", "isEDeref", {{"eDerefVar", VarS}}},
         {"EAddr", "isEAddr", {{"eAddrVar", VarS}}},
         {"EOp1", "isEOp1", {{"eOp1Op", OpS}, {"eOp1Arg", BaseS}}},
         {"EOp2", "isEOp2",
          {{"eOp2Op", OpS}, {"eOp2A", BaseS}, {"eOp2B", BaseS}}}},
        B);
    EBase = B[0].Ctor;
    IsEBase = B[0].Tester;
    EBaseB = B[0].Accessors[0];
    EDeref = B[1].Ctor;
    IsEDeref = B[1].Tester;
    EDerefVar = B[1].Accessors[0];
    EAddr = B[2].Ctor;
    IsEAddr = B[2].Tester;
    EAddrVar = B[2].Accessors[0];
    EOp1 = B[3].Ctor;
    IsEOp1 = B[3].Tester;
    EOp1Op = B[3].Accessors[0];
    EOp1Arg = B[3].Accessors[1];
    EOp2 = B[4].Ctor;
    IsEOp2 = B[4].Tester;
    EOp2Op = B[4].Accessors[0];
    EOp2A = B[4].Accessors[1];
    EOp2B = B[4].Accessors[2];
  }
  {
    std::vector<BuiltCtor> B;
    LhsS = makeDatatype(C, "Lhs",
                        {{"LVar", "isLVar", {{"lVarName", VarS}}},
                         {"LDeref", "isLDeref", {{"lDerefVar", VarS}}}},
                        B);
    LVarC = B[0].Ctor;
    IsLVar = B[0].Tester;
    LVarName = B[0].Accessors[0];
    LDerefC = B[1].Ctor;
    IsLDeref = B[1].Tester;
    LDerefVar = B[1].Accessors[0];
  }
  {
    std::vector<BuiltCtor> B;
    StmtS = makeDatatype(
        C, "Stmt",
        {{"SDecl", "isSDecl", {{"sDeclVar", VarS}}},
         {"SSkip", "isSSkip", {}},
         {"SAssign", "isSAssign", {{"sAssignLhs", LhsS}, {"sAssignRhs", ExprS}}},
         {"SNew", "isSNew", {{"sNewVar", VarS}}},
         {"SCall", "isSCall",
          {{"sCallTgt", VarS}, {"sCallProc", ProcS}, {"sCallArg", BaseS}}},
         {"SBranch", "isSBranch",
          {{"sBranchCond", BaseS}, {"sBranchThen", IntS}, {"sBranchElse", IntS}}},
         {"SReturn", "isSReturn", {{"sReturnVar", VarS}}}},
        B);
    SDecl = B[0].Ctor;
    IsSDecl = B[0].Tester;
    SDeclVar = B[0].Accessors[0];
    SSkip = B[1].Ctor;
    IsSSkip = B[1].Tester;
    SAssign = B[2].Ctor;
    IsSAssign = B[2].Tester;
    SAssignLhs = B[2].Accessors[0];
    SAssignRhs = B[2].Accessors[1];
    SNew = B[3].Ctor;
    IsSNew = B[3].Tester;
    SNewVar = B[3].Accessors[0];
    SCall = B[4].Ctor;
    IsSCall = B[4].Tester;
    SCallTgt = B[4].Accessors[0];
    SCallProc = B[4].Accessors[1];
    SCallArg = B[4].Accessors[2];
    SBranch = B[5].Ctor;
    IsSBranch = B[5].Tester;
    SBranchCond = B[5].Accessors[0];
    SBranchThen = B[5].Accessors[1];
    SBranchElse = B[5].Accessors[2];
    SReturn = B[6].Ctor;
    IsSReturn = B[6].Tester;
    SReturnVar = B[6].Accessors[0];
  }

  ApplyOp1 = C.function("applyOp1", OpS, C.int_sort(), C.int_sort());
  DefinedOp1 = C.function("definedOp1", OpS, C.int_sort(), C.bool_sort());
  ApplyOp2 =
      C.function("applyOp2", OpS, C.int_sort(), C.int_sort(), C.int_sort());
  DefinedOp2 =
      C.function("definedOp2", OpS, C.int_sort(), C.int_sort(), C.bool_sort());

  z3::sort EnvS = C.array_sort(VarS, C.int_sort());
  z3::sort ScopeS = C.array_sort(VarS, C.bool_sort());
  z3::sort StoS = C.array_sort(C.int_sort(), ValueS);
  {
    // The C++ wrapper lacks a 5-ary overload; build via sort vectors.
    z3::sort_vector DomV(C);
    DomV.push_back(EnvS);
    DomV.push_back(ScopeS);
    DomV.push_back(StoS);
    DomV.push_back(C.int_sort());
    DomV.push_back(StmtS);
    CallStoF = C.function("callSto", DomV, StoS);
    CallAllocF = C.function("callAlloc", DomV, C.int_sort());
  }
}

//===----------------------------------------------------------------------===//
// Named constants.
//===----------------------------------------------------------------------===//

z3::expr Encoder::opConst(const std::string &Spelling, unsigned Arity) {
  std::string Key = Spelling + "#" + std::to_string(Arity);
  auto It = OpConsts.find(Key);
  if (It != OpConsts.end())
    return It->second;
  z3::expr E = C.constant(("op!" + Key).c_str(), OpS);
  OpConsts.emplace(Key, E);
  return E;
}

z3::expr Encoder::concreteVar(const std::string &Name) {
  auto It = ConcreteVars.find(Name);
  if (It != ConcreteVars.end())
    return It->second;
  z3::expr E = C.constant(("var!" + Name).c_str(), VarS);
  ConcreteVars.emplace(Name, E);
  AllVarConsts.push_back(E);
  return E;
}

z3::expr Encoder::concreteProc(const std::string &Name) {
  auto It = ConcreteProcs.find(Name);
  if (It != ConcreteProcs.end())
    return It->second;
  z3::expr E = C.constant(("proc!" + Name).c_str(), ProcS);
  ConcreteProcs.emplace(Name, E);
  AllProcConsts.push_back(E);
  return E;
}

z3::expr Encoder::freshVar(const std::string &Hint) {
  z3::expr E = C.constant(
      (Hint + "!" + std::to_string(FreshCounter++)).c_str(), VarS);
  AllVarConsts.push_back(E);
  return E;
}
z3::expr Encoder::freshExpr(const std::string &Hint) {
  return C.constant((Hint + "!" + std::to_string(FreshCounter++)).c_str(),
                    ExprS);
}
z3::expr Encoder::freshProc(const std::string &Hint) {
  z3::expr E = C.constant(
      (Hint + "!" + std::to_string(FreshCounter++)).c_str(), ProcS);
  AllProcConsts.push_back(E);
  return E;
}
z3::expr Encoder::freshInt(const std::string &Hint) {
  return C.constant((Hint + "!" + std::to_string(FreshCounter++)).c_str(),
                    C.int_sort());
}
z3::expr Encoder::freshStmt(const std::string &Hint) {
  return C.constant((Hint + "!" + std::to_string(FreshCounter++)).c_str(),
                    StmtS);
}
z3::expr Encoder::freshBool(const std::string &Hint) {
  return C.constant((Hint + "!" + std::to_string(FreshCounter++)).c_str(),
                    C.bool_sort());
}
z3::expr Encoder::freshBase(const std::string &Hint) {
  return C.constant((Hint + "!" + std::to_string(FreshCounter++)).c_str(),
                    BaseS);
}
z3::expr Encoder::freshLhs(const std::string &Hint) {
  return C.constant((Hint + "!" + std::to_string(FreshCounter++)).c_str(),
                    LhsS);
}

//===----------------------------------------------------------------------===//
// Background axioms.
//===----------------------------------------------------------------------===//

void Encoder::addBackgroundAxioms(z3::solver &S) {
  z3::expr A = C.int_const("axA");
  z3::expr B = C.int_const("axB");
  auto ForAll2 = [&](z3::expr Body) { return z3::forall(A, B, Body); };
  auto ForAll1 = [&](z3::expr Body) { return z3::forall(A, Body); };
  auto B2I = [&](z3::expr Cond) {
    return z3::ite(Cond, C.int_val(1), C.int_val(0));
  };

  // Known binary operators.
  struct Bin {
    const char *Sp;
    z3::expr Sem;
    z3::expr Def;
  };
  std::vector<Bin> Bins;
  Bins.push_back({"+", A + B, C.bool_val(true)});
  Bins.push_back({"-", A - B, C.bool_val(true)});
  Bins.push_back({"*", A * B, C.bool_val(true)});
  Bins.push_back({"==", B2I(A == B), C.bool_val(true)});
  Bins.push_back({"!=", B2I(A != B), C.bool_val(true)});
  Bins.push_back({"<", B2I(A < B), C.bool_val(true)});
  Bins.push_back({"<=", B2I(A <= B), C.bool_val(true)});
  Bins.push_back({">", B2I(A > B), C.bool_val(true)});
  Bins.push_back({">=", B2I(A >= B), C.bool_val(true)});
  for (const Bin &Op : Bins) {
    z3::expr OpC = opConst(Op.Sp, 2);
    S.add(ForAll2(ApplyOp2(OpC, A, B) == Op.Sem));
    S.add(ForAll2(DefinedOp2(OpC, A, B) == Op.Def));
  }
  // Division and modulus: undefined on zero divisors. Z3's div/mod match
  // the interpreter for nonnegative operands; the interpreter uses C++
  // semantics (truncation), Z3 uses Euclidean — constrain only where
  // they agree is overkill for soundness proofs, which never rely on a
  // specific rounding, so use Z3's operators and the zero-divisor
  // definedness condition. (No shipped optimization folds '/' or '%'.)
  {
    z3::expr DivC = opConst("/", 2);
    z3::expr ModC = opConst("%", 2);
    S.add(ForAll2(z3::implies(B != 0, ApplyOp2(DivC, A, B) == A / B)));
    S.add(ForAll2(DefinedOp2(DivC, A, B) == (B != 0)));
    S.add(ForAll2(z3::implies(B != 0, ApplyOp2(ModC, A, B) == z3::mod(A, B))));
    S.add(ForAll2(DefinedOp2(ModC, A, B) == (B != 0)));
  }
  // Known unary operators.
  {
    z3::expr NotC = opConst("!", 1);
    S.add(ForAll1(ApplyOp1(NotC, A) == B2I(A == 0)));
    S.add(ForAll1(DefinedOp1(NotC, A) == C.bool_val(true)));
    z3::expr NegC = opConst("-", 1);
    S.add(ForAll1(ApplyOp1(NegC, A) == -A));
    S.add(ForAll1(DefinedOp1(NegC, A) == C.bool_val(true)));
    z3::expr NegC2 = opConst("neg", 1);
    S.add(ForAll1(ApplyOp1(NegC2, A) == -A));
    S.add(ForAll1(DefinedOp1(NegC2, A) == C.bool_val(true)));
  }

  addDistinctnessAxioms(S);
}

void Encoder::addDistinctnessAxioms(z3::solver &S) {
  // Distinctness of named operator constants (per arity) and of concrete
  // variable / procedure names.
  auto AddDistinct = [&](const std::map<std::string, z3::expr> &M,
                         bool SplitByAritySuffix) {
    std::map<std::string, std::vector<z3::expr>> Groups;
    for (const auto &[Key, E] : M) {
      std::string Group;
      if (SplitByAritySuffix) {
        size_t Hash = Key.rfind('#');
        Group = Key.substr(Hash);
      }
      Groups[Group].push_back(E);
    }
    for (auto &[G, Es] : Groups) {
      (void)G;
      if (Es.size() < 2)
        continue;
      z3::expr_vector V(C);
      for (const z3::expr &E : Es)
        V.push_back(E);
      S.add(z3::distinct(V));
    }
  };
  AddDistinct(OpConsts, /*SplitByAritySuffix=*/true);
  AddDistinct(ConcreteVars, false);
  AddDistinct(ConcreteProcs, false);
}

//===----------------------------------------------------------------------===//
// States.
//===----------------------------------------------------------------------===//

ZState Encoder::freshState(const std::string &Prefix) {
  z3::sort IntS = C.int_sort();
  ZState S{
      C.constant((Prefix + ".ix").c_str(), IntS),
      C.constant((Prefix + ".env").c_str(), C.array_sort(VarS, IntS)),
      C.constant((Prefix + ".scope").c_str(),
                 C.array_sort(VarS, C.bool_sort())),
      C.constant((Prefix + ".sto").c_str(), C.array_sort(IntS, ValueS)),
      C.constant((Prefix + ".alloc").c_str(), IntS)};
  AllAllocs.push_back(S.Alloc);
  return S;
}

z3::expr Encoder::wf(const ZState &S) {
  z3::expr X = C.constant("wfX", VarS);
  z3::expr Y = C.constant("wfY", VarS);
  z3::expr L = C.int_const("wfL");

  z3::expr EnvRange = z3::forall(
      X, z3::implies(z3::select(S.Scope, X),
                     z3::select(S.Env, X) >= 0 &&
                         z3::select(S.Env, X) < S.Alloc));
  z3::expr EnvInj = z3::forall(
      X, Y,
      z3::implies(z3::select(S.Scope, X) && z3::select(S.Scope, Y) &&
                      X != Y,
                  z3::select(S.Env, X) != z3::select(S.Env, Y)));
  z3::expr StoRange = z3::forall(
      L, z3::implies(L >= 0 && L < S.Alloc &&
                         IsLocV(z3::select(S.Sto, L)),
                     LVal(z3::select(S.Sto, L)) >= 0 &&
                         LVal(z3::select(S.Sto, L)) < S.Alloc));
  return EnvRange && EnvInj && StoRange && S.Alloc >= 0;
}

z3::expr Encoder::notPointedToLoc(const ZState &S, const z3::expr &Loc) {
  z3::expr M = C.int_const("nptM");
  return z3::forall(M, z3::implies(M >= 0 && M < S.Alloc,
                                   z3::select(S.Sto, M) != LocV(Loc)));
}

z3::expr Encoder::wfBounded(const ZState &S) {
  z3::expr Out = S.Alloc >= 0;
  for (size_t I = 0; I < AllVarConsts.size(); ++I) {
    const z3::expr &X = AllVarConsts[I];
    z3::expr EnvX = z3::select(S.Env, X);
    Out = Out && z3::implies(z3::select(S.Scope, X),
                             EnvX >= 0 && EnvX < S.Alloc);
    for (size_t J = I + 1; J < AllVarConsts.size(); ++J) {
      const z3::expr &Y = AllVarConsts[J];
      Out = Out && z3::implies(z3::select(S.Scope, X) &&
                                   z3::select(S.Scope, Y) && X != Y,
                               EnvX != z3::select(S.Env, Y));
    }
  }
  for (int L = 0; L < 5; ++L) {
    z3::expr Cell = z3::select(S.Sto, C.int_val(L));
    Out = Out && z3::implies(C.int_val(L) < S.Alloc && IsLocV(Cell),
                             LVal(Cell) >= 0 && LVal(Cell) < S.Alloc);
  }
  return Out;
}

std::vector<z3::expr> Encoder::domainClosure() {
  std::vector<z3::expr> Out;
  auto Close = [&](std::vector<z3::expr> Consts, const z3::sort &Sort,
                   const char *Spare) {
    Consts.push_back(C.constant(Spare, Sort));
    z3::expr X = C.constant((std::string(Spare) + "!x").c_str(), Sort);
    z3::expr AnyOf = C.bool_val(false);
    for (const z3::expr &V : Consts)
      AnyOf = AnyOf || X == V;
    Out.push_back(z3::forall(X, AnyOf));
  };
  Close(AllVarConsts, VarS, "dcVarSpare");
  Close(AllProcConsts, ProcS, "dcProcSpare");
  // Bound the location space: counterexamples to these per-statement
  // obligations never need more than a handful of cells.
  for (const z3::expr &A : AllAllocs)
    Out.push_back(A >= 0 && A <= 4);
  std::vector<z3::expr> Ops;
  for (const auto &[K, E] : OpConsts) {
    (void)K;
    Ops.push_back(E);
  }
  Close(Ops, OpS, "dcOpSpare");
  return Out;
}

//===----------------------------------------------------------------------===//
// Denotations.
//===----------------------------------------------------------------------===//

ZEval Encoder::evalBase(const ZState &S, const z3::expr &B) {
  z3::expr Name = BVarName(B);
  z3::expr Val = z3::ite(IsBVar(B), z3::select(S.Sto, z3::select(S.Env, Name)),
                         IntV(BConstVal(B)));
  z3::expr Def =
      z3::ite(IsBVar(B), z3::select(S.Scope, Name), C.bool_val(true));
  return {Val, Def};
}

ZEval Encoder::evalExpr(const ZState &S, const z3::expr &E) {
  ZEval Base = evalBase(S, EBaseB(E));

  // *x: read x, require a location in range, read the cell.
  z3::expr DVar = EDerefVar(E);
  z3::expr PtrVal = z3::select(S.Sto, z3::select(S.Env, DVar));
  z3::expr DerefVal = z3::select(S.Sto, LVal(PtrVal));
  z3::expr DerefDef = z3::select(S.Scope, DVar) && IsLocV(PtrVal) &&
                      LVal(PtrVal) >= 0 && LVal(PtrVal) < S.Alloc;

  // &x.
  z3::expr AddrVal = LocV(z3::select(S.Env, EAddrVar(E)));
  z3::expr AddrDef = z3::select(S.Scope, EAddrVar(E));

  // op b / op b b: integer arguments only.
  ZEval A1 = evalBase(S, EOp1Arg(E));
  z3::expr Op1Val = IntV(ApplyOp1(EOp1Op(E), IVal(A1.Val)));
  z3::expr Op1Def = A1.Defined && IsIntV(A1.Val) &&
                    DefinedOp1(EOp1Op(E), IVal(A1.Val));

  ZEval A2a = evalBase(S, EOp2A(E));
  ZEval A2b = evalBase(S, EOp2B(E));
  z3::expr Op2Val =
      IntV(ApplyOp2(EOp2Op(E), IVal(A2a.Val), IVal(A2b.Val)));
  z3::expr Op2Def = A2a.Defined && A2b.Defined && IsIntV(A2a.Val) &&
                    IsIntV(A2b.Val) &&
                    DefinedOp2(EOp2Op(E), IVal(A2a.Val), IVal(A2b.Val));

  z3::expr Val = z3::ite(
      IsEBase(E), Base.Val,
      z3::ite(IsEDeref(E), DerefVal,
              z3::ite(IsEAddr(E), AddrVal,
                      z3::ite(IsEOp1(E), Op1Val, Op2Val))));
  z3::expr Def = z3::ite(
      IsEBase(E), Base.Defined,
      z3::ite(IsEDeref(E), DerefDef,
              z3::ite(IsEAddr(E), AddrDef,
                      z3::ite(IsEOp1(E), Op1Def, Op2Def))));
  return {Val, Def};
}

ZEval Encoder::evalLhsLoc(const ZState &S, const z3::expr &L) {
  z3::expr VarLoc = z3::select(S.Env, LVarName(L));
  z3::expr VarDef = z3::select(S.Scope, LVarName(L));

  z3::expr PtrVal = z3::select(S.Sto, z3::select(S.Env, LDerefVar(L)));
  z3::expr DerefLoc = LVal(PtrVal);
  z3::expr DerefDef = z3::select(S.Scope, LDerefVar(L)) && IsLocV(PtrVal) &&
                      DerefLoc >= 0 && DerefLoc < S.Alloc;

  return {z3::ite(IsLVar(L), VarLoc, DerefLoc),
          z3::ite(IsLVar(L), VarDef, DerefDef)};
}

//===----------------------------------------------------------------------===//
// Steps.
//===----------------------------------------------------------------------===//

ZStep Encoder::encodeStep(const ZState &S, const z3::expr &St,
                          const std::string &Prefix) {
  z3::expr True = C.bool_val(true);

  // Per-kind pieces.
  z3::expr DeclVar = SDeclVar(St);
  z3::expr NewVar = SNewVar(St);

  ZEval Rhs = evalExpr(S, SAssignRhs(St));
  ZEval LhsL = evalLhsLoc(S, SAssignLhs(St));

  ZEval Cond = evalBase(S, SBranchCond(St));

  ZEval Arg = evalBase(S, SCallArg(St));
  z3::expr CallTgt = SCallTgt(St);

  // The post-call store/allocator, functionally determined by the
  // pre-state and the call statement (see CallStoF's declaration).
  z3::expr_vector CallArgs(C);
  CallArgs.push_back(S.Env);
  CallArgs.push_back(S.Scope);
  CallArgs.push_back(S.Sto);
  CallArgs.push_back(S.Alloc);
  CallArgs.push_back(St);
  z3::expr CallSto = CallStoF(CallArgs);
  z3::expr CallAlloc = CallAllocF(CallArgs);

  // Definedness.
  z3::expr Defined = z3::ite(
      IsSDecl(St), True,
      z3::ite(IsSSkip(St), True,
              z3::ite(IsSAssign(St), Rhs.Defined && LhsL.Defined,
                      z3::ite(IsSNew(St), z3::select(S.Scope, NewVar),
                              z3::ite(IsSCall(St),
                                      z3::select(S.Scope, CallTgt) &&
                                          Arg.Defined,
                                      z3::ite(IsSBranch(St),
                                              Cond.Defined &&
                                                  IsIntV(Cond.Val),
                                              /*SReturn: no ↪π step*/
                                              C.bool_val(false)))))));

  // Post components.
  z3::expr PostIx = z3::ite(
      IsSBranch(St),
      z3::ite(IVal(Cond.Val) != 0, SBranchThen(St), SBranchElse(St)),
      S.Ix + 1);

  z3::expr PostEnv =
      z3::ite(IsSDecl(St), z3::store(S.Env, DeclVar, S.Alloc), S.Env);

  z3::expr PostScope =
      z3::ite(IsSDecl(St), z3::store(S.Scope, DeclVar, True), S.Scope);

  z3::expr PostAlloc = z3::ite(
      IsSDecl(St) || IsSNew(St), S.Alloc + 1,
      z3::ite(IsSCall(St), CallAlloc, S.Alloc));

  z3::expr Zero = IntV(C.int_val(0));
  z3::expr PostSto = z3::ite(
      IsSDecl(St), z3::store(S.Sto, S.Alloc, Zero),
      z3::ite(IsSAssign(St), z3::store(S.Sto, LhsL.Val, Rhs.Val),
              z3::ite(IsSNew(St),
                      z3::store(z3::store(S.Sto, S.Alloc, Zero),
                                z3::select(S.Env, NewVar),
                                LocV(S.Alloc)),
                      z3::ite(IsSCall(St), CallSto, S.Sto))));

  ZStep Out{Defined, ZState{PostIx, PostEnv, PostScope, PostSto, PostAlloc},
            {}};

  // The conservative call contract (guarded by IsSCall so the Skolem
  // constants are only constrained when the statement is a call).
  {
    z3::expr IsCall = IsSCall(St);
    z3::expr L = C.int_const((Prefix + ".ccL").c_str());
    z3::expr M = C.int_const((Prefix + ".ccM").c_str());

    // Allocation only grows.
    Out.Constraints.push_back(z3::implies(IsCall, CallAlloc >= S.Alloc));

    // Frame: locations that are allocated, not pointed-to, and not the
    // call target's cell keep their contents (the paper's primary axiom).
    z3::expr NotPointed =
        z3::forall(M, z3::implies(M >= 0 && M < S.Alloc,
                                  z3::select(S.Sto, M) != LocV(L)));
    Out.Constraints.push_back(z3::implies(
        IsCall,
        z3::forall(L, z3::implies(L >= 0 && L < S.Alloc &&
                                      L != z3::select(S.Env, CallTgt) &&
                                      NotPointed,
                                  z3::select(CallSto, L) ==
                                      z3::select(S.Sto, L)))));

    // No fabricated pointers: a location unreachable before the call is
    // still unpointed after it (callees can only create pointers to
    // fresh cells or to cells they could reach).
    z3::expr NoNewPointers = z3::forall(
        M, z3::implies(M >= 0 && M < CallAlloc,
                       z3::select(CallSto, M) != LocV(L)));
    Out.Constraints.push_back(z3::implies(
        IsCall, z3::forall(L, z3::implies(L >= 0 && L < S.Alloc &&
                                              NotPointed,
                                          NoNewPointers))));

    // The post-call store is still well-formed w.r.t. the new allocator.
    Out.Constraints.push_back(z3::implies(
        IsCall,
        z3::forall(L, z3::implies(L >= 0 && L < CallAlloc &&
                                      IsLocV(z3::select(CallSto, L)),
                                  LVal(z3::select(CallSto, L)) >= 0 &&
                                      LVal(z3::select(CallSto, L)) <
                                          CallAlloc))));
  }

  return Out;
}

z3::expr Encoder::stateEq(const ZState &A, const ZState &B) {
  return A.Ix == B.Ix && A.Env == B.Env && A.Scope == B.Scope &&
         A.Sto == B.Sto && A.Alloc == B.Alloc;
}

//===----------------------------------------------------------------------===//
// Pattern terms.
//===----------------------------------------------------------------------===//

z3::expr Encoder::buildVar(const Var &X, MetaEnv &Env) {
  if (!X.IsMeta)
    return concreteVar(X.Name);
  if (X.isWildcard())
    return freshVar("wildV");
  auto It = Env.find(X.Name);
  if (It != Env.end())
    return It->second;
  z3::expr E = C.constant(("mv!" + X.Name).c_str(), VarS);
  AllVarConsts.push_back(E);
  Env.emplace(X.Name, E);
  return E;
}

z3::expr Encoder::buildIndex(const Index &I, MetaEnv &Env) {
  if (!I.IsMeta)
    return C.int_val(I.Value);
  if (I.isWildcard())
    return freshInt("wildI");
  auto It = Env.find(I.MetaName);
  if (It != Env.end())
    return It->second;
  z3::expr E = C.constant(("mi!" + I.MetaName).c_str(), C.int_sort());
  Env.emplace(I.MetaName, E);
  return E;
}

z3::expr Encoder::buildBase(const BaseExpr &B, MetaEnv &Env) {
  if (isVar(B)) {
    const Var &X = asVar(B);
    if (X.isWildcard())
      return C.constant(("wildB!" + std::to_string(FreshCounter++)).c_str(),
                        BaseS);
    return BVar(buildVar(X, Env));
  }
  const ConstVal &CV = asConst(B);
  if (!CV.IsMeta)
    return BConst(C.int_val(static_cast<int64_t>(CV.Value)));
  if (CV.isWildcard())
    return C.constant(("wildB!" + std::to_string(FreshCounter++)).c_str(),
                      BaseS);
  auto It = Env.find(CV.MetaName);
  if (It != Env.end())
    return BConst(It->second);
  z3::expr E = C.constant(("mc!" + CV.MetaName).c_str(), C.int_sort());
  Env.emplace(CV.MetaName, E);
  return BConst(E);
}

z3::expr Encoder::buildExpr(const Expr &E, MetaEnv &Env) {
  if (const auto *X = std::get_if<Var>(&E.V))
    return EBase(buildBase(BaseExpr(*X), Env));
  if (const auto *CV = std::get_if<ConstVal>(&E.V))
    return EBase(buildBase(BaseExpr(*CV), Env));
  if (const auto *D = std::get_if<DerefExpr>(&E.V))
    return EDeref(buildVar(D->Ptr, Env));
  if (const auto *A = std::get_if<AddrOfExpr>(&E.V))
    return EAddr(buildVar(A->Target, Env));
  if (const auto *O = std::get_if<OpExpr>(&E.V)) {
    z3::expr Op = O->Op == "_"
                      ? C.constant(("wildOp!" +
                                    std::to_string(FreshCounter++))
                                       .c_str(),
                                   OpS)
                      : opConst(O->Op, static_cast<unsigned>(O->Args.size()));
    if (O->Args.size() == 1)
      return EOp1(Op, buildBase(O->Args[0], Env));
    assert(O->Args.size() == 2 &&
           "the checker encodes operators of arity 1 and 2 (DESIGN.md)");
    return EOp2(Op, buildBase(O->Args[0], Env), buildBase(O->Args[1], Env));
  }
  const auto &M = std::get<MetaExpr>(E.V);
  if (M.isWildcard())
    return freshExpr("wildE");
  auto It = Env.find(M.Name);
  if (It != Env.end())
    return It->second;
  z3::expr Out = C.constant(("me!" + M.Name).c_str(), ExprS);
  Env.emplace(M.Name, Out);
  return Out;
}

z3::expr Encoder::buildLhs(const Lhs &L, MetaEnv &Env) {
  if (const auto *X = std::get_if<Var>(&L)) {
    if (X->isWildcard())
      return C.constant(("wildL!" + std::to_string(FreshCounter++)).c_str(),
                        LhsS);
    return LVarC(buildVar(*X, Env));
  }
  return LDerefC(buildVar(std::get<DerefExpr>(L).Ptr, Env));
}

z3::expr Encoder::buildStmt(const Stmt &S, MetaEnv &Env) {
  if (const auto *D = std::get_if<DeclStmt>(&S.V))
    return SDecl(buildVar(D->Name, Env));
  if (S.is<SkipStmt>())
    return SSkip();
  if (const auto *A = std::get_if<AssignStmt>(&S.V))
    return SAssign(buildLhs(A->Target, Env), buildExpr(A->Value, Env));
  if (const auto *N = std::get_if<NewStmt>(&S.V))
    return SNew(buildVar(N->Target, Env));
  if (const auto *CS = std::get_if<CallStmt>(&S.V)) {
    z3::expr P = CS->Callee.IsMeta
                     ? (CS->Callee.isWildcard()
                            ? freshProc("wildP")
                            : [&] {
                                auto It = Env.find(CS->Callee.Name);
                                if (It != Env.end())
                                  return It->second;
                                z3::expr E = C.constant(
                                    ("mp!" + CS->Callee.Name).c_str(), ProcS);
                                AllProcConsts.push_back(E);
                                Env.emplace(CS->Callee.Name, E);
                                return E;
                              }())
                     : concreteProc(CS->Callee.Name);
    return SCall(buildVar(CS->Target, Env), P, buildBase(CS->Arg, Env));
  }
  if (const auto *B = std::get_if<BranchStmt>(&S.V))
    return SBranch(buildBase(B->Cond, Env), buildIndex(B->Then, Env),
                   buildIndex(B->Else, Env));
  const auto &R = std::get<ReturnStmt>(S.V);
  return SReturn(buildVar(R.Value, Env));
}
