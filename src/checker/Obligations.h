//===- Obligations.h - Obligation construction and discharge ----*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The obligation layer shared by the rule checker (Soundness.cpp) and the
/// translation validator (src/validate): a fresh-Z3-context builder for one
/// proof obligation, and a caller-assembled set of named obligations that
/// SoundnessChecker::checkObligationSet discharges through the same
/// retry/budget/containment/caching machinery as the paper's F/B
/// obligations.
///
/// ObligationBuilder used to be private to Soundness.cpp; it moved here so
/// subsystems other than the rule checker can lower their own goals (the
/// validator's per-pair simulation obligations) without duplicating the
/// escalation schedule, the two-pass proof/counterexample solver setup, or
/// the fault-injection points.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CHECKER_OBLIGATIONS_H
#define COBALT_CHECKER_OBLIGATIONS_H

#include "checker/Encoder.h"
#include "checker/PatternEncoder.h"
#include "checker/Soundness.h"
#include "support/FaultInjection.h"

#include <chrono>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace cobalt {
namespace checker {

/// One obligation under construction: a fresh Z3 context + encoders +
/// collected hypotheses. The fresh-context-per-obligation design is what
/// makes obligations independently schedulable: builders share nothing,
/// so each one can run on any thread of the pool.
struct ObligationBuilder {
  z3::context C;
  Encoder Enc;
  PatternEncoder PE;
  MetaEnv Env;
  std::vector<z3::expr> Hyps;
  std::vector<ZState> WfStates;

  ObligationBuilder(const LabelRegistry &Registry,
                    const std::map<std::string, const PureAnalysis *>
                        &AnalysesByLabel)
      : Enc(C), PE(Enc, Registry, AnalysesByLabel) {}

  void hyp(const z3::expr &E) { Hyps.push_back(E); }

  /// Registers a well-formedness hypothesis; materialized per solver
  /// mode (quantified for proofs, bounded for counterexample search).
  void wfHyp(const ZState &S) { WfStates.push_back(S); }
  void hypAll(const std::vector<z3::expr> &Es) {
    for (const z3::expr &E : Es)
      Hyps.push_back(E);
  }

  /// Asserts a step's equations: binds the (symbolic) post state to a
  /// named fresh state so models are readable, and keeps the contract
  /// constraints.
  ZState stepHyp(const ZState &Pre, const z3::expr &St,
                 const std::string &Prefix) {
    ZStep Step = Enc.encodeStep(Pre, St, Prefix);
    hyp(Step.Defined);
    hypAll(Step.Constraints);
    ZState Post = Enc.freshState(Prefix + "post");
    hyp(Post.Ix == Step.Post.Ix);
    hyp(Post.Env == Step.Post.Env);
    hyp(Post.Scope == Step.Post.Scope);
    hyp(Post.Sto == Step.Post.Sto);
    hyp(Post.Alloc == Step.Post.Alloc);
    return Post;
  }

  /// Classifies a Z3 reason_unknown() string into the error taxonomy.
  static support::ErrorKind classifyUnknown(const std::string &Reason) {
    if (Reason.find("timeout") != std::string::npos ||
        Reason.find("canceled") != std::string::npos ||
        Reason.find("cancelled") != std::string::npos)
      return support::ErrorKind::EK_ProverTimeout;
    if (Reason.find("resource") != std::string::npos ||
        Reason.find("memory") != std::string::npos ||
        Reason.find("memout") != std::string::npos ||
        Reason.find("rlimit") != std::string::npos)
      return support::ErrorKind::EK_ProverResourceOut;
    return support::ErrorKind::EK_ProverUnknown;
  }

  /// Discharges hypotheses ⊢ goal. Unsat of hypotheses ∧ ¬goal proves
  /// the obligation. On unknown, a second *counterexample search* pass
  /// closes the uninterpreted domains over the finitely many named
  /// constants — any model found under the extra constraints is still a
  /// genuine counterexample (we only shrank the candidate space), and the
  /// closure is what lets Z3's model builder get past the quantified
  /// well-formedness hypotheses.
  ///
  /// Attempts escalate per ProverPolicy (e.g. 2 s → 10 s → full budget):
  /// most obligations are cheap, so a failed fast attempt costs little
  /// and a successful one saves the full timeout. \p RemainingMs bounds
  /// the whole obligation when the caller has a wall-clock budget
  /// (negative = unlimited).
  ObligationResult check(const std::string &Name, const z3::expr &Goal,
                         const ProverPolicy &Policy, int64_t RemainingMs) {
    ObligationResult R;
    R.Name = Name;
    auto Start = std::chrono::steady_clock::now();
    auto ElapsedMs = [&Start]() {
      return std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now() - Start)
          .count();
    };

    // Escalating timeout schedule; the last attempt gets the full budget.
    std::vector<unsigned> Schedule;
    uint64_t T = std::max(1u, std::min(Policy.InitialTimeoutMs,
                                       Policy.TimeoutMs));
    for (unsigned I = 0; I < Policy.Retries; ++I) {
      Schedule.push_back(static_cast<unsigned>(T));
      T *= std::max(2u, Policy.EscalationFactor);
      if (T >= Policy.TimeoutMs)
        break;
    }
    Schedule.push_back(Policy.TimeoutMs);

    z3::check_result CR = z3::unknown;
    std::string Reason;
    for (size_t I = 0; I < Schedule.size(); ++I) {
      unsigned AttemptMs = Schedule[I];
      if (RemainingMs >= 0) {
        int64_t Left = RemainingMs - ElapsedMs();
        if (Left <= 0) {
          Reason = "total budget exhausted";
          break;
        }
        AttemptMs = static_cast<unsigned>(
            std::min<int64_t>(AttemptMs, Left));
      }
      ++R.Attempts;

      // Latency model for scheduler benches: a `checker.prover_stall_ms=V`
      // payload makes each attempt cost V ms of wall clock before the
      // solver runs, the way a remote or batch prover would.
      if (long StallMs =
              support::faultPayload(support::faults::CheckerProverStallMs);
          StallMs > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(StallMs));

      // Fault-injection points: simulate a prover giving up without
      // spending real solver time. Checked per attempt so @N rules can
      // exercise the retry path deterministically.
      if (support::faultFires(support::faults::CheckerForceTimeout)) {
        CR = z3::unknown;
        Reason = "timeout (injected)";
        continue;
      }
      if (support::faultFires(support::faults::CheckerForceUnknown)) {
        CR = z3::unknown;
        Reason = "incomplete quantifiers (injected)";
        continue;
      }

      CR = runSolver(Goal, AttemptMs, Policy, /*CexMode=*/false, R,
                     &Reason);
      if (CR == z3::unknown)
        CR = runSolver(Goal, AttemptMs, Policy, /*CexMode=*/true, R,
                       nullptr);
      if (CR != z3::unknown)
        break;
    }
    R.Seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

    if (CR == z3::unsat) {
      R.St = ObligationResult::Status::OS_Proven;
    } else if (CR == z3::sat) {
      R.St = ObligationResult::Status::OS_Failed;
    } else {
      // Unknown is *not* a counterexample: report it distinctly, with a
      // machine-dispatchable kind and the prover's reason.
      R.St = ObligationResult::Status::OS_Unknown;
      R.Counterexample.clear();
      std::string Why =
          Reason.empty() ? "solver returned unknown" : Reason;
      support::ErrorKind Kind = classifyUnknown(Why); // before Why moves
      R.Err = support::Error(Kind, std::move(Why));
    }
    return R;
  }

private:
  z3::check_result runSolver(const z3::expr &Goal, unsigned TimeoutMs,
                             const ProverPolicy &Policy, bool CexMode,
                             ObligationResult &R,
                             std::string *ReasonUnknown) {
    z3::solver S(C);
    z3::params P(C);
    P.set("timeout", TimeoutMs);
    if (Policy.RLimit != 0)
      P.set("rlimit", static_cast<unsigned>(Policy.RLimit));
    if (Policy.MaxMemoryMb != 0)
      P.set("max_memory", static_cast<unsigned>(Policy.MaxMemoryMb));
    S.set(P);
    for (const z3::expr &H : Hyps)
      S.add(H);
    for (const ZState &St : WfStates)
      S.add(CexMode ? Enc.wfBounded(St) : Enc.wf(St));
    S.add(!Goal);
    if (CexMode) {
      // Counterexample search: quantifier-free hypotheses only. The
      // quantified operator semantics would block model construction;
      // models may therefore under-constrain operator symbols, which is
      // fine for a *diagnostic* counterexample context (rejection was
      // already decided by the proof pass coming back non-unsat).
      Enc.addDistinctnessAxioms(S);
      for (const z3::expr &E : Enc.domainClosure())
        S.add(E);
    } else {
      Enc.addBackgroundAxioms(S);
    }

    z3::check_result CR = S.check();
    // Z3's "rlimit count" is the deterministic spend of this query;
    // accumulate it across attempts and modes as the obligation's cost.
    z3::stats Stats = S.statistics();
    for (unsigned I = 0; I < Stats.size(); ++I)
      if (Stats.is_uint(I) && Stats.key(I) == "rlimit count")
        R.RlimitSpent += Stats.uint_value(I);
    if (CR == z3::unknown && ReasonUnknown)
      *ReasonUnknown = S.reason_unknown();
    // A closed-domain unsat does not prove the obligation (the closure
    // removed models); only report sat results from this mode.
    if (CexMode && CR == z3::unsat)
      return z3::unknown;
    if (CR == z3::sat) {
      // The counterexample context (§7): a state of the world violating
      // the obligation. Print pattern variables, statement parts, and
      // state components; skip solver-internal constants.
      std::ostringstream Out;
      z3::model M = S.get_model();
      unsigned Printed = 0;
      for (unsigned I = 0; I < M.num_consts() && Printed < 16; ++I) {
        z3::func_decl D = M.get_const_decl(I);
        std::string Name = D.name().str();
        if (Name.rfind("op!", 0) == 0 || Name.rfind("dc", 0) == 0 ||
            Name.rfind("lbl!", 0) == 0 || Name.rfind("wild", 0) == 0)
          continue;
        Out << Name << " = " << M.get_const_interp(D).to_string() << "; ";
        ++Printed;
      }
      R.Counterexample = Out.str();
    }
    return CR;
  }
};

/// One named goal of an ObligationSet. The builder closure runs on
/// whichever thread (or forked prover worker) discharges the obligation;
/// anything it captures must be immutable and must outlive the
/// checkObligationSet call.
struct ObligationSpec {
  std::string Name;
  std::function<z3::expr(ObligationBuilder &)> Build;
};

/// A caller-assembled bundle of obligations that proves one externally
/// defined property (for the validator: "this procedure pair simulates").
/// Discharged by SoundnessChecker::checkObligationSet with the same
/// scheduling, budgets, containment, and (optionally) verdict caching as
/// rule obligations.
struct ObligationSet {
  /// Report name (CheckReport::Name of the result).
  std::string Name;
  /// Structural fingerprint of whatever the obligations encode. Keys the
  /// verdict cache (when Cacheable) and the fault-injection decisions, so
  /// it must be stable across runs and distinct across distinct inputs.
  uint64_t Fingerprint = 0;
  /// Whether a definitive verdict may be served from / stored into the
  /// verdict cache. Only set this when Fingerprint covers *everything*
  /// the obligations depend on.
  bool Cacheable = false;
  std::vector<ObligationSpec> Obligations;
};

} // namespace checker
} // namespace cobalt

#endif // COBALT_CHECKER_OBLIGATIONS_H
