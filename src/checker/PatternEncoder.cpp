//===- PatternEncoder.cpp -------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/PatternEncoder.h"

#include "ir/Printer.h"

#include <cassert>

using namespace cobalt;
using namespace cobalt::checker;
using namespace cobalt::ir;

//===----------------------------------------------------------------------===//
// Structural match conditions.
//===----------------------------------------------------------------------===//

z3::expr PatternEncoder::matchVarCond(const Var &Pattern, const z3::expr &V,
                                      MetaEnv &Env) {
  z3::context &C = Enc.ctx();
  if (!Pattern.IsMeta)
    return V == Enc.concreteVar(Pattern.Name);
  if (Pattern.isWildcard())
    return C.bool_val(true);
  auto It = Env.find(Pattern.Name);
  if (It != Env.end())
    return V == It->second;
  Env.emplace(Pattern.Name, V); // bind to the accessor expression
  return C.bool_val(true);
}

z3::expr PatternEncoder::matchBaseCond(const BaseExpr &Pattern,
                                       const z3::expr &B, MetaEnv &Env) {
  z3::context &C = Enc.ctx();
  if (isVar(Pattern)) {
    const Var &X = asVar(Pattern);
    if (X.isWildcard())
      return C.bool_val(true); // base wildcard: variable or constant
    return Enc.IsBVar(B) && matchVarCond(X, Enc.BVarName(B), Env);
  }
  const ConstVal &CV = asConst(Pattern);
  if (!CV.IsMeta)
    return Enc.IsBConst(B) &&
           Enc.BConstVal(B) == C.int_val(static_cast<int64_t>(CV.Value));
  if (CV.isWildcard())
    return Enc.IsBConst(B);
  auto It = Env.find(CV.MetaName);
  if (It != Env.end())
    return Enc.IsBConst(B) && Enc.BConstVal(B) == It->second;
  Env.emplace(CV.MetaName, Enc.BConstVal(B));
  return Enc.IsBConst(B);
}

z3::expr PatternEncoder::matchExprCond(const Expr &Pattern, const z3::expr &E,
                                       MetaEnv &Env) {
  z3::context &C = Enc.ctx();
  if (const auto *M = std::get_if<MetaExpr>(&Pattern.V)) {
    if (M->isWildcard())
      return C.bool_val(true);
    auto It = Env.find(M->Name);
    if (It != Env.end())
      return E == It->second;
    Env.emplace(M->Name, E);
    return C.bool_val(true);
  }
  if (const auto *X = std::get_if<Var>(&Pattern.V))
    return Enc.IsEBase(E) &&
           matchBaseCond(BaseExpr(*X), Enc.EBaseB(E), Env);
  if (const auto *CV = std::get_if<ConstVal>(&Pattern.V))
    return Enc.IsEBase(E) &&
           matchBaseCond(BaseExpr(*CV), Enc.EBaseB(E), Env);
  if (const auto *D = std::get_if<DerefExpr>(&Pattern.V))
    return Enc.IsEDeref(E) && matchVarCond(D->Ptr, Enc.EDerefVar(E), Env);
  if (const auto *A = std::get_if<AddrOfExpr>(&Pattern.V))
    return Enc.IsEAddr(E) && matchVarCond(A->Target, Enc.EAddrVar(E), Env);
  const auto &O = std::get<OpExpr>(Pattern.V);
  if (O.Args.size() == 1) {
    z3::expr Cond = Enc.IsEOp1(E);
    if (O.Op != "_")
      Cond = Cond && Enc.EOp1Op(E) == Enc.opConst(O.Op, 1);
    return Cond && matchBaseCond(O.Args[0], Enc.EOp1Arg(E), Env);
  }
  if (O.Args.size() == 2) {
    z3::expr Cond = Enc.IsEOp2(E);
    if (O.Op != "_")
      Cond = Cond && Enc.EOp2Op(E) == Enc.opConst(O.Op, 2);
    return Cond && matchBaseCond(O.Args[0], Enc.EOp2A(E), Env) &&
           matchBaseCond(O.Args[1], Enc.EOp2B(E), Env);
  }
  // Operators of arity >= 3 are outside the checker's encoding
  // (DESIGN.md); a pattern using one is unmatchable.
  return C.bool_val(false);
}

z3::expr PatternEncoder::matchLhsCond(const Lhs &Pattern, const z3::expr &L,
                                      MetaEnv &Env) {
  z3::context &C = Enc.ctx();
  if (const auto *X = std::get_if<Var>(&Pattern)) {
    if (X->isWildcard())
      return C.bool_val(true); // "… := e": either lhs alternative
    return Enc.IsLVar(L) && matchVarCond(*X, Enc.LVarName(L), Env);
  }
  return Enc.IsLDeref(L) &&
         matchVarCond(std::get<DerefExpr>(Pattern).Ptr, Enc.LDerefVar(L),
                      Env);
}

z3::expr PatternEncoder::matchStmtCond(const Stmt &Pattern, const z3::expr &St,
                                       MetaEnv &Env) {
  if (const auto *D = std::get_if<DeclStmt>(&Pattern.V))
    return Enc.IsSDecl(St) && matchVarCond(D->Name, Enc.SDeclVar(St), Env);
  if (Pattern.is<SkipStmt>())
    return Enc.IsSSkip(St);
  if (const auto *A = std::get_if<AssignStmt>(&Pattern.V))
    return Enc.IsSAssign(St) &&
           matchLhsCond(A->Target, Enc.SAssignLhs(St), Env) &&
           matchExprCond(A->Value, Enc.SAssignRhs(St), Env);
  if (const auto *N = std::get_if<NewStmt>(&Pattern.V))
    return Enc.IsSNew(St) && matchVarCond(N->Target, Enc.SNewVar(St), Env);
  if (const auto *CS = std::get_if<CallStmt>(&Pattern.V)) {
    z3::expr Cond = Enc.IsSCall(St) &&
                    matchVarCond(CS->Target, Enc.SCallTgt(St), Env);
    if (!CS->Callee.IsMeta) {
      Cond = Cond && Enc.SCallProc(St) == Enc.concreteProc(CS->Callee.Name);
    } else if (!CS->Callee.isWildcard()) {
      auto It = Env.find(CS->Callee.Name);
      if (It != Env.end())
        Cond = Cond && Enc.SCallProc(St) == It->second;
      else
        Env.emplace(CS->Callee.Name, Enc.SCallProc(St));
    }
    return Cond && matchBaseCond(CS->Arg, Enc.SCallArg(St), Env);
  }
  if (const auto *B = std::get_if<BranchStmt>(&Pattern.V)) {
    z3::expr Cond = Enc.IsSBranch(St) &&
                    matchBaseCond(B->Cond, Enc.SBranchCond(St), Env);
    auto MatchIdx = [&](const Index &P, z3::expr Acc) {
      if (!P.IsMeta)
        return Acc == Enc.ctx().int_val(P.Value);
      if (P.isWildcard())
        return Enc.ctx().bool_val(true);
      auto It = Env.find(P.MetaName);
      if (It != Env.end())
        return Acc == It->second;
      Env.emplace(P.MetaName, Acc);
      return Enc.ctx().bool_val(true);
    };
    return Cond && MatchIdx(B->Then, Enc.SBranchThen(St)) &&
           MatchIdx(B->Else, Enc.SBranchElse(St));
  }
  const auto &R = std::get<ReturnStmt>(Pattern.V);
  return Enc.IsSReturn(St) && matchVarCond(R.Value, Enc.SReturnVar(St), Env);
}

//===----------------------------------------------------------------------===//
// Terms and the computes builtin.
//===----------------------------------------------------------------------===//

z3::expr PatternEncoder::termToZ3(const Term &T, const z3::expr &St,
                                  MetaEnv &Env) {
  if (std::holds_alternative<CurrStmtTerm>(T))
    return St;
  if (const auto *E = std::get_if<Expr>(&T))
    return Enc.buildExpr(*E, Env);
  return Enc.buildStmt(std::get<Stmt>(T), Env);
}

z3::expr PatternEncoder::computesCond(const z3::expr &E,
                                      const z3::expr &CVal) {
  z3::expr B = Enc.EBaseB(E);
  z3::expr ConstCase =
      Enc.IsEBase(E) && Enc.IsBConst(B) && Enc.BConstVal(B) == CVal;

  z3::expr A1 = Enc.EOp1Arg(E);
  z3::expr Op1Case = Enc.IsEOp1(E) && Enc.IsBConst(A1) &&
                     Enc.DefinedOp1(Enc.EOp1Op(E), Enc.BConstVal(A1)) &&
                     Enc.ApplyOp1(Enc.EOp1Op(E), Enc.BConstVal(A1)) == CVal;

  z3::expr A2 = Enc.EOp2A(E);
  z3::expr B2 = Enc.EOp2B(E);
  z3::expr Op2Case =
      Enc.IsEOp2(E) && Enc.IsBConst(A2) && Enc.IsBConst(B2) &&
      Enc.DefinedOp2(Enc.EOp2Op(E), Enc.BConstVal(A2), Enc.BConstVal(B2)) &&
      Enc.ApplyOp2(Enc.EOp2Op(E), Enc.BConstVal(A2), Enc.BConstVal(B2)) ==
          CVal;

  return ConstCase || Op1Case || Op2Case;
}

//===----------------------------------------------------------------------===//
// Formulas.
//===----------------------------------------------------------------------===//

z3::expr PatternEncoder::formula(const Formula &F, const z3::expr &St,
                                 const ZState &Eta, MetaEnv &Env,
                                 std::vector<z3::expr> &Hyps) {
  z3::context &C = Enc.ctx();
  switch (F.K) {
  case Formula::Kind::FK_True:
    return C.bool_val(true);
  case Formula::Kind::FK_False:
    return C.bool_val(false);
  case Formula::Kind::FK_Not:
    return !formula(*F.Kids[0], St, Eta, Env, Hyps);
  case Formula::Kind::FK_And: {
    z3::expr Out = C.bool_val(true);
    for (const FormulaPtr &Kid : F.Kids)
      Out = Out && formula(*Kid, St, Eta, Env, Hyps);
    return Out;
  }
  case Formula::Kind::FK_Or: {
    z3::expr Out = C.bool_val(false);
    for (const FormulaPtr &Kid : F.Kids)
      Out = Out || formula(*Kid, St, Eta, Env, Hyps);
    return Out;
  }
  case Formula::Kind::FK_Label: {
    const std::string &Name = F.LabelName;
    if (Name == "stmt") {
      const auto *Pat = std::get_if<Stmt>(&F.Args[0]);
      assert(Pat && "stmt takes a statement pattern");
      return matchStmtCond(*Pat, St, Env);
    }
    if (Name == "computes") {
      z3::expr E = termToZ3(F.Args[0], St, Env);
      // The result side must be a constant term.
      const auto *CT = std::get_if<Expr>(&F.Args[1]);
      assert(CT && "computes' result must be an expression term");
      z3::expr CExpr = Enc.buildExpr(*CT, Env);
      // Extract the Int: the built expression is EBase(BConst(c)).
      z3::expr CVal = Enc.BConstVal(Enc.EBaseB(CExpr));
      return computesCond(E, CVal);
    }
    if (const LabelDef *Def = Registry.findPredicate(Name)) {
      assert(Def->Params.size() == F.Args.size() && "label arity mismatch");
      MetaEnv Local;
      for (size_t I = 0; I < F.Args.size(); ++I) {
        // Bind the parameter to the *value* of the argument term at the
        // right sort: Vars params to VarS, Consts to Int, Exprs to ExprS.
        const auto &[PName, PKind] = Def->Params[I];
        const auto *AE = std::get_if<Expr>(&F.Args[I]);
        assert(AE && "label arguments are expression terms");
        switch (PKind) {
        case MetaKind::MK_Var: {
          const auto *X = std::get_if<Var>(&AE->V);
          assert(X && "Vars-kind argument must be a variable term");
          Local.emplace(PName, Enc.buildVar(*X, Env));
          break;
        }
        case MetaKind::MK_Const: {
          z3::expr E = Enc.buildExpr(*AE, Env);
          Local.emplace(PName, Enc.BConstVal(Enc.EBaseB(E)));
          break;
        }
        default:
          Local.emplace(PName, Enc.buildExpr(*AE, Env));
          break;
        }
      }
      return formula(*Def->Body, St, Eta, Local, Hyps);
    }
    // Analysis label: an opaque boolean whose presence implies the
    // analysis witness of the pre-state. Resolve the argument values
    // first: the memo key must be the *resolved* terms, because the same
    // pattern spelling (e.g. Y9) denotes different accessor expressions
    // in different case arms.
    std::vector<z3::expr> ArgVals;
    bool Mappable = true;
    for (const Term &T : F.Args) {
      const auto *AE = std::get_if<Expr>(&T);
      const auto *AV = AE ? std::get_if<Var>(&AE->V) : nullptr;
      if (AV)
        ArgVals.push_back(Enc.buildVar(*AV, Env));
      else
        Mappable = false;
    }
    std::string Key = Name;
    for (const z3::expr &V : ArgVals)
      Key += "|" + V.to_string();
    // Memoize per (label, resolved args) so l(X) ∧ ¬l(X) stays false.
    auto It = AnalysisLabelBools.find(Key);
    if (It != AnalysisLabelBools.end())
      return It->second;
    z3::expr LabelBool = Enc.freshBool("lbl!" + Name);
    AnalysisLabelBools.emplace(Key, LabelBool);
    auto AIt = AnalysesByLabel.find(Name);
    if (AIt != AnalysesByLabel.end() && Mappable) {
      const PureAnalysis *A = AIt->second;
      assert(A->LabelArgs.size() == ArgVals.size() &&
             "analysis label arity mismatch");
      // Map the analysis's own pattern variables to the occurrence's
      // argument values (positionally; defined-label args are single
      // pattern variables in this suite).
      MetaEnv WEnv;
      for (size_t I = 0; I < ArgVals.size(); ++I) {
        const auto *Formal = std::get_if<Expr>(&A->LabelArgs[I]);
        const auto *FV = Formal ? std::get_if<Var>(&Formal->V) : nullptr;
        if (FV && FV->IsMeta)
          WEnv.emplace(FV->Name, ArgVals[I]);
        else
          Mappable = false;
      }
      if (Mappable && A->W)
        Hyps.push_back(z3::implies(
            LabelBool, witness(*A->W, &Eta, nullptr, nullptr, WEnv)));
    }
    return LabelBool;
  }
  case Formula::Kind::FK_Eq: {
    z3::expr A = termToZ3(F.LhsT, St, Env);
    z3::expr B = termToZ3(F.RhsT, St, Env);
    if (!z3::eq(A.get_sort(), B.get_sort()))
      return C.bool_val(false);
    return A == B;
  }
  case Formula::Kind::FK_Case: {
    z3::expr Scrut = termToZ3(F.LhsT, St, Env);
    // Build the first-match ite chain from the last arm backwards.
    z3::expr Out = F.ElseBody
                       ? formula(*F.ElseBody, St, Eta, Env, Hyps)
                       : C.bool_val(false);
    for (auto It = F.Arms.rbegin(); It != F.Arms.rend(); ++It) {
      MetaEnv ArmEnv = Env; // arm-local bindings shadow nothing outside
      z3::expr Cond = C.bool_val(false);
      if (const auto *SP = std::get_if<Stmt>(&It->Pattern)) {
        if (z3::eq(Scrut.get_sort(), Enc.StmtS))
          Cond = matchStmtCond(*SP, Scrut, ArmEnv);
      } else if (const auto *EP = std::get_if<Expr>(&It->Pattern)) {
        if (z3::eq(Scrut.get_sort(), Enc.ExprS))
          Cond = matchExprCond(*EP, Scrut, ArmEnv);
      }
      z3::expr Body = formula(*It->Body, St, Eta, ArmEnv, Hyps);
      Out = z3::ite(Cond, Body, Out);
    }
    return Out;
  }
  }
  return C.bool_val(false);
}

//===----------------------------------------------------------------------===//
// Witnesses.
//===----------------------------------------------------------------------===//

z3::expr PatternEncoder::witness(const Witness &W, const ZState *Cur,
                                 const ZState *Old, const ZState *New,
                                 MetaEnv &Env) {
  z3::context &C = Enc.ctx();
  auto SelectState = [&](StateSel S) -> const ZState * {
    switch (S) {
    case StateSel::WS_Cur:
      return Cur;
    case StateSel::WS_Old:
      return Old;
    case StateSel::WS_New:
      return New;
    }
    return nullptr;
  };

  switch (W.K) {
  case Witness::Kind::WK_True:
    return C.bool_val(true);
  case Witness::Kind::WK_Not:
    return !witness(*W.Kids[0], Cur, Old, New, Env);
  case Witness::Kind::WK_And:
    return witness(*W.Kids[0], Cur, Old, New, Env) &&
           witness(*W.Kids[1], Cur, Old, New, Env);
  case Witness::Kind::WK_Or:
    return witness(*W.Kids[0], Cur, Old, New, Env) ||
           witness(*W.Kids[1], Cur, Old, New, Env);
  case Witness::Kind::WK_Eq: {
    const ZState *SA = SelectState(W.LhsT.State);
    const ZState *SB = SelectState(W.RhsT.State);
    assert(SA && SB && "witness state not supplied");
    ZEval A = Enc.evalExpr(*SA, Enc.buildExpr(W.LhsT.E, Env));
    ZEval B = Enc.evalExpr(*SB, Enc.buildExpr(W.RhsT.E, Env));
    return A.Defined && B.Defined && A.Val == B.Val;
  }
  case Witness::Kind::WK_EqUpTo: {
    assert(Old && New && "EqUpTo needs old/new states");
    z3::expr X = Enc.buildVar(W.X, Env);
    z3::expr Loc = z3::select(Old->Env, X);
    // "X is in scope" is part of the invariant: without it the exempted
    // location is arbitrary and the region lemmas (reads of other
    // variables agree) lose the env-injectivity premise.
    return z3::select(Old->Scope, X) && Old->Ix == New->Ix &&
           Old->Env == New->Env && Old->Scope == New->Scope &&
           Old->Alloc == New->Alloc &&
           New->Sto == z3::store(Old->Sto, Loc, z3::select(New->Sto, Loc));
  }
  case Witness::Kind::WK_StateEq: {
    assert(Old && New && "StateEq needs old/new states");
    return Enc.stateEq(*Old, *New);
  }
  case Witness::Kind::WK_NotPointedTo: {
    const ZState *S = SelectState(W.State);
    assert(S && "witness state not supplied");
    z3::expr X = Enc.buildVar(W.X, Env);
    return z3::select(S->Scope, X) &&
           Enc.notPointedToLoc(*S, z3::select(S->Env, X));
  }
  }
  return C.bool_val(false);
}
