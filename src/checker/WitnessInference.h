//===- WitnessInference.h - Inferring witnesses (paper §7) ------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §7 (future work): "We plan to try inferring the witnesses, which
/// are currently provided by the user. It may be possible to use some
/// simple heuristics to guess a witness from the given transformation
/// pattern. As a simple example, in the constant propagation example of
/// section 2, the appropriate witness … is simply the strongest
/// postcondition of the enabling statement Y := C. Many of the other
/// forward optimizations that we have written also have this property."
///
/// Implemented here for forward patterns: find the assignment-shaped
/// stmt() conjunct of ψ1 and propose the strongest-postcondition witness
///
///     η(lhs) = η(rhs)
///
/// (for `Y := C` that is η(Y) = C; for `*P := Y`, η(*P) = η(Y); …). The
/// guess is *verified*, never trusted: callers run the ordinary
/// obligations with it, so a wrong guess only fails the proof (the same
/// guarantee as user-provided witnesses, paper footnote 1).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CHECKER_WITNESSINFERENCE_H
#define COBALT_CHECKER_WITNESSINFERENCE_H

#include "core/Optimization.h"

namespace cobalt {
namespace checker {

/// Proposes a witness for a forward transformation pattern from the
/// strongest postcondition of its enabling statement. Returns nullptr
/// when no heuristic applies (non-forward direction, or ψ1 has no
/// assignment-shaped stmt() conjunct with an expressible postcondition).
WitnessPtr inferForwardWitness(const TransformationPattern &Pat);

/// Convenience: a copy of \p O with its witness replaced by the inferred
/// one (nullopt when inference does not apply).
std::optional<Optimization> withInferredWitness(const Optimization &O);

} // namespace checker
} // namespace cobalt

#endif // COBALT_CHECKER_WITNESSINFERENCE_H
