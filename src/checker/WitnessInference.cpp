//===- WitnessInference.cpp -----------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/WitnessInference.h"

#include "core/Formula.h"

using namespace cobalt;
using namespace cobalt::ir;
using namespace cobalt::checker;

namespace {

/// Finds the first stmt(S) literal in the positive conjunctive spine of
/// ψ (conjuncts only — a disjunction of enablers has no single strongest
/// postcondition).
const Stmt *findStmtConjunct(const Formula &F) {
  switch (F.K) {
  case Formula::Kind::FK_Label:
    if (F.LabelName == "stmt")
      return std::get_if<Stmt>(&F.Args[0]);
    return nullptr;
  case Formula::Kind::FK_And:
    for (const FormulaPtr &Kid : F.Kids)
      if (const Stmt *S = findStmtConjunct(*Kid))
        return S;
    return nullptr;
  default:
    return nullptr;
  }
}

/// The lhs of an assignment as an expression pattern (x or *x), for
/// use inside the witness.
std::optional<Expr> lhsAsExpr(const Lhs &L) {
  if (const auto *X = std::get_if<Var>(&L)) {
    if (X->isWildcard())
      return std::nullopt;
    return Expr(*X);
  }
  const DerefExpr &D = std::get<DerefExpr>(L);
  if (D.Ptr.isWildcard())
    return std::nullopt;
  return Expr(D);
}

/// True when the pattern expression contains wildcards (no canonical
/// postcondition can mention it).
bool mentionsWildcard(const Expr &E) {
  if (const auto *X = std::get_if<Var>(&E.V))
    return X->isWildcard();
  if (const auto *C = std::get_if<ConstVal>(&E.V))
    return C->isWildcard();
  if (const auto *D = std::get_if<DerefExpr>(&E.V))
    return D->Ptr.isWildcard();
  if (const auto *A = std::get_if<AddrOfExpr>(&E.V))
    return A->Target.isWildcard();
  if (const auto *O = std::get_if<OpExpr>(&E.V)) {
    if (O->Op == "_")
      return true;
    for (const BaseExpr &B : O->Args) {
      if (isVar(B) && asVar(B).isWildcard())
        return true;
      if (isConst(B) && asConst(B).isWildcard())
        return true;
    }
    return false;
  }
  return std::get<MetaExpr>(E.V).isWildcard();
}

} // namespace

WitnessPtr checker::inferForwardWitness(const TransformationPattern &Pat) {
  if (Pat.Dir != Direction::D_Forward)
    return nullptr;
  const Stmt *Enabler = findStmtConjunct(*Pat.G.Psi1);
  if (!Enabler)
    return nullptr;
  const auto *Assign = std::get_if<AssignStmt>(&Enabler->V);
  if (!Assign)
    return nullptr;

  auto LhsE = lhsAsExpr(Assign->Target);
  if (!LhsE || mentionsWildcard(*LhsE) || mentionsWildcard(Assign->Value))
    return nullptr;

  // Strongest postcondition of `lhs := rhs` (as far as the witness
  // language expresses it): the lhs cell now denotes the rhs value.
  return wEq(WTerm{StateSel::WS_Cur, *LhsE},
             WTerm{StateSel::WS_Cur, Assign->Value});
}

std::optional<Optimization>
checker::withInferredWitness(const Optimization &O) {
  WitnessPtr W = inferForwardWitness(O.Pat);
  if (!W)
    return std::nullopt;
  Optimization Out = O;
  Out.Pat.W = std::move(W);
  if (validateOptimization(Out))
    return std::nullopt; // e.g. inferred witness names unbound variables
  return Out;
}
