//===- PatternEncoder.h - ψ and witness lowering to Z3 ----------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization-dependent half of the checker: translates guard
/// formulas, label definitions, and witnesses into Z3 terms (the paper's
/// automatically-generated "optimization-dependent axioms", §5.1).
///
/// Key idea: `case` expressions and `stmt(S)` literals become structural
/// conditions over the statement/expression datatypes, with arm-local
/// pattern variables bound to *accessor expressions* of the scrutinee —
/// no existential quantifiers are ever introduced, so formulas stay in
/// the decidable ground fragment (modulo the fixed background axioms).
///
/// Analysis labels (produced by pure analyses, §2.4) are opaque booleans
/// carrying one implication: if the label is present, the analysis's
/// witness holds of the state just before the statement. That is exactly
/// the meaning assigned to labels by §3.2.3, and it is what makes e.g.
/// mayDefPrecise provable: notTainted(Y) ⇒ notPointedTo(Y, η).
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CHECKER_PATTERNENCODER_H
#define COBALT_CHECKER_PATTERNENCODER_H

#include "checker/Encoder.h"

#include <map>
#include <string>
#include <vector>

namespace cobalt {
namespace checker {

class PatternEncoder {
public:
  /// \p AnalysesByLabel maps analysis label names to their defining pure
  /// analyses (for the label-implies-witness hypotheses).
  PatternEncoder(Encoder &Enc, const LabelRegistry &Registry,
                 const std::map<std::string, const PureAnalysis *>
                     &AnalysesByLabel)
      : Enc(Enc), Registry(Registry), AnalysesByLabel(AnalysesByLabel) {}

  /// The condition "statement term \p St matches pattern \p Pattern",
  /// binding fresh named pattern variables in \p Env to accessor
  /// expressions of St. Wildcards constrain nothing.
  z3::expr matchStmtCond(const ir::Stmt &Pattern, const z3::expr &St,
                         MetaEnv &Env);
  z3::expr matchExprCond(const ir::Expr &Pattern, const z3::expr &E,
                         MetaEnv &Env);

  /// Encodes ι ⊨θ ψ for a symbolic statement \p St at pre-state \p Eta.
  /// Hypotheses contributed by analysis labels are appended to \p Hyps.
  z3::expr formula(const Formula &F, const z3::expr &St, const ZState &Eta,
                   MetaEnv &Env, std::vector<z3::expr> &Hyps);

  /// Encodes a witness over the given states (Cur for forward; Old/New
  /// for backward).
  z3::expr witness(const Witness &W, const ZState *Cur, const ZState *Old,
                   const ZState *New, MetaEnv &Env);

private:
  z3::expr matchBaseCond(const ir::BaseExpr &Pattern, const z3::expr &B,
                         MetaEnv &Env);
  z3::expr matchVarCond(const ir::Var &Pattern, const z3::expr &V,
                        MetaEnv &Env);
  z3::expr matchLhsCond(const ir::Lhs &Pattern, const z3::expr &L,
                        MetaEnv &Env);
  z3::expr computesCond(const z3::expr &E, const z3::expr &CVal);
  z3::expr termToZ3(const Term &T, const z3::expr &St, MetaEnv &Env);

  Encoder &Enc;
  const LabelRegistry &Registry;
  const std::map<std::string, const PureAnalysis *> &AnalysesByLabel;
  std::map<std::string, z3::expr> AnalysisLabelBools;
};

} // namespace checker
} // namespace cobalt

#endif // COBALT_CHECKER_PATTERNENCODER_H
