//===- Encoder.h - Z3 encoding of the IL semantics --------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization-independent half of the soundness checker (paper
/// §5.1): a Z3 encoding of the intermediate language and its semantics.
/// The paper used the Simplify prover; Z3 is its direct descendant (see
/// DESIGN.md), and the encoding mirrors the paper's:
///
/// * term constructors for every kind of expression and statement
///   (Z3 algebraic datatypes instead of Simplify's uninterpreted function
///   symbols, which buys us free case analysis and injectivity);
/// * execution states as tuples (ι, ρ, σ, ξ, M) — index, environment
///   (array Var→Loc), scope set (array Var→Bool, making "variables in
///   scope" explicit), store (array Loc→Value), and the bump allocator
///   (an integer; freshness is arithmetic);
/// * evalExpr / evalLExpr denotations with explicit *definedness*
///   (run-time errors are the absence of transitions, §3.1);
/// * step functions per statement kind (stepIndex/stepEnv/stepStore/
///   stepAlloc in the paper's terminology), with the intraprocedural ↪π
///   treatment of calls axiomatized by the conservative call contract:
///   the store after a call preserves every caller location that is not
///   pointed-to before the call (the paper's "primary axiom"), pointers
///   to unreached locations are never fabricated, allocation only grows,
///   and the environment is restored.
///
/// States appearing in obligations are Skolem constants; quantifiers only
/// occur inside well-formedness, the call contract, and notPointedTo.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CHECKER_ENCODER_H
#define COBALT_CHECKER_ENCODER_H

#include "core/Formula.h"
#include "core/Optimization.h"
#include "core/Witness.h"
#include "ir/Ast.h"

#include <z3++.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cobalt {
namespace checker {

/// A symbolic execution state η = (ι, ρ, scope, σ, M).
struct ZState {
  z3::expr Ix;    ///< Int — statement index ι.
  z3::expr Env;   ///< Array(VarS, Int) — ρ.
  z3::expr Scope; ///< Array(VarS, Bool) — "variables in scope".
  z3::expr Sto;   ///< Array(Int, ValueS) — σ.
  z3::expr Alloc; ///< Int — the bump allocator M (next fresh location).
};

/// A value with its definedness condition (partial denotations).
struct ZEval {
  z3::expr Val;
  z3::expr Defined;
};

/// The result of encoding one step η → η' executing a statement: the
/// definedness condition, the post-state (component expressions), and
/// side constraints (the call contract's Skolemized frame axioms).
struct ZStep {
  z3::expr Defined;
  ZState Post;
  std::vector<z3::expr> Constraints;
};

/// Maps pattern-variable names to their Z3 constants (Vars → VarS,
/// Consts → Int, Exprs → ExprS, Procs → ProcS, Indices → Int).
using MetaEnv = std::map<std::string, z3::expr>;

class Encoder {
public:
  explicit Encoder(z3::context &C);

  z3::context &ctx() { return C; }

  //===--------------------------------------------------------------------===//
  // Sorts and constructors (public: obligations and tests inspect them).
  //===--------------------------------------------------------------------===//

  z3::sort VarS;   ///< Uninterpreted sort of variable names.
  z3::sort ProcS;  ///< Uninterpreted sort of procedure names.
  z3::sort OpS;    ///< Uninterpreted sort of operator names.
  z3::sort ValueS; ///< IntV(Int) | LocV(Int).
  z3::sort BaseS;  ///< BVar(VarS) | BConst(Int).
  z3::sort ExprS;  ///< EBase | EDeref | EAddr | EOp1 | EOp2.
  z3::sort LhsS;   ///< LVar | LDeref.
  z3::sort StmtS;  ///< SDecl | SSkip | SAssign | SNew | SCall | SBranch
                   ///< | SReturn.

  // Value.
  z3::func_decl IntV, LocV, IsIntV, IsLocV, IVal, LVal;
  // Base.
  z3::func_decl BVar, BConst, IsBVar, IsBConst, BVarName, BConstVal;
  // Expr.
  z3::func_decl EBase, EDeref, EAddr, EOp1, EOp2;
  z3::func_decl IsEBase, IsEDeref, IsEAddr, IsEOp1, IsEOp2;
  z3::func_decl EBaseB, EDerefVar, EAddrVar;
  z3::func_decl EOp1Op, EOp1Arg, EOp2Op, EOp2A, EOp2B;
  // Lhs.
  z3::func_decl LVarC, LDerefC, IsLVar, IsLDeref, LVarName, LDerefVar;
  // Stmt.
  z3::func_decl SDecl, SSkip, SAssign, SNew, SCall, SBranch, SReturn;
  z3::func_decl IsSDecl, IsSSkip, IsSAssign, IsSNew, IsSCall, IsSBranch,
      IsSReturn;
  z3::func_decl SDeclVar, SAssignLhs, SAssignRhs, SNewVar;
  z3::func_decl SCallTgt, SCallProc, SCallArg;
  z3::func_decl SBranchCond, SBranchThen, SBranchElse, SReturnVar;

  // Operator semantics (uninterpreted, constrained by background axioms
  // for the known operators).
  z3::func_decl ApplyOp1, ApplyOp2, DefinedOp1, DefinedOp2;

  // The post-call store/allocator as *functions* of the pre-state and the
  // call statement. The concrete ↪π is deterministic, so identical
  // pre-states calling the same statement reach identical post-states;
  // modelling the call effect functionally gives the prover that fact by
  // congruence while the conservative contract (asserted per
  // application) keeps everything else unconstrained.
  z3::func_decl CallStoF, CallAllocF;

  //===--------------------------------------------------------------------===//
  // Background.
  //===--------------------------------------------------------------------===//

  /// Asserts the optimization-independent axioms (operator semantics and
  /// distinctness of named operator/variable constants created so far).
  /// Call after building all pattern terms for an obligation.
  void addBackgroundAxioms(z3::solver &S);

  /// Only the quantifier-free distinctness axioms (named operators,
  /// concrete variable/procedure names). Used by the counterexample
  /// search, where the quantified operator semantics would block model
  /// construction; the resulting counterexample contexts are diagnostic
  /// (operator symbols may be under-constrained in them).
  void addDistinctnessAxioms(z3::solver &S);

  /// The OpS constant for a known operator spelling and arity.
  z3::expr opConst(const std::string &Spelling, unsigned Arity);

  /// The VarS constant for a *concrete* program variable name (distinct
  /// from every other concrete name; free pattern variables instead get
  /// fresh unconstrained constants via freshVar()).
  z3::expr concreteVar(const std::string &Name);
  z3::expr concreteProc(const std::string &Name);

  z3::expr freshVar(const std::string &Hint);
  z3::expr freshExpr(const std::string &Hint);
  z3::expr freshProc(const std::string &Hint);
  z3::expr freshInt(const std::string &Hint);
  z3::expr freshStmt(const std::string &Hint);
  z3::expr freshBool(const std::string &Hint);
  z3::expr freshBase(const std::string &Hint);
  z3::expr freshLhs(const std::string &Hint);

  //===--------------------------------------------------------------------===//
  // States and semantics.
  //===--------------------------------------------------------------------===//

  /// A fresh symbolic state.
  ZState freshState(const std::string &Prefix);

  /// Domain-closure assumptions for counterexample search: every value
  /// of the uninterpreted sorts equals one of the constants this encoder
  /// created (plus one spare). A model of the obligation's negation under
  /// these extra constraints is still a genuine counterexample; they only
  /// help Z3 finish model building in the presence of the quantified
  /// well-formedness hypotheses.
  std::vector<z3::expr> domainClosure();

  /// Well-formedness of a state: in-scope variables map to distinct
  /// allocated locations; stored location values are allocated.
  z3::expr wf(const ZState &S);

  /// Quantifier-free well-formedness for counterexample search: the same
  /// conditions instantiated over the named variable constants and the
  /// bounded location range used by domainClosure(). Only meaningful
  /// together with domainClosure(); under those constraints it is
  /// equivalent to wf(), so models remain genuine counterexamples.
  z3::expr wfBounded(const ZState &S);

  /// notPointedTo(l, η): no allocated cell of η holds LocV(l).
  z3::expr notPointedToLoc(const ZState &S, const z3::expr &Loc);

  /// Denotations. \p B / \p E / \p L are ExprS/BaseS/LhsS-sorted terms
  /// (possibly symbolic).
  ZEval evalBase(const ZState &S, const z3::expr &B);
  ZEval evalExpr(const ZState &S, const z3::expr &E);
  ZEval evalLhsLoc(const ZState &S, const z3::expr &L);

  /// Encodes one intraprocedural step executing \p St from \p S.
  /// Returns are not intraprocedural transitions (Defined is false for
  /// them); calls produce Skolemized post-stores constrained by the
  /// conservative call contract. \p Prefix names the Skolem constants.
  ZStep encodeStep(const ZState &S, const z3::expr &St,
                   const std::string &Prefix);

  /// Component-wise state equality.
  z3::expr stateEq(const ZState &A, const ZState &B);

  //===--------------------------------------------------------------------===//
  // Pattern terms → Z3 terms.
  //===--------------------------------------------------------------------===//

  /// Build Z3 terms from (extended-) IL fragments. Named pattern
  /// variables resolve through \p Env (created on first use with the
  /// appropriate sort); wildcards become fresh unconstrained constants.
  z3::expr buildVar(const ir::Var &X, MetaEnv &Env);
  z3::expr buildBase(const ir::BaseExpr &B, MetaEnv &Env);
  z3::expr buildExpr(const ir::Expr &E, MetaEnv &Env);
  z3::expr buildLhs(const ir::Lhs &L, MetaEnv &Env);
  z3::expr buildStmt(const ir::Stmt &S, MetaEnv &Env);
  z3::expr buildIndex(const ir::Index &I, MetaEnv &Env);

private:
  void buildSorts();

  z3::context &C;
  std::map<std::string, z3::expr> OpConsts;
  std::map<std::string, z3::expr> ConcreteVars;
  std::map<std::string, z3::expr> ConcreteProcs;
  std::vector<z3::expr> AllVarConsts;  ///< Every VarS constant created.
  std::vector<z3::expr> AllProcConsts; ///< Every ProcS constant created.
  std::vector<z3::expr> AllAllocs;     ///< Allocator constants of states.
  unsigned FreshCounter = 0;

  // Declared lazily in buildSorts; stored here so member func_decls can
  // be value-initialized in the constructor initializer list.
};

} // namespace checker
} // namespace cobalt

#endif // COBALT_CHECKER_ENCODER_H
