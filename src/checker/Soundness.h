//===- Soundness.h - Automatic soundness proofs of optimizations -*- C++ -*-=//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automatic proof strategy of paper §4: per-optimization,
/// non-inductive proof obligations discharged by an automatic theorem
/// prover. The induction over execution traces lives in the hand-proven
/// meta-theorems (paper Theorems 1 and 2); the prover only sees facts
/// about individual states.
///
/// Forward patterns (§4.2):
///   F1  the enabling statement establishes the witness;
///   F2  innocuous statements preserve the witness;
///   F3  under the witness, s' steps exactly like s (including that s'
///       cannot get stuck when s does not — footnote 6's progress side).
///
/// Backward patterns (§4.3):
///   B1  executing s / s' from a common state establishes the witness;
///   B2  innocuous statements preserve the witness, and the transformed
///       trace can step whenever the original does;
///   B3  the enabling statement makes the two traces identical again;
///   B4  s' cannot get stuck when s does not (progress; for statement
///       *insertions*, s = skip, replaced by the pair I1/I2 that push
///       evaluability backwards through the witnessing region — see the
///       meta-theorem note in the implementation);
///   B5  at a return enabler the traces agree on the return value and on
///       every caller-observable store cell (this catches the escaped-
///       local bug in the naive dead-assignment elimination).
///
/// Pure analyses (§2.4/§4.2) need F1 and F2 with the defined label's
/// witness.
///
/// Each obligation is checked by asserting its hypotheses plus the
/// negated conclusion and expecting unsat; sat/unknown yields a
/// counterexample context (§7's suggestion) extracted from the model.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CHECKER_SOUNDNESS_H
#define COBALT_CHECKER_SOUNDNESS_H

#include "core/Formula.h"
#include "core/Optimization.h"

#include <map>
#include <string>
#include <vector>

namespace cobalt {
namespace checker {

/// Outcome of one obligation.
struct ObligationResult {
  enum class Status { OS_Proven, OS_Failed, OS_Unknown };
  std::string Name;       ///< "F1", "B3", ...
  Status St;
  double Seconds = 0.0;
  std::string Counterexample; ///< Model summary when not proven.

  bool proven() const { return St == Status::OS_Proven; }
};

/// Outcome of checking one optimization or analysis.
struct CheckReport {
  std::string Name;
  bool Sound = false; ///< All obligations proven.
  std::vector<ObligationResult> Obligations;
  double TotalSeconds = 0.0;
  /// Analysis labels this result relies on; the overall guarantee only
  /// holds if the defining analyses are themselves proven sound.
  std::vector<std::string> AssumedAnalyses;

  std::string str() const;
};

/// Checks optimizations and pure analyses against the IL semantics.
/// Stateless between calls except for configuration; construct once and
/// reuse (each obligation runs in a fresh Z3 context).
class SoundnessChecker {
public:
  /// \p Registry supplies user label definitions; \p Analyses supplies
  /// the witnesses of analysis labels (§3.2.3 label semantics).
  SoundnessChecker(const LabelRegistry &Registry,
                   std::vector<PureAnalysis> Analyses = {});

  /// Per-obligation Z3 timeout (milliseconds). Default 30000.
  void setTimeoutMs(unsigned Millis) { TimeoutMs = Millis; }

  CheckReport checkOptimization(const Optimization &O);
  CheckReport checkAnalysis(const PureAnalysis &A);

private:
  const LabelRegistry &Registry;
  std::vector<PureAnalysis> Analyses;
  unsigned TimeoutMs = 30000;
};

} // namespace checker
} // namespace cobalt

#endif // COBALT_CHECKER_SOUNDNESS_H
