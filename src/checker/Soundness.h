//===- Soundness.h - Automatic soundness proofs of optimizations -*- C++ -*-=//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automatic proof strategy of paper §4: per-optimization,
/// non-inductive proof obligations discharged by an automatic theorem
/// prover. The induction over execution traces lives in the hand-proven
/// meta-theorems (paper Theorems 1 and 2); the prover only sees facts
/// about individual states.
///
/// Forward patterns (§4.2):
///   F1  the enabling statement establishes the witness;
///   F2  innocuous statements preserve the witness;
///   F3  under the witness, s' steps exactly like s (including that s'
///       cannot get stuck when s does not — footnote 6's progress side).
///
/// Backward patterns (§4.3):
///   B1  executing s / s' from a common state establishes the witness;
///   B2  innocuous statements preserve the witness, and the transformed
///       trace can step whenever the original does;
///   B3  the enabling statement makes the two traces identical again;
///   B4  s' cannot get stuck when s does not (progress; for statement
///       *insertions*, s = skip, replaced by the pair I1/I2 that push
///       evaluability backwards through the witnessing region — see the
///       meta-theorem note in the implementation);
///   B5  at a return enabler the traces agree on the return value and on
///       every caller-observable store cell (this catches the escaped-
///       local bug in the naive dead-assignment elimination).
///
/// Pure analyses (§2.4/§4.2) need F1 and F2 with the defined label's
/// witness.
///
/// Each obligation is checked by asserting its hypotheses plus the
/// negated conclusion and expecting unsat; sat/unknown yields a
/// counterexample context (§7's suggestion) extracted from the model.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_CHECKER_SOUNDNESS_H
#define COBALT_CHECKER_SOUNDNESS_H

#include "core/Formula.h"
#include "core/Optimization.h"
#include "support/Errors.h"
#include "support/Expected.h"
#include "support/PersistentCache.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cobalt {

namespace support {
class ThreadPool;
}

namespace checker {

struct ObligationSet; ///< checker/Obligations.h — external obligations.

/// Outcome of one obligation. Three-valued: *proven* (unsat), *failed*
/// (a genuine counterexample model was found — the definition is
/// unsound), or *unknown* (the prover gave up; the definition is merely
/// unproven). Failed and unknown are distinct outcomes with distinct
/// payloads: only a failed obligation carries a counterexample, and only
/// an unknown one carries an error callers can dispatch on.
struct ObligationResult {
  enum class Status { OS_Proven, OS_Failed, OS_Unknown };
  std::string Name; ///< "F1", "B3", ...
  Status St;
  /// Why the prover gave up; failed() exactly when St == OS_Unknown.
  /// Kind is EK_ProverTimeout / EK_ProverUnknown / EK_ProverResourceOut;
  /// Message is the solver's reason_unknown. (The unified support::Error
  /// carrier — PassReport and the parsers use the same shape.)
  support::Error Err;
  double Seconds = 0.0;
  unsigned Attempts = 0; ///< Solver attempts made (retry escalation).
  /// Z3 "rlimit count" consumed across all attempts — the prover's
  /// deterministic spend measure (wall time carries scheduler noise,
  /// rlimit does not). 0 when the solver never ran or Z3 reports none.
  uint64_t RlimitSpent = 0;
  /// Model summary; nonempty only when St == OS_Failed.
  std::string Counterexample;

  bool proven() const { return St == Status::OS_Proven; }
  bool unknown() const { return St == Status::OS_Unknown; }
};

/// Outcome of checking one optimization or analysis.
struct CheckReport {
  /// V_Sound: every obligation proven. V_Unsound: at least one genuine
  /// counterexample. V_Unproven: no counterexample, but some obligation
  /// could not be discharged (prover timeout/unknown/resource-out) — the
  /// definition must not be applied, yet nothing is known to be wrong
  /// with it.
  enum class Verdict { V_Sound, V_Unsound, V_Unproven };

  std::string Name;
  Verdict V = Verdict::V_Unproven;
  bool Sound = false; ///< Convenience: V == V_Sound.
  /// First infrastructure failure among the obligations (EK_None when
  /// every obligation was decided). A report can be V_Unsound *and*
  /// degraded when some obligations failed and others timed out.
  support::ErrorKind Degradation = support::ErrorKind::EK_None;
  bool CacheHit = false; ///< Served from the verdict cache.
  std::vector<ObligationResult> Obligations;
  double TotalSeconds = 0.0;
  /// Analysis labels this result relies on; the overall guarantee only
  /// holds if the defining analyses are themselves proven sound.
  std::vector<std::string> AssumedAnalyses;

  bool degraded() const {
    return Degradation != support::ErrorKind::EK_None;
  }
  bool unsound() const { return V == Verdict::V_Unsound; }

  std::string str() const;
};

/// Where proof obligations are discharged (DESIGN.md §12).
enum class WorkerIsolation {
  /// Z3 runs on the checker's own threads. Fastest; a prover segfault or
  /// runaway allocation takes the whole pipeline with it.
  WI_InProcess,
  /// Z3 runs in forked worker subprocesses supervised by a watchdog
  /// (checker::ProverWorkerPool): crashes, hangs, and memory blowups
  /// cost one expendable child, and the run always completes.
  WI_Subprocess,
};

/// What becomes of an obligation whose workers keep dying on it.
enum class DegradedMode {
  /// Report it unknown(EK_WorkerCrash): the definition degrades to an
  /// Unproven verdict (never cached), the run completes, and cobaltc
  /// exits with the containment-degraded code.
  DM_Quarantine,
  /// Last resort: rerun the obligation in-process, trading isolation for
  /// an answer. A *genuine* prover crash then takes the pipeline down —
  /// only sensible when faults are known to be environmental.
  DM_InProcess,
};

/// Resource policy for discharging obligations. Attempts escalate: the
/// first runs at InitialTimeoutMs, each retry multiplies the timeout by
/// EscalationFactor, and the final attempt runs at the full TimeoutMs.
/// An optional total wall-clock budget bounds one whole
/// checkOptimization/checkAnalysis call; obligations past the budget are
/// reported unknown(ProverTimeout) without invoking the solver.
struct ProverPolicy {
  unsigned TimeoutMs = 30000;       ///< Final-attempt (full) timeout.
  unsigned InitialTimeoutMs = 2000; ///< First-attempt timeout.
  unsigned EscalationFactor = 5;    ///< Timeout multiplier per retry.
  unsigned Retries = 2;             ///< Extra attempts after the first.
  uint64_t BudgetMs = 0;            ///< Per-check wall budget; 0 = none.
  unsigned MaxMemoryMb = 0;         ///< Z3 max_memory cap; 0 = default.
  uint64_t RLimit = 0;              ///< Z3 rlimit cap; 0 = unlimited.
  bool CacheVerdicts = true;        ///< Fingerprint-keyed verdict cache.

  /// \name Worker isolation (meaningful under WI_Subprocess).
  /// @{
  WorkerIsolation Isolation = WorkerIsolation::WI_InProcess;
  DegradedMode Degraded = DegradedMode::DM_Quarantine;
  /// Watchdog wall budget per obligation dispatch (ms); 0 derives a
  /// bound from the solver timeouts (2*TimeoutMs + slack).
  unsigned WorkerWallMs = 0;
  /// Watchdog rss-growth budget per obligation dispatch (MB);
  /// 0 = unwatched.
  unsigned WorkerRssMb = 0;
  /// Fresh workers tried per obligation before it is quarantined.
  unsigned WorkerRestarts = 2;
  /// @}
};

/// Checks optimizations and pure analyses against the IL semantics.
/// Construct once and reuse (each obligation runs in a fresh Z3 context,
/// which is also what makes obligations independently schedulable).
///
/// ## Caching
/// Holds a verdict cache keyed by a structural fingerprint of the
/// definition plus the label registry: re-checking an unchanged
/// optimization is free. Only definitive verdicts (sound/unsound) are
/// cached — an unproven verdict reflects transient resource limits and
/// is always recomputed. With setCacheDir() the cache additionally
/// persists across processes (write-then-rename entries; see
/// support::PersistentCache), so repeated `cobaltc check` runs are
/// near-instant.
///
/// ## Parallelism
/// checkSuite() fans the obligations of *all* definitions into a
/// ThreadPool as independent jobs and reassembles reports in input
/// order. Reports are bit-identical to a sequential run: obligations are
/// deterministic Z3 queries, collection order is by (definition,
/// obligation) index, and fault-injection decisions are keyed on stable
/// obligation fingerprints rather than arrival order.
class SoundnessChecker {
public:
  /// \p Registry supplies user label definitions; \p Analyses supplies
  /// the witnesses of analysis labels (§3.2.3 label semantics).
  SoundnessChecker(const LabelRegistry &Registry,
                   std::vector<PureAnalysis> Analyses = {});

  /// Full-budget Z3 timeout (milliseconds). Default 30000. Retained for
  /// existing callers; equivalent to editing policy().TimeoutMs.
  void setTimeoutMs(unsigned Millis) { Policy.TimeoutMs = Millis; }

  void setPolicy(const ProverPolicy &P) { Policy = P; }
  const ProverPolicy &policy() const { return Policy; }

  /// Obligations run on \p Pool (nullptr = sequential on the calling
  /// thread). Non-owning; the pool must outlive the checker's checks.
  void setThreadPool(support::ThreadPool *Pool) { this->Pool = Pool; }

  /// Enables the persistent on-disk verdict cache under \p Dir (created
  /// if absent). Returns false and stays memory-only when the directory
  /// is unusable. Entries are invalidated structurally: any edit to a
  /// rule, its labels, or the analyses it can see changes the
  /// fingerprint, so stale verdicts are unreachable rather than deleted.
  bool setCacheDir(const std::string &Dir);

  /// Points the checker at an externally owned verdict store (typically a
  /// CobaltService's two-tier cache) instead of a private one: every
  /// per-request checker sharing the store observes every other request's
  /// verdicts. Passing nullptr reverts to a private, unopened cache.
  void setSharedCache(std::shared_ptr<support::PersistentCache> Cache);

  /// Salt XOR'd into every obligation's fault-injection key. Defaults to
  /// 0 (keys depend only on the obligation's structural fingerprint —
  /// reproducible across runs). A service can give each request a
  /// distinct salt so injected faults land on *that* request's
  /// obligations without perturbing its neighbours.
  void setFaultKeySalt(uint64_t Salt) { FaultKeySalt = Salt; }

  /// Drops the in-memory verdict cache (the on-disk cache, if any, is
  /// left intact — it is invalidated by fingerprint, not by lifetime).
  void clearCache();

  CheckReport checkOptimization(const Optimization &O);
  CheckReport checkAnalysis(const PureAnalysis &A);

  /// Discharges a caller-assembled obligation bundle (checker/Obligations.h)
  /// through the same machinery as rule obligations: thread-pool fan-out,
  /// retry escalation, wall budgets, crash containment, trace spans, and —
  /// when the set is marked cacheable — the fingerprint-keyed verdict
  /// cache. The translation validator's per-pair simulation obligations
  /// enter the prover here.
  CheckReport checkObligationSet(const ObligationSet &Set);

  /// Batch form: all sets' obligations fan out together (one slow pair
  /// does not serialize the pairs behind it). Reports in input order,
  /// byte-identical to sequential checkObligationSet calls.
  std::vector<CheckReport>
  checkObligationSets(const std::vector<ObligationSet> &Sets);

  /// Checks every definition, fanning all obligations of all definitions
  /// into the thread pool at once (maximal overlap: one slow obligation
  /// does not serialize the definitions behind it). Returns reports in
  /// input order, analyses first — byte-identical to calling
  /// checkAnalysis/checkOptimization in that order sequentially.
  std::vector<CheckReport>
  checkSuite(const std::vector<PureAnalysis> &SuiteAnalyses,
             const std::vector<Optimization> &SuiteOptimizations);

  /// Cache observability (in-memory + persistent combined lookups).
  unsigned cacheHits() const { return CacheHits; }
  const support::PersistentCache &diskCache() const { return *Disk; }

  /// Structural fingerprints of definitions — the verdict-cache key and
  /// the service's obligation-dedup key (two requests registering
  /// structurally identical definitions collide here by design).
  uint64_t fingerprintOptimization(const Optimization &O) const;
  uint64_t fingerprintAnalysis(const PureAnalysis &A) const;

private:
  struct ObligationTask; ///< One independent prover job (internal).
  struct PreparedCheck;  ///< One definition's tasks + report skeleton.

  bool cacheLookup(uint64_t Key, CheckReport &Out);
  void cacheStore(uint64_t Key, const CheckReport &R);

  PreparedCheck prepareOptimization(const Optimization &O);
  PreparedCheck prepareAnalysis(const PureAnalysis &A);
  PreparedCheck prepareObligationSet(const ObligationSet &Set);
  std::vector<CheckReport> runPrepared(std::vector<PreparedCheck> Checks);

  const LabelRegistry &Registry;
  std::vector<PureAnalysis> Analyses;
  ProverPolicy Policy;
  support::ThreadPool *Pool = nullptr;
  std::mutex CacheMutex; ///< Guards Cache + CacheHits.
  std::map<uint64_t, CheckReport> Cache;
  /// Never null: a private unopened cache by default, or the service's
  /// shared store after setSharedCache().
  std::shared_ptr<support::PersistentCache> Disk;
  unsigned CacheHits = 0;
  uint64_t FaultKeySalt = 0;
};

/// Serialization of cached verdicts (exposed for the cache tests; the
/// format is versioned via PersistentCache entry names).
std::string serializeCheckReport(const CheckReport &R);
std::optional<CheckReport> deserializeCheckReport(const std::string &Text);

/// Serialization of one obligation result — the worker pool's response
/// frame format (exposed for the robustness tests). Tolerates no unknown
/// fields: a frame that does not round-trip is treated as a worker crash.
std::string serializeObligationResult(const ObligationResult &R);
std::optional<ObligationResult>
deserializeObligationResult(const std::string &Text);

} // namespace checker
} // namespace cobalt

#endif // COBALT_CHECKER_SOUNDNESS_H
