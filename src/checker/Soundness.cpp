//===- Soundness.cpp ------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"

#include "checker/Encoder.h"
#include "checker/PatternEncoder.h"

#include <chrono>
#include <functional>
#include <sstream>

using namespace cobalt;
using namespace cobalt::checker;
using namespace cobalt::ir;

std::string CheckReport::str() const {
  std::ostringstream Out;
  Out << Name << ": " << (Sound ? "SOUND" : "NOT PROVEN") << " (";
  for (size_t I = 0; I < Obligations.size(); ++I) {
    if (I)
      Out << ", ";
    const ObligationResult &R = Obligations[I];
    Out << R.Name << "="
        << (R.St == ObligationResult::Status::OS_Proven
                ? "ok"
                : (R.St == ObligationResult::Status::OS_Failed ? "FAIL"
                                                               : "UNKNOWN"));
  }
  Out << ")";
  if (!AssumedAnalyses.empty()) {
    Out << " assuming sound:";
    for (const std::string &A : AssumedAnalyses)
      Out << " " << A;
  }
  return Out.str();
}

namespace {

/// One obligation under construction: a fresh Z3 context + encoders +
/// collected hypotheses.
struct ObligationBuilder {
  z3::context C;
  Encoder Enc;
  PatternEncoder PE;
  MetaEnv Env;
  std::vector<z3::expr> Hyps;
  std::vector<ZState> WfStates;

  ObligationBuilder(const LabelRegistry &Registry,
                    const std::map<std::string, const PureAnalysis *>
                        &AnalysesByLabel)
      : Enc(C), PE(Enc, Registry, AnalysesByLabel) {}

  void hyp(const z3::expr &E) { Hyps.push_back(E); }

  /// Registers a well-formedness hypothesis; materialized per solver
  /// mode (quantified for proofs, bounded for counterexample search).
  void wfHyp(const ZState &S) { WfStates.push_back(S); }
  void hypAll(const std::vector<z3::expr> &Es) {
    for (const z3::expr &E : Es)
      Hyps.push_back(E);
  }

  /// Asserts a step's equations: binds the (symbolic) post state to a
  /// named fresh state so models are readable, and keeps the contract
  /// constraints.
  ZState stepHyp(const ZState &Pre, const z3::expr &St,
                 const std::string &Prefix) {
    ZStep Step = Enc.encodeStep(Pre, St, Prefix);
    hyp(Step.Defined);
    hypAll(Step.Constraints);
    ZState Post = Enc.freshState(Prefix + "post");
    hyp(Post.Ix == Step.Post.Ix);
    hyp(Post.Env == Step.Post.Env);
    hyp(Post.Scope == Step.Post.Scope);
    hyp(Post.Sto == Step.Post.Sto);
    hyp(Post.Alloc == Step.Post.Alloc);
    return Post;
  }

  /// Discharges hypotheses ⊢ goal. Unsat of hypotheses ∧ ¬goal proves
  /// the obligation. On unknown, a second *counterexample search* pass
  /// closes the uninterpreted domains over the finitely many named
  /// constants — any model found under the extra constraints is still a
  /// genuine counterexample (we only shrank the candidate space), and the
  /// closure is what lets Z3's model builder get past the quantified
  /// well-formedness hypotheses.
  ObligationResult check(const std::string &Name, const z3::expr &Goal,
                         unsigned TimeoutMs) {
    ObligationResult R;
    R.Name = Name;
    auto Start = std::chrono::steady_clock::now();
    z3::check_result CR = runSolver(Goal, TimeoutMs, /*CexMode=*/false, R);
    if (CR == z3::unknown)
      CR = runSolver(Goal, TimeoutMs, /*CexMode=*/true, R);
    auto End = std::chrono::steady_clock::now();
    R.Seconds = std::chrono::duration<double>(End - Start).count();

    if (CR == z3::unsat)
      R.St = ObligationResult::Status::OS_Proven;
    else if (CR == z3::sat)
      R.St = ObligationResult::Status::OS_Failed;
    else {
      R.St = ObligationResult::Status::OS_Unknown;
      R.Counterexample = "solver returned unknown (timeout?)";
    }
    return R;
  }

private:
  z3::check_result runSolver(const z3::expr &Goal, unsigned TimeoutMs,
                             bool CexMode, ObligationResult &R) {
    z3::solver S(C);
    z3::params P(C);
    P.set("timeout", TimeoutMs);
    S.set(P);
    for (const z3::expr &H : Hyps)
      S.add(H);
    for (const ZState &St : WfStates)
      S.add(CexMode ? Enc.wfBounded(St) : Enc.wf(St));
    S.add(!Goal);
    if (CexMode) {
      // Counterexample search: quantifier-free hypotheses only. The
      // quantified operator semantics would block model construction;
      // models may therefore under-constrain operator symbols, which is
      // fine for a *diagnostic* counterexample context (rejection was
      // already decided by the proof pass coming back non-unsat).
      Enc.addDistinctnessAxioms(S);
      for (const z3::expr &E : Enc.domainClosure())
        S.add(E);
    } else {
      Enc.addBackgroundAxioms(S);
    }

    z3::check_result CR = S.check();
    // A closed-domain unsat does not prove the obligation (the closure
    // removed models); only report sat results from this mode.
    if (CexMode && CR == z3::unsat)
      return z3::unknown;
    if (CR == z3::sat) {
      // The counterexample context (§7): a state of the world violating
      // the obligation. Print pattern variables, statement parts, and
      // state components; skip solver-internal constants.
      std::ostringstream Out;
      z3::model M = S.get_model();
      unsigned Printed = 0;
      for (unsigned I = 0; I < M.num_consts() && Printed < 16; ++I) {
        z3::func_decl D = M.get_const_decl(I);
        std::string Name = D.name().str();
        if (Name.rfind("op!", 0) == 0 || Name.rfind("dc", 0) == 0 ||
            Name.rfind("lbl!", 0) == 0 || Name.rfind("wild", 0) == 0)
          continue;
        Out << Name << " = " << M.get_const_interp(D).to_string() << "; ";
        ++Printed;
      }
      R.Counterexample = Out.str();
    }
    return CR;
  }
};

/// Progress of a statement independent of its index: "the statement can
/// execute from this state".
z3::expr stepDefinedOnly(Encoder &Enc, const ZState &S, const z3::expr &St,
                         const std::string &Prefix) {
  return Enc.encodeStep(S, St, Prefix).Defined;
}

/// The statement-kind case split. Obligations over an arbitrary region
/// statement are checked once per kind with a statement of that shape
/// (fresh fields). This mirrors how the paper's hand proofs proceed, lets
/// Z3 discharge each case without a top-level datatype split, and makes
/// failures self-localizing ("F2[assign] failed").
const char *StmtKindTags[] = {"decl", "skip",   "assign", "new",
                              "call", "branch", "return"};

z3::expr makeStmtOfKind(Encoder &Enc, const std::string &Tag) {
  if (Tag == "decl")
    return Enc.SDecl(Enc.freshVar("kd"));
  if (Tag == "skip")
    return Enc.SSkip();
  if (Tag == "assign")
    return Enc.SAssign(Enc.freshLhs("kl"), Enc.freshExpr("kr"));
  if (Tag == "new")
    return Enc.SNew(Enc.freshVar("kn"));
  if (Tag == "call")
    return Enc.SCall(Enc.freshVar("kt"), Enc.freshProc("kp"),
                     Enc.freshBase("ka"));
  if (Tag == "branch")
    return Enc.SBranch(Enc.freshBase("kb"), Enc.freshInt("ki"),
                       Enc.freshInt("kj"));
  return Enc.SReturn(Enc.freshVar("kv"));
}

} // namespace

SoundnessChecker::SoundnessChecker(const LabelRegistry &Registry,
                                   std::vector<PureAnalysis> Analyses)
    : Registry(Registry), Analyses(std::move(Analyses)) {}

//===----------------------------------------------------------------------===//
// Optimization obligations.
//===----------------------------------------------------------------------===//

CheckReport SoundnessChecker::checkOptimization(const Optimization &O) {
  CheckReport Report;
  Report.Name = O.Name;

  std::map<std::string, const PureAnalysis *> ByLabel;
  for (const PureAnalysis &A : Analyses)
    ByLabel[A.LabelName] = &A;

  // Record the analysis labels the guard mentions: the soundness
  // guarantee is conditional on those analyses (checked separately).
  {
    std::vector<std::pair<std::string, MetaKind>> Ignore;
    auto Scan = [&](const FormulaPtr &F, auto &&ScanRef) -> void {
      if (!F)
        return;
      if (F->K == Formula::Kind::FK_Label &&
          Registry.isAnalysisLabel(F->LabelName)) {
        auto It = ByLabel.find(F->LabelName);
        std::string Dep = It != ByLabel.end() ? It->second->Name
                                              : F->LabelName + " (unknown)";
        if (std::find(Report.AssumedAnalyses.begin(),
                      Report.AssumedAnalyses.end(),
                      Dep) == Report.AssumedAnalyses.end())
          Report.AssumedAnalyses.push_back(Dep);
      }
      for (const FormulaPtr &Kid : F->Kids)
        ScanRef(Kid, ScanRef);
      for (const CaseArm &Arm : F->Arms)
        ScanRef(Arm.Body, ScanRef);
      if (F->ElseBody)
        ScanRef(F->ElseBody, ScanRef);
      // Recurse through predicate-label bodies for indirect uses.
      if (F->K == Formula::Kind::FK_Label)
        if (const LabelDef *Def = Registry.findPredicate(F->LabelName))
          ScanRef(Def->Body, ScanRef);
    };
    Scan(O.Pat.G.Psi1, Scan);
    Scan(O.Pat.G.Psi2, Scan);
    (void)Ignore;
  }

  const TransformationPattern &Pat = O.Pat;
  bool Forward = Pat.Dir == Direction::D_Forward;
  bool Insertion = Pat.From.is<SkipStmt>() && !Pat.To.is<SkipStmt>();

  auto RunObligation =
      [&](const std::string &Name,
          const std::function<z3::expr(ObligationBuilder &)> &Build) {
        ObligationBuilder B(Registry, ByLabel);
        z3::expr Goal = Build(B);
        Report.Obligations.push_back(B.check(Name, Goal, TimeoutMs));
        Report.TotalSeconds += Report.Obligations.back().Seconds;
      };

  // Obligations quantifying over an arbitrary region statement run once
  // per statement kind (see makeStmtOfKind).
  auto RunSplitObligation =
      [&](const std::string &Name,
          const std::function<z3::expr(ObligationBuilder &,
                                       const z3::expr &)> &Build) {
        for (const char *Tag : StmtKindTags) {
          ObligationBuilder B(Registry, ByLabel);
          z3::expr St = makeStmtOfKind(B.Enc, Tag);
          z3::expr Goal = Build(B, St);
          Report.Obligations.push_back(
              B.check(Name + "[" + Tag + "]", Goal, TimeoutMs));
          Report.TotalSeconds += Report.Obligations.back().Seconds;
        }
      };

  if (Forward) {
    // F1: the enabling statement establishes the witness.
    RunSplitObligation("F1", [&](ObligationBuilder &B, const z3::expr &St) {
      ZState Eta = B.Enc.freshState("eta");
      B.wfHyp(Eta);
      B.hyp(B.PE.formula(*Pat.G.Psi1, St, Eta, B.Env, B.Hyps));
      ZState Post = B.stepHyp(Eta, St, "p1");
      B.wfHyp(Post);
      return B.PE.witness(*Pat.W, &Post, nullptr, nullptr, B.Env);
    });

    // F2: innocuous statements preserve the witness.
    RunSplitObligation("F2", [&](ObligationBuilder &B, const z3::expr &St) {
      ZState Eta = B.Enc.freshState("eta");
      B.wfHyp(Eta);
      B.hyp(B.PE.witness(*Pat.W, &Eta, nullptr, nullptr, B.Env));
      B.hyp(B.PE.formula(*Pat.G.Psi2, St, Eta, B.Env, B.Hyps));
      ZState Post = B.stepHyp(Eta, St, "p2");
      B.wfHyp(Post);
      return B.PE.witness(*Pat.W, &Post, nullptr, nullptr, B.Env);
    });

    // F3: under the witness, s' steps exactly like s (and cannot be
    // stuck when s is not — the footnote-6 progress side).
    RunObligation("F3", [&](ObligationBuilder &B) {
      ZState Eta = B.Enc.freshState("eta");
      z3::expr StS = B.Enc.buildStmt(Pat.From, B.Env);
      z3::expr StT = B.Enc.buildStmt(Pat.To, B.Env);
      B.wfHyp(Eta);
      B.hyp(B.PE.witness(*Pat.W, &Eta, nullptr, nullptr, B.Env));
      ZState Post = B.stepHyp(Eta, StS, "ps");
      ZStep StepT = B.Enc.encodeStep(Eta, StT, "pt");
      B.hypAll(StepT.Constraints);
      return StepT.Defined && B.Enc.stateEq(StepT.Post, Post);
    });
  } else {
    // B1: executing s and s' from a common state establishes the witness.
    RunObligation("B1", [&](ObligationBuilder &B) {
      ZState Eta = B.Enc.freshState("eta");
      z3::expr StS = B.Enc.buildStmt(Pat.From, B.Env);
      z3::expr StT = B.Enc.buildStmt(Pat.To, B.Env);
      B.wfHyp(Eta);
      ZState Old = B.stepHyp(Eta, StS, "old");
      ZState New = B.stepHyp(Eta, StT, "new");
      return B.PE.witness(*Pat.W, nullptr, &Old, &New, B.Env);
    });

    // B2: innocuous statements preserve the witness, and the transformed
    // trace can always step along (progress of the simulation).
    RunSplitObligation("B2", [&](ObligationBuilder &B, const z3::expr &St) {
      ZState Old = B.Enc.freshState("old");
      ZState New = B.Enc.freshState("new");
      B.wfHyp(Old);
      B.wfHyp(New);
      B.hyp(B.PE.witness(*Pat.W, nullptr, &Old, &New, B.Env));
      B.hyp(B.PE.formula(*Pat.G.Psi2, St, Old, B.Env, B.Hyps));
      ZState OldPost = B.stepHyp(Old, St, "oldp");
      B.wfHyp(OldPost);
      ZStep NewStep = B.Enc.encodeStep(New, St, "newp");
      B.hypAll(NewStep.Constraints);
      return NewStep.Defined &&
             B.PE.witness(*Pat.W, nullptr, &OldPost, &NewStep.Post, B.Env);
    });

    // B3: the enabling statement re-unifies the traces.
    RunSplitObligation("B3", [&](ObligationBuilder &B, const z3::expr &St) {
      ZState Old = B.Enc.freshState("old");
      ZState New = B.Enc.freshState("new");
      B.wfHyp(Old);
      B.wfHyp(New);
      B.hyp(B.PE.witness(*Pat.W, nullptr, &Old, &New, B.Env));
      B.hyp(B.PE.formula(*Pat.G.Psi1, St, Old, B.Env, B.Hyps));
      ZState OldPost = B.stepHyp(Old, St, "oldp");
      ZStep NewStep = B.Enc.encodeStep(New, St, "newp");
      B.hypAll(NewStep.Constraints);
      return NewStep.Defined && B.Enc.stateEq(NewStep.Post, OldPost);
    });

    if (!Insertion) {
      // B4: s' cannot get stuck when s steps.
      RunObligation("B4", [&](ObligationBuilder &B) {
        ZState Eta = B.Enc.freshState("eta");
        z3::expr StS = B.Enc.buildStmt(Pat.From, B.Env);
        z3::expr StT = B.Enc.buildStmt(Pat.To, B.Env);
        B.wfHyp(Eta);
        B.hyp(stepDefinedOnly(B.Enc, Eta, StS, "ps"));
        return stepDefinedOnly(B.Enc, Eta, StT, "pt");
      });
    } else {
      // Insertions (s = skip) cannot establish progress locally; instead
      // the hand-proven meta-theorem walks the complete original trace:
      // on a returning run the enabler executes, so (I2) s' can step
      // there, and (I1) pushes that fact backwards through the region.
      RunSplitObligation("I1", [&](ObligationBuilder &B,
                                   const z3::expr &St) {
        ZState Eta = B.Enc.freshState("eta");
        z3::expr StT = B.Enc.buildStmt(Pat.To, B.Env);
        B.wfHyp(Eta);
        B.hyp(B.PE.formula(*Pat.G.Psi2, St, Eta, B.Env, B.Hyps));
        ZState Post = B.stepHyp(Eta, St, "p");
        B.wfHyp(Post);
        B.hyp(stepDefinedOnly(B.Enc, Post, StT, "pa"));
        return stepDefinedOnly(B.Enc, Eta, StT, "pb");
      });
      RunSplitObligation("I2", [&](ObligationBuilder &B,
                                   const z3::expr &St) {
        ZState Eta = B.Enc.freshState("eta");
        z3::expr StT = B.Enc.buildStmt(Pat.To, B.Env);
        B.wfHyp(Eta);
        B.hyp(B.PE.formula(*Pat.G.Psi1, St, Eta, B.Env, B.Hyps));
        B.hyp(stepDefinedOnly(B.Enc, Eta, St, "p"));
        return stepDefinedOnly(B.Enc, Eta, StT, "pt");
      });
    }

    // B5: a return enabler ends the procedure's activation with both
    // traces agreeing on the return value and on every location the
    // caller could observe (cells differing between the traces must be
    // unreachable). Catches escaped-local bugs.
    RunObligation("B5", [&](ObligationBuilder &B) {
      ZState Old = B.Enc.freshState("old");
      ZState New = B.Enc.freshState("new");
      z3::expr St = B.Enc.SReturn(B.Enc.freshVar("rv"));
      B.wfHyp(Old);
      B.wfHyp(New);
      B.hyp(B.PE.witness(*Pat.W, nullptr, &Old, &New, B.Env));
      B.hyp(B.PE.formula(*Pat.G.Psi1, St, Old, B.Env, B.Hyps));

      z3::expr RetVar = B.Enc.SReturnVar(St);
      z3::expr OldDef = z3::select(Old.Scope, RetVar);
      z3::expr OldVal =
          z3::select(Old.Sto, z3::select(Old.Env, RetVar));
      z3::expr NewDef = z3::select(New.Scope, RetVar);
      z3::expr NewVal =
          z3::select(New.Sto, z3::select(New.Env, RetVar));

      z3::expr L = B.C.int_const("b5L");
      z3::expr StoresAgreeOrUnreachable = z3::forall(
          L, z3::implies(z3::select(Old.Sto, L) != z3::select(New.Sto, L),
                         B.Enc.notPointedToLoc(Old, L) &&
                             L != z3::select(Old.Env, RetVar)));
      return z3::implies(OldDef,
                         NewDef && OldVal == NewVal &&
                             Old.Alloc == New.Alloc &&
                             StoresAgreeOrUnreachable);
    });
  }

  Report.Sound = !Report.Obligations.empty();
  for (const ObligationResult &R : Report.Obligations)
    Report.Sound = Report.Sound && R.proven();
  return Report;
}

//===----------------------------------------------------------------------===//
// Pure-analysis obligations.
//===----------------------------------------------------------------------===//

CheckReport SoundnessChecker::checkAnalysis(const PureAnalysis &A) {
  CheckReport Report;
  Report.Name = A.Name;

  std::map<std::string, const PureAnalysis *> ByLabel;
  for (const PureAnalysis &Other : Analyses)
    if (Other.Name != A.Name)
      ByLabel[Other.LabelName] = &Other;

  auto RunSplitObligation =
      [&](const std::string &Name,
          const std::function<z3::expr(ObligationBuilder &,
                                       const z3::expr &)> &Build) {
        for (const char *Tag : StmtKindTags) {
          ObligationBuilder B(Registry, ByLabel);
          z3::expr St = makeStmtOfKind(B.Enc, Tag);
          z3::expr Goal = Build(B, St);
          Report.Obligations.push_back(
              B.check(Name + "[" + Tag + "]", Goal, TimeoutMs));
          Report.TotalSeconds += Report.Obligations.back().Seconds;
        }
      };

  RunSplitObligation("F1", [&](ObligationBuilder &B, const z3::expr &St) {
    ZState Eta = B.Enc.freshState("eta");
    B.wfHyp(Eta);
    B.hyp(B.PE.formula(*A.G.Psi1, St, Eta, B.Env, B.Hyps));
    ZState Post = B.stepHyp(Eta, St, "p1");
    B.wfHyp(Post);
    return B.PE.witness(*A.W, &Post, nullptr, nullptr, B.Env);
  });

  RunSplitObligation("F2", [&](ObligationBuilder &B, const z3::expr &St) {
    ZState Eta = B.Enc.freshState("eta");
    B.wfHyp(Eta);
    B.hyp(B.PE.witness(*A.W, &Eta, nullptr, nullptr, B.Env));
    B.hyp(B.PE.formula(*A.G.Psi2, St, Eta, B.Env, B.Hyps));
    ZState Post = B.stepHyp(Eta, St, "p2");
    B.wfHyp(Post);
    return B.PE.witness(*A.W, &Post, nullptr, nullptr, B.Env);
  });

  Report.Sound = !Report.Obligations.empty();
  for (const ObligationResult &R : Report.Obligations)
    Report.Sound = Report.Sound && R.proven();
  return Report;
}
