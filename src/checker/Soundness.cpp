//===- Soundness.cpp ------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"

#include "checker/Encoder.h"
#include "checker/Obligations.h"
#include "checker/PatternEncoder.h"
#include "checker/ProverWorkerPool.h"
#include "ir/Printer.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>

using namespace cobalt;
using namespace cobalt::checker;
using namespace cobalt::ir;
using support::ErrorKind;

std::string CheckReport::str() const {
  std::ostringstream Out;
  Out << Name << ": ";
  switch (V) {
  case Verdict::V_Sound:
    Out << "SOUND";
    break;
  case Verdict::V_Unsound:
    Out << "UNSOUND";
    break;
  case Verdict::V_Unproven:
    Out << "NOT PROVEN [" << support::errorKindName(Degradation) << "]";
    break;
  }
  if (CacheHit)
    Out << " (cached)";
  Out << " (";
  for (size_t I = 0; I < Obligations.size(); ++I) {
    if (I)
      Out << ", ";
    const ObligationResult &R = Obligations[I];
    Out << R.Name << "=";
    switch (R.St) {
    case ObligationResult::Status::OS_Proven:
      Out << "ok";
      break;
    case ObligationResult::Status::OS_Failed:
      Out << "FAIL";
      break;
    case ObligationResult::Status::OS_Unknown:
      Out << (R.Err.Kind == ErrorKind::EK_ProverTimeout ? "TIMEOUT"
              : R.Err.Kind == ErrorKind::EK_ProverResourceOut
                  ? "RESOURCE"
                  : "UNKNOWN");
      break;
    }
  }
  Out << ")";
  if (!AssumedAnalyses.empty()) {
    Out << " assuming sound:";
    for (const std::string &A : AssumedAnalyses)
      Out << " " << A;
  }
  return Out.str();
}

namespace {

/// Progress of a statement independent of its index: "the statement can
/// execute from this state".
z3::expr stepDefinedOnly(Encoder &Enc, const ZState &S, const z3::expr &St,
                         const std::string &Prefix) {
  return Enc.encodeStep(S, St, Prefix).Defined;
}

/// The statement-kind case split. Obligations over an arbitrary region
/// statement are checked once per kind with a statement of that shape
/// (fresh fields). This mirrors how the paper's hand proofs proceed, lets
/// Z3 discharge each case without a top-level datatype split, and makes
/// failures self-localizing ("F2[assign] failed").
const char *StmtKindTags[] = {"decl", "skip",   "assign", "new",
                              "call", "branch", "return"};

/// The result recorded for obligations skipped because the check's total
/// wall-clock budget ran out before they were attempted.
ObligationResult budgetExhausted(const std::string &Name) {
  ObligationResult R;
  R.Name = Name;
  R.St = ObligationResult::Status::OS_Unknown;
  R.Err = support::Error(ErrorKind::EK_ProverTimeout,
                         "total budget exhausted before this obligation");
  return R;
}

/// Derives the three-valued verdict and the degradation kind from the
/// per-obligation results.
void finalizeVerdict(CheckReport &Report) {
  bool AnyFailed = false;
  ErrorKind Deg = ErrorKind::EK_None;
  for (const ObligationResult &R : Report.Obligations) {
    if (R.St == ObligationResult::Status::OS_Failed)
      AnyFailed = true;
    else if (R.St == ObligationResult::Status::OS_Unknown &&
             Deg == ErrorKind::EK_None)
      Deg = R.Err.Kind == ErrorKind::EK_None ? ErrorKind::EK_ProverUnknown
                                             : R.Err.Kind;
  }
  Report.Degradation = Deg;
  if (AnyFailed)
    Report.V = CheckReport::Verdict::V_Unsound;
  else if (Deg != ErrorKind::EK_None || Report.Obligations.empty())
    Report.V = CheckReport::Verdict::V_Unproven;
  else
    Report.V = CheckReport::Verdict::V_Sound;
  Report.Sound = Report.V == CheckReport::Verdict::V_Sound;
}

//===----------------------------------------------------------------------===//
// Fingerprinting (verdict cache keys).
//===----------------------------------------------------------------------===//

/// FNV-1a over the bytes of \p S plus a separator, folded into \p H.
/// Definitions are fingerprinted through their printed forms — the
/// printers are total over the formula/witness/IR languages, so two
/// definitions collide only if they are structurally identical (or on a
/// genuine 64-bit hash collision, which at a dozen optimizations is
/// negligible).
void hashStr(uint64_t &H, const std::string &S) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  H ^= 0x1f;
  H *= 0x100000001b3ull;
}

void hashLabelDefs(uint64_t &H, const std::vector<LabelDef> &Defs) {
  for (const LabelDef &D : Defs) {
    hashStr(H, D.Name);
    for (const auto &Param : D.Params) {
      hashStr(H, Param.first);
      hashStr(H, std::string(1, static_cast<char>(
                                    'A' + static_cast<int>(Param.second))));
    }
    hashStr(H, D.Body ? D.Body->str() : "<null>");
  }
}

void hashGuardWitness(uint64_t &H, const Guard &G, const WitnessPtr &W) {
  hashStr(H, G.Psi1 ? G.Psi1->str() : "<null>");
  hashStr(H, G.Psi2 ? G.Psi2->str() : "<null>");
  hashStr(H, W ? W->str() : "<null>");
}

void hashAnalysisDef(uint64_t &H, const PureAnalysis &A) {
  hashStr(H, A.Name);
  hashStr(H, A.LabelName);
  for (const Term &T : A.LabelArgs)
    hashStr(H, toString(T));
  hashGuardWitness(H, A.G, A.W);
  hashLabelDefs(H, A.Labels);
}

z3::expr makeStmtOfKind(Encoder &Enc, const std::string &Tag) {
  if (Tag == "decl")
    return Enc.SDecl(Enc.freshVar("kd"));
  if (Tag == "skip")
    return Enc.SSkip();
  if (Tag == "assign")
    return Enc.SAssign(Enc.freshLhs("kl"), Enc.freshExpr("kr"));
  if (Tag == "new")
    return Enc.SNew(Enc.freshVar("kn"));
  if (Tag == "call")
    return Enc.SCall(Enc.freshVar("kt"), Enc.freshProc("kp"),
                     Enc.freshBase("ka"));
  if (Tag == "branch")
    return Enc.SBranch(Enc.freshBase("kb"), Enc.freshInt("ki"),
                       Enc.freshInt("kj"));
  return Enc.SReturn(Enc.freshVar("kv"));
}

//===----------------------------------------------------------------------===//
// Cached-verdict serialization helpers.
//===----------------------------------------------------------------------===//

std::string escapeLine(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '\n')
      Out += "\\n";
    else if (C == '\r')
      Out += "\\r";
    else
      Out += C;
  }
  return Out;
}

std::string unescapeLine(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 == S.size()) {
      Out += S[I];
      continue;
    }
    char N = S[++I];
    Out += N == 'n' ? '\n' : N == 'r' ? '\r' : N;
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Cached-verdict serialization (the persistent cache's value format).
//===----------------------------------------------------------------------===//

std::string checker::serializeCheckReport(const CheckReport &R) {
  std::ostringstream Out;
  Out << "report 2\n";
  Out << "name " << escapeLine(R.Name) << "\n";
  Out << "verdict "
      << (R.V == CheckReport::Verdict::V_Sound     ? "sound"
          : R.V == CheckReport::Verdict::V_Unsound ? "unsound"
                                                   : "unproven")
      << "\n";
  Out << "degradation " << support::errorKindName(R.Degradation) << "\n";
  for (const std::string &A : R.AssumedAnalyses)
    Out << "assumed " << escapeLine(A) << "\n";
  for (const ObligationResult &Ob : R.Obligations) {
    Out << "obligation " << escapeLine(Ob.Name) << "\n";
    Out << " status "
        << (Ob.St == ObligationResult::Status::OS_Proven   ? "proven"
            : Ob.St == ObligationResult::Status::OS_Failed ? "failed"
                                                           : "unknown")
        << "\n";
    Out << " errkind " << support::errorKindName(Ob.Err.Kind) << "\n";
    if (!Ob.Err.Message.empty())
      Out << " errmsg " << escapeLine(Ob.Err.Message) << "\n";
    Out << " attempts " << Ob.Attempts << "\n";
    Out << " rlimit " << Ob.RlimitSpent << "\n";
    if (!Ob.Counterexample.empty())
      Out << " cex " << escapeLine(Ob.Counterexample) << "\n";
  }
  return Out.str();
}

std::optional<CheckReport>
checker::deserializeCheckReport(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  if (!std::getline(In, Line) || Line != "report 2")
    return std::nullopt;

  CheckReport R;
  ObligationResult *Cur = nullptr;
  bool SawName = false, SawVerdict = false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    if (Line.front() == ' ')
      Line.erase(Line.begin());
    size_t Sp = Line.find(' ');
    std::string Key = Line.substr(0, Sp);
    std::string Val = Sp == std::string::npos ? "" : Line.substr(Sp + 1);

    if (Key == "name") {
      R.Name = unescapeLine(Val);
      SawName = true;
    } else if (Key == "verdict") {
      if (Val == "sound")
        R.V = CheckReport::Verdict::V_Sound;
      else if (Val == "unsound")
        R.V = CheckReport::Verdict::V_Unsound;
      else if (Val == "unproven")
        R.V = CheckReport::Verdict::V_Unproven;
      else
        return std::nullopt;
      SawVerdict = true;
    } else if (Key == "degradation") {
      R.Degradation = support::errorKindFromName(Val);
    } else if (Key == "assumed") {
      R.AssumedAnalyses.push_back(unescapeLine(Val));
    } else if (Key == "obligation") {
      R.Obligations.emplace_back();
      Cur = &R.Obligations.back();
      Cur->Name = unescapeLine(Val);
      Cur->St = ObligationResult::Status::OS_Unknown;
    } else if (!Cur) {
      return std::nullopt; // sub-field outside any obligation
    } else if (Key == "status") {
      if (Val == "proven")
        Cur->St = ObligationResult::Status::OS_Proven;
      else if (Val == "failed")
        Cur->St = ObligationResult::Status::OS_Failed;
      else if (Val == "unknown")
        Cur->St = ObligationResult::Status::OS_Unknown;
      else
        return std::nullopt;
    } else if (Key == "errkind") {
      Cur->Err.Kind = support::errorKindFromName(Val);
    } else if (Key == "errmsg") {
      Cur->Err.Message = unescapeLine(Val);
    } else if (Key == "attempts") {
      Cur->Attempts =
          static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
    } else if (Key == "rlimit") {
      Cur->RlimitSpent = std::strtoull(Val.c_str(), nullptr, 10);
    } else if (Key == "cex") {
      Cur->Counterexample = unescapeLine(Val);
    } else {
      return std::nullopt; // unknown field: treat the entry as a miss
    }
  }
  if (!SawName || !SawVerdict)
    return std::nullopt;
  R.Sound = R.V == CheckReport::Verdict::V_Sound;
  return R;
}

//===----------------------------------------------------------------------===//
// Obligation-result serialization (the worker pool's response frames).
//===----------------------------------------------------------------------===//

std::string checker::serializeObligationResult(const ObligationResult &R) {
  std::ostringstream Out;
  Out << "obresult 1\n";
  Out << "name " << escapeLine(R.Name) << "\n";
  Out << "status "
      << (R.St == ObligationResult::Status::OS_Proven   ? "proven"
          : R.St == ObligationResult::Status::OS_Failed ? "failed"
                                                        : "unknown")
      << "\n";
  Out << "errkind " << support::errorKindName(R.Err.Kind) << "\n";
  if (!R.Err.Message.empty())
    Out << "errmsg " << escapeLine(R.Err.Message) << "\n";
  Out << "seconds " << R.Seconds << "\n";
  Out << "attempts " << R.Attempts << "\n";
  Out << "rlimit " << R.RlimitSpent << "\n";
  if (!R.Counterexample.empty())
    Out << "cex " << escapeLine(R.Counterexample) << "\n";
  return Out.str();
}

std::optional<ObligationResult>
checker::deserializeObligationResult(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  if (!std::getline(In, Line) || Line != "obresult 1")
    return std::nullopt;

  ObligationResult R;
  R.St = ObligationResult::Status::OS_Unknown;
  bool SawName = false, SawStatus = false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    size_t Sp = Line.find(' ');
    std::string Key = Line.substr(0, Sp);
    std::string Val = Sp == std::string::npos ? "" : Line.substr(Sp + 1);
    if (Key == "name") {
      R.Name = unescapeLine(Val);
      SawName = true;
    } else if (Key == "status") {
      if (Val == "proven")
        R.St = ObligationResult::Status::OS_Proven;
      else if (Val == "failed")
        R.St = ObligationResult::Status::OS_Failed;
      else if (Val == "unknown")
        R.St = ObligationResult::Status::OS_Unknown;
      else
        return std::nullopt;
      SawStatus = true;
    } else if (Key == "errkind") {
      R.Err.Kind = support::errorKindFromName(Val);
    } else if (Key == "errmsg") {
      R.Err.Message = unescapeLine(Val);
    } else if (Key == "seconds") {
      R.Seconds = std::strtod(Val.c_str(), nullptr);
    } else if (Key == "attempts") {
      R.Attempts =
          static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
    } else if (Key == "rlimit") {
      R.RlimitSpent = std::strtoull(Val.c_str(), nullptr, 10);
    } else if (Key == "cex") {
      R.Counterexample = unescapeLine(Val);
    } else {
      return std::nullopt; // unknown field: the frame is not trusted
    }
  }
  if (!SawName || !SawStatus)
    return std::nullopt;
  return R;
}

//===----------------------------------------------------------------------===//
// SoundnessChecker: prepared checks and their execution.
//===----------------------------------------------------------------------===//

/// One independent prover job: a named obligation whose Z3 query is built
/// lazily (on whichever thread executes it) from a fresh ObligationBuilder.
struct SoundnessChecker::ObligationTask {
  std::string Name;
  /// Stable job fingerprint (definition key ⊕ obligation name) used to
  /// key fault-injection decisions; see ScopedFaultKey.
  uint64_t FaultKey = 0;
  std::function<z3::expr(ObligationBuilder &)> Build;
  ObligationResult Result;
};

/// One definition's obligations plus its report skeleton. The closures in
/// Tasks capture pointers into the caller's definition (which outlives
/// the check call) and read the shared analysis table through ByLabel.
struct SoundnessChecker::PreparedCheck {
  uint64_t Key = 0;
  bool CacheHit = false;
  /// Rule/analysis fingerprints cover everything their obligations read,
  /// so those verdicts always cache; caller-assembled ObligationSets opt
  /// in only when their fingerprint makes the same promise.
  bool Cacheable = true;
  CheckReport Report;
  std::shared_ptr<std::map<std::string, const PureAnalysis *>> ByLabel;
  std::vector<ObligationTask> Tasks;
  std::chrono::steady_clock::time_point Start;
};

SoundnessChecker::SoundnessChecker(const LabelRegistry &Registry,
                                   std::vector<PureAnalysis> Analyses)
    : Registry(Registry), Analyses(std::move(Analyses)),
      Disk(std::make_shared<support::PersistentCache>()) {}

uint64_t
SoundnessChecker::fingerprintOptimization(const Optimization &O) const {
  uint64_t H = 0xcbf29ce484222325ull;
  hashStr(H, "optimization");
  hashStr(H, O.Name);
  hashStr(H, O.Pat.Dir == Direction::D_Forward ? "fwd" : "bwd");
  hashStr(H, ir::toString(O.Pat.From));
  hashStr(H, ir::toString(O.Pat.To));
  hashGuardWitness(H, O.Pat.G, O.Pat.W);
  hashLabelDefs(H, O.Labels);
  // Obligations also depend on every registered predicate and on the
  // analysis witnesses, so fold the whole context in.
  hashLabelDefs(H, Registry.predicates());
  for (const PureAnalysis &A : Analyses)
    hashAnalysisDef(H, A);
  return H;
}

uint64_t SoundnessChecker::fingerprintAnalysis(const PureAnalysis &A) const {
  uint64_t H = 0xcbf29ce484222325ull;
  hashStr(H, "analysis");
  hashAnalysisDef(H, A);
  hashLabelDefs(H, Registry.predicates());
  for (const PureAnalysis &Other : Analyses)
    hashAnalysisDef(H, Other);
  return H;
}

bool SoundnessChecker::setCacheDir(const std::string &Dir) {
  // Version bumps orphan (rather than misread) old entries; bump it when
  // serializeCheckReport's format, the fingerprint recipe, or the
  // PersistentCache entry layout changes.
  // v2: per-obligation rlimit spend.
  // v3: checksummed self-healing cache entries — pre-checksum entries
  //     would all be quarantined as corrupt, so orphan them instead.
  return Disk->open(Dir, "verdict", /*Version=*/3);
}

void SoundnessChecker::setSharedCache(
    std::shared_ptr<support::PersistentCache> Cache) {
  Disk = Cache ? std::move(Cache)
               : std::make_shared<support::PersistentCache>();
}

void SoundnessChecker::clearCache() {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  Cache.clear();
}

bool SoundnessChecker::cacheLookup(uint64_t Key, CheckReport &Out) {
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      Out = It->second;
      ++CacheHits;
      support::metricAdd("checker.cache.hits");
      return true;
    }
  }
  if (Disk->enabled()) {
    if (std::optional<std::string> Blob = Disk->load(Key)) {
      if (std::optional<CheckReport> R = deserializeCheckReport(*Blob)) {
        std::lock_guard<std::mutex> Lock(CacheMutex);
        Cache[Key] = *R;
        ++CacheHits;
        support::metricAdd("checker.cache.hits");
        Out = std::move(*R);
        return true;
      }
    }
  }
  support::metricAdd("checker.cache.misses");
  return false;
}

void SoundnessChecker::cacheStore(uint64_t Key, const CheckReport &R) {
  // Only definitive verdicts are cacheable: an unproven verdict reflects
  // transient prover limits, and a rerun (possibly with a larger budget)
  // may well decide it.
  if (R.V == CheckReport::Verdict::V_Unproven)
    return;
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    Cache[Key] = R;
  }
  if (Disk->enabled())
    Disk->store(Key, serializeCheckReport(R));
}

//===----------------------------------------------------------------------===//
// Optimization obligations.
//===----------------------------------------------------------------------===//

SoundnessChecker::PreparedCheck
SoundnessChecker::prepareOptimization(const Optimization &O) {
  PreparedCheck PC;
  PC.Key = fingerprintOptimization(O);
  PC.Report.Name = O.Name;
  if (Policy.CacheVerdicts && cacheLookup(PC.Key, PC.Report)) {
    PC.Report.CacheHit = true;
    PC.Report.TotalSeconds = 0.0;
    PC.CacheHit = true;
    return PC;
  }

  PC.ByLabel =
      std::make_shared<std::map<std::string, const PureAnalysis *>>();
  for (const PureAnalysis &A : Analyses)
    (*PC.ByLabel)[A.LabelName] = &A;

  // Record the analysis labels the guard mentions: the soundness
  // guarantee is conditional on those analyses (checked separately).
  {
    auto Scan = [&](const FormulaPtr &F, auto &&ScanRef) -> void {
      if (!F)
        return;
      if (F->K == Formula::Kind::FK_Label &&
          Registry.isAnalysisLabel(F->LabelName)) {
        auto It = PC.ByLabel->find(F->LabelName);
        std::string Dep = It != PC.ByLabel->end()
                              ? It->second->Name
                              : F->LabelName + " (unknown)";
        if (std::find(PC.Report.AssumedAnalyses.begin(),
                      PC.Report.AssumedAnalyses.end(),
                      Dep) == PC.Report.AssumedAnalyses.end())
          PC.Report.AssumedAnalyses.push_back(Dep);
      }
      for (const FormulaPtr &Kid : F->Kids)
        ScanRef(Kid, ScanRef);
      for (const CaseArm &Arm : F->Arms)
        ScanRef(Arm.Body, ScanRef);
      if (F->ElseBody)
        ScanRef(F->ElseBody, ScanRef);
      // Recurse through predicate-label bodies for indirect uses.
      if (F->K == Formula::Kind::FK_Label)
        if (const LabelDef *Def = Registry.findPredicate(F->LabelName))
          ScanRef(Def->Body, ScanRef);
    };
    Scan(O.Pat.G.Psi1, Scan);
    Scan(O.Pat.G.Psi2, Scan);
  }

  // The task closures capture this pointer: the definition lives in the
  // caller and must outlive runPrepared (checkOptimization/checkSuite
  // take it by reference for exactly this duration).
  const TransformationPattern *Pat = &O.Pat;
  bool Forward = Pat->Dir == Direction::D_Forward;
  bool Insertion = Pat->From.is<SkipStmt>() && !Pat->To.is<SkipStmt>();

  auto AddTask = [&](const std::string &Name,
                     std::function<z3::expr(ObligationBuilder &)> Build) {
    ObligationTask T;
    T.Name = Name;
    T.FaultKey = PC.Key;
    hashStr(T.FaultKey, Name);
    T.FaultKey ^= FaultKeySalt;
    T.Build = std::move(Build);
    PC.Tasks.push_back(std::move(T));
  };

  // Obligations quantifying over an arbitrary region statement run once
  // per statement kind (see makeStmtOfKind).
  auto AddSplitTask =
      [&](const std::string &Name,
          const std::function<z3::expr(ObligationBuilder &,
                                       const z3::expr &)> &Build) {
        for (const char *Tag : StmtKindTags) {
          std::string TagStr = Tag;
          AddTask(Name + "[" + Tag + "]",
                  [Build, TagStr](ObligationBuilder &B) {
                    z3::expr St = makeStmtOfKind(B.Enc, TagStr);
                    return Build(B, St);
                  });
        }
      };

  if (Forward) {
    // F1: the enabling statement establishes the witness.
    AddSplitTask("F1", [Pat](ObligationBuilder &B, const z3::expr &St) {
      ZState Eta = B.Enc.freshState("eta");
      B.wfHyp(Eta);
      B.hyp(B.PE.formula(*Pat->G.Psi1, St, Eta, B.Env, B.Hyps));
      ZState Post = B.stepHyp(Eta, St, "p1");
      B.wfHyp(Post);
      return B.PE.witness(*Pat->W, &Post, nullptr, nullptr, B.Env);
    });

    // F2: innocuous statements preserve the witness.
    AddSplitTask("F2", [Pat](ObligationBuilder &B, const z3::expr &St) {
      ZState Eta = B.Enc.freshState("eta");
      B.wfHyp(Eta);
      B.hyp(B.PE.witness(*Pat->W, &Eta, nullptr, nullptr, B.Env));
      B.hyp(B.PE.formula(*Pat->G.Psi2, St, Eta, B.Env, B.Hyps));
      ZState Post = B.stepHyp(Eta, St, "p2");
      B.wfHyp(Post);
      return B.PE.witness(*Pat->W, &Post, nullptr, nullptr, B.Env);
    });

    // F3: under the witness, s' steps exactly like s (and cannot be
    // stuck when s is not — the footnote-6 progress side).
    AddTask("F3", [Pat](ObligationBuilder &B) {
      ZState Eta = B.Enc.freshState("eta");
      z3::expr StS = B.Enc.buildStmt(Pat->From, B.Env);
      z3::expr StT = B.Enc.buildStmt(Pat->To, B.Env);
      B.wfHyp(Eta);
      B.hyp(B.PE.witness(*Pat->W, &Eta, nullptr, nullptr, B.Env));
      ZState Post = B.stepHyp(Eta, StS, "ps");
      ZStep StepT = B.Enc.encodeStep(Eta, StT, "pt");
      B.hypAll(StepT.Constraints);
      return StepT.Defined && B.Enc.stateEq(StepT.Post, Post);
    });
  } else {
    // B1: executing s and s' from a common state establishes the witness.
    AddTask("B1", [Pat](ObligationBuilder &B) {
      ZState Eta = B.Enc.freshState("eta");
      z3::expr StS = B.Enc.buildStmt(Pat->From, B.Env);
      z3::expr StT = B.Enc.buildStmt(Pat->To, B.Env);
      B.wfHyp(Eta);
      ZState Old = B.stepHyp(Eta, StS, "old");
      ZState New = B.stepHyp(Eta, StT, "new");
      return B.PE.witness(*Pat->W, nullptr, &Old, &New, B.Env);
    });

    // B2: innocuous statements preserve the witness, and the transformed
    // trace can always step along (progress of the simulation).
    AddSplitTask("B2", [Pat](ObligationBuilder &B, const z3::expr &St) {
      ZState Old = B.Enc.freshState("old");
      ZState New = B.Enc.freshState("new");
      B.wfHyp(Old);
      B.wfHyp(New);
      B.hyp(B.PE.witness(*Pat->W, nullptr, &Old, &New, B.Env));
      B.hyp(B.PE.formula(*Pat->G.Psi2, St, Old, B.Env, B.Hyps));
      ZState OldPost = B.stepHyp(Old, St, "oldp");
      B.wfHyp(OldPost);
      ZStep NewStep = B.Enc.encodeStep(New, St, "newp");
      B.hypAll(NewStep.Constraints);
      return NewStep.Defined &&
             B.PE.witness(*Pat->W, nullptr, &OldPost, &NewStep.Post,
                          B.Env);
    });

    // B3: the enabling statement re-unifies the traces.
    AddSplitTask("B3", [Pat](ObligationBuilder &B, const z3::expr &St) {
      ZState Old = B.Enc.freshState("old");
      ZState New = B.Enc.freshState("new");
      B.wfHyp(Old);
      B.wfHyp(New);
      B.hyp(B.PE.witness(*Pat->W, nullptr, &Old, &New, B.Env));
      B.hyp(B.PE.formula(*Pat->G.Psi1, St, Old, B.Env, B.Hyps));
      ZState OldPost = B.stepHyp(Old, St, "oldp");
      ZStep NewStep = B.Enc.encodeStep(New, St, "newp");
      B.hypAll(NewStep.Constraints);
      return NewStep.Defined && B.Enc.stateEq(NewStep.Post, OldPost);
    });

    if (!Insertion) {
      // B4: s' cannot get stuck when s steps.
      AddTask("B4", [Pat](ObligationBuilder &B) {
        ZState Eta = B.Enc.freshState("eta");
        z3::expr StS = B.Enc.buildStmt(Pat->From, B.Env);
        z3::expr StT = B.Enc.buildStmt(Pat->To, B.Env);
        B.wfHyp(Eta);
        B.hyp(stepDefinedOnly(B.Enc, Eta, StS, "ps"));
        return stepDefinedOnly(B.Enc, Eta, StT, "pt");
      });
    } else {
      // Insertions (s = skip) cannot establish progress locally; instead
      // the hand-proven meta-theorem walks the complete original trace:
      // on a returning run the enabler executes, so (I2) s' can step
      // there, and (I1) pushes that fact backwards through the region.
      AddSplitTask("I1", [Pat](ObligationBuilder &B, const z3::expr &St) {
        ZState Eta = B.Enc.freshState("eta");
        z3::expr StT = B.Enc.buildStmt(Pat->To, B.Env);
        B.wfHyp(Eta);
        B.hyp(B.PE.formula(*Pat->G.Psi2, St, Eta, B.Env, B.Hyps));
        ZState Post = B.stepHyp(Eta, St, "p");
        B.wfHyp(Post);
        B.hyp(stepDefinedOnly(B.Enc, Post, StT, "pa"));
        return stepDefinedOnly(B.Enc, Eta, StT, "pb");
      });
      AddSplitTask("I2", [Pat](ObligationBuilder &B, const z3::expr &St) {
        ZState Eta = B.Enc.freshState("eta");
        z3::expr StT = B.Enc.buildStmt(Pat->To, B.Env);
        B.wfHyp(Eta);
        B.hyp(B.PE.formula(*Pat->G.Psi1, St, Eta, B.Env, B.Hyps));
        B.hyp(stepDefinedOnly(B.Enc, Eta, St, "p"));
        return stepDefinedOnly(B.Enc, Eta, StT, "pt");
      });
    }

    // B5: a return enabler ends the procedure's activation with both
    // traces agreeing on the return value and on every location the
    // caller could observe (cells differing between the traces must be
    // unreachable). Catches escaped-local bugs.
    AddTask("B5", [Pat](ObligationBuilder &B) {
      ZState Old = B.Enc.freshState("old");
      ZState New = B.Enc.freshState("new");
      z3::expr St = B.Enc.SReturn(B.Enc.freshVar("rv"));
      B.wfHyp(Old);
      B.wfHyp(New);
      B.hyp(B.PE.witness(*Pat->W, nullptr, &Old, &New, B.Env));
      B.hyp(B.PE.formula(*Pat->G.Psi1, St, Old, B.Env, B.Hyps));

      z3::expr RetVar = B.Enc.SReturnVar(St);
      z3::expr OldDef = z3::select(Old.Scope, RetVar);
      z3::expr OldVal =
          z3::select(Old.Sto, z3::select(Old.Env, RetVar));
      z3::expr NewDef = z3::select(New.Scope, RetVar);
      z3::expr NewVal =
          z3::select(New.Sto, z3::select(New.Env, RetVar));

      z3::expr L = B.C.int_const("b5L");
      z3::expr StoresAgreeOrUnreachable = z3::forall(
          L, z3::implies(z3::select(Old.Sto, L) != z3::select(New.Sto, L),
                         B.Enc.notPointedToLoc(Old, L) &&
                             L != z3::select(Old.Env, RetVar)));
      return z3::implies(OldDef,
                         NewDef && OldVal == NewVal &&
                             Old.Alloc == New.Alloc &&
                             StoresAgreeOrUnreachable);
    });
  }

  return PC;
}

CheckReport SoundnessChecker::checkOptimization(const Optimization &O) {
  std::vector<PreparedCheck> Checks;
  Checks.push_back(prepareOptimization(O));
  return std::move(runPrepared(std::move(Checks)).front());
}

//===----------------------------------------------------------------------===//
// Pure-analysis obligations.
//===----------------------------------------------------------------------===//

SoundnessChecker::PreparedCheck
SoundnessChecker::prepareAnalysis(const PureAnalysis &A) {
  PreparedCheck PC;
  PC.Key = fingerprintAnalysis(A);
  PC.Report.Name = A.Name;
  if (Policy.CacheVerdicts && cacheLookup(PC.Key, PC.Report)) {
    PC.Report.CacheHit = true;
    PC.Report.TotalSeconds = 0.0;
    PC.CacheHit = true;
    return PC;
  }

  PC.ByLabel =
      std::make_shared<std::map<std::string, const PureAnalysis *>>();
  for (const PureAnalysis &Other : Analyses)
    if (Other.Name != A.Name)
      (*PC.ByLabel)[Other.LabelName] = &Other;

  const PureAnalysis *AP = &A;

  auto AddSplitTask =
      [&](const std::string &Name,
          const std::function<z3::expr(ObligationBuilder &,
                                       const z3::expr &)> &Build) {
        for (const char *Tag : StmtKindTags) {
          std::string TagStr = Tag;
          ObligationTask T;
          T.Name = Name + "[" + Tag + "]";
          T.FaultKey = PC.Key;
          hashStr(T.FaultKey, T.Name);
          T.FaultKey ^= FaultKeySalt;
          T.Build = [Build, TagStr](ObligationBuilder &B) {
            z3::expr St = makeStmtOfKind(B.Enc, TagStr);
            return Build(B, St);
          };
          PC.Tasks.push_back(std::move(T));
        }
      };

  AddSplitTask("F1", [AP](ObligationBuilder &B, const z3::expr &St) {
    ZState Eta = B.Enc.freshState("eta");
    B.wfHyp(Eta);
    B.hyp(B.PE.formula(*AP->G.Psi1, St, Eta, B.Env, B.Hyps));
    ZState Post = B.stepHyp(Eta, St, "p1");
    B.wfHyp(Post);
    return B.PE.witness(*AP->W, &Post, nullptr, nullptr, B.Env);
  });

  AddSplitTask("F2", [AP](ObligationBuilder &B, const z3::expr &St) {
    ZState Eta = B.Enc.freshState("eta");
    B.wfHyp(Eta);
    B.hyp(B.PE.witness(*AP->W, &Eta, nullptr, nullptr, B.Env));
    B.hyp(B.PE.formula(*AP->G.Psi2, St, Eta, B.Env, B.Hyps));
    ZState Post = B.stepHyp(Eta, St, "p2");
    B.wfHyp(Post);
    return B.PE.witness(*AP->W, &Post, nullptr, nullptr, B.Env);
  });

  return PC;
}

CheckReport SoundnessChecker::checkAnalysis(const PureAnalysis &A) {
  std::vector<PreparedCheck> Checks;
  Checks.push_back(prepareAnalysis(A));
  return std::move(runPrepared(std::move(Checks)).front());
}

//===----------------------------------------------------------------------===//
// Caller-assembled obligation sets (translation validation and friends).
//===----------------------------------------------------------------------===//

SoundnessChecker::PreparedCheck
SoundnessChecker::prepareObligationSet(const ObligationSet &Set) {
  PreparedCheck PC;
  PC.Key = Set.Fingerprint;
  PC.Cacheable = Set.Cacheable;
  PC.Report.Name = Set.Name;
  if (Policy.CacheVerdicts && Set.Cacheable &&
      cacheLookup(PC.Key, PC.Report)) {
    PC.Report.CacheHit = true;
    PC.Report.TotalSeconds = 0.0;
    PC.CacheHit = true;
    return PC;
  }

  PC.ByLabel =
      std::make_shared<std::map<std::string, const PureAnalysis *>>();
  for (const PureAnalysis &A : Analyses)
    (*PC.ByLabel)[A.LabelName] = &A;

  for (const ObligationSpec &S : Set.Obligations) {
    ObligationTask T;
    T.Name = S.Name;
    T.FaultKey = PC.Key;
    hashStr(T.FaultKey, S.Name);
    T.FaultKey ^= FaultKeySalt;
    T.Build = S.Build;
    PC.Tasks.push_back(std::move(T));
  }
  return PC;
}

CheckReport SoundnessChecker::checkObligationSet(const ObligationSet &Set) {
  std::vector<PreparedCheck> Checks;
  Checks.push_back(prepareObligationSet(Set));
  return std::move(runPrepared(std::move(Checks)).front());
}

std::vector<CheckReport> SoundnessChecker::checkObligationSets(
    const std::vector<ObligationSet> &Sets) {
  std::vector<PreparedCheck> Checks;
  Checks.reserve(Sets.size());
  for (const ObligationSet &Set : Sets)
    Checks.push_back(prepareObligationSet(Set));
  return runPrepared(std::move(Checks));
}

//===----------------------------------------------------------------------===//
// Execution: sequential or fanned into the thread pool.
//===----------------------------------------------------------------------===//

namespace {

/// Finalizes one obligation's telemetry: outcome args on its span plus
/// the checker.* counters. All values are deterministic except the
/// prover_seconds histogram (wall time, humans-only).
void recordObligation(const ObligationResult &R, support::TraceSpan &Span) {
  const char *Verdict = R.proven()              ? "proven"
                        : R.St == ObligationResult::Status::OS_Failed
                            ? "failed"
                            : "unknown";
  if (Span.enabled()) {
    Span.arg("verdict", std::string(Verdict));
    Span.arg("attempts", static_cast<uint64_t>(R.Attempts));
    Span.arg("rlimit", R.RlimitSpent);
  }
  if (support::Telemetry *T = support::Telemetry::active()) {
    T->Metrics.add("checker.obligations");
    T->Metrics.add(std::string("checker.obligations.") + Verdict);
    if (R.Attempts > 1)
      T->Metrics.add("checker.retries", R.Attempts - 1);
    if (R.RlimitSpent)
      T->Metrics.add("checker.rlimit_spent", R.RlimitSpent);
    T->Metrics.observe("checker.prover_seconds", R.Seconds);
  }
}

} // namespace

std::vector<CheckReport>
SoundnessChecker::runPrepared(std::vector<PreparedCheck> Checks) {
  support::TraceSpan SuiteSpan("checker", "checkSuite");
  if (SuiteSpan.enabled())
    SuiteSpan.arg("definitions", static_cast<uint64_t>(Checks.size()));
  // Pool threads do not inherit this thread's trace-ID TLS, so capture
  // the ambient request trace ID here and re-establish it inside every
  // task body (and ship it across the worker fork).
  const uint64_t SuiteTraceId = support::TraceRecorder::currentTraceId();
  // Flatten every definition's tasks into one job list so one slow
  // obligation does not serialize the definitions behind it.
  std::vector<std::pair<size_t, size_t>> Flat;
  auto Now = std::chrono::steady_clock::now();
  for (size_t CI = 0; CI < Checks.size(); ++CI) {
    Checks[CI].Start = Now;
    if (Checks[CI].CacheHit) {
      // A definition served from the verdict cache still shows up in the
      // trace (as an instant-ish span) so cached and fresh runs have
      // recognizably different span sets.
      support::TraceSpan Cached("checker", "check.cached");
      if (Cached.enabled())
        Cached.arg("def", Checks[CI].Report.Name);
      continue;
    }
    for (size_t TI = 0; TI < Checks[CI].Tasks.size(); ++TI)
      Flat.emplace_back(CI, TI);
  }

  // The discharge path proper: build the query in a fresh context and
  // run the solver. In-process mode runs it on the checker's threads
  // (under the job's fault scope); subprocess mode runs the *same
  // closure* inside a worker child, so the two modes cannot drift.
  auto Discharge = [&](size_t Idx, int64_t Left) -> ObligationResult {
    auto [CI, TI] = Flat[Idx];
    PreparedCheck &PC = Checks[CI];
    ObligationTask &T = PC.Tasks[TI];
    ObligationBuilder B(Registry, *PC.ByLabel);
    z3::expr Goal = T.Build(B);
    return B.check(T.Name, Goal, Policy, Left);
  };

  // Out-of-process mode: fork the workers *now*, before any task fans
  // onto the thread pool — its threads are idle (condvar wait), so no
  // lock can be mid-flight in the forked image. Later respawn forks are
  // safe for the same reason in a different guise: while the pool is
  // live no parent thread ever enters Z3 (only children do), so parent
  // threads hold nothing a child's solver run would need.
  std::unique_ptr<ProverWorkerPool> Workers;
  if (Policy.Isolation == WorkerIsolation::WI_Subprocess &&
      !Flat.empty()) {
    ProverWorkerPool::Config WC;
    WC.Workers = Pool && !Pool->inlineMode() ? Pool->jobs() : 1;
    WC.WallMs = Policy.WorkerWallMs
                    ? Policy.WorkerWallMs
                    : 2 * Policy.TimeoutMs + 30000;
    WC.RssMb = Policy.WorkerRssMb;
    WC.MaxRestarts = Policy.WorkerRestarts;
    Workers = std::make_unique<ProverWorkerPool>(WC, Discharge);
    if (!Workers->start()) {
      // Cannot fork at all (process/fd limits): an availability problem,
      // not a soundness one — degrade to in-process and keep going.
      support::metricAdd("worker.start_failed");
      Workers.reset();
    }
  }

  // Wall budget left for the obligation's definition: -1 = unlimited,
  // 0 = exhausted (skip without dispatching).
  auto BudgetLeft = [this](const PreparedCheck &PC) -> int64_t {
    if (Policy.BudgetMs == 0)
      return -1;
    int64_t Elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - PC.Start)
            .count();
    return std::max<int64_t>(
        0, static_cast<int64_t>(Policy.BudgetMs) - Elapsed);
  };

  // The full in-process path for one flat index: fault scope, budget,
  // discharge, record.
  auto RunInProcess = [&](size_t Idx) {
    auto [CI, TI] = Flat[Idx];
    PreparedCheck &PC = Checks[CI];
    ObligationTask &T = PC.Tasks[TI];
    support::TraceIdScope IdScope(SuiteTraceId);
    support::TraceSpan Span("checker", "obligation");
    if (Span.enabled()) {
      Span.arg("def", PC.Report.Name);
      Span.arg("ob", T.Name);
    }
    int64_t Left = BudgetLeft(PC);
    if (Left == 0) {
      T.Result = budgetExhausted(T.Name);
      recordObligation(T.Result, Span);
      return;
    }
    // Fault decisions inside this job are keyed on its stable
    // fingerprint, so `--jobs 8` fires exactly the faults `--jobs 1`
    // does regardless of scheduling.
    support::ScopedFaultKey JobKey(T.FaultKey);
    T.Result = Discharge(Idx, Left);
    recordObligation(T.Result, Span);
  };

  // Under DM_InProcess, obligations quarantined by the pool are deferred
  // here and rerun in-process *after* the pool stops: running Z3 on a
  // parent thread while the pool can still fork replacements would let a
  // forked child inherit a mid-flight allocator or solver lock and
  // wedge until the watchdog reaps it.
  std::mutex DeferredMutex;
  std::vector<size_t> Deferred;

  auto RunTask = [&](size_t Idx) {
    if (!Workers) {
      RunInProcess(Idx);
      return;
    }
    auto [CI, TI] = Flat[Idx];
    PreparedCheck &PC = Checks[CI];
    ObligationTask &T = PC.Tasks[TI];
    support::TraceIdScope IdScope(SuiteTraceId);
    // Per-obligation span: one lane-local event per prover job, with
    // deterministic args only (verdict, attempts, rlimit — wall time
    // lives in the span duration, which equivalence tests ignore).
    support::TraceSpan Span("checker", "obligation");
    if (Span.enabled()) {
      Span.arg("def", PC.Report.Name);
      Span.arg("ob", T.Name);
    }
    int64_t Left = BudgetLeft(PC);
    if (Left == 0) {
      T.Result = budgetExhausted(T.Name);
      recordObligation(T.Result, Span);
      return;
    }
    // The worker child opens the fault scope (per request, so retried
    // obligations redraw the same decisions); the parent only
    // supervises.
    T.Result = Workers->run(Idx, T.Name, T.FaultKey, Left, SuiteTraceId);
    if (T.Result.Err.Kind == ErrorKind::EK_WorkerCrash &&
        Policy.Degraded == DegradedMode::DM_InProcess) {
      // Opt-in last resort: answer beats isolation. Deferred past the
      // pool's lifetime (see above); the final result is recorded there.
      std::lock_guard<std::mutex> Lock(DeferredMutex);
      Deferred.push_back(Idx);
      return;
    }
    recordObligation(T.Result, Span);
  };

  // Inline-mode pools and the no-pool case both run the flat list in
  // index order on this thread — exactly the pre-parallel sequential
  // checker.
  if (Pool && !Pool->inlineMode())
    Pool->parallelFor(Flat.size(), RunTask);
  else
    for (size_t I = 0; I < Flat.size(); ++I)
      RunTask(I);

  if (Workers) {
    Workers->stop();
    if (!Deferred.empty()) {
      // worker.* fault sites live only in the worker loop, so injected
      // crashes do not re-fire in-process — but a genuinely crashing
      // prover now takes the pipeline down, which is what DM_InProcess
      // trades for an answer.
      std::sort(Deferred.begin(), Deferred.end());
      support::metricAdd("worker.fallback_inprocess", Deferred.size());
      auto RunDeferred = [&](size_t I) { RunInProcess(Deferred[I]); };
      if (Pool && !Pool->inlineMode())
        Pool->parallelFor(Deferred.size(), RunDeferred);
      else
        for (size_t I = 0; I < Deferred.size(); ++I)
          RunDeferred(I);
    }
  }

  // Reassemble reports in input order: collection order never depends on
  // which thread finished first.
  std::vector<CheckReport> Out;
  Out.reserve(Checks.size());
  for (PreparedCheck &PC : Checks) {
    if (!PC.CacheHit) {
      for (ObligationTask &T : PC.Tasks) {
        PC.Report.TotalSeconds += T.Result.Seconds;
        PC.Report.Obligations.push_back(std::move(T.Result));
      }
      finalizeVerdict(PC.Report);
      if (Policy.CacheVerdicts && PC.Cacheable)
        cacheStore(PC.Key, PC.Report);
    }
    Out.push_back(std::move(PC.Report));
  }
  return Out;
}

std::vector<CheckReport> SoundnessChecker::checkSuite(
    const std::vector<PureAnalysis> &SuiteAnalyses,
    const std::vector<Optimization> &SuiteOptimizations) {
  std::vector<PreparedCheck> Checks;
  Checks.reserve(SuiteAnalyses.size() + SuiteOptimizations.size());
  for (const PureAnalysis &A : SuiteAnalyses)
    Checks.push_back(prepareAnalysis(A));
  for (const Optimization &O : SuiteOptimizations)
    Checks.push_back(prepareOptimization(O));
  return runPrepared(std::move(Checks));
}
