//===- ProverWorkerPool.cpp -----------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/ProverWorkerPool.h"

#include "support/Errors.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include <sys/wait.h>

using namespace cobalt;
using namespace cobalt::checker;
using support::ErrorKind;
using support::IoStatus;
using support::Subprocess;

namespace {

/// Replacement-fork backoff: exponential in the attempt number with a
/// small deterministic stagger derived from the obligation key, so a
/// crash storm across threads neither busy-loops fork() nor thunders in
/// lockstep. Deterministic on purpose — retry timing must not perturb
/// verdicts, and it does not: only wall time varies.
void backoff(unsigned Attempt, uint64_t Key) {
  unsigned BaseMs = std::min(200u, 10u << std::min(Attempt, 5u));
  unsigned JitterMs =
      static_cast<unsigned>((Key ^ (Key >> 17)) % 13) + Attempt;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(BaseMs + JitterMs));
}

std::string describeExit(int WaitStatus) {
  if (WaitStatus < 0)
    return "not reaped";
  if (WIFEXITED(WaitStatus))
    return "exit " + std::to_string(WEXITSTATUS(WaitStatus));
  if (WIFSIGNALED(WaitStatus))
    return "signal " + std::to_string(WTERMSIG(WaitStatus));
  return "status " + std::to_string(WaitStatus);
}

} // namespace

ProverWorkerPool::ProverWorkerPool(const Config &C, JobRunner Run)
    : C(C), Run(std::move(Run)) {
  this->C.Workers = std::max(1u, C.Workers);
}

ProverWorkerPool::~ProverWorkerPool() { stop(); }

int ProverWorkerPool::childLoop(int SocketFd) {
  std::string Req;
  while (Subprocess::readFrameBlocking(SocketFd, Req) == IoStatus::IO_Ok) {
    std::istringstream In(Req);
    size_t Index = 0;
    uint64_t Key = 0;
    long long RemainingMs = -1;
    uint64_t TraceId = 0;
    int TraceWanted = 0;
    In >> Index >> std::hex >> Key >> std::dec >> RemainingMs >>
        std::hex >> TraceId >> std::dec >> TraceWanted;
    if (!In)
      return 2; // malformed request: a parent bug, not a prover crash

    // Fresh fault scope per request: ordinals restart at 1, so the same
    // obligation draws the same fault decision on every retry and at
    // every --jobs width. These sites model the prover failure modes the
    // watchdog must contain.
    support::ScopedFaultKey Scope(Key);
    if (support::faultFires(support::faults::WorkerCrash))
      return 42; // Subprocess::spawn _exits with this
    if (support::faultFires(support::faults::WorkerHang))
      for (;;)
        std::this_thread::sleep_for(std::chrono::seconds(1));
    if (support::faultFires(support::faults::WorkerOom)) {
      // Grow the resident set until the rss watchdog reacts; cap the hog
      // so a run without an rss budget falls to the wall watchdog
      // instead of pressuring the host.
      std::vector<std::unique_ptr<char[]>> Hog;
      constexpr size_t ChunkBytes = 4u << 20, CapBytes = 1u << 30;
      while (Hog.size() * ChunkBytes < CapBytes) {
        Hog.push_back(std::make_unique<char[]>(ChunkBytes));
        std::memset(Hog.back().get(), 0x5a, ChunkBytes);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      for (;;)
        std::this_thread::sleep_for(std::chrono::seconds(1));
    }

    // Fresh telemetry session per request: the fork's copy-on-write view
    // of the parent recorder is a dead end (its writes never travel
    // back), so the child records into its own buffer and ships it in
    // the response frame. The ambient trace ID stitches the child's
    // spans to the request that dispatched them.
    support::Telemetry ChildTelem;
    ChildTelem.TraceEnabled = TraceWanted != 0;
    support::TelemetryScope TelemScope(&ChildTelem);
    support::TraceIdScope IdScope(TraceId);
    // One thread per child: lane 0, in the child's own pid track.
    support::TraceRecorder::setCurrentLane(0);
    ObligationResult R;
    {
      support::TraceSpan Span("worker", "discharge");
      R = Run(Index, static_cast<int64_t>(RemainingMs));
      if (Span.enabled())
        Span.arg("ob", R.Name);
    }
    std::string Resp = serializeObligationResult(R);
    if (TraceWanted) {
      // Span buffer rides behind a sentinel line the obresult parser
      // never emits; the parent splits before deserializing.
      Resp += "spans 1\n";
      Resp += ChildTelem.Trace.serializeEvents();
    }
    if (support::faultFires(support::faults::WorkerPartialWrite)) {
      // A torn response: header promising more bytes than follow. The
      // parent must classify this as a crash, never surface the prefix.
      Subprocess::writeTornFrame(SocketFd, Resp);
      return 43;
    }
    if (!Subprocess::writeFrame(SocketFd, Resp))
      return 3; // parent went away
  }
  return 0; // clean shutdown: parent closed its end
}

ProverWorkerPool::WorkerPtr ProverWorkerPool::spawnOne() {
  auto W = std::make_unique<Subprocess>();
  std::vector<int> Siblings;
  {
    std::lock_guard<std::mutex> Lock(M);
    Siblings = AllFds;
  }
  bool Ok = W->spawn([this](int Fd) { return childLoop(Fd); }, Siblings);
  if (!Ok)
    return nullptr;
  {
    std::lock_guard<std::mutex> Lock(M);
    AllFds.push_back(W->socketFd());
    ++S.Spawns;
  }
  support::metricAdd("worker.spawns");
  support::flightNote("worker.spawn",
                      "pid " + std::to_string(W->pid()));
  return W;
}

bool ProverWorkerPool::start() {
  for (unsigned I = 0; I < C.Workers; ++I) {
    WorkerPtr W = spawnOne();
    if (!W)
      break;
    std::lock_guard<std::mutex> Lock(M);
    Free.push_back(std::move(W));
    ++Live;
  }
  std::lock_guard<std::mutex> Lock(M);
  return Live > 0;
}

void ProverWorkerPool::stop() {
  std::vector<WorkerPtr> Doomed;
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopped = true;
    Doomed.swap(Free);
    Live -= static_cast<unsigned>(Doomed.size());
  }
  Cv.notify_all();
  for (WorkerPtr &W : Doomed)
    discard(std::move(W));
}

ProverWorkerPool::WorkerPtr ProverWorkerPool::acquire() {
  for (;;) {
    bool NeedSpawn = false;
    {
      std::unique_lock<std::mutex> Lock(M);
      Cv.wait(Lock, [this] {
        return Stopped || !Free.empty() || Live < C.Workers;
      });
      if (Stopped)
        return nullptr;
      if (!Free.empty()) {
        WorkerPtr W = std::move(Free.back());
        Free.pop_back();
        if (W->alive())
          return W;
        // Died idle (e.g. a previous request's delayed demise): drop it
        // and loop; the Live decrement lets us fork a replacement.
        --Live;
        Lock.unlock();
        Cv.notify_all();
        discard(std::move(W));
        continue;
      }
      ++Live; // reserve the slot before forking outside the lock
      NeedSpawn = true;
    }
    if (NeedSpawn) {
      WorkerPtr W = spawnOne();
      if (W)
        return W;
      std::lock_guard<std::mutex> Lock(M);
      --Live;
      Cv.notify_all();
      return nullptr;
    }
  }
}

void ProverWorkerPool::release(WorkerPtr W) {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Stopped) {
      Free.push_back(std::move(W));
      Cv.notify_one();
      return;
    }
    --Live;
  }
  discard(std::move(W));
}

void ProverWorkerPool::discard(WorkerPtr W) {
  if (!W)
    return;
  int Fd = W->socketFd();
  W->kill();
  std::lock_guard<std::mutex> Lock(M);
  AllFds.erase(std::remove(AllFds.begin(), AllFds.end(), Fd),
               AllFds.end());
}

ObligationResult ProverWorkerPool::run(size_t Index,
                                       const std::string &Name,
                                       uint64_t FaultKey,
                                       int64_t RemainingMs,
                                       uint64_t TraceId) {
  support::Telemetry *T = support::Telemetry::active();
  const bool TraceWanted = T && T->TraceEnabled;
  std::ostringstream Req;
  Req << Index << " " << std::hex << FaultKey << std::dec << " "
      << RemainingMs << " " << std::hex << TraceId << std::dec << " "
      << (TraceWanted ? 1 : 0);
  const std::string Frame = Req.str();
  const long RssLimit =
      C.RssMb ? static_cast<long>(C.RssMb) * (1l << 20) : 0;

  std::string LastWhy = "no worker available";
  for (unsigned Attempt = 0; Attempt <= C.MaxRestarts; ++Attempt) {
    if (Attempt)
      backoff(Attempt, FaultKey);
    auto AcquireStart = std::chrono::steady_clock::now();
    WorkerPtr W = acquire();
    if (!W)
      break;
    if (Attempt) {
      // Recovery latency: backoff excluded, fork + books included.
      support::metricAdd("worker.restarts");
      support::metricObserve(
          "worker.respawn_ms",
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - AcquireStart)
              .count());
      support::flightNote("worker.respawn",
                          Name + " attempt " + std::to_string(Attempt),
                          TraceId);
      std::lock_guard<std::mutex> Lock(M);
      ++S.Restarts;
    }

    std::string Resp;
    IoStatus St = W->writeFrame(Frame)
                      ? W->readFrame(Resp, C.WallMs, RssLimit)
                      : IoStatus::IO_Error;
    if (St == IoStatus::IO_Ok) {
      // The child's span buffer rides behind a sentinel line; split it
      // off before handing the payload to the obresult parser.
      std::string Spans;
      static constexpr char Marker[] = "\nspans 1\n";
      if (size_t Pos = Resp.find(Marker); Pos != std::string::npos) {
        Spans = Resp.substr(Pos + sizeof(Marker) - 1);
        Resp.resize(Pos + 1);
      }
      if (std::optional<ObligationResult> R =
              deserializeObligationResult(Resp)) {
        if (TraceWanted && !Spans.empty()) {
          T->Trace.importSerialized(Spans, W->pid());
          T->Trace.setProcessName(W->pid(), "prover-worker");
        }
        release(std::move(W));
        return *R;
      }
      St = IoStatus::IO_Error; // decodable frame, undecodable payload
      LastWhy = "undecodable worker response";
    }

    // The lease failed: classify, kill, replace. The kill-then-reap in
    // discard() also recovers the exit status for the message.
    const char *Metric = "worker.crashes";
    switch (St) {
    case IoStatus::IO_Timeout:
      LastWhy = "watchdog: wall budget (" + std::to_string(C.WallMs) +
                " ms) exceeded";
      Metric = "worker.kills_wall";
      break;
    case IoStatus::IO_RssExceeded:
      LastWhy = "watchdog: rss budget (" + std::to_string(C.RssMb) +
                " MB) exceeded";
      Metric = "worker.kills_rss";
      break;
    case IoStatus::IO_Eof:
      W->kill(); // reaps (blocking), recording the exit status
      LastWhy = "worker died mid-request (" +
                describeExit(W->exitStatus()) + ")";
      break;
    default:
      if (LastWhy == "no worker available")
        LastWhy = "worker I/O error";
      break;
    }
    support::metricAdd(Metric);
    support::flightNote("worker.kill", Name + ": " + LastWhy, TraceId);
    {
      std::lock_guard<std::mutex> Lock(M);
      if (St == IoStatus::IO_Timeout)
        ++S.KillsWall;
      else if (St == IoStatus::IO_RssExceeded)
        ++S.KillsRss;
      else
        ++S.Crashes;
      --Live;
    }
    discard(std::move(W));
    Cv.notify_all();
  }

  // Quarantine: this obligation has consumed its worker budget. Degrade
  // it to unproven — never cached, never fatal — and let the run finish.
  support::metricAdd("worker.quarantined");
  support::flightNote("worker.quarantine", Name + ": " + LastWhy,
                      TraceId);
  {
    std::lock_guard<std::mutex> Lock(M);
    ++S.Quarantined;
  }
  ObligationResult R;
  R.Name = Name;
  R.St = ObligationResult::Status::OS_Unknown;
  R.Err = support::Error(
      ErrorKind::EK_WorkerCrash,
      "quarantined after " + std::to_string(C.MaxRestarts + 1) +
          " worker attempts; last failure: " + LastWhy);
  return R;
}

ProverWorkerPool::Stats ProverWorkerPool::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return S;
}
