//===- Daemon.h - The cobaltd server loop ----------------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived server half of verification-as-a-service (DESIGN.md
/// §13): accepts AF_UNIX connections, reads length-prefixed JSON request
/// frames (service/Protocol.h), drives one shared api::CobaltService,
/// and answers with the same serialized reports cobaltc emits.
///
/// Threading: one accept thread plus one thread per live connection. A
/// connection's frames are answered strictly in order (pipelining =
/// request batching); frames on *different* connections execute
/// concurrently and the service deduplicates overlapping obligations —
/// the first requester proves, the rest await the shared result.
///
/// The daemon holds a process-lifetime TelemetryScope over the service's
/// telemetry session while running: concurrent per-request scopes then
/// all install the same pointer, so scope teardown in any order cannot
/// drop another request's counters.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SERVICE_DAEMON_H
#define COBALT_SERVICE_DAEMON_H

#include "api/Service.h"
#include "support/Expected.h"
#include "support/Telemetry.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace cobalt {
namespace service {

class JsonValue;

class Daemon {
public:
  /// \p Svc must be fully built. The daemon owns the socket file: it
  /// unlinks a stale one at start() and removes its own at stop().
  Daemon(std::shared_ptr<api::CobaltService> Svc, std::string SocketPath);
  ~Daemon();
  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds, listens, and spawns the accept thread. EK_IoError when the
  /// socket cannot be created (path too long for sockaddr_un, bind
  /// refused, ...). Idempotence: a second start() fails.
  support::Error start();

  /// Blocks until stop() is called (by any thread, a signal handler via
  /// requestStop(), or a client's "shutdown" command).
  void wait();

  /// Async-signal-safe stop request: flags the loops and lets wait()
  /// return; safe to call from a signal handler.
  void requestStop() { Stopping.store(true, std::memory_order_relaxed); }

  /// Stops accepting, closes live connections, joins all threads, and
  /// removes the socket file. Idempotent.
  void stop();

  const std::string &socketPath() const { return SocketPath; }
  bool running() const { return Running.load(std::memory_order_relaxed); }

  /// Where flight-recorder dumps go (--flight-recorder=). Set before
  /// start(); empty = dumps are returned over the wire but never hit
  /// disk. The file is overwritten on every dump — the *latest* black
  /// box is the one a post-mortem wants.
  void setFlightRecorderPath(std::string Path) {
    FlightPath = std::move(Path);
  }

  /// Snapshots the service's flight recorder: returns the black-box JSON
  /// (tagged with \p Reason) and writes it to the configured path, if
  /// any. Called on worker quarantine, an explicit "dump" frame, and by
  /// cobaltd on SIGTERM / degraded exit. Thread-safe.
  std::string dumpFlightRecorder(const std::string &Reason);

private:
  void acceptLoop();
  void serveConnection(int Fd);
  /// One request frame in, one response frame out. Sets \p Shutdown when
  /// the frame was a shutdown command.
  std::string handleFrame(const std::string &Payload, bool &Shutdown);

  std::string handleCheck(const JsonValue &Req, uint64_t TraceId);
  std::string handleRun(const JsonValue &Req, uint64_t TraceId);
  std::string handleValidate(const JsonValue &Req, uint64_t TraceId);
  std::string handlePing();
  std::string handleStats();
  std::string handleDump();

  std::shared_ptr<api::CobaltService> Svc;
  std::string SocketPath;
  std::string FlightPath; ///< Flight-recorder dump file; empty = none.
  std::mutex FlightMutex; ///< Serializes dump-file writes.
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Running{false};
  std::optional<support::TelemetryScope> LifetimeScope;
  std::thread Acceptor;
  std::mutex ConnMutex;
  std::vector<std::thread> ConnThreads;
  std::vector<int> ConnFds;
  std::mutex StopMutex;
  std::condition_variable StopCv;
  bool Stopped = false;
};

} // namespace service
} // namespace cobalt

#endif // COBALT_SERVICE_DAEMON_H
