//===- Protocol.cpp -------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "api/ReportJson.h"

#include <cctype>
#include <cstdlib>

using namespace cobalt;
using namespace cobalt::service;

int64_t JsonValue::asI64(int64_t Default) const {
  if (K != Kind::JK_Number)
    return Default;
  return std::strtoll(Raw.c_str(), nullptr, 10);
}

uint64_t JsonValue::asU64(uint64_t Default) const {
  if (K != Kind::JK_Number)
    return Default;
  if (!Raw.empty() && Raw[0] == '-')
    return Default;
  return std::strtoull(Raw.c_str(), nullptr, 10);
}

std::vector<std::string> JsonValue::stringList(std::string_view Name) const {
  std::vector<std::string> Out;
  const JsonValue *V = find(Name);
  if (!V || V->K != Kind::JK_Array)
    return Out;
  for (const JsonValue &Item : V->Items)
    if (Item.K == Kind::JK_String)
      Out.push_back(Item.Str);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser. Recursive descent over a cursor; depth-limited so a hostile
// frame cannot blow the stack.
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  std::string_view Text;
  size_t Pos = 0;
  std::string Err;
  static constexpr unsigned MaxDepth = 64;

  bool fail(const char *Why) {
    if (Err.empty())
      Err = std::string(Why) + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return fail("bad literal");
    Pos += Word.size();
    return true;
  }

  void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= Text.size())
          return fail("truncated escape");
        char E = Text[++Pos];
        ++Pos;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return fail("truncated \\u escape");
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          appendUtf8(Out, Code);
          break;
        }
        default:
          return fail("unknown escape");
        }
        continue;
      }
      Out += C;
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = JsonValue::Kind::JK_Object;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        JsonValue Member;
        if (!parseValue(Member, Depth + 1))
          return false;
        Out.Members.emplace_back(std::move(Key), std::move(Member));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = JsonValue::Kind::JK_Array;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        JsonValue Item;
        if (!parseValue(Item, Depth + 1))
          return false;
        Out.Items.push_back(std::move(Item));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      Out.K = JsonValue::Kind::JK_String;
      return parseString(Out.Str);
    }
    if (C == 't') {
      Out.K = JsonValue::Kind::JK_Bool;
      Out.B = true;
      return literal("true");
    }
    if (C == 'f') {
      Out.K = JsonValue::Kind::JK_Bool;
      Out.B = false;
      return literal("false");
    }
    if (C == 'n') {
      Out.K = JsonValue::Kind::JK_Null;
      return literal("null");
    }
    if (C == '-' || (C >= '0' && C <= '9')) {
      Out.K = JsonValue::Kind::JK_Number;
      size_t Start = Pos;
      if (Text[Pos] == '-')
        ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("bad number");
      while (Pos < Text.size() &&
             (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
              Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      Out.Raw = std::string(Text.substr(Start, Pos - Start));
      return true;
    }
    return fail("unexpected character");
  }
};

} // namespace

std::optional<JsonValue> service::parseJson(std::string_view Text,
                                            std::string *Err) {
  Parser P{Text};
  JsonValue Root;
  if (!P.parseValue(Root, 0)) {
    if (Err)
      *Err = P.Err;
    return std::nullopt;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (Err)
      *Err = "trailing garbage at offset " + std::to_string(P.Pos);
    return std::nullopt;
  }
  return Root;
}

//===----------------------------------------------------------------------===//
// Request builders.
//===----------------------------------------------------------------------===//

static void appendStringArray(std::string &Out, const char *Name,
                              const std::vector<std::string> &Items) {
  Out += std::string(", \"") + Name + "\": [";
  for (size_t I = 0; I < Items.size(); ++I) {
    if (I)
      Out += ", ";
    Out += "\"" + api::jsonEscape(Items[I]) + "\"";
  }
  Out += "]";
}

std::string service::makePingRequest() { return "{\"cmd\": \"ping\"}"; }

std::string service::makeCheckRequest(const std::vector<std::string> &Only,
                                      unsigned Jobs, int64_t BudgetMs,
                                      uint64_t FaultSalt, uint64_t TraceId) {
  std::string Out = "{\"cmd\": \"check\"";
  if (!Only.empty())
    appendStringArray(Out, "only", Only);
  if (Jobs != 0)
    Out += ", \"jobs\": " + std::to_string(Jobs);
  if (BudgetMs >= 0)
    Out += ", \"budget_ms\": " + std::to_string(BudgetMs);
  if (FaultSalt != 0)
    Out += ", \"fault_salt\": " + std::to_string(FaultSalt);
  if (TraceId != 0)
    Out += ", \"trace_id\": " + std::to_string(TraceId);
  Out += "}";
  return Out;
}

std::string service::makeRunRequest(const std::string &ProgramText,
                                    const std::vector<std::string> &Selected,
                                    bool SelectedOnly, unsigned Jobs,
                                    uint64_t TraceId) {
  std::string Out = "{\"cmd\": \"run\", \"program\": \"" +
                    api::jsonEscape(ProgramText) + "\"";
  if (SelectedOnly) {
    appendStringArray(Out, "selected", Selected);
    Out += ", \"selected_only\": true";
  }
  if (Jobs != 0)
    Out += ", \"jobs\": " + std::to_string(Jobs);
  if (TraceId != 0)
    Out += ", \"trace_id\": " + std::to_string(TraceId);
  Out += "}";
  return Out;
}

std::string service::makeValidateRequest(const std::string &OriginalText,
                                         const std::string &CandidateText,
                                         unsigned Jobs, int64_t BudgetMs,
                                         uint64_t TraceId) {
  std::string Out = "{\"cmd\": \"validate\", \"original\": \"" +
                    api::jsonEscape(OriginalText) + "\", \"candidate\": \"" +
                    api::jsonEscape(CandidateText) + "\"";
  if (Jobs != 0)
    Out += ", \"jobs\": " + std::to_string(Jobs);
  if (BudgetMs >= 0)
    Out += ", \"budget_ms\": " + std::to_string(BudgetMs);
  if (TraceId != 0)
    Out += ", \"trace_id\": " + std::to_string(TraceId);
  Out += "}";
  return Out;
}

std::string service::makeStatsRequest() { return "{\"cmd\": \"stats\"}"; }

std::string service::makeDumpRequest() { return "{\"cmd\": \"dump\"}"; }

std::string service::makeShutdownRequest() {
  return "{\"cmd\": \"shutdown\"}";
}
