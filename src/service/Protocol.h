//===- Protocol.h - cobaltd wire protocol ----------------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cobaltd request/response protocol: uint32-length-prefixed JSON
/// frames (the same framing support::Subprocess uses for prover workers,
/// so the deadline/torn-frame machinery is shared) over an AF_UNIX
/// stream socket. Requests are flat JSON objects dispatched on "cmd":
///
///   {"cmd": "ping"}
///   {"cmd": "check", "only": ["licm"], "jobs": 0, "budget_ms": -1,
///    "fault_salt": 0, "trace_id": 1234}
///   {"cmd": "run", "program": "<IL text>", "selected": ["licm"],
///    "selected_only": true, "jobs": 0, "trace_id": 1234}
///   {"cmd": "validate", "original": "<IL text>", "candidate":
///    "<IL text>", "jobs": 0, "budget_ms": -1, "trace_id": 1234}
///   {"cmd": "stats"}
///   {"cmd": "dump"}
///   {"cmd": "shutdown"}
///
/// "trace_id" is the client's 64-bit request trace ID (decimal; 0/absent
/// = the daemon mints one). It tags every span and flight-recorder event
/// the request produces, through the service and across the prover-
/// worker fork. "dump" snapshots the daemon's flight recorder: the
/// response carries the black-box JSON inline (and the daemon also
/// writes it to --flight-recorder= when configured).
///
/// Responses carry "status": "ok" | "retry" | "error" plus
/// command-specific members ("definitions", "pipeline", "exit", ...),
/// emitted by the same api::ReportJson serializers cobaltc uses for
/// --report=json — one serializer, so N clients asking for the same
/// suite receive byte-identical documents.
///
/// Clients may pipeline: send any number of request frames before
/// reading; the server answers each connection's frames in order
/// (batching), while frames from *different* connections are served
/// concurrently and deduplicated at obligation level by the service.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SERVICE_PROTOCOL_H
#define COBALT_SERVICE_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cobalt {
namespace service {

/// Protocol revision, reported by "ping". Bump on incompatible change.
inline constexpr int ProtocolVersion = 1;

/// A parsed JSON value — the minimal DOM the daemon needs to read
/// requests and clients need to read response envelopes. Numbers keep
/// their raw spelling (fault salts are full uint64; double would drop
/// bits). Object member order is preserved.
class JsonValue {
public:
  enum class Kind { JK_Null, JK_Bool, JK_Number, JK_String, JK_Array,
                    JK_Object };

  Kind K = Kind::JK_Null;
  bool B = false;
  std::string Raw; ///< Number spelling (JK_Number only).
  std::string Str; ///< Decoded string (JK_String only).
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;

  bool isNull() const { return K == Kind::JK_Null; }

  /// Member lookup (JK_Object); nullptr when absent or not an object.
  const JsonValue *find(std::string_view Name) const {
    if (K != Kind::JK_Object)
      return nullptr;
    for (const auto &M : Members)
      if (M.first == Name)
        return &M.second;
    return nullptr;
  }

  /// Typed accessors with defaults — requests treat absent and
  /// default-valued members identically.
  int64_t asI64(int64_t Default = 0) const;
  uint64_t asU64(uint64_t Default = 0) const;
  bool asBool(bool Default = false) const {
    return K == Kind::JK_Bool ? B : Default;
  }
  std::string asString(std::string Default = {}) const {
    return K == Kind::JK_String ? Str : std::move(Default);
  }
  /// The member \p Name as a string list ([] when absent / mistyped).
  std::vector<std::string> stringList(std::string_view Name) const;
};

/// Parses one JSON document. Trailing garbage after the document is an
/// error. Returns nullopt (with a short reason in \p Err) on failure.
std::optional<JsonValue> parseJson(std::string_view Text,
                                   std::string *Err = nullptr);

/// \name Request builders (what `cobaltc client` sends).
/// @{
std::string makePingRequest();
std::string makeCheckRequest(const std::vector<std::string> &Only,
                             unsigned Jobs = 0, int64_t BudgetMs = -1,
                             uint64_t FaultSalt = 0, uint64_t TraceId = 0);
std::string makeRunRequest(const std::string &ProgramText,
                           const std::vector<std::string> &Selected,
                           bool SelectedOnly, unsigned Jobs = 0,
                           uint64_t TraceId = 0);
std::string makeValidateRequest(const std::string &OriginalText,
                                const std::string &CandidateText,
                                unsigned Jobs = 0, int64_t BudgetMs = -1,
                                uint64_t TraceId = 0);
std::string makeStatsRequest();
std::string makeDumpRequest();
std::string makeShutdownRequest();
/// @}

} // namespace service
} // namespace cobalt

#endif // COBALT_SERVICE_PROTOCOL_H
