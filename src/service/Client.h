//===- Client.h - cobaltd client connection --------------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the cobaltd protocol: connects to the daemon's
/// AF_UNIX socket and exchanges length-prefixed JSON frames. Every
/// failure — no daemon, connection refused, server wedged past the
/// deadline, connection lost mid-request — surfaces as
/// EK_Unavailable, which `cobaltc client` maps to its distinct
/// "server unreachable" exit code (5): a transport failure is never a
/// verdict.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_SERVICE_CLIENT_H
#define COBALT_SERVICE_CLIENT_H

#include "support/Expected.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cobalt {
namespace service {

class Client {
public:
  Client() = default;
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to \p SocketPath. EK_Unavailable on any failure.
  support::Error connect(const std::string &SocketPath);

  /// Sends one request frame and reads one response frame.
  /// \p DeadlineMs bounds the wait for the response (<= 0 = forever).
  support::Expected<std::string> request(const std::string &Payload,
                                         int64_t DeadlineMs = 0);

  /// Pipelines a batch: writes every frame, then reads one response per
  /// request (the server answers in order). \p DeadlineMs is the bound
  /// for the *whole batch*. On failure, responses received so far are
  /// lost — the transport is in an unknown state and the connection
  /// should be dropped.
  support::Expected<std::vector<std::string>>
  requestMany(const std::vector<std::string> &Payloads,
              int64_t DeadlineMs = 0);

  bool connected() const { return Fd != -1; }
  void close();

private:
  int Fd = -1;
};

} // namespace service
} // namespace cobalt

#endif // COBALT_SERVICE_CLIENT_H
