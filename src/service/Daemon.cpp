//===- Daemon.cpp ---------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"

#include "api/ReportJson.h"
#include "ir/Printer.h"
#include "service/Protocol.h"
#include "support/Subprocess.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cobalt;
using namespace cobalt::service;
using support::ErrorKind;

Daemon::Daemon(std::shared_ptr<api::CobaltService> Svc,
               std::string SocketPath)
    : Svc(std::move(Svc)), SocketPath(std::move(SocketPath)) {}

Daemon::~Daemon() { stop(); }

support::Error Daemon::start() {
  if (Running.load(std::memory_order_relaxed) || ListenFd != -1)
    return support::Error(ErrorKind::EK_IoError, "daemon already started");

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path))
    return support::Error(ErrorKind::EK_IoError,
                          "socket path too long: " + SocketPath);
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return support::Error(ErrorKind::EK_IoError, "socket() failed");
  // A stale socket file from a crashed daemon would make bind fail;
  // removing it is safe because connect() to a dead socket fails anyway.
  ::unlink(SocketPath.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    ::close(Fd);
    return support::Error(ErrorKind::EK_IoError,
                          "cannot bind/listen on '" + SocketPath + "'");
  }
  ListenFd = Fd;
  Running.store(true, std::memory_order_relaxed);
  // The lifetime scope that makes concurrent per-request scopes
  // value-idempotent (see the class comment).
  LifetimeScope.emplace(Svc->telemetry());
  Acceptor = std::thread([this] { acceptLoop(); });
  return {};
}

void Daemon::acceptLoop() {
  while (!Stopping.load(std::memory_order_relaxed)) {
    pollfd P{ListenFd, POLLIN, 0};
    int N = ::poll(&P, 1, /*timeout_ms=*/100);
    if (N < 0 && errno != EINTR)
      break;
    if (N <= 0 || !(P.revents & POLLIN))
      continue;
    int Conn = ::accept(ListenFd, nullptr, nullptr);
    if (Conn < 0)
      continue;
    std::lock_guard<std::mutex> Lock(ConnMutex);
    if (Stopping.load(std::memory_order_relaxed)) {
      ::close(Conn);
      break;
    }
    ConnFds.push_back(Conn);
    ConnThreads.emplace_back([this, Conn] { serveConnection(Conn); });
  }
  // Wake wait()ers: either stop() was requested or the listener died.
  Stopping.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(StopMutex);
  StopCv.notify_all();
}

void Daemon::serveConnection(int Fd) {
  std::string Payload;
  while (!Stopping.load(std::memory_order_relaxed)) {
    // Blocking read is fine: stop() shutdown(2)s the fd, turning this
    // into IO_Eof.
    support::IoStatus St = support::Subprocess::readFrameBlocking(Fd, Payload);
    if (St != support::IoStatus::IO_Ok)
      break;
    bool Shutdown = false;
    std::string Response = handleFrame(Payload, Shutdown);
    if (!support::Subprocess::writeFrame(Fd, Response))
      break;
    if (Shutdown) {
      requestStop();
      std::lock_guard<std::mutex> Lock(StopMutex);
      StopCv.notify_all();
      break;
    }
  }
  // Self-reap the fd (long-lived daemons must not accumulate fds from
  // finished connections); stop() only touches fds still registered.
  std::lock_guard<std::mutex> Lock(ConnMutex);
  for (size_t I = 0; I < ConnFds.size(); ++I)
    if (ConnFds[I] == Fd) {
      ConnFds.erase(ConnFds.begin() + static_cast<long>(I));
      break;
    }
  ::shutdown(Fd, SHUT_RDWR);
  ::close(Fd);
}

std::string Daemon::handleFrame(const std::string &Payload, bool &Shutdown) {
  std::string ParseErr;
  std::optional<JsonValue> Req = parseJson(Payload, &ParseErr);
  if (!Req || Req->K != JsonValue::Kind::JK_Object)
    return "{\"status\": \"error\", \"error\": \"parse_error\", "
           "\"reason\": \"" +
           api::jsonEscape(ParseErr.empty() ? "request is not an object"
                                            : ParseErr) +
           "\"}";
  const JsonValue *Cmd = Req->find("cmd");
  std::string Name = Cmd ? Cmd->asString() : std::string();

  // Trace context: a client-supplied trace_id is adopted verbatim; a
  // frame without one gets a freshly minted ID. Either way every span
  // and flight event this frame produces — daemon, service, and prover
  // workers across the fork — carries the same 64-bit ID.
  uint64_t TraceId = 0;
  if (const JsonValue *V = Req->find("trace_id"))
    TraceId = V->asU64();
  if (TraceId == 0)
    TraceId = support::mintTraceId();
  support::TraceIdScope IdScope(TraceId);

  // Per-request-type latency histograms (ms): the p50/p90/p99 the stats
  // frame reports per command.
  auto Start = std::chrono::steady_clock::now();
  auto Observe = [&Start](const char *Metric) {
    support::metricObserve(
        Metric, std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count());
  };

  if (Name == "ping")
    return handlePing();
  if (Name == "check") {
    support::TraceSpan Span("daemon", "check");
    std::string Resp = handleCheck(*Req, TraceId);
    Observe("service.latency.check");
    return Resp;
  }
  if (Name == "run") {
    support::TraceSpan Span("daemon", "run");
    std::string Resp = handleRun(*Req, TraceId);
    Observe("service.latency.run");
    return Resp;
  }
  if (Name == "validate") {
    support::TraceSpan Span("daemon", "validate");
    std::string Resp = handleValidate(*Req, TraceId);
    Observe("service.latency.validate");
    return Resp;
  }
  if (Name == "stats") {
    support::TraceSpan Span("daemon", "stats");
    std::string Resp = handleStats();
    Observe("service.latency.stats");
    return Resp;
  }
  if (Name == "dump")
    return handleDump();
  if (Name == "shutdown") {
    Shutdown = true;
    return "{\"status\": \"ok\", \"stopping\": true}";
  }
  return "{\"status\": \"error\", \"error\": \"parse_error\", "
         "\"reason\": \"unknown cmd '" +
         api::jsonEscape(Name) + "'\"}";
}

std::string Daemon::handlePing() {
  return "{\"status\": \"ok\", \"protocol\": " +
         std::to_string(ProtocolVersion) +
         ", \"definitions\": " + std::to_string(Svc->definitionCount()) +
         "}";
}

std::string Daemon::handleCheck(const JsonValue &Req, uint64_t TraceId) {
  api::CheckRequest CR;
  CR.Only = Req.stringList("only");
  CR.TraceId = TraceId;
  if (const JsonValue *V = Req.find("jobs"))
    CR.Jobs = static_cast<unsigned>(V->asU64());
  if (const JsonValue *V = Req.find("budget_ms"))
    CR.BudgetMs = V->asI64(-1);
  if (const JsonValue *V = Req.find("fault_salt"))
    CR.FaultKeySalt = V->asU64();

  api::CheckResponse R = Svc->check(CR);
  // The black box earns its keep exactly here: containment degraded a
  // verdict, so preserve the events that led up to it before they are
  // overwritten by newer traffic.
  if (R.Suite.Quarantined != 0)
    dumpFlightRecorder("worker_quarantine");
  if (R.Status == api::ResponseStatus::RS_Retry)
    return "{\"status\": \"retry\", \"reason\": \"" +
           api::jsonEscape(R.Err.Message) + "\"}";
  if (R.Status == api::ResponseStatus::RS_Error)
    return "{\"status\": \"error\", \"error\": \"" +
           std::string(R.Err.kindName()) + "\", \"reason\": \"" +
           api::jsonEscape(R.Err.Message) + "\"}";

  std::string Out = "{\n  \"status\": \"ok\",\n";
  api::emitDefinitionsJson(Out, R.Suite.Reports);
  Out += ",\n  \"remarks\": [";
  for (size_t I = 0; I < R.Remarks.size(); ++I) {
    if (I)
      Out += ", ";
    Out += "\"" + api::jsonEscape(R.Remarks[I].str()) + "\"";
  }
  Out += "],\n  \"exit\": " +
         std::to_string(api::CobaltService::exitCodeFor(
             R.Suite, /*PipelineDegraded=*/false)) +
         "\n}";
  return Out;
}

std::string Daemon::handleRun(const JsonValue &Req, uint64_t TraceId) {
  const JsonValue *Program = Req.find("program");
  if (!Program || Program->K != JsonValue::Kind::JK_String)
    return "{\"status\": \"error\", \"error\": \"parse_error\", "
           "\"reason\": \"run requires a 'program' string\"}";
  support::Expected<ir::Program> Prog = Svc->parseProgram(Program->Str);
  if (!Prog)
    return "{\"status\": \"error\", \"error\": \"" +
           std::string(Prog.error().kindName()) + "\", \"reason\": \"" +
           api::jsonEscape(Prog.error().Message) + "\"}";

  api::PipelineRequest PR;
  PR.Prog = Prog.take();
  PR.TraceId = TraceId;
  PR.PassNames = Req.stringList("selected");
  if (const JsonValue *V = Req.find("selected_only"))
    PR.SelectedOnly = V->asBool();
  if (const JsonValue *V = Req.find("jobs"))
    PR.Jobs = static_cast<unsigned>(V->asU64());

  api::PipelineResponse R = Svc->run(std::move(PR));
  std::string Out = "{\n  \"status\": \"ok\",\n";
  api::emitPipelineJson(Out, R.Result.Reports);
  Out += ",\n  \"applied\": " + std::to_string(R.Result.Applied);
  Out += ",\n  \"degraded\": ";
  Out += R.Result.Degraded ? "true" : "false";
  Out += ",\n  \"optimized_il\": \"" + api::jsonEscape(ir::toString(R.Prog)) +
         "\"";
  Out += ",\n  \"exit\": " + std::to_string(R.Result.Degraded ? 3 : 0);
  Out += "\n}";
  return Out;
}

std::string Daemon::handleValidate(const JsonValue &Req, uint64_t TraceId) {
  const JsonValue *Original = Req.find("original");
  const JsonValue *Candidate = Req.find("candidate");
  if (!Original || Original->K != JsonValue::Kind::JK_String ||
      !Candidate || Candidate->K != JsonValue::Kind::JK_String)
    return "{\"status\": \"error\", \"error\": \"parse_error\", "
           "\"reason\": \"validate requires 'original' and 'candidate' "
           "strings\"}";
  support::Expected<ir::Program> Orig = Svc->parseProgram(Original->Str);
  if (!Orig)
    return "{\"status\": \"error\", \"error\": \"" +
           std::string(Orig.error().kindName()) + "\", \"reason\": \"" +
           api::jsonEscape("original: " + Orig.error().Message) + "\"}";
  support::Expected<ir::Program> Cand = Svc->parseProgram(Candidate->Str);
  if (!Cand)
    return "{\"status\": \"error\", \"error\": \"" +
           std::string(Cand.error().kindName()) + "\", \"reason\": \"" +
           api::jsonEscape("candidate: " + Cand.error().Message) + "\"}";

  api::ValidateRequest VR;
  VR.Original = Orig.take();
  VR.Candidate = Cand.take();
  VR.TraceId = TraceId;
  if (const JsonValue *V = Req.find("jobs"))
    VR.Jobs = static_cast<unsigned>(V->asU64());
  if (const JsonValue *V = Req.find("budget_ms"))
    VR.BudgetMs = V->asI64(-1);
  if (const JsonValue *V = Req.find("fault_salt"))
    VR.FaultKeySalt = V->asU64();

  api::ValidateResponse R = Svc->validate(std::move(VR));
  if (R.Status == api::ResponseStatus::RS_Error)
    return "{\"status\": \"error\", \"error\": \"" +
           std::string(R.Err.kindName()) + "\", \"reason\": \"" +
           api::jsonEscape(R.Err.Message) + "\"}";

  std::string Out = "{\n  \"status\": \"ok\",\n";
  api::emitValidationJson(Out, R.Report);
  Out += ",\n  \"exit\": " +
         std::to_string(api::CobaltService::exitCodeFor(R.Report));
  Out += "\n}";
  return Out;
}

std::string Daemon::handleStats() {
  std::string Out = "{\"status\": \"ok\", \"definitions\": " +
                    std::to_string(Svc->definitionCount());
  Out += ", \"cache_hits\": " + std::to_string(Svc->cacheHits());
  if (support::Telemetry *T = Svc->telemetry()) {
    // The metrics registry renders itself as a JSON document; embed it
    // raw (it is already valid JSON with byte-stable key order).
    Out += ", \"metrics\": " + T->Metrics.json();
  }
  Out += "}";
  return Out;
}

std::string Daemon::dumpFlightRecorder(const std::string &Reason) {
  support::Telemetry *T = Svc->telemetry();
  std::string Json = T ? T->Flight.json(Reason.c_str())
                       : std::string("{\"flightEvents\": []}\n");
  std::lock_guard<std::mutex> Lock(FlightMutex);
  if (!FlightPath.empty()) {
    std::ofstream Out(FlightPath, std::ios::trunc);
    Out << Json;
  }
  return Json;
}

std::string Daemon::handleDump() {
  std::string Flight = dumpFlightRecorder("dump_frame");
  while (!Flight.empty() &&
         (Flight.back() == '\n' || Flight.back() == ' '))
    Flight.pop_back();
  return "{\"status\": \"ok\", \"flight\": " + Flight + "}";
}

void Daemon::wait() {
  std::unique_lock<std::mutex> Lock(StopMutex);
  StopCv.wait(Lock, [this] {
    return Stopping.load(std::memory_order_relaxed) || Stopped;
  });
}

void Daemon::stop() {
  Stopping.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(StopMutex);
    StopCv.notify_all();
  }
  if (Acceptor.joinable())
    Acceptor.join();
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RDWR);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (int Fd : ConnFds)
      ::close(Fd);
    ConnFds.clear();
  }
  if (ListenFd != -1) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(SocketPath.c_str());
  }
  LifetimeScope.reset();
  Running.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(StopMutex);
  Stopped = true;
  StopCv.notify_all();
}
