//===- Client.cpp ---------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "support/Subprocess.h"

#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cobalt;
using namespace cobalt::service;
using support::ErrorKind;

Client::~Client() { close(); }

void Client::close() {
  if (Fd != -1) {
    ::close(Fd);
    Fd = -1;
  }
}

support::Error Client::connect(const std::string &SocketPath) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path))
    return support::Error(ErrorKind::EK_Unavailable,
                          "socket path too long: " + SocketPath);
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return support::Error(ErrorKind::EK_Unavailable, "socket() failed");
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(S);
    return support::Error(ErrorKind::EK_Unavailable,
                          "cannot connect to cobaltd at '" + SocketPath +
                              "' (is the daemon running?)");
  }
  Fd = S;
  return {};
}

support::Expected<std::string> Client::request(const std::string &Payload,
                                               int64_t DeadlineMs) {
  std::vector<std::string> One{Payload};
  support::Expected<std::vector<std::string>> R =
      requestMany(One, DeadlineMs);
  if (!R)
    return R.error();
  return std::move((*R)[0]);
}

support::Expected<std::vector<std::string>>
Client::requestMany(const std::vector<std::string> &Payloads,
                    int64_t DeadlineMs) {
  if (Fd == -1)
    return support::Error(ErrorKind::EK_Unavailable, "not connected");
  for (const std::string &P : Payloads)
    if (!support::Subprocess::writeFrame(Fd, P)) {
      close();
      return support::Error(ErrorKind::EK_Unavailable,
                            "connection lost while sending request");
    }
  std::vector<std::string> Responses;
  Responses.reserve(Payloads.size());
  for (size_t I = 0; I < Payloads.size(); ++I) {
    std::string Out;
    support::IoStatus St =
        support::Subprocess::readFrameDeadline(Fd, Out, DeadlineMs);
    if (St != support::IoStatus::IO_Ok) {
      close();
      return support::Error(
          ErrorKind::EK_Unavailable,
          St == support::IoStatus::IO_Timeout
              ? "cobaltd did not answer within the deadline"
              : "connection lost while awaiting response");
    }
    Responses.push_back(std::move(Out));
  }
  return Responses;
}
