//===- Optimizations.h - The Cobalt optimization suite ----------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizations and analyses the paper reports implementing and
/// proving sound (§1, §2, §5.1): constant propagation and folding, copy
/// propagation, common subexpression elimination (arithmetic and
/// redundant-load forms), branch folding, dead assignment elimination,
/// partial redundancy elimination (as a code-duplication pass + CSE +
/// self-assignment removal, §2.3), and a simple pointer (taint) analysis
/// (§2.4). Loop-invariant code motion arises by composing the PRE
/// pieces (§6 "Expressiveness").
///
/// Each returns a fresh Optimization/PureAnalysis value carrying the
/// label definitions it needs.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_OPTS_OPTIMIZATIONS_H
#define COBALT_OPTS_OPTIMIZATIONS_H

#include "core/Optimization.h"

#include <vector>

namespace cobalt {
namespace opts {

//===----------------------------------------------------------------------===//
// Forward optimizations.
//===----------------------------------------------------------------------===//

/// Example 1: X := Y ⇒ X := C after Y := C, through ¬mayDef(Y).
Optimization constProp();

/// Constant propagation with folding at the definition: after Y := E
/// where E folds to C (the computes builtin), X := Y ⇒ X := C.
Optimization constPropFold();

/// As constProp but using mayDefPrecise (consumes notTainted labels) —
/// the §2.4 "less conservative in the face of pointers" variant.
Optimization constPropPrecise();

/// Copy propagation: X := Y ⇒ X := Z after Y := Z, with neither Y nor Z
/// redefined in between.
Optimization copyProp();

/// In-place constant folding, one rule per operator: X := C1 op C2 ⇒
/// X := C3 where C3 = fold(C1 op C2). The enabling condition
/// computes(C1 op C2, C3) is node-independent, so any predecessor
/// enables it.
Optimization constFoldAdd();
Optimization constFoldMul();

/// Algebraic simplifications via node-independent term-equality guards:
/// X := Y + C ⇒ X := Y when C = 0, X := Y * C ⇒ X := Y when C = 1,
/// X := Y * C ⇒ X := C when C = 0 (Y must still evaluate — the rewrite
/// can only make the program *more* defined, which is fine), and
/// X := Y - Y ⇒ X := 0.
Optimization simplifyAddZero();
Optimization simplifyMulOne();
Optimization simplifyMulZero();
Optimization simplifySubSelf();

/// Common subexpression elimination over pure expressions:
/// Y := E ⇒ Y := X after X := E (E not using X), with E and X unchanged.
Optimization cse();

/// Store-to-load forwarding: X := *P ⇒ X := Y after *P := Y, with *P and
/// Y unchanged.
Optimization storeForward();

/// Redundant-load elimination (the §6 example): Y := *P ⇒ Y := X after
/// X := *P, with *P preserved via derefUnchanged (requires notTainted).
Optimization loadCse();

/// Branch folding: if Y goto I1 else I2 ⇒ if C goto I1 else I2 after
/// Y := C.
Optimization branchFold();

/// Branch direction folding: if C goto I1 else I2 ⇒ if 1 goto I1 else I1
/// when C ≠ 0 (respectively ⇒ if 1 goto I2 else I2 when C = 0).
Optimization branchTaken();
Optimization branchNotTaken();

//===----------------------------------------------------------------------===//
// Backward optimizations.
//===----------------------------------------------------------------------===//

/// Example 2: dead assignment elimination, X := E ⇒ skip.
Optimization deadAssignElim();

/// Self-assignment removal: X := X ⇒ skip (used after CSE in the PRE
/// pipeline, §2.3).
Optimization selfAssignRemoval();

/// Redundant-branch simplification: if B goto I1 else I1 ⇒
/// if 1 goto I1 else I1 (drops the dead use of B).
Optimization redundantBranchElim();

/// Example 3: PRE's code-duplication pass, skip ⇒ X := E, with a
/// profitability heuristic selecting insertions that convert partial
/// redundancies into full ones.
Optimization preDuplicate();

//===----------------------------------------------------------------------===//
// Pure analyses.
//===----------------------------------------------------------------------===//

/// Example 4: the taint analysis defining notTainted(X).
PureAnalysis taintAnalysis();

//===----------------------------------------------------------------------===//
// Registry.
//===----------------------------------------------------------------------===//

/// Every optimization above, in a sensible pipeline order.
std::vector<Optimization> allOptimizations();

/// Every pure analysis above.
std::vector<PureAnalysis> allAnalyses();

} // namespace opts
} // namespace cobalt

#endif // COBALT_OPTS_OPTIMIZATIONS_H
