//===- Buggy.h - Deliberately unsound optimization variants -----*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E2 ("debugging benefit", paper §6): deliberately broken
/// variants of the shipped optimizations. Each is structurally
/// well-formed (it passes validateOptimization and would happily run in
/// the engine) but semantically wrong; the soundness checker must reject
/// every one, and the named obligation localizes the bug. Several are
/// *real* bugs the checker caught during this reproduction's own
/// development — the best possible replication of the paper's anecdote.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_OPTS_BUGGY_H
#define COBALT_OPTS_BUGGY_H

#include "core/Optimization.h"

#include <vector>

namespace cobalt {
namespace opts {

/// A buggy variant plus where the checker is expected to flag it.
struct BuggyCase {
  Optimization Opt;
  /// A prefix of the obligation expected to fail ("F2" matches
  /// "F2[assign]" etc.).
  std::string FailingObligation;
  /// What is wrong, for documentation and test output.
  std::string Explanation;
  /// Whether the bug is *behaviorally observable*: some program and
  /// input make the miscompilation visible to the differential oracle
  /// (cobalt-fuzz asserts it finds a divergence for every observable
  /// case). False for bugs that never change the transformation — e.g.
  /// a wrong witness produces the same schedule as the sound rule, so
  /// only the checker (which verifies witnesses, footnote 1) sees it.
  bool Observable = true;
};

/// Constant propagation without the ¬mayDef(Y) region check: any
/// redefinition of Y between the definition and the use breaks it.
BuggyCase constPropNoGuard();

/// Constant propagation with a witness about the wrong variable; the
/// checker rejects it even though the *transformation* schedule is the
/// same — witnesses are verified, never trusted (paper footnote 1).
BuggyCase constPropWrongWitness();

/// Constant propagation that rewrites to the wrong constant expression.
BuggyCase constPropWrongRewrite();

/// CSE without the ¬exprUses(E, X) conjunct: `x := x + 1` would "make
/// x + 1 available in x".
BuggyCase cseSelfReference();

/// Dead assignment elimination whose region admits uses through
/// pointers (mayUse replaced by a syntactic-only occurrence check).
BuggyCase daeThroughPointers();

/// Dead assignment elimination with the paper's literal Example 2 return
/// arm (`return Y uses only Y`): unsound when X's address escapes to the
/// caller before the return. Caught by the return-exit obligation B5.
BuggyCase daeEscapedLocal();

/// Redundant-load elimination without the taint check on intervening
/// direct assignments — the exact bug narrated in §6.
BuggyCase loadCseNoTaint();

/// Store-to-load forwarding without notTainted(P): unsound for a
/// self-pointing P (found by this reproduction's own checker).
BuggyCase storeForwardSelfPointer();

/// Branch folding that redirects to the wrong leg.
BuggyCase branchTakenWrongLeg();

/// "Self"-assignment removal that removes X := Y for arbitrary Y.
BuggyCase selfAssignNotSelf();

/// A taint analysis that only kills facts on var-lhs address-taking,
/// missing `*p := &x`.
BuggyCase taintMissesDerefStores();

/// All buggy optimization variants (taintMissesDerefStores is an
/// analysis and exposed separately).
std::vector<BuggyCase> allBuggyOptimizations();

/// The buggy analysis variant with its expected failing obligation.
struct BuggyAnalysisCase {
  PureAnalysis Analysis;
  std::string FailingObligation;
  std::string Explanation;
};
BuggyAnalysisCase buggyTaintAnalysis();

} // namespace opts
} // namespace cobalt

#endif // COBALT_OPTS_BUGGY_H
