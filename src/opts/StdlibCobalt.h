//===- StdlibCobalt.h - The standard suite in Cobalt's own syntax -*- C++ -*-=//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core of the optimization suite written in Cobalt's *textual*
/// syntax. This is the single-source demonstration that the DSL surface
/// covers the shipped definitions: tests parse this module and require it
/// to be structurally identical to the C++-builder versions (witness,
/// guard, and rewrite rule; profitability heuristics stay in C++, as the
/// paper keeps them in "a language of the user's choice").
///
/// The `cobaltc` tool loads files in exactly this format.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_OPTS_STDLIBCOBALT_H
#define COBALT_OPTS_STDLIBCOBALT_H

namespace cobalt {
namespace opts {

inline constexpr const char *StdlibCobaltSource = R"COB(
// ---------------------------------------------------------------------
// Labels (paper 2.1.3 / 2.4). Arm-local pattern variables use the *9/*8
// spellings so they never collide with optimization pattern variables.
// ---------------------------------------------------------------------

label syntacticDef(X) :=
  case currStmt of
    decl X => true
  | X := E9 => true
  | X := new => true
  else => false
  endcase;

label exprUses(E, X) :=
  case E of
    C9 => false
  | X => true
  | Y9 => false
  | *X => true
  | *Y9 => true          // any load may read X's cell
  | &Y9 => false
  | ~X => true
  | ~_ => false
  | X _ _ => true
  | _ _ X => true
  | _ _ _ => false
  else => false
  endcase;

label mayDef(X) :=
  case currStmt of
    *Y9 := E9 => true
  | Y9 := P9(_) => true
  else => syntacticDef(X)
  endcase;

label mayUse(X) :=
  case currStmt of
    decl Y9 => false
  | skip => false
  | Y9 := new => false
  | Y9 := P9(_) => true
  | *Y9 := E9 => Y9 = X || exprUses(E9, X)
  | Y9 := E9 => exprUses(E9, X)
  | if B9 goto I8 else I9 => B9 = X
  | return Y9 => true    // escaped locals outlive the return
  else => false
  endcase;

label unchanged(E) :=
  case E of
    C9 => true
  | Y9 => !mayDef(Y9)
  | &Y9 => !stmt(decl Y9)
  | *Y9 => false
  | ~Y9 => !mayDef(Y9)
  | ~_ => true
  | Y8 _ Y9 => !mayDef(Y8) && !mayDef(Y9)
  | Y9 _ C9 => !mayDef(Y9)
  | C9 _ Y9 => !mayDef(Y9)
  | C8 _ C9 => true
  else => false
  endcase;

// ---------------------------------------------------------------------
// Optimizations.
// ---------------------------------------------------------------------

optimization const_prop :=
  forward
  stmt(Y := C)
  followed by !mayDef(Y)
  until X := Y => X := C
  with witness eta(Y) = eta(C);

optimization copy_prop :=
  forward
  stmt(Y := Z)
  followed by !mayDef(Y) && !mayDef(Z)
  until X := Y => X := Z
  with witness eta(Y) = eta(Z);

optimization cse :=
  forward
  stmt(X := E) && !exprUses(E, X)
  followed by unchanged(E) && !mayDef(X)
  until Y := E => Y := X
  with witness eta(X) = eta(E);

optimization branch_fold :=
  forward
  stmt(Y := C)
  followed by !mayDef(Y)
  until if Y goto I1 else I2 => if C goto I1 else I2
  with witness eta(Y) = eta(C);

optimization branch_taken :=
  forward
  computes(C != 0, 1)
  followed by true
  until if C goto I1 else I2 => if 1 goto I1 else I1
  with witness eta(C != 0) = eta(1);

optimization dead_assign_elim :=
  backward
  (stmt(X := ...) || stmt(X := new) || stmt(return ...)) && !mayUse(X)
  preceded by !mayUse(X) && !stmt(decl X)
  since X := E => skip
  with witness eta_old/X = eta_new/X;

optimization self_assign_removal :=
  backward
  true
  preceded by false
  since X := X => skip
  with witness eta_old = eta_new;

optimization pre_duplicate :=
  backward
  stmt(X := E) && !mayUse(X)
  preceded by unchanged(E) && !mayDef(X) && !mayUse(X)
  since skip => X := E
  with witness eta_old/X = eta_new/X;

// ---------------------------------------------------------------------
// Pure analyses (paper 2.4).
// ---------------------------------------------------------------------

analysis taint_analysis :=
  stmt(decl X)
  followed by !stmt(_ := &X)
  defines notTainted(X)
  with witness notPointedTo(X);
)COB";

} // namespace opts
} // namespace cobalt

#endif // COBALT_OPTS_STDLIBCOBALT_H
