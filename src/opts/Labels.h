//===- Labels.h - The standard Cobalt label library -------------*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The label definitions the paper's optimizations are written against
/// (§2.1.3, §2.4). Every label is a pure *syntactic* predicate over
/// currStmt (or over an expression argument); its semantic content —
/// e.g. "¬mayDef(Y) implies Y's cell is unchanged" — is *proven* by the
/// checker from these definitions plus the step axioms, never assumed.
///
/// Two variants of the may-alias-sensitive labels exist:
/// * conservative — no pointer information: pointer stores and calls may
///   define/use anything (paper §2.1.3);
/// * precise — consult the notTainted(X) analysis label produced by the
///   taint pure analysis (paper §2.4).
///
/// Arm-local pattern variables deliberately use spellings (Y9, E9, B8,
/// ...) that no optimization uses for its own pattern variables.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_OPTS_LABELS_H
#define COBALT_OPTS_LABELS_H

#include "core/Formula.h"

#include <vector>

namespace cobalt {
namespace opts {

/// syntacticDef(X): currStmt declares or directly assigns X
/// (decl X | X := e | X := new). Calls are handled by mayDef.
LabelDef syntacticDefLabel();

/// exprUses(E, X) [conservative]: expression E may read variable X's
/// contents — a syntactic occurrence of X, or any dereference (which may
/// alias X).
LabelDef exprUsesLabel();

/// exprUsesPrecise(E, X): like exprUses, but a dereference *Y (Y ≠ X)
/// only counts when X is tainted (uses notTainted(X)).
LabelDef exprUsesPreciseLabel();

/// mayDef(X) [conservative]: pointer stores and calls may define
/// anything; otherwise syntacticDef (paper §2.1.3).
LabelDef mayDefLabel();

/// mayDefPrecise(X): pointer stores and calls cannot touch untainted
/// variables (paper §2.4).
LabelDef mayDefPreciseLabel();

/// mayUse(X) [conservative]: currStmt may read X's contents.
LabelDef mayUseLabel();

/// mayUsePrecise(X): calls and dereferences only use untainted X when it
/// is syntactically mentioned.
LabelDef mayUsePreciseLabel();

/// unchanged(E): currStmt does not change the value of E (used by CSE
/// and PRE's code-duplication pass). Conservative for loads: an E
/// containing a dereference is never "unchanged".
LabelDef unchangedLabel();

/// derefUnchanged(P): currStmt does not change the value of *P. Requires
/// the notTainted analysis: a direct assignment Y := e preserves *P only
/// when Y ≠ P and Y is not tainted — the exact §6 debugging story.
LabelDef derefUnchangedLabel();

/// The whole library in dependency order (later defs may reference
/// earlier ones).
std::vector<LabelDef> standardLabels();

} // namespace opts
} // namespace cobalt

#endif // COBALT_OPTS_LABELS_H
