//===- Buggy.cpp ----------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "opts/Buggy.h"

#include "core/Builder.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

using namespace cobalt;
using namespace cobalt::ir;
using namespace cobalt::opts;

BuggyCase opts::constPropNoGuard() {
  Optimization O = OptBuilder("const_prop_no_guard")
                       .forward()
                       .psi1(stmtIs("Y := C"))
                       .psi2(fTrue()) // BUG: everything is "innocuous"
                       .rewrite("X := Y", "X := C")
                       .witness(wEq(curEval("Y"), curEval("C")))
                       .build();
  return {std::move(O), "F2",
          "missing ¬mayDef(Y): a redefinition of Y inside the region "
          "invalidates Y = C"};
}

BuggyCase opts::constPropWrongWitness() {
  Optimization O = OptBuilder("const_prop_wrong_witness")
                       .forward()
                       .psi1(stmtIs("Y := C"))
                       .psi2(fNot(labelF("mayDef", {tExpr("Y")})))
                       .rewrite("X := Y", "X := C")
                       // BUG: speaks about X, which ψ1 says nothing about.
                       .witness(wEq(curEval("X"), curEval("C")))
                       .withLabel(syntacticDefLabel())
                       .withLabel(mayDefLabel())
                       .build();
  // Same transformation schedule as the sound constProp — the wrong
  // witness is visible only to the checker, never to the interpreter.
  return {std::move(O), "F1",
          "the witness η(X) = C is not established by Y := C",
          /*Observable=*/false};
}

BuggyCase opts::constPropWrongRewrite() {
  Optimization O = OptBuilder("const_prop_wrong_rewrite")
                       .forward()
                       .psi1(stmtIs("Y := C"))
                       .psi2(fNot(labelF("mayDef", {tExpr("Y")})))
                       // BUG: rewrites the use to Y + C instead of C.
                       .rewrite("X := Y", "X := Y + C")
                       .witness(wEq(curEval("Y"), curEval("C")))
                       .withLabel(syntacticDefLabel())
                       .withLabel(mayDefLabel())
                       .build();
  return {std::move(O), "F3",
          "X := Y and X := Y + C compute different values"};
}

BuggyCase opts::cseSelfReference() {
  Optimization O = OptBuilder("cse_self_reference")
                       .forward()
                       // BUG: missing ¬exprUses(E, X).
                       .psi1(stmtIs("X := E"))
                       .psi2(fAnd(labelF("unchanged", {tExpr("E")}),
                                  fNot(labelF("mayDef", {tExpr("X")}))))
                       .rewrite("Y := E", "Y := X")
                       .witness(wEq(curEval("X"), curEval("E")))
                       .withLabel(syntacticDefLabel())
                       .withLabel(exprUsesLabel())
                       .withLabel(mayDefLabel())
                       .withLabel(unchangedLabel())
                       .build();
  return {std::move(O), "F1",
          "after x := x + 1, x does not hold the value of x + 1"};
}

BuggyCase opts::daeThroughPointers() {
  // A "syntactic use" label that ignores loads through pointers.
  LabelDef NaiveUse = makeLabelDef(
      "naiveUse", {"X"},
      CaseBuilder(tCurrStmt())
          .stmtArm("Y9 := X", fTrue())
          .stmtArm("Y9 := X _ _", fTrue())
          .stmtArm("Y9 := _ _ X", fTrue())
          .stmtArm("if X goto I8 else I9", fTrue())
          .stmtArm("return Y9", fTrue())
          .elseArm(fFalse()));
  FormulaPtr Redefined = fOr(fOr(stmtIs("X := ..."), stmtIs("X := new")),
                             stmtIs("return ..."));
  Optimization O =
      OptBuilder("dae_through_pointers")
          .backward()
          .psi1(fAnd(Redefined, fNot(labelF("naiveUse", {tExpr("X")}))))
          .psi2(fAnd(fNot(labelF("naiveUse", {tExpr("X")})),
                     fNot(stmtIs("decl X"))))
          .rewrite("X := E", "skip")
          .witness(eqUpTo("X"))
          .withLabel(NaiveUse)
          .build();
  return {std::move(O), "B2",
          "a load *p may read X's cell; the naive use label misses it"};
}

BuggyCase opts::daeEscapedLocal() {
  // mayUse with the paper's literal Example 2 return arm.
  LabelDef NaiveMayUse = makeLabelDef(
      "mayUseRetNaive", {"X"},
      CaseBuilder(tCurrStmt())
          .stmtArm("decl Y9", fFalse())
          .stmtArm("skip", fFalse())
          .stmtArm("Y9 := new", fFalse())
          .stmtArm("Y9 := P9(_)", fTrue())
          .stmtArm("*Y9 := E9",
                   fOr(fEq(tExpr("Y9"), tExpr("X")),
                       labelF("exprUses", {tExpr("E9"), tExpr("X")})))
          .stmtArm("Y9 := E9",
                   labelF("exprUses", {tExpr("E9"), tExpr("X")}))
          .stmtArm("if B9 goto I8 else I9", fEq(tExpr("B9"), tExpr("X")))
          // BUG: a return only "uses" the returned variable — but the
          // caller can still read X through an escaped pointer.
          .stmtArm("return Y9", fEq(tExpr("Y9"), tExpr("X")))
          .elseArm(fFalse()));
  FormulaPtr Redefined = fOr(fOr(stmtIs("X := ..."), stmtIs("X := new")),
                             stmtIs("return ..."));
  Optimization O =
      OptBuilder("dae_escaped_local")
          .backward()
          .psi1(fAnd(Redefined, fNot(labelF("mayUseRetNaive", {tExpr("X")}))))
          .psi2(fAnd(fNot(labelF("mayUseRetNaive", {tExpr("X")})),
                     fNot(stmtIs("decl X"))))
          .rewrite("X := E", "skip")
          .witness(eqUpTo("X"))
          .withLabel(syntacticDefLabel())
          .withLabel(exprUsesLabel())
          .withLabel(NaiveMayUse)
          .build();
  return {std::move(O), "B5",
          "X's cell can outlive the return via an escaped pointer (the "
          "caller observes the removed store)"};
}

BuggyCase opts::loadCseNoTaint() {
  // The §6 bug: direct assignments in the region were assumed harmless.
  LabelDef BuggyDerefUnchanged = makeLabelDef(
      "derefUnchangedNoTaint", {"P"},
      CaseBuilder(tCurrStmt())
          .stmtArm("*Y9 := E9", fFalse())
          .stmtArm("Y9 := P9(_)", fFalse())
          .stmtArm("Y9 := new", fNot(fEq(tExpr("Y9"), tExpr("P"))))
          .stmtArm("decl Y9", fNot(fEq(tExpr("Y9"), tExpr("P"))))
          // BUG: Y := e can change *P when P points to Y.
          .stmtArm("Y9 := E9", fNot(fEq(tExpr("Y9"), tExpr("P"))))
          .elseArm(fTrue()));
  Optimization O =
      OptBuilder("load_cse_no_taint")
          .forward()
          .psi1(fAnd(stmtIs("X := *P"), fNot(fEq(tExpr("X"), tExpr("P")))))
          .psi2(fAnd(labelF("derefUnchangedNoTaint", {tExpr("P")}),
                     fNot(labelF("mayDef", {tExpr("X")}))))
          .rewrite("Y := *P", "Y := X")
          .witness(wEq(curEval("X"), curEval("*P")))
          .withLabel(syntacticDefLabel())
          .withLabel(mayDefLabel())
          .withLabel(BuggyDerefUnchanged)
          .build();
  return {std::move(O), "F2",
          "a direct assignment y := e changes *p when p points to y "
          "(the exact §6 anecdote)"};
}

BuggyCase opts::storeForwardSelfPointer() {
  Optimization O = OptBuilder("store_forward_self_pointer")
                       .forward()
                       // BUG: missing notTainted(P).
                       .psi1(stmtIs("*P := Y"))
                       .psi2(fAnd(labelF("derefUnchanged", {tExpr("P")}),
                                  fNot(labelF("mayDef", {tExpr("Y")}))))
                       .rewrite("X := *P", "X := Y")
                       .witness(wEq(curEval("*P"), curEval("Y")))
                       .withLabel(syntacticDefLabel())
                       .withLabel(mayDefLabel())
                       .withLabel(derefUnchangedLabel())
                       .build();
  return {std::move(O), "F1",
          "when P points to itself, *P := Y overwrites P and the "
          "forwarded value is wrong"};
}

BuggyCase opts::branchTakenWrongLeg() {
  Optimization O =
      OptBuilder("branch_taken_wrong_leg")
          .forward()
          .psi1(labelF("computes", {tExpr("C != 0"), tExpr("1")}))
          .psi2(fTrue())
          // BUG: the condition is nonzero, so control goes to I1, not I2.
          .rewrite("if C goto I1 else I2", "if 1 goto I2 else I2")
          .witness(wEq(curEval("C != 0"), curEval("1")))
          .build();
  return {std::move(O), "F3", "redirects the branch to the wrong leg"};
}

BuggyCase opts::selfAssignNotSelf() {
  Optimization O = OptBuilder("self_assign_not_self")
                       .backward()
                       .psi1(fTrue())
                       .psi2(fFalse())
                       // BUG: X := Y is not a no-op for Y ≠ X.
                       .rewrite("X := Y", "skip")
                       .witness(wStateEq())
                       .build();
  return {std::move(O), "B1", "removes assignments that change X"};
}

BuggyAnalysisCase opts::buggyTaintAnalysis() {
  // BUG: only var-lhs address-taking kills the fact; `*p := &x` stores
  // x's address too. (The arm-local Z9 keeps ψ2's free variables to X.)
  LabelDef TakesAddrVarLhs =
      makeLabelDef("takesAddrVarLhs", {"X"},
                   CaseBuilder(tCurrStmt())
                       .stmtArm("Z9 := &X", fTrue())
                       .elseArm(fFalse()));
  PureAnalysis A =
      AnalysisBuilder("taint_analysis_misses_deref")
          .psi1(stmtIs("decl X"))
          .psi2(fNot(labelF("takesAddrVarLhs", {tExpr("X")})))
          .defines("notTainted", {tExpr("X")})
          .witness(notPointedToW("X"))
          .withLabel(TakesAddrVarLhs)
          .build();
  return {std::move(A), "F2",
          "a pointer store *p := &x taints x but does not match the "
          "var-lhs pattern"};
}

std::vector<BuggyCase> opts::allBuggyOptimizations() {
  std::vector<BuggyCase> Out;
  Out.push_back(constPropNoGuard());
  Out.push_back(constPropWrongWitness());
  Out.push_back(constPropWrongRewrite());
  Out.push_back(cseSelfReference());
  Out.push_back(daeThroughPointers());
  Out.push_back(daeEscapedLocal());
  Out.push_back(loadCseNoTaint());
  Out.push_back(storeForwardSelfPointer());
  Out.push_back(branchTakenWrongLeg());
  Out.push_back(selfAssignNotSelf());
  return Out;
}
