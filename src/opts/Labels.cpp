//===- Labels.cpp ---------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "opts/Labels.h"

#include "core/Builder.h"

using namespace cobalt;
using namespace cobalt::ir;
using namespace cobalt::opts;

/// Unary operator application patterns have no surface syntax; build
/// OpExpr("_", {arg}) terms directly.
static Term unaryOp(Var Arg) {
  return Term(Expr(OpExpr{"_", {BaseExpr(std::move(Arg))}}));
}

LabelDef opts::syntacticDefLabel() {
  return makeLabelDef("syntacticDef", {"X"},
                      CaseBuilder(tCurrStmt())
                          .stmtArm("decl X", fTrue())
                          .stmtArm("X := E9", fTrue())
                          .stmtArm("X := new", fTrue())
                          .elseArm(fFalse()));
}

LabelDef opts::exprUsesLabel() {
  return makeLabelDef(
      "exprUses", {"E", "X"},
      CaseBuilder(tExpr("E"))
          .exprArm("C9", fFalse())
          .exprArm("X", fTrue())
          .exprArm("Y9", fFalse())
          .exprArm("*X", fTrue())
          .exprArm("*Y9", fTrue()) // any load may read X's cell
          .exprArm("&Y9", fFalse())
          .termArm(unaryOp(Var::meta("X")), fTrue())
          .termArm(unaryOp(Var::wildcard()), fFalse())
          .exprArm("X _ _", fTrue())
          .exprArm("_ _ X", fTrue())
          .exprArm("_ _ _", fFalse())
          .elseArm(fFalse()));
}

LabelDef opts::exprUsesPreciseLabel() {
  return makeLabelDef(
      "exprUsesPrecise", {"E", "X"},
      CaseBuilder(tExpr("E"))
          .exprArm("C9", fFalse())
          .exprArm("X", fTrue())
          .exprArm("Y9", fFalse())
          .exprArm("*X", fTrue())
          .exprArm("*Y9", fNot(labelF("notTainted", {tExpr("X")})))
          .exprArm("&Y9", fFalse())
          .termArm(unaryOp(Var::meta("X")), fTrue())
          .termArm(unaryOp(Var::wildcard()), fFalse())
          .exprArm("X _ _", fTrue())
          .exprArm("_ _ X", fTrue())
          .exprArm("_ _ _", fFalse())
          .elseArm(fFalse()));
}

LabelDef opts::mayDefLabel() {
  // Paper §2.1.3: pointer stores and calls may define any variable.
  return makeLabelDef("mayDef", {"X"},
                      CaseBuilder(tCurrStmt())
                          .stmtArm("*Y9 := E9", fTrue())
                          .stmtArm("Y9 := P9(_)", fTrue())
                          .elseArm(labelF("syntacticDef", {tExpr("X")})));
}

LabelDef opts::mayDefPreciseLabel() {
  // Paper §2.4: pointer stores cannot affect untainted variables; a call
  // defines its target and (conservatively) anything tainted.
  return makeLabelDef(
      "mayDefPrecise", {"X"},
      CaseBuilder(tCurrStmt())
          .stmtArm("*Y9 := E9", fNot(labelF("notTainted", {tExpr("X")})))
          .stmtArm("Y9 := P9(_)",
                   fOr(fEq(tExpr("Y9"), tExpr("X")),
                       fNot(labelF("notTainted", {tExpr("X")}))))
          .elseArm(labelF("syntacticDef", {tExpr("X")})));
}

LabelDef opts::mayUseLabel() {
  return makeLabelDef(
      "mayUse", {"X"},
      CaseBuilder(tCurrStmt())
          .stmtArm("decl Y9", fFalse())
          .stmtArm("skip", fFalse())
          .stmtArm("Y9 := new", fFalse())
          .stmtArm("Y9 := P9(_)", fTrue()) // callee may read anything
          .stmtArm("*Y9 := E9",
                   fOr(fEq(tExpr("Y9"), tExpr("X")),
                       labelF("exprUses", {tExpr("E9"), tExpr("X")})))
          .stmtArm("Y9 := E9",
                   labelF("exprUses", {tExpr("E9"), tExpr("X")}))
          .stmtArm("if B9 goto I8 else I9", fEq(tExpr("B9"), tExpr("X")))
          // A return publishes the whole store to the caller: if X's
          // address escaped (e.g. the callee returned &X earlier in some
          // cell), the caller can still read X's cell after the return.
          // Without pointer information the only sound choice is "may
          // use". The naive arm `return Y9 -> Y9 = X` (what the paper's
          // Example 2 suggests) is exercised as a buggy variant that the
          // soundness checker rejects via the return-exit obligation.
          .stmtArm("return Y9", fTrue())
          .elseArm(fFalse()));
}

LabelDef opts::mayUsePreciseLabel() {
  return makeLabelDef(
      "mayUsePrecise", {"X"},
      CaseBuilder(tCurrStmt())
          .stmtArm("decl Y9", fFalse())
          .stmtArm("skip", fFalse())
          .stmtArm("Y9 := new", fFalse())
          .stmtArm("Y9 := P9(B9)",
                   fOr(fEq(tExpr("B9"), tExpr("X")),
                       fNot(labelF("notTainted", {tExpr("X")}))))
          .stmtArm("Y9 := P9(_)", // constant-argument calls
                   fNot(labelF("notTainted", {tExpr("X")})))
          .stmtArm("*Y9 := E9",
                   fOr(fEq(tExpr("Y9"), tExpr("X")),
                       labelF("exprUsesPrecise", {tExpr("E9"), tExpr("X")})))
          .stmtArm("Y9 := E9",
                   labelF("exprUsesPrecise", {tExpr("E9"), tExpr("X")}))
          .stmtArm("if B9 goto I8 else I9", fEq(tExpr("B9"), tExpr("X")))
          // See mayUse: an escaped (tainted) X outlives the return.
          .stmtArm("return Y9",
                   fOr(fEq(tExpr("Y9"), tExpr("X")),
                       fNot(labelF("notTainted", {tExpr("X")}))))
          .elseArm(fFalse()));
}

LabelDef opts::unchangedLabel() {
  return makeLabelDef(
      "unchanged", {"E"},
      CaseBuilder(tExpr("E"))
          .exprArm("C9", fTrue())
          .exprArm("Y9", fNot(labelF("mayDef", {tExpr("Y9")})))
          .exprArm("&Y9", fNot(stmtIs("decl Y9")))
          .exprArm("*Y9", fFalse()) // loads: see derefUnchanged
          .termArm(unaryOp(Var::meta("Y9")),
                   fNot(labelF("mayDef", {tExpr("Y9")})))
          .termArm(unaryOp(Var::wildcard()), fTrue()) // unary over const
          .exprArm("Y8 _ Y9", fAnd(fNot(labelF("mayDef", {tExpr("Y8")})),
                                   fNot(labelF("mayDef", {tExpr("Y9")}))))
          .exprArm("Y9 _ C9", fNot(labelF("mayDef", {tExpr("Y9")})))
          .exprArm("C9 _ Y9", fNot(labelF("mayDef", {tExpr("Y9")})))
          .exprArm("C8 _ C9", fTrue())
          .elseArm(fFalse()));
}

LabelDef opts::derefUnchangedLabel() {
  // The §6 story. A direct assignment Y := e preserves *P only when
  // Y ≠ P *and* Y is untainted (P might point to Y); the initial, buggy
  // version of redundant-load elimination omitted the taint check.
  return makeLabelDef(
      "derefUnchanged", {"P"},
      CaseBuilder(tCurrStmt())
          .stmtArm("*Y9 := E9", fFalse())
          .stmtArm("Y9 := P9(_)", fFalse())
          // `Y9 := new` *writes* Y9's cell (with the fresh location), so
          // like a direct assignment it needs Y9 untainted -- P might
          // point to Y9. Found by the checker (F2[new]).
          .stmtArm("Y9 := new",
                   fAnd(fNot(fEq(tExpr("Y9"), tExpr("P"))),
                        labelF("notTainted", {tExpr("Y9")})))
          .stmtArm("decl Y9", fNot(fEq(tExpr("Y9"), tExpr("P"))))
          .stmtArm("Y9 := E9",
                   fAnd(fNot(fEq(tExpr("Y9"), tExpr("P"))),
                        labelF("notTainted", {tExpr("Y9")})))
          .elseArm(fTrue()));
}

std::vector<LabelDef> opts::standardLabels() {
  return {syntacticDefLabel(),   exprUsesLabel(),
          exprUsesPreciseLabel(), mayDefLabel(),
          mayDefPreciseLabel(),   mayUseLabel(),
          mayUsePreciseLabel(),   unchangedLabel(),
          derefUnchangedLabel()};
}
