//===- Optimizations.cpp --------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "opts/Optimizations.h"

#include "core/Builder.h"
#include "ir/Cfg.h"
#include "opts/Labels.h"

using namespace cobalt;
using namespace cobalt::ir;
using namespace cobalt::opts;

//===----------------------------------------------------------------------===//
// Forward optimizations.
//===----------------------------------------------------------------------===//

Optimization opts::constProp() {
  return OptBuilder("const_prop")
      .forward()
      .psi1(stmtIs("Y := C"))
      .psi2(fNot(labelF("mayDef", {tExpr("Y")})))
      .rewrite("X := Y", "X := C")
      .witness(wEq(curEval("Y"), curEval("C")))
      .withLabel(syntacticDefLabel())
      .withLabel(mayDefLabel())
      .build();
}

Optimization opts::constPropFold() {
  return OptBuilder("const_prop_fold")
      .forward()
      .psi1(fAnd(stmtIs("Y := E"),
                 labelF("computes", {tExpr("E"), tExpr("C")})))
      .psi2(fNot(labelF("mayDef", {tExpr("Y")})))
      .rewrite("X := Y", "X := C")
      .witness(wEq(curEval("Y"), curEval("C")))
      .withLabel(syntacticDefLabel())
      .withLabel(mayDefLabel())
      .build();
}

Optimization opts::constPropPrecise() {
  return OptBuilder("const_prop_precise")
      .forward()
      .psi1(stmtIs("Y := C"))
      .psi2(fNot(labelF("mayDefPrecise", {tExpr("Y")})))
      .rewrite("X := Y", "X := C")
      .witness(wEq(curEval("Y"), curEval("C")))
      .withLabel(syntacticDefLabel())
      .withLabel(mayDefPreciseLabel())
      .build();
}

Optimization opts::copyProp() {
  return OptBuilder("copy_prop")
      .forward()
      .psi1(stmtIs("Y := Z"))
      .psi2(fAnd(fNot(labelF("mayDef", {tExpr("Y")})),
                 fNot(labelF("mayDef", {tExpr("Z")}))))
      .rewrite("X := Y", "X := Z")
      .witness(wEq(curEval("Y"), curEval("Z")))
      .withLabel(syntacticDefLabel())
      .withLabel(mayDefLabel())
      .build();
}

/// Shared shape of the per-operator in-place folding rules. The enabling
/// condition computes(C1 op C2, C3) holds at every node for consistent
/// constant triples, so any predecessor enables the rewrite (forward
/// guards require an enabling statement strictly before the rewritten
/// one; procedures start with declarations, so this never bites).
static Optimization constFoldOp(const char *Name, const char *From,
                                const char *FoldedExpr) {
  return OptBuilder(Name)
      .forward()
      .psi1(labelF("computes", {tExpr(FoldedExpr), tExpr("C3")}))
      .psi2(fTrue())
      .rewrite(From, "X := C3")
      .witness(wEq(curEval(FoldedExpr), curEval("C3")))
      .build();
}

Optimization opts::constFoldAdd() {
  return constFoldOp("const_fold_add", "X := C1 + C2", "C1 + C2");
}

Optimization opts::constFoldMul() {
  return constFoldOp("const_fold_mul", "X := C1 * C2", "C1 * C2");
}

/// Algebraic identities share one shape: a node-independent guard pins
/// the constant (or nothing at all), the witness carries the same fact,
/// and F3 is pure operator arithmetic.
static Optimization simplifyRule(const char *Name, FormulaPtr Guard,
                                 WitnessPtr W, const char *From,
                                 const char *To) {
  return OptBuilder(Name)
      .forward()
      .psi1(std::move(Guard))
      .psi2(fTrue())
      .rewrite(From, To)
      .witness(std::move(W))
      .build();
}

Optimization opts::simplifyAddZero() {
  return simplifyRule("simplify_add_zero", fEq(tExpr("C"), tExpr("0")),
                      wEq(curEval("C"), curEval("0")), "X := Y + C",
                      "X := Y");
}

Optimization opts::simplifyMulOne() {
  return simplifyRule("simplify_mul_one", fEq(tExpr("C"), tExpr("1")),
                      wEq(curEval("C"), curEval("1")), "X := Y * C",
                      "X := Y");
}

Optimization opts::simplifyMulZero() {
  // X := Y * 0 ⇒ X := 0. The rewrite drops the read of Y, which can only
  // make the program more defined — sound for the paper's equivalence.
  return simplifyRule("simplify_mul_zero", fEq(tExpr("C"), tExpr("0")),
                      wEq(curEval("C"), curEval("0")), "X := Y * C",
                      "X := C");
}

Optimization opts::simplifySubSelf() {
  return simplifyRule("simplify_sub_self", fTrue(), wTrue(), "X := Y - Y",
                      "X := 0");
}

Optimization opts::cse() {
  return OptBuilder("cse")
      .forward()
      .psi1(fAnd(stmtIs("X := E"),
                 fNot(labelF("exprUses", {tExpr("E"), tExpr("X")}))))
      .psi2(fAnd(labelF("unchanged", {tExpr("E")}),
                 fNot(labelF("mayDef", {tExpr("X")}))))
      .rewrite("Y := E", "Y := X")
      .witness(wEq(curEval("X"), curEval("E")))
      .withLabel(syntacticDefLabel())
      .withLabel(exprUsesLabel())
      .withLabel(mayDefLabel())
      .withLabel(unchangedLabel())
      .build();
}

Optimization opts::storeForward() {
  return OptBuilder("store_forward")
      .forward()
      // notTainted(P) rules out a self-pointing P (σ(ρ(P)) = ρ(P)), for
      // which `*P := Y` overwrites P itself and the forwarded value is
      // wrong — a genuine unsoundness our checker found via F1[assign].
      .psi1(fAnd(stmtIs("*P := Y"), labelF("notTainted", {tExpr("P")})))
      .psi2(fAnd(labelF("derefUnchanged", {tExpr("P")}),
                 fNot(labelF("mayDef", {tExpr("Y")}))))
      .rewrite("X := *P", "X := Y")
      .witness(wEq(curEval("*P"), curEval("Y")))
      .withLabel(syntacticDefLabel())
      .withLabel(mayDefLabel())
      .withLabel(derefUnchangedLabel())
      .build();
}

Optimization opts::loadCse() {
  return OptBuilder("load_cse")
      .forward()
      .psi1(fAnd(stmtIs("X := *P"), fNot(fEq(tExpr("X"), tExpr("P")))))
      .psi2(fAnd(labelF("derefUnchanged", {tExpr("P")}),
                 fNot(labelF("mayDef", {tExpr("X")}))))
      .rewrite("Y := *P", "Y := X")
      .witness(wEq(curEval("X"), curEval("*P")))
      .withLabel(syntacticDefLabel())
      .withLabel(mayDefLabel())
      .withLabel(derefUnchangedLabel())
      .build();
}

Optimization opts::branchFold() {
  return OptBuilder("branch_fold")
      .forward()
      .psi1(stmtIs("Y := C"))
      .psi2(fNot(labelF("mayDef", {tExpr("Y")})))
      .rewrite("if Y goto I1 else I2", "if C goto I1 else I2")
      .witness(wEq(curEval("Y"), curEval("C")))
      .withLabel(syntacticDefLabel())
      .withLabel(mayDefLabel())
      .build();
}

Optimization opts::branchTaken() {
  return OptBuilder("branch_taken")
      .forward()
      .psi1(labelF("computes", {tExpr("C != 0"), tExpr("1")}))
      .psi2(fTrue())
      .rewrite("if C goto I1 else I2", "if 1 goto I1 else I1")
      .witness(wEq(curEval("C != 0"), curEval("1")))
      .build();
}

Optimization opts::branchNotTaken() {
  return OptBuilder("branch_not_taken")
      .forward()
      .psi1(labelF("computes", {tExpr("C == 0"), tExpr("1")}))
      .psi2(fTrue())
      .rewrite("if C goto I1 else I2", "if 1 goto I2 else I2")
      .witness(wEq(curEval("C == 0"), curEval("1")))
      .build();
}

//===----------------------------------------------------------------------===//
// Backward optimizations.
//===----------------------------------------------------------------------===//

Optimization opts::deadAssignElim() {
  FormulaPtr Redefined = fOr(fOr(stmtIs("X := ..."), stmtIs("X := new")),
                             stmtIs("return ..."));
  return OptBuilder("dead_assign_elim")
      .backward()
      .psi1(fAnd(Redefined, fNot(labelF("mayUse", {tExpr("X")}))))
      // ¬stmt(decl X): a re-declaration would rebind X to a fresh cell,
      // leaving the traces' disagreement in a ghost cell that a captured
      // pointer could still observe. Well-formed procedures declare each
      // variable once, but the per-statement obligations cannot assume
      // that, and the checker rightly rejects the guard without this
      // conjunct (obligation B2[decl]).
      .psi2(fAnd(fNot(labelF("mayUse", {tExpr("X")})),
                 fNot(stmtIs("decl X"))))
      .rewrite("X := E", "skip")
      .witness(eqUpTo("X"))
      .withLabel(syntacticDefLabel())
      .withLabel(exprUsesLabel())
      .withLabel(mayUseLabel())
      .build();
}

Optimization opts::selfAssignRemoval() {
  // Unconditional rewrite: ψ1 = true holds at every following node, so
  // the guard holds at every statement with a successor.
  return OptBuilder("self_assign_removal")
      .backward()
      .psi1(fTrue())
      .psi2(fFalse())
      .rewrite("X := X", "skip")
      .witness(wStateEq())
      .build();
}

Optimization opts::redundantBranchElim() {
  return OptBuilder("redundant_branch_elim")
      .backward()
      .psi1(fTrue())
      .psi2(fFalse())
      .rewrite("if B goto I1 else I1", "if 1 goto I1 else I1")
      .witness(wStateEq())
      .build();
}

/// PRE's profitability heuristic: keep only the *latest* legal insertion
/// sites for each substitution — those from which no other legal site
/// for the same θ is reachable. Later insertions convert partial
/// redundancies at minimal cost (§2.3's "latest ones ... do not
/// introduce any partially dead computations" in simplified form).
static ChooseFn preChooseLatest() {
  return [](const std::vector<MatchSite> &Delta, const Procedure &P) {
    Cfg G(P);
    // Reachability between site indices (procedures are small; a BFS per
    // site is fine, and choose never affects soundness).
    auto Reaches = [&](int From, int To) {
      std::vector<bool> Seen(G.size(), false);
      std::vector<int> Work = {From};
      Seen[From] = true;
      while (!Work.empty()) {
        int I = Work.back();
        Work.pop_back();
        for (int S : G.succs(I)) {
          if (S == To)
            return true;
          if (!Seen[S]) {
            Seen[S] = true;
            Work.push_back(S);
          }
        }
      }
      return false;
    };

    std::vector<MatchSite> Out;
    for (const MatchSite &Site : Delta) {
      bool Latest = true;
      for (const MatchSite &Other : Delta) {
        if (Other.Theta == Site.Theta && Other.Index != Site.Index &&
            Reaches(Site.Index, Other.Index)) {
          Latest = false;
          break;
        }
      }
      if (Latest)
        Out.push_back(Site);
    }
    return Out;
  };
}

Optimization opts::preDuplicate() {
  return OptBuilder("pre_duplicate")
      .backward()
      .psi1(fAnd(stmtIs("X := E"), fNot(labelF("mayUse", {tExpr("X")}))))
      .psi2(fAnd(fAnd(labelF("unchanged", {tExpr("E")}),
                      fNot(labelF("mayDef", {tExpr("X")}))),
                 fNot(labelF("mayUse", {tExpr("X")}))))
      .rewrite("skip", "X := E")
      .witness(eqUpTo("X"))
      .choose(preChooseLatest())
      .withLabel(syntacticDefLabel())
      .withLabel(exprUsesLabel())
      .withLabel(mayDefLabel())
      .withLabel(mayUseLabel())
      .withLabel(unchangedLabel())
      .build();
}

//===----------------------------------------------------------------------===//
// Pure analyses.
//===----------------------------------------------------------------------===//

PureAnalysis opts::taintAnalysis() {
  // Example 4: a variable is untainted at a statement if on all paths it
  // was declared and its address never taken since.
  return AnalysisBuilder("taint_analysis")
      .psi1(stmtIs("decl X"))
      .psi2(fNot(stmtIs("_ := &X")))
      .defines("notTainted", {tExpr("X")})
      .witness(notPointedToW("X"))
      .build();
}

//===----------------------------------------------------------------------===//
// Registry.
//===----------------------------------------------------------------------===//

std::vector<Optimization> opts::allOptimizations() {
  std::vector<Optimization> Out;
  Out.push_back(constProp());
  Out.push_back(constPropFold());
  Out.push_back(constPropPrecise());
  Out.push_back(copyProp());
  Out.push_back(constFoldAdd());
  Out.push_back(constFoldMul());
  Out.push_back(simplifyAddZero());
  Out.push_back(simplifyMulOne());
  Out.push_back(simplifyMulZero());
  Out.push_back(simplifySubSelf());
  Out.push_back(cse());
  Out.push_back(storeForward());
  Out.push_back(loadCse());
  Out.push_back(branchFold());
  Out.push_back(branchTaken());
  Out.push_back(branchNotTaken());
  Out.push_back(deadAssignElim());
  Out.push_back(selfAssignRemoval());
  Out.push_back(redundantBranchElim());
  Out.push_back(preDuplicate());
  return Out;
}

std::vector<PureAnalysis> opts::allAnalyses() {
  std::vector<PureAnalysis> Out;
  Out.push_back(taintAnalysis());
  return Out;
}
