//===- licm.cpp - Paper §6: loop-invariant code motion by composition -----===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Paper §6 ("Expressiveness"): optimizations with effects at multiple
/// program points, "such as various sorts of code motion, can in fact be
/// decomposed into several simpler transformations, each of which fits
/// Cobalt's transformation pattern syntax." Loop-invariant code motion is
/// the classic example: hoisting t := a * b out of a loop is
///
///   pre_duplicate   insert t := a * b at the loop preheader's skip
///                   (legal: every path from there reaches the loop's
///                   computation with a and b unchanged),
///   cse             the in-loop computation becomes t := t,
///   self_assign_removal   …which disappears.
///
/// Each piece is proven sound in isolation; composing proven passes needs
/// no further proof (§4's Definition 2 argument applies pass by pass).
///
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Optimizations.h"

#include <cstdio>

using namespace cobalt;

int main() {
  // t := a * b is recomputed every iteration although a, b are loop
  // invariant. The preheader carries the skip that hosts the hoist (the
  // engine "conceptually inserts skips as needed", paper footnote 3; our
  // front end writes it explicitly). Note the do-while shape: the
  // backward guard licenses an insertion only where the computation is
  // *anticipated on every path* — hoisting past a zero-trip while-loop
  // test would execute a * b on a path that never needed it, and Cobalt
  // (rightly) refuses to prove that without it.
  ir::Program Prog = ir::parseProgramOrDie(R"(
    proc main(n) {
      decl a;
      decl b;
      decl t;
      decl s;
      decl i;
      decl g;
      a := 3;
      b := 4;
      s := 0;
      i := 0;
      skip;
    body:
      t := a * b;
      s := s + t;
      i := i + 1;
      g := i < n;
      if g goto body else done;
    done:
      return s;
    }
  )");
  ir::Program Original = Prog;
  std::printf("input (t := a * b recomputed in the loop):\n%s\n",
              ir::toString(Prog).c_str());

  api::CobaltContext Ctx;
  Ctx.addOptimization(opts::preDuplicate());
  Ctx.addOptimization(opts::cse());
  Ctx.addOptimization(opts::selfAssignRemoval());
  for (const engine::PassReport &R : Ctx.runPipeline(Prog).Reports)
    std::printf("pass %-22s legal=%u applied=%u\n", R.PassName.c_str(),
                R.DeltaSize, R.AppliedCount);

  std::printf("\nafter (the multiply hoisted to the preheader; the loop "
              "body is multiplication-free):\n%s\n",
              ir::toString(Prog).c_str());

  for (int64_t Input : {0, 1, 5}) {
    ir::Interpreter IO(Original), IT(Prog);
    ir::RunResult RO = IO.run(Input), RT = IT.run(Input);
    std::printf("main(%lld): original %s, optimized %s %s\n",
                static_cast<long long>(Input), RO.str().c_str(),
                RT.str().c_str(),
                RO.Result == RT.Result ? "[equal]" : "[MISMATCH!]");
  }
  return 0;
}
