//===- pre_pipeline.cpp - Paper §2.3: PRE as three simple passes ----------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Partial redundancy elimination, the paper's showcase for profitability
/// heuristics: a complex code-motion optimization decomposed into three
/// Cobalt patterns, each trivially provable —
///
///   pre_duplicate        insert x := a + b in the else leg (backward,
///                        with a nontrivial choose function),
///   cse                  the join's recomputation becomes x := x,
///   self_assign_removal  which then disappears.
///
/// Only the transformation patterns matter for soundness; the heuristic
/// choosing *where* to insert is unrestricted code (§2.3).
///
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Optimizations.h"

#include <cstdio>

using namespace cobalt;

int main() {
  // The §2.3 code fragment: x := a + b after the branch is redundant on
  // the true leg only.
  ir::Program Prog = ir::parseProgramOrDie(R"(
    proc main(n) {
      decl a;
      decl b;
      decl x;
      b := n;
      if n goto t else f;
    t:
      a := 1;
      x := a + b;
      if 1 goto join else join;
    f:
      skip;
    join:
      x := a + b;
      return x;
    }
  )");
  ir::Program Original = Prog;
  std::printf("input (x := a + b at the join is PARTIALLY redundant):\n%s\n",
              ir::toString(Prog).c_str());

  api::CobaltContext Ctx;
  Ctx.addOptimization(opts::preDuplicate());
  Ctx.addOptimization(opts::cse());
  Ctx.addOptimization(opts::selfAssignRemoval());

  for (const engine::PassReport &R : Ctx.runPipeline(Prog).Reports)
    std::printf("pass %-22s legal=%u applied=%u\n", R.PassName.c_str(),
                R.DeltaSize, R.AppliedCount);

  std::printf("\nresult (the else leg computes it; the join is clean):\n%s\n",
              ir::toString(Prog).c_str());

  for (int64_t Input : {0, 1, 7}) {
    ir::Interpreter IO(Original), IT(Prog);
    ir::RunResult RO = IO.run(Input), RT = IT.run(Input);
    std::printf("main(%lld): original %s, optimized %s %s\n",
                static_cast<long long>(Input), RO.str().c_str(),
                RT.str().c_str(),
                RO.Result == RT.Result ? "[equal]" : "[MISMATCH!]");
  }
  return 0;
}
