//===- extensible_compiler.cpp - Paper §1: user-extensible compilers ------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's motivating vision: an extensible compiler that accepts
/// user-written optimizations — in Cobalt's *textual* syntax here — and
/// protects itself by proving each one sound before admitting it. A buggy
/// submission is rejected with the failing obligation and a
/// counterexample context; the trusted computing base never grows (§6).
///
/// The whole compiler is a thin shell around one `api::CobaltContext`:
/// parsing, proving, and the pass pipeline all live behind the facade.
///
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <cstdio>

using namespace cobalt;

namespace {

/// The "compiler": admits an optimization only if the checker proves it.
class ExtensibleCompiler {
public:
  ExtensibleCompiler() : Ctx(makeConfig()) {}

  bool submit(const std::string &CobaltSource) {
    auto Module = Ctx.parseModule(CobaltSource);
    if (!Module) {
      std::printf("  parse error:\n%s\n", Module.error().Message.c_str());
      return false;
    }
    for (Optimization &O : Module->Optimizations) {
      // The rule's labels must be in the registry before the checker can
      // interpret its guards; registration of the rule itself waits
      // until the proof succeeds.
      for (const LabelDef &Def : O.Labels)
        Ctx.defineLabel(Def);
      checker::CheckReport Report = Ctx.check(O);
      if (!Report.Sound) {
        std::printf("  REJECTED %s:\n", O.Name.c_str());
        for (const auto &Ob : Report.Obligations)
          if (!Ob.proven())
            std::printf("    obligation %s failed%s%s\n", Ob.Name.c_str(),
                        Ob.Counterexample.empty() ? "" : ": ",
                        Ob.Counterexample.substr(0, 160).c_str());
        return false;
      }
      std::printf("  ADMITTED %s (%zu obligations, %.2f s)\n",
                  O.Name.c_str(), Report.Obligations.size(),
                  Report.TotalSeconds);
      Ctx.addOptimization(std::move(O));
    }
    return true;
  }

  void compile(ir::Program &Prog) { Ctx.runPipeline(Prog); }

private:
  static api::CobaltConfig makeConfig() {
    api::CobaltConfig Config;
    Config.Prover.TimeoutMs = 4000;
    return Config;
  }

  api::CobaltContext Ctx;
};

} // namespace

int main() {
  ExtensibleCompiler Compiler;

  std::printf("user submits a correct copy-propagation pass:\n");
  Compiler.submit(R"(
    label syntacticDef(X) :=
      case currStmt of
        decl X => true | X := E9 => true | X := new => true
      else => false endcase;

    label mayDef(X) :=
      case currStmt of
        *Y9 := E9 => true | Y9 := P9(_) => true
      else => syntacticDef(X) endcase;

    optimization user_copy_prop :=
      forward
      stmt(Y := Z)
      followed by !mayDef(Y) && !mayDef(Z)
      until X := Y => X := Z
      with witness eta(Y) = eta(Z);
  )");

  std::printf("\nuser submits a buggy variant (forgot !mayDef(Z)):\n");
  bool Admitted = Compiler.submit(R"(
    label syntacticDef(X) :=
      case currStmt of
        decl X => true | X := E9 => true | X := new => true
      else => false endcase;

    label mayDef(X) :=
      case currStmt of
        *Y9 := E9 => true | Y9 := P9(_) => true
      else => syntacticDef(X) endcase;

    optimization user_copy_prop_buggy :=
      forward
      stmt(Y := Z)
      followed by !mayDef(Y)
      until X := Y => X := Z
      with witness eta(Y) = eta(Z);
  )");
  std::printf("  (the compiler %s it)\n\n",
              Admitted ? "!!! wrongly admitted" : "correctly refused");

  // Only the proven pass runs.
  ir::Program Prog = ir::parseProgramOrDie(R"(
    proc main(n) {
      decl y;
      decl r;
      y := n;
      r := y;
      return r;
    }
  )");
  std::printf("compiling with the admitted pass:\nbefore:\n%s\n",
              ir::toString(Prog).c_str());
  Compiler.compile(Prog);
  std::printf("after:\n%s\n", ir::toString(Prog).c_str());

  ir::Interpreter Interp(Prog);
  std::printf("main(41) = %s\n", Interp.run(41).str().c_str());
  return 0;
}
