//===- pointer_analysis.cpp - Paper §2.4: pure analyses feed rewrites -----===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Example 4 from the paper: the taint analysis is a *pure analysis* —
/// a guard plus a defined label, no rewrite — whose labels make mayDef
/// "less conservative in the face of pointers". We print the per-node
/// notTainted labels and contrast plain constant propagation (killed by
/// the pointer store) with the precise variant (survives it).
///
/// The registration and the analysis run go through `api::CobaltContext`;
/// the contrast at the end drives the engine's free functions directly
/// through the context's component accessors (the incremental-migration
/// path for embedders that still need the low-level API).
///
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"
#include "engine/Engine.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <cstdio>

using namespace cobalt;
using namespace cobalt::engine;

int main() {
  api::CobaltContext Ctx;
  for (const LabelDef &Def : opts::standardLabels())
    Ctx.defineLabel(Def);
  Ctx.addAnalysis(opts::taintAnalysis()); // declares the notTainted label

  ir::Program Prog = ir::parseProgramOrDie(R"(
    proc main(x) {
      decl a;
      decl b;
      decl p;
      decl c;
      a := 2;
      p := &b;
      *p := x;
      c := a;
      return c;
    }
  )");
  ir::Procedure &Main = *Prog.findProc("main");
  std::printf("program (only b's address is taken):\n%s\n",
              ir::toString(Prog).c_str());

  // Run the pure analysis and show its labeling of the CFG (§3.2.3).
  api::PipelineResult Run = Ctx.runPipeline(Prog);
  const Labeling &Labels = *Ctx.passes().labelingFor("main");
  std::printf("taint analysis added %u labels:\n",
              Run.Reports.front().DeltaSize);
  for (int I = 0; I < Main.size(); ++I) {
    std::printf("  %2d: %-18s", I,
                ir::toString(Main.stmtAt(I)).c_str());
    for (const GroundLabel &L : Labels[I])
      std::printf(" %s", L.str().c_str());
    std::printf("\n");
  }

  // Plain const prop: the pointer store may define anything -> no
  // rewrite. Precise const prop: a is untainted -> c := 2.
  {
    ir::Program P1 = Prog;
    RunStats S1 = runOptimization(opts::constProp(), *P1.findProc("main"),
                                  Ctx.registry(), nullptr);
    std::printf("\nconservative const_prop: %u rewrite(s) "
                "(*p := x may define a)\n",
                S1.AppliedCount);

    ir::Program P2 = Prog;
    RunStats S2 =
        runOptimization(opts::constPropPrecise(), *P2.findProc("main"),
                        Ctx.registry(), &Labels);
    std::printf("precise const_prop_precise: %u rewrite(s):\n%s",
                S2.AppliedCount, ir::toString(P2).c_str());
  }
  return 0;
}
