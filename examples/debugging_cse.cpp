//===- debugging_cse.cpp - Paper §6: the redundant-load bug story ---------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's debugging anecdote, replayed mechanically. Redundant-load
/// elimination rewrites a second load of *p to reuse the first one. The
/// authors' initial version only excluded *pointer stores* from the
/// witnessing region — missing that a direct assignment y := e can also
/// change *p, because p could point to y. Their failed soundness proof
/// exposed it; so does ours, with a concrete miscompilation to match.
///
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"
#include "engine/Engine.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Buggy.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <cstdio>

using namespace cobalt;
using namespace cobalt::engine;

int main() {
  api::CobaltConfig Config;
  Config.Prover.TimeoutMs = 4000;
  api::CobaltContext Ctx(Config);
  for (const LabelDef &Def : opts::standardLabels())
    Ctx.defineLabel(Def);
  Ctx.addAnalysis(opts::taintAnalysis()); // declares notTainted
  opts::BuggyCase Buggy = opts::loadCseNoTaint();
  for (const LabelDef &Def : Buggy.Opt.Labels)
    Ctx.defineLabel(Def);
  const LabelRegistry &Registry = Ctx.registry();

  // ------------------------------------------------------------------
  // The program that exposes the bug: p points to y, so `y := 7`
  // changes *p between the two loads.
  // ------------------------------------------------------------------
  ir::Program Prog = ir::parseProgramOrDie(R"(
    proc main(n) {
      decl y;
      decl p;
      decl a;
      decl b;
      y := 1;
      p := &y;
      a := *p;
      y := 7;
      b := *p;
      return b;
    }
  )");
  std::printf("program (p aliases y; *p is 1 then 7):\n%s\n",
              ir::toString(Prog).c_str());

  // ------------------------------------------------------------------
  // 1. What the buggy optimization would DO: a real miscompilation.
  //    (We run it deliberately, without checking it first.)
  // ------------------------------------------------------------------
  ir::Program Miscompiled = Prog;
  RunStats Stats = runOptimization(Buggy.Opt, *Miscompiled.findProc("main"),
                                   Registry, nullptr);
  std::printf("buggy '%s' rewrote %u site(s):\n%s\n",
              Buggy.Opt.Name.c_str(), Stats.AppliedCount,
              ir::toString(Miscompiled).c_str());
  ir::Interpreter IO(Prog), IB(Miscompiled);
  std::printf("original:     main(0) = %s\n", IO.run(0).str().c_str());
  std::printf("miscompiled:  main(0) = %s   <-- wrong!\n\n",
              IB.run(0).str().c_str());

  // ------------------------------------------------------------------
  // 2. What the checker SAYS, before any program is ever compiled: the
  //    preservation obligation fails, with a counterexample context.
  // ------------------------------------------------------------------
  checker::CheckReport Bad = Ctx.check(Buggy.Opt);
  std::printf("checking the buggy version: %s\n",
              Bad.Sound ? "SOUND (?!)" : "rejected");
  for (const auto &Ob : Bad.Obligations)
    if (!Ob.proven()) {
      std::printf("  %s failed — the witnessing region does not preserve "
                  "eta(X) = eta(*P)\n",
                  Ob.Name.c_str());
      if (!Ob.Counterexample.empty())
        std::printf("  counterexample context: %s...\n",
                    Ob.Counterexample.substr(0, 140).c_str());
      break;
    }

  // ------------------------------------------------------------------
  // 3. The fix (paper: "once we incorporated pointer information"):
  //    intervening assignments must target untainted variables. The
  //    fixed version is proven sound, and on this program it simply
  //    fires nowhere (y is tainted).
  // ------------------------------------------------------------------
  checker::CheckReport Good = Ctx.check(opts::loadCse());
  std::printf("\nchecking the fixed version: %s (%.2f s)\n",
              Good.Sound ? "SOUND" : "rejected", Good.TotalSeconds);

  ir::Program Safe = Prog;
  Labeling Labels;
  runPureAnalysis(opts::taintAnalysis(), *Safe.findProc("main"), Registry,
                  Labels);
  RunStats SafeStats = runOptimization(
      opts::loadCse(), *Safe.findProc("main"), Registry, &Labels);
  std::printf("fixed 'load_cse' on the alias program: %u rewrite(s) "
              "(correctly none)\n",
              SafeStats.AppliedCount);
  return Good.Sound && !Bad.Sound ? 0 : 1;
}
