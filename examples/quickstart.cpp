//===- quickstart.cpp - Define, prove, and run an optimization -----------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The complete Cobalt workflow in one file:
///
///   1. write an optimization as a guarded rewrite rule with a witness
///      (the paper's Example 1, constant propagation);
///   2. let the checker *prove it sound* — once and for all, for any
///      input program;
///   3. run it through the execution engine on a program.
///
/// Everything goes through one `api::CobaltContext`: it owns the label
/// registry, the prover, the pass manager, and (when configured) the
/// thread pool and the persistent verdict cache.
///
/// Build and run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"
#include "core/Builder.h"
#include "ir/Interp.h"
#include "ir/Printer.h"
#include "opts/Labels.h"

#include <cstdio>

using namespace cobalt;

int main() {
  // ------------------------------------------------------------------
  // 1. The optimization: paper §2.1, Example 1.
  //
  //      stmt(Y := C)  followed by  ¬mayDef(Y)
  //      until  X := Y  ⇒  X := C
  //      with witness  η(Y) = C
  // ------------------------------------------------------------------
  Optimization ConstProp =
      OptBuilder("const_prop")
          .forward()
          .psi1(stmtIs("Y := C"))
          .psi2(fNot(labelF("mayDef", {tExpr("Y")})))
          .rewrite("X := Y", "X := C")
          .witness(wEq(curEval("Y"), curEval("C")))
          .withLabel(opts::syntacticDefLabel())
          .withLabel(opts::mayDefLabel())
          .build();

  // ------------------------------------------------------------------
  // 2. Prove it sound (paper §4): the checker discharges the
  //    optimization-specific obligations F1-F3 with Z3. No testing, no
  //    trust: if this succeeds, every transformation the pattern ever
  //    suggests is semantics-preserving.
  //
  //    With Config.Jobs > 1 the obligations fan out over a thread pool;
  //    the report is bit-identical either way.
  // ------------------------------------------------------------------
  api::CobaltContext Ctx;
  Ctx.addOptimization(ConstProp);
  checker::CheckReport Report = Ctx.check(ConstProp);
  std::printf("soundness check: %s\n\n", Report.str().c_str());
  if (!Report.Sound)
    return 1;

  // ------------------------------------------------------------------
  // 3. Run it (paper §5.2). The engine evaluates all instances of the
  //    pattern simultaneously with a substitution-set dataflow analysis.
  // ------------------------------------------------------------------
  auto Prog = Ctx.parseProgram(R"(
    proc main(x) {
      decl a;
      decl b;
      decl c;
      a := 2;
      b := 3;
      c := a;
      return c;
    }
  )");
  if (!Prog) {
    std::fprintf(stderr, "%s\n", Prog.error().str().c_str());
    return 1;
  }
  std::printf("before:\n%s\n", ir::toString(*Prog).c_str());

  api::PipelineResult Run = Ctx.runPipeline(*Prog);
  std::printf("after %u rewrite(s):\n%s\n", Run.Applied,
              ir::toString(*Prog).c_str());

  // The program still computes the same thing.
  ir::Interpreter Interp(*Prog);
  ir::RunResult R = Interp.run(0);
  std::printf("main(0) = %s\n", R.str().c_str());
  return 0;
}
