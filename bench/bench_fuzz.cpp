//===- bench_fuzz.cpp - Fuzzing harness throughput ------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Measures the differential-fuzzing harness on the seeded buggy-rule
/// suite: program-pair throughput, how many behavioral divergences the
/// campaign surfaces, and how hard the reducer shrinks the reproducers
/// (mean reduction ratio, statements-after over statements-before).
/// Emits BENCH_fuzz.json for the results dashboard.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>

using namespace cobalt;
using namespace cobalt::fuzz;

int main() {
  FuzzOptions Options;
  Options.Seed = 1;
  Options.Runs = 120;
  Options.Minimize = true;

  std::vector<FuzzTarget> Targets = buggySuiteTargets();
  support::ThreadPool Pool(2);

  auto Start = std::chrono::steady_clock::now();
  FuzzSummary Sum = runFuzz(Targets, Options, Pool);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  // Each diffed pair runs the original and the optimized program on every
  // probe input (with early exit on the first divergence), so input-count
  // times two is an upper-bound estimate of interpreter executions.
  double PairsPerSec = Seconds > 0 ? Sum.PairsDiffed / Seconds : 0;
  double ExecsPerSec =
      PairsPerSec * 2 * static_cast<double>(Options.Oracle.Inputs.size());

  double RatioSum = 0;
  unsigned RatioCount = 0;
  for (const FuzzFinding &F : Sum.Findings) {
    if (F.StatementsBefore == 0)
      continue;
    RatioSum += static_cast<double>(F.StatementsAfter) / F.StatementsBefore;
    ++RatioCount;
  }
  double MeanRatio = RatioCount ? RatioSum / RatioCount : 1.0;

  std::printf("fuzz: %u runs, %llu pairs in %.2f s (%.0f pairs/s, "
              "~%.0f execs/s)\n",
              Sum.RunsExecuted, (unsigned long long)Sum.PairsDiffed, Seconds,
              PairsPerSec, ExecsPerSec);
  std::printf("      %llu divergences (%llu caught by checker, %llu "
              "checker-missed), %zu minimized findings, mean reduction "
              "ratio %.3f\n",
              (unsigned long long)Sum.Divergences,
              (unsigned long long)Sum.CaughtByChecker,
              (unsigned long long)Sum.CheckerMissed, Sum.Findings.size(),
              MeanRatio);

  std::FILE *Json = std::fopen("BENCH_fuzz.json", "w");
  if (Json) {
    std::fprintf(
        Json,
        "{\n  \"benchmark\": \"fuzz\",\n"
        "  \"runs\": %u,\n  \"pairs_diffed\": %llu,\n"
        "  \"seconds\": %.3f,\n  \"pairs_per_sec\": %.1f,\n"
        "  \"execs_per_sec_est\": %.1f,\n  \"divergences\": %llu,\n"
        "  \"caught_by_checker\": %llu,\n  \"checker_missed\": %llu,\n"
        "  \"findings\": %zu,\n  \"mean_reduction_ratio\": %.4f\n}\n",
        Sum.RunsExecuted, (unsigned long long)Sum.PairsDiffed, Seconds,
        PairsPerSec, ExecsPerSec, (unsigned long long)Sum.Divergences,
        (unsigned long long)Sum.CaughtByChecker,
        (unsigned long long)Sum.CheckerMissed, Sum.Findings.size(),
        MeanRatio);
    std::fclose(Json);
    std::printf("wrote BENCH_fuzz.json\n");
  }

  // The bench doubles as an invariant check: on the seeded buggy suite
  // the checker must never have blessed a rule that miscompiles.
  bool Ok = Sum.CheckerMissed == 0 && Sum.Divergences > 0;
  std::printf(Ok ? "oracle invariants hold\n"
                 : "INVARIANT VIOLATED: checker_missed=%llu "
                   "divergences=%llu\n",
              (unsigned long long)Sum.CheckerMissed,
              (unsigned long long)Sum.Divergences);
  return Ok ? 0 : 1;
}
