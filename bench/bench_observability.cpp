//===- bench_observability.cpp - What always-on telemetry costs -----------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Prices the observability tier (DESIGN.md §9) on the warm daemon
/// path, where its relative cost is highest: every request is answered
/// from the verdict cache / dedup memo, so span recording, trace-ID
/// plumbing, latency histograms, and flight-recorder notes are a large
/// fraction of the little work that remains.
///
/// Two identical daemons serve the same warm mixed batch (70%
/// single-definition checks, 20% full-suite checks, 10% stats), one
/// with telemetry off, one with tracing + metrics + flight recorder
/// on. Batches alternate off/on for several repetitions and each side
/// keeps its best wall, squeezing scheduler drift out of the ratio.
///
/// Gate (exit nonzero on failure, enforced by `ctest -L benchgate`):
///   - telemetry-on wall <= telemetry-off wall * 1.03 + 0.20 s
///     (the ISSUE's "< 3% tracing overhead", with an absolute floor so
///     micro-walls on loaded CI boxes cannot trip the relative gate)
///
/// Emits BENCH_observability.json next to the human-readable table.
/// `--quick` shrinks the batch for smoke runs (gate still enforced).
///
//===----------------------------------------------------------------------===//

#include "api/Service.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "service/Client.h"
#include "service/Daemon.h"
#include "service/Protocol.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

using namespace cobalt;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// The standard 21-definition suite behind a daemon, telemetry on or
/// off. Everything else identical.
std::shared_ptr<api::CobaltService> buildService(bool Telemetry) {
  api::CobaltConfig Config;
  Config.Jobs = 1;
  Config.Telemetry = Telemetry;
  api::CobaltService::Builder B;
  B.config(Config);
  for (const LabelDef &Def : opts::standardLabels())
    B.defineLabel(Def);
  for (const PureAnalysis &A : opts::allAnalyses())
    B.addAnalysis(A);
  for (const Optimization &O : opts::allOptimizations())
    B.addOptimization(O);
  return B.build();
}

struct Side {
  std::shared_ptr<api::CobaltService> Svc;
  std::unique_ptr<service::Daemon> Daemon;
  service::Client Conn;
  double BestWall = 1e18;
};

bool startSide(Side &S, bool Telemetry, const char *Tag) {
  S.Svc = buildService(Telemetry);
  std::string Socket = "/tmp/cobalt_bench_obs_" + std::string(Tag) + "_" +
                       std::to_string(getpid()) + ".sock";
  S.Daemon = std::make_unique<service::Daemon>(S.Svc, Socket);
  if (S.Daemon->start().failed())
    return false;
  if (S.Conn.connect(S.Daemon->socketPath()).failed())
    return false;
  // Warm: prove the whole suite once, so the measured batches pay only
  // the service tier (memo lookups, serialization — and telemetry).
  support::Expected<std::string> R =
      S.Conn.request(service::makeCheckRequest({}), /*DeadlineMs=*/0);
  return R.ok() && R->find("\"status\": \"ok\"") != std::string::npos;
}

/// One timed batch of \p Requests warm requests over a live connection.
double runBatch(Side &S, unsigned Requests,
                const std::vector<std::string> &Names) {
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I < Requests; ++I) {
    std::string Req;
    switch (I % 10) {
    case 0:
      Req = service::makeStatsRequest();
      break;
    case 8:
    case 9:
      Req = service::makeCheckRequest({});
      break;
    default:
      Req = service::makeCheckRequest({Names[I % Names.size()]});
      break;
    }
    support::Expected<std::string> R =
        S.Conn.request(Req, /*DeadlineMs=*/0);
    if (!R.ok())
      return -1.0;
  }
  return secondsSince(Start);
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Requests = 2000, Reps = 3;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0) {
      Requests = 400;
    } else if (std::strcmp(Argv[I], "--requests") == 0 && I + 1 < Argc) {
      Requests = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else {
      std::fprintf(stderr,
                   "usage: bench_observability [--quick] [--requests n]\n");
      return 2;
    }
  }

  std::printf("observability: warm daemon, telemetry off vs on "
              "(%u requests x %u reps, best wall)\n\n",
              Requests, Reps);

  Side Off, On;
  if (!startSide(Off, /*Telemetry=*/false, "off") ||
      !startSide(On, /*Telemetry=*/true, "on")) {
    std::fprintf(stderr, "bench_observability: daemon startup failed\n");
    return 2;
  }

  std::vector<std::string> Names;
  for (const PureAnalysis &A : On.Svc->analyses())
    Names.push_back(A.Name);
  for (const Optimization &O : On.Svc->optimizations())
    Names.push_back(O.Name);

  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    double OffWall = runBatch(Off, Requests, Names);
    double OnWall = runBatch(On, Requests, Names);
    if (OffWall < 0.0 || OnWall < 0.0) {
      std::fprintf(stderr, "bench_observability: request failed\n");
      return 2;
    }
    Off.BestWall = std::min(Off.BestWall, OffWall);
    On.BestWall = std::min(On.BestWall, OnWall);
    std::printf("  rep %u   off %.3f s (%.0f req/s)   on %.3f s "
                "(%.0f req/s)\n",
                Rep + 1, OffWall, Requests / OffWall, OnWall,
                Requests / OnWall);
  }

  // What the enabled side actually recorded while being measured — the
  // run is only an honest price if the instrumentation really fired.
  uint64_t Spans = 0, FlightEvents = 0, LatencySamples = 0;
  if (support::Telemetry *T = On.Svc->telemetry()) {
    Spans = T->Trace.eventCount();
    FlightEvents = T->Metrics.counter("flight.events");
    LatencySamples = T->Metrics.histogram("service.latency.check").Count +
                     T->Metrics.histogram("service.latency.stats").Count;
  }
  Off.Daemon->stop();
  On.Daemon->stop();

  constexpr double RatioMax = 1.03, AbsToleranceS = 0.20;
  double Overhead =
      Off.BestWall > 0.0 ? On.BestWall / Off.BestWall - 1.0 : 0.0;
  bool Recorded = !support::telemetryCompiledIn() ||
                  (Spans > 0 && FlightEvents > 0 && LatencySamples > 0);
  bool GateWall = On.BestWall <= Off.BestWall * RatioMax + AbsToleranceS;
  bool Pass = GateWall && Recorded;

  std::printf("\n  best: off %.3f s, on %.3f s — overhead %+.2f%% "
              "(gate: <= %.0f%% + %.2f s abs) %s\n",
              Off.BestWall, On.BestWall, Overhead * 1e2,
              (RatioMax - 1.0) * 1e2, AbsToleranceS,
              GateWall ? "PASS" : "FAIL");
  std::printf("  recorded while measured: %llu span(s), %llu flight "
              "event(s), %llu latency sample(s) %s\n",
              static_cast<unsigned long long>(Spans),
              static_cast<unsigned long long>(FlightEvents),
              static_cast<unsigned long long>(LatencySamples),
              Recorded ? "" : "[GATE: telemetry never fired]");

  char Buf[512];
  std::string J = "{\n  \"benchmark\": \"observability\",\n";
  J += "  \"requests\": " + std::to_string(Requests) + ",\n";
  J += "  \"reps\": " + std::to_string(Reps) + ",\n";
  std::snprintf(Buf, sizeof(Buf),
                "  \"off_wall_seconds\": %.3f,\n"
                "  \"on_wall_seconds\": %.3f,\n"
                "  \"overhead\": %.4f,\n",
                Off.BestWall, On.BestWall, Overhead);
  J += Buf;
  std::snprintf(
      Buf, sizeof(Buf),
      "  \"recorded\": {\"spans\": %llu, \"flight_events\": %llu, "
      "\"latency_samples\": %llu},\n",
      static_cast<unsigned long long>(Spans),
      static_cast<unsigned long long>(FlightEvents),
      static_cast<unsigned long long>(LatencySamples));
  J += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"gates\": {\"ratio_max\": %.2f, \"abs_tolerance_s\": "
                "%.2f, \"wall\": %s, \"recorded\": %s, \"pass\": %s}\n}\n",
                RatioMax, AbsToleranceS, GateWall ? "true" : "false",
                Recorded ? "true" : "false", Pass ? "true" : "false");
  J += Buf;

  std::FILE *F = std::fopen("BENCH_observability.json", "wb");
  if (F) {
    std::fwrite(J.data(), 1, J.size(), F);
    std::fclose(F);
  }
  std::printf("\n%s", J.c_str());
  if (!Pass) {
    std::fprintf(stderr, "bench_observability: GATE FAILURE\n");
    return 1;
  }
  return 0;
}
