//===- bench_checker.cpp - Experiment E1: prover time per optimization ----===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's §5.1 quantitative result: "we have implemented
/// and automatically proven sound a dozen Cobalt optimizations and
/// analyses ... the time taken by Simplify to discharge the
/// optimization-specific obligations ranges from 3 to 104 seconds, with
/// an average of 28 seconds" (2003 hardware, Simplify).
///
/// This harness prints one row per optimization/analysis: obligation
/// count, total prover (Z3) time, min/max per obligation, and the
/// verdict. Absolute numbers are far smaller than the paper's (Z3 2021 vs
/// Simplify 2003); the comparable *shape* is that every pass is proven,
/// with pointer-aware and backward/insertion patterns costing the most.
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace cobalt;
using namespace cobalt::checker;

int main() {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");

  SoundnessChecker SC(Registry, opts::allAnalyses());
  SC.setTimeoutMs(60000);

  std::printf("E1: automatic soundness proofs (paper 5.1: Simplify took "
              "3-104 s, avg 28 s, on 2003 hardware)\n");
  std::printf("%-24s %6s %10s %10s %10s  %s\n", "pass", "#oblig",
              "total(s)", "min(ms)", "max(ms)", "verdict");

  std::vector<CheckReport> Reports;
  for (const PureAnalysis &A : opts::allAnalyses())
    Reports.push_back(SC.checkAnalysis(A));
  for (const Optimization &O : opts::allOptimizations())
    Reports.push_back(SC.checkOptimization(O));

  double Total = 0.0, Min = 1e9, Max = 0.0;
  unsigned SoundCount = 0;
  for (const CheckReport &R : Reports) {
    double ObMin = 1e9, ObMax = 0.0;
    for (const ObligationResult &Ob : R.Obligations) {
      ObMin = std::min(ObMin, Ob.Seconds);
      ObMax = std::max(ObMax, Ob.Seconds);
    }
    std::printf("%-24s %6zu %10.3f %10.1f %10.1f  %s%s\n", R.Name.c_str(),
                R.Obligations.size(), R.TotalSeconds, ObMin * 1000,
                ObMax * 1000, R.Sound ? "SOUND" : "NOT-PROVEN",
                R.AssumedAnalyses.empty() ? "" : " (assumes analysis)");
    Total += R.TotalSeconds;
    Min = std::min(Min, R.TotalSeconds);
    Max = std::max(Max, R.TotalSeconds);
    SoundCount += R.Sound;
  }
  std::printf("---\n");
  std::printf("passes proven sound: %u / %zu\n", SoundCount,
              Reports.size());
  std::printf("per-pass prover time: min %.3f s, max %.3f s, avg %.3f s, "
              "total %.3f s\n",
              Min, Max, Total / Reports.size(), Total);
  std::printf("(paper, per-pass: min 3 s, max 104 s, avg 28 s — shape to "
              "match: all proven; spread of >1 order of magnitude;\n"
              " pointer-aware/backward patterns are the costly ones)\n");
  return SoundCount == Reports.size() ? 0 : 1;
}
