//===- bench_checker.cpp - Experiment E1: prover time per optimization ----===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's §5.1 quantitative result: "we have implemented
/// and automatically proven sound a dozen Cobalt optimizations and
/// analyses ... the time taken by Simplify to discharge the
/// optimization-specific obligations ranges from 3 to 104 seconds, with
/// an average of 28 seconds" (2003 hardware, Simplify).
///
/// This harness prints one row per optimization/analysis: obligation
/// count, total prover (Z3) time, min/max per obligation, and the
/// verdict. Absolute numbers are far smaller than the paper's (Z3 2021 vs
/// Simplify 2003); the comparable *shape* is that every pass is proven,
/// with pointer-aware and backward/insertion patterns costing the most.
///
/// ## Telemetry overhead (BENCH_telemetry.json)
///
/// A second experiment quantifies what DESIGN.md §9 promises: with
/// tracing + metrics *enabled*, the full suite check costs < 3% extra
/// wall (best-of-2 per configuration, with a small absolute tolerance
/// because the prover's wall time is noisy at the hundred-ms scale);
/// with telemetry *disabled* (no ambient sink installed), the
/// instrumentation sites cost a few ns each — measured by a 10M-iteration
/// null-sink microbench and scaled by the sites one suite run executes,
/// far under the 1% budget.
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

using namespace cobalt;
using namespace cobalt::checker;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

LabelRegistry makeRegistry() {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");
  return Registry;
}

/// One full-suite check from a fresh checker (fresh in-memory cache, no
/// disk cache: every run pays for every obligation), optionally under an
/// ambient telemetry session. Returns wall seconds.
double runSuiteOnce(support::Telemetry *Telem) {
  LabelRegistry Registry = makeRegistry();
  SoundnessChecker SC(Registry, opts::allAnalyses());
  SC.setTimeoutMs(60000);
  support::TelemetryScope Scope(Telem);
  auto Start = std::chrono::steady_clock::now();
  for (const PureAnalysis &A : opts::allAnalyses())
    SC.checkAnalysis(A);
  for (const Optimization &O : opts::allOptimizations())
    SC.checkOptimization(O);
  return secondsSince(Start);
}

/// Cost of one instrumentation site with no ambient telemetry: a
/// TraceSpan construct/destruct plus a metricAdd, the exact pair the
/// hottest sites execute. 10M iterations; returns ns per site.
double measureDisabledSiteNs() {
  constexpr uint64_t Iters = 10'000'000;
  auto Start = std::chrono::steady_clock::now();
  for (uint64_t I = 0; I < Iters; ++I) {
    support::TraceSpan Span("bench", "disabled");
    support::metricAdd("bench.disabled");
  }
  double Seconds = secondsSince(Start);
  return Seconds * 1e9 / static_cast<double>(Iters);
}

} // namespace

int main() {
  LabelRegistry Registry = makeRegistry();

  SoundnessChecker SC(Registry, opts::allAnalyses());
  SC.setTimeoutMs(60000);

  std::printf("E1: automatic soundness proofs (paper 5.1: Simplify took "
              "3-104 s, avg 28 s, on 2003 hardware)\n");
  std::printf("%-24s %6s %10s %10s %10s  %s\n", "pass", "#oblig",
              "total(s)", "min(ms)", "max(ms)", "verdict");

  std::vector<CheckReport> Reports;
  for (const PureAnalysis &A : opts::allAnalyses())
    Reports.push_back(SC.checkAnalysis(A));
  for (const Optimization &O : opts::allOptimizations())
    Reports.push_back(SC.checkOptimization(O));

  double Total = 0.0, Min = 1e9, Max = 0.0;
  unsigned SoundCount = 0;
  unsigned TotalObligations = 0;
  for (const CheckReport &R : Reports) {
    double ObMin = 1e9, ObMax = 0.0;
    for (const ObligationResult &Ob : R.Obligations) {
      ObMin = std::min(ObMin, Ob.Seconds);
      ObMax = std::max(ObMax, Ob.Seconds);
    }
    std::printf("%-24s %6zu %10.3f %10.1f %10.1f  %s%s\n", R.Name.c_str(),
                R.Obligations.size(), R.TotalSeconds, ObMin * 1000,
                ObMax * 1000, R.Sound ? "SOUND" : "NOT-PROVEN",
                R.AssumedAnalyses.empty() ? "" : " (assumes analysis)");
    Total += R.TotalSeconds;
    Min = std::min(Min, R.TotalSeconds);
    Max = std::max(Max, R.TotalSeconds);
    SoundCount += R.Sound;
    TotalObligations += static_cast<unsigned>(R.Obligations.size());
  }
  std::printf("---\n");
  std::printf("passes proven sound: %u / %zu\n", SoundCount,
              Reports.size());
  std::printf("per-pass prover time: min %.3f s, max %.3f s, avg %.3f s, "
              "total %.3f s\n",
              Min, Max, Total / Reports.size(), Total);
  std::printf("(paper, per-pass: min 3 s, max 104 s, avg 28 s — shape to "
              "match: all proven; spread of >1 order of magnitude;\n"
              " pointer-aware/backward patterns are the costly ones)\n");

  //===--------------------------------------------------------------------===//
  // Telemetry overhead experiment.
  //===--------------------------------------------------------------------===//

  std::printf("\ntelemetry overhead: %zu-definition suite, best of 2 per "
              "configuration\n",
              Reports.size());

  // Interleave the configurations and keep the best of each: back-to-back
  // runs see the same machine state, and min damps scheduler noise.
  double BaselineWall = 1e18, EnabledWall = 1e18;
  size_t EnabledSpans = 0;
  for (int Round = 0; Round < 2; ++Round) {
    BaselineWall = std::min(BaselineWall, runSuiteOnce(nullptr));
    support::Telemetry Telem;
    EnabledWall = std::min(EnabledWall, runSuiteOnce(&Telem));
    EnabledSpans = Telem.Trace.eventCount();
  }
  double EnabledPct =
      (EnabledWall - BaselineWall) / BaselineWall * 100.0;

  double DisabledSiteNs = measureDisabledSiteNs();
  // Scale the per-site cost by a generous site count for one suite run:
  // each recorded span bounds one instrumentation scope, and each span's
  // site also fires a handful of metric updates.
  double SitesPerRun = static_cast<double>(EnabledSpans) * 8.0;
  double DisabledPct =
      SitesPerRun * DisabledSiteNs / (BaselineWall * 1e9) * 100.0;

  std::printf("  baseline (no telemetry):  %7.3f s\n", BaselineWall);
  std::printf("  enabled (trace+metrics):  %7.3f s  (%+.2f%%, %zu "
              "spans)\n",
              EnabledWall, EnabledPct, EnabledSpans);
  std::printf("  disabled site cost:       %7.2f ns/site, ~%.0f sites "
              "-> %.5f%% of baseline\n",
              DisabledSiteNs, SitesPerRun, DisabledPct);

  // Gates. The enabled gate carries a 200 ms absolute tolerance: on this
  // suite 3% is a ~200 ms margin, the same order as Z3's run-to-run wall
  // noise, and the bench must not flake on a loaded box.
  bool EnabledOk =
      EnabledPct < 3.0 || (EnabledWall - BaselineWall) < 0.2;
  bool DisabledOk = DisabledPct < 1.0;

  // BENCH_telemetry.json: the in-process checker instrumentation price.
  // (The *daemon* tracing price lives in BENCH_observability.json,
  // owned by bench_observability under ctest -L benchgate.)
  std::FILE *Json = std::fopen("BENCH_telemetry.json", "w");
  if (Json) {
    std::fprintf(
        Json,
        "{\n  \"benchmark\": \"telemetry\",\n"
        "  \"definitions\": %zu,\n  \"obligations\": %u,\n"
        "  \"baseline_wall_seconds\": %.3f,\n"
        "  \"enabled_wall_seconds\": %.3f,\n"
        "  \"enabled_overhead_pct\": %.2f,\n"
        "  \"enabled_spans\": %zu,\n"
        "  \"disabled_site_ns\": %.2f,\n"
        "  \"disabled_overhead_pct\": %.5f,\n"
        "  \"gates\": {\"enabled_overhead_max_pct\": 3.0, "
        "\"enabled_abs_tolerance_seconds\": 0.2, "
        "\"disabled_overhead_max_pct\": 1.0, \"pass\": %s}\n}\n",
        Reports.size(), TotalObligations, BaselineWall, EnabledWall,
        EnabledPct, EnabledSpans, DisabledSiteNs, DisabledPct,
        EnabledOk && DisabledOk ? "true" : "false");
    std::fclose(Json);
    std::printf("wrote BENCH_telemetry.json\n");
  }

  if (!EnabledOk)
    std::printf("GATE FAILED: enabled telemetry overhead %.2f%% >= 3%%\n",
                EnabledPct);
  if (!DisabledOk)
    std::printf("GATE FAILED: disabled-path overhead %.5f%% >= 1%%\n",
                DisabledPct);
  if (EnabledOk && DisabledOk)
    std::printf("gates passed: enabled %+.2f%%, disabled %.5f%%\n",
                EnabledPct, DisabledPct);

  bool AllSound = SoundCount == Reports.size();
  return AllSound && EnabledOk && DisabledOk ? 0 : 1;
}
