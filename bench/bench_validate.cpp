//===- bench_validate.cpp - Experiment E9: translation validation ---------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E9: throughput and verdict quality of the translation
/// validator. A fixed, deterministic set of program pairs — one per
/// proof path (alpha, straight-line simulation, loop-rotated
/// simulation) plus a probe-caught miscompile — is validated through a
/// fresh SoundnessChecker, and the run gates on the exact expected
/// verdict mix: any drift (above all a miscompile blessed as
/// Equivalent) exits 1. Reports pairs/s and the p50 per-obligation
/// latency; emits BENCH_validate.json in the CWD.
///
//===----------------------------------------------------------------------===//

#include "validate/Validate.h"

#include "checker/Soundness.h"
#include "ir/Parser.h"
#include "opts/Labels.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace cobalt;
using namespace cobalt::validate;

namespace {

const char *SumLoop = R"(
proc main(n) {
  decl i;
  decl s;
  decl t;
  i := 0;
  s := 0;
  t := i < n;
  if t goto 7 else 11;
  s := s + i;
  i := i + 1;
  t := i < n;
  if t goto 7 else 11;
  return s;
}
)";

// SumLoop under a bijective variable renaming: alpha path, no prover.
const char *SumLoopRenamed = R"(
proc main(n) {
  decl j;
  decl acc;
  decl c;
  j := 0;
  acc := 0;
  c := j < n;
  if c goto 7 else 11;
  acc := acc + j;
  j := j + 1;
  c := j < n;
  if c goto 7 else 11;
  return acc;
}
)";

// Top-test loop computing the same sum: one cut in the rotated
// candidate corresponds to two stop points — the simulation path.
const char *SumLoopTopTest = R"(
proc main(n) {
  decl i;
  decl s;
  decl t;
  i := 0;
  s := 0;
  t := i < n;
  if t goto 7 else 10;
  s := s + i;
  i := i + 1;
  if 1 goto 5 else 5;
  return s;
}
)";

// Straight-line constant propagation: simulation with facts.
const char *StraightOrig = R"(
proc main(n) {
  decl x;
  decl y;
  x := 3;
  y := x + n;
  return y;
}
)";

const char *StraightOpt = R"(
proc main(n) {
  decl x;
  decl y;
  x := 3;
  y := 3 + n;
  return y;
}
)";

// Off-by-one stride: the differential probe must catch this.
const char *SumLoopMiscompiled = R"(
proc main(n) {
  decl i;
  decl s;
  decl t;
  i := 0;
  s := 0;
  t := i < n;
  if t goto 7 else 11;
  s := s + i;
  i := i + 2;
  t := i < n;
  if t goto 7 else 11;
  return s;
}
)";

struct PairCase {
  const char *Name;
  const char *Orig;
  const char *Cand;
  Verdict Expected;
  const char *ExpectedMethod; // per-proc proof method, "" = none
};

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;

  std::vector<PairCase> Cases = {
      {"alpha/renamed", SumLoop, SumLoopRenamed, Verdict::V_Equivalent, "alpha"},
      {"simulation/const-prop", StraightOrig, StraightOpt, Verdict::V_Equivalent,
       "simulation"},
      {"simulation/loop-rotated", SumLoopTopTest, SumLoop, Verdict::V_Equivalent,
       "simulation"},
      {"probe/miscompiled", SumLoop, SumLoopMiscompiled, Verdict::V_Inequivalent,
       ""},
  };
  if (Quick)
    Cases.resize(2);

  std::printf("validate: fixed pair set through the prover "
              "(%zu pairs)\n\n",
              Cases.size());

  // The validator must be honest under the same tight prover budget the
  // fuzz adversary runs with — a verdict that only holds given 30 s
  // escalation ladders is not one CI can afford to check.
  checker::ProverPolicy Policy;
  Policy.InitialTimeoutMs = 500;
  Policy.TimeoutMs = 2000;
  Policy.Retries = 1;
  Policy.BudgetMs = 20000;

  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);

  unsigned Obligations = 0, Proven = 0;
  std::vector<double> ObligationSeconds;
  std::vector<std::string> Rows;
  bool MixOk = true, Blessed = false;

  auto Start = std::chrono::steady_clock::now();
  for (const PairCase &C : Cases) {
    checker::SoundnessChecker Checker(Registry, {});
    Checker.setPolicy(Policy);
    auto T0 = std::chrono::steady_clock::now();
    ValidationReport R =
        validatePrograms(ir::parseProgramOrDie(C.Orig),
                         ir::parseProgramOrDie(C.Cand), Checker, {});
    double Seconds = secondsSince(T0);

    std::string Method;
    for (const ProcOutcome &P : R.Procs) {
      Obligations += P.Obligations;
      Proven += P.Proven;
      if (P.Obligations > 0)
        ObligationSeconds.push_back(P.Seconds / P.Obligations);
      if (!P.Method.empty())
        Method = P.Method;
    }
    bool Ok = R.V == C.Expected && Method == C.ExpectedMethod;
    MixOk = MixOk && Ok;
    if (C.Expected != Verdict::V_Equivalent && R.V == Verdict::V_Equivalent)
      Blessed = true;
    std::printf("  %-26s %-12s via %-10s %.3f s  %s\n", C.Name,
                verdictName(R.V), Method.empty() ? "-" : Method.c_str(),
                Seconds, Ok ? "as expected" : "UNEXPECTED");

    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"name\": \"%s\", \"verdict\": \"%s\", "
                  "\"method\": \"%s\", \"seconds\": %.4f, "
                  "\"expected\": %s}",
                  C.Name, verdictName(R.V), Method.c_str(), Seconds,
                  Ok ? "true" : "false");
    Rows.push_back(Buf);
  }
  double Total = secondsSince(Start);
  double PairsPerSecond = Total > 0 ? Cases.size() / Total : 0;

  double P50 = 0;
  if (!ObligationSeconds.empty()) {
    std::sort(ObligationSeconds.begin(), ObligationSeconds.end());
    P50 = ObligationSeconds[ObligationSeconds.size() / 2];
  }

  bool Pass = MixOk && !Blessed;
  std::printf("\n  %.3f s wall, %.2f pairs/s, %u obligations "
              "(%u proven), p50 obligation %.3f ms\n",
              Total, PairsPerSecond, Obligations, Proven, P50 * 1e3);
  std::printf("  gates: verdict mix %s; blessed miscompiles %s\n",
              MixOk ? "exact PASS" : "drifted FAIL",
              Blessed ? "PRESENT FAIL" : "none PASS");

  std::string J = "{\n  \"benchmark\": \"validate\",\n  \"pairs\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I)
    J += Rows[I] + (I + 1 < Rows.size() ? ",\n" : "\n");
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "  ],\n  \"wall_seconds\": %.3f, "
                "\"pairs_per_second\": %.2f,\n"
                "  \"obligations\": %u, \"proven\": %u, "
                "\"p50_obligation_seconds\": %.4f,\n"
                "  \"gates\": {\"verdict_mix_exact\": %s, "
                "\"blessed_miscompiles\": %s},\n  \"pass\": %s\n}\n",
                Total, PairsPerSecond, Obligations, Proven, P50,
                MixOk ? "true" : "false", Blessed ? "true" : "false",
                Pass ? "true" : "false");
  J += Buf;

  if (std::FILE *F = std::fopen("BENCH_validate.json", "wb")) {
    std::fwrite(J.data(), 1, J.size(), F);
    std::fclose(F);
  }
  std::printf("\n%s", J.c_str());
  if (!Pass) {
    std::fprintf(stderr, "bench_validate: GATE FAILURE\n");
    return 1;
  }
  return 0;
}
