//===- bench_debugging.cpp - Experiment E2: accept vs reject --------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's §6 "debugging benefit" claim as a table: for
/// each buggy variant, the failing obligation (localizing the bug), the
/// rejection time, and whether the counterexample-search pass produced a
/// concrete counterexample context (§7); paired with the fixed version's
/// accept time. Several rows are bugs this reproduction's checker caught
/// in its *own* optimization suite during development.
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"
#include "opts/Buggy.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <cstdio>

using namespace cobalt;
using namespace cobalt::checker;

int main() {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");
  for (const opts::BuggyCase &Case : opts::allBuggyOptimizations())
    for (const LabelDef &Def : Case.Opt.Labels)
      Registry.define(Def);

  SoundnessChecker SC(Registry, opts::allAnalyses());
  SC.setTimeoutMs(4000);

  std::printf("E2: buggy variants rejected, with the failing obligation "
              "localizing the bug (paper 6)\n");
  std::printf("%-28s %-10s %-12s %8s  %s\n", "buggy variant", "verdict",
              "fails at", "time(s)", "counterexample?");

  unsigned Rejected = 0, WithModel = 0;
  auto Cases = opts::allBuggyOptimizations();
  for (const opts::BuggyCase &Case : Cases) {
    CheckReport R = SC.checkOptimization(Case.Opt);
    std::string FailAt = "-";
    bool Model = false;
    for (const ObligationResult &Ob : R.Obligations)
      if (!Ob.proven()) {
        if (FailAt == "-")
          FailAt = Ob.Name;
        if (Ob.St == ObligationResult::Status::OS_Failed)
          Model = true;
      }
    std::printf("%-28s %-10s %-12s %8.2f  %s\n", Case.Opt.Name.c_str(),
                R.Sound ? "ACCEPTED!" : "rejected", FailAt.c_str(),
                R.TotalSeconds, Model ? "yes (sat model)" : "no (unknown)");
    Rejected += !R.Sound;
    WithModel += Model;
  }

  {
    opts::BuggyAnalysisCase Case = opts::buggyTaintAnalysis();
    for (const LabelDef &Def : Case.Analysis.Labels)
      Registry.define(Def);
    SoundnessChecker SC2(Registry);
    SC2.setTimeoutMs(4000);
    CheckReport R = SC2.checkAnalysis(Case.Analysis);
    std::string FailAt = "-";
    for (const ObligationResult &Ob : R.Obligations)
      if (!Ob.proven() && FailAt == "-")
        FailAt = Ob.Name;
    std::printf("%-28s %-10s %-12s %8.2f\n", Case.Analysis.Name.c_str(),
                R.Sound ? "ACCEPTED!" : "rejected", FailAt.c_str(),
                R.TotalSeconds);
    Rejected += !R.Sound;
  }

  std::printf("---\nrejected %u / %zu buggy variants; %u with a concrete "
              "counterexample context\n",
              Rejected, Cases.size() + 1, WithModel);

  // The fixed counterparts accept quickly — the asymmetry the paper's
  // workflow relies on (fast accept for correct passes, localized
  // rejection for broken ones).
  SoundnessChecker SC3(Registry, opts::allAnalyses());
  CheckReport Fixed = SC3.checkOptimization(opts::loadCse());
  std::printf("fixed load_cse (the paper's own bug story): %s in %.2f s\n",
              Fixed.Sound ? "SOUND" : "NOT-PROVEN", Fixed.TotalSeconds);
  return Rejected == Cases.size() + 1 ? 0 : 1;
}
