//===- bench_resilience.cpp - Throughput under injected prover faults -----===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Measures what resilience costs and what degradation looks like: the
/// full check-then-optimize pipeline runs three times with 0%, 10%, and
/// 50% of prover attempts forced to time out (deterministically, via the
/// fault-injection harness). Per series, reports how many definitions
/// still prove (retries absorb isolated faults; sustained fault rates
/// degrade), how many rewrites the proven subset still applies, and the
/// wall-clock throughput of both phases. Emits BENCH_resilience.json for
/// machine consumption next to the human-readable table.
///
/// The headline property: the 50% series still terminates, still applies
/// whatever was proven, and rejects nothing incorrectly — degradation is
/// graceful, never a crash and never unsoundness.
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"
#include "engine/PassManager.h"
#include "ir/Generator.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "support/FaultInjection.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace cobalt;
using namespace cobalt::checker;
using namespace cobalt::engine;

namespace {

struct SeriesResult {
  int InjectPct = 0;
  unsigned Checked = 0;
  unsigned Proven = 0;
  unsigned Unproven = 0;
  unsigned Unsound = 0;
  unsigned Applied = 0;
  double CheckSeconds = 0.0;
  double PipelineSeconds = 0.0;
};

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

SeriesResult runSeries(int InjectPct, uint64_t Seed) {
  // A sustained fault rate on every solver attempt. The escalating-retry
  // policy means a definition only degrades when *all* attempts of some
  // obligation fault — isolated faults are absorbed.
  support::FaultInjector &FI = support::FaultInjector::instance();
  if (InjectPct > 0)
    FI.configure(std::string(support::faults::CheckerForceTimeout) + "%" +
                     std::to_string(InjectPct),
                 Seed);
  else
    FI.reset();

  SeriesResult Res;
  Res.InjectPct = InjectPct;

  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");
  SoundnessChecker SC(Registry, opts::allAnalyses());
  ProverPolicy Policy;
  Policy.TimeoutMs = 20000;
  Policy.InitialTimeoutMs = 2000;
  Policy.Retries = 1;
  SC.setPolicy(Policy);

  // Phase 1: prove the whole suite under fault.
  auto CheckStart = std::chrono::steady_clock::now();
  std::vector<std::string> ProvenAnalyses, ProvenOpts;
  for (const PureAnalysis &A : opts::allAnalyses()) {
    CheckReport R = SC.checkAnalysis(A);
    ++Res.Checked;
    if (R.Sound) {
      ++Res.Proven;
      ProvenAnalyses.push_back(A.Name);
    } else if (R.unsound()) {
      ++Res.Unsound; // must stay 0: faults are never counterexamples
    } else {
      ++Res.Unproven;
    }
  }
  for (const Optimization &O : opts::allOptimizations()) {
    CheckReport R = SC.checkOptimization(O);
    ++Res.Checked;
    if (R.Sound) {
      ++Res.Proven;
      ProvenOpts.push_back(O.Name);
    } else if (R.unsound()) {
      ++Res.Unsound;
    } else {
      ++Res.Unproven;
    }
  }
  Res.CheckSeconds = secondsSince(CheckStart);

  // Phase 2: apply the proven subset (the cobaltc gate) to a generated
  // workload. The prover faults do not reach this phase; what varies is
  // how much of the suite survived phase 1.
  FI.reset();
  PassManager PM;
  for (PureAnalysis &A : opts::allAnalyses())
    for (const std::string &Name : ProvenAnalyses)
      if (A.Name == Name)
        PM.addAnalysis(std::move(A));
  for (Optimization &O : opts::allOptimizations())
    for (const std::string &Name : ProvenOpts)
      if (O.Name == Name)
        PM.addOptimization(std::move(O));

  ir::GenOptions Options;
  Options.NumStmts = 200;
  Options.NumVars = 5;
  Options.WithPointers = true;
  ir::Program Workload = ir::generateProgram(Options, 11);

  auto PipelineStart = std::chrono::steady_clock::now();
  ir::Program Copy = Workload;
  for (const PassReport &R : PM.run(Copy))
    Res.Applied += R.AppliedCount;
  Res.PipelineSeconds = secondsSince(PipelineStart);
  return Res;
}

} // namespace

int main() {
  std::printf("resilience: suite throughput at injected prover-timeout "
              "rates (deterministic, seed-keyed)\n");
  std::printf("%10s %8s %7s %9s %8s %8s %9s %12s\n", "inject(%)", "checked",
              "proven", "unproven", "unsound", "applied", "check(s)",
              "pipeline(s)");

  std::vector<SeriesResult> Series;
  for (int Pct : {0, 10, 50})
    Series.push_back(runSeries(Pct, /*Seed=*/17));

  bool Ok = true;
  for (const SeriesResult &R : Series) {
    std::printf("%10d %8u %7u %9u %8u %8u %9.3f %12.3f\n", R.InjectPct,
                R.Checked, R.Proven, R.Unproven, R.Unsound, R.Applied,
                R.CheckSeconds, R.PipelineSeconds);
    // Graceful-degradation invariants: faults never produce a
    // counterexample, and the clean series proves everything.
    Ok = Ok && R.Unsound == 0;
    if (R.InjectPct == 0)
      Ok = Ok && R.Unproven == 0 && R.Proven == R.Checked;
  }

  std::FILE *Json = std::fopen("BENCH_resilience.json", "w");
  if (Json) {
    std::fprintf(Json, "{\n  \"benchmark\": \"resilience\",\n"
                       "  \"series\": [\n");
    for (size_t I = 0; I < Series.size(); ++I) {
      const SeriesResult &R = Series[I];
      std::fprintf(
          Json,
          "    {\"inject_pct\": %d, \"checked\": %u, \"proven\": %u, "
          "\"unproven\": %u, \"unsound\": %u, \"applied\": %u, "
          "\"check_seconds\": %.3f, \"pipeline_seconds\": %.3f}%s\n",
          R.InjectPct, R.Checked, R.Proven, R.Unproven, R.Unsound,
          R.Applied, R.CheckSeconds, R.PipelineSeconds,
          I + 1 < Series.size() ? "," : "");
    }
    std::fprintf(Json, "  ]\n}\n");
    std::fclose(Json);
    std::printf("wrote BENCH_resilience.json\n");
  }

  std::printf(Ok ? "degradation graceful: no crashes, no spurious "
                   "unsoundness\n"
                 : "INVARIANT VIOLATED: see table\n");
  return Ok ? 0 : 1;
}
