//===- bench_pipeline.cpp - Experiment E6b: full pipelines ----------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end pipelines over generated programs: the §2.3 PRE pipeline
/// (duplicate → CSE → self-assignment removal) and the full registered
/// suite, measured per program size. Counters report how many rewrites
/// actually fired, so the series doubles as a transformation census.
///
//===----------------------------------------------------------------------===//

#include "engine/PassManager.h"
#include "ir/Generator.h"
#include "opts/Optimizations.h"

#include <benchmark/benchmark.h>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

namespace {

Program makeProgram(unsigned Stmts, uint64_t Seed) {
  GenOptions Options;
  Options.NumStmts = Stmts;
  Options.NumVars = 5;
  Options.WithPointers = true;
  return generateProgram(Options, Seed);
}

void BM_PrePipeline(benchmark::State &State) {
  Program Prog = makeProgram(static_cast<unsigned>(State.range(0)), 7);
  uint64_t Applied = 0;
  for (auto _ : State) {
    State.PauseTiming();
    Program Copy = Prog;
    PassManager PM;
    PM.addOptimization(opts::preDuplicate());
    PM.addOptimization(opts::cse());
    PM.addOptimization(opts::selfAssignRemoval());
    State.ResumeTiming();
    for (const PassReport &R : PM.run(Copy))
      Applied += R.AppliedCount;
  }
  State.counters["applied"] =
      benchmark::Counter(static_cast<double>(Applied),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PrePipeline)->Arg(25)->Arg(100)->Arg(400);

void BM_FullSuite(benchmark::State &State) {
  Program Prog = makeProgram(static_cast<unsigned>(State.range(0)), 11);
  uint64_t Applied = 0;
  for (auto _ : State) {
    State.PauseTiming();
    Program Copy = Prog;
    PassManager PM;
    for (PureAnalysis &A : opts::allAnalyses())
      PM.addAnalysis(std::move(A));
    for (Optimization &O : opts::allOptimizations())
      PM.addOptimization(std::move(O));
    State.ResumeTiming();
    for (const PassReport &R : PM.run(Copy))
      Applied += R.AppliedCount;
  }
  State.counters["applied"] =
      benchmark::Counter(static_cast<double>(Applied),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FullSuite)->Arg(25)->Arg(100)->Arg(400);

} // namespace

BENCHMARK_MAIN();
