//===- bench_ablation.cpp - Checker design-choice ablations ---------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Ablates the two encoding decisions DESIGN.md calls out:
///
///  A. Statement-kind case splitting. The region obligations (F2 etc.)
///     quantify over an arbitrary statement. Monolithic encoding (one
///     symbolic Stmt constant) sends Z3 into quantifier/array reasoning it
///     does not finish; splitting into the seven constructor shapes makes
///     each sub-obligation near-instant. This mirrors how the paper's
///     hand proofs case-split on statement kinds.
///
///  B. Domain closure for counterexample search. With the quantified
///     well-formedness hypotheses, Z3 cannot build models for falsifiable
///     obligations (buggy optimizations yield "unknown"). Closing the
///     uninterpreted domains over the named constants and bounding the
///     allocator turns those into genuine sat counterexamples.
///
//===----------------------------------------------------------------------===//

#include "checker/Encoder.h"
#include "checker/PatternEncoder.h"
#include "opts/Buggy.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <chrono>
#include <cstdio>

using namespace cobalt;
using namespace cobalt::checker;

namespace {

const char *resultName(z3::check_result R) {
  if (R == z3::unsat)
    return "unsat (proved)";
  if (R == z3::sat)
    return "sat (counterexample)";
  return "unknown";
}

/// Builds the F2 obligation of \p O for the statement \p St (or a fully
/// symbolic statement when null) and checks it.
z3::check_result checkF2(const Optimization &O, const LabelRegistry &Registry,
                         const char *KindTag, unsigned TimeoutMs,
                         bool CexMode, double &Seconds) {
  std::map<std::string, const PureAnalysis *> NoAnalyses;
  z3::context C;
  Encoder Enc(C);
  PatternEncoder PE(Enc, Registry, NoAnalyses);
  MetaEnv Env;
  std::vector<z3::expr> Hyps;

  ZState Eta = Enc.freshState("eta");
  z3::expr St = Enc.freshStmt("st");
  if (KindTag) {
    std::string K = KindTag;
    if (K == "assign")
      St = Enc.SAssign(Enc.freshLhs("kl"), Enc.freshExpr("kr"));
    else if (K == "decl")
      St = Enc.SDecl(Enc.freshVar("kd"));
    else if (K == "skip")
      St = Enc.SSkip();
    else if (K == "new")
      St = Enc.SNew(Enc.freshVar("kn"));
    else if (K == "call")
      St = Enc.SCall(Enc.freshVar("kt"), Enc.freshProc("kp"),
                     Enc.freshBase("ka"));
    else if (K == "branch")
      St = Enc.SBranch(Enc.freshBase("kb"), Enc.freshInt("ki"),
                       Enc.freshInt("kj"));
    else
      St = Enc.SReturn(Enc.freshVar("kv"));
  }

  Hyps.push_back(PE.witness(*O.Pat.W, &Eta, nullptr, nullptr, Env));
  Hyps.push_back(PE.formula(*O.Pat.G.Psi2, St, Eta, Env, Hyps));
  ZStep Step = Enc.encodeStep(Eta, St, "p");
  Hyps.push_back(Step.Defined);
  for (const z3::expr &E : Step.Constraints)
    Hyps.push_back(E);
  z3::expr Goal = PE.witness(*O.Pat.W, &Step.Post, nullptr, nullptr, Env);

  z3::solver S(C);
  z3::params P(C);
  P.set("timeout", TimeoutMs);
  S.set(P);
  for (const z3::expr &H : Hyps)
    S.add(H);
  if (CexMode) {
    S.add(Enc.wfBounded(Eta));
    S.add(Enc.wfBounded(Step.Post));
  } else {
    S.add(Enc.wf(Eta));
    S.add(Enc.wf(Step.Post));
  }
  S.add(!Goal);
  if (CexMode) {
    Enc.addDistinctnessAxioms(S);
    for (const z3::expr &E : Enc.domainClosure())
      S.add(E);
  } else {
    Enc.addBackgroundAxioms(S);
  }

  auto T0 = std::chrono::steady_clock::now();
  z3::check_result R = S.check();
  auto T1 = std::chrono::steady_clock::now();
  Seconds = std::chrono::duration<double>(T1 - T0).count();
  return R;
}

} // namespace

int main() {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");

  const char *Kinds[] = {"decl",   "skip", "assign", "new",
                         "call",   "branch", "return"};

  std::printf("Ablation A: monolithic vs per-statement-kind split "
              "(F2 obligations)\n");
  std::printf("  -- valid obligation (shipped const_prop): both modes "
              "prove it --\n");
  {
    Optimization O = opts::constProp();
    double Seconds = 0;
    z3::check_result R =
        checkF2(O, Registry, nullptr, 10000, false, Seconds);
    std::printf("  %-26s %-22s %8.3f s\n", "monolithic", resultName(R),
                Seconds);
    double SplitTotal = 0;
    bool AllProved = true;
    for (const char *Kind : Kinds) {
      R = checkF2(O, Registry, Kind, 10000, false, Seconds);
      SplitTotal += Seconds;
      AllProved = AllProved && R == z3::unsat;
    }
    std::printf("  %-26s %-22s %8.3f s\n", "split (7 kinds, total)",
                AllProved ? "unsat (proved)" : "NOT PROVED", SplitTotal);
  }
  std::printf("  -- falsifiable obligation (buggy const_prop_no_guard): "
              "split localizes the bug --\n");
  {
    for (const LabelDef &Def : opts::constPropNoGuard().Opt.Labels)
      Registry.define(Def);
    Optimization O = opts::constPropNoGuard().Opt;
    double Seconds = 0;
    z3::check_result R =
        checkF2(O, Registry, nullptr, 8000, false, Seconds);
    std::printf("  %-26s %-22s %8.3f s   (no bug location)\n",
                "monolithic", resultName(R), Seconds);
    for (const char *Kind : Kinds) {
      R = checkF2(O, Registry, Kind, 8000, false, Seconds);
      if (R != z3::unsat)
        std::printf("  split[%-7s]             %-22s %8.3f s   <- "
                    "localized\n",
                    Kind, resultName(R), Seconds);
    }
  }

  std::printf("\nAblation B: counterexample search for the buggy "
              "const_prop_no_guard (F2[assign])\n");
  {
    for (const LabelDef &Def :
         opts::constPropNoGuard().Opt.Labels)
      Registry.define(Def);
    Optimization O = opts::constPropNoGuard().Opt;
    double Seconds = 0;
    z3::check_result R =
        checkF2(O, Registry, "assign", 8000, false, Seconds);
    std::printf("  %-34s %-22s %8.3f s\n",
                "quantified wf, full axioms", resultName(R), Seconds);
    R = checkF2(O, Registry, "assign", 8000, true, Seconds);
    std::printf("  %-34s %-22s %8.3f s\n",
                "domain closure + bounded wf", resultName(R), Seconds);
  }
  return 0;
}
