//===- bench_containment.cpp - What out-of-process isolation costs --------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Prices the containment story (DESIGN.md §12) along its two axes:
///
///  1. **Isolation overhead** — the same stalled-prover suite
///     bench_parallel uses (checker.prover_stall_ms models multi-second
///     real-world queries; sleeps overlap regardless of core count),
///     checked in-process and again in forked workers at each width. The
///     per-obligation cost of the worker path is one fork-inherited
///     closure call plus a framed request/response round-trip — it must
///     stay in the noise next to any real prover query. Gate: < 15%
///     extra wall time at --jobs 4.
///
///  2. **Recovery latency** — with a deterministic crash storm injected
///     into the workers, how long a replacement fork takes (the
///     worker.respawn_ms histogram: lease wait + fork + bookkeeping,
///     backoff excluded) and what the storm does to suite wall time.
///     Gate: mean respawn under 250 ms — crash recovery must be
///     milliseconds, not another prover query.
///
/// Emits BENCH_containment.json next to the human-readable table and
/// exits nonzero if either gate fails. `--quick` drops the suite to two
/// optimizations and a shorter stall for smoke runs (gates still
/// enforced).
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace cobalt;
using namespace cobalt::checker;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

LabelRegistry makeRegistry() {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");
  return Registry;
}

struct BenchConfig {
  int StallMs = 40;
  bool Quick = false;
};

std::vector<Optimization> suiteOpts(const BenchConfig &BC) {
  if (BC.Quick)
    return {opts::constProp(), opts::cse()};
  return opts::allOptimizations();
}

struct SuiteRun {
  unsigned Jobs = 1;
  bool Isolated = false;
  unsigned Definitions = 0;
  unsigned Obligations = 0;
  unsigned Proven = 0;
  double Seconds = 0.0;
};

/// One stalled-prover suite pass. \p FaultPlan is layered on top of the
/// stall payload (empty = clean run).
SuiteRun runSuiteAt(const BenchConfig &BC, unsigned Jobs, bool Isolated,
                    const std::string &FaultPlan = "", uint64_t Seed = 0) {
  LabelRegistry Registry = makeRegistry();
  SoundnessChecker SC(Registry, opts::allAnalyses());
  ProverPolicy Policy;
  Policy.CacheVerdicts = false;
  Policy.Isolation = Isolated ? WorkerIsolation::WI_Subprocess
                              : WorkerIsolation::WI_InProcess;
  SC.setPolicy(Policy);
  support::ThreadPool Pool(Jobs);
  SC.setThreadPool(&Pool);

  std::string Plan = std::string(support::faults::CheckerProverStallMs) +
                     "=" + std::to_string(BC.StallMs);
  if (!FaultPlan.empty())
    Plan += "," + FaultPlan;
  support::FaultInjector::instance().configure(Plan, Seed);

  SuiteRun Run;
  Run.Jobs = Jobs;
  Run.Isolated = Isolated;
  auto Start = std::chrono::steady_clock::now();
  std::vector<CheckReport> Reports =
      SC.checkSuite(opts::allAnalyses(), suiteOpts(BC));
  Run.Seconds = secondsSince(Start);
  support::FaultInjector::instance().reset();

  for (const CheckReport &R : Reports) {
    ++Run.Definitions;
    Run.Obligations += static_cast<unsigned>(R.Obligations.size());
    if (R.Sound)
      ++Run.Proven;
  }
  return Run;
}

struct RecoveryRun {
  double Seconds = 0.0;       ///< Storm-suite wall time.
  uint64_t Restarts = 0;      ///< Replacement forks taken.
  uint64_t Crashes = 0;       ///< Worker deaths observed.
  uint64_t Quarantined = 0;   ///< Obligations degraded (crash%P redraws
                              ///< the same decision on retries).
  double RespawnMeanMs = 0.0; ///< worker.respawn_ms histogram mean.
  double RespawnMaxMs = 0.0;
};

/// The crash storm: a deterministic fraction of obligations kills its
/// worker; every one costs the pool a respawn, timed by the
/// worker.respawn_ms histogram.
RecoveryRun runRecovery(const BenchConfig &BC, unsigned Jobs) {
  support::Telemetry Telem;
  RecoveryRun Run;
  {
    support::TelemetryScope Scope(&Telem);
    SuiteRun S = runSuiteAt(
        BC, Jobs, /*Isolated=*/true,
        std::string(support::faults::WorkerCrash) + "%10", /*Seed=*/17);
    Run.Seconds = S.Seconds;
  }
  Run.Restarts = Telem.Metrics.counter("worker.restarts");
  Run.Crashes = Telem.Metrics.counter("worker.crashes");
  Run.Quarantined = Telem.Metrics.counter("worker.quarantined");
  support::HistogramStats H = Telem.Metrics.histogram("worker.respawn_ms");
  if (H.Count) {
    Run.RespawnMeanMs = H.Sum / static_cast<double>(H.Count);
    Run.RespawnMaxMs = H.Max;
  }
  return Run;
}

} // namespace

int main(int argc, char **argv) {
  BenchConfig BC;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--quick") == 0) {
      BC.Quick = true;
      BC.StallMs = 15;
    }

  std::printf("containment: out-of-process prover cost "
              "(prover latency modeled at %d ms/attempt%s)\n",
              BC.StallMs, BC.Quick ? ", quick" : "");
  std::printf("%6s %10s %12s %8s %10s %10s\n", "jobs", "mode",
              "obligations", "proven", "wall(s)", "overhead");

  double OverheadAt4 = 0.0;
  std::vector<SuiteRun> Runs;
  for (unsigned Jobs : {1u, 4u}) {
    SuiteRun In = runSuiteAt(BC, Jobs, /*Isolated=*/false);
    SuiteRun Out = runSuiteAt(BC, Jobs, /*Isolated=*/true);
    double Overhead =
        In.Seconds > 0 ? (Out.Seconds - In.Seconds) / In.Seconds : 0.0;
    if (Jobs == 4)
      OverheadAt4 = Overhead;
    std::printf("%6u %10s %12u %8u %10.3f %9s\n", Jobs, "inproc",
                In.Obligations, In.Proven, In.Seconds, "-");
    std::printf("%6u %10s %12u %8u %10.3f %+9.1f%%\n", Jobs, "workers",
                Out.Obligations, Out.Proven, Out.Seconds,
                Overhead * 100.0);
    Runs.push_back(In);
    Runs.push_back(Out);
  }

  RecoveryRun Rec = runRecovery(BC, 4);
  std::printf("recovery: crash storm (10%% of obligations) %.3f s wall, "
              "%llu crashes, %llu respawns (mean %.1f ms, max %.1f ms), "
              "%llu quarantined\n",
              Rec.Seconds, static_cast<unsigned long long>(Rec.Crashes),
              static_cast<unsigned long long>(Rec.Restarts),
              Rec.RespawnMeanMs, Rec.RespawnMaxMs,
              static_cast<unsigned long long>(Rec.Quarantined));

  bool OverheadOk = OverheadAt4 < 0.15;
  // No histogram entries means no respawn was timed — with a 10% storm
  // over 60+ obligations, that would mean the storm never fired.
  bool RecoveryOk = Rec.Restarts > 0 && Rec.RespawnMeanMs < 250.0;

  std::FILE *Json = std::fopen("BENCH_containment.json", "w");
  if (Json) {
    std::fprintf(Json,
                 "{\n  \"benchmark\": \"containment\",\n"
                 "  \"stall_ms\": %d,\n  \"quick\": %s,\n"
                 "  \"series\": [\n",
                 BC.StallMs, BC.Quick ? "true" : "false");
    for (size_t I = 0; I < Runs.size(); ++I) {
      const SuiteRun &R = Runs[I];
      std::fprintf(Json,
                   "    {\"jobs\": %u, \"mode\": \"%s\", "
                   "\"definitions\": %u, \"obligations\": %u, "
                   "\"proven\": %u, \"wall_seconds\": %.3f}%s\n",
                   R.Jobs, R.Isolated ? "workers" : "inproc",
                   R.Definitions, R.Obligations, R.Proven, R.Seconds,
                   I + 1 < Runs.size() ? "," : "");
    }
    std::fprintf(Json,
                 "  ],\n  \"recovery\": {\"wall_seconds\": %.3f, "
                 "\"crashes\": %llu, \"respawns\": %llu, "
                 "\"respawn_mean_ms\": %.1f, \"respawn_max_ms\": %.1f, "
                 "\"quarantined\": %llu},\n"
                 "  \"gates\": {\"overhead_at_4_max\": 0.15, "
                 "\"overhead_at_4\": %.3f, \"respawn_mean_ms_max\": 250.0, "
                 "\"respawn_mean_ms\": %.1f, \"pass\": %s}\n}\n",
                 Rec.Seconds, static_cast<unsigned long long>(Rec.Crashes),
                 static_cast<unsigned long long>(Rec.Restarts),
                 Rec.RespawnMeanMs, Rec.RespawnMaxMs,
                 static_cast<unsigned long long>(Rec.Quarantined),
                 OverheadAt4, Rec.RespawnMeanMs,
                 OverheadOk && RecoveryOk ? "true" : "false");
    std::fclose(Json);
    std::printf("wrote BENCH_containment.json\n");
  }

  if (!OverheadOk)
    std::printf("GATE FAILED: worker overhead %+.1f%% at --jobs 4 >= 15%%\n",
                OverheadAt4 * 100.0);
  if (!RecoveryOk)
    std::printf("GATE FAILED: respawn mean %.1f ms (respawns=%llu); want "
                "> 0 respawns under 250 ms\n",
                Rec.RespawnMeanMs,
                static_cast<unsigned long long>(Rec.Restarts));
  if (OverheadOk && RecoveryOk)
    std::printf("gates passed: %+.1f%% overhead at --jobs 4, respawn mean "
                "%.1f ms\n",
                OverheadAt4 * 100.0, Rec.RespawnMeanMs);
  return OverheadOk && RecoveryOk ? 0 : 1;
}
