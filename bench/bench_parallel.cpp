//===- bench_parallel.cpp - Checker scaling across --jobs widths ----------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Measures the two things the parallel checker promises: obligation
/// fan-out scales suite throughput with `--jobs`, and a warm persistent
/// verdict cache makes reruns near-free.
///
/// ## Latency model
/// Real Z3 queries on this suite discharge in microseconds, so raw
/// obligation CPU time cannot demonstrate scheduler overlap on a small
/// (possibly single-core) CI box. Instead, the prover's latency is
/// modeled with the fault-injection harness: a
/// `checker.prover_stall_ms=V` payload sleeps V ms on every solver
/// attempt, standing in for the multi-second queries of real-world
/// obligations. Sleeps overlap across worker threads even on one core,
/// so the jobs-4/jobs-1 ratio measures exactly what the thread pool
/// provides — concurrent obligations in flight — independent of the
/// machine's core count. The cache series runs with no stall and real
/// solver calls.
///
/// Emits BENCH_parallel.json next to the human-readable table and exits
/// nonzero if either headline gate fails (>=2x at --jobs 4; warm rerun
/// < 25% of cold).
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

using namespace cobalt;
using namespace cobalt::checker;

namespace {

constexpr int StallMs = 40; ///< Modeled per-attempt prover latency.

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

LabelRegistry makeRegistry() {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");
  return Registry;
}

struct SuiteRun {
  unsigned Jobs = 1;
  unsigned Definitions = 0;
  unsigned Obligations = 0;
  unsigned Proven = 0;
  double Seconds = 0.0;
};

/// Checks the full definition suite at the given width with the stalled
/// prover. Caching is disabled so every run pays for every obligation.
SuiteRun runSuiteAt(unsigned Jobs) {
  LabelRegistry Registry = makeRegistry();
  SoundnessChecker SC(Registry, opts::allAnalyses());
  ProverPolicy Policy;
  Policy.CacheVerdicts = false;
  SC.setPolicy(Policy);
  support::ThreadPool Pool(Jobs);
  SC.setThreadPool(&Pool);

  support::FaultInjector::instance().configure(
      std::string(support::faults::CheckerProverStallMs) + "=" +
      std::to_string(StallMs));

  SuiteRun Run;
  Run.Jobs = Jobs;
  auto Start = std::chrono::steady_clock::now();
  std::vector<CheckReport> Reports =
      SC.checkSuite(opts::allAnalyses(), opts::allOptimizations());
  Run.Seconds = secondsSince(Start);
  support::FaultInjector::instance().reset();

  for (const CheckReport &R : Reports) {
    ++Run.Definitions;
    Run.Obligations += static_cast<unsigned>(R.Obligations.size());
    if (R.Sound)
      ++Run.Proven;
  }
  return Run;
}

struct CacheRun {
  double ColdSeconds = 0.0;
  double WarmSeconds = 0.0;
  unsigned WarmHits = 0;
  /// Cache traffic as the metrics registry saw it (cold + warm run):
  /// verdict-level hits/misses and disk-level hits/stores.
  uint64_t VerdictHits = 0;
  uint64_t VerdictMisses = 0;
  uint64_t DiskHits = 0;
  uint64_t DiskStores = 0;
};

/// Cold check into an empty persistent cache, then a rerun from a fresh
/// checker instance that can only be fast by hitting the disk cache.
/// No stall: this series measures real prover work avoided.
CacheRun runCacheSeries() {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "cobalt_bench_parallel_cache";
  fs::remove_all(Dir);

  LabelRegistry Registry = makeRegistry();
  CacheRun Run;
  // One telemetry session across both runs: its counters double-check
  // the wall-clock story (the warm rerun must be all hits, no stores).
  support::Telemetry Telem;
  support::TelemetryScope Scope(&Telem);
  {
    SoundnessChecker Cold(Registry, opts::allAnalyses());
    Cold.setCacheDir(Dir.string());
    auto Start = std::chrono::steady_clock::now();
    Cold.checkSuite(opts::allAnalyses(), opts::allOptimizations());
    Run.ColdSeconds = secondsSince(Start);
  }
  {
    SoundnessChecker Warm(Registry, opts::allAnalyses());
    Warm.setCacheDir(Dir.string());
    auto Start = std::chrono::steady_clock::now();
    Warm.checkSuite(opts::allAnalyses(), opts::allOptimizations());
    Run.WarmSeconds = secondsSince(Start);
    Run.WarmHits = Warm.cacheHits();
  }
  Run.VerdictHits = Telem.Metrics.counter("checker.cache.hits");
  Run.VerdictMisses = Telem.Metrics.counter("checker.cache.misses");
  Run.DiskHits = Telem.Metrics.counter("cache.disk.hits");
  Run.DiskStores = Telem.Metrics.counter("cache.disk.stores");
  fs::remove_all(Dir);
  return Run;
}

} // namespace

int main() {
  std::printf("parallel: suite wall-clock vs --jobs width "
              "(prover latency modeled at %d ms/attempt)\n",
              StallMs);
  std::printf("%6s %12s %12s %8s %10s %9s\n", "jobs", "definitions",
              "obligations", "proven", "wall(s)", "speedup");

  std::vector<SuiteRun> Runs;
  for (unsigned Jobs : {1u, 2u, 4u, 8u})
    Runs.push_back(runSuiteAt(Jobs));

  double Base = Runs.front().Seconds;
  double SpeedupAt4 = 0.0;
  for (const SuiteRun &R : Runs) {
    double Speedup = R.Seconds > 0 ? Base / R.Seconds : 0.0;
    if (R.Jobs == 4)
      SpeedupAt4 = Speedup;
    std::printf("%6u %12u %12u %8u %10.3f %8.2fx\n", R.Jobs, R.Definitions,
                R.Obligations, R.Proven, R.Seconds, Speedup);
  }

  CacheRun Cache = runCacheSeries();
  double WarmRatio =
      Cache.ColdSeconds > 0 ? Cache.WarmSeconds / Cache.ColdSeconds : 1.0;
  std::printf("cache: cold %.3f s, warm rerun %.3f s (%.1f%% of cold, "
              "%u hits)\n",
              Cache.ColdSeconds, Cache.WarmSeconds, WarmRatio * 100.0,
              Cache.WarmHits);
  std::printf("cache metrics: %llu verdict hits / %llu misses, "
              "%llu disk hits, %llu disk stores\n",
              static_cast<unsigned long long>(Cache.VerdictHits),
              static_cast<unsigned long long>(Cache.VerdictMisses),
              static_cast<unsigned long long>(Cache.DiskHits),
              static_cast<unsigned long long>(Cache.DiskStores));

  bool ScalingOk = SpeedupAt4 >= 2.0;
  bool CacheOk = WarmRatio < 0.25;

  std::FILE *Json = std::fopen("BENCH_parallel.json", "w");
  if (Json) {
    std::fprintf(Json,
                 "{\n  \"benchmark\": \"parallel\",\n"
                 "  \"stall_ms\": %d,\n  \"series\": [\n",
                 StallMs);
    for (size_t I = 0; I < Runs.size(); ++I) {
      const SuiteRun &R = Runs[I];
      std::fprintf(Json,
                   "    {\"jobs\": %u, \"definitions\": %u, "
                   "\"obligations\": %u, \"proven\": %u, "
                   "\"wall_seconds\": %.3f, \"speedup\": %.2f}%s\n",
                   R.Jobs, R.Definitions, R.Obligations, R.Proven,
                   R.Seconds, R.Seconds > 0 ? Base / R.Seconds : 0.0,
                   I + 1 < Runs.size() ? "," : "");
    }
    std::fprintf(Json,
                 "  ],\n  \"cache\": {\"cold_seconds\": %.3f, "
                 "\"warm_seconds\": %.3f, \"warm_ratio\": %.3f, "
                 "\"warm_hits\": %u},\n"
                 "  \"cache_metrics\": {\"verdict_hits\": %llu, "
                 "\"verdict_misses\": %llu, \"disk_hits\": %llu, "
                 "\"disk_stores\": %llu},\n"
                 "  \"gates\": {\"speedup_at_4_min\": 2.0, "
                 "\"speedup_at_4\": %.2f, \"warm_ratio_max\": 0.25, "
                 "\"warm_ratio\": %.3f, \"pass\": %s}\n}\n",
                 Cache.ColdSeconds, Cache.WarmSeconds, WarmRatio,
                 Cache.WarmHits,
                 static_cast<unsigned long long>(Cache.VerdictHits),
                 static_cast<unsigned long long>(Cache.VerdictMisses),
                 static_cast<unsigned long long>(Cache.DiskHits),
                 static_cast<unsigned long long>(Cache.DiskStores),
                 SpeedupAt4, WarmRatio,
                 ScalingOk && CacheOk ? "true" : "false");
    std::fclose(Json);
    std::printf("wrote BENCH_parallel.json\n");
  }

  if (!ScalingOk)
    std::printf("GATE FAILED: --jobs 4 speedup %.2fx < 2.0x\n", SpeedupAt4);
  if (!CacheOk)
    std::printf("GATE FAILED: warm rerun %.1f%% of cold >= 25%%\n",
                WarmRatio * 100.0);
  if (ScalingOk && CacheOk)
    std::printf("gates passed: %.2fx at --jobs 4, warm rerun %.1f%% of "
                "cold\n",
                SpeedupAt4, WarmRatio * 100.0);
  return ScalingOk && CacheOk ? 0 : 1;
}
