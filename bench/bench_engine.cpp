//===- bench_engine.cpp - Experiment E6: engine scaling -------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E6: cost of the generic substitution-set dataflow engine
/// (§5.2, and the §7 remark that more efficient execution strategies are
/// future work). Google-benchmark series:
///
///  * guard solving vs procedure size, forward (const prop) and backward
///    (DAE) patterns;
///  * guard solving vs pattern-variable universe (number of variables);
///  * a full optimization run (solve + match + rewrite);
///  * pure-analysis labelling.
///
/// `bench_engine --gate` switches to the CI gate: the engine's RPO +
/// ψ2-memoized solver is checked fact-for-fact against a deliberately
/// naive FIFO-worklist reference built only on the public core/Formula.h
/// evaluation API, then timed against it. The gate fails (exit 1) on any
/// AtNode divergence or if the measured speedup drops below the floor
/// recorded in EXPERIMENTS.md. Emits BENCH_engine.json in the CWD.
///
//===----------------------------------------------------------------------===//

#include "core/Formula.h"
#include "engine/Dataflow.h"
#include "engine/Engine.h"
#include "ir/Generator.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

namespace {

LabelRegistry &registry() {
  static LabelRegistry Registry = [] {
    LabelRegistry R;
    for (const LabelDef &Def : opts::standardLabels())
      R.define(Def);
    R.declareAnalysisLabel("notTainted");
    return R;
  }();
  return Registry;
}

Program makeProgram(unsigned Stmts, unsigned Vars = 5,
                    bool Pointers = false) {
  GenOptions Options;
  Options.NumStmts = Stmts;
  Options.NumVars = Vars;
  Options.WithPointers = Pointers;
  return generateProgram(Options, /*Seed=*/42);
}

void BM_GuardSolveForward(benchmark::State &State) {
  Program Prog = makeProgram(static_cast<unsigned>(State.range(0)));
  const Procedure &Main = *Prog.findProc("main");
  Cfg G(Main);
  Optimization O = opts::constProp();
  for (auto _ : State) {
    GuardSolution Sol = solveGuard(Direction::D_Forward, O.Pat.G, G,
                                   registry(), nullptr);
    benchmark::DoNotOptimize(Sol.AtNode.size());
  }
  State.counters["stmts"] = Main.size();
}
BENCHMARK(BM_GuardSolveForward)->Arg(25)->Arg(100)->Arg(400)->Arg(1600);

void BM_GuardSolveBackward(benchmark::State &State) {
  Program Prog = makeProgram(static_cast<unsigned>(State.range(0)));
  const Procedure &Main = *Prog.findProc("main");
  Cfg G(Main);
  Optimization O = opts::deadAssignElim();
  for (auto _ : State) {
    GuardSolution Sol = solveGuard(Direction::D_Backward, O.Pat.G, G,
                                   registry(), nullptr);
    benchmark::DoNotOptimize(Sol.AtNode.size());
  }
  State.counters["stmts"] = Main.size();
}
BENCHMARK(BM_GuardSolveBackward)->Arg(25)->Arg(100)->Arg(400);

void BM_GuardSolveVsUniverse(benchmark::State &State) {
  // Fixed statement count, growing variable universe: substitution sets
  // and the negative-literal enumeration grow with it.
  Program Prog = makeProgram(120, static_cast<unsigned>(State.range(0)));
  const Procedure &Main = *Prog.findProc("main");
  Cfg G(Main);
  Optimization O = opts::deadAssignElim(); // ψ1 enumerates variables
  for (auto _ : State) {
    GuardSolution Sol = solveGuard(Direction::D_Backward, O.Pat.G, G,
                                   registry(), nullptr);
    benchmark::DoNotOptimize(Sol.AtNode.size());
  }
}
BENCHMARK(BM_GuardSolveVsUniverse)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_RunOptimization(benchmark::State &State) {
  Program Prog = makeProgram(static_cast<unsigned>(State.range(0)));
  Optimization O = opts::constProp();
  for (auto _ : State) {
    State.PauseTiming();
    Program Copy = Prog;
    State.ResumeTiming();
    RunStats Stats =
        runOptimization(O, *Copy.findProc("main"), registry(), nullptr);
    benchmark::DoNotOptimize(Stats.AppliedCount);
  }
}
BENCHMARK(BM_RunOptimization)->Arg(25)->Arg(100)->Arg(400);

void BM_ComputeDeltaOnly(benchmark::State &State) {
  Program Prog = makeProgram(static_cast<unsigned>(State.range(0)));
  const Procedure &Main = *Prog.findProc("main");
  Optimization O = opts::cse();
  for (auto _ : State) {
    auto Delta = computeDelta(O.Pat, Main, registry(), nullptr);
    benchmark::DoNotOptimize(Delta.size());
  }
}
BENCHMARK(BM_ComputeDeltaOnly)->Arg(25)->Arg(100)->Arg(400);

void BM_TaintAnalysis(benchmark::State &State) {
  Program Prog = makeProgram(static_cast<unsigned>(State.range(0)),
                             /*Vars=*/5, /*Pointers=*/true);
  const Procedure &Main = *Prog.findProc("main");
  PureAnalysis A = opts::taintAnalysis();
  for (auto _ : State) {
    Labeling Labels;
    runPureAnalysis(A, Main, registry(), Labels);
    benchmark::DoNotOptimize(Labels.size());
  }
}
BENCHMARK(BM_TaintAnalysis)->Arg(25)->Arg(100)->Arg(400);

//===----------------------------------------------------------------------===//
// Gate mode: naive FIFO reference solver vs the engine.
//===----------------------------------------------------------------------===//

/// Textbook chaotic-iteration solver for [[ψ1 followed by ψ2]], written
/// against the public formula-evaluation API only (buildUniverse /
/// satisfyFormula / evalFormula). It computes the same greatest fixed
/// point as engine::solveGuard — OUT starts at the fact universe, IN is
/// the ∩ over flow-predecessors, roots pin IN = ∅ — but with none of the
/// engine's strategy: a FIFO worklist instead of reverse post-order
/// sweeps, and a fresh ψ2 evaluation per (node, θ) visit instead of the
/// projection memo. Agreement is the correctness gate; the time ratio is
/// the performance gate.
struct ReferenceSolution {
  std::vector<std::set<Substitution>> AtNode;
  uint64_t Visits = 0;
};

ReferenceSolution referenceSolveGuard(Direction Dir, const Guard &Gd,
                                      const Cfg &G,
                                      const LabelRegistry &Registry) {
  const Procedure &P = G.proc();
  const int N = G.size();
  auto flowPreds = [&](int I) -> const std::vector<int> & {
    return Dir == Direction::D_Forward ? G.preds(I) : G.succs(I);
  };
  auto flowSuccs = [&](int I) -> const std::vector<int> & {
    return Dir == Direction::D_Forward ? G.succs(I) : G.preds(I);
  };
  auto isRoot = [&](int I) {
    return Dir == Direction::D_Forward ? I == G.entry() : G.isExit(I);
  };

  // Nodes reachable from a root along the flow direction; everything
  // else has no constraining path and keeps an empty fact set.
  std::vector<bool> Live(N, false);
  {
    std::vector<int> Work;
    for (int I = 0; I < N; ++I)
      if (isRoot(I)) {
        Live[I] = true;
        Work.push_back(I);
      }
    while (!Work.empty()) {
      int I = Work.back();
      Work.pop_back();
      for (int T : flowSuccs(I))
        if (!Live[T]) {
          Live[T] = true;
          Work.push_back(T);
        }
    }
  }

  Universe Univ = buildUniverse(P);
  auto makeCtx = [&](int I) {
    return NodeContext{&P, I, &Registry, nullptr, &Univ};
  };

  std::vector<std::set<Substitution>> Gen(N);
  std::set<Substitution> U;
  for (int I = 0; I < N; ++I) {
    if (!Live[I])
      continue;
    for (Substitution &S : satisfyFormula(*Gd.Psi1, makeCtx(I), {})) {
      U.insert(S);
      Gen[I].insert(std::move(S));
    }
  }

  ReferenceSolution Sol;
  Sol.AtNode.assign(N, {});
  std::vector<std::set<Substitution>> Out(N);
  std::deque<int> Work;
  std::vector<bool> Queued(N, false);
  for (int I = 0; I < N; ++I)
    if (Live[I]) {
      Out[I] = U; // optimistic start for the ∩ meet
      Work.push_back(I);
      Queued[I] = true;
    }

  while (!Work.empty()) {
    int I = Work.front();
    Work.pop_front();
    Queued[I] = false;
    ++Sol.Visits;

    std::set<Substitution> In;
    if (!isRoot(I)) {
      bool First = true;
      for (int Pd : flowPreds(I)) {
        if (!Live[Pd])
          continue;
        if (First) {
          In = Out[Pd];
          First = false;
        } else {
          std::set<Substitution> Tmp;
          std::set_intersection(In.begin(), In.end(), Out[Pd].begin(),
                                Out[Pd].end(),
                                std::inserter(Tmp, Tmp.begin()));
          In = std::move(Tmp);
        }
      }
    }
    Sol.AtNode[I] = In;

    std::set<Substitution> NewOut = Gen[I];
    for (const Substitution &Theta : In) {
      auto R = evalFormula(*Gd.Psi2, makeCtx(I), Theta);
      if (R.has_value() && *R)
        NewOut.insert(Theta);
    }
    if (NewOut != Out[I]) {
      Out[I] = std::move(NewOut);
      for (int S : flowSuccs(I))
        if (Live[S] && !Queued[S]) {
          Work.push_back(S);
          Queued[S] = true;
        }
    }
  }
  return Sol;
}

struct GateCase {
  const char *Name;
  Direction Dir;
  unsigned Stmts;
  double EngineSeconds = 0;
  double ReferenceSeconds = 0;
  double Speedup = 0;
  uint64_t Facts = 0;
  bool Match = false;
};

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

int runGate(bool Quick) {
  // Floors intentionally far below the measured speedups (see
  // EXPERIMENTS.md, experiment E6-gate) so only a real regression —
  // e.g. losing the RPO schedule or the ψ2 memo — trips them, not
  // machine-to-machine noise. The geomean carries the headline (the
  // smallest programs finish in milliseconds and are noise-dominated);
  // the min floor just demands the engine never lose to the naive
  // reference outright.
  constexpr double GeomeanFloor = 3.0;
  constexpr double MinFloor = 1.0;

  std::vector<GateCase> Cases = {
      {"constProp/forward/25", Direction::D_Forward, 25},
      {"constProp/forward/100", Direction::D_Forward, 100},
      {"constProp/forward/400", Direction::D_Forward, 400},
      {"deadAssignElim/backward/25", Direction::D_Backward, 25},
      {"deadAssignElim/backward/100", Direction::D_Backward, 100},
  };
  if (Quick)
    Cases.resize(2);

  std::printf("engine gate: solveGuard vs naive FIFO reference "
              "(geomean floor %.1fx, min floor %.1fx)\n\n",
              GeomeanFloor, MinFloor);

  bool AllMatch = true;
  double MinSpeedup = -1;
  double LogSum = 0;
  for (GateCase &C : Cases) {
    Program Prog = makeProgram(C.Stmts);
    const Procedure &Main = *Prog.findProc("main");
    Cfg G(Main);
    Optimization O = C.Dir == Direction::D_Forward
                         ? opts::constProp()
                         : opts::deadAssignElim();

    // Warm once (page in code + allocator), then time: min of 3 engine
    // runs vs one reference run (the reference is the slow side; its
    // run-to-run noise only makes the gate easier to pass).
    GuardSolution Eng =
        solveGuard(C.Dir, O.Pat.G, G, registry(), nullptr);
    C.EngineSeconds = 1e9;
    for (int Rep = 0; Rep < 3; ++Rep) {
      auto T0 = std::chrono::steady_clock::now();
      Eng = solveGuard(C.Dir, O.Pat.G, G, registry(), nullptr);
      C.EngineSeconds = std::min(C.EngineSeconds, secondsSince(T0));
    }
    auto T1 = std::chrono::steady_clock::now();
    ReferenceSolution Ref =
        referenceSolveGuard(C.Dir, O.Pat.G, G, registry());
    C.ReferenceSeconds = secondsSince(T1);

    C.Match = Eng.AtNode == Ref.AtNode;
    for (const std::set<Substitution> &Facts : Eng.AtNode)
      C.Facts += Facts.size();
    C.Speedup = C.EngineSeconds > 0
                    ? C.ReferenceSeconds / C.EngineSeconds
                    : 0;
    AllMatch = AllMatch && C.Match;
    if (MinSpeedup < 0 || C.Speedup < MinSpeedup)
      MinSpeedup = C.Speedup;
    LogSum += std::log(std::max(C.Speedup, 1e-9));
    std::printf("  %-28s engine %8.4f s  reference %8.4f s  "
                "speedup %6.1fx  facts %6llu  %s\n",
                C.Name, C.EngineSeconds, C.ReferenceSeconds, C.Speedup,
                static_cast<unsigned long long>(C.Facts),
                C.Match ? "match" : "MISMATCH");
  }

  double Geomean = std::exp(LogSum / Cases.size());
  bool GateSpeed = Geomean >= GeomeanFloor && MinSpeedup >= MinFloor;
  bool Pass = AllMatch && GateSpeed;
  std::printf("\n  gates: all AtNode sets %s; speedup geomean %.1fx "
              "(floor %.1fx), min %.1fx (floor %.1fx) %s\n",
              AllMatch ? "match PASS" : "diverge FAIL", Geomean,
              GeomeanFloor, MinSpeedup, MinFloor,
              GateSpeed ? "PASS" : "FAIL");

  std::string J = "{\n  \"benchmark\": \"engine\",\n  \"cases\": [\n";
  char Buf[512];
  for (size_t I = 0; I < Cases.size(); ++I) {
    const GateCase &C = Cases[I];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"name\": \"%s\", \"stmts\": %u, "
                  "\"engine_seconds\": %.6f, \"reference_seconds\": %.6f, "
                  "\"speedup\": %.2f, \"facts\": %llu, \"match\": %s}%s\n",
                  C.Name, C.Stmts, C.EngineSeconds, C.ReferenceSeconds,
                  C.Speedup, static_cast<unsigned long long>(C.Facts),
                  C.Match ? "true" : "false",
                  I + 1 < Cases.size() ? "," : "");
    J += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "  ],\n  \"gates\": {\"all_match\": %s, "
                "\"speedup_geomean\": %.2f, \"geomean_floor\": %.1f, "
                "\"min_speedup\": %.2f, \"min_floor\": %.1f},\n"
                "  \"pass\": %s\n}\n",
                AllMatch ? "true" : "false", Geomean, GeomeanFloor,
                MinSpeedup, MinFloor, Pass ? "true" : "false");
  J += Buf;

  if (std::FILE *F = std::fopen("BENCH_engine.json", "wb")) {
    std::fwrite(J.data(), 1, J.size(), F);
    std::fclose(F);
  }
  std::printf("\n%s", J.c_str());
  if (!Pass) {
    std::fprintf(stderr, "bench_engine: GATE FAILURE\n");
    return 1;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Gate = false, Quick = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--gate") == 0)
      Gate = true;
    else if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
  }
  if (Gate)
    return runGate(Quick);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
