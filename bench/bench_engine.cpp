//===- bench_engine.cpp - Experiment E6: engine scaling -------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E6: cost of the generic substitution-set dataflow engine
/// (§5.2, and the §7 remark that more efficient execution strategies are
/// future work). Google-benchmark series:
///
///  * guard solving vs procedure size, forward (const prop) and backward
///    (DAE) patterns;
///  * guard solving vs pattern-variable universe (number of variables);
///  * a full optimization run (solve + match + rewrite);
///  * pure-analysis labelling.
///
//===----------------------------------------------------------------------===//

#include "engine/Dataflow.h"
#include "engine/Engine.h"
#include "ir/Generator.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <benchmark/benchmark.h>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

namespace {

LabelRegistry &registry() {
  static LabelRegistry Registry = [] {
    LabelRegistry R;
    for (const LabelDef &Def : opts::standardLabels())
      R.define(Def);
    R.declareAnalysisLabel("notTainted");
    return R;
  }();
  return Registry;
}

Program makeProgram(unsigned Stmts, unsigned Vars = 5,
                    bool Pointers = false) {
  GenOptions Options;
  Options.NumStmts = Stmts;
  Options.NumVars = Vars;
  Options.WithPointers = Pointers;
  return generateProgram(Options, /*Seed=*/42);
}

void BM_GuardSolveForward(benchmark::State &State) {
  Program Prog = makeProgram(static_cast<unsigned>(State.range(0)));
  const Procedure &Main = *Prog.findProc("main");
  Cfg G(Main);
  Optimization O = opts::constProp();
  for (auto _ : State) {
    GuardSolution Sol = solveGuard(Direction::D_Forward, O.Pat.G, G,
                                   registry(), nullptr);
    benchmark::DoNotOptimize(Sol.AtNode.size());
  }
  State.counters["stmts"] = Main.size();
}
BENCHMARK(BM_GuardSolveForward)->Arg(25)->Arg(100)->Arg(400)->Arg(1600);

void BM_GuardSolveBackward(benchmark::State &State) {
  Program Prog = makeProgram(static_cast<unsigned>(State.range(0)));
  const Procedure &Main = *Prog.findProc("main");
  Cfg G(Main);
  Optimization O = opts::deadAssignElim();
  for (auto _ : State) {
    GuardSolution Sol = solveGuard(Direction::D_Backward, O.Pat.G, G,
                                   registry(), nullptr);
    benchmark::DoNotOptimize(Sol.AtNode.size());
  }
  State.counters["stmts"] = Main.size();
}
BENCHMARK(BM_GuardSolveBackward)->Arg(25)->Arg(100)->Arg(400);

void BM_GuardSolveVsUniverse(benchmark::State &State) {
  // Fixed statement count, growing variable universe: substitution sets
  // and the negative-literal enumeration grow with it.
  Program Prog = makeProgram(120, static_cast<unsigned>(State.range(0)));
  const Procedure &Main = *Prog.findProc("main");
  Cfg G(Main);
  Optimization O = opts::deadAssignElim(); // ψ1 enumerates variables
  for (auto _ : State) {
    GuardSolution Sol = solveGuard(Direction::D_Backward, O.Pat.G, G,
                                   registry(), nullptr);
    benchmark::DoNotOptimize(Sol.AtNode.size());
  }
}
BENCHMARK(BM_GuardSolveVsUniverse)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_RunOptimization(benchmark::State &State) {
  Program Prog = makeProgram(static_cast<unsigned>(State.range(0)));
  Optimization O = opts::constProp();
  for (auto _ : State) {
    State.PauseTiming();
    Program Copy = Prog;
    State.ResumeTiming();
    RunStats Stats =
        runOptimization(O, *Copy.findProc("main"), registry(), nullptr);
    benchmark::DoNotOptimize(Stats.AppliedCount);
  }
}
BENCHMARK(BM_RunOptimization)->Arg(25)->Arg(100)->Arg(400);

void BM_ComputeDeltaOnly(benchmark::State &State) {
  Program Prog = makeProgram(static_cast<unsigned>(State.range(0)));
  const Procedure &Main = *Prog.findProc("main");
  Optimization O = opts::cse();
  for (auto _ : State) {
    auto Delta = computeDelta(O.Pat, Main, registry(), nullptr);
    benchmark::DoNotOptimize(Delta.size());
  }
}
BENCHMARK(BM_ComputeDeltaOnly)->Arg(25)->Arg(100)->Arg(400);

void BM_TaintAnalysis(benchmark::State &State) {
  Program Prog = makeProgram(static_cast<unsigned>(State.range(0)),
                             /*Vars=*/5, /*Pointers=*/true);
  const Procedure &Main = *Prog.findProc("main");
  PureAnalysis A = opts::taintAnalysis();
  for (auto _ : State) {
    Labeling Labels;
    runPureAnalysis(A, Main, registry(), Labels);
    benchmark::DoNotOptimize(Labels.size());
  }
}
BENCHMARK(BM_TaintAnalysis)->Arg(25)->Arg(100)->Arg(400);

} // namespace

BENCHMARK_MAIN();
